package starts_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"starts"
)

// ExampleParseFilter parses the paper's Example 1 filter expression.
func ExampleParseFilter() {
	expr, err := starts.ParseFilter(`((author "Ullman") and (title stem "databases"))`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(expr)
	// Output: ((author "Ullman") and (title stem "databases"))
}

// ExampleNewQuery shows the SOIF encoding of a complete query, the wire
// form of the paper's Example 6.
func ExampleNewQuery() {
	q := starts.NewQuery()
	var err error
	q.Ranking, err = starts.ParseRanking(`list((body-of-text "distributed") (body-of-text "databases"))`)
	if err != nil {
		log.Fatal(err)
	}
	q.MinScore = 0.5
	q.MaxResults = 10
	data, err := q.Marshal()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(string(data))
	// Output:
	// @SQuery{
	// Version{10}: STARTS 1.0
	// RankingExpression{61}: list((body-of-text "distributed") (body-of-text "databases"))
	// DropStopWords{1}: T
	// DefaultAttributeSet{7}: basic-1
	// DefaultLanguage{5}: en-US
	// AnswerFields{13}: title linkage
	// SortByFields{7}: score d
	// MinDocumentScore{3}: 0.5
	// MaxNumberDocuments{2}: 10
	// }
}

// ExampleMetasearcher runs one query across two in-process sources.
func ExampleMetasearcher() {
	mkSource := func(id, title, body string) *starts.Source {
		eng, err := starts.NewVectorEngine()
		if err != nil {
			log.Fatal(err)
		}
		src, err := starts.NewSource(id, eng)
		if err != nil {
			log.Fatal(err)
		}
		if err := src.Add(&starts.Document{
			Linkage: "http://" + id + "/doc",
			Title:   title,
			Body:    body,
			Date:    time.Date(1996, 1, 1, 0, 0, 0, 0, time.UTC),
		}); err != nil {
			log.Fatal(err)
		}
		return src
	}
	ms := starts.NewMetasearcher(starts.MetasearcherOptions{})
	ms.Add(starts.NewLocalConn(mkSource("cs", "Distributed databases", "distributed databases and query processing"), nil))
	ms.Add(starts.NewLocalConn(mkSource("garden", "Tomato growing", "tomato compost watering"), nil))

	q := starts.NewQuery()
	var err error
	q.Ranking, err = starts.ParseRanking(`list((body-of-text "databases"))`)
	if err != nil {
		log.Fatal(err)
	}
	answer, err := ms.Search(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("contacted:", answer.Contacted)
	for _, d := range answer.Documents {
		fmt.Println(d.Title())
	}
	// Output:
	// contacted: [cs]
	// Distributed databases
}
