// Package starts is a complete Go implementation of STARTS 1.0, the
// Stanford Protocol Proposal for Internet Retrieval and Search (Gravano,
// Chang, García-Molina, Paepcke; SIGMOD 1997): the query language, the
// SOIF-encoded query/result/metadata objects, search engines with
// heterogeneous capability profiles, sources and resources that export
// metadata and content summaries, an HTTP transport, and a metasearcher
// that performs the paper's three tasks — choosing the best sources for a
// query, evaluating the query at those sources, and merging the results.
//
// This package is the public facade; it re-exports the user-facing types
// of the internal packages so applications need a single import:
//
//	eng, _ := starts.NewVectorEngine()
//	src, _ := starts.NewSource("Source-1", eng)
//	src.Add(&starts.Document{Linkage: "http://...", Title: "...", Body: "..."})
//
//	ms := starts.NewMetasearcher(starts.MetasearcherOptions{})
//	ms.Add(starts.NewLocalConn(src, nil))
//	q := starts.NewQuery()
//	q.Ranking, _ = starts.ParseRanking(`list((body-of-text "distributed"))`)
//	answer, _ := ms.Search(ctx, q)
package starts

import (
	"net/http"
	"time"

	"starts/internal/adaptive"
	"starts/internal/client"
	"starts/internal/core"
	"starts/internal/dispatch"
	"starts/internal/engine"
	"starts/internal/faulty"
	"starts/internal/gloss"
	"starts/internal/index"
	"starts/internal/merge"
	"starts/internal/meta"
	"starts/internal/obs"
	"starts/internal/peer"
	"starts/internal/qcache"
	"starts/internal/query"
	"starts/internal/resilient"
	"starts/internal/result"
	"starts/internal/server"
	"starts/internal/source"
)

// Version is the protocol version implemented by this module.
const Version = query.Version

// Query language.
type (
	// Query is a complete STARTS query (Section 4.1).
	Query = query.Query
	// Expr is a filter- or ranking-expression tree.
	Expr = query.Expr
	// Term is an atomic query term.
	Term = query.Term
	// SortKey orders query results.
	SortKey = query.SortKey
)

// NewQuery returns a query with the specification defaults.
func NewQuery() *Query { return query.New() }

// ParseFilter parses a Basic-1 filter expression.
func ParseFilter(src string) (Expr, error) { return query.ParseFilter(src) }

// ParseRanking parses a Basic-1 ranking expression.
func ParseRanking(src string) (Expr, error) { return query.ParseRanking(src) }

// Documents, engines and sources.
type (
	// Document is an indexable flat text document.
	Document = index.Document
	// Engine executes queries under a capability profile.
	Engine = engine.Engine
	// EngineConfig is an engine's capability profile.
	EngineConfig = engine.Config
	// Source is a document collection with its engine and exported
	// metadata.
	Source = source.Source
	// Resource groups sources behind one contact point.
	Resource = source.Resource
)

// NewVectorEngine returns a full-featured vector-space engine (filter and
// ranking expressions, tf·idf scoring).
func NewVectorEngine() (*Engine, error) { return engine.New(engine.NewVectorConfig()) }

// NewBooleanEngine returns a Glimpse-like Boolean engine (filter
// expressions only).
func NewBooleanEngine() (*Engine, error) { return engine.New(engine.NewBooleanConfig()) }

// NewEngine returns an engine with a custom capability profile.
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }

// NewSource returns a source over an engine.
func NewSource(id string, eng *Engine) (*Source, error) { return source.New(id, eng) }

// NewResource returns an empty resource.
func NewResource() *Resource { return source.NewResource() }

// Results and metadata objects.
type (
	// Results is a query result: header plus documents.
	Results = result.Results
	// ResultDocument is one query-result document with its TermStats.
	ResultDocument = result.Document
	// TermStat carries per-term statistics for rank merging.
	TermStat = result.TermStat
	// SourceMeta is a source's MBasic-1 metadata.
	SourceMeta = meta.SourceMeta
	// ContentSummary is a source's exported content summary.
	ContentSummary = meta.ContentSummary
)

// Transport.
type (
	// Server serves a resource over HTTP.
	Server = server.Server
	// Client fetches STARTS objects over HTTP.
	Client = client.Client
	// Conn is one queryable source, local or remote.
	Conn = client.Conn
	// BatchConn is a Conn that can evaluate several queries in ONE wire
	// call (QueryBatch), the transport seam behind wire-level
	// multiplexing: the metasearcher's dispatch layer drains a source's
	// queued sub-queries and issues them as a single round trip when the
	// source's conn supports it. NewHTTPConn and NewLocalConn both return
	// batch-capable conns; assert with ChainBatchConn after wrapping.
	BatchConn = client.BatchConn
)

// ServerOption configures a Server.
type ServerOption = server.Option

// WithServerMetrics records a server's route metrics into an externally
// owned registry, merging several components onto one /metrics.
func WithServerMetrics(reg *obs.Registry) ServerOption { return server.WithMetrics(reg) }

// WithServerTraceCapacity sizes the server's /debug/last-traces ring.
func WithServerTraceCapacity(n int) ServerOption { return server.WithTraceCapacity(n) }

// WithServerMaxInflight bounds concurrent query evaluations; excess
// requests wait up to queueTimeout for a slot and are then shed with a
// fast 503 + Retry-After. n <= 0 leaves queries unbounded.
func WithServerMaxInflight(n int, queueTimeout time.Duration) ServerOption {
	return server.WithMaxInflight(n, queueTimeout)
}

// WithServerAdmissionTarget arms CoDel-style adaptive shedding on the
// query gate (requires WithServerMaxInflight): once admissions have
// waited above target for a full interval the gate sheds at entry at an
// accelerating rate, and 503 Retry-After advice tracks the observed
// congestion. target <= 0 leaves the plain timeout gate.
func WithServerAdmissionTarget(target, interval time.Duration) ServerOption {
	return server.WithAdmissionTarget(target, interval)
}

// NewServer returns an http.Handler serving the resource; baseURL is
// stamped into exported metadata. The server exposes its own GET /metrics
// and GET /debug/last-traces endpoints.
func NewServer(res *Resource, baseURL string, opts ...ServerOption) *Server {
	return server.New(res, baseURL, opts...)
}

// NewClient returns an HTTP STARTS client; nil uses a default HTTP client.
func NewClient(hc *http.Client) *Client { return client.NewClient(hc) }

// StreamURL derives a source's chunked (?stream=1) query endpoint from
// its query URL, for Client.QueryStream.
func StreamURL(queryURL string) string { return client.StreamURL(queryURL) }

// NewLocalConn wraps an in-process source as a Conn; res may be nil.
func NewLocalConn(src *Source, res *Resource) Conn { return client.NewLocalConn(src, res) }

// NewHTTPConn wraps a remote source as a Conn given its metadata URL.
func NewHTTPConn(c *Client, sourceID, metadataURL string) Conn {
	return client.NewHTTPConn(c, sourceID, metadataURL)
}

// Metasearch.
type (
	// Metasearcher performs the three metasearch tasks over registered
	// sources.
	Metasearcher = core.Metasearcher
	// MetasearcherOptions configure a metasearcher.
	MetasearcherOptions = core.Options
	// Answer is a merged metasearch result.
	Answer = core.Answer
	// SourceStats is a source's observed past performance.
	SourceStats = core.SourceStats
	// AdaptiveSelector discounts estimated goodness by past performance
	// (latency, failures), SavvySearch-style.
	AdaptiveSelector = core.AdaptiveSelector
	// Broker exposes a metasearcher as a source connection, enabling
	// broker hierarchies (cascading metasearch).
	Broker = core.Broker
	// Selector ranks sources by estimated goodness (source selection).
	Selector = gloss.Selector
	// MergeStrategy fuses per-source ranks (rank merging).
	MergeStrategy = merge.Strategy
	// StreamEvent is one incremental delivery from Metasearcher.SearchStream:
	// newly rank-stable documents, a completed source's outcome, or the
	// terminal event carrying the complete answer.
	StreamEvent = core.StreamEvent
	// StreamSink receives StreamEvents, serially, as ranks become certain.
	StreamSink = core.StreamSink
	// StreamItem is one @SQStreamItem frame of a chunked wire answer.
	StreamItem = result.StreamItem
	// StreamError is a query failure reported in-band, after the HTTP
	// preamble was already committed.
	StreamError = result.StreamError
	// StreamConn is a source connection that can deliver a query's answer
	// incrementally (HTTP conns against ?stream=1 endpoints, and brokers).
	StreamConn = client.StreamConn
)

// NewMetasearcher returns a metasearcher; zero options give vGlOSS Sum(0)
// selection and TermStats merging.
func NewMetasearcher(opts MetasearcherOptions) *Metasearcher { return core.New(opts) }

// Per-query search options. These override one Search call's
// configuration without touching the metasearcher's shared Options, so
// concurrent callers can each pick their own budget, merger or source
// cap:
//
//	ans, _ := ms.Search(ctx, q,
//		starts.WithBudget(2*time.Second),
//		starts.WithMerger(starts.MergeScaled),
//		starts.WithMaxSources(3))
type (
	// SearchOption overrides one search's configuration.
	SearchOption = core.SearchOption
	// SourceStatEntry is one source's row in a Metasearcher stats
	// snapshot.
	SourceStatEntry = core.SourceStatEntry
)

// WithSelector ranks sources with s for this search only.
func WithSelector(s Selector) SearchOption { return core.WithSelector(s) }

// WithMerger fuses this search's per-source ranks with s.
func WithMerger(s MergeStrategy) SearchOption { return core.WithMerger(s) }

// WithMaxSources bounds how many sources this search contacts (0 = all
// promising ones).
func WithMaxSources(n int) SearchOption { return core.WithMaxSources(n) }

// WithBudget bounds this whole search — harvesting plus fan-out — by d.
func WithBudget(d time.Duration) SearchOption { return core.WithBudget(d) }

// WithTimeout sets this search's per-source deadline.
func WithTimeout(d time.Duration) SearchOption { return core.WithTimeout(d) }

// WithPostFilter toggles verification mode for this search.
func WithPostFilter(on bool) SearchOption { return core.WithPostFilter(on) }

// WithTrace records this search's span tree into t (its zero value is
// fine; Search re-begins it):
//
//	var tr starts.Trace
//	ans, _ := ms.Search(ctx, q, starts.WithTrace(&tr))
//	fmt.Print(tr.Snapshot().Tree())
func WithTrace(t *Trace) SearchOption { return core.WithTrace(t) }

// WithCache serves this search through c, overriding (or supplying) the
// metasearcher's MetasearcherOptions.Cache for this call only.
func WithCache(c *QueryCache) SearchOption { return core.WithCache(c) }

// WithNoCache bypasses the query-result cache for this search.
func WithNoCache() SearchOption { return core.WithNoCache() }

// WithSourceConcurrency caps this search's per-source parallel wire
// calls; takes effect only for sources whose dispatch queue this search
// is the first to touch.
func WithSourceConcurrency(n int) SearchOption { return core.WithSourceConcurrency(n) }

// WithQueueDepth bounds how many batches may wait per source before the
// dispatcher sheds with ErrQueueFull; first-touch only, like
// WithSourceConcurrency.
func WithQueueDepth(n int) SearchOption { return core.WithQueueDepth(n) }

// WithMaxBatchWire bounds how many distinct queued queries one wire call
// multiplexes for this search's batch-capable (BatchConn) sources;
// first-touch only, like WithSourceConcurrency.
func WithMaxBatchWire(n int) SearchOption { return core.WithMaxBatchWire(n) }

// Query-result caching and load shedding.
type (
	// QueryCache is a sharded LRU+TTL query-result cache with
	// singleflight coalescing, stale-while-revalidate and load shedding.
	// Plug it into MetasearcherOptions.Cache (merged answers) or wrap
	// individual conns with CacheMiddleware (per-source results).
	QueryCache = qcache.Cache
	// QueryCacheConfig configures a QueryCache; its zero value is usable.
	QueryCacheConfig = qcache.Config
	// CacheStore is a QueryCache's pluggable storage backend; implement
	// it to back the cache with anything from a plain map to a
	// distributed store. Coalescing and the admission gate stay in front
	// of any store.
	CacheStore = qcache.Store
	// CacheEntry is one stored value with its freshness bounds.
	CacheEntry = qcache.Entry
	// WarmEntry is one recorded workload item for cache warm starts.
	WarmEntry = qcache.WarmEntry
	// WarmStats reports one warm-start replay.
	WarmStats = qcache.WarmStats
)

// ErrShed is returned (wrapped) when the cache's admission gate sheds a
// query under overload; detect it with errors.Is.
var ErrShed = qcache.ErrShed

// Distributed peer cache tier: a CacheStore whose key space is
// partitioned across a fleet of metasearcher peers by a consistent-hash
// ring. Keys owned by a remote peer travel over keep-alive HTTP to that
// peer's /peer/cache endpoints (mounted with WithServerPeerCache or
// NewPeerHandler); everything else — and every operation whose owner is
// unreachable — lands in the node's local LRU, so a dead peer degrades
// to a local miss behind a bounded timeout and per-peer breaker, never a
// stall. Plug a PeerStore into QueryCacheConfig.Store and the fleet
// shares one logical result cache:
//
//	ps := starts.NewPeerStore(starts.PeerStoreConfig{
//		Self:  "http://10.0.0.1:8080",
//		Peers: []string{"http://10.0.0.1:8080", "http://10.0.0.2:8080"},
//		Codec: starts.PeerResultsCodec,
//	})
//	cache := starts.NewQueryCache(starts.QueryCacheConfig{Store: ps})
type (
	// PeerStore is the ring-sharded CacheStore over the peer fleet.
	PeerStore = peer.Store
	// PeerStoreConfig configures a PeerStore (self URL, peer URLs, codec,
	// timeout, breaker thresholds).
	PeerStoreConfig = peer.Config
	// PeerCodec serializes cached values for the peer wire.
	PeerCodec = peer.Codec
	// PeerStatus is one ring member's health row, as served on GET
	// /debug/peers.
	PeerStatus = peer.Status
	// PeerRing is the consistent-hash ring mapping keys to owners.
	PeerRing = peer.Ring
)

// PeerResultsCodec carries *Results values (per-source cached answers)
// over the peer wire as SOIF, the same encoding they travel the STARTS
// protocol in.
var PeerResultsCodec PeerCodec = peer.ResultsCodec{}

// NewPeerStore returns a peer-sharded cache store; a config with no
// Peers (or only Self) keeps every key local.
func NewPeerStore(cfg PeerStoreConfig) *PeerStore { return peer.New(cfg) }

// NewPeerRing builds a consistent-hash ring directly, for routing
// decisions outside the store (replicas <= 0 takes the default 64).
func NewPeerRing(peers []string, replicas int) *PeerRing { return peer.NewRing(peers, replicas) }

// NewPeerHandler serves a store's /peer/cache/{key} and /peer/len
// endpoints for mounting on a custom mux; WithServerPeerCache does this
// (plus /debug/peers) on a Server.
func NewPeerHandler(s *PeerStore) http.Handler { return peer.NewHandler(s) }

// WithServerPeerCache mounts ps's peer-cache endpoints on the server:
// GET/PUT/DELETE /peer/cache/{key}, GET /peer/len and the GET
// /debug/peers health view.
func WithServerPeerCache(ps *PeerStore) ServerOption { return server.WithPeerCache(ps) }

// Broker publishing: a ConnServer puts any Conn on the wire as a
// one-source STARTS resource, the serving half of a ZBroker-style
// hierarchy — wrap a regional Metasearcher in its Broker and serve that:
//
//	broker, _ := regional.NewBroker("region-west")
//	http.ListenAndServe(addr, starts.NewConnServer(broker, baseURL))
//
// A front metasearcher then discovers it like any leaf source and
// GlOSS-routes queries to the regions whose summaries match.
type ConnServer = server.ConnServer

// NewConnServer serves conn as a STARTS resource at baseURL.
func NewConnServer(conn Conn, baseURL string) *ConnServer {
	return server.NewConnServer(conn, baseURL)
}

// Debug routes for Metasearcher.DebugHandler.
type (
	// DebugRoute is one extra route mounted on a metasearcher's debug
	// mux, e.g. {"GET /debug/peers", peerStore.DebugHandler()}.
	DebugRoute = core.DebugRoute
)

// DebugJSON adapts a snapshot function into an indented-JSON debug
// handler, the shape DebugHandler's own routes use.
func DebugJSON(snapshot func() any) http.Handler { return core.DebugJSON(snapshot) }

// Per-source dispatching.
type (
	// Dispatcher owns a bounded work queue and worker pool per source
	// and coalesces identical in-flight calls across searches. Every
	// Metasearcher builds one internally (sized by
	// MetasearcherOptions.SourceConcurrency/QueueDepth); build one
	// yourself only to share a dispatch layer across hand-rolled conns.
	Dispatcher = dispatch.Dispatcher
	// DispatchConfig configures a Dispatcher; its zero value is usable.
	DispatchConfig = dispatch.Config
	// DispatchLimits sizes one source's queue: worker count and queue
	// depth. Queues are sized on first contact.
	DispatchLimits = dispatch.Limits
	// DispatchQueueStat is one source's dispatch counters, as reported
	// by Metasearcher.DispatchStats and GET /debug/dispatch.
	DispatchQueueStat = dispatch.QueueStat
)

// NewDispatcher returns a per-source dispatcher for use with
// DispatchMiddleware; remember to Close it.
func NewDispatcher(cfg DispatchConfig) *Dispatcher { return dispatch.New(cfg) }

// Dispatch errors, for errors.Is against per-source outcomes: a full
// queue sheds instead of blocking, an open breaker refuses instead of
// timing out, and a deadline too tight for the source's observed
// service time is refused before queueing.
var (
	ErrQueueFull        = dispatch.ErrQueueFull
	ErrDispatchRefused  = dispatch.ErrRefused
	ErrDispatcherClosed = dispatch.ErrClosed
	ErrDispatchDeadline = dispatch.ErrDeadline
)

// Adaptive admission control: a controller that re-derives each
// source's dispatch limits from live signals (latency windows, breaker
// state) with an AIMD loop. Configure it via
// MetasearcherOptions.Adaptive and run it with Metasearcher.StartAdaptive:
//
//	ms := starts.NewMetasearcher(starts.MetasearcherOptions{
//		Adaptive: &starts.AdaptiveLimitsConfig{LatencySLO: 500 * time.Millisecond},
//	})
//	defer ms.Close()
//	<-ms.StartAdaptive(ctx) // after ctx ends, wait for the loop to stop
type (
	// AdaptiveLimitsConfig tunes the AIMD admission controller; the zero
	// value is usable (1s interval, 2s SLO at p95, limits within
	// [1,64]×[4,256]).
	AdaptiveLimitsConfig = adaptive.Config
	// AdaptiveController is the running control loop; reach it through
	// Metasearcher.Adaptive for Tick/Snapshot.
	AdaptiveController = adaptive.Controller
	// AdaptiveDecision is one source's latest controller decision, as
	// served on GET /debug/adaptive.
	AdaptiveDecision = adaptive.Decision
)

// NewQueryCache returns a query-result cache (zero config takes the
// defaults: 4096 entries, 16 shards, one-minute TTL, stale window of
// four TTLs, unbounded admission).
func NewQueryCache(cfg QueryCacheConfig) *QueryCache { return qcache.New(cfg) }

// NewLRUCacheStore returns the default sharded LRU store explicitly, for
// composing a QueryCacheConfig.Store (e.g. wrapping it with logging).
func NewLRUCacheStore(maxEntries, shards int, reg *MetricsRegistry) CacheStore {
	return qcache.NewLRUStore(maxEntries, shards, reg)
}

// SaveWorkloadFile persists a recorded query workload
// (Metasearcher.Workload) as JSON lines for replay after a restart.
func SaveWorkloadFile(path string, entries []WarmEntry) error {
	return qcache.SaveWorkloadFile(path, entries)
}

// LoadWorkloadFile reads a workload saved by SaveWorkloadFile, for
// replaying with Metasearcher.Warm.
func LoadWorkloadFile(path string) ([]WarmEntry, error) {
	return qcache.LoadWorkloadFile(path)
}

// Observability.
type (
	// Trace is one operation's tree of timed spans; its zero value is
	// ready to use with WithTrace.
	Trace = obs.Trace
	// Span is one timed step inside a Trace.
	Span = obs.Span
	// TraceInfo is an immutable snapshot of a finished (or in-flight)
	// Trace; its Tree method renders the span tree.
	TraceInfo = obs.TraceInfo
	// SpanInfo is one span in a TraceInfo.
	SpanInfo = obs.SpanInfo
	// MetricsRegistry holds named counters, gauges and latency
	// histograms; Render emits them in Prometheus text format.
	MetricsRegistry = obs.Registry
	// TraceRing keeps the last N traces for debugging endpoints.
	TraceRing = obs.TraceRing
)

// NewMetricsRegistry returns an empty metrics registry, shareable across
// a metasearcher (MetasearcherOptions.Metrics), servers and instrumented
// conns.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTraceRing returns a ring buffer holding the last n traces.
func NewTraceRing(n int) *TraceRing { return obs.NewTraceRing(n) }

// MetricLabel encodes labels into a metric name: MetricLabel("m", "k",
// "v") is `m{k="v"}`.
func MetricLabel(name string, kv ...string) string { return obs.L(name, kv...) }

// WrapConn instruments a Conn: every call is timed into a child span of
// the context's current span and counted into reg.
func WrapConn(c Conn, reg *MetricsRegistry) Conn { return obs.WrapConn(c, reg) }

// The client.Conn and obs.SourceConn interfaces are structurally
// identical; these assertions pin that equivalence.
var (
	_ obs.SourceConn = Conn(nil)
	_ Conn           = obs.SourceConn(nil)
)

// Resilience.
type (
	// RetryPolicy configures exponential backoff with jitter for a
	// retrying Conn.
	RetryPolicy = resilient.RetryPolicy
	// RetryBudget caps retry amplification across many conns.
	RetryBudget = resilient.Budget
	// Breaker is a per-source circuit breaker, usable as
	// MetasearcherOptions.Breaker.
	Breaker = resilient.Breaker
	// BreakerConfig configures a Breaker.
	BreakerConfig = resilient.BreakerConfig
	// Degradation reports how an answer fell short of a clean fan-out.
	Degradation = core.Degradation
	// FaultConfig configures deterministic fault injection, for tests
	// and soak runs.
	FaultConfig = faulty.Config
	// FaultyConn is a fault-injecting Conn wrapper; SetFailing scripts
	// outages.
	FaultyConn = faulty.Conn
)

// NewRetryConn wraps a Conn with retries; budget may be nil or shared.
// A batch-capable conn stays batch-capable.
func NewRetryConn(c Conn, p RetryPolicy, budget *RetryBudget) Conn {
	if bc, ok := c.(BatchConn); ok {
		return resilient.WrapBatch(bc, p, budget)
	}
	return resilient.Wrap(c, p, budget)
}

// NewBreaker returns a circuit breaker; zero config takes the defaults.
func NewBreaker(cfg BreakerConfig) *Breaker { return resilient.NewBreaker(cfg) }

// NewFaultyConn wraps a Conn with deterministic, seedable fault
// injection.
func NewFaultyConn(c Conn, cfg FaultConfig) *FaultyConn { return faulty.WrapConn(c, cfg) }

// NewFaultMiddleware wraps an HTTP handler (e.g. a Server) with fault
// injection.
func NewFaultMiddleware(cfg FaultConfig, h http.Handler) http.Handler {
	return faulty.Middleware(cfg, h)
}

// ConnMiddleware decorates a Conn with one cross-cutting concern —
// retries, fault injection, instrumentation.
type ConnMiddleware = client.Middleware

// ChainConn wraps conn with the given middlewares; the first ends up
// innermost (closest to the source), the last outermost:
//
//	conn = starts.ChainConn(conn,
//		starts.FaultyMiddleware(faults), // injected at the source
//		starts.ObserveMiddleware(reg),   // times every attempt
//		starts.RetryMiddleware(policy, budget)) // retries observed faults
//
// Nil middlewares are skipped.
//
// Capability rule: every middleware this package exports is
// batch-transparent — wrapping a BatchConn yields a BatchConn — so a
// chain over a batch-capable transport keeps its QueryBatch seam from
// leaf to outermost wrapper. A custom middleware that returns a plain
// Conn silently downgrades the chain to one wire call per query; use
// ChainBatchConn to detect that.
func ChainConn(conn Conn, mw ...ConnMiddleware) Conn { return client.Chain(conn, mw...) }

// ChainBatchConn is ChainConn plus a capability report: ok is true when
// the fully wrapped conn still implements BatchConn, i.e. no middleware
// in the chain dropped the batch seam.
func ChainBatchConn(conn Conn, mw ...ConnMiddleware) (Conn, bool) {
	return client.ChainBatch(conn, mw...)
}

// RetryMiddleware is NewRetryConn as a ConnMiddleware. A batch-capable
// conn stays batch-capable: failed-but-retryable batch items are re-sent
// as a smaller batch on the next attempt.
func RetryMiddleware(p RetryPolicy, budget *RetryBudget) ConnMiddleware {
	return func(c Conn) Conn {
		if bc, ok := c.(BatchConn); ok {
			return resilient.WrapBatch(bc, p, budget)
		}
		return resilient.Wrap(c, p, budget)
	}
}

// FaultyMiddleware is NewFaultyConn as a ConnMiddleware. A batch-capable
// conn stays batch-capable: the injector gates once per wire call, so an
// injected fault fails the whole batch like a broken wire would.
func FaultyMiddleware(cfg FaultConfig) ConnMiddleware {
	return func(c Conn) Conn {
		if bc, ok := c.(BatchConn); ok {
			return faulty.WrapBatch(bc, cfg)
		}
		return faulty.WrapConn(c, cfg)
	}
}

// ObserveMiddleware is WrapConn as a ConnMiddleware.
func ObserveMiddleware(reg *MetricsRegistry) ConnMiddleware {
	return func(c Conn) Conn { return obs.WrapConn(c, reg) }
}

// CacheMiddleware caches a conn's per-source query results in cache.
// Compose it so the cache sits OUTSIDE the retrier (retries re-run the
// source, never the cache) and INSIDE the observer (hits still trace and
// count):
//
//	conn = starts.ChainConn(conn,
//		starts.RetryMiddleware(policy, budget),
//		starts.CacheMiddleware(cache),
//		starts.ObserveMiddleware(reg))
func CacheMiddleware(cache *QueryCache) ConnMiddleware {
	return func(c Conn) Conn { return qcache.WrapConn(c, cache) }
}

// DispatchMiddleware routes a conn's traffic through d: calls queue per
// source, run on bounded workers, and identical in-flight calls coalesce
// into one wire call. Compose it OUTSIDE the cache so concurrent
// identical misses batch before they can stampede the fill, and INSIDE
// the observer so coalesced calls still count:
//
//	conn = starts.ChainConn(conn,
//		starts.RetryMiddleware(policy, budget),
//		starts.CacheMiddleware(cache),
//		starts.DispatchMiddleware(d, starts.DispatchLimits{}),
//		starts.ObserveMiddleware(reg))
func DispatchMiddleware(d *Dispatcher, lim DispatchLimits) ConnMiddleware {
	return func(c Conn) Conn { return dispatch.WrapConn(c, d, lim) }
}

// Selectors.
var (
	// SelectVSum is the vGlOSS Sum(0) selector (default).
	SelectVSum Selector = gloss.VSum{}
	// SelectVMax is the vGlOSS Max(0) selector.
	SelectVMax Selector = gloss.VMax{}
	// SelectBGloss is the Boolean bGlOSS selector.
	SelectBGloss Selector = gloss.BGloss{}
)

// Merge strategies.
var (
	// MergeRawScore compares raw scores across sources (known broken;
	// kept as the baseline).
	MergeRawScore MergeStrategy = merge.RawScore{}
	// MergeScaled normalizes scores via each source's ScoreRange.
	MergeScaled MergeStrategy = merge.Scaled{}
	// MergeRoundRobin interleaves per-source ranks.
	MergeRoundRobin MergeStrategy = merge.RoundRobin{}
	// MergeTermStats re-ranks from returned term statistics (default).
	MergeTermStats MergeStrategy = merge.TermStats{}
)
