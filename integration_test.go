package starts_test

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildTool compiles one cmd/ binary into dir.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

// freePort grabs an ephemeral TCP port.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestCommandLineTools is the CLI smoke test: generate a corpus with
// startsgen, serve it with startsd, query one source with startsq, and
// metasearch across the resource with metasearch.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	startsgen := buildTool(t, dir, "startsgen")
	startsd := buildTool(t, dir, "startsd")
	startsq := buildTool(t, dir, "startsq")
	metasearch := buildTool(t, dir, "metasearch")

	// startsgen: corpus + workload files.
	corpusPath := filepath.Join(dir, "corpus.json")
	workloadPath := filepath.Join(dir, "workload.json")
	out, err := exec.Command(startsgen,
		"-out", corpusPath, "-workload", workloadPath,
		"-sources", "3", "-docs", "40", "-queries", "5", "-seed", "9",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("startsgen: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "3 sources, 120 documents") {
		t.Errorf("startsgen output: %s", out)
	}
	if _, err := os.Stat(workloadPath); err != nil {
		t.Fatalf("workload file missing: %v", err)
	}

	// startsd: serve the generated corpus.
	addr := freePort(t)
	server := exec.Command(startsd, "-addr", addr, "-corpus", corpusPath)
	var serverOut bytes.Buffer
	server.Stdout = &serverOut
	server.Stderr = &serverOut
	if err := server.Start(); err != nil {
		t.Fatalf("startsd: %v", err)
	}
	defer func() {
		_ = server.Process.Kill()
		_ = server.Wait()
	}()
	base := "http://" + addr
	waitReady(t, base+"/resource")

	// startsq: query one source directly.
	srcURL := fmt.Sprintf("%s/sources/src-00-databases", base)
	out, err = exec.Command(startsq,
		"-source", srcURL,
		"-ranking", `list((body-of-text "database"))`,
		"-max", "3",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("startsq: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "documents from src-00-databases") {
		t.Errorf("startsq output:\n%s", out)
	}

	// startsq -show metadata round trips through the SOIF decoder.
	out, err = exec.Command(startsq, "-source", srcURL, "-show", "metadata").CombinedOutput()
	if err != nil {
		t.Fatalf("startsq metadata: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "@SMetaAttributes{") {
		t.Errorf("startsq metadata output:\n%s", out)
	}

	// metasearch: full pipeline over the resource.
	out, err = exec.Command(metasearch,
		"-resources", base+"/resource",
		"-ranking", `list((body-of-text "database") (body-of-text "query"))`,
		"-select", "vsum", "-merge", "term-stats", "-max", "5",
	).CombinedOutput()
	if err != nil {
		t.Fatalf("metasearch: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "selection (vGlOSS-Sum(0)):") || !strings.Contains(text, "contacted:") {
		t.Errorf("metasearch output:\n%s", text)
	}
	if !strings.Contains(text, "http://src-00-databases/") {
		t.Errorf("metasearch found no database documents:\n%s", text)
	}
}

func waitReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server at %s never became ready", url)
}

// TestExamplesRun executes every example program end to end.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test builds binaries; skipped in -short")
	}
	examples := []struct{ name, mustContain string }{
		{"quickstart", "contacted sources:"},
		{"federation", "selection order:"},
		{"rankmerge", "merge strategy: term-stats"},
		{"multilingual", "Spanish query"},
		{"feedback", "relevance feedback"},
		{"hierarchy", "routed to:"},
	}
	for _, ex := range examples {
		ex := ex
		t.Run(ex.name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+ex.name)
			cmd.Env = os.Environ()
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s: %v\n%s", ex.name, err, out)
			}
			if !strings.Contains(string(out), ex.mustContain) {
				t.Errorf("example %s output missing %q:\n%s", ex.name, ex.mustContain, out)
			}
		})
	}
}

// TestInteractiveShell drives startsh with piped commands.
func TestInteractiveShell(t *testing.T) {
	if testing.Short() {
		t.Skip("shell smoke test builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	startsd := buildTool(t, dir, "startsd")
	startsh := buildTool(t, dir, "startsh")

	addr := freePort(t)
	server := exec.Command(startsd, "-addr", addr, "-sources", "2", "-docs", "30", "-seed", "3", "-overlap", "0")
	if err := server.Start(); err != nil {
		t.Fatalf("startsd: %v", err)
	}
	defer func() {
		_ = server.Process.Kill()
		_ = server.Wait()
	}()
	base := "http://" + addr
	waitReady(t, base+"/resource")

	script := strings.Join([]string{
		"sources",
		"summary src-00-databases",
		`select list((body-of-text "database"))`,
		`q list((body-of-text "database"))`,
		"stats",
		"meta src-01-medicine",
		"bogus command",
		"quit",
	}, "\n") + "\n"
	cmd := exec.Command(startsh, "-resources", base+"/resource")
	cmd.Stdin = strings.NewReader(script)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("startsh: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{
		"harvested 2 sources",
		"src-00-databases",
		"documents 30",
		"contacted",
		"mean-latency",
		"@SMetaAttributes{",
		`unknown command "bogus"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("shell output missing %q:\n%s", want, text)
		}
	}
}
