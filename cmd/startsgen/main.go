// Command startsgen generates a deterministic synthetic corpus (and,
// optionally, a query workload) to JSON files shared by the other tools
// and the experiment harnesses.
//
//	startsgen -out corpus.json -sources 10 -docs 500 -seed 7
//	startsgen -out corpus.json -workload workload.json -queries 100
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"starts/internal/corpus"
	"starts/internal/corpusio"
)

func main() {
	var (
		out      = flag.String("out", "corpus.json", "corpus output file")
		sources  = flag.Int("sources", 4, "number of sources")
		docs     = flag.Int("docs", 200, "documents per source")
		seed     = flag.Int64("seed", 42, "generation seed")
		overlap  = flag.Float64("overlap", 0, "fraction of docs duplicated into the next source")
		workload = flag.String("workload", "", "also write a query workload to this file")
		queries  = flag.Int("queries", 50, "workload size")
	)
	flag.Parse()

	g := corpus.Generate(corpus.Config{
		Seed: *seed, NumSources: *sources, DocsPerSource: *docs, Overlap: *overlap,
	})
	if err := corpusio.Save(*out, g); err != nil {
		log.Fatalf("startsgen: %v", err)
	}
	total := 0
	for _, s := range g.Sources {
		total += len(s.Docs)
	}
	fmt.Printf("wrote %s: %d sources, %d documents\n", *out, len(g.Sources), total)

	if *workload != "" {
		wl := corpus.Workload(g, corpus.WorkloadConfig{Seed: *seed + 1, NumQueries: *queries})
		type entry struct {
			Topic   string   `json:"topic"`
			Terms   []string `json:"terms"`
			Ranking string   `json:"ranking"`
			Filter  string   `json:"filter,omitempty"`
		}
		var entries []entry
		for _, wq := range wl {
			e := entry{Topic: wq.Topic, Terms: wq.Terms, Ranking: wq.Query.Ranking.String()}
			if wq.Query.Filter != nil {
				e.Filter = wq.Query.Filter.String()
			}
			entries = append(entries, e)
		}
		data, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			log.Fatalf("startsgen: %v", err)
		}
		if err := os.WriteFile(*workload, data, 0o644); err != nil {
			log.Fatalf("startsgen: %v", err)
		}
		fmt.Printf("wrote %s: %d queries\n", *workload, len(entries))
	}
}
