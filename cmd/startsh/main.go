// Command startsh is an interactive STARTS shell: it discovers one or
// more resources, harvests their sources, and then reads commands from
// stdin:
//
//	sources                         list harvested sources
//	meta <source-id>                show a source's metadata (SOIF)
//	summary <source-id>             show content-summary statistics
//	select <ranking-expr>           rank sources for a query (vGlOSS)
//	q <ranking-expr>                metasearch with a ranking expression
//	qs <ranking-expr>               streamed metasearch: documents print
//	                                as their merged rank becomes certain
//	f <filter-expr>                 metasearch with a filter expression
//	stats                           per-source statistics + metrics snapshot
//	help                            this text
//	quit
//
//	startsh -resources http://127.0.0.1:8080/resource
//
// Resilience flags: -retries (per-call retries with backoff),
// -breaker-after/-breaker-cooldown (per-source circuit breaker, state
// shown by stats), -budget (total deadline per search). With -trace,
// every q/f command prints the search's span tree.
//
// Dispatch flags: -source-concurrency and -source-queue size each
// source's worker pool and queue (stats shows the per-source dispatch
// counters); -max-batch-wire bounds how many queued queries one wire
// call multiplexes at a batch-capable source (the /query-batch
// endpoint); -adaptive-limits re-tunes both live from observed latency
// (AIMD against -latency-slo, every -adaptive-interval). With
// -warm-file, -warm-interval snapshots the workload periodically instead
// of only on quit; -debug-addr serves /metrics, /debug/workload,
// /debug/dispatch and /debug/adaptive for inspection while the shell
// runs.
//
// Distributed tier: -peers shards the per-source result cache across a
// fleet of metasearchers on a consistent-hash ring; this shell serves
// its own ring share (and GET /debug/peers) on -debug-addr. With
// -broker-addr the shell also publishes ITSELF as a STARTS source
// (ZBroker-style), so a front metasearcher can discover it at
// /resource and route queries here by this region's GlOSS summary.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"starts"
	"starts/internal/gloss"
)

func main() {
	var (
		resources       = flag.String("resources", "", "comma-separated resource URLs")
		budget          = flag.Duration("budget", 0, "total deadline per search (0 = none)")
		retries         = flag.Int("retries", 0, "retry each source call up to N extra times with exponential backoff")
		breakerAfter    = flag.Int("breaker-after", 0, "open a source's circuit after N consecutive failures (0 = no breaker)")
		breakerCooldown = flag.Duration("breaker-cooldown", 10*time.Second, "how long an open circuit sheds traffic before probing")
		cacheSize       = flag.Int("cache-size", 0, "cache merged answers for repeated queries, at most N entries (0 = no cache)")
		cacheTTL        = flag.Duration("cache-ttl", time.Minute, "fallback freshness for cached answers whose sources declare no DateExpires/DateChanged (expired entries serve stale while a refresh runs)")
		maxInflight     = flag.Int("max-inflight", 0, "bound concurrent uncached fan-outs; excess queries are shed with a fast error (0 = unbounded; implies caching)")
		warmFile        = flag.String("warm-file", "", "workload file: replay it through the cache on startup, and save this session's workload back to it on quit (implies caching)")
		warmConcurrency = flag.Int("warm-concurrency", 0, "bound concurrent warm-start replays (0 = default)")
		warmInterval    = flag.Duration("warm-interval", time.Minute, "snapshot the workload to -warm-file this often (and once on quit)")
		srcConcurrency  = flag.Int("source-concurrency", 0, "parallel wire calls per source (0 = default 4)")
		srcQueue        = flag.Int("source-queue", 0, "queued batches per source before shedding with a fast error (0 = default 64)")
		maxBatchWire    = flag.Int("max-batch-wire", 0, "distinct queued queries multiplexed into one wire call per batch-capable source (0 = default 16)")
		adaptiveLimits  = flag.Bool("adaptive-limits", false, "self-tune per-source concurrency and queue depth: AIMD on observed latency and breaker state")
		latencySLO      = flag.Duration("latency-slo", 0, "per-source latency objective driving -adaptive-limits decreases (0 = default 2s)")
		adaptInterval   = flag.Duration("adaptive-interval", 0, "control-loop period for -adaptive-limits (0 = default 1s)")
		debugAddr       = flag.String("debug-addr", "", "serve /metrics, /debug/workload, /debug/dispatch and /debug/adaptive on this address (e.g. 127.0.0.1:6060)")
		peers           = flag.String("peers", "", "comma-separated peer base URLs forming the distributed per-source result-cache ring")
		peerSelf        = flag.String("peer-self", "", "this shell's own URL among -peers (empty = http://<debug-addr>, or a pure client without one)")
		peerReplicas    = flag.Int("peer-replicas", 0, "virtual nodes per peer on the consistent-hash ring (0 = default 64)")
		peerTimeout     = flag.Duration("peer-timeout", 0, "per-peer-call budget before degrading to the local store (0 = default 150ms)")
		brokerAddr      = flag.String("broker-addr", "", "serve this metasearcher as a STARTS source on this address (ZBroker-style; a front metasearcher can discover it at /resource)")
		brokerID        = flag.String("broker-id", "broker", "source id this metasearcher publishes under with -broker-addr")
		trace           = flag.Bool("trace", false, "print each q/f search's span tree")
	)
	flag.Parse()
	if *resources == "" {
		fmt.Fprintln(os.Stderr, "startsh: -resources is required")
		os.Exit(2)
	}
	ctx := context.Background()
	hc := starts.NewClient(nil)
	reg := starts.NewMetricsRegistry()
	opts := starts.MetasearcherOptions{
		Timeout: 15 * time.Second, Budget: *budget, Metrics: reg,
		SourceConcurrency: *srcConcurrency, QueueDepth: *srcQueue, MaxBatchWire: *maxBatchWire,
	}
	if *cacheSize > 0 || *maxInflight > 0 || *warmFile != "" {
		opts.Cache = starts.NewQueryCache(starts.QueryCacheConfig{
			MaxEntries: *cacheSize, TTL: *cacheTTL,
			MaxInflight: *maxInflight, Metrics: reg,
		})
	}
	var br *starts.Breaker
	if *breakerAfter > 0 {
		br = starts.NewBreaker(starts.BreakerConfig{
			FailureThreshold: *breakerAfter, Cooldown: *breakerCooldown,
			Metrics: reg,
		})
		opts.Breaker = br
	}
	if *adaptiveLimits {
		opts.Adaptive = &starts.AdaptiveLimitsConfig{
			LatencySLO: *latencySLO, Interval: *adaptInterval,
		}
	}
	ms := starts.NewMetasearcher(opts)
	if *adaptiveLimits {
		ms.StartAdaptive(ctx)
	}
	mw := []starts.ConnMiddleware{starts.ObserveMiddleware(reg)}
	if *retries > 0 {
		retryBudget := &starts.RetryBudget{}
		mw = append(mw, starts.RetryMiddleware(starts.RetryPolicy{MaxAttempts: *retries + 1}, retryBudget))
	}
	// The distributed cache tier: per-source results live in a query
	// cache sharded across the -peers ring, outermost in the chain so a
	// hit (local or remote) skips retries and the wire entirely. This
	// shell serves its own ring share on -debug-addr (see below).
	var ps *starts.PeerStore
	if *peers != "" {
		self := *peerSelf
		if self == "" && *debugAddr != "" {
			self = "http://" + *debugAddr
		}
		ps = starts.NewPeerStore(starts.PeerStoreConfig{
			Self:     self,
			Peers:    splitList(*peers),
			Replicas: *peerReplicas,
			Timeout:  *peerTimeout,
			Codec:    starts.PeerResultsCodec,
			Metrics:  reg,
		})
		mw = append(mw, starts.CacheMiddleware(starts.NewQueryCache(starts.QueryCacheConfig{
			Store: ps, TTL: *cacheTTL, Metrics: reg,
		})))
	}
	for _, url := range splitList(*resources) {
		conns, err := hc.Discover(ctx, url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "startsh: discovering %s: %v\n", url, err)
			os.Exit(1)
		}
		for _, c := range conns {
			ms.Add(starts.ChainConn(c, mw...))
		}
	}
	if err := ms.Harvest(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "startsh: harvesting: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("harvested %d sources; type help for commands\n", len(ms.SourceIDs()))

	// Warm start: replay the previous session's workload through the
	// cache so this session's repeated queries hit from the first request.
	if *warmFile != "" {
		if entries, err := starts.LoadWorkloadFile(*warmFile); err != nil {
			if !os.IsNotExist(err) {
				fmt.Fprintf(os.Stderr, "startsh: loading warm file: %v\n", err)
				os.Exit(1)
			}
		} else if len(entries) > 0 {
			stats, err := ms.Warm(ctx, entries, *warmConcurrency)
			if err != nil {
				fmt.Fprintf(os.Stderr, "startsh: warming: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("warm start: %s\n", stats)
		}
	}

	// Periodic workload snapshots: a crash loses at most -warm-interval
	// of the hot set instead of the whole session.
	var saverDone <-chan struct{}
	saveCtx, stopSaver := context.WithCancel(ctx)
	defer stopSaver()
	if *warmFile != "" {
		saverDone = ms.StartWorkloadSaver(saveCtx, *warmFile, *warmInterval)
	}
	if *debugAddr != "" {
		// With a peer store, the debug listener doubles as this node's
		// peer-wire endpoint: its ring share is served right next to the
		// /debug/peers health view.
		var extra []starts.DebugRoute
		if ps != nil {
			ph := starts.NewPeerHandler(ps)
			for _, pattern := range []string{
				"GET /peer/cache/{key}", "PUT /peer/cache/{key}",
				"DELETE /peer/cache/{key}", "GET /peer/len",
			} {
				extra = append(extra, starts.DebugRoute{Pattern: pattern, Handler: ph})
			}
			extra = append(extra, starts.DebugRoute{Pattern: "GET /debug/peers", Handler: ps.DebugHandler()})
		}
		go func() {
			if err := http.ListenAndServe(*debugAddr, ms.DebugHandler(extra...)); err != nil {
				fmt.Fprintf(os.Stderr, "startsh: debug server: %v\n", err)
			}
		}()
		fmt.Printf("debug endpoints on http://%s/metrics /debug/workload /debug/dispatch /debug/adaptive\n", *debugAddr)
		if ps != nil {
			fmt.Printf("peer cache tier: %s, health on http://%s/debug/peers\n", ps.Ring(), *debugAddr)
		}
	}
	if *brokerAddr != "" {
		broker, err := ms.NewBroker(*brokerID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "startsh: %v\n", err)
			os.Exit(1)
		}
		cs := starts.NewConnServer(broker, "http://"+*brokerAddr)
		go func() {
			if err := http.ListenAndServe(*brokerAddr, cs); err != nil {
				fmt.Fprintf(os.Stderr, "startsh: broker server: %v\n", err)
			}
		}()
		fmt.Printf("publishing this metasearcher as source %q at http://%s/resource\n", *brokerID, *brokerAddr)
	}

	sh := &shell{ms: ms, ctx: ctx, br: br, reg: reg, trace: *trace}
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("starts> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "quit" || line == "exit" {
			break
		}
		if line != "" {
			sh.dispatch(line)
		}
		fmt.Print("starts> ")
	}
	fmt.Println()
	if saverDone != nil {
		// Stopping the saver triggers its final save; wait for it so the
		// session's last queries make it into the warm file.
		stopSaver()
		<-saverDone
	}
}

type shell struct {
	ms    *starts.Metasearcher
	ctx   context.Context
	br    *starts.Breaker
	reg   *starts.MetricsRegistry
	trace bool
}

func (s *shell) dispatch(line string) {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch cmd {
	case "help":
		fmt.Println("sources | meta <id> | summary <id> | select <ranking> | q <ranking> | qs <ranking> | f <filter> | stats | quit")
	case "sources":
		for _, id := range s.ms.SourceIDs() {
			md, _, ok := s.ms.Harvested(id)
			if !ok {
				fmt.Printf("  %s (not harvested)\n", id)
				continue
			}
			fmt.Printf("  %-24s parts=%-2s ranker=%-8s %s\n", id, md.QueryParts, md.RankingAlgorithmID, md.SourceName)
		}
	case "meta":
		md, _, ok := s.ms.Harvested(rest)
		if !ok {
			fmt.Printf("unknown source %q\n", rest)
			return
		}
		data, err := md.Marshal()
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		os.Stdout.Write(data)
	case "summary":
		_, sum, ok := s.ms.Harvested(rest)
		if !ok {
			fmt.Printf("unknown source %q\n", rest)
			return
		}
		fmt.Printf("documents %d, vocabulary %d terms, stemmed %v, field-qualified %v\n",
			sum.NumDocs, sum.TotalTerms(), sum.Stemming, sum.FieldsQualified)
	case "select":
		q, err := rankingQuery(rest)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		var infos []gloss.SourceInfo
		for _, id := range s.ms.SourceIDs() {
			md, sum, _ := s.ms.Harvested(id)
			infos = append(infos, gloss.SourceInfo{ID: id, Summary: sum, Meta: md})
		}
		for _, r := range (gloss.VSum{}).Rank(q, infos) {
			fmt.Printf("  %-24s %.1f\n", r.ID, r.Goodness)
		}
	case "q", "qs", "f":
		var q *starts.Query
		var err error
		if cmd == "f" {
			q = starts.NewQuery()
			q.Filter, err = starts.ParseFilter(rest)
		} else {
			q, err = rankingQuery(rest)
		}
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		q.MaxResults = 10
		var tr starts.Trace
		var sopts []starts.SearchOption
		if s.trace {
			sopts = append(sopts, starts.WithTrace(&tr))
		}
		var ans *starts.Answer
		if cmd == "qs" {
			// Streamed: each document prints the moment its merged rank is
			// certain, before the slowest source has answered.
			ans, err = s.ms.SearchStream(s.ctx, q, func(ev starts.StreamEvent) error {
				for i, d := range ev.Docs {
					fmt.Printf("%2d. %8.3f  %-55s %v\n", ev.Rank+i+1, d.RawScore, clip(d.Title(), 55), d.Sources)
				}
				return nil
			}, sopts...)
		} else {
			ans, err = s.ms.Search(s.ctx, q, sopts...)
		}
		if s.trace {
			fmt.Print(tr.Snapshot().Tree())
		}
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("contacted %v\n", ans.Contacted)
		if ans.Degraded.Any() {
			fmt.Printf("degraded: %s\n", ans.Degraded)
		}
		if cmd != "qs" {
			for i, d := range ans.Documents {
				fmt.Printf("%2d. %8.3f  %-55s %v\n", i+1, d.RawScore, clip(d.Title(), 55), d.Sources)
			}
		}
	case "stats":
		// One consistent snapshot (IDs and stats under a single lock
		// acquisition) rather than a racy per-source Stats loop.
		for _, e := range s.ms.StatsSnapshot() {
			circuit := ""
			if s.br != nil {
				circuit = " circuit=" + s.br.State(e.ID).String()
			}
			if !e.Queried {
				fmt.Printf("  %-24s (no queries yet)%s\n", e.ID, circuit)
				continue
			}
			fmt.Printf("  %-24s queries=%d failures=%d mean-latency=%v%s\n",
				e.ID, e.Stats.Queries, e.Stats.Failures, e.Stats.MeanLatency.Round(time.Millisecond), circuit)
		}
		for _, d := range s.ms.DispatchStats() {
			fmt.Printf("  %-24s dispatch: submitted=%d batched=%d inflight=%d/%d queued=%d/%d shed=%d refused=%d\n",
				d.Source, d.Submitted, d.Batched, d.Inflight, d.Workers, d.Depth, d.QueueCap, d.QueueFull, d.Refused)
		}
		fmt.Print(s.reg.Render())
	default:
		fmt.Printf("unknown command %q (try help)\n", cmd)
	}
}

func rankingQuery(src string) (*starts.Query, error) {
	q := starts.NewQuery()
	r, err := starts.ParseRanking(src)
	if err != nil {
		return nil, err
	}
	q.Ranking = r
	return q, nil
}

func clip(s string, n int) string {
	if len(s) > n {
		return s[:n-3] + "..."
	}
	return s
}

// splitList splits a comma-separated flag value, trimming whitespace and
// dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}
