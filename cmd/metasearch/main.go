// Command metasearch runs the full metasearch pipeline against one or
// more STARTS resources served over HTTP: discovery, metadata/summary
// harvesting, GlOSS source selection, per-source query translation,
// concurrent evaluation and rank merging.
//
//	metasearch -resources http://127.0.0.1:8080/resource \
//	           -ranking 'list((body-of-text "database"))' \
//	           -select vsum -merge term-stats -max-sources 3
//
// Resilience knobs: -retries/-retry-base (per-call retries with
// exponential backoff), -breaker-after/-breaker-cooldown (per-source
// circuit breaker), -budget (total search deadline), -adaptive
// (past-performance selection penalties), -adaptive-limits with
// -latency-slo/-adaptive-interval (AIMD self-tuning of each source's
// dispatch concurrency and queue depth), and -fault-rate/-fault-latency
// /-fault-seed (client-side fault injection for testing).
//
// Distributed tier: -peers shards a per-source result cache across a
// fleet of metasearchers on a consistent-hash ring (-peer-replicas
// virtual nodes each; -peer-self names this process's own entry); a
// query any peer has answered is a remote cache hit here, and a dead
// peer degrades to a local miss within -peer-timeout.
//
// -trace prints the search's span tree (harvest, select, translate,
// per-source fan-out, merge — with per-conn call spans and retry
// annotations nested inside) and a metrics snapshot to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"starts"
	"starts/internal/gloss"
	"starts/internal/merge"
)

func main() {
	var (
		resources  = flag.String("resources", "", "comma-separated resource URLs")
		filter     = flag.String("filter", "", "filter expression")
		ranking    = flag.String("ranking", "", "ranking expression")
		selectName = flag.String("select", "vsum", "source selector: vsum | vmax | bgloss | random")
		mergeName  = flag.String("merge", "term-stats", "merge strategy: term-stats | term-stats-local | scaled | raw | round-robin")
		maxSources = flag.Int("max-sources", 0, "contact at most N sources (0 = all promising)")
		max        = flag.Int("max", 10, "maximum number of merged documents")
		verify     = flag.Bool("verify", false, "post-filter results against dropped query parts")
		timeout    = flag.Duration("timeout", 15*time.Second, "per-source timeout")

		budget          = flag.Duration("budget", 0, "total deadline for the whole search, harvesting included (0 = none)")
		retries         = flag.Int("retries", 0, "retry each source call up to N extra times with exponential backoff")
		retryBase       = flag.Duration("retry-base", 100*time.Millisecond, "first retry backoff (doubles per retry, jittered)")
		breakerAfter    = flag.Int("breaker-after", 0, "open a source's circuit after N consecutive failures (0 = no breaker)")
		breakerCooldown = flag.Duration("breaker-cooldown", 10*time.Second, "how long an open circuit sheds traffic before probing")
		adaptive        = flag.Bool("adaptive", false, "discount selection goodness by observed latency, failures and breaker state")
		cacheSize       = flag.Int("cache-size", 0, "cache merged answers for repeated queries, at most N entries (0 = no cache)")
		cacheTTL        = flag.Duration("cache-ttl", time.Minute, "fallback freshness for cached answers whose sources declare no DateExpires/DateChanged (expired entries serve stale while a refresh runs)")
		maxInflight     = flag.Int("max-inflight", 0, "bound concurrent uncached fan-outs; excess queries are shed with a fast error (0 = unbounded; implies caching)")
		warmFile        = flag.String("warm-file", "", "workload file: replay it through the cache before searching, and save this run's workload back to it (implies caching)")
		warmConcurrency = flag.Int("warm-concurrency", 0, "bound concurrent warm-start replays (0 = default)")
		faultRate       = flag.Float64("fault-rate", 0, "inject client-side faults: per-call error probability (testing)")
		faultLatency    = flag.Duration("fault-latency", 0, "inject client-side faults: added per-call latency (testing)")
		faultSeed       = flag.Int64("fault-seed", 1, "fault-injection seed")
		srcConcurrency  = flag.Int("source-concurrency", 0, "parallel wire calls per source (0 = default 4)")
		srcQueue        = flag.Int("source-queue", 0, "queued batches per source before shedding with a fast error (0 = default 64)")
		maxBatchWire    = flag.Int("max-batch-wire", 0, "distinct queued queries multiplexed into one wire call per batch-capable source (0 = default 16)")
		adaptiveLimits  = flag.Bool("adaptive-limits", false, "self-tune per-source concurrency and queue depth: AIMD on observed latency and breaker state")
		latencySLO      = flag.Duration("latency-slo", 0, "per-source latency objective driving -adaptive-limits decreases (0 = default 2s)")
		adaptInterval   = flag.Duration("adaptive-interval", 0, "control-loop period for -adaptive-limits (0 = default 1s)")
		peers           = flag.String("peers", "", "comma-separated peer base URLs forming the distributed per-source result-cache ring")
		peerSelf        = flag.String("peer-self", "", "this process's own URL among -peers (empty = pure client of the ring)")
		peerReplicas    = flag.Int("peer-replicas", 0, "virtual nodes per peer on the consistent-hash ring (0 = default 64)")
		peerTimeout     = flag.Duration("peer-timeout", 0, "per-peer-call budget before degrading to the local store (0 = default 150ms)")
		stream          = flag.Bool("stream", false, "print documents as their merged rank becomes certain, instead of after the slowest source")
		trace           = flag.Bool("trace", false, "print the search's span tree and a metrics snapshot to stderr")
	)
	flag.Parse()
	if *resources == "" {
		fmt.Fprintln(os.Stderr, "metasearch: -resources is required")
		flag.Usage()
		os.Exit(2)
	}

	selectors := map[string]starts.Selector{
		"vsum": gloss.VSum{}, "vmax": gloss.VMax{}, "bgloss": gloss.BGloss{}, "random": gloss.Random{},
	}
	mergers := map[string]starts.MergeStrategy{
		"term-stats": merge.TermStats{}, "term-stats-local": merge.TermStats{LocalIDF: true},
		"scaled": merge.Scaled{}, "raw": merge.RawScore{}, "round-robin": merge.RoundRobin{},
	}
	sel, ok := selectors[*selectName]
	if !ok {
		log.Fatalf("metasearch: unknown selector %q", *selectName)
	}
	mrg, ok := mergers[*mergeName]
	if !ok {
		log.Fatalf("metasearch: unknown merge strategy %q", *mergeName)
	}

	reg := starts.NewMetricsRegistry()
	opts := starts.MetasearcherOptions{
		Selector: sel, Merger: mrg, MaxSources: *maxSources,
		Timeout: *timeout, PostFilter: *verify, Budget: *budget,
		Metrics:           reg,
		SourceConcurrency: *srcConcurrency, QueueDepth: *srcQueue, MaxBatchWire: *maxBatchWire,
	}
	if *cacheSize > 0 || *maxInflight > 0 || *warmFile != "" {
		opts.Cache = starts.NewQueryCache(starts.QueryCacheConfig{
			MaxEntries: *cacheSize, TTL: *cacheTTL,
			MaxInflight: *maxInflight, Metrics: reg,
		})
	}
	var br *starts.Breaker
	if *breakerAfter > 0 {
		br = starts.NewBreaker(starts.BreakerConfig{
			FailureThreshold: *breakerAfter, Cooldown: *breakerCooldown,
			Metrics: reg,
		})
		opts.Breaker = br
	}
	if *adaptiveLimits {
		opts.Adaptive = &starts.AdaptiveLimitsConfig{
			LatencySLO: *latencySLO, Interval: *adaptInterval,
		}
	}
	ms := starts.NewMetasearcher(opts)
	// Per-call options instead of mutating shared state: the adaptive
	// selector wraps the flag-chosen one for this run's search only.
	var sopts []starts.SearchOption
	if *adaptive {
		as := ms.NewAdaptiveSelector(sel)
		if br != nil {
			as.Broken = br.Broken
		}
		sopts = append(sopts, starts.WithSelector(as))
	}
	// The per-conn stack, innermost first: faults are injected at the
	// source, the observer times every attempt, and the retrier re-runs
	// observed failures.
	var mw []starts.ConnMiddleware
	if *faultRate > 0 || *faultLatency > 0 {
		mw = append(mw, starts.FaultyMiddleware(starts.FaultConfig{
			Seed: *faultSeed, ErrorRate: *faultRate, Latency: *faultLatency,
		}))
	}
	mw = append(mw, starts.ObserveMiddleware(reg))
	if *retries > 0 {
		retryBudget := &starts.RetryBudget{}
		mw = append(mw, starts.RetryMiddleware(starts.RetryPolicy{
			MaxAttempts: *retries + 1, BaseDelay: *retryBase,
		}, retryBudget))
	}
	// The distributed cache tier: per-source results live in a query
	// cache whose store is sharded across the -peers ring, so a query
	// answered by any peer is a remote hit here. Appended last, the cache
	// sits outermost — outside the retrier (retries re-run the source,
	// never the cache) with peer lookups behind bounded timeouts and
	// per-peer breakers (a dead peer is a local miss, not a stall).
	if *peers != "" {
		ps := starts.NewPeerStore(starts.PeerStoreConfig{
			Self:     *peerSelf,
			Peers:    splitList(*peers),
			Replicas: *peerReplicas,
			Timeout:  *peerTimeout,
			Codec:    starts.PeerResultsCodec,
			Metrics:  reg,
		})
		mw = append(mw, starts.CacheMiddleware(starts.NewQueryCache(starts.QueryCacheConfig{
			Store: ps, TTL: *cacheTTL, Metrics: reg,
		})))
	}
	ctx := context.Background()
	if *adaptiveLimits {
		ms.StartAdaptive(ctx)
	}
	hc := starts.NewClient(nil)
	for _, url := range splitList(*resources) {
		conns, err := hc.Discover(ctx, url)
		if err != nil {
			log.Fatalf("metasearch: discovering %s: %v", url, err)
		}
		for _, c := range conns {
			ms.Add(starts.ChainConn(c, mw...))
		}
	}
	if err := ms.Harvest(ctx); err != nil {
		log.Fatalf("metasearch: harvesting: %v", err)
	}
	fmt.Fprintf(os.Stderr, "harvested %d sources\n", len(ms.SourceIDs()))

	// Warm start: replay the previous run's workload through the cache so
	// this run's repeated queries hit from the first request.
	if *warmFile != "" {
		if entries, werr := starts.LoadWorkloadFile(*warmFile); werr != nil {
			if !os.IsNotExist(werr) {
				log.Fatalf("metasearch: loading warm file: %v", werr)
			}
		} else if len(entries) > 0 {
			stats, werr := ms.Warm(ctx, entries, *warmConcurrency)
			if werr != nil {
				log.Fatalf("metasearch: warming: %v", werr)
			}
			fmt.Fprintf(os.Stderr, "warm start: %s\n", stats)
		}
	}

	q := starts.NewQuery()
	var err error
	if *filter != "" {
		if q.Filter, err = starts.ParseFilter(*filter); err != nil {
			log.Fatalf("metasearch: %v", err)
		}
	}
	if *ranking != "" {
		if q.Ranking, err = starts.ParseRanking(*ranking); err != nil {
			log.Fatalf("metasearch: %v", err)
		}
	}
	q.MaxResults = *max

	var tr starts.Trace
	if *trace {
		sopts = append(sopts, starts.WithTrace(&tr))
	}
	var answer *starts.Answer
	var err2 error
	if *stream {
		// Streamed delivery: each document prints the moment its merged
		// rank can no longer change, so the fast sources' head of the
		// answer appears while slower sources are still being waited on.
		answer, err2 = ms.SearchStream(ctx, q, func(ev starts.StreamEvent) error {
			for i, d := range ev.Docs {
				fmt.Printf("%2d. %-60s %v\n", ev.Rank+i+1, d.Title(), d.Sources)
				fmt.Printf("    %s\n", d.Linkage())
			}
			return nil
		}, sopts...)
	} else {
		answer, err2 = ms.Search(ctx, q, sopts...)
	}
	if *trace {
		fmt.Fprint(os.Stderr, tr.Snapshot().Tree())
		fmt.Fprint(os.Stderr, reg.Render())
	}
	if err2 != nil {
		log.Fatalf("metasearch: %v", err2)
	}
	if *stream {
		fmt.Println()
	}
	fmt.Printf("selection (%s):", sel.Name())
	for _, r := range answer.Selected {
		fmt.Printf(" %s=%.1f", r.ID, r.Goodness)
	}
	fmt.Printf("\ncontacted: %v\nmerge: %s\n", answer.Contacted, mrg.Name())
	if !*stream {
		fmt.Println()
		for i, d := range answer.Documents {
			fmt.Printf("%2d. %-60s %v\n", i+1, d.Title(), d.Sources)
			fmt.Printf("    %s\n", d.Linkage())
		}
	}
	if answer.Degraded.Any() {
		fmt.Fprintf(os.Stderr, "degraded answer: %s\n", answer.Degraded)
	}
	for id, oc := range answer.PerSource {
		switch {
		case oc.Err != nil:
			fmt.Fprintf(os.Stderr, "source %s failed: %v\n", id, oc.Err)
		case oc.Report != nil && !oc.Report.Clean():
			fmt.Fprintf(os.Stderr, "source %s: lossy translation (%d dropped terms, filter dropped %v, ranking dropped %v)\n",
				id, len(oc.Report.DroppedTerms), oc.Report.DroppedFilter, oc.Report.DroppedRanking)
		}
	}
	if *warmFile != "" {
		if werr := starts.SaveWorkloadFile(*warmFile, ms.Workload()); werr != nil {
			fmt.Fprintf(os.Stderr, "metasearch: saving warm file: %v\n", werr)
		}
	}
}

// splitList splits a comma-separated flag value, trimming whitespace and
// dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}
