// Command startsq queries a single STARTS source from the command line
// and prints the results as a table or as raw SOIF.
//
//	startsq -source http://127.0.0.1:8080/sources/src-00-databases \
//	        -ranking 'list((body-of-text "database") (body-of-text "query"))' \
//	        -max 10
//
// It can also fetch a source's metadata or content summary:
//
//	startsq -source http://.../sources/src-00-databases -show metadata
//	startsq -source http://.../sources/src-00-databases -show summary
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"starts"
	"starts/internal/attr"
)

func main() {
	var (
		sourceURL = flag.String("source", "", "source base URL (…/sources/{id})")
		filter    = flag.String("filter", "", "filter expression")
		ranking   = flag.String("ranking", "", "ranking expression")
		max       = flag.Int("max", 10, "maximum number of documents")
		minScore  = flag.Float64("min-score", 0, "minimum document score")
		keepStop  = flag.Bool("keep-stop-words", false, "ask the source to keep stop words")
		fields    = flag.String("answer", "title author", "answer fields (space separated)")
		show      = flag.String("show", "results", "what to print: results | soif | metadata | summary")
		stream    = flag.Bool("stream", false, "query the ?stream=1 endpoint and print documents as frames arrive")
		timeout   = flag.Duration("timeout", 15*time.Second, "request timeout")
	)
	flag.Parse()
	if *sourceURL == "" {
		fmt.Fprintln(os.Stderr, "startsq: -source is required")
		flag.Usage()
		os.Exit(2)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := starts.NewClient(nil)

	switch *show {
	case "metadata":
		m, err := c.Metadata(ctx, *sourceURL+"/metadata")
		if err != nil {
			log.Fatalf("startsq: %v", err)
		}
		data, err := m.Marshal()
		if err != nil {
			log.Fatalf("startsq: %v", err)
		}
		os.Stdout.Write(data)
		return
	case "summary":
		s, err := c.Summary(ctx, *sourceURL+"/summary")
		if err != nil {
			log.Fatalf("startsq: %v", err)
		}
		fmt.Printf("documents: %d   vocabulary: %d terms   stemmed: %v   fields: %v\n",
			s.NumDocs, s.TotalTerms(), s.Stemming, s.FieldsQualified)
		return
	}

	if *filter == "" && *ranking == "" {
		log.Fatal("startsq: need -filter and/or -ranking")
	}
	q := starts.NewQuery()
	var err error
	if *filter != "" {
		if q.Filter, err = starts.ParseFilter(*filter); err != nil {
			log.Fatalf("startsq: %v", err)
		}
	}
	if *ranking != "" {
		if q.Ranking, err = starts.ParseRanking(*ranking); err != nil {
			log.Fatalf("startsq: %v", err)
		}
	}
	q.MaxResults = *max
	q.MinScore = *minScore
	q.DropStopWords = !*keepStop
	q.AnswerFields = nil
	for _, f := range strings.Fields(*fields) {
		q.AnswerFields = append(q.AnswerFields, attr.Field(f))
	}

	var res *starts.Results
	if *stream {
		// Chunked delivery: the server flushes @SQStreamItem frames as
		// ranks stabilize; each prints on arrival, and the terminal
		// frame's remainder covers whatever no earlier frame carried (a
		// leaf's whole answer arrives as one terminal frame).
		printed := 0
		emit := func(rank int, docs []*starts.ResultDocument) {
			for i, d := range docs {
				fmt.Printf("%2d. %8.4f  %s\n", rank+i+1, d.RawScore, d.Title())
				fmt.Printf("              %s\n", d.Linkage())
			}
		}
		res, err = c.QueryStream(ctx, starts.StreamURL(*sourceURL+"/query"), q,
			func(it starts.StreamItem) error {
				if it.Final != nil {
					if printed < len(it.Final.Documents) {
						emit(printed, it.Final.Documents[printed:])
						printed = len(it.Final.Documents)
					}
					return nil
				}
				emit(it.Rank, it.Docs)
				printed += len(it.Docs)
				return nil
			})
	} else {
		res, err = c.Query(ctx, *sourceURL+"/query", q)
	}
	if err != nil {
		log.Fatalf("startsq: %v", err)
	}
	if *show == "soif" {
		data, err := res.Marshal()
		if err != nil {
			log.Fatalf("startsq: %v", err)
		}
		os.Stdout.Write(data)
		return
	}
	if res.ActualFilter != nil {
		fmt.Printf("actual filter:  %s\n", res.ActualFilter)
	}
	if res.ActualRanking != nil {
		fmt.Printf("actual ranking: %s\n", res.ActualRanking)
	}
	fmt.Printf("%d documents from %s\n", len(res.Documents), strings.Join(res.Sources, ", "))
	if !*stream {
		fmt.Println()
		for i, d := range res.Documents {
			fmt.Printf("%2d. %8.4f  %s\n", i+1, d.RawScore, d.Title())
			fmt.Printf("              %s\n", d.Linkage())
		}
	}
}
