// Command experiments runs every claim-validation experiment of DESIGN.md
// (X1, X2, X3, X4, X5, X7, X8) at the EXPERIMENTS.md configurations and
// prints their tables. X6 (throughput) lives in the benchmark suite:
// go test -bench=. -benchmem .
//
//	go run ./cmd/experiments            # all experiments
//	go run ./cmd/experiments -only X2   # one experiment
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"starts/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run a single experiment (X1, X2, X3, X4, X5, X7, X8, X2a, X4a)")
	flag.Parse()

	runners := []struct {
		id  string
		run func() (*experiments.Table, error)
	}{
		{"X1", func() (*experiments.Table, error) {
			r, err := experiments.RunSummarySize(11, 10, 300)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"X2", func() (*experiments.Table, error) {
			r, err := experiments.RunSelection(experiments.DefaultSelectionConfig())
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"X3", func() (*experiments.Table, error) {
			r, err := experiments.RunMerge(experiments.DefaultMergeConfig())
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"X4", func() (*experiments.Table, error) {
			r, err := experiments.RunTranslation(experiments.DefaultTranslationConfig())
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"X5", func() (*experiments.Table, error) {
			r, err := experiments.RunStopWords()
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"X7", func() (*experiments.Table, error) {
			r, err := experiments.RunDuplicates(experiments.DefaultDuplicatesConfig())
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"X8", func() (*experiments.Table, error) {
			r, err := experiments.RunCalibration(experiments.DefaultMergeConfig())
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"X2a", func() (*experiments.Table, error) {
			r, err := experiments.RunGranularity(experiments.DefaultSelectionConfig())
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
		{"X4a", func() (*experiments.Table, error) {
			r, err := experiments.RunProxAblation(51, 400, 60)
			if err != nil {
				return nil, err
			}
			return r.Table(), nil
		}},
	}

	ran := 0
	for _, r := range runners {
		if *only != "" && !strings.EqualFold(*only, r.id) {
			continue
		}
		tab, err := r.run()
		if err != nil {
			log.Fatalf("experiments: %s: %v", r.id, err)
		}
		fmt.Println(tab.Render())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *only)
		os.Exit(2)
	}
}
