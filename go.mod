module starts

go 1.22
