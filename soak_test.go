package starts_test

import (
	"context"
	"testing"
	"time"

	"starts"
	"starts/internal/corpus"
	"starts/internal/engine"
	"starts/internal/eval"
)

// TestScaleSoak drives the full pipeline at a larger scale: 10
// heterogeneous sources × 500 documents, 30 workload queries through
// selection, translation, fan-out and merging. It asserts end-to-end
// sanity (every topical query answered, no duplicates, sane latency),
// not exact numbers.
func TestScaleSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test indexes 5000 documents; skipped in -short")
	}
	g := corpus.Generate(corpus.Config{Seed: 77, NumSources: 10, DocsPerSource: 500, Overlap: 0.05})
	scorers := []engine.Scorer{engine.TFIDF{}, engine.TopK{}, engine.RawTF{}}
	ms := starts.NewMetasearcher(starts.MetasearcherOptions{
		MaxSources: 4,
		Merger:     starts.MergeTermStats,
	})
	for i, spec := range g.Sources {
		cfg := engine.NewVectorConfig()
		cfg.Scorer = scorers[i%len(scorers)]
		eng, err := starts.NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		src, err := starts.NewSource(spec.ID, eng)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range spec.Docs {
			if err := src.Add(d); err != nil {
				t.Fatal(err)
			}
		}
		ms.Add(starts.NewLocalConn(src, nil))
	}
	ctx := context.Background()
	harvestStart := time.Now()
	if err := ms.Harvest(ctx); err != nil {
		t.Fatal(err)
	}
	t.Logf("harvested 10 sources in %v", time.Since(harvestStart))

	workload := corpus.Workload(g, corpus.WorkloadConfig{Seed: 78, NumQueries: 30, FilterFraction: -1})
	answered := 0
	var total time.Duration
	for _, wq := range workload {
		start := time.Now()
		ans, err := ms.Search(ctx, wq.Query)
		if err != nil {
			t.Fatalf("query %v: %v", wq.Terms, err)
		}
		elapsed := time.Since(start)
		total += elapsed
		if elapsed > 5*time.Second {
			t.Errorf("query %v took %v", wq.Terms, elapsed)
		}
		if len(ans.Documents) > 0 {
			answered++
		}
		seen := map[string]bool{}
		for _, d := range ans.Documents {
			if seen[d.Linkage()] {
				t.Fatalf("duplicate %s in merged answer", d.Linkage())
			}
			seen[d.Linkage()] = true
		}
		if len(ans.Contacted) > 4 {
			t.Errorf("MaxSources ignored: contacted %v", ans.Contacted)
		}
		// Selection sanity: the topical source family should lead for
		// head-of-vocabulary queries.
		if len(ans.Selected) > 0 && ans.Selected[0].Goodness > 0 {
			sel := eval.Rn([]string{ans.Selected[0].ID}, map[string]float64{ans.Selected[0].ID: 1}, 1)
			if sel != 1 {
				t.Errorf("Rn self-check failed")
			}
		}
	}
	if answered < 25 {
		t.Errorf("only %d/30 queries answered", answered)
	}
	t.Logf("30 queries in %v (mean %v)", total, total/30)
}
