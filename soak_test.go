package starts_test

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"starts"
	"starts/internal/corpus"
	"starts/internal/engine"
	"starts/internal/eval"
	"starts/internal/resilient"
)

// TestScaleSoak drives the full pipeline at a larger scale: 10
// heterogeneous sources × 500 documents, 30 workload queries through
// selection, translation, fan-out and merging. It asserts end-to-end
// sanity (every topical query answered, no duplicates, sane latency),
// not exact numbers.
func TestScaleSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test indexes 5000 documents; skipped in -short")
	}
	g := corpus.Generate(corpus.Config{Seed: 77, NumSources: 10, DocsPerSource: 500, Overlap: 0.05})
	scorers := []engine.Scorer{engine.TFIDF{}, engine.TopK{}, engine.RawTF{}}
	ms := starts.NewMetasearcher(starts.MetasearcherOptions{
		MaxSources: 4,
		Merger:     starts.MergeTermStats,
	})
	for i, spec := range g.Sources {
		cfg := engine.NewVectorConfig()
		cfg.Scorer = scorers[i%len(scorers)]
		eng, err := starts.NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		src, err := starts.NewSource(spec.ID, eng)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range spec.Docs {
			if err := src.Add(d); err != nil {
				t.Fatal(err)
			}
		}
		ms.Add(starts.NewLocalConn(src, nil))
	}
	ctx := context.Background()
	harvestStart := time.Now()
	if err := ms.Harvest(ctx); err != nil {
		t.Fatal(err)
	}
	t.Logf("harvested 10 sources in %v", time.Since(harvestStart))

	workload := corpus.Workload(g, corpus.WorkloadConfig{Seed: 78, NumQueries: 30, FilterFraction: -1})
	answered := 0
	var total time.Duration
	for _, wq := range workload {
		start := time.Now()
		ans, err := ms.Search(ctx, wq.Query)
		if err != nil {
			t.Fatalf("query %v: %v", wq.Terms, err)
		}
		elapsed := time.Since(start)
		total += elapsed
		if elapsed > 5*time.Second {
			t.Errorf("query %v took %v", wq.Terms, elapsed)
		}
		if len(ans.Documents) > 0 {
			answered++
		}
		seen := map[string]bool{}
		for _, d := range ans.Documents {
			if seen[d.Linkage()] {
				t.Fatalf("duplicate %s in merged answer", d.Linkage())
			}
			seen[d.Linkage()] = true
		}
		if len(ans.Contacted) > 4 {
			t.Errorf("MaxSources ignored: contacted %v", ans.Contacted)
		}
		// Selection sanity: the topical source family should lead for
		// head-of-vocabulary queries.
		if len(ans.Selected) > 0 && ans.Selected[0].Goodness > 0 {
			sel := eval.Rn([]string{ans.Selected[0].ID}, map[string]float64{ans.Selected[0].ID: 1}, 1)
			if sel != 1 {
				t.Errorf("Rn self-check failed")
			}
		}
	}
	if answered < 25 {
		t.Errorf("only %d/30 queries answered", answered)
	}
	t.Logf("30 queries in %v (mean %v)", total, total/30)
}

// resilienceFleet builds n small sources sharing a topic vocabulary, so
// every "databases" query selects all of them.
func resilienceFleet(t *testing.T, n int) []starts.Conn {
	t.Helper()
	conns := make([]starts.Conn, n)
	for i := range conns {
		eng, err := starts.NewVectorEngine()
		if err != nil {
			t.Fatal(err)
		}
		src, err := starts.NewSource(fmt.Sprintf("S%d", i), eng)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 4; j++ {
			if err := src.Add(&starts.Document{
				Linkage: fmt.Sprintf("http://s%d/%d", i, j),
				Title:   fmt.Sprintf("S%d paper %d", i, j),
				Body:    "distributed databases metasearch ranking selection merging",
			}); err != nil {
				t.Fatal(err)
			}
		}
		conns[i] = starts.NewLocalConn(src, nil)
	}
	return conns
}

func soakQuery(t *testing.T, term string) *starts.Query {
	t.Helper()
	q := starts.NewQuery()
	r, err := starts.ParseRanking(`list((body-of-text "` + term + `"))`)
	if err != nil {
		t.Fatal(err)
	}
	q.Ranking = r
	return q
}

// TestFlappingSoak scripts an outage of 2 of 5 sources and drives the
// metasearcher through the whole breaker lifecycle: the circuits open
// after the failure threshold, answers stay merged (degraded, never
// all-or-nothing), and recovery probes re-close the circuits.
func TestFlappingSoak(t *testing.T) {
	br := starts.NewBreaker(starts.BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         30 * time.Millisecond,
	})
	ms := starts.NewMetasearcher(starts.MetasearcherOptions{
		Timeout: 2 * time.Second,
		Breaker: br,
	})
	conns := resilienceFleet(t, 5)
	var flappy []*starts.FaultyConn
	for i, c := range conns {
		if i < 2 {
			fc := starts.NewFaultyConn(c, starts.FaultConfig{})
			flappy = append(flappy, fc)
			c = fc
		}
		ms.Add(c)
	}
	ctx := context.Background()
	if err := ms.Harvest(ctx); err != nil {
		t.Fatal(err)
	}
	q := soakQuery(t, "databases")

	// Healthy phase: a clean fan-out across all five.
	ans, err := ms.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Contacted) != 5 || ans.Degraded.Any() {
		t.Fatalf("healthy phase: contacted %v, degraded %s", ans.Contacted, ans.Degraded)
	}

	// Outage: S0 and S1 go down. Every search must still return a merged
	// answer naming the failing sources, and after FailureThreshold
	// failures both circuits must open.
	for _, fc := range flappy {
		fc.SetFailing(true)
	}
	for i := 0; i < 6; i++ {
		ans, err := ms.Search(ctx, q)
		if err != nil {
			t.Fatalf("outage search %d errored (all-or-nothing): %v", i, err)
		}
		if len(ans.Documents) == 0 {
			t.Fatalf("outage search %d returned no documents", i)
		}
		degraded := map[string]bool{}
		for _, id := range ans.Degraded.Failed {
			degraded[id] = true
		}
		for _, id := range ans.Degraded.Skipped {
			degraded[id] = true
		}
		if !degraded["S0"] || !degraded["S1"] {
			t.Errorf("outage search %d does not name the flapping sources: %s", i, ans.Degraded)
		}
	}
	if !br.Broken("S0") || !br.Broken("S1") {
		t.Fatalf("circuits not open after outage: S0=%v S1=%v", br.State("S0"), br.State("S1"))
	}
	if br.State("S2") != resilient.StateClosed {
		t.Errorf("healthy source's circuit = %v, want closed", br.State("S2"))
	}

	// Recovery: the sources come back; after the cooldown a probe query
	// succeeds and re-closes each circuit.
	for _, fc := range flappy {
		fc.SetFailing(false)
	}
	time.Sleep(40 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for (br.Broken("S0") || br.Broken("S1")) && time.Now().Before(deadline) {
		if _, err := ms.Search(ctx, q); err != nil {
			t.Fatalf("recovery search errored: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if br.State("S0") != resilient.StateClosed || br.State("S1") != resilient.StateClosed {
		t.Fatalf("circuits did not re-close: S0=%v S1=%v", br.State("S0"), br.State("S1"))
	}
	ans, err = ms.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Contacted) != 5 || ans.Degraded.Any() {
		t.Errorf("recovered phase: contacted %v, degraded %s", ans.Contacted, ans.Degraded)
	}
}

// TestFaultInjectionAcceptance is the PR's acceptance scenario: 30%
// per-source fault injection across 5 sources, with retries in front.
// Every search must return a merged answer — never an all-or-nothing
// error — and Answer.Degraded must name exactly the sources that failed.
func TestFaultInjectionAcceptance(t *testing.T) {
	ms := starts.NewMetasearcher(starts.MetasearcherOptions{Timeout: 2 * time.Second})
	budget := resilient.NewBudget(50, 0.5)
	policy := starts.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Seed:        99,
	}
	for i, c := range resilienceFleet(t, 5) {
		fc := starts.NewFaultyConn(c, starts.FaultConfig{
			Seed:      int64(100 + i),
			ErrorRate: 0.3,
		})
		ms.Add(starts.NewRetryConn(fc, policy, budget))
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if ms.Harvest(ctx) == nil {
			break
		}
	}

	terms := []string{"databases", "metasearch", "distributed", "ranking"}
	degradedRuns := 0
	for i := 0; i < 40; i++ {
		q := soakQuery(t, terms[i%len(terms)])
		ans, err := ms.Search(ctx, q)
		if err != nil {
			t.Fatalf("search %d errored under 30%% faults (all-or-nothing): %v", i, err)
		}
		if len(ans.Documents) == 0 {
			t.Fatalf("search %d returned no documents", i)
		}
		if ans.Degraded.Any() {
			degradedRuns++
		}
		// Degraded.Failed must name exactly the contacted sources whose
		// query failed.
		failed := map[string]bool{}
		for _, id := range ans.Degraded.Failed {
			failed[id] = true
		}
		for _, id := range ans.Contacted {
			oc := ans.PerSource[id]
			if oc == nil {
				t.Fatalf("search %d: contacted %s has no outcome", i, id)
			}
			if (oc.Err != nil) != failed[id] {
				t.Errorf("search %d: %s err=%v but Degraded.Failed=%v", i, id, oc.Err, failed[id])
			}
		}
	}
	t.Logf("%d/40 searches degraded under 30%% fault injection", degradedRuns)
}

// soakPercentile returns the q-th percentile of ds (q in (0,1]).
func soakPercentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// TestAdaptiveOverloadSoak is the adaptive-admission acceptance scenario:
// a fleet of four fast sources, one of which degrades mid-run to a
// latency far past the per-source timeout. With the AIMD controller and
// deadline-aware admission on, the run must show (1) the degraded
// source's dispatch limits shrinking to the floor, (2) overall search
// latency staying bounded because sheds — queue-full and doomed-deadline
// refusals — concentrate on the degraded source instead of every search
// waiting it out, and (3) the limits re-expanding once the source
// recovers.
func TestAdaptiveOverloadSoak(t *testing.T) {
	const (
		perSourceTimeout = 60 * time.Millisecond
		healthyLatency   = 2 * time.Millisecond
		degradedLatency  = 500 * time.Millisecond
	)
	ms := starts.NewMetasearcher(starts.MetasearcherOptions{
		Timeout:           perSourceTimeout,
		SourceConcurrency: 4,
		QueueDepth:        8,
		Adaptive: &starts.AdaptiveLimitsConfig{
			LatencySLO:     25 * time.Millisecond,
			Quantile:       0.5, // median: robust to stray slow runs in small windows
			MaxConcurrency: 8,
			MinQueueDepth:  2,
		},
	})
	defer ms.Close()
	var faulty []*starts.FaultyConn
	for _, c := range resilienceFleet(t, 4) {
		fc := starts.NewFaultyConn(c, starts.FaultConfig{Latency: healthyLatency})
		faulty = append(faulty, fc)
		ms.Add(fc)
	}
	ctx := context.Background()
	if err := ms.Harvest(ctx); err != nil {
		t.Fatal(err)
	}
	ctl := ms.Adaptive()
	// Distinct terms per burst member: identical concurrent queries would
	// coalesce into one dispatch batch per source and never exercise the
	// queue bound or the deadline check.
	qs := []*starts.Query{
		soakQuery(t, "databases"), soakQuery(t, "metasearch"),
		soakQuery(t, "ranking"), soakQuery(t, "merging"),
	}

	// burst runs n concurrent searches and returns each one's duration.
	burst := func(n int) []time.Duration {
		t.Helper()
		out := make([]time.Duration, n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				start := time.Now()
				ans, err := ms.Search(ctx, qs[i%len(qs)])
				if err != nil {
					t.Errorf("search errored (all-or-nothing): %v", err)
					return
				}
				if len(ans.Documents) == 0 {
					t.Error("search returned no documents")
				}
				out[i] = time.Since(start)
			}(i)
		}
		wg.Wait()
		return out
	}
	s0 := func() starts.DispatchQueueStat {
		t.Helper()
		for _, st := range ms.DispatchStats() {
			if st.Source == "S0" {
				return st
			}
		}
		t.Fatal("no dispatch queue for S0")
		return starts.DispatchQueueStat{}
	}

	// Healthy phase: measure the baseline and let the controller observe
	// healthy windows (limits grow toward their ceiling).
	var healthy []time.Duration
	for i := 0; i < 15; i++ {
		healthy = append(healthy, burst(4)...)
		if i%4 == 3 {
			ctl.Tick()
		}
	}
	healthyP99 := soakPercentile(healthy, 0.99)
	t.Logf("healthy baseline: p99 %v, S0 limits %d/%d", healthyP99, s0().Workers, s0().QueueCap)

	// Fault introduction (unmeasured adaptation window): S0 degrades to a
	// latency far past the per-source timeout. Every S0 run now burns the
	// whole timeout, so breach ticks walk its limits down and the run ring
	// learns a typical service time no caller's budget can cover.
	faulty[0].SetLatency(degradedLatency)
	shedsBefore := s0().QueueFull + s0().Doomed
	adaptDeadline := time.Now().Add(15 * time.Second)
	for s0().Workers > 1 || s0().QueueFull+s0().Doomed == shedsBefore {
		if time.Now().After(adaptDeadline) {
			t.Fatalf("S0 limits never shrank under overload: %+v", s0())
		}
		burst(4)
		time.Sleep(2 * time.Millisecond)
		ctl.Tick()
	}
	// Concurrency reaches its floor; queue depth has been cut
	// multiplicatively at least once (the loop exits on the concurrency
	// floor, which can arrive a tick before the depth floor).
	st := s0()
	if st.Workers != 1 || st.QueueCap >= 8 {
		t.Fatalf("S0 limits = %d/%d after overload adaptation, want 1/<8", st.Workers, st.QueueCap)
	}
	t.Logf("overload adapted: S0 limits %d/%d, queue-full %d, doomed %d",
		st.Workers, st.QueueCap, st.QueueFull, st.Doomed)

	// Steady overload (measured): most searches must complete at healthy
	// speed because S0 submissions are refused up front (doomed or
	// queue-full) rather than queueing; at most one idle probe at a time
	// rides out the timeout keeping the estimate fresh.
	preStats := ms.DispatchStats()
	var overload []time.Duration
	for i := 0; i < 25; i++ {
		overload = append(overload, burst(4)...)
		if i%5 == 4 {
			ctl.Tick()
		}
	}
	// The baseline is floored at the per-source timeout: the claim is that
	// overload costs at most one timeout-bounded probe, not that a
	// machine-speed-dependent healthy p99 is preserved exactly.
	base := healthyP99
	if base < perSourceTimeout {
		base = perSourceTimeout
	}
	overloadP99 := soakPercentile(overload, 0.99)
	if overloadP99 > 2*base {
		t.Errorf("overload p99 %v exceeds 2x baseline %v", overloadP99, base)
	}
	// Sheds concentrate on the degraded source: healthy sources must not
	// pay for S0's meltdown.
	var s0Sheds, allSheds int64
	for i, st := range ms.DispatchStats() {
		sheds := st.QueueFull + st.Doomed - (preStats[i].QueueFull + preStats[i].Doomed)
		allSheds += sheds
		if st.Source == "S0" {
			s0Sheds = sheds
		}
	}
	if s0Sheds == 0 {
		t.Error("degraded source recorded no sheds during steady overload")
	}
	if allSheds > 0 && float64(s0Sheds)/float64(allSheds) < 0.8 {
		t.Errorf("sheds not concentrated on S0: %d of %d", s0Sheds, allSheds)
	}
	t.Logf("steady overload: p99 %v (healthy p99 %v), S0 sheds %d/%d", overloadP99, healthyP99, s0Sheds, allSheds)

	// Recovery: S0 speeds back up. Idle probes refresh the service-time
	// estimate, healthy windows walk the limits back up, and searches
	// reach S0 again without degradation.
	faulty[0].SetLatency(healthyLatency)
	recoverDeadline := time.Now().Add(20 * time.Second)
	for s0().Workers < 3 {
		if time.Now().After(recoverDeadline) {
			t.Fatalf("S0 limits never re-expanded after recovery: %+v", s0())
		}
		for i := 0; i < 4; i++ {
			if _, err := ms.Search(ctx, qs[i%len(qs)]); err != nil {
				t.Fatalf("recovery search errored: %v", err)
			}
		}
		time.Sleep(2 * time.Millisecond)
		ctl.Tick()
	}
	// Give the run ring time to flush its slow history, then verify a
	// search reaches S0 cleanly end to end.
	recovered := false
	for attempt := 0; attempt < 50 && !recovered; attempt++ {
		ans, err := ms.Search(ctx, qs[attempt%len(qs)])
		if err != nil {
			t.Fatal(err)
		}
		if oc := ans.PerSource["S0"]; oc != nil && oc.Err == nil {
			recovered = true
		}
	}
	if !recovered {
		t.Error("no post-recovery search completed S0 cleanly")
	}
	t.Logf("recovered: S0 limits %d/%d", s0().Workers, s0().QueueCap)
}

// TestDeadlineShedsSurfaceTyped pins the error surface: a doomed
// submission's outcome is detectable with errors.Is against
// starts.ErrDispatchDeadline, so callers can tell budget refusals from
// wire failures.
func TestDeadlineShedsSurfaceTyped(t *testing.T) {
	const timeout = 40 * time.Millisecond
	ms := starts.NewMetasearcher(starts.MetasearcherOptions{
		Timeout:           timeout,
		SourceConcurrency: 1,
		QueueDepth:        4,
	})
	defer ms.Close()
	var fc *starts.FaultyConn
	for i, c := range resilienceFleet(t, 2) {
		if i == 0 {
			fc = starts.NewFaultyConn(c, starts.FaultConfig{})
			c = fc
		}
		ms.Add(c)
	}
	ctx := context.Background()
	if err := ms.Harvest(ctx); err != nil {
		t.Fatal(err)
	}
	s0 := func() starts.DispatchQueueStat {
		t.Helper()
		for _, st := range ms.DispatchStats() {
			if st.Source == "S0" {
				return st
			}
		}
		t.Fatal("no dispatch queue for S0")
		return starts.DispatchQueueStat{}
	}
	fc.SetLatency(300 * time.Millisecond)

	// Warm the service-time estimate: sequential full-budget searches each
	// burn the whole per-source timeout on S0 (S1 still answers, so the
	// search itself succeeds), until the run ring's median settles near the
	// timeout. Distinct terms below keep every phase on its own batch key —
	// a coalesced joiner would bypass the deadline check entirely.
	warmQ := soakQuery(t, "databases")
	deadline := time.Now().Add(15 * time.Second)
	for s0().TypicalRun < timeout/2 {
		if time.Now().After(deadline) {
			t.Fatalf("S0 typical run never settled: %+v", s0())
		}
		if _, err := ms.Search(ctx, warmQ); err != nil {
			t.Fatal(err)
		}
	}

	// Probe: while a full-budget search keeps S0's single worker busy, a
	// search whose remaining budget is far below the learned median must be
	// refused up front with the typed deadline error.
	busyQ := soakQuery(t, "metasearch")
	probeQ := soakQuery(t, "ranking")
	sawDeadline := false
	for !sawDeadline && time.Now().Before(deadline) {
		done := make(chan struct{})
		go func() {
			defer close(done)
			ms.Search(ctx, busyQ) // outcome irrelevant: it exists to occupy S0
		}()
		time.Sleep(5 * time.Millisecond) // let the busy search reach S0's worker
		pctx, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
		ans, err := ms.Search(pctx, probeQ)
		cancel()
		<-done
		if err != nil {
			continue // whole-search failure (e.g. budget too tight for S1 too)
		}
		if oc := ans.PerSource["S0"]; oc != nil && errors.Is(oc.Err, starts.ErrDispatchDeadline) {
			sawDeadline = true
		}
	}
	if !sawDeadline {
		t.Fatal("no per-source outcome carried ErrDispatchDeadline under sustained overload")
	}
}
