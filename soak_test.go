package starts_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"starts"
	"starts/internal/corpus"
	"starts/internal/engine"
	"starts/internal/eval"
	"starts/internal/resilient"
)

// TestScaleSoak drives the full pipeline at a larger scale: 10
// heterogeneous sources × 500 documents, 30 workload queries through
// selection, translation, fan-out and merging. It asserts end-to-end
// sanity (every topical query answered, no duplicates, sane latency),
// not exact numbers.
func TestScaleSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test indexes 5000 documents; skipped in -short")
	}
	g := corpus.Generate(corpus.Config{Seed: 77, NumSources: 10, DocsPerSource: 500, Overlap: 0.05})
	scorers := []engine.Scorer{engine.TFIDF{}, engine.TopK{}, engine.RawTF{}}
	ms := starts.NewMetasearcher(starts.MetasearcherOptions{
		MaxSources: 4,
		Merger:     starts.MergeTermStats,
	})
	for i, spec := range g.Sources {
		cfg := engine.NewVectorConfig()
		cfg.Scorer = scorers[i%len(scorers)]
		eng, err := starts.NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		src, err := starts.NewSource(spec.ID, eng)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range spec.Docs {
			if err := src.Add(d); err != nil {
				t.Fatal(err)
			}
		}
		ms.Add(starts.NewLocalConn(src, nil))
	}
	ctx := context.Background()
	harvestStart := time.Now()
	if err := ms.Harvest(ctx); err != nil {
		t.Fatal(err)
	}
	t.Logf("harvested 10 sources in %v", time.Since(harvestStart))

	workload := corpus.Workload(g, corpus.WorkloadConfig{Seed: 78, NumQueries: 30, FilterFraction: -1})
	answered := 0
	var total time.Duration
	for _, wq := range workload {
		start := time.Now()
		ans, err := ms.Search(ctx, wq.Query)
		if err != nil {
			t.Fatalf("query %v: %v", wq.Terms, err)
		}
		elapsed := time.Since(start)
		total += elapsed
		if elapsed > 5*time.Second {
			t.Errorf("query %v took %v", wq.Terms, elapsed)
		}
		if len(ans.Documents) > 0 {
			answered++
		}
		seen := map[string]bool{}
		for _, d := range ans.Documents {
			if seen[d.Linkage()] {
				t.Fatalf("duplicate %s in merged answer", d.Linkage())
			}
			seen[d.Linkage()] = true
		}
		if len(ans.Contacted) > 4 {
			t.Errorf("MaxSources ignored: contacted %v", ans.Contacted)
		}
		// Selection sanity: the topical source family should lead for
		// head-of-vocabulary queries.
		if len(ans.Selected) > 0 && ans.Selected[0].Goodness > 0 {
			sel := eval.Rn([]string{ans.Selected[0].ID}, map[string]float64{ans.Selected[0].ID: 1}, 1)
			if sel != 1 {
				t.Errorf("Rn self-check failed")
			}
		}
	}
	if answered < 25 {
		t.Errorf("only %d/30 queries answered", answered)
	}
	t.Logf("30 queries in %v (mean %v)", total, total/30)
}

// resilienceFleet builds n small sources sharing a topic vocabulary, so
// every "databases" query selects all of them.
func resilienceFleet(t *testing.T, n int) []starts.Conn {
	t.Helper()
	conns := make([]starts.Conn, n)
	for i := range conns {
		eng, err := starts.NewVectorEngine()
		if err != nil {
			t.Fatal(err)
		}
		src, err := starts.NewSource(fmt.Sprintf("S%d", i), eng)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 4; j++ {
			if err := src.Add(&starts.Document{
				Linkage: fmt.Sprintf("http://s%d/%d", i, j),
				Title:   fmt.Sprintf("S%d paper %d", i, j),
				Body:    "distributed databases metasearch ranking selection merging",
			}); err != nil {
				t.Fatal(err)
			}
		}
		conns[i] = starts.NewLocalConn(src, nil)
	}
	return conns
}

func soakQuery(t *testing.T, term string) *starts.Query {
	t.Helper()
	q := starts.NewQuery()
	r, err := starts.ParseRanking(`list((body-of-text "` + term + `"))`)
	if err != nil {
		t.Fatal(err)
	}
	q.Ranking = r
	return q
}

// TestFlappingSoak scripts an outage of 2 of 5 sources and drives the
// metasearcher through the whole breaker lifecycle: the circuits open
// after the failure threshold, answers stay merged (degraded, never
// all-or-nothing), and recovery probes re-close the circuits.
func TestFlappingSoak(t *testing.T) {
	br := starts.NewBreaker(starts.BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         30 * time.Millisecond,
	})
	ms := starts.NewMetasearcher(starts.MetasearcherOptions{
		Timeout: 2 * time.Second,
		Breaker: br,
	})
	conns := resilienceFleet(t, 5)
	var flappy []*starts.FaultyConn
	for i, c := range conns {
		if i < 2 {
			fc := starts.NewFaultyConn(c, starts.FaultConfig{})
			flappy = append(flappy, fc)
			c = fc
		}
		ms.Add(c)
	}
	ctx := context.Background()
	if err := ms.Harvest(ctx); err != nil {
		t.Fatal(err)
	}
	q := soakQuery(t, "databases")

	// Healthy phase: a clean fan-out across all five.
	ans, err := ms.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Contacted) != 5 || ans.Degraded.Any() {
		t.Fatalf("healthy phase: contacted %v, degraded %s", ans.Contacted, ans.Degraded)
	}

	// Outage: S0 and S1 go down. Every search must still return a merged
	// answer naming the failing sources, and after FailureThreshold
	// failures both circuits must open.
	for _, fc := range flappy {
		fc.SetFailing(true)
	}
	for i := 0; i < 6; i++ {
		ans, err := ms.Search(ctx, q)
		if err != nil {
			t.Fatalf("outage search %d errored (all-or-nothing): %v", i, err)
		}
		if len(ans.Documents) == 0 {
			t.Fatalf("outage search %d returned no documents", i)
		}
		degraded := map[string]bool{}
		for _, id := range ans.Degraded.Failed {
			degraded[id] = true
		}
		for _, id := range ans.Degraded.Skipped {
			degraded[id] = true
		}
		if !degraded["S0"] || !degraded["S1"] {
			t.Errorf("outage search %d does not name the flapping sources: %s", i, ans.Degraded)
		}
	}
	if !br.Broken("S0") || !br.Broken("S1") {
		t.Fatalf("circuits not open after outage: S0=%v S1=%v", br.State("S0"), br.State("S1"))
	}
	if br.State("S2") != resilient.StateClosed {
		t.Errorf("healthy source's circuit = %v, want closed", br.State("S2"))
	}

	// Recovery: the sources come back; after the cooldown a probe query
	// succeeds and re-closes each circuit.
	for _, fc := range flappy {
		fc.SetFailing(false)
	}
	time.Sleep(40 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for (br.Broken("S0") || br.Broken("S1")) && time.Now().Before(deadline) {
		if _, err := ms.Search(ctx, q); err != nil {
			t.Fatalf("recovery search errored: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if br.State("S0") != resilient.StateClosed || br.State("S1") != resilient.StateClosed {
		t.Fatalf("circuits did not re-close: S0=%v S1=%v", br.State("S0"), br.State("S1"))
	}
	ans, err = ms.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Contacted) != 5 || ans.Degraded.Any() {
		t.Errorf("recovered phase: contacted %v, degraded %s", ans.Contacted, ans.Degraded)
	}
}

// TestFaultInjectionAcceptance is the PR's acceptance scenario: 30%
// per-source fault injection across 5 sources, with retries in front.
// Every search must return a merged answer — never an all-or-nothing
// error — and Answer.Degraded must name exactly the sources that failed.
func TestFaultInjectionAcceptance(t *testing.T) {
	ms := starts.NewMetasearcher(starts.MetasearcherOptions{Timeout: 2 * time.Second})
	budget := resilient.NewBudget(50, 0.5)
	policy := starts.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Seed:        99,
	}
	for i, c := range resilienceFleet(t, 5) {
		fc := starts.NewFaultyConn(c, starts.FaultConfig{
			Seed:      int64(100 + i),
			ErrorRate: 0.3,
		})
		ms.Add(starts.NewRetryConn(fc, policy, budget))
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if ms.Harvest(ctx) == nil {
			break
		}
	}

	terms := []string{"databases", "metasearch", "distributed", "ranking"}
	degradedRuns := 0
	for i := 0; i < 40; i++ {
		q := soakQuery(t, terms[i%len(terms)])
		ans, err := ms.Search(ctx, q)
		if err != nil {
			t.Fatalf("search %d errored under 30%% faults (all-or-nothing): %v", i, err)
		}
		if len(ans.Documents) == 0 {
			t.Fatalf("search %d returned no documents", i)
		}
		if ans.Degraded.Any() {
			degradedRuns++
		}
		// Degraded.Failed must name exactly the contacted sources whose
		// query failed.
		failed := map[string]bool{}
		for _, id := range ans.Degraded.Failed {
			failed[id] = true
		}
		for _, id := range ans.Contacted {
			oc := ans.PerSource[id]
			if oc == nil {
				t.Fatalf("search %d: contacted %s has no outcome", i, id)
			}
			if (oc.Err != nil) != failed[id] {
				t.Errorf("search %d: %s err=%v but Degraded.Failed=%v", i, id, oc.Err, failed[id])
			}
		}
	}
	t.Logf("%d/40 searches degraded under 30%% fault injection", degradedRuns)
}
