// Command benchpeer turns `go test -bench BenchmarkPeerCluster
// -benchmem` output into BENCH_8.json (the X13 record in
// EXPERIMENTS.md). It reads the benchmark output on stdin and writes the
// JSON document on stdout, so the Makefile's bench-peer target can
// regenerate the record from a fresh run:
//
//	make bench-peer
//
// The three sub-benchmarks come from one process, so the derived fields
// compare them directly: the cross-peer remote hit against the cold
// pipeline (the number the distributed tier exists for) and against the
// node-local hit (the price of the peer wire), all at the same 2ms
// simulated source RTT as BENCH_5 and BENCH_7.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	HitRatio    float64 `json:"remote_hit_ratio,omitempty"`
	Note        string  `json:"note,omitempty"`
}

type report struct {
	PR         int               `json:"pr"`
	Title      string            `json:"title"`
	Date       string            `json:"date"`
	Platform   string            `json:"platform"`
	Command    string            `json:"command"`
	Benchmarks []*benchmark      `json:"benchmarks"`
	Derived    map[string]string `json:"derived"`
}

// notes are the standing interpretation of each sub-benchmark; the
// numbers change run to run, the mechanism they demonstrate does not.
var notes = map[string]string{
	"BenchmarkPeerCluster/cold":       "full pipeline per search against 5 sources at 2ms simulated per-wire-call latency, top-3 selected: the floor the cache tier must beat",
	"BenchmarkPeerCluster/local-hit":  "per-source conn cache in this node's own memory: the best case, and the overhead bar for the peer wire",
	"BenchmarkPeerCluster/remote-hit": "the conn cache's store is a pure ring client of a peer node over real loopback HTTP, so every per-source result is a cross-peer remote hit — no recompute, no 2ms source round trips",
}

func main() {
	rep := &report{
		PR:       8,
		Title:    "distributed peer cache tier: consistent-hash-sharded qcache peers over HTTP",
		Date:     time.Now().Format("2006-01-02"),
		Platform: "unknown",
		Command:  "make bench-peer (go test -bench 'BenchmarkPeerCluster' -benchmem -run '^$' .)",
		Derived:  map[string]string{},
	}
	var goos, goarch, cpu string
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b := parseBench(line); b != nil {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchpeer: read:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchpeer: no benchmark lines on stdin")
		os.Exit(1)
	}
	if goos != "" || cpu != "" {
		rep.Platform = fmt.Sprintf("%s/%s, %s, %d vCPU", goos, goarch, cpu, runtime.NumCPU())
	}
	byName := map[string]*benchmark{}
	for _, b := range rep.Benchmarks {
		byName[strings.TrimPrefix(b.Name, "BenchmarkPeerCluster/")] = b
	}
	cold, local, remote := byName["cold"], byName["local-hit"], byName["remote-hit"]
	if cold != nil && remote != nil && remote.NsPerOp > 0 {
		rep.Derived["remote_hit_vs_cold"] = fmt.Sprintf(
			"cross-peer remote hit %.0f ns/op vs cold pipeline %.0f ns/op at the 2ms-RTT yardstick (%.2fx faster): a query any peer has answered skips every source round trip",
			remote.NsPerOp, cold.NsPerOp, cold.NsPerOp/remote.NsPerOp)
		rep.Derived["remote_hit_ratio"] = fmt.Sprintf(
			"%.4f of peer-transport lookups were remote hits (the rest are the warming search's misses)",
			remote.HitRatio)
	}
	if local != nil && remote != nil && local.NsPerOp > 0 {
		rep.Derived["peer_wire_overhead"] = fmt.Sprintf(
			"remote hit %.0f ns/op vs node-local hit %.0f ns/op (%.2fx): the loopback HTTP fetch plus SOIF decode of each per-source result, the price of sharing one logical cache across the fleet",
			remote.NsPerOp, local.NsPerOp, remote.NsPerOp/local.NsPerOp)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchpeer: encode:", err)
		os.Exit(1)
	}
}

// parseBench reads one result line: a name, an iteration count, then
// value/unit pairs ("1234 ns/op", "0.99 remote-hit-ratio", ...).
func parseBench(line string) *benchmark {
	f := strings.Fields(line)
	if len(f) < 4 {
		return nil
	}
	// Strip the -GOMAXPROCS suffix parallel benchmarks carry.
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return nil
	}
	b := &benchmark{Name: name, Iterations: iters, Note: notes[name]}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return nil
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		case "remote-hit-ratio":
			b.HitRatio = v
		}
	}
	return b
}
