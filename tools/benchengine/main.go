// Command benchengine turns `go test -bench
// 'BenchmarkEngine(Scale|Sort)' -benchmem` output into BENCH_9.json
// (the X14 record in EXPERIMENTS.md). It reads the benchmark output on
// stdin and writes the JSON document on stdout, so the Makefile's
// bench-engine target can regenerate the record from a fresh run:
//
//	make bench-engine
//
// The sub-benchmarks share one process and, per corpus size, one
// index, so the derived fields compare them directly: ranked top-k
// latency at 1m documents against 100k (the sub-linear-scaling claim),
// against the exhaustive evaluator at 1m (what the block pruning
// buys), and bounded-heap selection against the full sort it replaced.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

type benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Note        string  `json:"note,omitempty"`
}

type report struct {
	PR         int               `json:"pr"`
	Title      string            `json:"title"`
	Date       string            `json:"date"`
	Platform   string            `json:"platform"`
	Command    string            `json:"command"`
	Benchmarks []*benchmark      `json:"benchmarks"`
	Derived    map[string]string `json:"derived"`
}

// notes are the standing interpretation of each sub-benchmark; the
// numbers change run to run, the mechanism they demonstrate does not.
var notes = map[string]string{
	"BenchmarkEngineScale/topk-100k":           "block-max WAND, headline selective lookup (one rare term, ~1% df), max-docs 20, 100k-doc source: the small-corpus baseline",
	"BenchmarkEngineScale/topk-1m":             "the same query over 10x the documents on the same path: the sub-linear-scaling claim",
	"BenchmarkEngineScale/topk-mixed-100k":     "mixed-selectivity three-term query (head ~97% df + mid ~27% + rare ~1%) at 100k: the longer-query shape",
	"BenchmarkEngineScale/topk-mixed-1m":       "the mixed query at 1m: pruning keeps it ~7x under the dense worst case in absolute terms, but the ~97%-df head term's posting walk dominates and growth tracks that list near-linearly",
	"BenchmarkEngineScale/topk-dense-100k":     "adversarial worst case at 100k: three near-uniform head terms, so no threshold ever rules a term out",
	"BenchmarkEngineScale/topk-dense-1m":       "the dense worst case at 1m: pruning degrades toward a block-at-a-time scan and scaling approaches linear",
	"BenchmarkEngineScale/exhaustive-mixed-1m": "the mixed query and index with Config.Exhaustive: score every matching document, then sort — what every ranked query cost before block pruning",
	"BenchmarkEngineSort/heap-top20-1m":        "bounded-heap selection of the best 20 from a 1m-entry scored set (the answer-assembly sort at max-docs 20)",
	"BenchmarkEngineSort/fullsort-1m":          "full sort of the same 1m-entry scored set: what answer assembly cost before heap selection",
}

func main() {
	rep := &report{
		PR:       9,
		Title:    "engine raw speed: block-pruned top-k ranked execution at million-doc sources",
		Date:     time.Now().Format("2006-01-02"),
		Platform: "unknown",
		Command:  "make bench-engine (go test -bench 'BenchmarkEngine(Scale|Sort)' -benchmem -run '^$' ./internal/engine)",
		Derived:  map[string]string{},
	}
	var goos, goarch, cpu string
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b := parseBench(line); b != nil {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchengine: read:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchengine: no benchmark lines on stdin")
		os.Exit(1)
	}
	if goos != "" || cpu != "" {
		rep.Platform = fmt.Sprintf("%s/%s, %s, %d vCPU", goos, goarch, cpu, runtime.NumCPU())
	}
	byName := map[string]*benchmark{}
	for _, b := range rep.Benchmarks {
		byName[b.Name] = b
	}
	small := byName["BenchmarkEngineScale/topk-100k"]
	big := byName["BenchmarkEngineScale/topk-1m"]
	mixedSmall := byName["BenchmarkEngineScale/topk-mixed-100k"]
	mixedBig := byName["BenchmarkEngineScale/topk-mixed-1m"]
	denseSmall := byName["BenchmarkEngineScale/topk-dense-100k"]
	denseBig := byName["BenchmarkEngineScale/topk-dense-1m"]
	exhaustive := byName["BenchmarkEngineScale/exhaustive-mixed-1m"]
	heap := byName["BenchmarkEngineSort/heap-top20-1m"]
	full := byName["BenchmarkEngineSort/fullsort-1m"]
	if small != nil && big != nil && small.NsPerOp > 0 {
		rep.Derived["corpus_scaling"] = fmt.Sprintf(
			"10x the documents (100k -> 1m) costs %.2fx the ranked query latency (%.0f -> %.0f ns/op) at max-docs 20: block-max pruning keeps growth under the 4x bar",
			big.NsPerOp/small.NsPerOp, small.NsPerOp, big.NsPerOp)
	}
	if mixedSmall != nil && mixedBig != nil && mixedSmall.NsPerOp > 0 {
		rep.Derived["mixed_scaling"] = fmt.Sprintf(
			"the mixed three-term query scales %.2fx over the same growth (%.0f -> %.0f ns/op): the ~97%%-df head term's posting walk dominates at both scales, so the exponent tracks the head list — pruning's win is the absolute gap to the dense and exhaustive paths",
			mixedBig.NsPerOp/mixedSmall.NsPerOp, mixedSmall.NsPerOp, mixedBig.NsPerOp)
	}
	if denseSmall != nil && denseBig != nil && denseSmall.NsPerOp > 0 {
		rep.Derived["dense_scaling"] = fmt.Sprintf(
			"the all-head worst case scales %.2fx over the same growth (%.0f -> %.0f ns/op): with no selectivity spread to exploit, traversal degrades toward block-at-a-time",
			denseBig.NsPerOp/denseSmall.NsPerOp, denseSmall.NsPerOp, denseBig.NsPerOp)
	}
	if mixedBig != nil && exhaustive != nil && mixedBig.NsPerOp > 0 {
		rep.Derived["pruning_vs_exhaustive"] = fmt.Sprintf(
			"block-pruned top-k %.0f ns/op vs exhaustive scoring %.0f ns/op for the mixed query on the same 1m-doc index (%.1fx faster): the documents WAND never visits",
			mixedBig.NsPerOp, exhaustive.NsPerOp, exhaustive.NsPerOp/mixedBig.NsPerOp)
	}
	if heap != nil && full != nil && heap.NsPerOp > 0 {
		rep.Derived["heap_vs_fullsort"] = fmt.Sprintf(
			"bounded-heap top-20 selection %.0f ns/op vs full sort %.0f ns/op over 1m scored entries (%.1fx faster): answer assembly no longer sorts what it truncates",
			heap.NsPerOp, full.NsPerOp, full.NsPerOp/heap.NsPerOp)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchengine: encode:", err)
		os.Exit(1)
	}
}

// parseBench reads one result line: a name, an iteration count, then
// value/unit pairs ("1234 ns/op", "16 B/op", ...).
func parseBench(line string) *benchmark {
	f := strings.Fields(line)
	if len(f) < 4 {
		return nil
	}
	// Strip the -GOMAXPROCS suffix parallel benchmarks carry.
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return nil
	}
	b := &benchmark{Name: name, Iterations: iters, Note: notes[name]}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return nil
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		}
	}
	return b
}
