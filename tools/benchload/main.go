// Command benchload runs the internal/load open-loop harness against a
// synthetic multi-source fleet and writes BENCH_10.json (the X15 record
// in EXPERIMENTS.md): latency and time-to-first-result percentiles
// under load, with one deliberately slow source in the fleet. It is the
// measurement the streaming answer path exists for — a user should see
// the first rank-stable documents at fast-source speed even while the
// slowest source is still working — so the headline derived number is
// the streamed TTFR against the time-to-last-byte of the same run.
//
//	make bench-load
//
// Three scenarios share one fleet, one workload and one offered rate:
//
//	inproc-batch   Metasearcher.Search — the barrier answer; TTFR is
//	               completion time, the floor streaming must beat
//	inproc-stream  Metasearcher.SearchStream — first() fires at the
//	               first rank-stable documents
//	http-stream    the same fleet behind core.Broker + server.ConnServer,
//	               queried with client.QueryStream over real loopback
//	               HTTP — chunked @SQStreamItem frames on the wire
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"starts/internal/client"
	"starts/internal/core"
	"starts/internal/corpus"
	"starts/internal/engine"
	"starts/internal/faulty"
	"starts/internal/load"
	"starts/internal/merge"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/server"
	"starts/internal/source"
)

type scenario struct {
	Name   string       `json:"name"`
	Note   string       `json:"note"`
	Report *load.Report `json:"report"`
}

type report struct {
	PR       int               `json:"pr"`
	Title    string            `json:"title"`
	Date     string            `json:"date"`
	Platform string            `json:"platform"`
	Command  string            `json:"command"`
	Config   map[string]any    `json:"config"`
	Scenario []*scenario       `json:"scenarios"`
	Derived  map[string]string `json:"derived"`
}

func main() {
	var (
		rate     = flag.Float64("rate", 40, "offered arrival rate, queries/second")
		duration = flag.Duration("duration", 3*time.Second, "offered-load window per scenario")
		sources  = flag.Int("sources", 5, "fleet size")
		docs     = flag.Int("docs", 150, "documents per source")
		slow     = flag.Duration("slow", 500*time.Millisecond, "injected latency on the slow source")
		queries  = flag.Int("queries", 32, "workload pool size")
		hot      = flag.Float64("hot", 0.3, "fraction of arrivals replaying the hot set")
		seed     = flag.Int64("seed", 11, "corpus/workload/arrival seed")
		out      = flag.String("out", "BENCH_10.json", "output file")
	)
	flag.Parse()
	if err := run(*rate, *duration, *sources, *docs, *slow, *queries, *hot, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchload:", err)
		os.Exit(1)
	}
}

func run(rate float64, duration time.Duration, nsources, docs int, slow time.Duration, nqueries int, hot float64, seed int64, out string) error {
	g := corpus.Generate(corpus.Config{Seed: seed, NumSources: nsources, DocsPerSource: docs})
	ms := core.New(core.Options{Timeout: 10 * time.Second, Merger: merge.RoundRobin{}})
	defer ms.Close()
	var slowConn *faulty.Conn
	for i, spec := range g.Sources {
		eng, err := engine.New(engine.NewVectorConfig())
		if err != nil {
			return err
		}
		s, err := source.New(spec.ID, eng)
		if err != nil {
			return err
		}
		if err := s.AddAll(spec.Docs); err != nil {
			return err
		}
		conn := client.Conn(client.NewLocalConn(s, nil))
		if i == len(g.Sources)-1 {
			// The last source is the fleet's straggler: every call through it
			// pays the injected latency, so the barrier answer cannot finish
			// before it does.
			slowConn = faulty.WrapConn(conn, faulty.Config{Seed: seed, Latency: slow})
			conn = slowConn
		}
		ms.Add(conn)
	}
	var pool []*query.Query
	for _, w := range corpus.Workload(g, corpus.WorkloadConfig{Seed: seed, NumQueries: nqueries, FilterFraction: -1}) {
		pool = append(pool, w.Query)
	}
	cfg := load.Config{
		Rate: rate, Duration: duration, Queries: pool,
		HotFraction: hot, Timeout: 10 * time.Second, Seed: seed,
	}
	ctx := context.Background()
	if err := ms.Harvest(ctx); err != nil {
		return err
	}

	rep := &report{
		PR:       10,
		Title:    "streaming answers: incremental rank-merge, chunked delivery, open-loop load harness",
		Date:     time.Now().Format("2006-01-02"),
		Platform: fmt.Sprintf("%s/%s %s gomaxprocs=%d", runtime.GOOS, runtime.GOARCH, runtime.Version(), runtime.GOMAXPROCS(0)),
		Command:  "make bench-load (tools/benchload)",
		Config: map[string]any{
			"rate_qps": rate, "duration": duration.String(),
			"sources": nsources, "docs_per_source": docs,
			"slow_source_latency": slow.String(), "workload_queries": nqueries,
			"hot_fraction": hot, "seed": seed, "merger": "round-robin", "cache": "off",
		},
		Derived: map[string]string{},
	}

	batch, err := load.Run(ctx, cfg, func(ctx context.Context, q *query.Query, first func()) error {
		_, err := ms.Search(ctx, q)
		return err
	})
	if err != nil {
		return fmt.Errorf("inproc-batch: %w", err)
	}
	rep.Scenario = append(rep.Scenario, &scenario{
		Name:   "inproc-batch",
		Note:   "barrier Search: the answer exists only when the slowest contacted source has answered, so TTFR is completion time",
		Report: batch,
	})

	stream, err := load.Run(ctx, cfg, func(ctx context.Context, q *query.Query, first func()) error {
		_, err := ms.SearchStream(ctx, q, func(ev core.StreamEvent) error {
			if len(ev.Docs) > 0 {
				first()
			}
			return nil
		})
		return err
	})
	if err != nil {
		return fmt.Errorf("inproc-stream: %w", err)
	}
	rep.Scenario = append(rep.Scenario, &scenario{
		Name:   "inproc-stream",
		Note:   "SearchStream: first() at the first rank-stable documents; total latency unchanged (same fan-out, same merge)",
		Report: stream,
	})

	broker, err := ms.NewBroker("bench")
	if err != nil {
		return err
	}
	ts := httptest.NewServer(nil)
	ts.Config.Handler = server.NewConnServer(broker, ts.URL)
	defer ts.Close()
	c := client.NewClient(nil)
	streamURL := client.StreamURL(ts.URL + "/sources/bench/query")
	http, err := load.Run(ctx, cfg, func(ctx context.Context, q *query.Query, first func()) error {
		_, err := c.QueryStream(ctx, streamURL, q, func(it result.StreamItem) error {
			if len(it.Docs) > 0 {
				first()
			}
			return nil
		})
		return err
	})
	if err != nil {
		return fmt.Errorf("http-stream: %w", err)
	}
	rep.Scenario = append(rep.Scenario, &scenario{
		Name:   "http-stream",
		Note:   "the fleet behind core.Broker + ConnServer over loopback HTTP: @SQStreamItem frames flushed per stable prefix, decoded as they arrive",
		Report: http,
	})

	ratio := func(last, first time.Duration) string {
		if first <= 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.1fx (%v -> %v)", float64(last)/float64(first), last, first)
	}
	rep.Derived["inproc_ttfr_speedup_p50"] = ratio(stream.Latency.P50, stream.TTFR.P50)
	rep.Derived["inproc_ttfr_speedup_p95"] = ratio(stream.Latency.P95, stream.TTFR.P95)
	rep.Derived["http_ttfr_speedup_p50"] = ratio(http.Latency.P50, http.TTFR.P50)
	rep.Derived["http_ttfr_speedup_p95"] = ratio(http.Latency.P95, http.TTFR.P95)
	rep.Derived["batch_ttfr_equals_latency_p50"] = ratio(batch.Latency.P50, batch.TTFR.P50)
	if slowConn != nil {
		rep.Derived["slow_source_calls"] = fmt.Sprintf("%d", slowConn.Calls())
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	for _, k := range []string{"inproc_ttfr_speedup_p50", "http_ttfr_speedup_p50"} {
		fmt.Printf("  %s: %s\n", k, rep.Derived[k])
	}
	return nil
}
