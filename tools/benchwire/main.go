// Command benchwire turns `go test -bench BenchmarkFanoutMultiplexed
// -benchmem` output into BENCH_7.json (the X12 record in
// EXPERIMENTS.md). It reads the benchmark output on stdin and writes the
// JSON document on stdout, so the Makefile's bench-wire target can
// regenerate the record from a fresh run:
//
//	make bench-wire
//
// Derived fields compare the wire-latency run against the BENCH_5
// yardsticks this experiment is measured by: the key-coalescing
// dispatcher's 1055470 ns/op and 0.7472 batched ratio among IDENTICAL
// queries, versus multiplexing DISTINCT queries here.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// BENCH_5 wire-latency yardsticks (identical-query coalescing only).
const (
	bench5NsPerOp = 1055470
	bench5Ratio   = 0.7472
)

type benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	WireRatio   float64 `json:"wire_batched_ratio,omitempty"`
	Note        string  `json:"note,omitempty"`
}

type report struct {
	PR         int               `json:"pr"`
	Title      string            `json:"title"`
	Date       string            `json:"date"`
	Platform   string            `json:"platform"`
	Command    string            `json:"command"`
	Benchmarks []*benchmark      `json:"benchmarks"`
	Derived    map[string]string `json:"derived"`
}

// notes are the standing interpretation of each sub-benchmark; the
// numbers change run to run, the mechanism they demonstrate does not.
var notes = map[string]string{
	"BenchmarkFanoutMultiplexed/local":        "distinct queries, in-process sources: wire calls are pure CPU, queues stay shallow, so drains are modest; the comparator for the latency regime below",
	"BenchmarkFanoutMultiplexed/wire-latency": "distinct queries with 2ms simulated per-wire-call latency: queues pile up behind the RTT and one BatchConn wire call drains them (MaxBatchWire 32), so per-search cost lands below both the 2ms RTT floor and BENCH_5's identical-query coalescing (1055470 ns/op)",
}

func main() {
	rep := &report{
		PR:       7,
		Title:    "wire-level multiplexed transport: one round trip per queue drain via BatchConn",
		Date:     time.Now().Format("2006-01-02"),
		Platform: "unknown",
		Command:  "make bench-wire (go test -bench 'BenchmarkFanoutMultiplexed' -benchmem -run '^$' .)",
		Derived:  map[string]string{},
	}
	var goos, goarch, cpu string
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b := parseBench(line); b != nil {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchwire: read:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchwire: no benchmark lines on stdin")
		os.Exit(1)
	}
	if goos != "" || cpu != "" {
		rep.Platform = fmt.Sprintf("%s/%s, %s, %d vCPU", goos, goarch, cpu, runtime.NumCPU())
	}
	for _, b := range rep.Benchmarks {
		if strings.HasSuffix(b.Name, "/wire-latency") {
			rep.Derived["distinct_vs_bench5_identical"] = fmt.Sprintf(
				"wire-latency %.0f ns/op over DISTINCT queries vs BENCH_5's %d ns/op with coalescing limited to IDENTICAL queries (%.2fx)",
				b.NsPerOp, bench5NsPerOp, bench5NsPerOp/b.NsPerOp)
			rep.Derived["wire_batched_ratio"] = fmt.Sprintf(
				"%.4f of queue items shared a wire call (1 - WireCalls/WireItems) vs %.4f batched-among-identical in BENCH_5",
				b.WireRatio, bench5Ratio)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchwire: encode:", err)
		os.Exit(1)
	}
}

// parseBench reads one result line: a name, an iteration count, then
// value/unit pairs ("1234 ns/op", "0.94 wire-batched-ratio", ...).
func parseBench(line string) *benchmark {
	f := strings.Fields(line)
	if len(f) < 4 {
		return nil
	}
	// Strip the -GOMAXPROCS suffix parallel benchmarks carry.
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return nil
	}
	b := &benchmark{Name: name, Iterations: iters, Note: notes[name]}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return nil
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		case "wire-batched-ratio":
			b.WireRatio = v
		}
	}
	return b
}
