# Everything is Go stdlib-only; no tools beyond the go toolchain needed.

GO      ?= go
BINDIR  ?= /tmp/starts-bin

.PHONY: build test vet race lint bench bench-dispatch bench-wire bench-peer bench-engine bench-load bench-load-smoke warm soak tier1 tier2 check cli clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint fails on unformatted files (gofmt prints their names) and then
# vets; it is the static half of tier2.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench runs every benchmark once with allocation stats; for stable
# numbers (e.g. the SearchCold / SearchCached / SearchWarmed trio in
# EXPERIMENTS.md and BENCH_4.json) drop -benchtime 1x.
bench:
	$(GO) test -bench=. -benchmem -benchtime 1x -run '^$$' ./...

# warm runs the warm-start comparison at full benchtime: cold pipeline
# vs steady-state hit vs first repeats after a workload replay (the
# warm-replay-ns metric is the one-time startup cost).
warm:
	$(GO) test -bench 'BenchmarkSearch(Cold|Cached|Warmed)$$' -benchmem -run '^$$' .

# bench-dispatch runs the fan-out benchmarks at full benchtime: the
# dispatched fan-out (concurrent identical queries coalescing at the
# dispatch layer) next to the warm-start trio it is compared against in
# BENCH_5.json.
bench-dispatch:
	$(GO) test -bench 'BenchmarkFanoutDispatched' -benchmem -run '^$$' .

# bench-wire runs the multiplexed-transport benchmark (X12: distinct
# concurrent queries, 2ms simulated RTT, one BatchConn wire call per
# queue drain) at full benchtime and regenerates BENCH_7.json from the
# run via tools/benchwire.
bench-wire:
	$(GO) test -bench 'BenchmarkFanoutMultiplexed' -benchmem -run '^$$' . > /tmp/benchwire.out
	$(GO) run ./tools/benchwire < /tmp/benchwire.out > BENCH_7.json
	@cat /tmp/benchwire.out

# bench-peer runs the distributed-cache-tier benchmark (X13: cold
# pipeline vs node-local hit vs cross-peer remote hit over loopback
# HTTP, all at the 2ms simulated source RTT) at full benchtime and
# regenerates BENCH_8.json from the run via tools/benchpeer.
bench-peer:
	$(GO) test -bench 'BenchmarkPeerCluster' -benchmem -run '^$$' . > /tmp/benchpeer.out
	$(GO) run ./tools/benchpeer < /tmp/benchpeer.out > BENCH_8.json
	@cat /tmp/benchpeer.out

# bench-engine runs the engine-scaling benchmarks (X14: block-pruned
# top-k ranked queries at 100k vs 1m docs per source, the exhaustive
# path at 1m as the pruning reference, and heap-vs-full-sort answer
# assembly on a 1m scored set) and regenerates BENCH_9.json from the
# run via tools/benchengine. Building the 1m-doc index dominates setup;
# allow several minutes on a small machine.
bench-engine:
	$(GO) test -bench 'BenchmarkEngine(Scale|Sort)' -benchmem -run '^$$' -timeout 45m ./internal/engine > /tmp/benchengine.out
	$(GO) run ./tools/benchengine < /tmp/benchengine.out > BENCH_9.json
	@cat /tmp/benchengine.out

# bench-load runs the open-loop load harness (X15: streamed TTFR vs
# time-to-last under load, one 500ms-slow source in a 5-source fleet,
# in-process and over loopback HTTP) and regenerates BENCH_10.json.
bench-load:
	$(GO) run ./tools/benchload -out BENCH_10.json

# bench-load-smoke is the CI-sized run: a second of tiny offered load,
# result discarded — it proves the harness, fleet wiring and streamed
# HTTP path still work end to end, not the numbers.
bench-load-smoke:
	$(GO) run ./tools/benchload -rate 10 -duration 1s -docs 40 -queries 8 -out /tmp/bench_load_smoke.json

# soak runs the long-haul resilience scenarios (breaker lifecycle, fault
# injection, adaptive-admission overload) under the race detector.
soak:
	$(GO) test -race -count=1 -timeout 10m -run 'Soak|Acceptance|DeadlineSheds' .

# tier1 is the repo's baseline gate: everything must always pass.
tier1: build test

# tier2 adds static analysis (lint = gofmt + vet), the race detector and
# the overload soak scenarios.
tier2: lint race soak

check: tier1 tier2

# cli builds the command-line surfaces for manual verification
# (see .claude/skills/verify/SKILL.md).
cli:
	$(GO) build -o $(BINDIR) ./cmd/...

clean:
	rm -rf $(BINDIR)
	$(GO) clean
