# Everything is Go stdlib-only; no tools beyond the go toolchain needed.

GO      ?= go
BINDIR  ?= /tmp/starts-bin

.PHONY: build test vet race bench tier1 tier2 check cli clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# bench runs every benchmark once with allocation stats; for stable
# numbers (e.g. the SearchCached vs SearchCold comparison in
# EXPERIMENTS.md) drop -benchtime 1x.
bench:
	$(GO) test -bench=. -benchmem -benchtime 1x -run '^$$' ./...

# tier1 is the repo's baseline gate: everything must always pass.
tier1: build test

# tier2 adds static analysis and the race detector.
tier2: vet race

check: tier1 tier2

# cli builds the command-line surfaces for manual verification
# (see .claude/skills/verify/SKILL.md).
cli:
	$(GO) build -o $(BINDIR) ./cmd/...

clean:
	rm -rf $(BINDIR)
	$(GO) clean
