// Rankmerge: demonstrate the paper's Section 3.2 problem and Section 4.2
// solution. Three sources index overlapping topical collections with
// mutually incompatible ranking algorithms (scores in [0,1), top-doc-1000,
// and raw term frequency). Merging raw scores lets the 0-1000 source crush
// everyone; merging from the returned TermStats recovers a sensible global
// rank, reproducing the Example 9 re-ranking.
//
//	go run ./examples/rankmerge
package main

import (
	"context"
	"fmt"
	"log"

	"starts"
	"starts/internal/corpus"
	"starts/internal/engine"
)

func main() {
	universe := corpus.Generate(corpus.Config{
		Seed: 7, NumSources: 3, DocsPerSource: 120, Overlap: 0.15,
	})
	scorers := []engine.Scorer{engine.TFIDF{}, engine.TopK{}, engine.RawTF{}}

	ms := starts.NewMetasearcher(starts.MetasearcherOptions{})
	for i, spec := range universe.Sources {
		cfg := engine.NewVectorConfig()
		cfg.Scorer = scorers[i]
		eng, err := starts.NewEngine(cfg)
		if err != nil {
			log.Fatal(err)
		}
		src, err := starts.NewSource(spec.ID, eng)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range spec.Docs {
			if err := src.Add(d); err != nil {
				log.Fatal(err)
			}
		}
		ms.Add(starts.NewLocalConn(src, nil))
		fmt.Printf("source %-20s ranking algorithm %-7s\n", spec.ID, cfg.Scorer.ID())
	}
	fmt.Println()

	q := starts.NewQuery()
	r, err := starts.ParseRanking(`list((body-of-text "database") (body-of-text "query"))`)
	if err != nil {
		log.Fatal(err)
	}
	q.Ranking = r
	q.MaxResults = 8

	ctx := context.Background()
	for _, strategy := range []starts.MergeStrategy{
		starts.MergeRawScore, starts.MergeScaled, starts.MergeRoundRobin, starts.MergeTermStats,
	} {
		answer, err := ms.Search(ctx, q, starts.WithMerger(strategy))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== merge strategy: %s\n", strategy.Name())
		for i, d := range answer.Documents {
			if i >= 5 {
				break
			}
			fmt.Printf("  %d. score %8.2f  %-45s %v\n", i+1, d.RawScore, clip(d.Title(), 45), d.Sources)
		}
		fmt.Println()
	}
	fmt.Println("note how raw-score merging is dominated by the 0-1000 source,")
	fmt.Println("while term-stats merging mixes sources on content, not scale.")
}

func clip(s string, n int) string {
	if len(s) > n {
		return s[:n-3] + "..."
	}
	return s
}
