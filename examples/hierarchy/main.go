// Hierarchy: cascading metasearch. Two departmental brokers each federate
// their own sources; a university-level metasearcher federates the
// brokers, harvesting their aggregated content summaries and routing
// queries down the tree — the broker-hierarchy architecture of the GlOSS
// line of work the paper builds on.
//
//	go run ./examples/hierarchy
package main

import (
	"context"
	"fmt"
	"log"

	"starts"
	"starts/internal/corpus"
)

func main() {
	universe := corpus.Generate(corpus.Config{Seed: 21, NumSources: 4, DocsPerSource: 120})
	ctx := context.Background()

	// Department-level metasearchers: CS+medicine, law+gardening.
	mkLeaf := func(name string, specs []corpus.SourceSpec) *starts.Broker {
		ms := starts.NewMetasearcher(starts.MetasearcherOptions{})
		for _, spec := range specs {
			eng, err := starts.NewVectorEngine()
			if err != nil {
				log.Fatal(err)
			}
			src, err := starts.NewSource(spec.ID, eng)
			if err != nil {
				log.Fatal(err)
			}
			for _, d := range spec.Docs {
				if err := src.Add(d); err != nil {
					log.Fatal(err)
				}
			}
			ms.Add(starts.NewLocalConn(src, nil))
		}
		broker, err := ms.NewBroker(name)
		if err != nil {
			log.Fatal(err)
		}
		return broker
	}
	sciences := mkLeaf("sciences-broker", universe.Sources[:2])
	humanities := mkLeaf("humanities-broker", universe.Sources[2:])

	// University level: sees two "sources", which are brokers.
	university := starts.NewMetasearcher(starts.MetasearcherOptions{MaxSources: 1})
	university.Add(sciences)
	university.Add(humanities)
	if err := university.Harvest(ctx); err != nil {
		log.Fatal(err)
	}
	for _, id := range university.SourceIDs() {
		_, sum, _ := university.Harvested(id)
		fmt.Printf("harvested %-18s aggregated %4d docs, %5d terms\n", id, sum.NumDocs, sum.TotalTerms())
	}
	fmt.Println()

	for _, text := range []string{
		`list((body-of-text "database") (body-of-text "query"))`,
		`list((body-of-text "court") (body-of-text "tomato"))`,
	} {
		q := starts.NewQuery()
		r, err := starts.ParseRanking(text)
		if err != nil {
			log.Fatal(err)
		}
		q.Ranking = r
		q.MaxResults = 4
		ans, err := university.Search(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %s\n  routed to: %v\n", text, ans.Contacted)
		for i, d := range ans.Documents {
			fmt.Printf("  %d. %-50s %v\n", i+1, clip(d.Title(), 50), d.Sources)
		}
		fmt.Println()
	}
}

func clip(s string, n int) string {
	if len(s) > n {
		return s[:n-3] + "..."
	}
	return s
}
