// Multilingual: the l-string machinery of Section 4.1.1. An English and a
// Spanish collection live behind one metasearcher; language-qualified
// query terms ([es "datos"]) route to the right documents, and content
// summaries with per-language groups steer source selection.
//
//	go run ./examples/multilingual
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"starts"
	"starts/internal/lang"
)

func main() {
	mkSource := func(id string, langs []lang.Tag, docs []*starts.Document) *starts.Source {
		eng, err := starts.NewVectorEngine()
		if err != nil {
			log.Fatal(err)
		}
		src, err := starts.NewSource(id, eng)
		if err != nil {
			log.Fatal(err)
		}
		src.Languages = langs
		for _, d := range docs {
			if err := src.Add(d); err != nil {
				log.Fatal(err)
			}
		}
		return src
	}

	date := time.Date(1996, 5, 1, 0, 0, 0, 0, time.UTC)
	english := mkSource("english-papers", []lang.Tag{lang.EnglishUS}, []*starts.Document{
		{
			Linkage: "http://en/distributed.ps", Title: "Distributed data systems",
			Body: "Distributed data systems and their behavior under load.",
			Date: date, Languages: []lang.Tag{lang.EnglishUS},
		},
		{
			Linkage: "http://en/behaviour.ps", Title: "Behaviour of British systems",
			Body: "The behaviour of systems, spelled the British way.",
			Date: date, Languages: []lang.Tag{lang.MustParseTag("en-GB")},
		},
	})
	spanish := mkSource("biblioteca-es", []lang.Tag{lang.Spanish}, []*starts.Document{
		{
			Linkage: "http://es/datos.ps", Title: "Búsqueda de datos distribuidos",
			Body: "Los sistemas de datos distribuidos requieren búsqueda eficiente de datos.",
			Date: date, Languages: []lang.Tag{lang.Spanish},
		},
		{
			Linkage: "http://es/redes.ps", Title: "Redes y servidores",
			Body: "Redes, servidores y archivos de datos en bibliotecas digitales.",
			Date: date, Languages: []lang.Tag{lang.Spanish},
		},
	})

	ms := starts.NewMetasearcher(starts.MetasearcherOptions{})
	ms.Add(starts.NewLocalConn(english, nil))
	ms.Add(starts.NewLocalConn(spanish, nil))
	ctx := context.Background()

	run := func(label, ranking string) {
		q := starts.NewQuery()
		r, err := starts.ParseRanking(ranking)
		if err != nil {
			log.Fatal(err)
		}
		q.Ranking = r
		answer, err := ms.Search(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  query: %s\n  contacted: %v\n", label, ranking, answer.Contacted)
		for i, d := range answer.Documents {
			fmt.Printf("  %d. %-40s %v\n", i+1, d.Title(), d.Sources)
		}
		fmt.Println()
	}

	// Unqualified terms default to en-US (the query default).
	run("English query (default en-US):", `list((body-of-text "distributed"))`)
	// Language-qualified Spanish terms match only Spanish documents.
	run("Spanish query ([es ...]):", `list((body-of-text [es "datos"]))`)
	// A dialect-qualified term: en-GB documents only.
	run("British English query:", `list((body-of-text [en-GB "behaviour"]))`)
}
