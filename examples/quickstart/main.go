// Quickstart: build two in-process STARTS sources, run one metasearch
// query across them, and print the merged rank.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"starts"
)

func main() {
	// A source is an engine plus a document collection.
	dbEngine, err := starts.NewVectorEngine()
	if err != nil {
		log.Fatal(err)
	}
	dbSource, err := starts.NewSource("db-papers", dbEngine)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range []*starts.Document{
		{
			Linkage: "http://db/dood.ps",
			Title:   "A Comparison Between Deductive and Object-Oriented Database Systems",
			Authors: []string{"Jeffrey D. Ullman"},
			Body: "Deductive databases and object-oriented databases are compared " +
				"with an emphasis on distributed query evaluation.",
			Date: time.Date(1995, 6, 1, 0, 0, 0, 0, time.UTC),
		},
		{
			Linkage: "http://db/lagunita.ps",
			Title:   "Database Research: Achievements and Opportunities",
			Authors: []string{"Silberschatz", "Stonebraker", "Ullman"},
			Body: "Distributed databases, parallel databases and the distributed " +
				"systems that run them: achievements and opportunities.",
			Date: time.Date(1996, 9, 15, 0, 0, 0, 0, time.UTC),
		},
	} {
		if err := dbSource.Add(d); err != nil {
			log.Fatal(err)
		}
	}

	webEngine, err := starts.NewBooleanEngine() // a Glimpse-like filter-only engine
	if err != nil {
		log.Fatal(err)
	}
	webSource, err := starts.NewSource("web-pages", webEngine)
	if err != nil {
		log.Fatal(err)
	}
	if err := webSource.Add(&starts.Document{
		Linkage: "http://web/metasearch.html",
		Title:   "What is a metasearcher?",
		Body: "A metasearcher gives one query interface over many distributed " +
			"search engines and databases.",
		Date: time.Date(1996, 2, 2, 0, 0, 0, 0, time.UTC),
	}); err != nil {
		log.Fatal(err)
	}

	// The metasearcher harvests metadata and summaries, selects sources,
	// translates the query per source, and merges the ranks.
	ms := starts.NewMetasearcher(starts.MetasearcherOptions{})
	ms.Add(starts.NewLocalConn(dbSource, nil))
	ms.Add(starts.NewLocalConn(webSource, nil))

	q := starts.NewQuery()
	q.Ranking, err = starts.ParseRanking(
		`list((body-of-text "distributed") (body-of-text "databases"))`)
	if err != nil {
		log.Fatal(err)
	}
	q.MaxResults = 10

	answer, err := ms.Search(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("contacted sources: %v\n\n", answer.Contacted)
	for i, d := range answer.Documents {
		fmt.Printf("%2d. %-70s  [%s]\n", i+1, d.Title(), d.Sources[0])
		fmt.Printf("    %s\n", d.Linkage())
	}
	for id, oc := range answer.PerSource {
		if oc.Report != nil && !oc.Report.Clean() {
			fmt.Printf("\nnote: %s could not evaluate the full query (dropped ranking: %v)\n",
				id, oc.Report.DroppedRanking)
		}
	}
}
