// Feedback: the two escape hatches of the Basic-1 field set. The
// Document-text field passes a whole document as a query term and asks for
// similar documents (relevance feedback); the Free-form-text field passes
// a query in the source's own native query language, for metasearchers
// that know the engine behind a source.
//
//	go run ./examples/feedback
package main

import (
	"fmt"
	"log"
	"time"

	"starts"
	"starts/internal/engine"
	"starts/internal/lang"
)

func main() {
	cfg := engine.NewVectorConfig()
	cfg.Native = engine.SubstringNative // the "vendor's" native query language
	eng, err := starts.NewEngine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	src, err := starts.NewSource("digital-library", eng)
	if err != nil {
		log.Fatal(err)
	}
	date := time.Date(1996, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, d := range []*starts.Document{
		{
			Linkage: "http://dl/gloss.ps", Title: "Text database discovery",
			Body: "Choosing promising text databases for a query using compact collection summaries and document frequencies.",
			Date: date,
		},
		{
			Linkage: "http://dl/fusion.ps", Title: "The collection fusion problem",
			Body: "Merging ranked retrieval results from several collections into a single ranking.",
			Date: date,
		},
		{
			Linkage: "http://dl/harvest.ps", Title: "Harvest gatherers and brokers",
			Body: "A scalable discovery and access system with gatherers extracting indexing information.",
			Date: date,
		},
		{
			Linkage: "http://dl/soufflé.ps", Title: "Perfecting the cheese soufflé",
			Body: "Oven temperatures, whisking, and the structural integrity of baked eggs.",
			Date: date,
		},
	} {
		if err := src.Add(d); err != nil {
			log.Fatal(err)
		}
	}

	// --- Relevance feedback: "find me more like this abstract". ---------
	abstract := "We study how a metasearcher chooses among many text databases " +
		"using summaries of collection contents and per-term document frequencies."
	q := starts.NewQuery()
	q.Ranking, err = starts.ParseRanking(`list((document-text ` + lang.Quote(abstract) + `))`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := src.Search(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("relevance feedback for the GlOSS-style abstract:")
	fmt.Printf("  expanded actual query: %s\n", res.ActualRanking)
	for i, d := range res.Documents {
		fmt.Printf("  %d. %6.4f  %s\n", i+1, d.RawScore, d.Title())
	}

	// --- Native query pass-through. --------------------------------------
	q2 := starts.NewQuery()
	q2.Filter, err = starts.ParseFilter(`(free-form-text "ranked retrieval")`)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := src.Search(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnative (free-form-text) query \"ranked retrieval\":")
	for i, d := range res2.Documents {
		fmt.Printf("  %d. %s\n", i+1, d.Title())
	}

	// The capability is advertised: free-form-text appears in the
	// exported metadata only because the engine has a native handler.
	md := src.Metadata()
	fmt.Printf("\nmetadata advertises free-form-text: %v\n", md.SupportsField("free-form-text"))
}
