// Federation: serve two STARTS resources over HTTP (four sources with
// deliberately different engines and topical content), then run a
// metasearcher against them end to end — discovery, harvesting,
// GlOSS-based source selection, per-source translation, merging.
//
//	go run ./examples/federation
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"starts"
	"starts/internal/corpus"
	"starts/internal/engine"
)

func main() {
	universe := corpus.Generate(corpus.Config{
		Seed: 42, NumSources: 4, DocsPerSource: 150, Overlap: 0.1,
	})

	// Two resources of two sources each, with alternating engine
	// profiles: half full vector engines, half Boolean-only.
	var resourceURLs []string
	for r := 0; r < 2; r++ {
		res := starts.NewResource()
		for s := 0; s < 2; s++ {
			spec := universe.Sources[r*2+s]
			var eng *starts.Engine
			var err error
			if s == 0 {
				eng, err = starts.NewVectorEngine()
			} else {
				cfg := engine.NewVectorConfig()
				cfg.Scorer = engine.TopK{} // incompatible 0-1000 scoring
				eng, err = starts.NewEngine(cfg)
			}
			if err != nil {
				log.Fatal(err)
			}
			src, err := starts.NewSource(spec.ID, eng)
			if err != nil {
				log.Fatal(err)
			}
			for _, d := range spec.Docs {
				if err := src.Add(d); err != nil {
					log.Fatal(err)
				}
			}
			if err := res.Add(src); err != nil {
				log.Fatal(err)
			}
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		base := "http://" + ln.Addr().String()
		srv := &http.Server{Handler: starts.NewServer(res, base)}
		go srv.Serve(ln)
		defer srv.Close()
		resourceURLs = append(resourceURLs, base+"/resource")
		fmt.Printf("serving resource %d at %s\n", r+1, base)
	}

	// Metasearch across both resources.
	ctx := context.Background()
	hc := starts.NewClient(nil)
	ms := starts.NewMetasearcher(starts.MetasearcherOptions{
		Selector:   starts.SelectVSum,
		Merger:     starts.MergeScaled,
		MaxSources: 2, // contact only the two most promising sources
	})
	for _, url := range resourceURLs {
		conns, err := hc.Discover(ctx, url)
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range conns {
			ms.Add(c)
		}
	}
	if err := ms.Harvest(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("harvested %d sources\n\n", len(ms.SourceIDs()))

	for _, text := range []string{
		`list((body-of-text "database") (body-of-text "distributed"))`,
		`list((body-of-text "tomato") (body-of-text "compost"))`,
		`list((body-of-text "court") (body-of-text "verdict"))`,
	} {
		q := starts.NewQuery()
		r, err := starts.ParseRanking(text)
		if err != nil {
			log.Fatal(err)
		}
		q.Ranking = r
		q.MaxResults = 5
		answer, err := ms.Search(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query: %s\n", text)
		fmt.Printf("  selection order:")
		for _, sel := range answer.Selected {
			fmt.Printf(" %s(%.0f)", sel.ID, sel.Goodness)
		}
		fmt.Printf("\n  contacted: %v\n", answer.Contacted)
		for i, d := range answer.Documents {
			fmt.Printf("  %d. %-55s %v\n", i+1, d.Title(), d.Sources)
		}
		fmt.Println()
	}
}
