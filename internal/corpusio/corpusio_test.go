package corpusio

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"starts/internal/corpus"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := corpus.Generate(corpus.Config{Seed: 3, NumSources: 2, DocsPerSource: 5})
	path := filepath.Join(t.TempDir(), "corpus.json")
	if err := Save(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Sources) != 2 || back.Sources[0].ID != g.Sources[0].ID {
		t.Errorf("sources = %+v", back.Sources)
	}
	if !reflect.DeepEqual(back.Sources[1].Docs[4], g.Sources[1].Docs[4]) {
		t.Error("documents changed in round trip")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"Topics":[],"Sources":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(empty); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestSaveErrors(t *testing.T) {
	g := corpus.Generate(corpus.Config{Seed: 3, NumSources: 1, DocsPerSource: 1})
	if err := Save(filepath.Join(t.TempDir(), "no", "such", "dir", "f.json"), g); err == nil {
		t.Error("unwritable path accepted")
	}
}
