// Package corpusio persists generated corpora as JSON so the command-line
// tools can share one universe across processes.
package corpusio

import (
	"encoding/json"
	"fmt"
	"os"

	"starts/internal/corpus"
)

// Save writes a generated universe to path as indented JSON.
func Save(path string, g *corpus.Generated) error {
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return fmt.Errorf("corpusio: encoding corpus: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("corpusio: writing %s: %w", path, err)
	}
	return nil
}

// Load reads a universe written by Save.
func Load(path string) (*corpus.Generated, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("corpusio: reading %s: %w", path, err)
	}
	var g corpus.Generated
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("corpusio: decoding %s: %w", path, err)
	}
	if len(g.Sources) == 0 {
		return nil, fmt.Errorf("corpusio: %s contains no sources", path)
	}
	return &g, nil
}
