// Package experiments implements the claim-validation experiments X1-X8
// of DESIGN.md: runnable harnesses that measure, on deterministic
// synthetic universes, the claims the STARTS paper makes qualitatively —
// content summaries are tiny but sufficient for source selection, raw
// scores are not mergeable but TermStats are, metadata-driven translation
// lets one query run everywhere, and so on. Each experiment returns a
// table that EXPERIMENTS.md records and `go test` asserts directionally.
package experiments

import (
	"fmt"
	"strings"

	"starts/internal/corpus"
	"starts/internal/engine"
	"starts/internal/source"
)

// Fleet is a set of live sources built from a generated universe.
type Fleet struct {
	Universe *corpus.Generated
	Sources  []*source.Source
	byID     map[string]*source.Source
}

// Get returns a fleet source by ID.
func (f *Fleet) Get(id string) *source.Source { return f.byID[id] }

// Profile names an engine profile used when building fleets.
type Profile int

// The engine profiles fleets rotate through.
const (
	// ProfileVector is the full-featured TFIDF engine.
	ProfileVector Profile = iota
	// ProfileTopK is a full engine with 0-1000 top-document scoring.
	ProfileTopK
	// ProfileRawTF is a full engine with unbounded raw-frequency scores.
	ProfileRawTF
	// ProfileBoolean is the filter-only Glimpse-like engine.
	ProfileBoolean
)

func (p Profile) config() engine.Config {
	switch p {
	case ProfileTopK:
		cfg := engine.NewVectorConfig()
		cfg.Scorer = engine.TopK{}
		return cfg
	case ProfileRawTF:
		cfg := engine.NewVectorConfig()
		cfg.Scorer = engine.RawTF{}
		return cfg
	case ProfileBoolean:
		return engine.NewBooleanConfig()
	default:
		return engine.NewVectorConfig()
	}
}

// BuildFleet indexes a universe into live sources, assigning profiles
// round-robin (pass a single profile for a homogeneous fleet).
func BuildFleet(g *corpus.Generated, profiles ...Profile) (*Fleet, error) {
	if len(profiles) == 0 {
		profiles = []Profile{ProfileVector}
	}
	f := &Fleet{Universe: g, byID: map[string]*source.Source{}}
	for i, spec := range g.Sources {
		cfg := profiles[i%len(profiles)].config()
		eng, err := engine.New(cfg)
		if err != nil {
			return nil, err
		}
		s, err := source.New(spec.ID, eng)
		if err != nil {
			return nil, err
		}
		if err := s.AddAll(spec.Docs); err != nil {
			return nil, fmt.Errorf("experiments: indexing %s: %w", spec.ID, err)
		}
		f.Sources = append(f.Sources, s)
		f.byID[spec.ID] = s
	}
	return f, nil
}

// Table is a rendered experiment result: a caption, a header row and data
// rows, rendered as aligned plain text for EXPERIMENTS.md.
type Table struct {
	ID      string
	Caption string
	Header  []string
	Rows    [][]string
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Caption)
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
