package experiments

import (
	"fmt"

	"starts/internal/corpus"
	"starts/internal/merge"
	"starts/internal/source"
)

// DuplicatesConfig parameterizes experiment X7.
type DuplicatesConfig struct {
	Seed          int64
	NumSources    int
	DocsPerSource int
	Overlap       float64
	NumQueries    int
}

// DefaultDuplicatesConfig is the EXPERIMENTS.md configuration.
func DefaultDuplicatesConfig() DuplicatesConfig {
	return DuplicatesConfig{Seed: 41, NumSources: 4, DocsPerSource: 150, Overlap: 0.25, NumQueries: 40}
}

// DuplicatesResult is X7's outcome.
type DuplicatesResult struct {
	Config DuplicatesConfig
	// ResourceDupRate is the fraction of duplicate documents in answers
	// when the resource evaluates the multi-source query itself.
	ResourceDupRate float64
	// ClientDupRate is the duplicate fraction when the metasearcher
	// queries each source independently and naively concatenates.
	ClientDupRate float64
	// ClientMergedDupRate is the duplicate fraction after the client-side
	// merge layer collapses linkages.
	ClientMergedDupRate float64
	// MultiAttributed is the fraction of resource-side answer documents
	// attributed to more than one source.
	MultiAttributed float64
}

// RunDuplicates is experiment X7 (the Figure 1 rationale): querying
// several sources of one resource through the resource eliminates
// duplicate documents at the resource, which a metasearcher querying the
// sources independently must reconstruct client-side.
func RunDuplicates(cfg DuplicatesConfig) (*DuplicatesResult, error) {
	g := corpus.Generate(corpus.Config{
		Seed: cfg.Seed, NumSources: cfg.NumSources, DocsPerSource: cfg.DocsPerSource,
		Overlap: cfg.Overlap,
	})
	fleet, err := BuildFleet(g, ProfileVector)
	if err != nil {
		return nil, err
	}
	res := source.NewResource()
	for _, s := range fleet.Sources {
		if err := res.Add(s); err != nil {
			return nil, err
		}
	}
	workload := corpus.Workload(g, corpus.WorkloadConfig{
		Seed: cfg.Seed + 1, NumQueries: cfg.NumQueries, FilterFraction: -1, MaxResults: 30,
	})

	out := &DuplicatesResult{Config: cfg}
	var resourceDocs, resourceDups, resourceMulti int
	var clientDocs, clientDups int
	var mergedDocs, mergedDups int
	extra := fleet.Sources[1:]
	var extraIDs []string
	for _, s := range extra {
		extraIDs = append(extraIDs, s.ID())
	}
	for _, wq := range workload {
		// Resource-side: one query naming all sibling sources.
		q := wq.Query.Clone()
		q.Sources = extraIDs
		rres, err := res.Search(fleet.Sources[0].ID(), q)
		if err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		for _, d := range rres.Documents {
			resourceDocs++
			if seen[d.Linkage()] {
				resourceDups++
			}
			seen[d.Linkage()] = true
			if len(d.Sources) > 1 {
				resourceMulti++
			}
		}
		// Client-side: independent queries, naive concatenation.
		var inputs []merge.SourceResult
		seenC := map[string]bool{}
		for _, s := range fleet.Sources {
			r, err := s.Search(wq.Query)
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, merge.SourceResult{SourceID: s.ID(), Results: r})
			for _, d := range r.Documents {
				clientDocs++
				if seenC[d.Linkage()] {
					clientDups++
				}
				seenC[d.Linkage()] = true
			}
		}
		// Client-side with the merge layer (collapses by linkage).
		fused := (merge.RawScore{}).Merge(wq.Query, inputs)
		seenM := map[string]bool{}
		for _, d := range fused {
			mergedDocs++
			if seenM[d.Linkage()] {
				mergedDups++
			}
			seenM[d.Linkage()] = true
		}
	}
	if resourceDocs == 0 || clientDocs == 0 {
		return nil, fmt.Errorf("experiments: duplicates workload returned nothing")
	}
	out.ResourceDupRate = float64(resourceDups) / float64(resourceDocs)
	out.ClientDupRate = float64(clientDups) / float64(clientDocs)
	out.ClientMergedDupRate = float64(mergedDups) / float64(mergedDocs)
	out.MultiAttributed = float64(resourceMulti) / float64(resourceDocs)
	return out, nil
}

// Table renders X7.
func (r *DuplicatesResult) Table() *Table {
	return &Table{
		ID: "X7",
		Caption: fmt.Sprintf("duplicate elimination, %d queries over %d sources with %.0f%% overlap",
			r.Config.NumQueries, r.Config.NumSources, r.Config.Overlap*100),
		Header: []string{"evaluation path", "duplicate rate", "multi-source attributed"},
		Rows: [][]string{
			{"resource-side (same-resource query)", f3(r.ResourceDupRate), f3(r.MultiAttributed)},
			{"client-side, naive concatenation", f3(r.ClientDupRate), "-"},
			{"client-side, merge layer", f3(r.ClientMergedDupRate), "-"},
		},
	}
}
