package experiments

import (
	"fmt"

	"starts/internal/corpus"
	"starts/internal/eval"
	"starts/internal/gloss"
)

// SelectionConfig parameterizes experiment X2 (and the X1 size
// measurement shares its universe).
type SelectionConfig struct {
	Seed          int64
	NumSources    int
	DocsPerSource int
	NumQueries    int
	MaxN          int // report Rn for n = 1..MaxN
}

// DefaultSelectionConfig is the EXPERIMENTS.md configuration.
func DefaultSelectionConfig() SelectionConfig {
	return SelectionConfig{Seed: 11, NumSources: 10, DocsPerSource: 300, NumQueries: 100, MaxN: 5}
}

// SelectionResult is X2's outcome: mean Rn per selector per n.
type SelectionResult struct {
	Config SelectionConfig
	// MeanRn[selector][n-1] is the mean Rn over the workload.
	MeanRn map[string][]float64
	// Selectors in report order.
	Selectors []string
}

// RunSelection is experiment X2: do content summaries suffice to pick
// good sources? For every workload query, each source's true merit is the
// number of its documents matching the query (evaluated for real); each
// selector ranks the sources from summaries alone; Rn compares the merit
// captured by its top-n choices with the best possible n.
func RunSelection(cfg SelectionConfig) (*SelectionResult, error) {
	g := corpus.Generate(corpus.Config{
		Seed: cfg.Seed, NumSources: cfg.NumSources, DocsPerSource: cfg.DocsPerSource,
	})
	fleet, err := BuildFleet(g, ProfileVector)
	if err != nil {
		return nil, err
	}
	// Harvest summaries once, as a metasearcher would.
	infos := make([]gloss.SourceInfo, len(fleet.Sources))
	for i, s := range fleet.Sources {
		infos[i] = gloss.SourceInfo{ID: s.ID(), Summary: s.ContentSummary(), Meta: s.Metadata()}
	}
	workload := corpus.Workload(g, corpus.WorkloadConfig{
		Seed: cfg.Seed + 1, NumQueries: cfg.NumQueries, FilterFraction: -1,
		MaxResults: cfg.DocsPerSource,
	})

	selectors := []gloss.Selector{
		gloss.VSum{}, gloss.VMax{},
		gloss.VSumL{L: 0}, gloss.VMaxL{L: 0},
		gloss.BGloss{}, gloss.Random{Seed: cfg.Seed},
	}
	res := &SelectionResult{Config: cfg, MeanRn: map[string][]float64{}}
	res.Selectors = append(res.Selectors, "oracle")
	res.MeanRn["oracle"] = make([]float64, cfg.MaxN)
	for _, s := range selectors {
		res.Selectors = append(res.Selectors, s.Name())
		res.MeanRn[s.Name()] = make([]float64, cfg.MaxN)
	}

	counted := 0
	for _, wq := range workload {
		// True merit: how many documents each source returns for the
		// query (similarity > 0).
		merit := map[string]float64{}
		total := 0.0
		for _, s := range fleet.Sources {
			r, err := s.Search(wq.Query)
			if err != nil {
				return nil, err
			}
			merit[s.ID()] = float64(len(r.Documents))
			total += merit[s.ID()]
		}
		if total == 0 {
			continue // nothing anywhere; every order is ideal
		}
		counted++
		oracle := gloss.Oracle{Merit: merit}
		for n := 1; n <= cfg.MaxN; n++ {
			res.MeanRn["oracle"][n-1] += eval.Rn(orderOf(oracle.Rank(wq.Query, infos)), merit, n)
		}
		for _, s := range selectors {
			order := orderOf(s.Rank(wq.Query, infos))
			for n := 1; n <= cfg.MaxN; n++ {
				res.MeanRn[s.Name()][n-1] += eval.Rn(order, merit, n)
			}
		}
	}
	if counted == 0 {
		return nil, fmt.Errorf("experiments: selection workload produced no usable queries")
	}
	for _, vs := range res.MeanRn {
		for i := range vs {
			vs[i] /= float64(counted)
		}
	}
	return res, nil
}

func orderOf(rs []gloss.Ranked) []string {
	ids := make([]string, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	return ids
}

// Table renders X2.
func (r *SelectionResult) Table() *Table {
	t := &Table{
		ID: "X2",
		Caption: fmt.Sprintf("source selection quality, mean Rn over %d queries (%d sources × %d docs)",
			r.Config.NumQueries, r.Config.NumSources, r.Config.DocsPerSource),
		Header: []string{"selector"},
	}
	for n := 1; n <= r.Config.MaxN; n++ {
		t.Header = append(t.Header, fmt.Sprintf("R%d", n))
	}
	for _, name := range r.Selectors {
		row := []string{name}
		for _, v := range r.MeanRn[name] {
			row = append(row, f3(v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// SummarySizeResult is X1's outcome: content summaries versus raw
// collections, in bytes.
type SummarySizeResult struct {
	NumSources    int
	CorpusBytes   int
	SummaryBytes  int
	MeanRatio     float64 // corpus/summary, averaged per source
	MinRatio      float64
	SummaryTerms  int
	CorpusDocs    int
	PerSourceRows [][]string
}

// RunSummarySize is experiment X1: summaries must be much smaller than the
// collections they describe yet remain useful (usefulness is X2).
func RunSummarySize(seed int64, numSources, docsPerSource int) (*SummarySizeResult, error) {
	g := corpus.Generate(corpus.Config{Seed: seed, NumSources: numSources, DocsPerSource: docsPerSource})
	fleet, err := BuildFleet(g, ProfileVector)
	if err != nil {
		return nil, err
	}
	res := &SummarySizeResult{NumSources: numSources, MinRatio: 1e18}
	for i, s := range fleet.Sources {
		corpusBytes := 0
		for _, d := range g.Sources[i].Docs {
			corpusBytes += len(d.Title) + len(d.Body)
			for _, a := range d.Authors {
				corpusBytes += len(a)
			}
		}
		sum := s.ContentSummary()
		data, err := sum.Marshal()
		if err != nil {
			return nil, err
		}
		ratio := float64(corpusBytes) / float64(len(data))
		res.CorpusBytes += corpusBytes
		res.SummaryBytes += len(data)
		res.MeanRatio += ratio
		if ratio < res.MinRatio {
			res.MinRatio = ratio
		}
		res.SummaryTerms += sum.TotalTerms()
		res.CorpusDocs += sum.NumDocs
		res.PerSourceRows = append(res.PerSourceRows, []string{
			s.ID(), fmt.Sprintf("%d", corpusBytes), fmt.Sprintf("%d", len(data)),
			f2(ratio), fmt.Sprintf("%d", sum.TotalTerms()),
		})
	}
	res.MeanRatio /= float64(len(fleet.Sources))
	return res, nil
}

// Table renders X1.
func (r *SummarySizeResult) Table() *Table {
	t := &Table{
		ID:      "X1",
		Caption: fmt.Sprintf("content summary size vs collection size (%d sources, %d docs)", r.NumSources, r.CorpusDocs),
		Header:  []string{"source", "corpus B", "summary B", "ratio", "terms"},
		Rows:    r.PerSourceRows,
	}
	t.Rows = append(t.Rows, []string{
		"TOTAL", fmt.Sprintf("%d", r.CorpusBytes), fmt.Sprintf("%d", r.SummaryBytes),
		f2(float64(r.CorpusBytes) / float64(r.SummaryBytes)), fmt.Sprintf("%d", r.SummaryTerms),
	})
	return t
}
