package experiments

import (
	"fmt"
	"math/rand"

	"starts/internal/attr"
	"starts/internal/corpus"
	"starts/internal/engine"
	"starts/internal/eval"
	"starts/internal/index"
	"starts/internal/query"
	"starts/internal/source"
	"starts/internal/text"
	"starts/internal/translate"
)

// TranslationConfig parameterizes experiment X4.
type TranslationConfig struct {
	Seed          int64
	DocsPerSource int
	NumQueries    int
}

// DefaultTranslationConfig is the EXPERIMENTS.md configuration.
func DefaultTranslationConfig() TranslationConfig {
	return TranslationConfig{Seed: 31, DocsPerSource: 250, NumQueries: 80}
}

// TranslationRow is one engine profile's outcome in X4.
type TranslationRow struct {
	Profile string
	// TermSurvival is the mean fraction of query terms surviving
	// translation.
	TermSurvival float64
	// Overlap is the mean Jaccard overlap between the profile's answer
	// set and the fully-capable engine's answer set for the same queries.
	Overlap float64
	// PostFilterOverlap is Overlap after client-side verification of
	// dropped terms.
	PostFilterOverlap float64
}

// TranslationResult is X4's outcome.
type TranslationResult struct {
	Config TranslationConfig
	Rows   []TranslationRow
}

// restrictedProfiles are the deliberately hobbled engines X4 runs against:
// each supports a different subset of fields and modifiers over the SAME
// collection as the reference engine.
func restrictedProfiles() map[string]engine.Config {
	noAuthor := engine.NewVectorConfig()
	noAuthor.Fields = []attr.Field{attr.FieldBodyOfText}

	noMods := engine.NewVectorConfig()
	noMods.Mods = []attr.Modifier{attr.ModEQ}

	boolean := engine.NewBooleanConfig()

	titleOnly := engine.NewVectorConfig()
	titleOnly.Fields = nil // required fields only: title, date, any, linkage

	return map[string]engine.Config{
		"no-author-field": noAuthor,
		"no-modifiers":    noMods,
		"boolean-only":    boolean,
		"required-fields": titleOnly,
	}
}

// RunTranslation is experiment X4: with exported metadata a metasearcher
// can translate one query for very different engines and still get
// comparable answers. Queries mix author/title/body fields and stem
// modifiers; every engine indexes the same single-topic collection, so the
// reference answer set is well defined.
func RunTranslation(cfg TranslationConfig) (*TranslationResult, error) {
	g := corpus.Generate(corpus.Config{Seed: cfg.Seed, NumSources: 1, DocsPerSource: cfg.DocsPerSource})
	docs := g.Sources[0].Docs

	mkSource := func(id string, ecfg engine.Config) (*source.Source, error) {
		eng, err := engine.New(ecfg)
		if err != nil {
			return nil, err
		}
		s, err := source.New(id, eng)
		if err != nil {
			return nil, err
		}
		return s, s.AddAll(docs)
	}
	ref, err := mkSource("reference", engine.NewVectorConfig())
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	topic := g.Topics[0]
	queries := make([]*query.Query, 0, cfg.NumQueries)
	for i := 0; i < cfg.NumQueries; i++ {
		q := query.New()
		q.MaxResults = 50
		w1 := topic.Words[rng.Intn(20)]
		w2 := topic.Words[rng.Intn(20)]
		author := authorFirstNames()[rng.Intn(len(authorFirstNames()))]
		f, err := query.ParseFilter(fmt.Sprintf(
			`((author "%s") and ((title stem "%s") or (body-of-text "%s")))`, author, w1, w2))
		if err != nil {
			return nil, err
		}
		q.Filter = f
		r, err := query.ParseRanking(fmt.Sprintf(
			`list((body-of-text "%s") (body-of-text "%s"))`, w1, w2))
		if err != nil {
			return nil, err
		}
		q.Ranking = r
		queries = append(queries, q)
	}

	res := &TranslationResult{Config: cfg}
	for name, ecfg := range restrictedProfiles() {
		s, err := mkSource(name, ecfg)
		if err != nil {
			return nil, err
		}
		md := s.Metadata()
		row := TranslationRow{Profile: name}
		for _, q := range queries {
			refRes, err := ref.Search(q)
			if err != nil {
				return nil, err
			}
			refSet := linkages(refRes.Documents)

			sent, rep := translate.ForSource(q, md)
			totalTerms := len(q.Filter.Terms(nil)) + len(q.Ranking.Terms(nil))
			row.TermSurvival += 1 - float64(len(rep.DroppedTerms))/float64(totalTerms)

			if sent.Filter == nil && sent.Ranking == nil {
				continue // nothing survives: overlap 0
			}
			sent.AnswerFields = []attr.Field{attr.FieldTitle, attr.FieldAuthor}
			got, err := s.Search(sent)
			if err != nil {
				return nil, err
			}
			row.Overlap += eval.Overlap(refSet, linkages(got.Documents))
			kept, _ := translate.PostFilter(got.Documents, rep.DroppedTerms)
			row.PostFilterOverlap += eval.Overlap(refSet, linkages(kept))
		}
		n := float64(len(queries))
		row.TermSurvival /= n
		row.Overlap /= n
		row.PostFilterOverlap /= n
		res.Rows = append(res.Rows, row)
	}
	// Deterministic report order.
	sortRows(res.Rows)
	return res, nil
}

func sortRows(rows []TranslationRow) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && rows[j].Profile < rows[j-1].Profile; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

func authorFirstNames() []string {
	return []string{"Ada", "Grace", "Alan", "Donald", "Edgar", "Jim", "Ana", "Wei"}
}

// Table renders X4.
func (r *TranslationResult) Table() *Table {
	t := &Table{
		ID: "X4",
		Caption: fmt.Sprintf("metadata-driven translation across restricted engines, %d mixed field/modifier queries",
			r.Config.NumQueries),
		Header: []string{"profile", "term survival", "answer overlap", "after post-filter"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Profile, f3(row.TermSurvival), f3(row.Overlap), f3(row.PostFilterOverlap),
		})
	}
	return t
}

// StopWordsResult is X5's outcome.
type StopWordsResult struct {
	// RecallOff is recall of stop-phrase targets when the source cannot
	// keep stop words.
	RecallOff float64
	// RecallOn is recall when the query disables elimination at a source
	// that allows it.
	RecallOn float64
	// Phrases is the number of stop-word phrases probed.
	Phrases int
}

// RunStopWords is experiment X5: the paper's "The Who" scenario. Documents
// about stop-word-named entities are findable exactly when the source
// supports TurnOffStopWords and the query uses it.
func RunStopWords() (*StopWordsResult, error) {
	phrases := []struct{ phrase, title string }{
		{"the who", "The Who live at Leeds"},
		{"to be or not to be", "To be or not to be: the soliloquy"},
		{"it", "It, a novel"},
		{"no more", "No More: a history of refusals"},
	}
	mk := func(turnOff bool) (*source.Source, error) {
		cfg := engine.NewVectorConfig()
		cfg.TurnOffStopWords = turnOff
		cfg.Analyzer = &text.Analyzer{
			Tokenizer: cfg.Analyzer.Tokenizer,
			Stop:      text.EnglishStopWords(),
			Stemming:  false,
		}
		eng, err := engine.New(cfg)
		if err != nil {
			return nil, err
		}
		name := "stop-on"
		if turnOff {
			name = "stop-off-able"
		}
		s, err := source.New(name, eng)
		if err != nil {
			return nil, err
		}
		for i, p := range phrases {
			if err := s.Add(&index.Document{
				Linkage: fmt.Sprintf("http://docs/%d", i),
				Title:   p.title,
				Body:    "An article about " + p.phrase + " and related matters of rock history.",
			}); err != nil {
				return nil, err
			}
		}
		// Distractors.
		for i := 0; i < 20; i++ {
			if err := s.Add(&index.Document{
				Linkage: fmt.Sprintf("http://noise/%d", i),
				Title:   fmt.Sprintf("Unrelated piece %d", i),
				Body:    "completely unrelated filler content about engineering",
			}); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
	rigid, err := mk(false)
	if err != nil {
		return nil, err
	}
	flexible, err := mk(true)
	if err != nil {
		return nil, err
	}
	res := &StopWordsResult{Phrases: len(phrases)}
	for i, p := range phrases {
		q := query.New()
		f, err := query.ParseFilter(fmt.Sprintf(`(body-of-text "%s")`, p.phrase))
		if err != nil {
			return nil, err
		}
		q.Filter = f
		q.DropStopWords = false
		want := fmt.Sprintf("http://docs/%d", i)
		if found(rigid, q, want) {
			res.RecallOff++
		}
		if found(flexible, q, want) {
			res.RecallOn++
		}
	}
	res.RecallOff /= float64(len(phrases))
	res.RecallOn /= float64(len(phrases))
	return res, nil
}

func found(s *source.Source, q *query.Query, linkage string) bool {
	r, err := s.Search(q)
	if err != nil {
		return false
	}
	for _, d := range r.Documents {
		if d.Linkage() == linkage {
			return true
		}
	}
	return false
}

// Table renders X5.
func (r *StopWordsResult) Table() *Table {
	return &Table{
		ID:      "X5",
		Caption: fmt.Sprintf("stop-word control (%d stop-word phrases, DropStopWords=F)", r.Phrases),
		Header:  []string{"source capability", "recall of stop-phrase targets"},
		Rows: [][]string{
			{"TurnOffStopWords=F (elimination forced)", f2(r.RecallOff)},
			{"TurnOffStopWords=T (query keeps them)", f2(r.RecallOn)},
		},
	}
}
