package experiments

import (
	"fmt"

	"starts/internal/attr"
	"starts/internal/corpus"
	"starts/internal/eval"
	"starts/internal/gloss"
	"starts/internal/index"
	"starts/internal/lang"
	"starts/internal/meta"
	"starts/internal/query"
)

// GranularityResult is the summary-granularity ablation (an X2 variant):
// selection quality with field-qualified summaries versus summaries
// collapsed to a single unqualified vocabulary.
type GranularityResult struct {
	Config SelectionConfig
	// MeanR1 per summary granularity.
	FieldQualifiedR1 float64
	CollapsedR1      float64
	// Bytes compares the two summary encodings.
	FieldQualifiedBytes int
	CollapsedBytes      int
}

// collapseSummary merges a field-qualified summary into one unqualified
// group, aggregating postings and document frequencies by term. Document
// frequencies become upper bounds (a document counts once per field it
// holds the term in).
func collapseSummary(c *meta.ContentSummary) *meta.ContentSummary {
	agg := map[string]*meta.TermInfo{}
	var order []string
	for _, g := range c.Groups {
		for _, ti := range g.Terms {
			if cur, ok := agg[ti.Term]; ok {
				cur.Postings += ti.Postings
				cur.DocFreq += ti.DocFreq
				continue
			}
			cp := ti
			agg[ti.Term] = &cp
			order = append(order, ti.Term)
		}
	}
	out := &meta.ContentSummary{
		Stemming:          c.Stemming,
		StopWordsIncluded: c.StopWordsIncluded,
		CaseSensitive:     c.CaseSensitive,
		FieldsQualified:   false,
		NumDocs:           c.NumDocs,
		Groups:            []meta.SummaryGroup{{Field: attr.FieldAny}},
	}
	for _, term := range order {
		out.Groups[0].Terms = append(out.Groups[0].Terms, *agg[term])
	}
	out.SortTerms()
	return out
}

// RunGranularity measures the ablation.
func RunGranularity(cfg SelectionConfig) (*GranularityResult, error) {
	g := corpus.Generate(corpus.Config{
		Seed: cfg.Seed, NumSources: cfg.NumSources, DocsPerSource: cfg.DocsPerSource,
	})
	fleet, err := BuildFleet(g, ProfileVector)
	if err != nil {
		return nil, err
	}
	res := &GranularityResult{Config: cfg}
	qualified := make([]gloss.SourceInfo, len(fleet.Sources))
	collapsed := make([]gloss.SourceInfo, len(fleet.Sources))
	for i, s := range fleet.Sources {
		full := s.ContentSummary()
		coll := collapseSummary(full)
		qualified[i] = gloss.SourceInfo{ID: s.ID(), Summary: full}
		collapsed[i] = gloss.SourceInfo{ID: s.ID(), Summary: coll}
		fb, err := full.Marshal()
		if err != nil {
			return nil, err
		}
		cb, err := coll.Marshal()
		if err != nil {
			return nil, err
		}
		res.FieldQualifiedBytes += len(fb)
		res.CollapsedBytes += len(cb)
	}
	workload := corpus.Workload(g, corpus.WorkloadConfig{
		Seed: cfg.Seed + 1, NumQueries: cfg.NumQueries, FilterFraction: -1,
		MaxResults: cfg.DocsPerSource,
	})
	counted := 0
	for _, wq := range workload {
		merit := map[string]float64{}
		total := 0.0
		for _, s := range fleet.Sources {
			r, err := s.Search(wq.Query)
			if err != nil {
				return nil, err
			}
			merit[s.ID()] = float64(len(r.Documents))
			total += merit[s.ID()]
		}
		if total == 0 {
			continue
		}
		counted++
		res.FieldQualifiedR1 += eval.Rn(orderOf((gloss.VSum{}).Rank(wq.Query, qualified)), merit, 1)
		res.CollapsedR1 += eval.Rn(orderOf((gloss.VSum{}).Rank(wq.Query, collapsed)), merit, 1)
	}
	if counted == 0 {
		return nil, fmt.Errorf("experiments: granularity workload produced no usable queries")
	}
	res.FieldQualifiedR1 /= float64(counted)
	res.CollapsedR1 /= float64(counted)
	return res, nil
}

// Table renders the granularity ablation.
func (r *GranularityResult) Table() *Table {
	return &Table{
		ID:      "X2a",
		Caption: "ablation: summary granularity (vGlOSS-Sum R1)",
		Header:  []string{"summary form", "mean R1", "total bytes"},
		Rows: [][]string{
			{"field-qualified", f3(r.FieldQualifiedR1), fmt.Sprintf("%d", r.FieldQualifiedBytes)},
			{"collapsed", f3(r.CollapsedR1), fmt.Sprintf("%d", r.CollapsedBytes)},
		},
	}
}

// ProxAblationResult compares true positional proximity evaluation with
// the AND approximation a non-positional engine would have to fall back
// to (treating prox as mere co-occurrence).
type ProxAblationResult struct {
	Queries int
	// MeanPrecision is |prox ∩ and| / |and|: how much of the AND
	// approximation is actually proximity-correct.
	MeanPrecision float64
	// MeanSelectivity is |prox| / |and|: how much the positional check
	// narrows the answer.
	MeanSelectivity float64
}

// RunProxAblation measures how lossy the co-occurrence approximation of
// prox is on a synthetic collection, justifying positional postings.
func RunProxAblation(seed int64, docs, queries int) (*ProxAblationResult, error) {
	g := corpus.Generate(corpus.Config{Seed: seed, NumSources: 1, DocsPerSource: docs})
	fleet, err := BuildFleet(g, ProfileVector)
	if err != nil {
		return nil, err
	}
	ix := fleet.Sources[0].Engine().Index()
	topic := g.Topics[0]
	res := &ProxAblationResult{}
	opts := index.LookupOptions{DefaultLang: lang.EnglishUS}
	counted := 0
	for i := 0; i < queries; i++ {
		w1 := topic.Words[i%15]
		w2 := topic.Words[(i*7+3)%15]
		if w1 == w2 {
			continue
		}
		proxExpr, err := query.ParseFilter(fmt.Sprintf(
			`((body-of-text "%s") prox[2,F] (body-of-text "%s"))`, w1, w2))
		if err != nil {
			return nil, err
		}
		andExpr, err := query.ParseFilter(fmt.Sprintf(
			`((body-of-text "%s") and (body-of-text "%s"))`, w1, w2))
		if err != nil {
			return nil, err
		}
		proxSet, err := ix.EvalFilter(proxExpr, opts)
		if err != nil {
			return nil, err
		}
		andSet, err := ix.EvalFilter(andExpr, opts)
		if err != nil {
			return nil, err
		}
		if len(andSet) == 0 {
			continue
		}
		counted++
		res.MeanPrecision += float64(len(proxSet)) / float64(len(andSet))
		res.MeanSelectivity += float64(len(proxSet)) / float64(len(andSet))
	}
	if counted == 0 {
		return nil, fmt.Errorf("experiments: prox ablation found no co-occurring pairs")
	}
	res.Queries = counted
	res.MeanPrecision /= float64(counted)
	res.MeanSelectivity /= float64(counted)
	return res, nil
}

// Table renders the prox ablation.
func (r *ProxAblationResult) Table() *Table {
	return &Table{
		ID:      "X4a",
		Caption: fmt.Sprintf("ablation: prox via positions vs AND co-occurrence approximation (%d term pairs)", r.Queries),
		Header:  []string{"measure", "value"},
		Rows: [][]string{
			{"fraction of AND matches that satisfy prox[2,F]", f3(r.MeanPrecision)},
			{"i.e. AND over-answers by a factor of", f2(1 / max1(r.MeanSelectivity))},
		},
	}
}

func max1(v float64) float64 {
	if v <= 0 {
		return 1
	}
	return v
}
