package experiments

import (
	"strings"
	"testing"
)

// Small configurations keep the unit tests fast; the full EXPERIMENTS.md
// configurations run from the root-level harness.

func smallSelection() SelectionConfig {
	return SelectionConfig{Seed: 11, NumSources: 6, DocsPerSource: 60, NumQueries: 25, MaxN: 3}
}

func smallMerge() MergeConfig {
	return MergeConfig{Seed: 23, NumSources: 3, DocsPerSource: 60, NumQueries: 15, TopK: 10}
}

// TestExperimentX2Direction asserts the paper's source-selection claim:
// summary-based GlOSS selectors beat random and approach the oracle.
func TestExperimentX2Direction(t *testing.T) {
	res, err := RunSelection(smallSelection())
	if err != nil {
		t.Fatal(err)
	}
	vsum := res.MeanRn["vGlOSS-Sum(0)"]
	rnd := res.MeanRn["random"]
	oracle := res.MeanRn["oracle"]
	for i := range oracle {
		if oracle[i] < 0.999 {
			t.Errorf("oracle R%d = %g, must be 1", i+1, oracle[i])
		}
	}
	// R1 is the sharpest test of selection.
	if vsum[0] <= rnd[0] {
		t.Errorf("vGlOSS R1 %.3f should beat random %.3f", vsum[0], rnd[0])
	}
	if vsum[0] < 0.6 {
		t.Errorf("vGlOSS R1 %.3f suspiciously low", vsum[0])
	}
	vmax := res.MeanRn["vGlOSS-Max(0)"]
	if vmax[0] <= rnd[0] {
		t.Errorf("vGlOSS-Max R1 %.3f should beat random %.3f", vmax[0], rnd[0])
	}
	// The table renders.
	tab := res.Table().Render()
	if !strings.Contains(tab, "X2") || !strings.Contains(tab, "random") {
		t.Errorf("table rendering broken:\n%s", tab)
	}
}

// TestExperimentX1Direction asserts the summary-size claim: summaries are
// several times smaller than the collections (growing with collection
// size; the full config in EXPERIMENTS.md shows a larger gap).
func TestExperimentX1Direction(t *testing.T) {
	res, err := RunSummarySize(11, 4, 120)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanRatio < 2 {
		t.Errorf("summaries not smaller than corpus: mean ratio %.2f", res.MeanRatio)
	}
	if res.SummaryBytes <= 0 || res.CorpusBytes <= res.SummaryBytes {
		t.Errorf("sizes wrong: corpus %d summary %d", res.CorpusBytes, res.SummaryBytes)
	}
	// The ratio grows with collection size (summaries grow with
	// vocabulary, not documents).
	big, err := RunSummarySize(11, 4, 360)
	if err != nil {
		t.Fatal(err)
	}
	if big.MeanRatio <= res.MeanRatio {
		t.Errorf("ratio should grow with collection size: %.2f -> %.2f", res.MeanRatio, big.MeanRatio)
	}
	if got := res.Table().Render(); !strings.Contains(got, "TOTAL") {
		t.Errorf("table rendering broken:\n%s", got)
	}
}

// TestExperimentX3Direction asserts the rank-merging claim: TermStats
// re-ranking beats raw-score merging against the single-collection oracle.
func TestExperimentX3Direction(t *testing.T) {
	res, err := RunMerge(smallMerge())
	if err != nil {
		t.Fatal(err)
	}
	raw := res.MeanP["raw-score"]
	ts := res.MeanP["term-stats"]
	if ts <= raw {
		t.Errorf("term-stats P@10 %.3f should beat raw-score %.3f", ts, raw)
	}
	scaled := res.MeanP["scaled-score"]
	if ts < scaled-0.15 {
		t.Errorf("term-stats P@10 %.3f unexpectedly far below scaled %.3f", ts, scaled)
	}
	if got := res.Table().Render(); !strings.Contains(got, "term-stats") {
		t.Errorf("table rendering broken:\n%s", got)
	}
}

// TestExperimentX8Direction asserts the calibration claim: fitting score
// maps from sample-database results improves on raw-score merging.
func TestExperimentX8Direction(t *testing.T) {
	res, err := RunCalibration(smallMerge())
	if err != nil {
		t.Fatal(err)
	}
	raw := res.MeanP["raw-score"]
	cal := res.MeanP["sample-calibrated"]
	if cal < raw {
		t.Errorf("calibrated P@10 %.3f should not lose to raw %.3f", cal, raw)
	}
	if got := res.Table().Render(); !strings.Contains(got, "sample-calibrated") {
		t.Errorf("table rendering broken:\n%s", got)
	}
}

// TestExperimentX4Direction asserts the translation claim: term survival
// and answer overlap are high for mildly restricted engines, and
// post-filtering never hurts overlap for the profiles that drop terms.
func TestExperimentX4Direction(t *testing.T) {
	res, err := RunTranslation(TranslationConfig{Seed: 31, DocsPerSource: 80, NumQueries: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.TermSurvival <= 0 || row.TermSurvival > 1 {
			t.Errorf("%s: term survival %.3f out of range", row.Profile, row.TermSurvival)
		}
		if row.Profile == "no-modifiers" && row.TermSurvival < 0.999 {
			t.Errorf("no-modifiers should keep all terms, got %.3f", row.TermSurvival)
		}
	}
	if got := res.Table().Render(); !strings.Contains(got, "boolean-only") {
		t.Errorf("table rendering broken:\n%s", got)
	}
}

// TestExperimentX5Direction asserts the stop-word claim: the stop-phrase
// targets are only reachable when TurnOffStopWords is honored.
func TestExperimentX5Direction(t *testing.T) {
	res, err := RunStopWords()
	if err != nil {
		t.Fatal(err)
	}
	if res.RecallOn != 1 {
		t.Errorf("recall with stop words kept = %.2f, want 1", res.RecallOn)
	}
	if res.RecallOff >= res.RecallOn {
		t.Errorf("forced elimination recall %.2f should be below %.2f", res.RecallOff, res.RecallOn)
	}
	if got := res.Table().Render(); !strings.Contains(got, "TurnOffStopWords") {
		t.Errorf("table rendering broken:\n%s", got)
	}
}

// TestExperimentX7Direction asserts the Figure 1 claim: resource-side
// evaluation yields zero duplicates and attributes shared documents to
// multiple sources, while naive client-side concatenation duplicates.
func TestExperimentX7Direction(t *testing.T) {
	res, err := RunDuplicates(DuplicatesConfig{
		Seed: 41, NumSources: 3, DocsPerSource: 60, Overlap: 0.3, NumQueries: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResourceDupRate != 0 {
		t.Errorf("resource-side duplicate rate = %.3f, want 0", res.ResourceDupRate)
	}
	if res.ClientMergedDupRate != 0 {
		t.Errorf("merge-layer duplicate rate = %.3f, want 0", res.ClientMergedDupRate)
	}
	if res.ClientDupRate <= 0 {
		t.Errorf("naive concatenation duplicate rate = %.3f, want > 0", res.ClientDupRate)
	}
	if res.MultiAttributed <= 0 {
		t.Errorf("no multi-attributed documents despite overlap")
	}
	if got := res.Table().Render(); !strings.Contains(got, "resource-side") {
		t.Errorf("table rendering broken:\n%s", got)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID: "T", Caption: "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"xxxxxx", "1"}, {"y", "2"}},
	}
	got := tab.Render()
	want := "T — demo\n" +
		"a       long-header\n" +
		"------  -----------\n" +
		"xxxxxx  1          \n" +
		"y       2          \n"
	if got != want {
		t.Errorf("Render:\n%q\nwant\n%q", got, want)
	}
}

func TestQueryOfHelper(t *testing.T) {
	q, err := queryOf(`list((body-of-text "databases"))`)
	if err != nil || q.Ranking == nil {
		t.Fatalf("queryOf: %v", err)
	}
	if _, err := queryOf("((("); err == nil {
		t.Error("queryOf accepted garbage")
	}
}

// TestAblationGranularity: field-qualified summaries should not lose to
// collapsed ones on selection quality, while collapsed ones are smaller.
func TestAblationGranularity(t *testing.T) {
	res, err := RunGranularity(SelectionConfig{Seed: 11, NumSources: 6, DocsPerSource: 60, NumQueries: 20, MaxN: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FieldQualifiedR1 < res.CollapsedR1-0.05 {
		t.Errorf("field-qualified R1 %.3f clearly below collapsed %.3f", res.FieldQualifiedR1, res.CollapsedR1)
	}
	if res.CollapsedBytes >= res.FieldQualifiedBytes {
		t.Errorf("collapsed summaries should be smaller: %d vs %d", res.CollapsedBytes, res.FieldQualifiedBytes)
	}
	if got := res.Table().Render(); !strings.Contains(got, "collapsed") {
		t.Errorf("table rendering broken:\n%s", got)
	}
}

// TestAblationProx: the AND approximation over-answers (prox is a strict
// subset), which is the case for positional postings.
func TestAblationProx(t *testing.T) {
	res, err := RunProxAblation(51, 150, 40)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanPrecision <= 0 || res.MeanPrecision >= 1 {
		t.Errorf("prox/AND ratio %.3f should be strictly between 0 and 1", res.MeanPrecision)
	}
	if got := res.Table().Render(); !strings.Contains(got, "prox") {
		t.Errorf("table rendering broken:\n%s", got)
	}
}
