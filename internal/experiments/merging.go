package experiments

import (
	"fmt"

	"starts/internal/corpus"
	"starts/internal/engine"
	"starts/internal/eval"
	"starts/internal/merge"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/source"
)

// MergeConfig parameterizes experiments X3 and X8.
type MergeConfig struct {
	Seed          int64
	NumSources    int
	DocsPerSource int
	NumQueries    int
	TopK          int // rank depth compared against the oracle
}

// DefaultMergeConfig is the EXPERIMENTS.md configuration.
func DefaultMergeConfig() MergeConfig {
	return MergeConfig{Seed: 23, NumSources: 6, DocsPerSource: 200, NumQueries: 60, TopK: 10}
}

// MergeResult is X3's outcome per strategy.
type MergeResult struct {
	Config     MergeConfig
	Strategies []string
	// MeanP[strategy] is mean precision@TopK against the single-collection
	// oracle's top-TopK.
	MeanP map[string]float64
	// MeanTau[strategy] is mean Kendall tau against the oracle order over
	// common documents (queries with <2 common documents skipped).
	MeanTau map[string]float64
}

// buildOracle indexes every document of the universe into one combined
// TFIDF collection — the "single large source" a metasearcher wishes it
// had.
func buildOracle(g *corpus.Generated) (*source.Source, error) {
	eng, err := engine.New(engine.NewVectorConfig())
	if err != nil {
		return nil, err
	}
	oracle, err := source.New("oracle", eng)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, spec := range g.Sources {
		for _, d := range spec.Docs {
			if seen[d.Linkage] {
				continue // universes with overlap hold duplicates
			}
			seen[d.Linkage] = true
			if err := oracle.Add(d); err != nil {
				return nil, err
			}
		}
	}
	return oracle, nil
}

// RunMerge is experiment X3: merging across incompatible rankers. The
// fleet alternates TFIDF, TopK (0-1000) and RawTF (unbounded) engines;
// each strategy's fused rank is compared with the rank a single combined
// collection would produce.
func RunMerge(cfg MergeConfig) (*MergeResult, error) {
	g := corpus.Generate(corpus.Config{
		Seed: cfg.Seed, NumSources: cfg.NumSources, DocsPerSource: cfg.DocsPerSource,
	})
	fleet, err := BuildFleet(g, ProfileVector, ProfileTopK, ProfileRawTF)
	if err != nil {
		return nil, err
	}
	oracle, err := buildOracle(g)
	if err != nil {
		return nil, err
	}
	strategies := []merge.Strategy{
		merge.RawScore{}, merge.Scaled{}, merge.RoundRobin{},
		merge.TermStats{}, merge.TermStats{LocalIDF: true},
	}
	res := &MergeResult{
		Config: cfg,
		MeanP:  map[string]float64{}, MeanTau: map[string]float64{},
	}
	for _, s := range strategies {
		res.Strategies = append(res.Strategies, s.Name())
	}
	tauCount := map[string]int{}

	workload := corpus.Workload(g, corpus.WorkloadConfig{
		Seed: cfg.Seed + 1, NumQueries: cfg.NumQueries, FilterFraction: -1,
		MaxResults: cfg.TopK * 3,
	})
	counted := 0
	for _, wq := range workload {
		oracleRes, err := oracle.Search(wq.Query)
		if err != nil {
			return nil, err
		}
		if len(oracleRes.Documents) == 0 {
			continue
		}
		oracleOrder := linkages(oracleRes.Documents)
		relevant := map[string]bool{}
		for i, url := range oracleOrder {
			if i >= cfg.TopK {
				break
			}
			relevant[url] = true
		}
		var inputs []merge.SourceResult
		for _, s := range fleet.Sources {
			r, err := s.Search(wq.Query)
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, merge.SourceResult{
				SourceID: s.ID(), Meta: s.Metadata(), Summary: s.ContentSummary(), Results: r,
			})
		}
		counted++
		for _, strat := range strategies {
			fused := strat.Merge(wq.Query, inputs)
			order := linkages(fused)
			res.MeanP[strat.Name()] += eval.PrecisionAtK(order, relevant, cfg.TopK)
			if tau, err := eval.KendallTau(order, oracleOrder); err == nil {
				res.MeanTau[strat.Name()] += tau
				tauCount[strat.Name()]++
			}
		}
	}
	if counted == 0 {
		return nil, fmt.Errorf("experiments: merge workload produced no usable queries")
	}
	for _, name := range res.Strategies {
		res.MeanP[name] /= float64(counted)
		if tauCount[name] > 0 {
			res.MeanTau[name] /= float64(tauCount[name])
		}
	}
	return res, nil
}

func linkages(docs []*result.Document) []string {
	out := make([]string, len(docs))
	for i, d := range docs {
		out[i] = d.Linkage()
	}
	return out
}

// Table renders X3.
func (r *MergeResult) Table() *Table {
	t := &Table{
		ID: "X3",
		Caption: fmt.Sprintf("rank merging vs single-collection oracle, %d queries (%d sources, 3 incompatible rankers)",
			r.Config.NumQueries, r.Config.NumSources),
		Header: []string{"strategy", fmt.Sprintf("P@%d", r.Config.TopK), "Kendall tau"},
	}
	for _, name := range r.Strategies {
		t.Rows = append(t.Rows, []string{name, f3(r.MeanP[name]), f3(r.MeanTau[name])})
	}
	return t
}

// CalibrationResult is X8's outcome.
type CalibrationResult struct {
	Config     MergeConfig
	Strategies []string
	MeanP      map[string]float64
}

// RunCalibration is experiment X8: can the sample-database results
// calibrate black-box rankers? Each non-reference source's score mapping
// is fitted against the reference (TFIDF) source's sample results; merging
// on calibrated scores is compared with raw and range-scaled merging.
func RunCalibration(cfg MergeConfig) (*CalibrationResult, error) {
	g := corpus.Generate(corpus.Config{
		Seed: cfg.Seed, NumSources: cfg.NumSources, DocsPerSource: cfg.DocsPerSource,
	})
	fleet, err := BuildFleet(g, ProfileVector, ProfileTopK, ProfileRawTF)
	if err != nil {
		return nil, err
	}
	oracle, err := buildOracle(g)
	if err != nil {
		return nil, err
	}
	// Fit each source against the first (TFIDF) source's sample results.
	refSamples, err := fleet.Sources[0].SampleResults()
	if err != nil {
		return nil, err
	}
	cals := map[string]merge.Calibration{}
	for _, s := range fleet.Sources[1:] {
		samples, err := s.SampleResults()
		if err != nil {
			return nil, err
		}
		cal, err := merge.Fit(samples, refSamples)
		if err != nil {
			return nil, err
		}
		cals[s.ID()] = cal
	}
	strategies := []merge.Strategy{
		merge.RawScore{}, merge.Scaled{}, merge.Calibrated{BySource: cals},
	}
	res := &CalibrationResult{Config: cfg, MeanP: map[string]float64{}}
	for _, s := range strategies {
		res.Strategies = append(res.Strategies, s.Name())
	}
	workload := corpus.Workload(g, corpus.WorkloadConfig{
		Seed: cfg.Seed + 2, NumQueries: cfg.NumQueries, FilterFraction: -1,
		MaxResults: cfg.TopK * 3,
	})
	counted := 0
	for _, wq := range workload {
		oracleRes, err := oracle.Search(wq.Query)
		if err != nil {
			return nil, err
		}
		if len(oracleRes.Documents) == 0 {
			continue
		}
		relevant := map[string]bool{}
		for i, d := range oracleRes.Documents {
			if i >= cfg.TopK {
				break
			}
			relevant[d.Linkage()] = true
		}
		var inputs []merge.SourceResult
		for _, s := range fleet.Sources {
			r, err := s.Search(wq.Query)
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, merge.SourceResult{
				SourceID: s.ID(), Meta: s.Metadata(), Results: r,
			})
		}
		counted++
		for _, strat := range strategies {
			fused := strat.Merge(wq.Query, inputs)
			res.MeanP[strat.Name()] += eval.PrecisionAtK(linkages(fused), relevant, cfg.TopK)
		}
	}
	if counted == 0 {
		return nil, fmt.Errorf("experiments: calibration workload produced no usable queries")
	}
	for _, name := range res.Strategies {
		res.MeanP[name] /= float64(counted)
	}
	return res, nil
}

// Table renders X8.
func (r *CalibrationResult) Table() *Table {
	t := &Table{
		ID: "X8",
		Caption: fmt.Sprintf("sample-database calibration, %d queries: merging on raw vs range-scaled vs sample-calibrated scores",
			r.Config.NumQueries),
		Header: []string{"strategy", fmt.Sprintf("P@%d", r.Config.TopK)},
	}
	for _, name := range r.Strategies {
		t.Rows = append(t.Rows, []string{name, f3(r.MeanP[name])})
	}
	return t
}

// queryOf builds a ranking query from raw text, for tests.
func queryOf(ranking string) (*query.Query, error) {
	q := query.New()
	r, err := query.ParseRanking(ranking)
	if err != nil {
		return nil, err
	}
	q.Ranking = r
	return q, nil
}
