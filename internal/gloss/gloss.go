// Package gloss implements content-summary-based source selection — the
// first of the three metasearch tasks. The estimators follow the GlOSS
// family the paper cites ([7] bGlOSS for Boolean sources, [8] vGlOSS
// Max(l)/Sum(l) for vector-space sources): from nothing but each source's
// exported content summary, estimate how good the source is for a query
// and rank the sources, so the metasearcher contacts only the promising
// ones.
package gloss

import (
	"math/rand"
	"sort"

	"starts/internal/attr"
	"starts/internal/lang"
	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/text"
)

// SourceInfo is what a selector knows about one source: its harvested
// content summary (and, optionally, metadata).
type SourceInfo struct {
	ID      string
	Summary *meta.ContentSummary
	Meta    *meta.SourceMeta
}

// Ranked is one source with its estimated goodness for a query.
type Ranked struct {
	ID       string
	Goodness float64
}

// Selector ranks sources by estimated goodness for a query, best first.
// Ties break by source ID for determinism.
type Selector interface {
	Name() string
	Rank(q *query.Query, sources []SourceInfo) []Ranked
}

// probeTerm is a query term reduced to what a summary can answer.
type probeTerm struct {
	field  attr.Field
	tag    lang.Tag
	words  []string
	weight float64
}

// probes extracts the query's ranking terms (or filter terms for
// filter-only queries) as summary probes, pushing each word through the
// summary's processing flags (stemming, case folding) so probe vocabulary
// matches summary vocabulary.
func probes(q *query.Query, s *meta.ContentSummary) []probeTerm {
	expr := q.Ranking
	if expr == nil {
		expr = q.Filter
	}
	if expr == nil {
		return nil
	}
	var out []probeTerm
	for _, t := range expr.Terms(nil) {
		p := probeTerm{
			field:  t.EffectiveField(),
			tag:    t.Value.Resolve(q.DefaultLanguage),
			weight: t.EffectiveWeight(),
		}
		for _, w := range splitWords(t.Value.Text) {
			if !s.CaseSensitive {
				w = lowerASCII(w)
			}
			if s.Stemming {
				w = text.Stem(w)
			}
			p.words = append(p.words, w)
		}
		if len(p.words) > 0 {
			out = append(out, p)
		}
	}
	return out
}

func splitWords(s string) []string {
	tok, _ := text.LookupTokenizer("Acme-2")
	raw := tok.Tokenize(s)
	words := make([]string, len(raw))
	for i, t := range raw {
		words[i] = t.Text
	}
	return words
}

func lowerASCII(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// dfOf sums the summary document frequency over the probe's words.
func dfOf(s *meta.ContentSummary, p probeTerm) int {
	df := 0
	for _, w := range p.words {
		df += s.DocFreq(p.field, p.tag, w)
	}
	return df
}

func sortRanked(out []Ranked) []Ranked {
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Goodness != out[j].Goodness {
			return out[i].Goodness > out[j].Goodness
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// VSum is the vGlOSS Sum(0) estimator: goodness is the total document-
// frequency mass of the query terms, assuming query terms occur in
// disjoint document sets. It overestimates but preserves ranking well.
type VSum struct{}

// Name implements Selector.
func (VSum) Name() string { return "vGlOSS-Sum(0)" }

// Rank implements Selector.
func (VSum) Rank(q *query.Query, sources []SourceInfo) []Ranked {
	out := make([]Ranked, 0, len(sources))
	for _, si := range sources {
		g := 0.0
		if si.Summary != nil {
			for _, p := range probes(q, si.Summary) {
				g += p.weight * float64(dfOf(si.Summary, p))
			}
		}
		out = append(out, Ranked{ID: si.ID, Goodness: g})
	}
	return sortRanked(out)
}

// VMax is the vGlOSS Max(0) estimator: goodness is the largest single-term
// document frequency, assuming query terms co-occur maximally. It
// underestimates total mass but is robust for conjunctive-looking queries.
type VMax struct{}

// Name implements Selector.
func (VMax) Name() string { return "vGlOSS-Max(0)" }

// Rank implements Selector.
func (VMax) Rank(q *query.Query, sources []SourceInfo) []Ranked {
	out := make([]Ranked, 0, len(sources))
	for _, si := range sources {
		g := 0.0
		if si.Summary != nil {
			for _, p := range probes(q, si.Summary) {
				if df := p.weight * float64(dfOf(si.Summary, p)); df > g {
					g = df
				}
			}
		}
		out = append(out, Ranked{ID: si.ID, Goodness: g})
	}
	return sortRanked(out)
}

// BGloss is the bGlOSS estimator for Boolean conjunctive queries: the
// expected answer size under term-independence, |DB|·Π(df_i/|DB|).
type BGloss struct{}

// Name implements Selector.
func (BGloss) Name() string { return "bGlOSS" }

// Rank implements Selector.
func (BGloss) Rank(q *query.Query, sources []SourceInfo) []Ranked {
	out := make([]Ranked, 0, len(sources))
	for _, si := range sources {
		g := 0.0
		if si.Summary != nil && si.Summary.NumDocs > 0 {
			n := float64(si.Summary.NumDocs)
			g = n
			ps := probes(q, si.Summary)
			if len(ps) == 0 {
				g = 0
			}
			for _, p := range ps {
				g *= float64(dfOf(si.Summary, p)) / n
			}
		}
		out = append(out, Ranked{ID: si.ID, Goodness: g})
	}
	return sortRanked(out)
}

// Random is the no-information baseline: a deterministic pseudo-random
// shuffle seeded per query, so experiments are reproducible.
type Random struct {
	Seed int64
}

// Name implements Selector.
func (Random) Name() string { return "random" }

// Rank implements Selector.
func (r Random) Rank(q *query.Query, sources []SourceInfo) []Ranked {
	out := make([]Ranked, 0, len(sources))
	for _, si := range sources {
		out = append(out, Ranked{ID: si.ID})
	}
	seed := r.Seed
	if q.Ranking != nil {
		for _, c := range q.Ranking.String() {
			seed = seed*31 + int64(c)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Oracle ranks sources by externally supplied true merit; it is the upper
// bound the estimators are measured against (Rn of the oracle is 1 by
// construction).
type Oracle struct {
	Merit map[string]float64
}

// Name implements Selector.
func (Oracle) Name() string { return "oracle" }

// Rank implements Selector.
func (o Oracle) Rank(_ *query.Query, sources []SourceInfo) []Ranked {
	out := make([]Ranked, 0, len(sources))
	for _, si := range sources {
		out = append(out, Ranked{ID: si.ID, Goodness: o.Merit[si.ID]})
	}
	return sortRanked(out)
}
