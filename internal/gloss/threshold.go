package gloss

import (
	"fmt"
	"math"
	"sort"

	"starts/internal/query"
)

// The vGlOSS estimators of [8] generalize beyond l=0: given a threshold l,
// estimate how many documents at a source would score above l for the
// query, under one of two extreme assumptions about how query terms
// co-occur. Sum(l) assumes the terms appear in disjoint document sets
// (high-correlation pessimism about overlap); Max(l) assumes the term
// document sets overlap maximally. Both need an estimate of a term's
// per-document weight, which the content summary supports: the average
// term frequency is postings/df, and the collection size gives an idf.

// estTermWeight estimates the average contribution of one query term to a
// matching document's score, from summary statistics alone.
func estTermWeight(postings, df, numDocs int) float64 {
	if df == 0 || postings == 0 || numDocs == 0 {
		return 0
	}
	avgTF := float64(postings) / float64(df)
	return (1 + math.Log(avgTF)) * math.Log(1+float64(numDocs)/float64(df))
}

// termEstimate is one query term's summary-derived statistics at a source.
type termEstimate struct {
	df     int
	weight float64 // estimated per-document score contribution × query weight
}

// estimates gathers per-term statistics for a query at one source.
func estimates(q *query.Query, si SourceInfo) []termEstimate {
	if si.Summary == nil {
		return nil
	}
	var out []termEstimate
	for _, p := range probes(q, si.Summary) {
		df := dfOf(si.Summary, p)
		postings := 0
		for _, w := range p.words {
			if ti, ok := si.Summary.Lookup(p.field, p.tag, w); ok {
				postings += ti.Postings
			}
		}
		out = append(out, termEstimate{
			df:     df,
			weight: p.weight * estTermWeight(postings, df, si.Summary.NumDocs),
		})
	}
	return out
}

// VSumL is the vGlOSS Sum(l) estimator: goodness is the estimated number
// of documents scoring above L assuming the query terms occur in disjoint
// document sets. With L = 0 it degenerates to counting all matching
// documents (the mass behind VSum).
type VSumL struct {
	L float64
}

// Name implements Selector.
func (s VSumL) Name() string { return fmt.Sprintf("vGlOSS-Sum(l=%g)", s.L) }

// Rank implements Selector.
func (s VSumL) Rank(q *query.Query, sources []SourceInfo) []Ranked {
	out := make([]Ranked, 0, len(sources))
	for _, si := range sources {
		g := 0.0
		// Disjoint scenario: each term's df documents score exactly that
		// term's estimated weight.
		for _, te := range estimates(q, si) {
			if te.weight > s.L {
				g += float64(te.df)
			}
		}
		out = append(out, Ranked{ID: si.ID, Goodness: g})
	}
	return sortRanked(out)
}

// VMaxL is the vGlOSS Max(l) estimator: goodness is the estimated number
// of documents scoring above L assuming the query terms co-occur as much
// as possible. Terms are sorted by document frequency; the df_1 smallest
// set of documents is assumed to contain every term, the next df_2-df_1
// documents every term but the rarest, and so on, giving a step function
// of estimated scores.
type VMaxL struct {
	L float64
}

// Name implements Selector.
func (m VMaxL) Name() string { return fmt.Sprintf("vGlOSS-Max(l=%g)", m.L) }

// Rank implements Selector.
func (m VMaxL) Rank(q *query.Query, sources []SourceInfo) []Ranked {
	out := make([]Ranked, 0, len(sources))
	for _, si := range sources {
		ests := estimates(q, si)
		// Sort ascending by df: the rarest term bounds the first block.
		sort.Slice(ests, func(i, j int) bool { return ests[i].df < ests[j].df })
		g := 0.0
		prevDF := 0
		// Documents in block i (between df_{i-1} and df_i) contain terms
		// i..n under maximal overlap; their estimated score is the sum of
		// those terms' weights.
		for i, te := range ests {
			if te.df <= prevDF {
				continue
			}
			score := 0.0
			for _, rest := range ests[i:] {
				score += rest.weight
			}
			if score > m.L {
				g += float64(te.df - prevDF)
			}
			prevDF = te.df
		}
		out = append(out, Ranked{ID: si.ID, Goodness: g})
	}
	return sortRanked(out)
}
