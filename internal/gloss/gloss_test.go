package gloss

import (
	"testing"

	"starts/internal/attr"
	"starts/internal/lang"
	"starts/internal/meta"
	"starts/internal/query"
)

// summary builds a one-group body-of-text summary with given term stats.
func summary(numDocs int, stemmed bool, terms map[string][2]int) *meta.ContentSummary {
	c := &meta.ContentSummary{
		Stemming: stemmed, StopWordsIncluded: true, FieldsQualified: true,
		NumDocs: numDocs,
	}
	g := meta.SummaryGroup{Field: attr.FieldBodyOfText}
	for term, pd := range terms {
		g.Terms = append(g.Terms, meta.TermInfo{Term: term, Postings: pd[0], DocFreq: pd[1]})
	}
	c.Groups = []meta.SummaryGroup{g}
	c.SortTerms()
	return c
}

func rankQuery(t *testing.T, ranking string) *query.Query {
	t.Helper()
	q := query.New()
	r, err := query.ParseRanking(ranking)
	if err != nil {
		t.Fatal(err)
	}
	q.Ranking = r
	return q
}

func testSources() []SourceInfo {
	return []SourceInfo{
		// CS-heavy source: databases everywhere.
		{ID: "cs", Summary: summary(1000, false, map[string][2]int{
			"databases": {5000, 800}, "distributed": {1500, 400}, "tomato": {2, 1},
		})},
		// Gardening source: databases almost absent.
		{ID: "garden", Summary: summary(1000, false, map[string][2]int{
			"databases": {3, 2}, "tomato": {4000, 900}, "distributed": {10, 5},
		})},
		// Small mixed source.
		{ID: "mixed", Summary: summary(100, false, map[string][2]int{
			"databases": {50, 30}, "tomato": {40, 25}, "distributed": {20, 10},
		})},
	}
}

func order(rs []Ranked) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}

func TestVSumRanksTopicalSourceFirst(t *testing.T) {
	q := rankQuery(t, `list((body-of-text "databases") (body-of-text "distributed"))`)
	got := order(VSum{}.Rank(q, testSources()))
	if got[0] != "cs" || got[2] != "garden" {
		t.Errorf("VSum order = %v", got)
	}
	qg := rankQuery(t, `list((body-of-text "tomato"))`)
	if got := order(VSum{}.Rank(qg, testSources())); got[0] != "garden" {
		t.Errorf("VSum tomato order = %v", got)
	}
}

func TestVMaxUsesLargestTerm(t *testing.T) {
	q := rankQuery(t, `list((body-of-text "databases") (body-of-text "tomato"))`)
	rs := VMax{}.Rank(q, testSources())
	if rs[0].ID != "garden" || rs[0].Goodness != 900 {
		t.Errorf("VMax = %+v", rs)
	}
	// Sum would put cs first (800+1 < 2+900? no: cs=800+1=801, garden=902)
	// — both agree here; distinguish with a query where they differ.
	q2 := rankQuery(t, `list((body-of-text "databases"))`)
	rs2 := VMax{}.Rank(q2, testSources())
	if rs2[0].ID != "cs" {
		t.Errorf("VMax databases = %+v", rs2)
	}
}

func TestBGlossConjunctiveEstimate(t *testing.T) {
	q := query.New()
	f, err := query.ParseFilter(`((body-of-text "databases") and (body-of-text "distributed"))`)
	if err != nil {
		t.Fatal(err)
	}
	q.Filter = f
	rs := BGloss{}.Rank(q, testSources())
	// cs: 1000 * (800/1000) * (400/1000) = 320. garden: 1000*2/1000*5/1000
	// = 0.01. mixed: 100*(30/100)*(10/100) = 3.
	if rs[0].ID != "cs" || rs[0].Goodness != 320 {
		t.Errorf("bGlOSS = %+v", rs)
	}
	if rs[1].ID != "mixed" {
		t.Errorf("bGlOSS second = %+v", rs[1])
	}
}

func TestStemmedSummaryProbing(t *testing.T) {
	// A stemmed summary stores "databas"; the probe must stem too.
	srcs := []SourceInfo{
		{ID: "s", Summary: summary(10, true, map[string][2]int{"databas": {5, 4}})},
	}
	q := rankQuery(t, `list((body-of-text "databases"))`)
	rs := VSum{}.Rank(q, srcs)
	if rs[0].Goodness != 4 {
		t.Errorf("stemmed probe goodness = %g", rs[0].Goodness)
	}
}

func TestCaseSensitiveSummaryProbing(t *testing.T) {
	srcs := []SourceInfo{
		{ID: "s", Summary: &meta.ContentSummary{
			CaseSensitive: true, FieldsQualified: true, NumDocs: 10,
			Groups: []meta.SummaryGroup{{Field: attr.FieldBodyOfText,
				Terms: []meta.TermInfo{{Term: "Ullman", Postings: 3, DocFreq: 2}}}},
		}},
	}
	q := rankQuery(t, `list((body-of-text "Ullman"))`)
	if rs := (VSum{}).Rank(q, srcs); rs[0].Goodness != 2 {
		t.Errorf("case-sensitive probe = %g", rs[0].Goodness)
	}
}

func TestWeightsInfluenceGoodness(t *testing.T) {
	q1 := rankQuery(t, `list(((body-of-text "databases") 0.1) ((body-of-text "tomato") 0.9))`)
	rs := VSum{}.Rank(q1, testSources())
	// garden: 0.1*2 + 0.9*900 = 810.2; cs: 0.1*800 + 0.9*1 = 80.9.
	if rs[0].ID != "garden" {
		t.Errorf("weighted VSum = %+v", rs)
	}
}

func TestFilterOnlyQueriesProbeFilterTerms(t *testing.T) {
	q := query.New()
	q.Filter, _ = query.ParseFilter(`(body-of-text "tomato")`)
	rs := VSum{}.Rank(q, testSources())
	if rs[0].ID != "garden" {
		t.Errorf("filter-probe order = %v", order(rs))
	}
}

func TestMissingSummaryScoresZero(t *testing.T) {
	srcs := append(testSources(), SourceInfo{ID: "dark"})
	q := rankQuery(t, `list((body-of-text "databases"))`)
	rs := VSum{}.Rank(q, srcs)
	last := rs[len(rs)-1]
	if last.Goodness != 0 {
		t.Errorf("summary-less source goodness = %g", last.Goodness)
	}
}

func TestRandomDeterministicPerQuery(t *testing.T) {
	q := rankQuery(t, `list((body-of-text "databases"))`)
	a := order(Random{Seed: 1}.Rank(q, testSources()))
	b := order(Random{Seed: 1}.Rank(q, testSources()))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("random selector not deterministic: %v vs %v", a, b)
		}
	}
	if len(a) != 3 {
		t.Errorf("random dropped sources: %v", a)
	}
}

func TestOracle(t *testing.T) {
	o := Oracle{Merit: map[string]float64{"cs": 1, "garden": 5, "mixed": 3}}
	q := rankQuery(t, `list((body-of-text "anything"))`)
	got := order(o.Rank(q, testSources()))
	want := []string{"garden", "mixed", "cs"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("oracle order = %v", got)
		}
	}
}

func TestTieBreakByID(t *testing.T) {
	srcs := []SourceInfo{
		{ID: "b", Summary: summary(10, false, map[string][2]int{"x": {1, 1}})},
		{ID: "a", Summary: summary(10, false, map[string][2]int{"x": {1, 1}})},
	}
	q := rankQuery(t, `list((body-of-text "x"))`)
	if got := order(VSum{}.Rank(q, srcs)); got[0] != "a" {
		t.Errorf("tie order = %v", got)
	}
}

func TestSelectorNames(t *testing.T) {
	for _, s := range []Selector{VSum{}, VMax{}, BGloss{}, Random{}, Oracle{}} {
		if s.Name() == "" {
			t.Errorf("%T has empty name", s)
		}
	}
}

func TestLanguageQualifiedProbe(t *testing.T) {
	srcs := []SourceInfo{
		{ID: "es", Summary: &meta.ContentSummary{
			FieldsQualified: true, NumDocs: 10,
			Groups: []meta.SummaryGroup{{Field: attr.FieldBodyOfText, Language: lang.Spanish,
				Terms: []meta.TermInfo{{Term: "datos", Postings: 9, DocFreq: 7}}}},
		}},
		{ID: "en", Summary: &meta.ContentSummary{
			FieldsQualified: true, NumDocs: 10,
			Groups: []meta.SummaryGroup{{Field: attr.FieldBodyOfText, Language: lang.EnglishUS,
				Terms: []meta.TermInfo{{Term: "datos", Postings: 1, DocFreq: 1}}}},
		}},
	}
	q := rankQuery(t, `list((body-of-text [es "datos"]))`)
	rs := VSum{}.Rank(q, srcs)
	if rs[0].ID != "es" || rs[0].Goodness != 7 {
		t.Errorf("language probe = %+v", rs)
	}
	// The en group does not match an es probe.
	if rs[1].Goodness != 0 {
		t.Errorf("en goodness = %g", rs[1].Goodness)
	}
}
