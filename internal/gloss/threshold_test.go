package gloss

import (
	"testing"
)

func TestVSumLDegeneratesToMass(t *testing.T) {
	srcs := testSources()
	q := rankQuery(t, `list((body-of-text "databases") (body-of-text "distributed"))`)
	// At l=0 every matching document counts: goodness is the summed df,
	// matching VSum's ordering exactly.
	l0 := VSumL{L: 0}.Rank(q, srcs)
	plain := VSum{}.Rank(q, srcs)
	for i := range l0 {
		if l0[i].ID != plain[i].ID {
			t.Fatalf("Sum(0) order diverges from VSum: %v vs %v", order(l0), order(plain))
		}
	}
	if l0[0].Goodness != 800+400 {
		t.Errorf("cs Sum(0) goodness = %g, want 1200", l0[0].Goodness)
	}
}

func TestVSumLThresholdFiltersWeakTerms(t *testing.T) {
	srcs := testSources()
	q := rankQuery(t, `list((body-of-text "databases") (body-of-text "tomato"))`)
	// "databases" at garden has df 2 of 1000 docs: high idf but avg tf
	// 1.5 — its weight is modest. A very high threshold excludes weak
	// terms entirely; goodness drops monotonically with l.
	low := VSumL{L: 0}.Rank(q, srcs)
	high := VSumL{L: 100}.Rank(q, srcs)
	byID := func(rs []Ranked, id string) float64 {
		for _, r := range rs {
			if r.ID == id {
				return r.Goodness
			}
		}
		t.Fatalf("source %s missing", id)
		return 0
	}
	for _, id := range []string{"cs", "garden", "mixed"} {
		if byID(high, id) > byID(low, id) {
			t.Errorf("%s: goodness rose with threshold: %g > %g", id, byID(high, id), byID(low, id))
		}
	}
	// An absurd threshold zeroes everything.
	for _, r := range (VSumL{L: 1e9}).Rank(q, srcs) {
		if r.Goodness != 0 {
			t.Errorf("%s goodness %g at l=1e9", r.ID, r.Goodness)
		}
	}
}

func TestVMaxLOverlapStepFunction(t *testing.T) {
	// One source, two terms: df 10 (weight high) and df 100 (weight low).
	srcs := []SourceInfo{{ID: "s", Summary: summary(1000, false, map[string][2]int{
		"rare":   {40, 10},   // avg tf 4, df 10 -> strong weight
		"common": {150, 100}, // avg tf 1.5, df 100 -> weaker
	})}}
	// Under maximal overlap: 10 docs contain both terms, 90 docs contain
	// only "common".
	q := rankQuery(t, `list((body-of-text "rare") (body-of-text "common"))`)
	all := VMaxL{L: 0}.Rank(q, srcs)
	if all[0].Goodness != 100 {
		t.Errorf("Max(0) goodness = %g, want 100 (union of overlapping sets)", all[0].Goodness)
	}
	// A threshold above the weak term's weight but below the pair's
	// combined weight keeps only the 10-document overlap block.
	wRare := estTermWeight(40, 10, 1000)
	wCommon := estTermWeight(150, 100, 1000)
	if wRare <= wCommon {
		t.Fatalf("premise: rare %g should outweigh common %g", wRare, wCommon)
	}
	mid := VMaxL{L: wCommon + 0.01}.Rank(q, srcs)
	if mid[0].Goodness != 10 {
		t.Errorf("Max(mid) goodness = %g, want 10 (only the overlap block)", mid[0].Goodness)
	}
	// Above the combined weight nothing qualifies.
	top := VMaxL{L: wRare + wCommon + 1}.Rank(q, srcs)
	if top[0].Goodness != 0 {
		t.Errorf("Max(high) goodness = %g, want 0", top[0].Goodness)
	}
}

func TestThresholdEstimatorsHandleMissingSummaries(t *testing.T) {
	srcs := []SourceInfo{{ID: "dark"}}
	q := rankQuery(t, `list((body-of-text "x"))`)
	if g := (VSumL{}).Rank(q, srcs)[0].Goodness; g != 0 {
		t.Errorf("VSumL dark goodness = %g", g)
	}
	if g := (VMaxL{}).Rank(q, srcs)[0].Goodness; g != 0 {
		t.Errorf("VMaxL dark goodness = %g", g)
	}
	if (VSumL{L: 0.5}).Name() != "vGlOSS-Sum(l=0.5)" {
		t.Errorf("name = %s", VSumL{L: 0.5}.Name())
	}
	if (VMaxL{}).Name() != "vGlOSS-Max(l=0)" {
		t.Errorf("name = %s", VMaxL{}.Name())
	}
}

func TestEstTermWeight(t *testing.T) {
	if estTermWeight(0, 0, 100) != 0 || estTermWeight(10, 0, 100) != 0 || estTermWeight(10, 5, 0) != 0 {
		t.Error("degenerate inputs should weigh 0")
	}
	// Rarer terms weigh more at equal postings density.
	if estTermWeight(20, 10, 1000) <= estTermWeight(200, 100, 1000) {
		t.Error("idf ordering violated")
	}
}
