// Package adaptive closes the loop from the signals the system already
// records — per-source dispatch run-latency histograms, queue stats and
// circuit-breaker state — back onto the per-source dispatch limits, so
// a metasearcher tunes itself to each source's live capacity instead of
// running static first-touch bounds forever.
//
// The controller runs AIMD, the control law TCP congestion control
// proved out: every tick it reads each source's latency window (the
// delta of its run-seconds histogram since the previous tick) and
// estimates the window's latency quantile. A healthy window — traffic
// flowed, quantile under the SLO, breaker quiet — earns an additive
// increase of the source's concurrency and queue depth; an SLO breach
// or a broken breaker triggers a multiplicative decrease. Shrinking a
// slow source's limits is what turns one member's meltdown into a local
// event: its queue sheds early (dispatch.ErrQueueFull), its in-flight
// work stays small, and the searches fanning out to it stop donating
// goroutines and deadline budget to a source that cannot answer in
// time. When the source recovers, healthy windows walk the limits back
// up one step per tick.
//
// ZBroker (PAPERS.md) routes Z39.50 queries by continuously observed
// per-server response behavior; this package is the STARTS equivalent,
// acting on the admission side rather than the routing side.
package adaptive

import (
	"context"
	"sort"
	"sync"
	"time"

	"starts/internal/dispatch"
	"starts/internal/obs"
)

// Limiter is the seam the controller actuates through: the live
// per-source queue stats and the resize hook. *dispatch.Dispatcher
// satisfies it.
type Limiter interface {
	Snapshot() []dispatch.QueueStat
	Resize(source string, lim dispatch.Limits) bool
}

// Config tunes the controller. The zero value is usable.
type Config struct {
	// Interval is the control-loop period (default 1s). Each tick
	// evaluates the latency window since the previous tick.
	Interval time.Duration
	// LatencySLO is the per-source latency objective: a window whose
	// observed quantile exceeds it is a breach (default 2s).
	LatencySLO time.Duration
	// Quantile is which windowed latency quantile is held against the
	// SLO (default 0.95).
	Quantile float64
	// MinConcurrency/MaxConcurrency bound the per-source worker limit
	// the controller may set (defaults 1 and 64).
	MinConcurrency int
	MaxConcurrency int
	// MinQueueDepth/MaxQueueDepth bound the per-source queue-depth limit
	// (defaults 4 and 256).
	MinQueueDepth int
	MaxQueueDepth int
	// Increase is the additive step concurrency grows by on a healthy
	// window (default 1); queue depth grows by four times it, keeping
	// roughly the default 4-deep-per-worker ratio.
	Increase int
	// DecreaseFactor is the multiplicative cut applied on a breach
	// (default 0.5); values outside (0, 1) take the default.
	DecreaseFactor float64
	// Broken, when set, reports whether a source's circuit is currently
	// broken (open or probing half-open) — resilient.Breaker.Broken fits.
	// A broken source is treated as a breach even with an empty latency
	// window, so its limits shrink toward the floor while it misbehaves.
	Broken func(source string) bool
	// Metrics receives the starts_adaptive_* family; nil records
	// nothing. Pass the registry the dispatcher records into: the
	// controller also reads its per-source run histograms from here.
	Metrics *obs.Registry
	// Now overrides the clock for decision timestamps in tests.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.LatencySLO <= 0 {
		c.LatencySLO = 2 * time.Second
	}
	if c.Quantile <= 0 || c.Quantile > 1 {
		c.Quantile = 0.95
	}
	if c.MinConcurrency <= 0 {
		c.MinConcurrency = 1
	}
	if c.MaxConcurrency <= 0 {
		c.MaxConcurrency = 64
	}
	if c.MaxConcurrency < c.MinConcurrency {
		c.MaxConcurrency = c.MinConcurrency
	}
	if c.MinQueueDepth <= 0 {
		c.MinQueueDepth = 4
	}
	if c.MaxQueueDepth <= 0 {
		c.MaxQueueDepth = 256
	}
	if c.MaxQueueDepth < c.MinQueueDepth {
		c.MaxQueueDepth = c.MinQueueDepth
	}
	if c.Increase <= 0 {
		c.Increase = 1
	}
	if c.DecreaseFactor <= 0 || c.DecreaseFactor >= 1 {
		c.DecreaseFactor = 0.5
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Decision is one source's state after a tick — what the controller set
// its limits to and why. Serialized on /debug/adaptive.
type Decision struct {
	Source      string `json:"source"`
	Concurrency int    `json:"concurrency"`
	QueueDepth  int    `json:"queue_depth"`
	// Action is "increase", "decrease" or "hold"; Reason is "healthy",
	// "latency-slo", "breaker", "idle" or "ceiling".
	Action string `json:"action"`
	Reason string `json:"reason"`
	// WindowLatency is the window's observed latency quantile (0 when
	// the window was idle); WindowCount is how many runs it covered.
	WindowLatency time.Duration `json:"window_latency_ns"`
	WindowCount   int64         `json:"window_count"`
	At            time.Time     `json:"at"`
}

// sourceState is the controller's memory of one source between ticks.
type sourceState struct {
	conc    int
	depth   int
	lastRun []int64 // previous cumulative run-histogram bucket counts
	last    Decision
}

// Controller drives the AIMD loop. All methods are safe for concurrent
// use.
type Controller struct {
	cfg Config
	lim Limiter

	mu    sync.Mutex
	state map[string]*sourceState

	cTicks *obs.Counter
}

// New returns a controller actuating lim under cfg. It takes no
// measurements and applies nothing until Tick (or Start) runs.
func New(lim Limiter, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:    cfg,
		lim:    lim,
		state:  map[string]*sourceState{},
		cTicks: cfg.Metrics.Counter(obs.MAdaptiveTicks),
	}
}

// Interval reports the configured control-loop period.
func (c *Controller) Interval() time.Duration { return c.cfg.Interval }

// Tick runs one control round: read each known source's latency window,
// decide increase/decrease/hold, apply the new limits through the
// Limiter, and return the decisions sorted by source. Exposed so tests
// (and callers with their own schedulers) can drive the loop
// deterministically; Start calls it on the configured interval.
func (c *Controller) Tick() []Decision {
	c.cTicks.Inc()
	stats := c.lim.Snapshot()
	now := c.cfg.Now()

	c.mu.Lock()
	defer c.mu.Unlock()
	decisions := make([]Decision, 0, len(stats))
	for _, st := range stats {
		s := c.state[st.Source]
		if s == nil {
			// First sight: adopt the live limits, clamped into the
			// controller's bounds, and start the window from the
			// histogram's current totals.
			s = &sourceState{
				conc:    clamp(st.Workers, c.cfg.MinConcurrency, c.cfg.MaxConcurrency),
				depth:   clamp(st.QueueCap, c.cfg.MinQueueDepth, c.cfg.MaxQueueDepth),
				lastRun: c.runCounts(st.Source),
			}
			c.state[st.Source] = s
		}
		d := c.decide(st.Source, s, now)
		decisions = append(decisions, d)
	}
	sort.Slice(decisions, func(i, j int) bool { return decisions[i].Source < decisions[j].Source })
	return decisions
}

// decide evaluates one source's window and applies the outcome. Called
// with c.mu held.
func (c *Controller) decide(source string, s *sourceState, now time.Time) Decision {
	cur := c.runCounts(source)
	window := deltaCounts(cur, s.lastRun)
	s.lastRun = cur
	var count int64
	for _, n := range window {
		count += n
	}
	bounds := c.runBounds(source)
	var lat time.Duration
	if count > 0 {
		lat = obs.QuantileOf(bounds, window, c.cfg.Quantile)
	}
	broken := c.cfg.Broken != nil && c.cfg.Broken(source)

	d := Decision{
		Source:        source,
		WindowLatency: lat,
		WindowCount:   count,
		At:            now,
	}
	switch {
	case broken || (count > 0 && lat > c.cfg.LatencySLO):
		// Multiplicative decrease: cut both limits toward the floor.
		s.conc = clamp(int(float64(s.conc)*c.cfg.DecreaseFactor), c.cfg.MinConcurrency, c.cfg.MaxConcurrency)
		s.depth = clamp(int(float64(s.depth)*c.cfg.DecreaseFactor), c.cfg.MinQueueDepth, c.cfg.MaxQueueDepth)
		d.Action = "decrease"
		if broken {
			d.Reason = "breaker"
		} else {
			d.Reason = "latency-slo"
		}
		c.cfg.Metrics.Counter(obs.L(obs.MAdaptiveDecreases, "source", source)).Inc()
	case count > 0:
		// Additive increase on a healthy window.
		conc := clamp(s.conc+c.cfg.Increase, c.cfg.MinConcurrency, c.cfg.MaxConcurrency)
		depth := clamp(s.depth+4*c.cfg.Increase, c.cfg.MinQueueDepth, c.cfg.MaxQueueDepth)
		if conc == s.conc && depth == s.depth {
			d.Action, d.Reason = "hold", "ceiling"
		} else {
			s.conc, s.depth = conc, depth
			d.Action, d.Reason = "increase", "healthy"
			c.cfg.Metrics.Counter(obs.L(obs.MAdaptiveIncreases, "source", source)).Inc()
		}
	default:
		// No traffic and no breaker signal: nothing to learn from.
		d.Action, d.Reason = "hold", "idle"
	}
	d.Concurrency, d.QueueDepth = s.conc, s.depth
	c.lim.Resize(source, dispatch.Limits{Concurrency: s.conc, QueueDepth: s.depth})
	c.cfg.Metrics.Gauge(obs.L(obs.MAdaptiveConcurrency, "source", source)).Set(int64(s.conc))
	c.cfg.Metrics.Gauge(obs.L(obs.MAdaptiveQueueDepth, "source", source)).Set(int64(s.depth))
	c.cfg.Metrics.Gauge(obs.L(obs.MAdaptiveWindowSeconds, "source", source)).Set(int64(lat))
	s.last = d
	return d
}

// runCounts reads a source's cumulative run-histogram bucket counts
// from the registry the dispatcher records into.
func (c *Controller) runCounts(source string) []int64 {
	return c.cfg.Metrics.Histogram(obs.L(obs.MDispatchRunSeconds, "source", source)).BucketCounts()
}

// runBounds reads the same histogram's bucket bounds.
func (c *Controller) runBounds(source string) []time.Duration {
	return c.cfg.Metrics.Histogram(obs.L(obs.MDispatchRunSeconds, "source", source)).Bounds()
}

// deltaCounts is cur - prev element-wise; a length mismatch (first
// sight, or a registry swap) yields cur as the whole window.
func deltaCounts(cur, prev []int64) []int64 {
	if len(prev) != len(cur) {
		return cur
	}
	out := make([]int64, len(cur))
	for i := range cur {
		out[i] = cur[i] - prev[i]
	}
	return out
}

// Snapshot returns each known source's latest decision, sorted by
// source — the /debug/adaptive payload.
func (c *Controller) Snapshot() []Decision {
	c.mu.Lock()
	out := make([]Decision, 0, len(c.state))
	for _, s := range c.state {
		if s.last.Source != "" {
			out = append(out, s.last)
		}
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Source < out[j].Source })
	return out
}

// Start runs Tick every Interval until ctx ends. The returned channel
// closes when the loop has stopped.
func (c *Controller) Start(ctx context.Context) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(c.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				c.Tick()
			}
		}
	}()
	return done
}

func clamp(n, lo, hi int) int {
	if n < lo {
		return lo
	}
	if n > hi {
		return hi
	}
	return n
}
