package adaptive

import (
	"context"
	"sync"
	"testing"
	"time"

	"starts/internal/dispatch"
	"starts/internal/obs"
)

// fakeLimiter records Resize calls and serves a scripted Snapshot.
type fakeLimiter struct {
	mu    sync.Mutex
	stats []dispatch.QueueStat
	sizes map[string]dispatch.Limits
}

func newFakeLimiter(sources ...string) *fakeLimiter {
	f := &fakeLimiter{sizes: map[string]dispatch.Limits{}}
	for _, s := range sources {
		f.stats = append(f.stats, dispatch.QueueStat{Source: s, Workers: 4, QueueCap: 16})
	}
	return f
}

func (f *fakeLimiter) Snapshot() []dispatch.QueueStat {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]dispatch.QueueStat(nil), f.stats...)
}

func (f *fakeLimiter) Resize(source string, lim dispatch.Limits) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sizes[source] = lim
	return true
}

func (f *fakeLimiter) limits(source string) dispatch.Limits {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sizes[source]
}

// observe feeds n run observations of duration d for source into reg —
// what the dispatcher would have recorded.
func observe(reg *obs.Registry, source string, d time.Duration, n int) {
	h := reg.Histogram(obs.L(obs.MDispatchRunSeconds, "source", source))
	for i := 0; i < n; i++ {
		h.Observe(d)
	}
}

func newTestController(lim Limiter, reg *obs.Registry, broken func(string) bool) *Controller {
	return New(lim, Config{
		LatencySLO:     100 * time.Millisecond,
		Quantile:       0.95,
		MinConcurrency: 1,
		MaxConcurrency: 8,
		MinQueueDepth:  2,
		MaxQueueDepth:  64,
		Broken:         broken,
		Metrics:        reg,
	})
}

// TestAIMDDecreaseOnSLOBreach pins the decrease side: a window whose
// latency quantile breaches the SLO halves the source's limits, repeated
// breaches walk them to the floor, and they never go below it.
func TestAIMDDecreaseOnSLOBreach(t *testing.T) {
	reg := obs.NewRegistry()
	f := newFakeLimiter("slow")
	c := newTestController(f, reg, nil)

	c.Tick() // first sight: adopt live limits (4/16), window starts now
	if got := f.limits("slow"); got.Concurrency != 4 || got.QueueDepth != 16 {
		t.Fatalf("adopted limits = %+v, want 4/16", got)
	}
	observe(reg, "slow", 500*time.Millisecond, 10) // far over the 100ms SLO
	ds := c.Tick()
	if len(ds) != 1 || ds[0].Action != "decrease" || ds[0].Reason != "latency-slo" {
		t.Fatalf("decision = %+v, want decrease/latency-slo", ds)
	}
	if got := f.limits("slow"); got.Concurrency != 2 || got.QueueDepth != 8 {
		t.Fatalf("after one breach = %+v, want 2/8", got)
	}
	if ds[0].WindowLatency <= 100*time.Millisecond {
		t.Errorf("WindowLatency = %v, want above the SLO", ds[0].WindowLatency)
	}
	// Walk to the floor; never below MinConcurrency/MinQueueDepth.
	for i := 0; i < 5; i++ {
		observe(reg, "slow", 500*time.Millisecond, 10)
		c.Tick()
	}
	if got := f.limits("slow"); got.Concurrency != 1 || got.QueueDepth != 2 {
		t.Fatalf("floor limits = %+v, want 1/2", got)
	}
	if reg.Counter(obs.L(obs.MAdaptiveDecreases, "source", "slow")).Value() < 5 {
		t.Error("decrease counter did not track the breaches")
	}
}

// TestAIMDIncreaseOnHealthyWindows pins the increase side: healthy
// windows grow limits one additive step per tick, idle windows hold, and
// growth stops at the ceiling with a "hold/ceiling" decision.
func TestAIMDIncreaseOnHealthyWindows(t *testing.T) {
	reg := obs.NewRegistry()
	f := newFakeLimiter("ok")
	c := newTestController(f, reg, nil)
	c.Tick()

	observe(reg, "ok", 5*time.Millisecond, 10)
	ds := c.Tick()
	if ds[0].Action != "increase" || ds[0].Reason != "healthy" {
		t.Fatalf("decision = %+v, want increase/healthy", ds[0])
	}
	if got := f.limits("ok"); got.Concurrency != 5 || got.QueueDepth != 20 {
		t.Fatalf("after one healthy window = %+v, want 5/20", got)
	}

	// An idle window holds: limits must not creep on no data.
	ds = c.Tick()
	if ds[0].Action != "hold" || ds[0].Reason != "idle" {
		t.Fatalf("idle decision = %+v, want hold/idle", ds[0])
	}
	if got := f.limits("ok"); got.Concurrency != 5 {
		t.Fatalf("idle window moved limits to %+v", got)
	}

	// Growth saturates at the ceiling.
	for i := 0; i < 10; i++ {
		observe(reg, "ok", 5*time.Millisecond, 10)
		c.Tick()
	}
	if got := f.limits("ok"); got.Concurrency != 8 || got.QueueDepth != 60 {
		t.Fatalf("ceiling limits = %+v, want 8/60", got)
	}
	observe(reg, "ok", 5*time.Millisecond, 10)
	observe(reg, "ok", 5*time.Millisecond, 1)
	ds = c.Tick()
	if ds[0].Concurrency != 8 {
		t.Fatalf("above-ceiling concurrency %d", ds[0].Concurrency)
	}
}

// TestBreakerForcesDecrease pins the breaker signal: a broken source
// shrinks even when its latency window is empty (its calls are being
// refused, so no runs are recorded — exactly when the signal matters).
func TestBreakerForcesDecrease(t *testing.T) {
	reg := obs.NewRegistry()
	f := newFakeLimiter("dead")
	brokenSet := map[string]bool{"dead": true}
	var mu sync.Mutex
	c := newTestController(f, reg, func(id string) bool {
		mu.Lock()
		defer mu.Unlock()
		return brokenSet[id]
	})
	c.Tick()
	ds := c.Tick() // empty window + broken breaker
	if ds[0].Action != "decrease" || ds[0].Reason != "breaker" {
		t.Fatalf("decision = %+v, want decrease/breaker", ds[0])
	}
	// Recovery: breaker closes, traffic resumes healthy, limits re-grow.
	mu.Lock()
	brokenSet["dead"] = false
	mu.Unlock()
	observe(reg, "dead", time.Millisecond, 5)
	ds = c.Tick()
	if ds[0].Action != "increase" {
		t.Fatalf("post-recovery decision = %+v, want increase", ds[0])
	}
}

// TestAgainstRealDispatcher runs the controller against an actual
// dispatcher end to end: slow traffic shrinks the live limits (visible
// in QueueStat), fast traffic after recovery re-grows them.
func TestAgainstRealDispatcher(t *testing.T) {
	reg := obs.NewRegistry()
	d := dispatch.New(dispatch.Config{
		Limits:  dispatch.Limits{Concurrency: 4, QueueDepth: 16},
		Metrics: reg,
	})
	defer d.Close()
	c := newTestController(d, reg, nil)

	run := func(dur time.Duration, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			tk, err := d.Submit(t.Context(), "s", "", dispatch.Limits{}, func(context.Context) (any, error) {
				time.Sleep(dur)
				return nil, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tk.Wait(t.Context()); err != nil {
				t.Fatal(err)
			}
		}
	}
	run(0, 1) // create the queue
	c.Tick()  // adopt

	run(200*time.Millisecond, 3) // breach the 100ms SLO
	c.Tick()
	st := stat(t, d, "s")
	if st.Workers >= 4 {
		t.Fatalf("Workers = %d after breach, want shrunk below 4", st.Workers)
	}
	shrunk := st.Workers

	run(time.Millisecond, 24) // healthy windows flush the ring... and the next window
	c.Tick()
	run(time.Millisecond, 8)
	c.Tick()
	if st := stat(t, d, "s"); st.Workers <= shrunk {
		t.Fatalf("Workers = %d after recovery, want re-grown above %d", st.Workers, shrunk)
	}

	snap := c.Snapshot()
	if len(snap) != 1 || snap[0].Source != "s" {
		t.Fatalf("Snapshot = %+v", snap)
	}
}

func stat(t *testing.T, d *dispatch.Dispatcher, source string) dispatch.QueueStat {
	t.Helper()
	for _, st := range d.Snapshot() {
		if st.Source == source {
			return st
		}
	}
	t.Fatalf("no queue for %q", source)
	return dispatch.QueueStat{}
}
