// Package corpus generates the deterministic synthetic document
// collections and query workloads the experiment harnesses run on. The
// paper's sources (Dialog, CS-TR, web crawls) are proprietary or gone;
// what the metasearch experiments actually require of them is controlled
// topical skew — sources whose term distributions differ enough that
// source selection has signal and rank merging has tension — which the
// generator provides directly: each source draws most of its text from a
// primary topic's Zipf-distributed vocabulary, a little from shared
// general vocabulary, and a trickle from other topics.
package corpus

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"starts/internal/index"
	"starts/internal/lang"
)

// Topic is a named vocabulary. Sampling is Zipfian: the i-th word has
// probability proportional to 1/(i+1), so every topic has a few very
// common words and a long tail.
type Topic struct {
	Name  string
	Words []string
	// Language tags documents whose primary topic this is.
	Language lang.Tag
}

// BuiltinTopics returns the standard topic set: four English domains and
// one Spanish, each with a curated head and a generated tail.
func BuiltinTopics() []Topic {
	return TopicsWithVocab(defaultVocabWords)
}

// TopicsWithVocab returns the standard topic set with each topic's
// vocabulary extended (or left) at words distinct words. Larger
// vocabularies model larger collections: under the Zipf draw the
// generated tail becomes genuinely rare, the way real million-document
// collections have far more distinct terms than a toy vocabulary.
func TopicsWithVocab(words int) []Topic {
	return []Topic{
		{Name: "databases", Words: vocab([]string{
			"database", "query", "transaction", "index", "relational",
			"distributed", "schema", "join", "optimizer", "concurrency",
			"recovery", "storage", "tuple", "relation", "normalization",
			"deductive", "object", "parallel", "replication", "locking",
		}, "dat", words)},
		{Name: "medicine", Words: vocab([]string{
			"patient", "diagnosis", "treatment", "clinical", "disease",
			"symptom", "therapy", "vaccine", "infection", "surgery",
			"cardiology", "oncology", "dosage", "trial", "immune",
			"pathology", "prognosis", "chronic", "acute", "remission",
		}, "med", words)},
		{Name: "law", Words: vocab([]string{
			"court", "statute", "plaintiff", "defendant", "contract",
			"liability", "tort", "appeal", "verdict", "jurisdiction",
			"counsel", "evidence", "precedent", "damages", "injunction",
			"negligence", "testimony", "litigation", "settlement", "clause",
		}, "law", words)},
		{Name: "gardening", Words: vocab([]string{
			"tomato", "compost", "pruning", "soil", "harvest", "seedling",
			"mulch", "watering", "perennial", "fertilizer", "greenhouse",
			"cultivar", "germination", "trellis", "weeding", "bloom",
			"rootstock", "grafting", "pollinator", "raised",
		}, "gar", words)},
		{Name: "datos", Language: lang.Spanish, Words: vocab([]string{
			"datos", "consulta", "sistema", "distribuido", "busqueda",
			"indice", "archivo", "red", "servidor", "biblioteca",
			"documento", "texto", "coleccion", "fuente", "resultado",
			"algoritmo", "modelo", "analisis", "recuperacion", "catalogo",
		}, "esp", words)},
	}
}

// defaultVocabWords is the per-topic vocabulary size when Config leaves
// VocabWords zero — the historical 120, which keeps every existing seed
// reproducing the same documents.
const defaultVocabWords = 120

// vocab extends a curated head with generated tail words so each topic
// has size distinct words. The syllable pair cycles every 100 tail
// words; beyond that a cycle counter keeps words unique while the first
// 100 stay byte-identical to what smaller vocabularies generate, so
// existing seeds reproduce the same documents.
func vocab(head []string, prefix string, size int) []string {
	if size < len(head) {
		size = len(head)
	}
	words := append([]string(nil), head...)
	syllables := []string{"ra", "ne", "to", "li", "qua", "ver", "min", "sol", "tek", "dor"}
	for i := 0; len(words) < size; i++ {
		w := prefix + syllables[i%len(syllables)] + syllables[(i/len(syllables))%len(syllables)] + fmt.Sprintf("%d", i%10)
		if cycle := i / 100; cycle > 0 {
			w += fmt.Sprintf("x%d", cycle)
		}
		words = append(words, w)
	}
	return words
}

// generalWords is shared, topic-neutral vocabulary present everywhere.
var generalWords = []string{
	"system", "approach", "result", "method", "analysis", "study",
	"problem", "design", "evaluation", "performance", "model", "paper",
	"experiment", "framework", "overview", "novel", "improved", "practical",
}

// authorPool provides document authors.
var authorPool = []string{
	"Ada Lovelace", "Edsger Dijkstra", "Grace Hopper", "Alan Turing",
	"Barbara Liskov", "Donald Knuth", "Edgar Codd", "Jim Gray",
	"Ana Garcia", "Luis Moreno", "Wei Chen", "Yuki Tanaka",
}

// Config controls generation.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// NumSources is the number of sources to generate; topics rotate, so
	// several sources may share a primary topic (with different tails).
	NumSources int
	// DocsPerSource is each source's collection size.
	DocsPerSource int
	// BodyWords is the mean body length in words (default 80).
	BodyWords int
	// PrimaryBias is the fraction of body words drawn from the primary
	// topic (default 0.7); the rest splits between general vocabulary and
	// other topics.
	PrimaryBias float64
	// VocabWords is the per-topic vocabulary size (default 120). Large
	// collections should use proportionally larger vocabularies — real
	// corpora grow distinct terms with size (Heaps' law), and it is the
	// long rare tail that gives ranked retrieval its selectivity spread.
	VocabWords int
	// Overlap, in [0,1), is the fraction of each source's documents that
	// are duplicated into the next source, exercising duplicate
	// elimination (default 0).
	Overlap float64
}

// SourceSpec is one generated source: its documents plus ground truth.
type SourceSpec struct {
	ID           string
	PrimaryTopic string
	Docs         []*index.Document
}

// Generated is a complete synthetic universe.
type Generated struct {
	Topics  []Topic
	Sources []SourceSpec
}

// Generate builds a deterministic universe from the config.
func Generate(cfg Config) *Generated {
	if cfg.NumSources <= 0 {
		cfg.NumSources = 4
	}
	if cfg.DocsPerSource <= 0 {
		cfg.DocsPerSource = 100
	}
	if cfg.BodyWords <= 0 {
		cfg.BodyWords = 80
	}
	if cfg.PrimaryBias <= 0 || cfg.PrimaryBias > 1 {
		cfg.PrimaryBias = 0.7
	}
	if cfg.VocabWords <= 0 {
		cfg.VocabWords = defaultVocabWords
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	topics := TopicsWithVocab(cfg.VocabWords)
	g := &Generated{Topics: topics}

	for si := 0; si < cfg.NumSources; si++ {
		topic := topics[si%len(topics)]
		spec := SourceSpec{
			ID:           fmt.Sprintf("src-%02d-%s", si, topic.Name),
			PrimaryTopic: topic.Name,
		}
		for di := 0; di < cfg.DocsPerSource; di++ {
			spec.Docs = append(spec.Docs, genDoc(rng, topics, topic, spec.ID, di, cfg))
		}
		g.Sources = append(g.Sources, spec)
	}
	// Duplicate a fraction of each source's documents into the next
	// source (same linkage: the same logical document held twice).
	if cfg.Overlap > 0 && len(g.Sources) > 1 {
		for si := range g.Sources {
			next := &g.Sources[(si+1)%len(g.Sources)]
			n := int(cfg.Overlap * float64(cfg.DocsPerSource))
			for di := 0; di < n && di < len(g.Sources[si].Docs); di++ {
				d := g.Sources[si].Docs[di]
				cp := *d
				next.Docs = append(next.Docs, &cp)
			}
		}
	}
	return g
}

// titleCase upper-cases the first letter of each space-separated word.
func titleCase(s string) string {
	b := []byte(s)
	up := true
	for i, c := range b {
		if c == ' ' {
			up = true
			continue
		}
		if up && c >= 'a' && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
		up = false
	}
	return string(b)
}

// harmonicCDF caches the cumulative harmonic weights per vocabulary
// size, so sampling is a binary search instead of an O(n) rebuild and
// scan per pick. The cached prefix sums are accumulated left to right,
// term by term — exactly the additions the previous incremental scan
// performed — so every draw maps to the same word index as before.
var (
	harmonicsMu sync.Mutex
	harmonics   = map[int][]float64{}
)

func harmonicCDF(n int) []float64 {
	harmonicsMu.Lock()
	defer harmonicsMu.Unlock()
	if c, ok := harmonics[n]; ok {
		return c
	}
	c := make([]float64, n)
	var acc float64
	for i := 0; i < n; i++ {
		acc += 1 / float64(i+1)
		c[i] = acc
	}
	harmonics[n] = c
	return c
}

// zipfPick samples a word index with probability proportional to 1/(i+1).
func zipfPick(rng *rand.Rand, n int) int {
	cum := harmonicCDF(n)
	target := rng.Float64() * cum[n-1]
	if i := sort.SearchFloat64s(cum, target); i < n {
		return i
	}
	return n - 1
}

func pickWord(rng *rand.Rand, words []string) string {
	return words[zipfPick(rng, len(words))]
}

func genDoc(rng *rand.Rand, topics []Topic, primary Topic, sourceID string, di int, cfg Config) *index.Document {
	titleLen := 4 + rng.Intn(5)
	var title []string
	for i := 0; i < titleLen; i++ {
		title = append(title, pickWord(rng, primary.Words))
	}
	bodyLen := cfg.BodyWords/2 + rng.Intn(cfg.BodyWords)
	var body []string
	for i := 0; i < bodyLen; i++ {
		r := rng.Float64()
		switch {
		case r < cfg.PrimaryBias:
			body = append(body, pickWord(rng, primary.Words))
		case r < cfg.PrimaryBias+0.2:
			body = append(body, generalWords[rng.Intn(len(generalWords))])
		default:
			other := topics[rng.Intn(len(topics))]
			body = append(body, pickWord(rng, other.Words))
		}
	}
	doc := &index.Document{
		Linkage: fmt.Sprintf("http://%s/doc-%04d", sourceID, di),
		Title:   titleCase(strings.Join(title, " ")),
		Authors: []string{authorPool[rng.Intn(len(authorPool))]},
		Body:    strings.Join(body, " ") + ".",
		Date: time.Date(1990+rng.Intn(7), time.Month(1+rng.Intn(12)),
			1+rng.Intn(28), 0, 0, 0, 0, time.UTC),
	}
	if !primary.Language.IsZero() {
		doc.Languages = []lang.Tag{primary.Language}
	}
	return doc
}
