package corpus

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"starts/internal/lang"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, NumSources: 3, DocsPerSource: 20}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Sources) != 3 {
		t.Fatalf("sources = %d", len(a.Sources))
	}
	for si := range a.Sources {
		if a.Sources[si].ID != b.Sources[si].ID {
			t.Fatalf("nondeterministic IDs")
		}
		for di := range a.Sources[si].Docs {
			if !reflect.DeepEqual(a.Sources[si].Docs[di], b.Sources[si].Docs[di]) {
				t.Fatalf("nondeterministic doc %d/%d", si, di)
			}
		}
	}
	// A different seed changes content.
	c := Generate(Config{Seed: 8, NumSources: 3, DocsPerSource: 20})
	if a.Sources[0].Docs[0].Body == c.Sources[0].Docs[0].Body {
		t.Error("different seeds produced identical bodies")
	}
}

func TestGenerateDefaults(t *testing.T) {
	g := Generate(Config{})
	if len(g.Sources) != 4 {
		t.Errorf("default sources = %d", len(g.Sources))
	}
	for _, s := range g.Sources {
		if len(s.Docs) != 100 {
			t.Errorf("source %s has %d docs", s.ID, len(s.Docs))
		}
	}
}

func TestTopicalSkew(t *testing.T) {
	g := Generate(Config{Seed: 1, NumSources: 4, DocsPerSource: 50})
	// Count occurrences of each source's primary head-word in every
	// source; the owning source must dominate.
	count := func(src SourceSpec, word string) int {
		n := 0
		for _, d := range src.Docs {
			n += strings.Count(strings.ToLower(d.Body), word)
		}
		return n
	}
	dbSrc, gdSrc := g.Sources[0], g.Sources[3]
	if dbSrc.PrimaryTopic != "databases" || gdSrc.PrimaryTopic != "gardening" {
		t.Fatalf("topic rotation changed: %s %s", dbSrc.PrimaryTopic, gdSrc.PrimaryTopic)
	}
	if count(dbSrc, "database") <= 4*count(gdSrc, "database") {
		t.Errorf("database skew too weak: %d vs %d", count(dbSrc, "database"), count(gdSrc, "database"))
	}
	if count(gdSrc, "tomato") <= 4*count(dbSrc, "tomato") {
		t.Errorf("tomato skew too weak: %d vs %d", count(gdSrc, "tomato"), count(dbSrc, "tomato"))
	}
}

func TestSpanishTopicTagsLanguage(t *testing.T) {
	g := Generate(Config{Seed: 1, NumSources: 5, DocsPerSource: 5})
	es := g.Sources[4]
	if es.PrimaryTopic != "datos" {
		t.Fatalf("fifth topic = %s", es.PrimaryTopic)
	}
	for _, d := range es.Docs {
		if len(d.Languages) != 1 || d.Languages[0] != lang.Spanish {
			t.Fatalf("Spanish doc untagged: %+v", d.Languages)
		}
	}
}

func TestOverlapDuplication(t *testing.T) {
	g := Generate(Config{Seed: 1, NumSources: 2, DocsPerSource: 10, Overlap: 0.3})
	if len(g.Sources[1].Docs) != 13 {
		t.Fatalf("overlap docs = %d, want 13", len(g.Sources[1].Docs))
	}
	// Source 1 holds 3 documents whose linkage belongs to source 0 (the
	// wrap-around also copies 3 of source 1's docs back into source 0).
	dups := 0
	for _, d := range g.Sources[1].Docs {
		if strings.HasPrefix(d.Linkage, "http://src-00") {
			dups++
		}
	}
	if dups != 3 {
		t.Errorf("dups = %d", dups)
	}
}

func TestDocsAreIndexable(t *testing.T) {
	g := Generate(Config{Seed: 2, NumSources: 5, DocsPerSource: 10})
	for _, s := range g.Sources {
		seen := map[string]bool{}
		for _, d := range s.Docs {
			if err := d.Validate(); err != nil {
				t.Fatalf("%s: %v", s.ID, err)
			}
			if seen[d.Linkage] {
				t.Fatalf("%s: duplicate linkage %s within source", s.ID, d.Linkage)
			}
			seen[d.Linkage] = true
			if d.Title == "" || d.Body == "" || len(d.Authors) == 0 || d.Date.IsZero() {
				t.Fatalf("%s: incomplete document %+v", s.ID, d)
			}
		}
	}
}

func TestZipfPickSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, 50)
	for i := 0; i < 20000; i++ {
		counts[zipfPick(rng, 50)]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[49] {
		t.Errorf("zipf not monotone-ish: head %d mid %d tail %d", counts[0], counts[10], counts[49])
	}
	if counts[0] < 3*counts[9] {
		t.Errorf("zipf head too flat: %d vs %d", counts[0], counts[9])
	}
}

func TestWorkloadDeterministicAndValid(t *testing.T) {
	g := Generate(Config{Seed: 1, NumSources: 5, DocsPerSource: 10})
	cfg := WorkloadConfig{Seed: 9, NumQueries: 30}
	a := Workload(g, cfg)
	b := Workload(g, cfg)
	if len(a) != 30 {
		t.Fatalf("queries = %d", len(a))
	}
	filters := 0
	for i := range a {
		if a[i].Query.Ranking.String() != b[i].Query.Ranking.String() {
			t.Fatal("nondeterministic workload")
		}
		if err := a[i].Query.Validate(); err != nil {
			t.Fatalf("invalid generated query: %v", err)
		}
		if a[i].Topic == "" || len(a[i].Terms) == 0 || len(a[i].Terms) > 3 {
			t.Fatalf("bad workload entry: %+v", a[i])
		}
		if a[i].Query.Filter != nil {
			filters++
		}
	}
	if filters == 0 || filters == 30 {
		t.Errorf("filter fraction degenerate: %d/30", filters)
	}
}

func TestVocabularySize(t *testing.T) {
	for _, topic := range BuiltinTopics() {
		if len(topic.Words) != 120 {
			t.Errorf("topic %s vocab = %d", topic.Name, len(topic.Words))
		}
		seen := map[string]bool{}
		for _, w := range topic.Words {
			if seen[w] {
				t.Errorf("topic %s duplicate word %q", topic.Name, w)
			}
			seen[w] = true
		}
	}
}
