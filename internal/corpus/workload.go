package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"starts/internal/query"
)

// WorkloadConfig controls query generation.
type WorkloadConfig struct {
	Seed int64
	// NumQueries is the workload size.
	NumQueries int
	// MaxTerms bounds ranking-expression length (default 3).
	MaxTerms int
	// FilterFraction of queries also carry a filter expression built from
	// topic words (default 0.3; pass a negative value for none).
	FilterFraction float64
	// MaxResults is stamped on every query (default 20).
	MaxResults int
}

// WorkloadQuery pairs a generated query with its ground truth hooks.
type WorkloadQuery struct {
	Query *query.Query
	// Topic is the vocabulary the terms were drawn from; sources with
	// that primary topic are the "right" ones to contact.
	Topic string
	// Terms are the raw ranking words.
	Terms []string
}

// Workload generates a deterministic query stream over a universe: each
// query draws 1..MaxTerms words from one topic's vocabulary (Zipf-biased
// toward common words, occasionally deep tail).
func Workload(g *Generated, cfg WorkloadConfig) []*WorkloadQuery {
	if cfg.NumQueries <= 0 {
		cfg.NumQueries = 50
	}
	if cfg.MaxTerms <= 0 {
		cfg.MaxTerms = 3
	}
	if cfg.FilterFraction == 0 {
		cfg.FilterFraction = 0.3
	} else if cfg.FilterFraction < 0 {
		cfg.FilterFraction = 0
	}
	if cfg.MaxResults <= 0 {
		cfg.MaxResults = 20
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []*WorkloadQuery
	for i := 0; i < cfg.NumQueries; i++ {
		topic := g.Topics[rng.Intn(len(g.Topics))]
		n := 1 + rng.Intn(cfg.MaxTerms)
		seen := map[string]bool{}
		var terms []string
		for len(terms) < n {
			w := pickWord(rng, topic.Words)
			if !seen[w] {
				seen[w] = true
				terms = append(terms, w)
			}
		}
		wq := &WorkloadQuery{Topic: topic.Name, Terms: terms}
		q := query.New()
		q.MaxResults = cfg.MaxResults
		var items []string
		for _, t := range terms {
			items = append(items, fmt.Sprintf(`(body-of-text "%s")`, t))
		}
		ranking, err := query.ParseRanking("list(" + strings.Join(items, " ") + ")")
		if err != nil {
			panic(fmt.Sprintf("corpus: generated unparsable ranking: %v", err))
		}
		q.Ranking = ranking
		if rng.Float64() < cfg.FilterFraction {
			f, err := query.ParseFilter(fmt.Sprintf(`(body-of-text "%s")`, terms[0]))
			if err != nil {
				panic(fmt.Sprintf("corpus: generated unparsable filter: %v", err))
			}
			q.Filter = f
		}
		wq.Query = q
		out = append(out, wq)
	}
	return out
}
