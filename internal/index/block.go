package index

import "sort"

// blockSize is the number of postings per block. Blocks are the pruning
// unit of the sidecar block index: each carries min/max doc-id bounds and
// upper-bound statistics (max term frequency, min document length) so
// that boolean and ranked traversals can skip whole blocks that cannot
// contribute to the answer. 128 keeps the sidecar under 1% of posting
// memory while making a skipped block worth ~128 posting visits.
const blockSize = 128

// frontier caps bound the Pareto frontiers blocks and lists carry.
// Small caps keep the sidecar cheap; overflow merges entries into a
// dominating (higher-freq, shorter-len) pair, loosening the bound
// slightly but never unsoundly.
const (
	blockFrontierMax = 4
	listFrontierMax  = 8
)

// tfLen is one (term frequency, document length) candidate on a score
// upper-bound Pareto frontier. A pair a dominates b when a.freq >=
// b.freq and a.len <= b.len: for any monotone term weighting —
// non-decreasing in tf, non-increasing in length — a's weight is at
// least b's. len 0 means "length unknown" and counts as the shortest
// possible document (no normalization), the conservative direction.
type tfLen struct {
	freq, len int
}

// pushFrontier inserts a candidate into a dominance-free frontier kept
// sorted by freq descending (and therefore len descending), dropping
// dominated entries and merging the two smallest-freq entries into a
// pair that dominates both whenever the frontier would exceed max.
func pushFrontier(fr []tfLen, e tfLen, max int) []tfLen {
	for _, x := range fr {
		if x.freq >= e.freq && x.len <= e.len {
			return fr // dominated by an existing entry
		}
	}
	kept := fr[:0]
	for _, x := range fr {
		if !(e.freq >= x.freq && e.len <= x.len) {
			kept = append(kept, x)
		}
	}
	kept = append(kept, e)
	for i := len(kept) - 1; i > 0 && kept[i].freq > kept[i-1].freq; i-- {
		kept[i], kept[i-1] = kept[i-1], kept[i]
	}
	for len(kept) > max {
		a, b := kept[len(kept)-2], kept[len(kept)-1] // a.freq >= b.freq
		m := a.len
		if b.len < m {
			m = b.len
		}
		kept[len(kept)-2] = tfLen{freq: a.freq, len: m}
		kept = kept[:len(kept)-1]
	}
	return kept
}

// block is one fixed-capacity run of postings plus its sidecar stats.
// Postings within a block are ascending by DocID, and blocks themselves
// are disjoint ascending runs, so [minDoc, maxDoc] ranges never overlap.
type block struct {
	minDoc, maxDoc int
	// maxFreq is the largest term frequency of any posting in the block:
	// the tf half of a block-max score bound.
	maxFreq int
	// minLen is the smallest token count of any document in the block:
	// the length-normalization half of a block-max score bound. Zero
	// until the owning index records lengths (documents added before
	// their length is known keep the conservative bound).
	minLen int
	// frontier is the Pareto frontier of the block's (freq, len) pairs:
	// every posting is dominated by some entry, so the max monotone term
	// weight over the frontier is a tight upper bound on the block — far
	// tighter than the (maxFreq, minLen) combination, which pairs one
	// document's frequency with a different document's length.
	frontier []tfLen
	docs     []Posting
}

// postingList is the per-term entry of a field index: a sequence of
// blocks, ascending by doc id across and within blocks.
type postingList struct {
	blocks []*block
	n      int // total postings
	// maxFreq / minLen aggregate the block stats list-wide, the global
	// upper bound WAND pivoting starts from; frontier is the list-wide
	// Pareto frontier, the tight version of the same bound.
	maxFreq  int
	minLen   int
	frontier []tfLen
}

// appendPosting adds a posting with the owning document's token count.
// Doc ids must arrive in ascending order (the index assigns them
// monotonically); docLen==0 means "unknown" and keeps bounds conservative.
func (pl *postingList) appendPosting(p Posting, docLen int) {
	var b *block
	if len(pl.blocks) == 0 || len(pl.blocks[len(pl.blocks)-1].docs) >= blockSize {
		b = &block{minDoc: p.DocID, docs: make([]Posting, 0, 4)}
		pl.blocks = append(pl.blocks, b)
	} else {
		b = pl.blocks[len(pl.blocks)-1]
	}
	b.docs = append(b.docs, p)
	b.maxDoc = p.DocID
	if f := p.Freq(); f > b.maxFreq {
		b.maxFreq = f
	}
	if docLen > 0 && (b.minLen == 0 || docLen < b.minLen) {
		b.minLen = docLen
	}
	e := tfLen{freq: p.Freq(), len: docLen}
	b.frontier = pushFrontier(b.frontier, e, blockFrontierMax)
	pl.frontier = pushFrontier(pl.frontier, e, listFrontierMax)
	pl.n++
	if b.maxFreq > pl.maxFreq {
		pl.maxFreq = b.maxFreq
	}
	if b.minLen > 0 && (pl.minLen == 0 || b.minLen < pl.minLen) {
		pl.minLen = b.minLen
	}
}

// numDocs returns the posting count (= document frequency: each document
// contributes one posting per term).
func (pl *postingList) numDocs() int {
	if pl == nil {
		return 0
	}
	return pl.n
}

// iterate calls fn for every posting in doc-id order.
func (pl *postingList) iterate(fn func(Posting)) {
	if pl == nil {
		return
	}
	for _, b := range pl.blocks {
		for i := range b.docs {
			fn(b.docs[i])
		}
	}
}

// find returns the posting for one doc id, using the sidecar bounds to
// binary-search blocks before scanning within one.
func (pl *postingList) find(id int) (Posting, bool) {
	if pl == nil || len(pl.blocks) == 0 {
		return Posting{}, false
	}
	bi := sort.Search(len(pl.blocks), func(i int) bool { return pl.blocks[i].maxDoc >= id })
	if bi == len(pl.blocks) {
		return Posting{}, false
	}
	b := pl.blocks[bi]
	if id < b.minDoc {
		return Posting{}, false
	}
	di := sort.Search(len(b.docs), func(i int) bool { return b.docs[i].DocID >= id })
	if di < len(b.docs) && b.docs[di].DocID == id {
		return b.docs[di], true
	}
	return Posting{}, false
}

// listCursor walks one posting list in doc-id order with block-skipping
// seeks. The zero cursor is positioned before the first posting; call
// next or seek to position it. After exhaustion, doc() returns maxInt.
type listCursor struct {
	pl *postingList
	bi int // current block
	di int // current posting within block
	// boundBi/bound memoize the ranked path's frontier bound for the
	// block last computed, so consecutive pivots inside one block pay
	// for the TermWeight evaluations once.
	boundBi int
	bound   float64
}

const maxDocID = int(^uint(0) >> 1)

func newListCursor(pl *postingList) *listCursor {
	return &listCursor{pl: pl, bi: 0, di: 0, boundBi: -1}
}

// done reports exhaustion.
func (c *listCursor) done() bool {
	return c.pl == nil || c.bi >= len(c.pl.blocks)
}

// doc returns the current doc id, or maxDocID when exhausted.
func (c *listCursor) doc() int {
	if c.done() {
		return maxDocID
	}
	return c.pl.blocks[c.bi].docs[c.di].DocID
}

// posting returns the current posting; only valid when !done().
func (c *listCursor) posting() Posting {
	return c.pl.blocks[c.bi].docs[c.di]
}

// curBlock returns the current block for block-max bounds; nil when done.
func (c *listCursor) curBlock() *block {
	if c.done() {
		return nil
	}
	return c.pl.blocks[c.bi]
}

// next advances one posting.
func (c *listCursor) next() {
	if c.done() {
		return
	}
	c.di++
	if c.di >= len(c.pl.blocks[c.bi].docs) {
		c.bi++
		c.di = 0
	}
}

// seek advances to the first posting with doc id >= target, skipping
// whole blocks via the sidecar min/max bounds.
func (c *listCursor) seek(target int) {
	if c.done() || c.doc() >= target {
		return
	}
	// Fast path: target within the current block.
	b := c.pl.blocks[c.bi]
	if target <= b.maxDoc {
		lo := c.di
		c.di = lo + sort.Search(len(b.docs)-lo, func(i int) bool { return b.docs[lo+i].DocID >= target })
		return
	}
	// Binary search the remaining blocks by maxDoc bound.
	lo := c.bi + 1
	c.bi = lo + sort.Search(len(c.pl.blocks)-lo, func(i int) bool { return c.pl.blocks[lo+i].maxDoc >= target })
	c.di = 0
	if c.done() {
		return
	}
	b = c.pl.blocks[c.bi]
	if target > b.minDoc {
		c.di = sort.Search(len(b.docs), func(i int) bool { return b.docs[i].DocID >= target })
	}
}

// candSet bounds a lookup to an already-known candidate doc set; the
// lo/hi doc-id bounds let posting traversal skip whole blocks whose
// range cannot intersect the candidates.
type candSet struct {
	ids    map[int]bool
	lo, hi int
}

func newCandSet(ids map[int]bool) *candSet {
	cs := &candSet{ids: ids, lo: maxDocID, hi: -1}
	for id := range ids {
		if id < cs.lo {
			cs.lo = id
		}
		if id > cs.hi {
			cs.hi = id
		}
	}
	return cs
}

// admits reports candidate membership.
func (cs *candSet) admits(id int) bool { return cs == nil || cs.ids[id] }

// skipBlock reports that a whole block's doc-id range misses every
// candidate and can be pruned without scanning.
func (cs *candSet) skipBlock(b *block) bool {
	return cs != nil && (b.minDoc > cs.hi || b.maxDoc < cs.lo)
}
