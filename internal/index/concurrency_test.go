package index

import (
	"fmt"
	"sync"
	"testing"

	"starts/internal/query"
	"starts/internal/text"
)

// TestConcurrentAddAndLookup exercises the index under parallel writers
// and readers; run with -race.
func TestConcurrentAddAndLookup(t *testing.T) {
	ix := New(text.NewAnalyzer())
	const writers, readers, docsPer = 4, 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < docsPer; i++ {
				d := &Document{
					Linkage: fmt.Sprintf("http://w%d/doc%d", w, i),
					Title:   fmt.Sprintf("Concurrent document %d-%d", w, i),
					Body:    "databases distributed systems concurrency testing words",
				}
				if _, err := ix.Add(d); err != nil {
					t.Errorf("Add: %v", err)
					return
				}
			}
		}(w)
	}
	term, _, err := query.ScanTerm(`(body-of-text "databases")`)
	if err != nil {
		t.Fatal(err)
	}
	opts := LookupOptions{}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := ix.Lookup(term, opts); err != nil {
					t.Errorf("Lookup: %v", err)
					return
				}
				_ = ix.NumDocs()
				_ = ix.DocFreq("body-of-text", "databases")
			}
		}()
	}
	wg.Wait()
	if ix.NumDocs() != writers*docsPer {
		t.Errorf("NumDocs = %d, want %d", ix.NumDocs(), writers*docsPer)
	}
	m, err := ix.Lookup(term, opts)
	if err != nil || len(m.Docs) != writers*docsPer {
		t.Errorf("final lookup = %d docs, %v", len(m.Docs), err)
	}
}

// TestConcurrentFilterEval exercises filter evaluation in parallel with
// vocabulary-building operations (truncation scans build sorted vocab
// lazily under the read lock).
func TestConcurrentFilterEval(t *testing.T) {
	ix := testIndex(t)
	expr, err := query.ParseFilter(`((body-of-text right-truncation "distribut") or (author phonetic "Ulman"))`)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := ix.EvalFilter(expr, defaultOpts()); err != nil {
					t.Errorf("EvalFilter: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
