// Package index implements the search-engine substrate of a STARTS
// source: a positional, fielded, in-memory inverted index over text
// documents, with the auxiliary vocabularies (stems, soundex codes, case
// folds) needed to honor the Basic-1 term modifiers, filter-expression
// evaluation (and/or/and-not and word-distance proximity), and the
// collection statistics (document frequencies, token counts) that both
// ranking and content summaries are built from.
package index

import (
	"fmt"
	"strings"
	"time"

	"starts/internal/attr"
	"starts/internal/lang"
)

// Document is the indexable unit: a flat text document with the Basic-1
// fields. STARTS deliberately assumes flat documents — no nesting, no
// non-textual data.
type Document struct {
	// Linkage is the document URL, the document's identity across sources.
	Linkage string
	// LinkageType is the document MIME type.
	LinkageType string
	// Title, Authors and Body are the searchable text fields.
	Title   string
	Authors []string
	Body    string
	// Date is the last-modified timestamp.
	Date time.Time
	// Languages lists the languages the document is written in; empty
	// means unspecified (treated as matching any query language).
	Languages []lang.Tag
	// CrossRefs lists the URLs mentioned in the document.
	CrossRefs []string
}

// FieldText returns the document's text for one searchable field.
func (d *Document) FieldText(f attr.Field) string {
	switch attr.Normalize(f) {
	case attr.FieldTitle:
		return d.Title
	case attr.FieldAuthor:
		return strings.Join(d.Authors, ", ")
	case attr.FieldBodyOfText:
		return d.Body
	case attr.FieldCrossReferenceLinkage:
		return strings.Join(d.CrossRefs, " ")
	case attr.FieldLinkage:
		return d.Linkage
	case attr.FieldLinkageType:
		return d.LinkageType
	case attr.FieldLanguages:
		tags := make([]string, len(d.Languages))
		for i, t := range d.Languages {
			tags[i] = t.String()
		}
		return strings.Join(tags, " ")
	default:
		return ""
	}
}

// SizeKB returns the document size in KBytes (at least 1 for a non-empty
// document), the DocSize statistic of query results.
func (d *Document) SizeKB() int {
	n := len(d.Title) + len(d.Body)
	for _, a := range d.Authors {
		n += len(a)
	}
	if n == 0 {
		return 0
	}
	kb := n / 1024
	if kb == 0 {
		return 1
	}
	return kb
}

// InLanguage reports whether the document matches the query language: an
// unspecified document language matches everything.
func (d *Document) InLanguage(tag lang.Tag) bool {
	if tag.IsZero() || len(d.Languages) == 0 {
		return true
	}
	for _, t := range d.Languages {
		if t.Matches(tag) {
			return true
		}
	}
	return false
}

// Validate checks the minimal invariants an indexable document must hold.
func (d *Document) Validate() error {
	if d.Linkage == "" {
		return fmt.Errorf("index: document has no linkage (URL); linkage is the required document identity")
	}
	return nil
}

// TextFields are the fields the index builds postings for; "any" queries
// probe all of them.
var TextFields = []attr.Field{attr.FieldTitle, attr.FieldAuthor, attr.FieldBodyOfText}
