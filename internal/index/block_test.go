package index

import "testing"

func buildList(t *testing.T, n int) *postingList {
	t.Helper()
	pl := &postingList{}
	for i := 0; i < n; i++ {
		// Doc ids 3i leave gaps so seeks have absent targets; freq cycles
		// 1..5; docLen cycles 10..59.
		positions := make([]int, 1+i%5)
		for j := range positions {
			positions[j] = j
		}
		pl.appendPosting(Posting{DocID: 3 * i, Positions: positions}, 10+i%50)
	}
	return pl
}

func TestPostingListBlocksAndStats(t *testing.T) {
	pl := buildList(t, 300)
	if pl.n != 300 {
		t.Fatalf("n = %d, want 300", pl.n)
	}
	wantBlocks := (300 + blockSize - 1) / blockSize
	if len(pl.blocks) != wantBlocks {
		t.Fatalf("blocks = %d, want %d", len(pl.blocks), wantBlocks)
	}
	if pl.maxFreq != 5 {
		t.Errorf("list maxFreq = %d, want 5", pl.maxFreq)
	}
	if pl.minLen != 10 {
		t.Errorf("list minLen = %d, want 10", pl.minLen)
	}
	prevMax := -1
	total := 0
	for bi, b := range pl.blocks {
		if b.minDoc <= prevMax {
			t.Fatalf("block %d range [%d,%d] overlaps previous max %d", bi, b.minDoc, b.maxDoc, prevMax)
		}
		if b.minDoc != b.docs[0].DocID || b.maxDoc != b.docs[len(b.docs)-1].DocID {
			t.Fatalf("block %d bounds [%d,%d] disagree with content", bi, b.minDoc, b.maxDoc)
		}
		for _, p := range b.docs {
			if p.Freq() > b.maxFreq {
				t.Fatalf("block %d maxFreq %d below posting freq %d", bi, b.maxFreq, p.Freq())
			}
		}
		total += len(b.docs)
		prevMax = b.maxDoc
	}
	if total != 300 {
		t.Fatalf("postings across blocks = %d, want 300", total)
	}
}

func TestPushFrontier(t *testing.T) {
	var fr []tfLen
	// Dominated insert is a no-op; dominating insert evicts.
	fr = pushFrontier(fr, tfLen{freq: 4, len: 30}, 4)
	fr = pushFrontier(fr, tfLen{freq: 3, len: 35}, 4) // dominated (lower freq, longer doc)
	if len(fr) != 1 || fr[0] != (tfLen{freq: 4, len: 30}) {
		t.Fatalf("frontier after dominated insert: %v", fr)
	}
	fr = pushFrontier(fr, tfLen{freq: 5, len: 20}, 4) // dominates the existing entry
	if len(fr) != 1 || fr[0] != (tfLen{freq: 5, len: 20}) {
		t.Fatalf("frontier after dominating insert: %v", fr)
	}
	// Incomparable entries coexist, sorted by freq descending.
	fr = pushFrontier(fr, tfLen{freq: 2, len: 10}, 4)
	fr = pushFrontier(fr, tfLen{freq: 8, len: 50}, 4)
	want := []tfLen{{8, 50}, {5, 20}, {2, 10}}
	if len(fr) != 3 || fr[0] != want[0] || fr[1] != want[1] || fr[2] != want[2] {
		t.Fatalf("frontier = %v, want %v", fr, want)
	}
	// Overflow merges the two smallest-freq entries into a dominating pair.
	fr = pushFrontier(fr, tfLen{freq: 3, len: 15}, 3)
	want = []tfLen{{8, 50}, {5, 20}, {3, 10}}
	if len(fr) != 3 || fr[0] != want[0] || fr[1] != want[1] || fr[2] != want[2] {
		t.Fatalf("capped frontier = %v, want %v", fr, want)
	}
	// len 0 (unknown length) counts as the shortest possible document:
	// at the top frequency it dominates the whole frontier.
	fr = pushFrontier(fr, tfLen{freq: 8, len: 0}, 3)
	if len(fr) != 1 || fr[0] != (tfLen{freq: 8, len: 0}) {
		t.Fatalf("frontier after unknown-length insert: %v", fr)
	}
}

// TestFrontierCoversPostings asserts the soundness invariant bounds rely
// on: every posting's (freq, docLen) pair is dominated by some entry of
// its block's frontier and of the list frontier — even after cap merges.
func TestFrontierCoversPostings(t *testing.T) {
	pl := buildList(t, 300)
	dominated := func(fr []tfLen, freq, docLen int) bool {
		for _, e := range fr {
			if e.freq >= freq && e.len <= docLen {
				return true
			}
		}
		return false
	}
	if len(pl.frontier) == 0 || len(pl.frontier) > listFrontierMax {
		t.Fatalf("list frontier size %d", len(pl.frontier))
	}
	for bi, b := range pl.blocks {
		if len(b.frontier) == 0 || len(b.frontier) > blockFrontierMax {
			t.Fatalf("block %d frontier size %d", bi, len(b.frontier))
		}
		for _, p := range b.docs {
			i := p.DocID / 3 // buildList posting i has doc id 3i, docLen 10+i%50
			docLen := 10 + i%50
			if !dominated(b.frontier, p.Freq(), docLen) {
				t.Fatalf("block %d frontier %v misses posting freq=%d len=%d",
					bi, b.frontier, p.Freq(), docLen)
			}
			if !dominated(pl.frontier, p.Freq(), docLen) {
				t.Fatalf("list frontier %v misses posting freq=%d len=%d",
					pl.frontier, p.Freq(), docLen)
			}
		}
	}
}

func TestPostingListFind(t *testing.T) {
	pl := buildList(t, 300)
	for _, id := range []int{0, 3, 297, 3 * 299} {
		p, ok := pl.find(id)
		if !ok || p.DocID != id {
			t.Errorf("find(%d) = %+v, %v; want hit", id, p, ok)
		}
	}
	for _, id := range []int{-1, 1, 2, 298, 3*299 + 1, 1 << 30} {
		if _, ok := pl.find(id); ok {
			t.Errorf("find(%d) hit; want miss", id)
		}
	}
	var nilPL *postingList
	if _, ok := nilPL.find(5); ok {
		t.Error("nil list find hit")
	}
	if nilPL.numDocs() != 0 {
		t.Error("nil list numDocs != 0")
	}
}

func TestListCursorSeek(t *testing.T) {
	pl := buildList(t, 300)
	c := newListCursor(pl)
	if c.doc() != 0 {
		t.Fatalf("fresh cursor doc = %d, want 0", c.doc())
	}
	// Seek to an absent id lands on the next present one.
	c.seek(4)
	if c.doc() != 6 {
		t.Fatalf("seek(4) doc = %d, want 6", c.doc())
	}
	// Seek across many blocks.
	c.seek(3 * 250)
	if c.doc() != 3*250 {
		t.Fatalf("seek(750) doc = %d, want 750", c.doc())
	}
	if b := c.curBlock(); b == nil || b.minDoc > 3*250 || b.maxDoc < 3*250 {
		t.Fatalf("curBlock does not contain 750")
	}
	// Seeking backwards is a no-op.
	c.seek(0)
	if c.doc() != 3*250 {
		t.Fatalf("backward seek moved cursor to %d", c.doc())
	}
	c.seek(3*299 + 1)
	if !c.done() || c.doc() != maxDocID {
		t.Fatalf("seek past end: done=%v doc=%d", c.done(), c.doc())
	}
}

func TestListCursorWalkMatchesIterate(t *testing.T) {
	pl := buildList(t, 300)
	var want []int
	pl.iterate(func(p Posting) { want = append(want, p.DocID) })
	var got []int
	for c := newListCursor(pl); !c.done(); c.next() {
		got = append(got, c.doc())
	}
	if len(got) != len(want) {
		t.Fatalf("cursor walk %d docs, iterate %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("doc %d: cursor %d, iterate %d", i, got[i], want[i])
		}
	}
}

func TestCandSetBlockSkip(t *testing.T) {
	cs := newCandSet(map[int]bool{100: true, 200: true})
	if cs.skipBlock(&block{minDoc: 90, maxDoc: 150}) {
		t.Error("block overlapping candidates skipped")
	}
	if !cs.skipBlock(&block{minDoc: 0, maxDoc: 99}) {
		t.Error("block below candidate range not skipped")
	}
	if !cs.skipBlock(&block{minDoc: 201, maxDoc: 300}) {
		t.Error("block above candidate range not skipped")
	}
	if !cs.admits(100) || cs.admits(150) {
		t.Error("admits wrong membership")
	}
	var nilCS *candSet
	if !nilCS.admits(5) || nilCS.skipBlock(&block{}) {
		t.Error("nil candSet should admit everything and skip nothing")
	}
}
