package index

import (
	"fmt"
	"sort"

	"starts/internal/attr"
	"starts/internal/query"
)

// EvalFilter evaluates a filter expression and returns the set of matching
// document IDs. The expression should already have been capability-
// rewritten by the engine (stop-word-only terms stripped); a term that
// still eliminates entirely under opts matches nothing.
func (ix *Index) EvalFilter(e query.Expr, opts LookupOptions) (map[int]bool, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.evalFilterLocked(e, opts)
}

func (ix *Index) evalFilterLocked(e query.Expr, opts LookupOptions) (map[int]bool, error) {
	switch n := e.(type) {
	case *query.TermExpr:
		m, err := ix.lookupLocked(n.Term, opts)
		if err != nil {
			return nil, err
		}
		set := make(map[int]bool, len(m.Docs))
		for id := range m.Docs {
			set[id] = true
		}
		return set, nil
	case *query.Bin:
		switch n.Op {
		case query.OpAnd:
			// Evaluate the cheaper (by estimated posting volume) side
			// first, then restrict the other side to its match set so
			// posting traversal can skip non-qualifying blocks outright.
			a, b := n.L, n.R
			if ix.estimateLocked(b, opts) < ix.estimateLocked(a, opts) {
				a, b = b, a
			}
			l, err := ix.evalFilterLocked(a, opts)
			if err != nil {
				return nil, err
			}
			if len(l) == 0 {
				return l, nil
			}
			ropts := opts
			ropts.cand = newCandSet(l)
			r, err := ix.evalFilterLocked(b, ropts)
			if err != nil {
				return nil, err
			}
			return intersect(l, r), nil
		case query.OpOr:
			l, err := ix.evalFilterLocked(n.L, opts)
			if err != nil {
				return nil, err
			}
			r, err := ix.evalFilterLocked(n.R, opts)
			if err != nil {
				return nil, err
			}
			return union(l, r), nil
		case query.OpAndNot:
			l, err := ix.evalFilterLocked(n.L, opts)
			if err != nil {
				return nil, err
			}
			if len(l) == 0 {
				return l, nil
			}
			// Only candidates in the positive set can be subtracted.
			ropts := opts
			ropts.cand = newCandSet(l)
			r, err := ix.evalFilterLocked(n.R, ropts)
			if err != nil {
				return nil, err
			}
			return subtract(l, r), nil
		default:
			return nil, fmt.Errorf("index: unknown operator %q", n.Op)
		}
	case *query.Prox:
		return ix.evalProxLocked(n, opts)
	case *query.List:
		return nil, fmt.Errorf("index: list operator reached filter evaluation")
	default:
		return nil, fmt.Errorf("index: unknown filter node %T", e)
	}
}

// evalProxLocked evaluates a proximity constraint. Proximity is positional
// and therefore field-local: when both terms name concrete, different
// fields the constraint cannot hold; "any"-field terms are tried in every
// text field.
func (ix *Index) evalProxLocked(p *query.Prox, opts LookupOptions) (map[int]bool, error) {
	lf := p.L.EffectiveField()
	rf := p.R.EffectiveField()
	var fields []attr.Field
	switch {
	case lf == attr.FieldAny && rf == attr.FieldAny:
		fields = TextFields
	case lf == attr.FieldAny:
		fields = []attr.Field{rf}
	case rf == attr.FieldAny:
		fields = []attr.Field{lf}
	case lf == rf:
		fields = []attr.Field{lf}
	default:
		return map[int]bool{}, nil
	}
	out := map[int]bool{}
	for _, f := range fields {
		if !isTextField(f) {
			return nil, fmt.Errorf("index: prox requires text fields, found %q", f)
		}
		lm, _, err := ix.lookupTextField(f, p.L.Term, opts)
		if err != nil {
			return nil, err
		}
		rm, _, err := ix.lookupTextField(f, p.R.Term, opts)
		if err != nil {
			return nil, err
		}
		for id, li := range lm {
			ri := rm[id]
			if ri == nil {
				continue
			}
			if proxSatisfied(li.Positions, ri.Positions, p.Dist, p.Ordered) {
				out[id] = true
			}
		}
	}
	return out, nil
}

// proxSatisfied reports whether some pair of positions satisfies the
// word-distance constraint: at most dist words between the terms, with the
// left term first when ordered.
func proxSatisfied(lpos, rpos []int, dist int, ordered bool) bool {
	for _, lp := range lpos {
		// Right-position window for ordered: (lp, lp+dist+1].
		i := sort.SearchInts(rpos, lp+1)
		if i < len(rpos) && rpos[i] <= lp+dist+1 {
			return true
		}
		if !ordered {
			// Window [lp-dist-1, lp).
			j := sort.SearchInts(rpos, lp-dist-1)
			if j < len(rpos) && rpos[j] < lp {
				return true
			}
		}
	}
	return false
}

// estimateLocked guesses an expression's evaluation cost in postings
// visited, for AND operand ordering. Exact for plain single-list terms
// (document frequency), pessimistic (a whole collection scan) for
// expansion modifiers and the fields evaluated by scanning documents.
func (ix *Index) estimateLocked(e query.Expr, opts LookupOptions) int {
	switch n := e.(type) {
	case *query.TermExpr:
		return ix.estimateTermLocked(n.Term, opts)
	case *query.Bin:
		l := ix.estimateLocked(n.L, opts)
		r := ix.estimateLocked(n.R, opts)
		switch n.Op {
		case query.OpAnd:
			if r < l {
				return r
			}
			return l
		case query.OpAndNot:
			return l
		default:
			return l + r
		}
	case *query.Prox:
		l := ix.estimateTermLocked(n.L.Term, opts)
		r := ix.estimateTermLocked(n.R.Term, opts)
		if r < l {
			return r
		}
		return l
	default:
		return len(ix.docs)
	}
}

func (ix *Index) estimateTermLocked(t query.Term, opts LookupOptions) int {
	f := t.EffectiveField()
	var fields []attr.Field
	switch f {
	case attr.FieldAny:
		fields = TextFields
	case attr.FieldTitle, attr.FieldAuthor, attr.FieldBodyOfText:
		fields = []attr.Field{f}
	default:
		// Dates, linkage, languages, cross-refs, native: document scans.
		return len(ix.docs)
	}
	if t.HasMod(attr.ModStem) || t.HasMod(attr.ModPhonetic) ||
		t.HasMod(attr.ModRightTruncation) || t.HasMod(attr.ModLeftTruncation) ||
		t.HasMod(attr.ModThesaurus) {
		// Expansion modifiers touch an unknown slice of the vocabulary.
		return len(ix.docs)
	}
	words := wordsOf(ix.analyzer, t.Value.Text)
	if len(words) == 0 {
		return 0
	}
	// A phrase costs at most its rarest word; a single word exactly its
	// document frequency (summed across fields for "any").
	est := len(ix.docs)
	for _, w := range words {
		norm := ix.analyzer.NormalizeTerm(w)
		df := 0
		for _, tf := range fields {
			if fi := ix.fields[tf]; fi != nil {
				df += fi.postings[norm].numDocs()
			}
		}
		if df < est {
			est = df
		}
	}
	return est
}

func isTextField(f attr.Field) bool {
	for _, tf := range TextFields {
		if f == tf {
			return true
		}
	}
	return false
}

func intersect(a, b map[int]bool) map[int]bool {
	if len(b) < len(a) {
		a, b = b, a
	}
	out := map[int]bool{}
	for id := range a {
		if b[id] {
			out[id] = true
		}
	}
	return out
}

func union(a, b map[int]bool) map[int]bool {
	out := make(map[int]bool, len(a)+len(b))
	for id := range a {
		out[id] = true
	}
	for id := range b {
		out[id] = true
	}
	return out
}

func subtract(a, b map[int]bool) map[int]bool {
	out := map[int]bool{}
	for id := range a {
		if !b[id] {
			out[id] = true
		}
	}
	return out
}

// AllDocs returns the set of every document ID, the implicit filter result
// of a query with no filter expression.
func (ix *Index) AllDocs() map[int]bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make(map[int]bool, len(ix.docs))
	for id := range ix.docs {
		out[id] = true
	}
	return out
}
