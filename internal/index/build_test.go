package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"starts/internal/lang"
	"starts/internal/text"
)

// genTestDocs builds a deterministic pseudo-random collection large
// enough to span multiple posting blocks and several build chunks.
func genTestDocs(n int) []*Document {
	rng := rand.New(rand.NewSource(42))
	vocab := []string{
		"database", "query", "distributed", "index", "merge", "rank",
		"source", "text", "search", "protocol", "metadata", "summary",
	}
	docs := make([]*Document, n)
	for i := range docs {
		var body []string
		for w := 0; w < 5+rng.Intn(30); w++ {
			body = append(body, vocab[rng.Intn(len(vocab))])
		}
		d := &Document{
			Linkage: fmt.Sprintf("http://t/%d", i),
			Title:   vocab[rng.Intn(len(vocab))] + " " + vocab[rng.Intn(len(vocab))],
			Authors: []string{"Author " + vocab[rng.Intn(len(vocab))]},
			Body:    strings.Join(body, " "),
		}
		if rng.Intn(10) == 0 {
			d.Languages = []lang.Tag{lang.Spanish}
		}
		docs[i] = d
	}
	return docs
}

// indexesEqual asserts two indexes are structurally identical, down to
// block boundaries and sidecar stats.
func indexesEqual(t *testing.T, a, b *Index) {
	t.Helper()
	if len(a.docs) != len(b.docs) || a.numTagged != b.numTagged {
		t.Fatalf("doc count/tagged mismatch: %d/%d vs %d/%d",
			len(a.docs), a.numTagged, len(b.docs), b.numTagged)
	}
	if !reflect.DeepEqual(a.counts, b.counts) {
		t.Fatal("token counts differ")
	}
	if !reflect.DeepEqual(a.keys, b.keys) {
		t.Fatal("sort keys differ")
	}
	if len(a.fields) != len(b.fields) {
		t.Fatalf("field count differs: %d vs %d", len(a.fields), len(b.fields))
	}
	for f, fa := range a.fields {
		fb := b.fields[f]
		if fb == nil {
			t.Fatalf("field %q missing in second index", f)
		}
		if fa.totalLen != fb.totalLen {
			t.Fatalf("field %q totalLen %d vs %d", f, fa.totalLen, fb.totalLen)
		}
		if len(fa.postings) != len(fb.postings) {
			t.Fatalf("field %q vocab size %d vs %d", f, len(fa.postings), len(fb.postings))
		}
		for term, pa := range fa.postings {
			pb := fb.postings[term]
			if pb == nil {
				t.Fatalf("field %q term %q missing in second index", f, term)
			}
			if pa.n != pb.n || pa.maxFreq != pb.maxFreq || pa.minLen != pb.minLen {
				t.Fatalf("field %q term %q list stats differ: {%d %d %d} vs {%d %d %d}",
					f, term, pa.n, pa.maxFreq, pa.minLen, pb.n, pb.maxFreq, pb.minLen)
			}
			if !reflect.DeepEqual(pa.frontier, pb.frontier) {
				t.Fatalf("field %q term %q list frontier differs: %v vs %v",
					f, term, pa.frontier, pb.frontier)
			}
			if len(pa.blocks) != len(pb.blocks) {
				t.Fatalf("field %q term %q block count %d vs %d", f, term, len(pa.blocks), len(pb.blocks))
			}
			for bi := range pa.blocks {
				ba, bb := pa.blocks[bi], pb.blocks[bi]
				if ba.minDoc != bb.minDoc || ba.maxDoc != bb.maxDoc ||
					ba.maxFreq != bb.maxFreq || ba.minLen != bb.minLen {
					t.Fatalf("field %q term %q block %d stats differ", f, term, bi)
				}
				if !reflect.DeepEqual(ba.frontier, bb.frontier) {
					t.Fatalf("field %q term %q block %d frontier differs: %v vs %v",
						f, term, bi, ba.frontier, bb.frontier)
				}
				if !reflect.DeepEqual(ba.docs, bb.docs) {
					t.Fatalf("field %q term %q block %d postings differ", f, term, bi)
				}
			}
		}
	}
}

// TestBuildMatchesSequentialAdd asserts the tentpole determinism claim:
// parallel chunked construction produces an index byte-for-byte
// equivalent to sequential Add calls — same ids, same posting blocks,
// same sidecar stats — for any worker count.
func TestBuildMatchesSequentialAdd(t *testing.T) {
	docs := genTestDocs(500)
	seq := New(text.NewAnalyzer())
	for i, d := range docs {
		id, err := seq.Add(d)
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Fatalf("sequential id %d for doc %d", id, i)
		}
	}
	for _, workers := range []int{1, 2, 3, 8, 0} {
		par, err := Build(text.NewAnalyzer(), docs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		indexesEqual(t, seq, par)
	}
}

func TestBuildRejectsDuplicateLinkage(t *testing.T) {
	docs := genTestDocs(10)
	docs[7].Linkage = docs[2].Linkage
	if _, err := Build(text.NewAnalyzer(), docs, 4); err == nil {
		t.Fatal("duplicate linkage accepted")
	}
}

func TestBuildEmptyAndTiny(t *testing.T) {
	ix, err := Build(text.NewAnalyzer(), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumDocs() != 0 {
		t.Fatalf("empty build has %d docs", ix.NumDocs())
	}
	one, err := Build(text.NewAnalyzer(), genTestDocs(1), 8)
	if err != nil {
		t.Fatal(err)
	}
	if one.NumDocs() != 1 {
		t.Fatalf("tiny build has %d docs", one.NumDocs())
	}
}
