package index

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"starts/internal/attr"
	"starts/internal/text"
)

// Posting records one document's occurrences of one term in one field.
type Posting struct {
	DocID     int
	Positions []int // word positions, ascending
}

// Freq returns the term frequency (number of occurrences).
func (p Posting) Freq() int { return len(p.Positions) }

// fieldIndex holds the postings and auxiliary vocabularies of one field.
type fieldIndex struct {
	postings map[string]*postingList
	// stems maps Porter stems to the vocabulary terms sharing them,
	// honoring the stem modifier on engines that do not stem their index.
	stems map[string][]string
	// sounds maps soundex codes to vocabulary terms, for the phonetic
	// modifier.
	sounds map[string][]string
	// folds maps lower-cased spellings to vocabulary terms, so that
	// case-sensitive indexes can still serve default (case-insensitive)
	// matches.
	folds map[string][]string
	// vocab is the sorted vocabulary, built lazily for truncation scans.
	// vocabMu guards the lazy build, which happens under the index's read
	// lock (concurrent readers may race to build it).
	vocabMu  sync.Mutex
	vocab    []string
	vocabOK  bool
	totalLen int // total token count across docs (for averages)
}

func newFieldIndex() *fieldIndex {
	return &fieldIndex{
		postings: map[string]*postingList{},
		stems:    map[string][]string{},
		sounds:   map[string][]string{},
		folds:    map[string][]string{},
	}
}

// Index is an in-memory inverted index over a document collection, built
// under one analyzer configuration (tokenizer, case policy, stemming).
// Stop words are always indexed so that queries may turn stop-word
// elimination off when the engine allows it; elimination is applied at
// query time.
type Index struct {
	mu       sync.RWMutex
	analyzer *text.Analyzer
	docs     []*Document
	byURL    map[string]int
	fields   map[attr.Field]*fieldIndex
	counts   []int // per-doc token counts under this tokenizer
	// keys are the pre-normalized per-doc sort keys, computed once at
	// index time so result sorting never re-formats dates or re-folds
	// field text inside a comparator.
	keys []docSortKeys
	// numTagged counts documents carrying explicit language tags; when
	// zero, language filtering is a no-op the ranked fast path skips.
	numTagged int
}

// docSortKeys are the pre-normalized sort keys of one document: the date
// already formatted and the common sortable text fields already folded.
type docSortKeys struct {
	date   string
	title  string
	author string
}

// New returns an empty index using the given analyzer. The analyzer's
// stop list is NOT applied at indexing time (see Index); its tokenizer,
// case policy and stemming are.
func New(a *text.Analyzer) *Index {
	return &Index{
		analyzer: a,
		byURL:    map[string]int{},
		fields:   map[attr.Field]*fieldIndex{},
	}
}

// Analyzer returns the index's analyzer.
func (ix *Index) Analyzer() *text.Analyzer { return ix.analyzer }

// Add indexes a document and returns its document ID. Adding a document
// with the linkage of an existing document replaces nothing and fails:
// documents are immutable once indexed.
func (ix *Index) Add(d *Document) (int, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, dup := ix.byURL[d.Linkage]; dup {
		return 0, fmt.Errorf("index: document %q already indexed", d.Linkage)
	}
	id := len(ix.docs)
	ix.docs = append(ix.docs, d)
	ix.byURL[d.Linkage] = id
	// Analyze every field before inserting postings so the document's
	// total token count — the length-normalization bound of the sidecar
	// block stats — is known when each posting lands in its block.
	toksByField, total := analyzeDoc(ix.analyzer, d)
	for i, f := range TextFields {
		if len(toksByField[i]) == 0 {
			continue
		}
		fi := ix.fields[f]
		if fi == nil {
			fi = newFieldIndex()
			ix.fields[f] = fi
		}
		fi.addDoc(id, toksByField[i], total)
	}
	ix.counts = append(ix.counts, total)
	ix.keys = append(ix.keys, sortKeysOf(d))
	if len(d.Languages) > 0 {
		ix.numTagged++
	}
	return id, nil
}

// analyzeDoc tokenizes every indexed field of one document, returning
// per-field tokens (aligned with TextFields) and the total raw token
// count. It touches only the analyzer, so parallel index construction
// can run it outside the index lock.
func analyzeDoc(a *text.Analyzer, d *Document) ([][]text.Token, int) {
	toks := make([][]text.Token, len(TextFields))
	total := 0
	for i, f := range TextFields {
		ft := d.FieldText(f)
		toks[i] = a.AnalyzeAll(ft)
		total += a.CountTokens(ft)
	}
	return toks, total
}

// sortKeysOf pre-normalizes the document's sort keys: date formatted
// once, common text fields folded once.
func sortKeysOf(d *Document) docSortKeys {
	k := docSortKeys{
		title:  strings.ToLower(d.Title),
		author: strings.ToLower(strings.Join(d.Authors, ", ")),
	}
	if !d.Date.IsZero() {
		k.date = d.Date.UTC().Format("2006-01-02")
	}
	return k
}

// SortKeyValue returns the document's pre-normalized sort key for a
// field: the value fieldSortValue-style comparators need, computed once
// at index time for the common sortable fields. An id outside the
// collection returns "" — sorting must never dereference a missing
// document.
func (ix *Index) SortKeyValue(id int, f attr.Field) string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if id < 0 || id >= len(ix.docs) {
		return ""
	}
	switch attr.Normalize(f) {
	case attr.FieldDateLastModified:
		return ix.keys[id].date
	case attr.FieldTitle:
		return ix.keys[id].title
	case attr.FieldAuthor:
		return ix.keys[id].author
	default:
		return strings.ToLower(ix.docs[id].FieldText(f))
	}
}

func (fi *fieldIndex) addDoc(id int, toks []text.Token, docLen int) {
	byTerm := map[string][]int{}
	for _, t := range toks {
		byTerm[t.Text] = append(byTerm[t.Text], t.Pos)
	}
	for term, positions := range byTerm {
		pl := fi.postings[term]
		if pl == nil {
			pl = &postingList{}
			fi.postings[term] = pl
			fi.addVocab(term)
		}
		sort.Ints(positions)
		pl.appendPosting(Posting{DocID: id, Positions: positions}, docLen)
		fi.totalLen += len(positions)
	}
}

// addVocab extends the auxiliary vocabularies for a new index term.
func (fi *fieldIndex) addVocab(term string) {
	st := text.Stem(term)
	fi.stems[st] = append(fi.stems[st], term)
	if sx := text.Soundex(term); sx != "" {
		fi.sounds[sx] = append(fi.sounds[sx], term)
	}
	fold := foldTerm(term)
	fi.folds[fold] = append(fi.folds[fold], term)
	fi.vocabOK = false
}

func foldTerm(s string) string {
	b := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		b = append(b, c)
	}
	return string(b)
}

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// Doc returns the document with the given ID.
func (ix *Index) Doc(id int) (*Document, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if id < 0 || id >= len(ix.docs) {
		return nil, fmt.Errorf("index: no document %d (collection has %d)", id, len(ix.docs))
	}
	return ix.docs[id], nil
}

// ByLinkage returns the document ID for a URL.
func (ix *Index) ByLinkage(url string) (int, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	id, ok := ix.byURL[url]
	return id, ok
}

// TokenCount returns the document's total token count, the DocCount
// statistic of query results.
func (ix *Index) TokenCount(id int) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if id < 0 || id >= len(ix.counts) {
		return 0
	}
	return ix.counts[id]
}

// DocFreq returns the number of documents containing term in field (after
// the index's own normalization).
func (ix *Index) DocFreq(f attr.Field, term string) int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	fi := ix.fields[attr.Normalize(f)]
	if fi == nil {
		return 0
	}
	return fi.postings[ix.analyzer.NormalizeTerm(term)].numDocs()
}

// VocabTerms calls fn for every (field, term) with its posting statistics:
// total postings and document frequency. Content summaries are built from
// this walk. Iteration order is sorted by field then term.
func (ix *Index) VocabTerms(fn func(f attr.Field, term string, postings, docFreq int)) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	fields := make([]attr.Field, 0, len(ix.fields))
	for f := range ix.fields {
		fields = append(fields, f)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i] < fields[j] })
	for _, f := range fields {
		fi := ix.fields[f]
		terms := make([]string, 0, len(fi.postings))
		for t := range fi.postings {
			terms = append(terms, t)
		}
		sort.Strings(terms)
		for _, t := range terms {
			pl := fi.postings[t]
			total := 0
			pl.iterate(func(p Posting) { total += p.Freq() })
			fn(f, t, total, pl.numDocs())
		}
	}
}

// sortedVocab returns the field's vocabulary, sorted, building it lazily.
// Callers hold the index's read lock; the build itself is serialized.
func (fi *fieldIndex) sortedVocab() []string {
	fi.vocabMu.Lock()
	defer fi.vocabMu.Unlock()
	if !fi.vocabOK {
		fi.vocab = fi.vocab[:0]
		for t := range fi.postings {
			fi.vocab = append(fi.vocab, t)
		}
		sort.Strings(fi.vocab)
		fi.vocabOK = true
	}
	return fi.vocab
}
