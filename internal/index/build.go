package index

import (
	"fmt"
	"runtime"
	"sync"

	"starts/internal/attr"
	"starts/internal/text"
)

// chunkResult is one worker's analysis of a contiguous document range:
// everything needed to merge deterministically, nothing shared.
type chunkResult struct {
	postings map[attr.Field]map[string][]Posting
	counts   []int
	keys     []docSortKeys
	tagged   int
}

// Build constructs an index over a document collection with parallel
// chunked analysis and a deterministic merge. Documents receive ids in
// slice order, exactly as sequential Add calls would assign them, and
// the merged posting lists are byte-for-byte equivalent to a sequential
// build: chunks cover contiguous id ranges and are merged in range
// order, so postings stay ascending by doc id. Tokenization — the bulk
// of indexing cost — runs on workers goroutines (default GOMAXPROCS).
func Build(a *text.Analyzer, docs []*Document, workers int) (*Index, error) {
	ix := New(a)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Validate identities up front so workers never see a bad document
	// and duplicate linkage fails exactly like sequential Add.
	for i, d := range docs {
		if err := d.Validate(); err != nil {
			return nil, err
		}
		if _, dup := ix.byURL[d.Linkage]; dup {
			return nil, fmt.Errorf("index: document %q already indexed", d.Linkage)
		}
		ix.byURL[d.Linkage] = i
	}
	ix.docs = append(ix.docs, docs...)

	chunkSize := (len(docs) + workers - 1) / workers
	if chunkSize < 1 {
		chunkSize = 1
	}
	nChunks := (len(docs) + chunkSize - 1) / chunkSize
	results := make([]*chunkResult, nChunks)

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range next {
				lo := ci * chunkSize
				hi := lo + chunkSize
				if hi > len(docs) {
					hi = len(docs)
				}
				results[ci] = analyzeChunk(a, docs, lo, hi)
			}
		}()
	}
	for ci := 0; ci < nChunks; ci++ {
		next <- ci
	}
	close(next)
	wg.Wait()

	// Deterministic merge in chunk order: concatenating per-term posting
	// runs from ascending disjoint id ranges preserves posting order, so
	// block boundaries and sidecar stats come out identical to a
	// sequential build.
	for _, cr := range results {
		ix.counts = append(ix.counts, cr.counts...)
		ix.keys = append(ix.keys, cr.keys...)
		ix.numTagged += cr.tagged
	}
	for _, cr := range results {
		for f, terms := range cr.postings {
			fi := ix.fields[f]
			if fi == nil {
				fi = newFieldIndex()
				ix.fields[f] = fi
			}
			for term, ps := range terms {
				pl := fi.postings[term]
				if pl == nil {
					pl = &postingList{}
					fi.postings[term] = pl
					fi.addVocab(term)
				}
				for _, p := range ps {
					pl.appendPosting(p, ix.counts[p.DocID])
					fi.totalLen += len(p.Positions)
				}
			}
		}
	}
	return ix, nil
}

// analyzeChunk tokenizes docs[lo:hi] into private posting runs.
func analyzeChunk(a *text.Analyzer, docs []*Document, lo, hi int) *chunkResult {
	cr := &chunkResult{postings: map[attr.Field]map[string][]Posting{}}
	for id := lo; id < hi; id++ {
		d := docs[id]
		toksByField, total := analyzeDoc(a, d)
		for i, f := range TextFields {
			toks := toksByField[i]
			if len(toks) == 0 {
				continue
			}
			terms := cr.postings[f]
			if terms == nil {
				terms = map[string][]Posting{}
				cr.postings[f] = terms
			}
			for term, positions := range groupPositions(toks) {
				terms[term] = append(terms[term], Posting{DocID: id, Positions: positions})
			}
		}
		cr.counts = append(cr.counts, total)
		cr.keys = append(cr.keys, sortKeysOf(d))
		if len(d.Languages) > 0 {
			cr.tagged++
		}
	}
	return cr
}

// groupPositions buckets a token stream by term with sorted positions,
// the per-document half of posting construction.
func groupPositions(toks []text.Token) map[string][]int {
	byTerm := map[string][]int{}
	for _, t := range toks {
		byTerm[t.Text] = append(byTerm[t.Text], t.Pos)
	}
	for _, positions := range byTerm {
		sortInts(positions)
	}
	return byTerm
}

func sortInts(a []int) {
	// Token positions arrive already ascending from the tokenizer, so
	// this is usually a no-op scan; fall back to insertion sort on the
	// rare out-of-order stream.
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			v, j := a[i], i-1
			for j >= 0 && a[j] > v {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = v
		}
	}
}
