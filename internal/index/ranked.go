package index

import (
	"math"

	"starts/internal/attr"
	"starts/internal/lang"
	"starts/internal/query"
	"starts/internal/topk"
)

// RankTerm is one scoring term of a rank plan: an atomic query term and
// the weight its contribution is multiplied by.
type RankTerm struct {
	Term   query.Term
	Weight float64
}

// RankPlan describes a flat ranked query — a weighted sum of per-term
// weights divided by Norm — for block-pruned top-k evaluation. The
// engine builds one from a TermExpr or a list(...) ranking expression.
type RankPlan struct {
	Terms []RankTerm
	// K bounds the result: the K best documents by Sum (ties broken by
	// ascending doc id, matching the engine's stable sort).
	K int
	// Norm divides the weighted sum (the list average's Σweights); the
	// caller applies it, so ordering happens on the undivided sum and
	// no float rounding can disagree with the exhaustive path.
	Norm float64
	// TermWeight scores one term in one document. TopKRanked requires
	// it to be monotone: non-decreasing in tf, non-increasing in docLen
	// (df and n are fixed per query) — the property that makes the
	// sidecar block stats (max tf, min length) sound upper bounds.
	TermWeight func(tf, df, n, docLen int) float64
}

// RankedDoc is one block-pruned top-k result.
type RankedDoc struct {
	ID int
	// Sum is the undivided weighted score sum; divide by the plan's
	// Norm for the raw score.
	Sum float64
	// TFs are the per-plan-term match frequencies (language-filtered,
	// merged across fields and modifier expansions), for term stats.
	TFs []int
}

// rankLists is one plan term resolved to its posting lists.
type rankLists struct {
	lists []*postingList
	df    int
	// tag is the term's language constraint; zero means unconstrained.
	tag      lang.Tag
	needLang bool
}

// termCursor walks one plan term's posting lists document-at-a-time,
// tracking the block-level and global score upper bounds pruning needs.
type termCursor struct {
	idx      int // plan term index
	curs     []*listCursor
	df       int
	ub       float64 // weight × max possible term weight, list-global
	w        float64
	tag      lang.Tag
	needLang bool
	cur      int // current doc id; maxDocID when exhausted
}

func (tc *termCursor) align() {
	tc.cur = maxDocID
	for _, c := range tc.curs {
		if d := c.doc(); d < tc.cur {
			tc.cur = d
		}
	}
}

// seek advances to the first doc id >= target.
func (tc *termCursor) seek(target int) {
	for _, c := range tc.curs {
		c.seek(target)
	}
	tc.align()
}

// advance moves past the current doc.
func (tc *termCursor) advance() {
	d := tc.cur
	for _, c := range tc.curs {
		if c.doc() == d {
			c.next()
		}
	}
	tc.align()
}

// freqAt returns the merged term frequency at the current doc.
func (tc *termCursor) freqAt() int {
	tf := 0
	for _, c := range tc.curs {
		if c.doc() == tc.cur {
			tf += c.posting().Freq()
		}
	}
	return tf
}

// blockSkipTarget returns the id up to which blockBound stays valid:
// one past the earliest end of the blocks the aligned lists sit in,
// capped by the first doc of any list positioned beyond cur (whose
// postings blockBound did not count).
func (tc *termCursor) blockSkipTarget() int {
	t := maxDocID
	for _, c := range tc.curs {
		if c.doc() == tc.cur {
			if end := c.curBlock().maxDoc + 1; end < t {
				t = end
			}
		} else if d := c.doc(); d < t {
			t = d
		}
	}
	return t
}

// frontierBound returns the weighted max term weight over a Pareto
// frontier: every posting it covers is dominated by some entry, and the
// weighting is monotone, so the max over entries bounds the max over
// postings — without ever pairing one document's frequency with a
// different document's length.
func frontierBound(fr []tfLen, plan *RankPlan, w float64, df, n int) float64 {
	best := 0.0
	for _, e := range fr {
		if v := w * plan.TermWeight(e.freq, df, n, e.len); v > best {
			best = v
		}
	}
	return best
}

// blockEnd returns one past the last doc id covered by the cursor's
// current blocks: up to it, every posting of this term lies in a block
// whose bound rangeBound reports.
func (tc *termCursor) blockEnd() int {
	t := maxDocID
	for _, c := range tc.curs {
		if c.done() {
			continue
		}
		if e := c.curBlock().maxDoc + 1; e < t {
			t = e
		}
	}
	return t
}

// rangeBound bounds this term's contribution to any document covered by
// the cursor's current blocks, whether or not the cursor is aligned on
// it — the non-aligned-cursor half of the wide-skip bound.
func (tc *termCursor) rangeBound(plan *RankPlan, n int) float64 {
	if len(tc.curs) == 1 {
		c := tc.curs[0]
		if c.done() {
			return 0
		}
		if c.bi != c.boundBi {
			c.boundBi = c.bi
			c.bound = frontierBound(c.curBlock().frontier, plan, tc.w, tc.df, n)
		}
		return c.bound
	}
	maxF, minL := 0, 0
	for _, c := range tc.curs {
		if c.done() {
			continue
		}
		b := c.curBlock()
		maxF += b.maxFreq
		if b.minLen > 0 && (minL == 0 || b.minLen < minL) {
			minL = b.minLen
		}
	}
	if maxF == 0 {
		return 0
	}
	return tc.w * plan.TermWeight(maxF, tc.df, n, minL)
}

// wideBound bounds the score of any document in [pivotDoc, wide) in the
// cursors' current configuration. An aligned cursor whose blocks cover
// the whole range contributes its block bound; an aligned cursor whose
// blocks end early contributes its list-global ub (valid anywhere); a
// cursor positioned past the pivot contributes nothing if it starts at
// or beyond wide, else the bound of the blocks it currently sits in —
// wide is always capped so those blocks cover the range. Each case
// dominates every posting the cursor can contribute inside the range,
// so the sum is sound for any monotone TermWeight.
func wideBound(cursors []*termCursor, nAligned, wide int, plan *RankPlan, n int) float64 {
	bound := 0.0
	for i, tc := range cursors {
		switch {
		case i < nAligned:
			if tc.blockSkipTarget() >= wide {
				bound += tc.blockBound(plan, n)
			} else {
				bound += tc.ub
			}
		case tc.cur < wide:
			bound += tc.rangeBound(plan, n)
		}
	}
	return bound
}

// blockBound returns the block-max upper bound on this term's weighted
// contribution at the current doc: the sidecar stats of exactly the
// blocks the cursors sit in. The single-list case — the common one —
// uses the block's tight Pareto frontier, memoized per block on the
// cursor; merged multi-list terms fall back to the summed
// (maxFreq, minLen) combination, which stays sound when frequencies
// add across expansion lists.
func (tc *termCursor) blockBound(plan *RankPlan, n int) float64 {
	if len(tc.curs) == 1 {
		c := tc.curs[0]
		if c.doc() != tc.cur {
			return 0
		}
		if c.bi != c.boundBi {
			c.boundBi = c.bi
			c.bound = frontierBound(c.curBlock().frontier, plan, tc.w, tc.df, n)
		}
		return c.bound
	}
	maxF, minL := 0, 0
	for _, c := range tc.curs {
		if c.doc() != tc.cur {
			continue
		}
		b := c.curBlock()
		maxF += b.maxFreq
		if b.minLen > 0 && (minL == 0 || b.minLen < minL) {
			minL = b.minLen
		}
	}
	if maxF == 0 {
		return 0
	}
	return tc.w * plan.TermWeight(maxF, tc.df, n, minL)
}

// Threshold seeding caps: only a term whose posting list is small
// enough that ranking its blocks by bound costs nothing next to
// traversal may seed the threshold, and only its few best blocks are
// scored.
const (
	seedBlockCap  = 256
	seedTopBlocks = 2
)

// seedTheta warm-starts the top-k threshold before traversal: it ranks
// the sparsest seedable term's blocks by their frontier bound, exactly
// scores every document in the best seedTopBlocks of them — the blocks
// where that term's top contributions live — and returns the largest
// float strictly below the k-th best sum found (zero when fewer than k
// documents score positively). WAND's pruning power is the gap between
// the threshold and the block bounds, and a doc-id-ordered traversal
// closes that gap only after scanning a long prefix of every list,
// because the top documents are spread uniformly through the id space;
// a few hundred up-front evaluations start the threshold near its
// final value instead, so the skip logic fires from the first pivot.
//
// Returning a floor — rather than inserting the seeds into the result
// heap — keeps the traversal's exactness argument intact: the heap
// still fills in ascending id order, so strict comparisons still
// resolve score ties to the smaller id. The floor itself is exact: the
// seed sums accumulate in plan-term order (bit-identical to what the
// evaluator later computes for the same documents), so at least k
// documents are known to reach the k-th seed sum, and anything
// strictly below it can never be in the top k. Nextafter makes
// "strictly below the k-th sum" expressible through the existing
// strict-greater gates without evaluating ties away.
//
// Only multi-term plans seed. A single-term query's threshold depends
// on nothing but the term itself, and every document its traversal
// touches is a candidate, so the threshold warms as fast as it
// possibly can — seeding there is pure overhead. Multi-term thresholds
// hinge on co-occurrence, which a doc-ordered walk discovers late.
func (ix *Index) seedTheta(resolved []rankLists, plan *RankPlan, n int) float64 {
	seed, scoring := -1, 0
	for ti := range resolved {
		rl := &resolved[ti]
		if plan.Terms[ti].Weight <= 0 || rl.df == 0 {
			continue
		}
		scoring++
		if len(rl.lists) != 1 {
			continue
		}
		if nb := len(rl.lists[0].blocks); nb <= seedBlockCap &&
			(seed == -1 || nb < len(resolved[seed].lists[0].blocks)) {
			seed = ti
		}
	}
	if seed == -1 || scoring < 2 {
		return 0
	}
	rl := &resolved[seed]
	pl := rl.lists[0]
	w := plan.Terms[seed].Weight
	// The seedTopBlocks highest-bound blocks.
	b0, b1 := -1, -1
	var v0, v1 float64
	for bi := range pl.blocks {
		switch v := frontierBound(pl.blocks[bi].frontier, plan, w, rl.df, n); {
		case b0 == -1 || v > v0:
			b0, v0, b1, v1 = bi, v, b0, v0
		case b1 == -1 || v > v1:
			b1, v1 = bi, v
		}
	}
	scratch := topk.New(plan.K, rankedBefore)
	for _, bi := range [seedTopBlocks]int{b0, b1} {
		if bi == -1 {
			continue
		}
		for _, p := range pl.blocks[bi].docs {
			id := p.DocID
			docLen := ix.counts[id]
			sum := 0.0
			for tj := range resolved {
				var tf int
				if tj == seed {
					// The seeding term's frequency is in hand; apply the
					// same language filter probing it would.
					if !rl.needLang || ix.docs[id].InLanguage(rl.tag) {
						tf = p.Freq()
					}
				} else {
					tf = resolved[tj].probe(ix, id)
				}
				if tf > 0 {
					sum += plan.Terms[tj].Weight * plan.TermWeight(tf, resolved[tj].df, n, docLen)
				}
			}
			if sum > 0 {
				scratch.Push(RankedDoc{ID: id, Sum: sum})
			}
		}
	}
	if !scratch.Full() {
		return 0
	}
	return math.Nextafter(scratch.Worst().Sum, math.Inf(-1))
}

// TopKRanked evaluates a flat ranked query with block-max WAND: a
// document-at-a-time traversal over per-term cursors that uses the
// sidecar block index (per-block max term frequency and min document
// length) plus a top-k score threshold to skip postings — and whole
// blocks — that cannot reach the current top k. Results are exactly the
// K best documents by Sum (ties to the smaller doc id) among documents
// with Sum > 0, identical to exhaustively scoring every document.
//
// The second return value reports per-plan-term document frequencies.
// ok is false when the plan is not cursor-evaluable (a phrase term, a
// non-text field, a free-form-text term): callers fall back to the
// exhaustive path.
func (ix *Index) TopKRanked(plan RankPlan, opts LookupOptions) (docs []RankedDoc, dfs []int, ok bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if plan.K <= 0 || plan.TermWeight == nil {
		return nil, nil, false
	}
	n := len(ix.docs)
	resolved := make([]rankLists, len(plan.Terms))
	for i, rt := range plan.Terms {
		rl, termOK := ix.resolveRankTerm(rt.Term, opts)
		if !termOK {
			return nil, nil, false
		}
		resolved[i] = rl
	}
	dfs = make([]int, len(resolved))
	for i := range resolved {
		dfs[i] = resolved[i].df
	}

	// Build cursors for terms that have postings at all.
	cursors := make([]*termCursor, 0, len(resolved))
	for i, rl := range resolved {
		if len(rl.lists) == 0 {
			continue
		}
		tc := &termCursor{
			idx: i, df: rl.df, w: plan.Terms[i].Weight,
			tag: rl.tag, needLang: rl.needLang,
		}
		maxF, minL := 0, 0
		for _, pl := range rl.lists {
			tc.curs = append(tc.curs, newListCursor(pl))
			maxF += pl.maxFreq
			if pl.minLen > 0 && (minL == 0 || pl.minLen < minL) {
				minL = pl.minLen
			}
		}
		if tc.df > 0 {
			if len(rl.lists) == 1 {
				// Tight list-global bound from the list's Pareto frontier.
				tc.ub = frontierBound(rl.lists[0].frontier, &plan, tc.w, tc.df, n)
			} else if maxF > 0 {
				tc.ub = tc.w * plan.TermWeight(maxF, tc.df, n, minL)
			}
		}
		tc.align()
		cursors = append(cursors, tc)
	}

	// rankedBefore orders candidates exactly as the engine's default sort
	// does: score descending, doc id ascending. Documents are offered in
	// ascending id order, so requiring a strict improvement over the
	// heap's worst keeps selection exact — an equal-score later doc could
	// never displace the kept one anyway. The seeded floor stands in for
	// the heap's worst until the heap fills; it sits one float below a
	// real k-th best sum, so the strict gates still admit exact ties.
	h := topk.New(plan.K, rankedBefore)
	thetaFloor := ix.seedTheta(resolved, &plan, n)
	var atPivot []*termCursor
	sortCursors(cursors)
	for len(cursors) > 0 {
		// Drop exhausted cursors (sorted last).
		for len(cursors) > 0 && cursors[len(cursors)-1].cur == maxDocID {
			cursors = cursors[:len(cursors)-1]
		}
		if len(cursors) == 0 {
			break
		}
		theta := thetaFloor
		if h.Full() {
			// Once full, the worst kept sum is at least one float above
			// the floor (every push had to clear it strictly).
			theta = h.Worst().Sum
		}
		// WAND pivot: the first cursor position where the cumulative
		// upper bound could strictly beat the current top-k threshold.
		// Equal scores lose to the smaller (already seen) doc id, so a
		// strict comparison is exact, not an approximation.
		pivot, acc := -1, 0.0
		for i, tc := range cursors {
			acc += tc.ub
			if acc > theta {
				pivot = i
				break
			}
		}
		if pivot == -1 {
			break // no remaining document can enter the top k
		}
		pivotDoc := cursors[pivot].cur
		if pivotDoc == maxDocID {
			break
		}
		if cursors[0].cur == pivotDoc {
			// All lead cursors aligned on the pivot: check the sidecar
			// block bound before paying for a full evaluation.
			blockBound := 0.0
			atPivot = atPivot[:0]
			for _, tc := range cursors {
				if tc.cur != pivotDoc {
					break
				}
				atPivot = append(atPivot, tc)
				blockBound += tc.blockBound(&plan, n)
			}
			if blockBound > theta {
				// Accumulate in plan-term order — the float addition order
				// of the exhaustive evaluator — so both paths produce
				// bit-identical scores (zero contributions add exactly 0).
				sortByPlanIdx(atPivot)
				sum := 0.0
				docLen := ix.counts[pivotDoc]
				for _, tc := range atPivot {
					tf := tc.matchFreq(ix, pivotDoc)
					if tf > 0 {
						sum += tc.w * plan.TermWeight(tf, tc.df, n, docLen)
					}
				}
				if sum > theta {
					h.Push(RankedDoc{ID: pivotDoc, Sum: sum})
				}
				for _, tc := range atPivot {
					tc.advance()
				}
			} else {
				// The aligned blocks cannot beat the threshold. Jump as far
				// as a sound bound allows. The wide skip targets the
				// sparsest aligned cursor's block end — the big jump when a
				// rare term's block spans thousands of doc ids — and
				// re-bounds every cursor over that whole range: an aligned
				// cursor whose block ends early contributes its list-global
				// ub, a non-aligned cursor its current block's bound (its
				// postings in the range all lie in that block). If even that
				// cannot beat the threshold, no doc in the range can, and
				// the dense cursors leap whole regions in one binary seek.
				target := maxDocID
				wide := 0
				for _, tc := range atPivot {
					if s := tc.blockSkipTarget(); s > wide {
						wide = s
					}
				}
				for _, tc := range cursors[len(atPivot):] {
					if tc.cur < wide {
						if e := tc.blockEnd(); e < wide {
							wide = e
						}
					}
				}
				if wide > pivotDoc+1 && wideBound(cursors, len(atPivot), wide, &plan, n) <= theta {
					target = wide
				} else {
					// Narrow skip: the earliest aligned block end, capped by
					// the first non-aligned cursor; every doc before it
					// matches only a subset of the aligned terms within the
					// same blocks (bounds are non-negative, so a subset sums
					// no higher).
					target = maxDocID
					for _, tc := range atPivot {
						if s := tc.blockSkipTarget(); s < target {
							target = s
						}
					}
					if len(atPivot) < len(cursors) {
						if d := cursors[len(atPivot)].cur; d < target {
							target = d
						}
					}
				}
				if target <= pivotDoc {
					target = pivotDoc + 1
				}
				for _, tc := range cursors {
					if tc.cur < target {
						tc.seek(target)
					}
				}
			}
		} else {
			// Advance the smallest cursor up to the pivot; seek skips
			// whole blocks via the sidecar doc-id bounds.
			cursors[0].seek(pivotDoc)
		}
		sortCursors(cursors)
	}

	out := h.Sorted()
	for oi := range out {
		out[oi].TFs = make([]int, len(resolved))
		for ti := range resolved {
			out[oi].TFs[ti] = resolved[ti].probe(ix, out[oi].ID)
		}
	}
	return out, dfs, true
}

// matchFreq returns the term frequency at doc id, honoring the term's
// language constraint the way map lookups do.
func (tc *termCursor) matchFreq(ix *Index, id int) int {
	if tc.needLang && !ix.docs[id].InLanguage(tc.tag) {
		return 0
	}
	return tc.freqAt()
}

// probe returns the term frequency of one document by binary-searching
// the resolved posting lists — the per-result stats path.
func (rl *rankLists) probe(ix *Index, id int) int {
	if rl.needLang && !ix.docs[id].InLanguage(rl.tag) {
		return 0
	}
	tf := 0
	for _, pl := range rl.lists {
		if p, found := pl.find(id); found {
			tf += p.Freq()
		}
	}
	return tf
}

// resolveRankTerm maps one atomic term to its posting lists: the single
// word's modifier expansions across the term's fields. ok is false for
// terms the cursor path cannot evaluate (phrases, non-text fields).
func (ix *Index) resolveRankTerm(t query.Term, opts LookupOptions) (rankLists, bool) {
	var rl rankLists
	var fields []attr.Field
	switch f := t.EffectiveField(); f {
	case attr.FieldAny:
		fields = TextFields
	case attr.FieldTitle, attr.FieldAuthor, attr.FieldBodyOfText:
		fields = []attr.Field{f}
	default:
		return rl, false
	}
	words := wordsOf(ix.analyzer, t.Value.Text)
	if opts.DropStopWords {
		kept := words[:0]
		for _, w := range words {
			if !opts.Stop.Contains(w) {
				kept = append(kept, w)
			}
		}
		words = kept
	}
	if len(words) == 0 {
		// Nothing to match: the term contributes zero weight everywhere
		// (but still counts toward the plan's Norm).
		return rl, true
	}
	if len(words) > 1 {
		return rl, false // phrases need positional evaluation
	}
	tag := t.Value.Resolve(opts.DefaultLang)
	rl.tag = tag
	rl.needLang = ix.numTagged > 0 && !tag.IsZero()
	for _, f := range fields {
		fi := ix.fields[f]
		if fi == nil {
			continue
		}
		for _, vt := range fi.expandWord(ix.analyzer, words[0], t, opts) {
			if pl := fi.postings[vt]; pl != nil && pl.n > 0 {
				rl.lists = append(rl.lists, pl)
			}
		}
	}
	rl.df = ix.unionCount(rl)
	return rl, true
}

// unionCount returns the number of distinct documents across the
// resolved lists that pass the language constraint — the document
// frequency the exhaustive map path reports.
func (ix *Index) unionCount(rl rankLists) int {
	if len(rl.lists) == 0 {
		return 0
	}
	if len(rl.lists) == 1 && !rl.needLang {
		return rl.lists[0].n
	}
	curs := make([]*listCursor, len(rl.lists))
	for i, pl := range rl.lists {
		curs[i] = newListCursor(pl)
	}
	df := 0
	for {
		m := maxDocID
		for _, c := range curs {
			if d := c.doc(); d < m {
				m = d
			}
		}
		if m == maxDocID {
			return df
		}
		if !rl.needLang || ix.docs[m].InLanguage(rl.tag) {
			df++
		}
		for _, c := range curs {
			if c.doc() == m {
				c.next()
			}
		}
	}
}

// rankedBefore is the result order of the ranked fast path: higher sum
// first, ties to the smaller doc id — the engine's default score sort
// with its stable id tiebreak.
func rankedBefore(a, b RankedDoc) bool {
	if a.Sum != b.Sum {
		return a.Sum > b.Sum
	}
	return a.ID < b.ID
}

// sortCursors orders cursors by current doc id ascending (exhausted
// last); cursor counts are tiny, so insertion sort keeps it alloc-free.
func sortCursors(cs []*termCursor) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].cur < cs[j-1].cur; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}

// sortByPlanIdx orders the cursors at a pivot by plan-term index, the
// accumulation order score equivalence requires.
func sortByPlanIdx(cs []*termCursor) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].idx < cs[j-1].idx; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
