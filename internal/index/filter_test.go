package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"starts/internal/query"
	"starts/internal/text"
)

func evalf(t *testing.T, ix *Index, src string) map[int]bool {
	t.Helper()
	e, err := query.ParseFilter(src)
	if err != nil {
		t.Fatalf("ParseFilter(%q): %v", src, err)
	}
	set, err := ix.EvalFilter(e, defaultOpts())
	if err != nil {
		t.Fatalf("EvalFilter(%q): %v", src, err)
	}
	return set
}

// TestPaperExample1Filter evaluates the paper's Example 1 filter: authors
// containing Ullman AND title containing databases.
func TestPaperExample1Filter(t *testing.T) {
	ix := testIndex(t)
	set := evalf(t, ix, `((author "Ullman") and (title "databases"))`)
	if len(set) != 2 || !set[0] || !set[1] {
		t.Errorf("filter matches %v", set)
	}
}

func TestBooleanOperators(t *testing.T) {
	ix := testIndex(t)
	and := evalf(t, ix, `((body-of-text "distributed") and (body-of-text "deductive"))`)
	if len(and) != 1 || !and[0] {
		t.Errorf("and = %v", and)
	}
	// "distributed" appears in docs 0 and 1 only (doc 3 is Spanish
	// "distribuidos", a different stem), "deductive" in doc 0.
	or := evalf(t, ix, `((body-of-text "distributed") or (body-of-text "deductive"))`)
	if len(or) != 2 || !or[0] || !or[1] {
		t.Errorf("or = %v", or)
	}
	andnot := evalf(t, ix, `((body-of-text "distributed") and-not (author "Ullman"))`)
	// Distributed appears in docs 0,1,2,3 (doc 3 via stem of
	// "distribuidos"? no — Spanish, different word; doc2 "GlOSS
	// chooses..." has no "distributed" — check: doc2 body has no
	// "distributed". So docs 0,1; minus Ullman docs 0,1 -> empty... but
	// doc3 "distribuidos" stems differently. Recompute: and-not should
	// remove docs 0 and 1.
	for id := range andnot {
		if id == 0 || id == 1 {
			t.Errorf("and-not kept Ullman doc %d", id)
		}
	}
}

func TestProxFilter(t *testing.T) {
	ix := testIndex(t)
	// Doc 1 body: "... delivered distributed databases, parallel ..." —
	// "distributed" immediately precedes "databases".
	set := evalf(t, ix, `((body-of-text "distributed") prox[0,T] (body-of-text "databases"))`)
	if !set[1] {
		t.Errorf("adjacent ordered prox = %v", set)
	}
	// Reversed order with T fails for doc 1 pairs that only occur one way.
	rev := evalf(t, ix, `((body-of-text "databases") prox[0,T] (body-of-text "distributed"))`)
	if rev[1] {
		// Doc 1: "databases, parallel databases and more. The distributed
		// systems" — "databases" (pos?) ... "distributed" gap > 0, so no.
		t.Errorf("reversed prox unexpectedly matched: %v", rev)
	}
	// Unordered with a wide window matches.
	un := evalf(t, ix, `((body-of-text "databases") prox[5,F] (body-of-text "distributed"))`)
	if !un[1] {
		t.Errorf("unordered prox = %v", un)
	}
	// Different concrete fields can never satisfy prox.
	cross := evalf(t, ix, `((title "database") prox[3,F] (body-of-text "databases"))`)
	if len(cross) != 0 {
		t.Errorf("cross-field prox = %v", cross)
	}
}

func TestProxDistanceSemantics(t *testing.T) {
	// Example 3: t1 prox[3,T] t2 means t1 followed by t2 with at most
	// three words in between.
	a := New(&text.Analyzer{Tokenizer: mustTok(t, "Acme-2")})
	if _, err := a.Add(&Document{Linkage: "u1", Body: "alpha one two three beta"}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Add(&Document{Linkage: "u2", Body: "alpha one two three four beta"}); err != nil {
		t.Fatal(err)
	}
	e, err := query.ParseFilter(`((body-of-text "alpha") prox[3,T] (body-of-text "beta"))`)
	if err != nil {
		t.Fatal(err)
	}
	set, err := a.EvalFilter(e, LookupOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !set[0] || set[1] {
		t.Errorf("prox[3,T]: three-word gap should match, four-word gap should not: %v", set)
	}
}

func TestFilterErrors(t *testing.T) {
	ix := testIndex(t)
	// A list node cannot reach filter evaluation through the parser, but
	// guard against hand-built trees.
	l := &query.List{Items: []query.Expr{&query.TermExpr{}}}
	if _, err := ix.EvalFilter(l, defaultOpts()); err == nil {
		t.Error("list accepted in filter evaluation")
	}
	// Prox over a non-text field fails.
	e, err := query.ParseFilter(`((date-last-modified "1996-01-01") prox[1,T] (date-last-modified "1996-01-02"))`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.EvalFilter(e, defaultOpts()); err == nil {
		t.Error("prox over dates accepted")
	}
}

func TestAllDocs(t *testing.T) {
	ix := testIndex(t)
	if got := ix.AllDocs(); len(got) != 4 {
		t.Errorf("AllDocs = %v", got)
	}
}

// Properties over random expressions: AND ⊆ each operand, operands ⊆ OR,
// AND-NOT disjoint from right operand, PROX ⊆ AND of its terms.
func TestQuickFilterAlgebra(t *testing.T) {
	ix := testIndex(t)
	opts := defaultOpts()
	words := []string{"databases", "distributed", "deductive", "research", "GlOSS", "text", "systems", "Ullman"}
	fields := []string{"", "title ", "body-of-text ", "author ", "any "}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() string {
			return "(" + fields[r.Intn(len(fields))] + `"` + words[r.Intn(len(words))] + `")`
		}
		a, b := mk(), mk()
		parse := func(src string) map[int]bool {
			e, err := query.ParseFilter(src)
			if err != nil {
				t.Fatalf("parse %q: %v", src, err)
			}
			s, err := ix.EvalFilter(e, opts)
			if err != nil {
				t.Fatalf("eval %q: %v", src, err)
			}
			return s
		}
		sa, sb := parse(a), parse(b)
		and := parse("(" + a + " and " + b + ")")
		or := parse("(" + a + " or " + b + ")")
		not := parse("(" + a + " and-not " + b + ")")
		for id := range and {
			if !sa[id] || !sb[id] {
				return false
			}
		}
		for id := range sa {
			if !or[id] {
				return false
			}
		}
		for id := range sb {
			if !or[id] {
				return false
			}
		}
		for id := range not {
			if sb[id] || !sa[id] {
				return false
			}
		}
		prox := parse("(" + a + " prox[4,F] " + b + ")")
		for id := range prox {
			if !and[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
