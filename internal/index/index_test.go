package index

import (
	"fmt"
	"testing"
	"time"

	"starts/internal/attr"
	"starts/internal/lang"
	"starts/internal/query"
	"starts/internal/text"
)

// testIndex builds a small hand-checkable collection under a default
// (folding, stemming) analyzer.
func testIndex(t *testing.T) *Index {
	t.Helper()
	ix := New(text.NewAnalyzer())
	docs := []*Document{
		{
			Linkage: "http://example.edu/dood.ps",
			Title:   "A Comparison Between Deductive and Object-Oriented Database Systems",
			Authors: []string{"Jeffrey D. Ullman"},
			Body:    "Deductive databases and object-oriented databases are compared. Distributed evaluation of deductive databases remains open.",
			Date:    time.Date(1995, 6, 1, 0, 0, 0, 0, time.UTC),
		},
		{
			Linkage: "http://example.edu/lagunita.ps",
			Title:   "Database Research: Achievements and Opportunities",
			Authors: []string{"Avi Silberschatz", "Mike Stonebraker", "Jeff Ullman"},
			Body:    "Database research has delivered distributed databases, parallel databases and more. The distributed systems community contributed heavily.",
			Date:    time.Date(1996, 9, 15, 0, 0, 0, 0, time.UTC),
		},
		{
			Linkage:   "http://example.edu/gloss.ps",
			Title:     "The Effectiveness of GlOSS for the Text Database Discovery Problem",
			Authors:   []string{"Luis Gravano", "Hector Garcia-Molina", "Anthony Tomasic"},
			Body:      "GlOSS chooses promising text databases for a query using compact summaries. The who of source selection matters.",
			Date:      time.Date(1994, 5, 20, 0, 0, 0, 0, time.UTC),
			CrossRefs: []string{"http://example.edu/dood.ps"},
		},
		{
			Linkage:   "http://example.edu/datos.ps",
			Title:     "Búsqueda de datos distribuidos",
			Authors:   []string{"Ana García"},
			Body:      "Los sistemas distribuidos de bases de datos requieren búsqueda eficiente.",
			Date:      time.Date(1996, 1, 10, 0, 0, 0, 0, time.UTC),
			Languages: []lang.Tag{lang.Spanish},
		},
	}
	for _, d := range docs {
		if _, err := ix.Add(d); err != nil {
			t.Fatalf("Add(%s): %v", d.Linkage, err)
		}
	}
	return ix
}

func term(t *testing.T, src string) query.Term {
	t.Helper()
	tm, rest, err := query.ScanTerm(src)
	if err != nil || rest != "" {
		t.Fatalf("ScanTerm(%q): %v rest %q", src, err, rest)
	}
	return tm
}

func ids(m *TermMatch) []int {
	var out []int
	for id := range m.Docs {
		out = append(out, id)
	}
	return out
}

func defaultOpts() LookupOptions {
	return LookupOptions{DropStopWords: true, Stop: text.EnglishStopWords(), DefaultLang: lang.EnglishUS}
}

func TestAddAndBasicLookup(t *testing.T) {
	ix := testIndex(t)
	if ix.NumDocs() != 4 {
		t.Fatalf("NumDocs = %d", ix.NumDocs())
	}
	m, err := ix.Lookup(term(t, `(body-of-text "databases")`), defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Stemming engine: "databases" matches docs 0, 1 via stem; doc 2 says
	// "databases"? body has "databases" twice via "text databases"? doc2
	// body: "text databases for a query" -> yes "databases".
	if len(m.Docs) != 3 {
		t.Errorf("databases matches %v", ids(m))
	}
	if m.Docs[0] == nil || m.Docs[0].Freq != 3 {
		t.Errorf("doc0 freq = %+v, want 3 occurrences", m.Docs[0])
	}
}

func TestAddRejectsDuplicatesAndInvalid(t *testing.T) {
	ix := testIndex(t)
	if _, err := ix.Add(&Document{Linkage: "http://example.edu/dood.ps"}); err == nil {
		t.Error("duplicate linkage accepted")
	}
	if _, err := ix.Add(&Document{Title: "no url"}); err == nil {
		t.Error("document without linkage accepted")
	}
}

func TestDocAccessors(t *testing.T) {
	ix := testIndex(t)
	d, err := ix.Doc(0)
	if err != nil || d.Title == "" {
		t.Fatalf("Doc(0) = %v, %v", d, err)
	}
	if _, err := ix.Doc(99); err == nil {
		t.Error("Doc(99) should fail")
	}
	if _, err := ix.Doc(-1); err == nil {
		t.Error("Doc(-1) should fail")
	}
	if id, ok := ix.ByLinkage("http://example.edu/gloss.ps"); !ok || id != 2 {
		t.Errorf("ByLinkage = %d, %v", id, ok)
	}
	if _, ok := ix.ByLinkage("http://nowhere"); ok {
		t.Error("ByLinkage found nothing")
	}
	if ix.TokenCount(0) == 0 {
		t.Error("TokenCount(0) = 0")
	}
	if ix.TokenCount(99) != 0 {
		t.Error("TokenCount(99) != 0")
	}
}

func TestFieldScoping(t *testing.T) {
	ix := testIndex(t)
	// "Ullman" appears only in author fields.
	m, err := ix.Lookup(term(t, `(author "Ullman")`), defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Docs) != 2 {
		t.Errorf("author Ullman matches %v", ids(m))
	}
	m2, _ := ix.Lookup(term(t, `(title "Ullman")`), defaultOpts())
	if len(m2.Docs) != 0 {
		t.Errorf("title Ullman matches %v", ids(m2))
	}
	// Any-field search unions all text fields.
	m3, _ := ix.Lookup(term(t, `(any "Ullman")`), defaultOpts())
	if len(m3.Docs) != 2 {
		t.Errorf("any Ullman matches %v", ids(m3))
	}
	// Unqualified terms default to any.
	m4, _ := ix.Lookup(term(t, `"GlOSS"`), defaultOpts())
	if len(m4.Docs) != 1 {
		t.Errorf("bare GlOSS matches %v", ids(m4))
	}
}

func TestStemmedEngineMatchesVariants(t *testing.T) {
	ix := testIndex(t)
	// The paper's Example 2: (title stem "databases") matches documents
	// whose title has "database" — on a stemming engine even without the
	// modifier.
	m, _ := ix.Lookup(term(t, `(title "databases")`), defaultOpts())
	// Docs 0 ("... Database Systems"), 1 ("Database Research ...") and 2
	// ("... Text Database Discovery ...") all match via the shared stem.
	if len(m.Docs) != 3 {
		t.Errorf("stemmed title match = %v", ids(m))
	}
}

func TestStemModifierOnUnstemmedEngine(t *testing.T) {
	a := &text.Analyzer{Tokenizer: mustTok(t, "Acme-2"), Stemming: false}
	ix := New(a)
	if _, err := ix.Add(&Document{Linkage: "u1", Title: "Database systems"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Add(&Document{Linkage: "u2", Title: "Databases everywhere"}); err != nil {
		t.Fatal(err)
	}
	opts := defaultOpts()
	// Without the modifier, exact matching only.
	m, _ := ix.Lookup(term(t, `(title "database")`), opts)
	if len(m.Docs) != 1 {
		t.Errorf("exact match = %v", ids(m))
	}
	// With stem, both spellings match.
	m2, _ := ix.Lookup(term(t, `(title stem "database")`), opts)
	if len(m2.Docs) != 2 {
		t.Errorf("stem match = %v", ids(m2))
	}
}

func mustTok(t *testing.T, id string) text.Tokenizer {
	t.Helper()
	tok, ok := text.LookupTokenizer(id)
	if !ok {
		t.Fatalf("tokenizer %s missing", id)
	}
	return tok
}

func TestPhoneticModifier(t *testing.T) {
	ix := testIndex(t)
	m, _ := ix.Lookup(term(t, `(author phonetic "Ulman")`), defaultOpts())
	if len(m.Docs) != 2 {
		t.Errorf("phonetic Ulman matches %v", ids(m))
	}
}

func TestTruncationModifiers(t *testing.T) {
	ix := testIndex(t)
	m, _ := ix.Lookup(term(t, `(body-of-text right-truncation "distribut")`), defaultOpts())
	if len(m.Docs) < 2 {
		t.Errorf("right-truncation matches %v", ids(m))
	}
	m2, _ := ix.Lookup(term(t, `(title left-truncation "search")`), LookupOptions{DefaultLang: lang.Spanish})
	// "búsqueda" does not end in "search"; English titles have no
	// *search. Check a real suffix: "veness" in "effectiveness".
	_ = m2
	// The index is stemmed, so the suffix scan runs over stemmed
	// vocabulary: "Systems" is indexed as "system", matched by "tem".
	m3, _ := ix.Lookup(term(t, `(title left-truncation "tem")`), defaultOpts())
	if len(m3.Docs) != 1 || m3.Docs[0] == nil {
		t.Errorf("left-truncation tem matches %v", ids(m3))
	}
}

func TestCaseSensitiveEngine(t *testing.T) {
	a := &text.Analyzer{Tokenizer: mustTok(t, "Acme-2"), CaseSensitive: true}
	ix := New(a)
	if _, err := ix.Add(&Document{Linkage: "u1", Title: "The Who concert"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Add(&Document{Linkage: "u2", Title: "who is who"}); err != nil {
		t.Fatal(err)
	}
	opts := LookupOptions{DefaultLang: lang.EnglishUS}
	// Default matching is case-insensitive even on a case-sensitive index.
	m, _ := ix.Lookup(term(t, `(title "WHO")`), opts)
	if len(m.Docs) != 2 {
		t.Errorf("default case match = %v", ids(m))
	}
	// The case-sensitive modifier matches exact spelling only.
	m2, _ := ix.Lookup(term(t, `(title case-sensitive "Who")`), opts)
	if len(m2.Docs) != 1 {
		t.Errorf("case-sensitive match = %v", ids(m2))
	}
}

func TestStopWordHandling(t *testing.T) {
	ix := testIndex(t)
	// "the who" with stop words dropped: both words are stop words; the
	// term is eliminated.
	m, err := ix.Lookup(term(t, `(body-of-text "the who")`), defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !m.Eliminated || len(m.Docs) != 0 {
		t.Errorf("stop phrase: eliminated=%v docs=%v", m.Eliminated, ids(m))
	}
	// With stop words kept, the phrase matches doc 2 ("The who of source
	// selection").
	opts := defaultOpts()
	opts.DropStopWords = false
	m2, err := ix.Lookup(term(t, `(body-of-text "the who")`), opts)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Eliminated || len(m2.Docs) != 1 {
		t.Errorf("kept phrase: eliminated=%v docs=%v", m2.Eliminated, ids(m2))
	}
}

func TestPhraseMatch(t *testing.T) {
	ix := testIndex(t)
	m, _ := ix.Lookup(term(t, `(body-of-text "distributed databases")`), defaultOpts())
	if len(m.Docs) != 1 || m.Docs[1] == nil {
		t.Errorf("phrase matches %v", ids(m))
	}
	// Reversed order does not match as a phrase.
	m2, _ := ix.Lookup(term(t, `(body-of-text "databases distributed")`), defaultOpts())
	if len(m2.Docs) != 0 {
		t.Errorf("reversed phrase matches %v", ids(m2))
	}
}

func TestLanguageQualifiedTerm(t *testing.T) {
	ix := testIndex(t)
	// Spanish term matches only the Spanish document.
	m, _ := ix.Lookup(term(t, `(body-of-text [es "datos"])`), LookupOptions{DefaultLang: lang.EnglishUS})
	if len(m.Docs) != 1 || m.Docs[3] == nil {
		t.Errorf("es datos matches %v", ids(m))
	}
	// English-qualified probe of a Spanish-only word misses: doc 3 is
	// marked Spanish, so an en-US term cannot match it.
	m2, _ := ix.Lookup(term(t, `(body-of-text [en-US "datos"])`), LookupOptions{})
	if len(m2.Docs) != 0 {
		t.Errorf("en datos matches %v", ids(m2))
	}
}

func TestDateComparisons(t *testing.T) {
	ix := testIndex(t)
	opts := defaultOpts()
	cases := []struct {
		src  string
		want int
	}{
		{`(date-last-modified > "1996-08-01")`, 1}, // doc 1 only
		{`(date-last-modified >= "1996-01-10")`, 2},
		{`(date-last-modified < "1995-01-01")`, 1}, // doc 2
		{`(date-last-modified <= "1995-06-01")`, 2},
		{`(date-last-modified = "1994-05-20")`, 1},
		{`(date-last-modified != "1994-05-20")`, 3},
	}
	for _, tc := range cases {
		m, err := ix.Lookup(term(t, tc.src), opts)
		if err != nil {
			t.Errorf("%s: %v", tc.src, err)
			continue
		}
		if len(m.Docs) != tc.want {
			t.Errorf("%s matches %d docs (%v), want %d", tc.src, len(m.Docs), ids(m), tc.want)
		}
	}
	if _, err := ix.Lookup(term(t, `(date-last-modified > "not a date")`), opts); err == nil {
		t.Error("bad date accepted")
	}
}

func TestSpecialFields(t *testing.T) {
	ix := testIndex(t)
	opts := defaultOpts()
	m, _ := ix.Lookup(term(t, `(linkage "http://example.edu/gloss.ps")`), opts)
	if len(m.Docs) != 1 || m.Docs[2] == nil {
		t.Errorf("linkage matches %v", ids(m))
	}
	m2, _ := ix.Lookup(term(t, `(cross-reference-linkage "http://example.edu/dood.ps")`), opts)
	if len(m2.Docs) != 1 || m2.Docs[2] == nil {
		t.Errorf("cross-ref matches %v", ids(m2))
	}
	m3, err := ix.Lookup(term(t, `(languages "es")`), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(m3.Docs) != 1 || m3.Docs[3] == nil {
		t.Errorf("languages matches %v", ids(m3))
	}
	if _, err := ix.Lookup(term(t, `(languages "!!")`), opts); err == nil {
		t.Error("bad language tag accepted")
	}
	// Unknown fields match nothing rather than failing.
	m4, err := ix.Lookup(term(t, `(free-form-text "native(query)")`), opts)
	if err != nil || len(m4.Docs) != 0 {
		t.Errorf("unknown field: %v, %v", ids(m4), err)
	}
}

func TestDocFreqAndVocab(t *testing.T) {
	ix := testIndex(t)
	if df := ix.DocFreq(attr.FieldBodyOfText, "databases"); df != 3 {
		t.Errorf("DocFreq(databases) = %d", df)
	}
	if df := ix.DocFreq(attr.FieldBodyOfText, "zebra"); df != 0 {
		t.Errorf("DocFreq(zebra) = %d", df)
	}
	seen := 0
	ix.VocabTerms(func(f attr.Field, term string, postings, docFreq int) {
		seen++
		if postings < docFreq || docFreq < 1 {
			t.Errorf("%s/%s: postings %d < docfreq %d", f, term, postings, docFreq)
		}
	})
	if seen == 0 {
		t.Error("VocabTerms visited nothing")
	}
}

func TestThesaurusModifier(t *testing.T) {
	ix := testIndex(t)
	opts := defaultOpts()
	opts.Thesaurus = text.DefaultThesaurus()
	// "federated" expands to "distributed" among others.
	m, _ := ix.Lookup(term(t, `(body-of-text thesaurus "federated")`), opts)
	if len(m.Docs) < 2 {
		t.Errorf("thesaurus federated matches %v", ids(m))
	}
	// Without the thesaurus, no match.
	m2, _ := ix.Lookup(term(t, `(body-of-text "federated")`), opts)
	if len(m2.Docs) != 0 {
		t.Errorf("plain federated matches %v", ids(m2))
	}
}

func TestNativeLookupAtIndexLevel(t *testing.T) {
	ix := testIndex(t)
	opts := defaultOpts()
	opts.Native = func(native string) (map[int]bool, error) {
		if native == "boom" {
			return nil, errNative
		}
		return map[int]bool{0: true, 99: true}, nil // 99 out of range: dropped
	}
	m, err := ix.Lookup(term(t, `(free-form-text "native stuff")`), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Docs) != 1 || m.Docs[0] == nil {
		t.Errorf("native lookup = %v", ids(m))
	}
	if m.DocFreq() != 1 {
		t.Errorf("DocFreq = %d", m.DocFreq())
	}
	if _, err := ix.Lookup(term(t, `(free-form-text "boom")`), opts); err == nil {
		t.Error("native error swallowed")
	}
	// Without a handler the field matches nothing.
	m2, err := ix.Lookup(term(t, `(free-form-text "x")`), defaultOpts())
	if err != nil || len(m2.Docs) != 0 {
		t.Errorf("no-handler native = %v, %v", ids(m2), err)
	}
}

var errNative = fmt.Errorf("native backend down")

func TestLinkageTypeLookup(t *testing.T) {
	a := text.NewAnalyzer()
	ix := New(a)
	if _, err := ix.Add(&Document{Linkage: "u1", Title: "PostScript doc", LinkageType: "application/postscript"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Add(&Document{Linkage: "u2", Title: "HTML doc", LinkageType: "text/html"}); err != nil {
		t.Fatal(err)
	}
	m, err := ix.Lookup(term(t, `(linkage-type "text/html")`), LookupOptions{})
	if err != nil || len(m.Docs) != 1 || m.Docs[1] == nil {
		t.Errorf("linkage-type = %v, %v", ids(m), err)
	}
}

func TestDocumentHelpers(t *testing.T) {
	d := &Document{
		Linkage: "u", Title: "T", Authors: []string{"A", "B"},
		Body: "some body", LinkageType: "text/plain",
		CrossRefs: []string{"http://x", "http://y"},
		Languages: []lang.Tag{lang.Spanish},
	}
	if d.FieldText(attr.FieldAuthor) != "A, B" {
		t.Errorf("author text = %q", d.FieldText(attr.FieldAuthor))
	}
	if d.FieldText(attr.FieldCrossReferenceLinkage) != "http://x http://y" {
		t.Errorf("crossref text = %q", d.FieldText(attr.FieldCrossReferenceLinkage))
	}
	if d.FieldText(attr.FieldLanguages) != "es" {
		t.Errorf("languages text = %q", d.FieldText(attr.FieldLanguages))
	}
	if d.FieldText(attr.FieldLinkage) != "u" || d.FieldText(attr.FieldLinkageType) != "text/plain" {
		t.Error("linkage texts wrong")
	}
	if d.FieldText("no-such") != "" {
		t.Error("unknown field text")
	}
	if (&Document{}).SizeKB() != 0 {
		t.Error("empty doc size")
	}
	small := &Document{Body: "tiny"}
	if small.SizeKB() != 1 {
		t.Errorf("small doc SizeKB = %d", small.SizeKB())
	}
	big := &Document{Body: string(make([]byte, 5000))}
	if big.SizeKB() != 4 {
		t.Errorf("big doc SizeKB = %d", big.SizeKB())
	}
	if ix := New(text.NewAnalyzer()); ix.Analyzer() == nil {
		t.Error("Analyzer accessor")
	}
	if ix := New(text.NewAnalyzer()); ix.DocFreq(attr.FieldTitle, "x") != 0 {
		t.Error("DocFreq on empty index")
	}
}
