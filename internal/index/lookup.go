package index

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"starts/internal/attr"
	"starts/internal/lang"
	"starts/internal/query"
	"starts/internal/text"
)

// LookupOptions carry the engine-level matching policy into term lookups.
type LookupOptions struct {
	// DropStopWords eliminates stop words from (multi-word) term values
	// before matching, per the query's DropStopWords attribute.
	DropStopWords bool
	// Stop is the engine's stop-word list; nil eliminates nothing.
	Stop *text.StopList
	// DefaultLang applies to l-strings with no language of their own.
	DefaultLang lang.Tag
	// Thesaurus serves the thesaurus modifier; nil expands to nothing.
	Thesaurus *text.Thesaurus
	// Native evaluates free-form-text terms (queries in the engine's own
	// query language); nil means the field is unsupported and matches
	// nothing.
	Native func(native string) (map[int]bool, error)

	// cand, when set, restricts the lookup to an already-known candidate
	// set: posting traversal skips blocks whose doc-id range misses the
	// candidates entirely. Only filter evaluation threads it (internal).
	cand *candSet
}

// DocTermInfo is one document's match statistics for one query term.
type DocTermInfo struct {
	// Freq is the number of occurrences (for phrases, the number of
	// phrase occurrences).
	Freq int
	// Positions are the match word positions within the matched field;
	// nil for non-positional matches (dates, linkage).
	Positions []int
}

// TermMatch is the result of looking up one query term across the index.
type TermMatch struct {
	// Docs maps document IDs to their match statistics, merged across
	// fields for "any"-field terms.
	Docs map[int]*DocTermInfo
	// Eliminated reports that the whole term consisted of stop words and
	// was removed rather than matched.
	Eliminated bool
}

// DocFreq returns the number of matching documents.
func (m *TermMatch) DocFreq() int { return len(m.Docs) }

// Lookup evaluates one atomic term against the index, honoring the term's
// field and modifiers under the given options.
func (ix *Index) Lookup(t query.Term, opts LookupOptions) (*TermMatch, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.lookupLocked(t, opts)
}

func (ix *Index) lookupLocked(t query.Term, opts LookupOptions) (*TermMatch, error) {
	f := t.EffectiveField()
	switch f {
	case attr.FieldDateLastModified:
		return ix.lookupDate(t, opts)
	case attr.FieldLinkage:
		return ix.lookupExact(t, opts, func(d *Document) string { return d.Linkage }), nil
	case attr.FieldLinkageType:
		return ix.lookupExact(t, opts, func(d *Document) string { return d.LinkageType }), nil
	case attr.FieldLanguages:
		return ix.lookupLanguage(t, opts)
	case attr.FieldCrossReferenceLinkage:
		return ix.lookupCrossRef(t, opts), nil
	case attr.FieldFreeFormText:
		if opts.Native == nil {
			return &TermMatch{Docs: map[int]*DocTermInfo{}}, nil
		}
		set, err := opts.Native(t.Value.Text)
		if err != nil {
			return nil, fmt.Errorf("index: native query: %w", err)
		}
		m := &TermMatch{Docs: make(map[int]*DocTermInfo, len(set))}
		for id := range set {
			if id >= 0 && id < len(ix.docs) {
				m.Docs[id] = &DocTermInfo{Freq: 1}
			}
		}
		return m, nil
	case attr.FieldAny:
		m := &TermMatch{Docs: map[int]*DocTermInfo{}, Eliminated: true}
		for _, tf := range TextFields {
			fm, elim, err := ix.lookupTextField(tf, t, opts)
			if err != nil {
				return nil, err
			}
			if !elim {
				m.Eliminated = false
			}
			mergeMatches(m.Docs, fm)
		}
		return m, nil
	case attr.FieldTitle, attr.FieldAuthor, attr.FieldBodyOfText:
		fm, elim, err := ix.lookupTextField(f, t, opts)
		if err != nil {
			return nil, err
		}
		return &TermMatch{Docs: fm, Eliminated: elim}, nil
	default:
		// Fields this engine does not index match nothing; capability
		// negotiation happens above the index.
		return &TermMatch{Docs: map[int]*DocTermInfo{}}, nil
	}
}

func mergeMatches(dst map[int]*DocTermInfo, src map[int]*DocTermInfo) {
	for id, info := range src {
		if cur := dst[id]; cur != nil {
			cur.Freq += info.Freq
			cur.Positions = append(cur.Positions, info.Positions...)
			sort.Ints(cur.Positions)
		} else {
			cp := *info
			dst[id] = &cp
		}
	}
}

// lookupTextField matches a term against one positional field. The second
// return value reports stop-word elimination of the entire term.
func (ix *Index) lookupTextField(f attr.Field, t query.Term, opts LookupOptions) (map[int]*DocTermInfo, bool, error) {
	fi := ix.fields[f]
	out := map[int]*DocTermInfo{}
	words := wordsOf(ix.analyzer, t.Value.Text)
	if len(words) == 0 {
		return out, false, nil
	}
	if opts.DropStopWords {
		kept := words[:0]
		for _, w := range words {
			if !opts.Stop.Contains(w) {
				kept = append(kept, w)
			}
		}
		if len(kept) == 0 {
			return out, true, nil
		}
		words = kept
	}
	if fi == nil {
		return out, false, nil
	}
	// Per-word candidate posting lists, merged over modifier expansions.
	perWord := make([]map[int]*DocTermInfo, len(words))
	for i, w := range words {
		perWord[i] = fi.matchWord(ix.analyzer, w, t, opts)
	}
	var merged map[int]*DocTermInfo
	if len(words) == 1 {
		merged = perWord[0]
	} else {
		// A multi-word quoted value is a phrase: consecutive positions.
		merged = phraseMatch(perWord)
	}
	// Language-qualified terms only match documents in that language.
	tag := t.Value.Resolve(opts.DefaultLang)
	for id, info := range merged {
		if ix.docs[id].InLanguage(tag) {
			out[id] = info
		}
	}
	return out, false, nil
}

// wordsOf tokenizes a term value without stop-word elimination or
// normalization (matching policy is applied per word later).
func wordsOf(a *text.Analyzer, value string) []string {
	toks := a.Tokenizer.Tokenize(value)
	words := make([]string, len(toks))
	for i, t := range toks {
		words[i] = t.Text
	}
	return words
}

// expandWord resolves one query word to the index vocabulary terms it
// matches under the term's modifiers: the shared expansion step of both
// the map-building lookup path and the block-pruned ranked path.
func (fi *fieldIndex) expandWord(a *text.Analyzer, word string, t query.Term, opts LookupOptions) []string {
	var terms []string
	seen := map[string]bool{}
	add := func(candidates ...string) {
		for _, c := range candidates {
			if !seen[c] {
				seen[c] = true
				terms = append(terms, c)
			}
		}
	}

	expanded := []string{word}
	if t.HasMod(attr.ModThesaurus) && opts.Thesaurus != nil {
		expanded = opts.Thesaurus.Expand(word)
	}
	for _, w := range expanded {
		norm := a.NormalizeTerm(w)
		switch {
		case t.HasMod(attr.ModStem) && !a.Stemming:
			// Engine does not stem its index: expand via the stem map.
			add(fi.stems[text.Stem(norm)]...)
		case t.HasMod(attr.ModPhonetic):
			if sx := text.Soundex(w); sx != "" {
				add(fi.sounds[sx]...)
			}
		case t.HasMod(attr.ModRightTruncation):
			add(fi.prefixTerms(norm)...)
		case t.HasMod(attr.ModLeftTruncation):
			add(fi.suffixTerms(norm)...)
		case a.CaseSensitive && !t.HasMod(attr.ModCaseSensitive):
			// Case-sensitive index, default (insensitive) match: use the
			// fold map.
			add(fi.folds[strings.ToLower(norm)]...)
		default:
			if _, ok := fi.postings[norm]; ok {
				add(norm)
			}
		}
	}
	return terms
}

// matchWord finds the posting lists matching one query word under the
// term's modifiers and merges them into a doc→info map. A candidate set
// in opts prunes whole posting blocks via the sidecar doc-id bounds.
func (fi *fieldIndex) matchWord(a *text.Analyzer, word string, t query.Term, opts LookupOptions) map[int]*DocTermInfo {
	terms := fi.expandWord(a, word, t, opts)
	out := map[int]*DocTermInfo{}
	for _, term := range terms {
		pl := fi.postings[term]
		if pl == nil {
			continue
		}
		for _, b := range pl.blocks {
			if opts.cand.skipBlock(b) {
				continue
			}
			for i := range b.docs {
				p := b.docs[i]
				if !opts.cand.admits(p.DocID) {
					continue
				}
				if cur := out[p.DocID]; cur != nil {
					cur.Freq += p.Freq()
					cur.Positions = append(cur.Positions, p.Positions...)
					sort.Ints(cur.Positions)
				} else {
					out[p.DocID] = &DocTermInfo{Freq: p.Freq(), Positions: append([]int(nil), p.Positions...)}
				}
			}
		}
	}
	return out
}

func (fi *fieldIndex) prefixTerms(prefix string) []string {
	vocab := fi.sortedVocab()
	i := sort.SearchStrings(vocab, prefix)
	var out []string
	for ; i < len(vocab) && strings.HasPrefix(vocab[i], prefix); i++ {
		out = append(out, vocab[i])
	}
	return out
}

func (fi *fieldIndex) suffixTerms(suffix string) []string {
	var out []string
	for _, t := range fi.sortedVocab() {
		if strings.HasSuffix(t, suffix) {
			out = append(out, t)
		}
	}
	return out
}

// phraseMatch intersects per-word matches positionally: an occurrence at
// position p requires word i at position p+i for every i.
func phraseMatch(perWord []map[int]*DocTermInfo) map[int]*DocTermInfo {
	out := map[int]*DocTermInfo{}
	first := perWord[0]
docs:
	for id, info := range first {
		for _, m := range perWord[1:] {
			if m[id] == nil {
				continue docs
			}
		}
		var starts []int
	pos:
		for _, p := range info.Positions {
			for i := 1; i < len(perWord); i++ {
				if !containsInt(perWord[i][id].Positions, p+i) {
					continue pos
				}
			}
			starts = append(starts, p)
		}
		if len(starts) > 0 {
			out[id] = &DocTermInfo{Freq: len(starts), Positions: starts}
		}
	}
	return out
}

func containsInt(sorted []int, x int) bool {
	i := sort.SearchInts(sorted, x)
	return i < len(sorted) && sorted[i] == x
}

// eachDoc visits every document — or, when a candidate set restricts the
// lookup, only the candidates — the collection-scan analogue of block
// skipping for the fields without posting lists.
func (ix *Index) eachDoc(cand *candSet, fn func(id int, d *Document)) {
	if cand == nil {
		for id, d := range ix.docs {
			fn(id, d)
		}
		return
	}
	for id := range cand.ids {
		if id >= 0 && id < len(ix.docs) {
			fn(id, ix.docs[id])
		}
	}
}

// lookupDate evaluates a comparison against the last-modified date.
func (ix *Index) lookupDate(t query.Term, opts LookupOptions) (*TermMatch, error) {
	when, err := parseDate(t.Value.Text)
	if err != nil {
		return nil, err
	}
	cmp := t.Comparison()
	m := &TermMatch{Docs: map[int]*DocTermInfo{}}
	ix.eachDoc(opts.cand, func(id int, d *Document) {
		if d.Date.IsZero() {
			return
		}
		if dateSatisfies(d.Date, cmp, when) {
			m.Docs[id] = &DocTermInfo{Freq: 1}
		}
	})
	return m, nil
}

func parseDate(s string) (time.Time, error) {
	s = strings.TrimSpace(s)
	for _, layout := range []string{"2006-01-02", time.RFC3339, "2006"} {
		if t, err := time.Parse(layout, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("index: cannot parse date %q (want YYYY-MM-DD)", s)
}

func dateSatisfies(have time.Time, cmp attr.Modifier, want time.Time) bool {
	// Compare at day granularity, matching the date syntax.
	h := have.Truncate(24 * time.Hour)
	w := want.Truncate(24 * time.Hour)
	switch cmp {
	case attr.ModLT:
		return h.Before(w)
	case attr.ModLE:
		return !h.After(w)
	case attr.ModEQ:
		return h.Equal(w)
	case attr.ModGE:
		return !h.Before(w)
	case attr.ModGT:
		return h.After(w)
	case attr.ModNE:
		return !h.Equal(w)
	}
	return false
}

// lookupExact matches the term value exactly against a whole-string field.
func (ix *Index) lookupExact(t query.Term, opts LookupOptions, get func(*Document) string) *TermMatch {
	m := &TermMatch{Docs: map[int]*DocTermInfo{}}
	want := strings.TrimSpace(t.Value.Text)
	ix.eachDoc(opts.cand, func(id int, d *Document) {
		if strings.EqualFold(get(d), want) {
			m.Docs[id] = &DocTermInfo{Freq: 1}
		}
	})
	return m
}

func (ix *Index) lookupLanguage(t query.Term, opts LookupOptions) (*TermMatch, error) {
	tag, err := lang.ParseTag(strings.TrimSpace(t.Value.Text))
	if err != nil {
		return nil, fmt.Errorf("index: languages term: %w", err)
	}
	m := &TermMatch{Docs: map[int]*DocTermInfo{}}
	ix.eachDoc(opts.cand, func(id int, d *Document) {
		for _, dt := range d.Languages {
			if dt.Matches(tag) {
				m.Docs[id] = &DocTermInfo{Freq: 1}
				break
			}
		}
	})
	return m, nil
}

func (ix *Index) lookupCrossRef(t query.Term, opts LookupOptions) *TermMatch {
	m := &TermMatch{Docs: map[int]*DocTermInfo{}}
	want := strings.TrimSpace(t.Value.Text)
	ix.eachDoc(opts.cand, func(id int, d *Document) {
		for _, url := range d.CrossRefs {
			if strings.EqualFold(url, want) {
				m.Docs[id] = &DocTermInfo{Freq: 1}
				break
			}
		}
	})
	return m
}
