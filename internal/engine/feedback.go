package engine

import (
	"sort"
	"strings"

	"starts/internal/attr"
	"starts/internal/index"
	"starts/internal/lang"
	"starts/internal/query"
)

// FeedbackTerms is the number of distinctive words a Document-text term
// expands into for relevance feedback.
const FeedbackTerms = 10

// expandDocumentText implements the Basic-1 Document-text field: the query
// passes an entire document as a term, asking for similar documents
// (relevance feedback, §4.1.1). The engine extracts the FeedbackTerms most
// distinctive words of the passed text — by term frequency in the text
// times inverse document frequency in this collection — and substitutes a
// weighted list of body-of-text terms, which then ranks documents by
// similarity to the passed document. The expansion appears in the actual
// query the source echoes, so metasearchers see exactly what ran.
func (e *Engine) expandDocumentText(t query.Term, opts index.LookupOptions) query.Expr {
	toks := e.cfg.Analyzer.Analyze(t.Value.Text)
	if opts.DropStopWords {
		kept := toks[:0]
		for _, tok := range toks {
			if !e.cfg.Analyzer.Stop.Contains(tok.Text) {
				kept = append(kept, tok)
			}
		}
		toks = kept
	}
	if len(toks) == 0 {
		return nil
	}
	tf := map[string]int{}
	for _, tok := range toks {
		tf[tok.Text]++
	}
	type cand struct {
		word  string
		score float64
	}
	n := e.ix.NumDocs()
	var cands []cand
	for w, f := range tf {
		df := e.ix.DocFreq(attr.FieldBodyOfText, w)
		if df == 0 {
			continue // words absent from the collection cannot match
		}
		idf := 1 + float64(n)/float64(df)
		cands = append(cands, cand{word: w, score: float64(f) * idf})
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].word < cands[j].word
	})
	if len(cands) > FeedbackTerms {
		cands = cands[:FeedbackTerms]
	}
	l := &query.List{}
	maxScore := cands[0].score
	for _, c := range cands {
		l.Items = append(l.Items, &query.TermExpr{Term: query.Term{
			Field:  attr.FieldBodyOfText,
			Value:  lang.L(c.word),
			Weight: roundWeight(c.score / maxScore),
		}})
	}
	return l
}

// roundWeight keeps feedback weights in (0,1] with two decimals so the
// actual-query echo stays readable.
func roundWeight(w float64) float64 {
	r := float64(int(w*100+0.5)) / 100
	if r <= 0 {
		return 0.01
	}
	if r > 1 {
		return 1
	}
	return r
}

// SubstringNative is a demonstration native-query handler for the
// Free-form-text field: it treats the native query as a case-insensitive
// substring to grep document bodies and titles for — standing in for a
// vendor's richer proprietary query language.
func SubstringNative(native string, ix *index.Index) (map[int]bool, error) {
	out := map[int]bool{}
	needle := strings.ToLower(strings.TrimSpace(native))
	if needle == "" {
		return out, nil
	}
	for id := 0; id < ix.NumDocs(); id++ {
		d, err := ix.Doc(id)
		if err != nil {
			return nil, err
		}
		if strings.Contains(strings.ToLower(d.Body), needle) ||
			strings.Contains(strings.ToLower(d.Title), needle) {
			out[id] = true
		}
	}
	return out, nil
}
