package engine

import (
	"reflect"
	"testing"

	"starts/internal/corpus"
	"starts/internal/index"
	"starts/internal/lang"
	"starts/internal/query"
)

// rankedUniverse flattens a generated multi-topic corpus (including a
// Spanish-tagged source) into one document collection.
func rankedUniverse(t *testing.T) []*index.Document {
	t.Helper()
	g := corpus.Generate(corpus.Config{
		Seed:          11,
		NumSources:    5, // rotates through all topics, incl. Spanish "datos"
		DocsPerSource: 300,
		BodyWords:     40,
	})
	var docs []*index.Document
	for _, s := range g.Sources {
		docs = append(docs, s.Docs...)
	}
	return docs
}

func rankedEngines(t *testing.T, base Config, docs []*index.Document) (fast, slow *Engine) {
	t.Helper()
	mk := func(exhaustive bool) *Engine {
		cfg := base
		cfg.Exhaustive = exhaustive
		e, err := NewWithDocs(cfg, docs, 4)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	return mk(false), mk(true)
}

// TestRankedFastPathMatchesExhaustive is the tentpole equivalence
// property: for eligible queries the block-pruned top-k path must return
// exactly what the exhaustive evaluator returns — identical floats,
// identical order, identical term statistics — across all three scorers.
func TestRankedFastPathMatchesExhaustive(t *testing.T) {
	docs := rankedUniverse(t)
	g := corpus.Generate(corpus.Config{Seed: 11, NumSources: 5, DocsPerSource: 300, BodyWords: 40})
	queries := corpus.Workload(g, corpus.WorkloadConfig{
		Seed:           23,
		NumQueries:     60,
		MaxTerms:       3,
		FilterFraction: -1, // pure ranking: the fast path's home turf
		MaxResults:     15,
	})
	scorers := []struct {
		name string
		mk   func() Config
	}{
		{"tfidf", func() Config { c := NewVectorConfig(); c.Scorer = TFIDF{}; return c }},
		{"topk", func() Config { c := NewVectorConfig(); c.Scorer = TopK{}; return c }},
		{"rawtf", func() Config { c := NewVectorConfig(); c.Scorer = RawTF{}; return c }},
	}
	for _, sc := range scorers {
		t.Run(sc.name, func(t *testing.T) {
			fast, slow := rankedEngines(t, sc.mk(), docs)
			for qi, wq := range queries {
				fr, err := fast.Search(wq.Query)
				if err != nil {
					t.Fatalf("query %d fast: %v", qi, err)
				}
				sr, err := slow.Search(wq.Query)
				if err != nil {
					t.Fatalf("query %d slow: %v", qi, err)
				}
				if len(fr.Documents) != len(sr.Documents) {
					t.Fatalf("query %d (%v): fast %d docs, exhaustive %d",
						qi, wq.Terms, len(fr.Documents), len(sr.Documents))
				}
				for di := range fr.Documents {
					fd, sd := fr.Documents[di], sr.Documents[di]
					if fd.RawScore != sd.RawScore {
						t.Fatalf("query %d (%v) doc %d: score %v vs %v",
							qi, wq.Terms, di, fd.RawScore, sd.RawScore)
					}
					if !reflect.DeepEqual(fd.Fields, sd.Fields) {
						t.Fatalf("query %d doc %d: fields %v vs %v", qi, di, fd.Fields, sd.Fields)
					}
					if !reflect.DeepEqual(fd.TermStats, sd.TermStats) {
						t.Fatalf("query %d (%v) doc %d (%s): term stats\nfast: %+v\nslow: %+v",
							qi, wq.Terms, di, fd.Fields["linkage"], fd.TermStats, sd.TermStats)
					}
				}
			}
		})
	}
}

// TestRankedFastPathMatchesExhaustiveWeighted covers explicit unequal
// term weights — the weighted-average branch of the plan builder.
func TestRankedFastPathMatchesExhaustiveWeighted(t *testing.T) {
	docs := rankedUniverse(t)
	fast, slow := rankedEngines(t, NewVectorConfig(), docs)
	rankings := []string{
		"list((\"database\" 0.7) (\"query\" 0.3))",
		"list((\"distributed\" 1) (\"index\" 0.5) (\"storage\" 0.25))",
		"list((\"transaction\" 0.9))",
		"(\"relational\" 0.4)",
	}
	for _, r := range rankings {
		q := mkQuery(t, "", r)
		q.MaxResults = 10
		fr, err := fast.Search(q)
		if err != nil {
			t.Fatalf("%s fast: %v", r, err)
		}
		sr, err := slow.Search(q)
		if err != nil {
			t.Fatalf("%s slow: %v", r, err)
		}
		if !reflect.DeepEqual(fr.Documents, sr.Documents) {
			t.Fatalf("%s: fast path diverges from exhaustive\nfast: %d docs\nslow: %d docs",
				r, len(fr.Documents), len(sr.Documents))
		}
	}
}

// TestRankedFastPathEligibility asserts the fast path actually engages
// for the queries the equivalence suite exercises — otherwise the suite
// compares the exhaustive path with itself — and declines the shapes it
// cannot execute exactly.
func TestRankedFastPathEligibility(t *testing.T) {
	e := newEngine(t, NewVectorConfig())
	opts := index.LookupOptions{DropStopWords: true, Stop: e.cfg.Analyzer.Stop}

	eligible := mkQuery(t, "", `list(("databases") ("distributed"))`)
	_, actualRanking := eligible.ResolveAttributeSet()
	if _, ok := e.rankedFastPath(eligible, nil, actualRanking, opts); !ok {
		t.Fatal("flat weighted-term ranking should take the fast path")
	}

	// A filter forces the candidate-set path.
	if _, ok := e.rankedFastPath(eligible, actualRanking, actualRanking, opts); ok {
		t.Error("query with filter took the fast path")
	}
	// Non-default sort orders need field keys the traversal does not have.
	sorted := mkQuery(t, "", `list(("databases"))`)
	sorted.SortBy = []query.SortKey{{Field: "title", Ascending: true}}
	_, sortedRanking := sorted.ResolveAttributeSet()
	if _, ok := e.rankedFastPath(sorted, nil, sortedRanking, opts); ok {
		t.Error("field-sorted query took the fast path")
	}
	// Nested operators score non-additively.
	nested := mkQuery(t, "", `(("databases") and ("distributed"))`)
	_, nestedRanking := nested.ResolveAttributeSet()
	if _, ok := e.rankedFastPath(nested, nil, nestedRanking, opts); ok {
		t.Error("and-ranking took the fast path")
	}
	// Exhaustive config pins the reference path.
	ex := e.cfg
	ex.Exhaustive = true
	ee := &Engine{cfg: ex, ix: e.ix}
	if _, ok := ee.rankedFastPath(eligible, nil, actualRanking, opts); ok {
		t.Error("Exhaustive config took the fast path")
	}
}

// TestRankedFastPathFallbackShapes runs the ineligible query shapes
// end-to-end on fast-path-enabled engines: they must fall back and still
// match the exhaustive engine exactly.
func TestRankedFastPathFallbackShapes(t *testing.T) {
	docs := rankedUniverse(t)
	fast, slow := rankedEngines(t, NewVectorConfig(), docs)
	cases := []struct {
		name            string
		filter, ranking string
	}{
		{"phrase term", "", `("distributed database")`},
		{"and ranking", "", `(("database") and ("query"))`},
		{"filter plus ranking", `("database")`, `list(("query") ("index"))`},
		{"filter only", `("transaction")`, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := mkQuery(t, tc.filter, tc.ranking)
			q.MaxResults = 12
			fr, err := fast.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			sr, err := slow.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fr.Documents, sr.Documents) {
				t.Fatalf("fallback shape diverges: fast %d docs, slow %d docs",
					len(fr.Documents), len(sr.Documents))
			}
		})
	}
}

// TestRankedFastPathMinScore checks the monotone tail cut: a minimum
// score drops the same suffix on both paths.
func TestRankedFastPathMinScore(t *testing.T) {
	docs := rankedUniverse(t)
	fast, slow := rankedEngines(t, NewVectorConfig(), docs)
	for _, min := range []float64{0.05, 0.2, 0.5, 0.9} {
		q := mkQuery(t, "", `list(("database") ("distributed") ("query"))`)
		q.MaxResults = 20
		q.MinScore = min
		fr, err := fast.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := slow.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fr.Documents, sr.Documents) {
			t.Fatalf("min-score %v: fast %d docs, slow %d docs", min, len(fr.Documents), len(sr.Documents))
		}
		for _, d := range fr.Documents {
			if d.RawScore < min {
				t.Fatalf("min-score %v returned doc scored %v", min, d.RawScore)
			}
		}
	}
}

// TestRankedFastPathLanguageFilter pins equivalence when the query's
// default language must exclude tagged documents: the Spanish source's
// vocabulary under an en-US query, and the same vocabulary once the
// query asks for Spanish.
func TestRankedFastPathLanguageFilter(t *testing.T) {
	docs := rankedUniverse(t)
	fast, slow := rankedEngines(t, NewVectorConfig(), docs)
	for _, langTag := range []string{"", "es"} {
		q := mkQuery(t, "", `list(("datos") ("consulta"))`)
		q.MaxResults = 15
		if langTag != "" {
			q.DefaultLanguage = lang.MustParseTag(langTag)
		}
		fr, err := fast.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := slow.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fr.Documents, sr.Documents) {
			t.Fatalf("lang %q: fast %d docs, slow %d docs", langTag, len(fr.Documents), len(sr.Documents))
		}
		if len(fr.Documents) == 0 {
			t.Fatalf("lang %q: no results for Spanish-topic terms", langTag)
		}
	}
}
