package engine

import (
	"math/rand"
	"testing"
	"time"

	"starts/internal/attr"
	"starts/internal/index"
	"starts/internal/query"
)

func sortIDs(docs []*scoredDoc) []int {
	ids := make([]int, len(docs))
	for i, sd := range docs {
		ids[i] = sd.id
	}
	return ids
}

func mkScored(pairs ...float64) []*scoredDoc {
	// pairs alternate id, score.
	var out []*scoredDoc
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, &scoredDoc{id: int(pairs[i]), score: pairs[i+1]})
	}
	return out
}

// TestSortTopTable covers the sort specification space: single and
// multi-key, ascending and descending, score and field keys, date
// formatting, and documents missing the sorted field.
func TestSortTopTable(t *testing.T) {
	e := newEngine(t, NewVectorConfig())
	// A fourth document with no date and no authors: its sort keys for
	// those fields are empty strings, which order before any value.
	if err := e.Add(&index.Document{Linkage: "http://x/bare.ps", Title: "zzz minimal"}); err != nil {
		t.Fatal(err)
	}
	// Collection: 0 dood(1995-06-01), 1 lagunita(1996-09-15),
	// 2 gloss(1994-05-20), 3 bare(no date, title "zzz minimal").
	cases := []struct {
		name string
		keys []query.SortKey
		in   []*scoredDoc
		want []int
	}{
		{
			name: "score descending default",
			keys: []query.SortKey{{Field: query.ScoreSortField}},
			in:   mkScored(0, 0.2, 1, 0.9, 2, 0.5),
			want: []int{1, 2, 0},
		},
		{
			name: "score ascending",
			keys: []query.SortKey{{Field: query.ScoreSortField, Ascending: true}},
			in:   mkScored(0, 0.2, 1, 0.9, 2, 0.5),
			want: []int{0, 2, 1},
		},
		{
			name: "score ties break by ascending id",
			keys: []query.SortKey{{Field: query.ScoreSortField}},
			in:   mkScored(2, 0.5, 0, 0.5, 1, 0.5),
			want: []int{0, 1, 2},
		},
		{
			name: "date ascending, missing date first",
			keys: []query.SortKey{{Field: attr.FieldDateLastModified, Ascending: true}},
			in:   mkScored(0, 0, 1, 0, 2, 0, 3, 0),
			want: []int{3, 2, 0, 1},
		},
		{
			name: "date descending",
			keys: []query.SortKey{{Field: attr.FieldDateLastModified}},
			in:   mkScored(0, 0, 1, 0, 2, 0),
			want: []int{1, 0, 2},
		},
		{
			name: "title ascending folds case",
			keys: []query.SortKey{{Field: attr.FieldTitle, Ascending: true}},
			in:   mkScored(3, 0, 2, 0, 1, 0, 0, 0),
			want: []int{0, 1, 2, 3},
		},
		{
			name: "author ascending, missing author first",
			keys: []query.SortKey{{Field: attr.FieldAuthor, Ascending: true}},
			in:   mkScored(0, 0, 1, 0, 3, 0),
			want: []int{3, 1, 0}, // "" < "avi silberschatz, ..." < "jeffrey d. ullman"
		},
		{
			name: "multi-key: score desc then date asc",
			keys: []query.SortKey{
				{Field: query.ScoreSortField},
				{Field: attr.FieldDateLastModified, Ascending: true},
			},
			in:   mkScored(0, 0.5, 1, 0.5, 2, 0.9),
			want: []int{2, 0, 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := sortIDs(e.sortTop(tc.in, tc.keys, 0))
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("got %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// TestSortTopMissingDocRegression is the crash regression: a scored id
// with no document behind it (a stale or corrupted id) used to make the
// field comparator dereference a nil *index.Document and panic. Sorting
// must instead treat the missing document as having empty sort keys.
func TestSortTopMissingDocRegression(t *testing.T) {
	e := newEngine(t, NewVectorConfig())
	docs := mkScored(1, 0.5, 999, 0.9, 0, 0.2) // 999 does not exist
	got := sortIDs(e.sortTop(docs, []query.SortKey{{Field: attr.FieldTitle, Ascending: true}}, 0))
	// The missing document sorts on the empty title, before any real one.
	if got[0] != 999 {
		t.Fatalf("missing doc sorted at %v, want first (empty key); order %v", got, got)
	}
	// Score sorting must survive missing ids too.
	got = sortIDs(e.sortTop(docs, []query.SortKey{{Field: query.ScoreSortField}}, 0))
	if got[0] != 999 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("score sort with missing id = %v", got)
	}
}

// TestSortTopHeapMatchesFullSort cross-checks the bounded-heap selection
// against the full sort on randomized scored docs with heavy ties.
func TestSortTopHeapMatchesFullSort(t *testing.T) {
	e := newEngine(t, NewVectorConfig())
	rng := rand.New(rand.NewSource(3))
	keys := []query.SortKey{
		{Field: attr.FieldDateLastModified, Ascending: true},
		{Field: query.ScoreSortField},
	}
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		mk := func() []*scoredDoc {
			docs := make([]*scoredDoc, n)
			for i := range docs {
				docs[i] = &scoredDoc{id: rng.Intn(4), score: float64(rng.Intn(3))}
			}
			return docs
		}
		a, b := mk(), mk()
		for i := range a {
			b[i] = &scoredDoc{id: a[i].id, score: a[i].score}
		}
		max := 1 + rng.Intn(n)
		full := sortIDs(e.sortTop(a, keys, 0))
		capped := sortIDs(e.sortTop(b, keys, max))
		if len(capped) != max && len(capped) != len(full) {
			t.Fatalf("capped len %d, max %d, full %d", len(capped), max, len(full))
		}
		for i := range capped {
			if capped[i] != full[i] {
				t.Fatalf("trial %d: capped %v != full prefix %v", trial, capped, full[:len(capped)])
			}
		}
	}
}

// TestSortTopAllocs pins the headline perf property of precomputed sort
// keys: comparisons allocate nothing, so a sort's allocation count is a
// small constant independent of collection size (the old comparator
// formatted the date and lower-cased the title on every comparison —
// thousands of allocations for a few hundred documents).
func TestSortTopAllocs(t *testing.T) {
	cfg := NewVectorConfig()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		d := &index.Document{
			Linkage: "http://a/" + string(rune('a'+i%26)) + "/" + itoa(i),
			Title:   "Title " + itoa(i%37),
			Authors: []string{"Author " + itoa(i%11)},
			Date:    time.Date(1990+i%8, time.Month(1+i%12), 1+i%28, 0, 0, 0, 0, time.UTC),
		}
		if err := e.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	docs := make([]*scoredDoc, 400)
	for i := range docs {
		docs[i] = &scoredDoc{id: i, score: float64(i % 17)}
	}
	keys := []query.SortKey{
		{Field: attr.FieldDateLastModified},
		{Field: attr.FieldTitle, Ascending: true},
		{Field: query.ScoreSortField},
	}
	allocs := testing.AllocsPerRun(10, func() {
		e.sortTop(docs, keys, 0)
	})
	// Key precompute makes a handful of slices; comparisons themselves
	// are allocation-free. The pre-fix comparator allocated per
	// comparison (two date formats or two ToLower calls), putting this
	// in the thousands.
	if allocs > 40 {
		t.Errorf("sortTop allocations = %.0f, want a small constant (comparator must not allocate)", allocs)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
