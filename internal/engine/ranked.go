package engine

import (
	"starts/internal/index"
	"starts/internal/query"
	"starts/internal/result"
)

// monotoneScorer gates the block-pruned ranked fast path. A scorer opts
// in by declaring its TermWeight monotone — non-decreasing in term
// frequency and non-increasing in document length, with df and n fixed
// per query — the property that makes the index's sidecar block stats
// (max frequency, min length) sound score upper bounds.
type monotoneScorer interface {
	MonotoneWeight() bool
}

// rankedFastPath attempts the block-pruned top-k execution of a query:
// instead of materializing the all-documents set and scoring every one,
// the index's WAND traversal visits only postings that might reach the
// top max-docs. It applies when the query is pure ranking (no filter),
// sorted by score descending (the default), over a flat weighted-term
// ranking expression, under a scorer with monotone term weights. The
// returned documents are ready for answer assembly: finalized scores,
// minimum-score filter applied, term statistics attached. ok is false
// when the query is not eligible — the caller runs the exhaustive path,
// which produces identical results for eligible queries (equal floats,
// equal order, equal statistics).
func (e *Engine) rankedFastPath(q *query.Query, filter, ranking query.Expr, opts index.LookupOptions) ([]*scoredDoc, bool) {
	if e.cfg.Exhaustive || filter != nil || ranking == nil {
		return nil, false
	}
	if ms, ok := e.cfg.Scorer.(monotoneScorer); !ok || !ms.MonotoneWeight() {
		return nil, false
	}
	if sk := q.EffectiveSort(); len(sk) != 1 || sk[0].Field != query.ScoreSortField || sk[0].Ascending {
		return nil, false
	}
	plan, ok := rankPlanOf(ranking)
	if !ok {
		return nil, false
	}
	plan.K = q.EffectiveMaxResults()
	plan.TermWeight = e.cfg.Scorer.TermWeight
	ranked, dfs, ok := e.ix.TopKRanked(plan, opts)
	if !ok {
		return nil, false
	}

	// The WAND top document carries the collection's best raw score — the
	// maxScore top-scaled scorers finalize against.
	n := e.ix.NumDocs()
	maxScore := 0.0
	if len(ranked) > 0 {
		maxScore = ranked[0].Sum / plan.Norm
	}
	kept := make([]*scoredDoc, 0, len(ranked))
	for _, rd := range ranked {
		score := e.cfg.Scorer.Finalize(rd.Sum/plan.Norm, maxScore)
		if score < q.MinScore {
			// Finalize is monotone, so the failing documents are exactly
			// the tail of the descending order.
			break
		}
		kept = append(kept, &scoredDoc{
			id:    rd.ID,
			score: score,
			stats: e.rankedStats(plan, rd, dfs, n),
		})
	}
	return kept, true
}

// rankPlanOf flattens a ranking expression into a weighted-term plan:
// a bare term, or a list(...) whose items are all plain terms — the
// weighted-average semantics of the exhaustive evaluator. Nested
// operators (and/or/and-not, proximity) score non-additively and fall
// back.
func rankPlanOf(ranking query.Expr) (index.RankPlan, bool) {
	var plan index.RankPlan
	switch n := ranking.(type) {
	case *query.TermExpr:
		w := n.EffectiveWeight()
		if w < 0 {
			return plan, false
		}
		plan.Terms = []index.RankTerm{{Term: n.Term, Weight: w}}
		plan.Norm = 1
		return plan, true
	case *query.List:
		wsum := 0.0
		for _, it := range n.Items {
			t, isTerm := it.(*query.TermExpr)
			if !isTerm {
				return plan, false
			}
			w := t.EffectiveWeight()
			if w < 0 {
				return plan, false
			}
			plan.Terms = append(plan.Terms, index.RankTerm{Term: t.Term, Weight: w})
			wsum += w
		}
		if wsum <= 0 {
			return plan, false
		}
		plan.Norm = wsum
		return plan, true
	default:
		return plan, false
	}
}

// rankedStats assembles the TermStats of one fast-path result document,
// mirroring rankEvaluator.statsFor: unique terms in plan order, only
// those matching the document.
func (e *Engine) rankedStats(plan index.RankPlan, rd index.RankedDoc, dfs []int, n int) []result.TermStat {
	var stats []result.TermStat
	var seen map[string]bool
	for i, rt := range plan.Terms {
		if len(plan.Terms) > 1 {
			key := rt.Term.String()
			if seen == nil {
				seen = make(map[string]bool, len(plan.Terms))
			}
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		tf := rd.TFs[i]
		if tf == 0 {
			continue
		}
		stats = append(stats, result.TermStat{
			Term:    query.Term{Field: rt.Term.EffectiveField(), Value: rt.Term.Value},
			Freq:    tf,
			Weight:  round4(e.cfg.Scorer.TermWeight(tf, dfs[i], n, e.ix.TokenCount(rd.ID))),
			DocFreq: dfs[i],
		})
	}
	return stats
}
