package engine

import (
	"fmt"
	"sort"
	"strings"

	"starts/internal/attr"
	"starts/internal/index"
	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/text"
	"starts/internal/topk"
)

// Config is an engine's capability profile: which query-language parts,
// fields and modifiers it supports, its linguistics, and its (nominally
// secret) ranking algorithm. Everything here surfaces in the source's
// exported metadata, which is exactly what a metasearcher needs to use the
// engine well.
type Config struct {
	// Analyzer fixes the engine's tokenizer, case policy and stemming.
	Analyzer *text.Analyzer
	// QueryParts says whether filter and/or ranking expressions are
	// accepted; the other kind is silently ignored, per Example 7.
	QueryParts meta.QueryParts
	// Fields lists the optional fields supported beyond the required
	// ones.
	Fields []attr.Field
	// Mods lists the supported modifiers.
	Mods []attr.Modifier
	// IllegalCombos lists field-modifier pairs that are NOT legal even
	// though field and modifier are individually supported (e.g. stemming
	// author names). All other supported pairs are legal.
	IllegalCombos map[attr.Field][]attr.Modifier
	// TurnOffStopWords says whether queries may disable stop-word
	// elimination; when false, stop words are always dropped.
	TurnOffStopWords bool
	// Scorer is the ranking algorithm.
	Scorer Scorer
	// Thesaurus backs the thesaurus modifier, when supported.
	Thesaurus *text.Thesaurus
	// Native, when set, evaluates free-form-text terms: queries written
	// in the engine's own (non-STARTS) query language, the escape hatch
	// the Free-form-text field provides. It receives the native query
	// string and the engine's index and returns the matching documents.
	Native func(native string, ix *index.Index) (map[int]bool, error)
	// Exhaustive disables the block-pruned ranked fast path, forcing
	// every query through the full scoring walk. The two paths return
	// identical results; equivalence tests and benchmarks flip this.
	Exhaustive bool
}

// NewVectorConfig returns the default full-featured profile: both query
// parts, every Basic-1 optional text field, the common modifiers, TFIDF
// scoring.
func NewVectorConfig() Config {
	return Config{
		Analyzer:   text.NewAnalyzer(),
		QueryParts: meta.PartsBoth,
		Fields: []attr.Field{
			attr.FieldAuthor, attr.FieldBodyOfText, attr.FieldDocumentText,
			attr.FieldLinkageType, attr.FieldCrossReferenceLinkage, attr.FieldLanguages,
		},
		Mods: []attr.Modifier{
			attr.ModLT, attr.ModLE, attr.ModEQ, attr.ModGE, attr.ModGT, attr.ModNE,
			attr.ModStem, attr.ModPhonetic, attr.ModRightTruncation, attr.ModLeftTruncation,
		},
		TurnOffStopWords: true,
		Scorer:           TFIDF{},
	}
}

// NewBooleanConfig returns a Glimpse-like profile: filter expressions
// only, a reduced modifier set, no way to keep stop words.
func NewBooleanConfig() Config {
	tok, _ := text.LookupTokenizer("Acme-2")
	return Config{
		Analyzer:   &text.Analyzer{Tokenizer: tok, Stop: text.MinimalStopWords(), Stemming: false},
		QueryParts: meta.PartsFilter,
		Fields:     []attr.Field{attr.FieldAuthor, attr.FieldBodyOfText},
		Mods: []attr.Modifier{
			attr.ModLT, attr.ModLE, attr.ModEQ, attr.ModGE, attr.ModGT, attr.ModNE,
			attr.ModStem, attr.ModRightTruncation,
		},
		TurnOffStopWords: false,
		Scorer:           RawTF{},
	}
}

// Engine executes STARTS queries over an index under a capability profile.
type Engine struct {
	cfg Config
	ix  *index.Index
}

// New returns an engine over a fresh index built with the config's
// analyzer.
func New(cfg Config) (*Engine, error) {
	if cfg.Analyzer == nil {
		return nil, fmt.Errorf("engine: config has no analyzer")
	}
	if cfg.Scorer == nil {
		return nil, fmt.Errorf("engine: config has no scorer")
	}
	if cfg.QueryParts == "" {
		return nil, fmt.Errorf("engine: config has no query parts")
	}
	return &Engine{cfg: cfg, ix: index.New(cfg.Analyzer)}, nil
}

// NewWithDocs returns an engine over an index built from docs with
// parallel chunked construction (workers <= 0 means GOMAXPROCS). The
// index is identical to one built by sequential Add calls.
func NewWithDocs(cfg Config, docs []*index.Document, workers int) (*Engine, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	ix, err := index.Build(cfg.Analyzer, docs, workers)
	if err != nil {
		return nil, err
	}
	e.ix = ix
	return e, nil
}

// Config returns the engine's capability profile.
func (e *Engine) Config() Config { return e.cfg }

// Index returns the engine's index, for loading documents.
func (e *Engine) Index() *index.Index { return e.ix }

// Add indexes a document.
func (e *Engine) Add(d *index.Document) error {
	_, err := e.ix.Add(d)
	return err
}

// SupportsField reports whether the engine recognizes a field (required
// fields always).
func (e *Engine) SupportsField(f attr.Field) bool {
	f = attr.Normalize(f)
	if f.IsRequired() {
		return true
	}
	if f == attr.FieldFreeFormText {
		return e.cfg.Native != nil
	}
	for _, sf := range e.cfg.Fields {
		if attr.Normalize(sf) == f {
			return true
		}
	}
	return false
}

// SupportsModifier reports whether the engine supports a modifier.
func (e *Engine) SupportsModifier(m attr.Modifier) bool {
	if m == attr.ModThesaurus {
		return e.cfg.Thesaurus != nil
	}
	if m == attr.ModCaseSensitive {
		// Only a case-preserving index can honor case-sensitive matching.
		if !e.cfg.Analyzer.CaseSensitive {
			return false
		}
	}
	for _, sm := range e.cfg.Mods {
		if sm == m {
			return true
		}
	}
	return m == attr.ModCaseSensitive && e.cfg.Analyzer.CaseSensitive
}

// AllowsCombination reports whether applying the modifier to the field is
// legal at this engine.
func (e *Engine) AllowsCombination(f attr.Field, m attr.Modifier) bool {
	if !e.SupportsField(f) || !e.SupportsModifier(m) {
		return false
	}
	for _, bad := range e.cfg.IllegalCombos[attr.Normalize(f)] {
		if bad == m {
			return false
		}
	}
	// Comparisons only make sense on the date field.
	if m.IsComparison() && m != attr.ModEQ {
		return attr.Normalize(f) == attr.FieldDateLastModified
	}
	return true
}

// Search executes a query: it rewrites the query down to what the engine
// supports (the "actual query"), evaluates the filter, scores the ranking
// expression, and assembles the STARTS result with term statistics. It
// never fails on unsupported query features — those are ignored, per the
// protocol — only on malformed input (e.g. an unparsable date).
func (e *Engine) Search(q *query.Query) (*result.Results, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	dropStop := q.DropStopWords || !e.cfg.TurnOffStopWords
	opts := index.LookupOptions{
		DropStopWords: dropStop,
		Stop:          e.cfg.Analyzer.Stop,
		DefaultLang:   q.DefaultLanguage,
		Thesaurus:     e.cfg.Thesaurus,
	}
	if e.cfg.Native != nil {
		opts.Native = func(native string) (map[int]bool, error) {
			return e.cfg.Native(native, e.ix)
		}
	}

	// Interpret term fields in the query's default attribute set (e.g.
	// dc-1 "creator" resolves to the Basic-1 "author" this engine knows).
	actualFilter, actualRanking := q.ResolveAttributeSet()
	if !e.cfg.QueryParts.SupportsFilter() {
		actualFilter = nil
	} else {
		actualFilter = e.rewrite(actualFilter, opts, false)
	}
	if !e.cfg.QueryParts.SupportsRanking() {
		actualRanking = nil
	} else {
		actualRanking = e.rewrite(actualRanking, opts, true)
	}

	res := &result.Results{ActualFilter: actualFilter, ActualRanking: actualRanking}

	// When nothing of the query survives (every term unsupported or
	// eliminated), there is nothing to evaluate: the result is empty and
	// the empty actual query tells the metasearcher why.
	if actualFilter == nil && actualRanking == nil {
		return res, nil
	}

	var kept []*scoredDoc
	var ev *rankEvaluator
	if fast, ok := e.rankedFastPath(q, actualFilter, actualRanking, opts); ok {
		// Pure ranking under the default sort: the index's block-pruned
		// top-k traversal finds the answer without scoring the collection.
		kept = fast
	} else {
		// The filter match set; no (surviving) filter means every document
		// qualifies.
		var matched map[int]bool
		if actualFilter != nil {
			set, err := e.ix.EvalFilter(actualFilter, opts)
			if err != nil {
				return nil, err
			}
			matched = set
		} else {
			matched = e.ix.AllDocs()
		}

		scored, rev, err := e.scoreDocs(matched, actualRanking, opts)
		if err != nil {
			return nil, err
		}
		ev = rev

		// Answer-specification: minimum score, sort, cap. A pure ranking
		// query (no filter) qualifies only documents that match at least one
		// ranking term; with a filter, the filter decides membership and a
		// zero score merely ranks last.
		kept = scored[:0]
		for _, sd := range scored {
			if actualRanking != nil {
				if sd.score < q.MinScore {
					continue
				}
				if actualFilter == nil && sd.score == 0 {
					continue
				}
			}
			kept = append(kept, sd)
		}
		kept = e.sortTop(kept, q.EffectiveSort(), q.EffectiveMaxResults())
	}

	for _, sd := range kept {
		doc, err := e.ix.Doc(sd.id)
		if err != nil {
			return nil, err
		}
		// Term statistics are assembled only for returned documents; the
		// discarded tail never pays for them.
		if ev != nil {
			sd.stats = ev.statsFor(sd.id, e)
		}
		res.Documents = append(res.Documents, e.answerDoc(doc, sd, q))
	}
	return res, nil
}

// scoredDoc pairs a document with its combined score and term statistics.
type scoredDoc struct {
	id    int
	score float64
	stats []result.TermStat
}

// scoreDocs computes each matched document's score for the ranking
// expression, then finalizes scores onto the engine's reported scale. The
// returned evaluator assembles TermStats lazily for the documents that
// survive the answer specification.
func (e *Engine) scoreDocs(matched map[int]bool, ranking query.Expr, opts index.LookupOptions) ([]*scoredDoc, *rankEvaluator, error) {
	out := make([]*scoredDoc, 0, len(matched))
	if ranking == nil {
		for id := range matched {
			out = append(out, &scoredDoc{id: id})
		}
		return out, nil, nil
	}
	ev, err := e.newRankEvaluator(ranking, opts)
	if err != nil {
		return nil, nil, err
	}
	maxScore := 0.0
	for id := range matched {
		sd := &scoredDoc{id: id}
		sd.score = ev.score(ranking, id)
		out = append(out, sd)
		if sd.score > maxScore {
			maxScore = sd.score
		}
	}
	for _, sd := range out {
		sd.score = e.cfg.Scorer.Finalize(sd.score, maxScore)
	}
	return out, ev, nil
}

// rankEvaluator caches term matches for one query execution.
type rankEvaluator struct {
	matches map[string]*index.TermMatch // keyed by term.String()
	nodes   map[*query.TermExpr]*index.TermMatch
	terms   []query.Term
	// termMatches[i] is the match for terms[i], so per-document paths
	// never re-derive the map key.
	termMatches []*index.TermMatch
	n           int
	ix          *index.Index
	scorer      Scorer
}

func (e *Engine) newRankEvaluator(ranking query.Expr, opts index.LookupOptions) (*rankEvaluator, error) {
	ev := &rankEvaluator{
		matches: map[string]*index.TermMatch{},
		nodes:   map[*query.TermExpr]*index.TermMatch{},
		n:       e.ix.NumDocs(),
		ix:      e.ix,
		scorer:  e.cfg.Scorer,
	}
	for _, t := range ranking.Terms(nil) {
		key := t.String()
		if _, ok := ev.matches[key]; ok {
			continue
		}
		m, err := e.ix.Lookup(t, opts)
		if err != nil {
			return nil, err
		}
		ev.matches[key] = m
		ev.terms = append(ev.terms, t)
		ev.termMatches = append(ev.termMatches, m)
	}
	return ev, nil
}

// nodeWeight is the scorer weight for an expression node on the per-document
// scoring path: the term-match lookup is memoized per node pointer, so
// the SOIF map key (Term.String allocates) is derived once per query
// instead of once per scored document.
func (ev *rankEvaluator) nodeWeight(t *query.TermExpr, id int) float64 {
	m, ok := ev.nodes[t]
	if !ok {
		m = ev.matches[t.Term.String()]
		ev.nodes[t] = m
	}
	return ev.matchWeight(m, id)
}

func (ev *rankEvaluator) matchWeight(m *index.TermMatch, id int) float64 {
	if m == nil {
		return 0
	}
	info := m.Docs[id]
	if info == nil {
		return 0
	}
	return ev.scorer.TermWeight(info.Freq, m.DocFreq(), ev.n, ev.ix.TokenCount(id))
}

// score evaluates the ranking expression for one document. Boolean-like
// operators get the fuzzy-logic interpretation of Example 4 (and=min,
// or=max); list is the weighted average; and-not zeroes documents matching
// the right side; prox contributes only where the proximity holds.
func (ev *rankEvaluator) score(expr query.Expr, id int) float64 {
	switch n := expr.(type) {
	case *query.TermExpr:
		return ev.nodeWeight(n, id) * n.EffectiveWeight()
	case *query.Bin:
		l, r := ev.score(n.L, id), ev.score(n.R, id)
		switch n.Op {
		case query.OpAnd:
			return min(l, r)
		case query.OpOr:
			return max(l, r)
		case query.OpAndNot:
			if r > 0 {
				return 0
			}
			return l
		}
	case *query.Prox:
		l := ev.nodeWeight(n.L, id) * n.L.EffectiveWeight()
		r := ev.nodeWeight(n.R, id) * n.R.EffectiveWeight()
		if l > 0 && r > 0 {
			// Both terms present; approximate the positional check with
			// presence (full positional prox applies in filters). A
			// stricter engine could zero non-adjacent pairs here.
			return min(l, r)
		}
		return 0
	case *query.List:
		sum, wsum := 0.0, 0.0
		for _, it := range n.Items {
			w := 1.0
			if t, ok := it.(*query.TermExpr); ok {
				w = t.EffectiveWeight()
				sum += w * ev.nodeWeight(t, id)
			} else {
				sum += ev.score(it, id)
			}
			wsum += w
		}
		if wsum == 0 {
			return 0
		}
		return sum / wsum
	}
	return 0
}

// statsFor assembles the TermStats reported with a result document.
func (ev *rankEvaluator) statsFor(id int, e *Engine) []result.TermStat {
	var stats []result.TermStat
	for i, t := range ev.terms {
		m := ev.termMatches[i]
		info := m.Docs[id]
		if info == nil {
			continue
		}
		// Reported terms carry field and value but not weights/modifiers.
		rt := query.Term{Field: t.EffectiveField(), Value: t.Value}
		stats = append(stats, result.TermStat{
			Term:    rt,
			Freq:    info.Freq,
			Weight:  round4(ev.matchWeight(m, id)),
			DocFreq: m.DocFreq(),
		})
	}
	return stats
}

// sortableDoc pairs a result with its pre-fetched field sort keys, so
// comparisons never look up documents or format field text. Fetching
// keys through Index.SortKeyValue also makes sorting safe against ids
// with no document behind them — they sort on empty keys instead of
// dereferencing a nil *index.Document inside the comparator.
type sortableDoc struct {
	sd   *scoredDoc
	vals []string // aligned with the non-score sort keys, in key order
}

// sortTop orders results per the query's sort specification and returns
// the best max of them (everything when max <= 0). Selection is a
// bounded heap when the candidate set exceeds max — O(n log max), the
// only sort cost a capped answer ever needs — and a plain sort
// otherwise. The comparator ends with the ascending-id tiebreak, so the
// order is total and deterministic regardless of input order.
func (e *Engine) sortTop(docs []*scoredDoc, keys []query.SortKey, max int) []*scoredDoc {
	// Map each sort key to its slot among the precomputed field values;
	// the score pseudo-field compares scores directly.
	slot := make([]int, len(keys))
	nf := 0
	for i, k := range keys {
		if k.Field == query.ScoreSortField {
			slot[i] = -1
		} else {
			slot[i] = nf
			nf++
		}
	}
	items := make([]sortableDoc, len(docs))
	var flat []string
	if nf > 0 {
		flat = make([]string, len(docs)*nf)
	}
	for di, sd := range docs {
		it := sortableDoc{sd: sd}
		if nf > 0 {
			it.vals = flat[di*nf : (di+1)*nf]
			for i, k := range keys {
				if slot[i] >= 0 {
					it.vals[slot[i]] = e.ix.SortKeyValue(sd.id, k.Field)
				}
			}
		}
		items[di] = it
	}
	before := func(a, b sortableDoc) bool {
		for i, k := range keys {
			var cmp int
			if slot[i] < 0 {
				cmp = compareFloat(a.sd.score, b.sd.score)
			} else {
				cmp = strings.Compare(a.vals[slot[i]], b.vals[slot[i]])
			}
			if cmp == 0 {
				continue
			}
			if k.Ascending {
				return cmp < 0
			}
			return cmp > 0
		}
		return a.sd.id < b.sd.id // stable tiebreak
	}
	if max > 0 && len(items) > max {
		h := topk.New(max, before)
		for _, it := range items {
			h.Push(it)
		}
		items = h.Sorted()
	} else {
		sort.Slice(items, func(i, j int) bool { return before(items[i], items[j]) })
	}
	out := docs[:0]
	for _, it := range items {
		out = append(out, it.sd)
	}
	return out
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// answerDoc builds the SQRDocument payload for one scored document.
func (e *Engine) answerDoc(doc *index.Document, sd *scoredDoc, q *query.Query) *result.Document {
	d := &result.Document{
		RawScore:  round4(sd.score),
		TermStats: sd.stats,
		Size:      doc.SizeKB(),
		Count:     e.ix.TokenCount(sd.id),
		Fields:    map[attr.Field]string{},
	}
	for _, f := range q.EffectiveAnswerFields() {
		if v := answerFieldValue(doc, f); v != "" {
			d.Fields[f] = v
		}
	}
	return d
}

func answerFieldValue(d *index.Document, f attr.Field) string {
	if attr.Normalize(f) == attr.FieldDateLastModified {
		if d.Date.IsZero() {
			return ""
		}
		return d.Date.UTC().Format("2006-01-02")
	}
	return d.FieldText(f)
}

func round4(f float64) float64 {
	return float64(int64(f*10000+0.5)) / 10000
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
