package engine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: every scorer's finalized scores stay within its advertised
// ScoreRange — the invariant metasearchers depend on when normalizing.
func TestQuickScorerRangeHonesty(t *testing.T) {
	scorers := []Scorer{TFIDF{}, TopK{}, RawTF{}}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, s := range scorers {
			lo, hi := s.Range()
			n := 1 + r.Intn(10000)
			docLen := 1 + r.Intn(5000)
			df := 1 + r.Intn(n)
			tf := r.Intn(200)
			w := s.TermWeight(tf, df, n, docLen)
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return false
			}
			maxScore := w + r.Float64()*10
			got := s.Finalize(w, maxScore)
			if got < lo || got > hi || math.IsNaN(got) {
				t.Logf("%s: Finalize(%g, %g) = %g outside [%g, %g]", s.ID(), w, maxScore, got, lo, hi)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestScorerEdgeCases(t *testing.T) {
	for _, s := range []Scorer{TFIDF{}, TopK{}, RawTF{}} {
		if w := s.TermWeight(0, 10, 100, 50); w != 0 {
			t.Errorf("%s: zero tf weight = %g", s.ID(), w)
		}
		if got := s.Finalize(0, 0); got != 0 {
			t.Errorf("%s: Finalize(0,0) = %g", s.ID(), got)
		}
	}
	if (TFIDF{}).TermWeight(5, 0, 100, 50) != 0 {
		t.Error("TFIDF with zero df should be 0")
	}
	// TopK pins the maximum to exactly 1000.
	if got := (TopK{}).Finalize(7.5, 7.5); got != 1000 {
		t.Errorf("TopK top = %g", got)
	}
	// TFIDF monotone in tf.
	a := (TFIDF{}).TermWeight(1, 10, 1000, 100)
	b := (TFIDF{}).TermWeight(10, 10, 1000, 100)
	if b <= a {
		t.Errorf("TFIDF not monotone in tf: %g vs %g", a, b)
	}
	// Rarer terms weigh more.
	rare := (TFIDF{}).TermWeight(3, 2, 1000, 100)
	common := (TFIDF{}).TermWeight(3, 500, 1000, 100)
	if rare <= common {
		t.Errorf("TFIDF idf inverted: rare %g vs common %g", rare, common)
	}
	// IDs are distinct (they are RankingAlgorithmIDs).
	ids := map[string]bool{}
	for _, s := range []Scorer{TFIDF{}, TopK{}, RawTF{}} {
		if ids[s.ID()] {
			t.Errorf("duplicate scorer ID %s", s.ID())
		}
		ids[s.ID()] = true
	}
	// RawTF is honestly unbounded.
	if _, hi := (RawTF{}).Range(); !math.IsInf(hi, 1) {
		t.Errorf("RawTF max = %g, want +Inf", hi)
	}
}
