package engine

import (
	"strings"
	"testing"

	"starts/internal/attr"
	"starts/internal/index"
	"starts/internal/query"
)

// TestRelevanceFeedback exercises the Document-text field (§4.1.1): a
// query passing a whole document ranks similar documents first, and the
// echoed actual query shows the expansion.
func TestRelevanceFeedback(t *testing.T) {
	e := newEngine(t, NewVectorConfig())
	// The feedback document resembles doc 1 (distributed databases).
	feedback := "distributed systems and distributed databases working together on distributed query plans"
	q := query.New()
	r, err := query.ParseRanking(`list((document-text ` + quoted(feedback) + `))`)
	if err != nil {
		t.Fatal(err)
	}
	q.Ranking = r
	res, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Documents) == 0 {
		t.Fatal("feedback query returned nothing")
	}
	if res.Documents[0].Linkage() != "http://x/lagunita.ps" {
		t.Errorf("top doc = %s, want the distributed-databases paper", res.Documents[0].Linkage())
	}
	// The actual ranking is the expanded list, not the raw document.
	actual := res.ActualRanking.String()
	if strings.Contains(actual, "document-text") {
		t.Errorf("actual query still contains document-text: %s", actual)
	}
	if !strings.Contains(actual, "distribut") {
		t.Errorf("expansion missing dominant term: %s", actual)
	}
	// Expanded terms carry weights in (0,1].
	for _, term := range res.ActualRanking.Terms(nil) {
		w := term.EffectiveWeight()
		if w <= 0 || w > 1 {
			t.Errorf("expansion weight %g out of range for %s", w, term)
		}
	}
}

func quoted(s string) string { return `"` + s + `"` }

func TestRelevanceFeedbackEdgeCases(t *testing.T) {
	e := newEngine(t, NewVectorConfig())
	// A feedback document with no collection vocabulary expands to
	// nothing; the query collapses to an empty result.
	q := query.New()
	r, err := query.ParseRanking(`list((document-text "zzz qqq www entirely unseen vocabulary"))`)
	if err != nil {
		t.Fatal(err)
	}
	q.Ranking = r
	res, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActualRanking != nil || len(res.Documents) != 0 {
		t.Errorf("unmatchable feedback: actual %v docs %d", res.ActualRanking, len(res.Documents))
	}
	// Document-text in a filter has no Boolean semantics and is dropped.
	q2 := query.New()
	f, err := query.ParseFilter(`((document-text "distributed databases") and (author "Ullman"))`)
	if err != nil {
		t.Fatal(err)
	}
	q2.Filter = f
	res2, err := e.Search(q2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.ActualFilter.String() != `(author "Ullman")` {
		t.Errorf("actual filter = %s", res2.ActualFilter)
	}
	// Engines without document-text support drop the term entirely.
	cfg := NewVectorConfig()
	cfg.Fields = []attr.Field{attr.FieldBodyOfText}
	e2 := newEngine(t, cfg)
	q3 := query.New()
	q3.Ranking, _ = query.ParseRanking(`list((document-text "distributed databases") (body-of-text "deductive"))`)
	res3, err := e2.Search(q3)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res3.ActualRanking.String(), "distribut") {
		t.Errorf("unsupported document-text survived: %s", res3.ActualRanking)
	}
}

// TestFreeFormText exercises the Free-form-text field (§4.1.1): an
// informed metasearcher can pass queries in the source's native language.
func TestFreeFormText(t *testing.T) {
	cfg := NewVectorConfig()
	cfg.Native = SubstringNative
	e := newEngine(t, cfg)
	q := query.New()
	f, err := query.ParseFilter(`(free-form-text "object-oriented database")`)
	if err != nil {
		t.Fatal(err)
	}
	q.Filter = f
	res, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Documents) != 1 || res.Documents[0].Linkage() != "http://x/dood.ps" {
		t.Errorf("native query results = %d", len(res.Documents))
	}
	// The actual query keeps the native term: the source did evaluate it.
	if !strings.Contains(res.ActualFilter.String(), "free-form-text") {
		t.Errorf("actual filter = %s", res.ActualFilter)
	}

	// Without a native handler the field is unsupported and the term is
	// dropped.
	e2 := newEngine(t, NewVectorConfig())
	if e2.SupportsField(attr.FieldFreeFormText) {
		t.Error("free-form-text supported without a handler")
	}
	res2, err := e2.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if res2.ActualFilter != nil {
		t.Errorf("actual filter = %s, want dropped", res2.ActualFilter)
	}
}

func TestSubstringNative(t *testing.T) {
	e := newEngine(t, NewVectorConfig())
	set, err := SubstringNative("OBJECT-ORIENTED", e.Index())
	if err != nil || len(set) != 1 {
		t.Errorf("SubstringNative = %v, %v", set, err)
	}
	empty, err := SubstringNative("   ", e.Index())
	if err != nil || len(empty) != 0 {
		t.Errorf("blank native query = %v, %v", empty, err)
	}
}

// TestNativeErrorPropagates ensures a failing native handler surfaces.
func TestNativeErrorPropagates(t *testing.T) {
	cfg := NewVectorConfig()
	cfg.Native = func(string, *index.Index) (map[int]bool, error) {
		return nil, errTest
	}
	e := newEngine(t, cfg)
	q := query.New()
	q.Filter, _ = query.ParseFilter(`(free-form-text "whatever")`)
	if _, err := e.Search(q); err == nil {
		t.Error("native error swallowed")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "native backend down" }
