package engine

import (
	"starts/internal/attr"
	"starts/internal/index"
	"starts/internal/query"
)

// rewrite reduces an expression to the parts this engine supports — the
// "actual query" of Section 4.2. Terms with unsupported fields are
// dropped; unsupported modifiers and illegal field-modifier combinations
// are stripped from terms; terms consisting entirely of stop words are
// dropped when stop-word elimination is in force. Dropping an operand
// collapses its operator:
//
//	and(a, dropped)      -> a
//	or(a, dropped)       -> a
//	and-not(dropped, b)  -> dropped (no positive component survives)
//	and-not(a, dropped)  -> a
//	prox(a, dropped)     -> a
//	list(... dropped ...)-> list without the item
//
// A nil result means the whole expression was dropped. In ranking
// expressions, Document-text terms expand into relevance-feedback lists.
func (e *Engine) rewrite(expr query.Expr, opts index.LookupOptions, ranking bool) query.Expr {
	switch n := expr.(type) {
	case nil:
		return nil
	case *query.TermExpr:
		return e.rewriteTerm(n, opts, ranking)
	case *query.Bin:
		l := e.rewrite(n.L, opts, ranking)
		r := e.rewrite(n.R, opts, ranking)
		switch {
		case l == nil && r == nil:
			return nil
		case l == nil:
			if n.Op == query.OpAndNot {
				// The positive component is gone; the negation alone is
				// not a legal query.
				return nil
			}
			return r
		case r == nil:
			return l
		default:
			return &query.Bin{Op: n.Op, L: l, R: r}
		}
	case *query.Prox:
		l := e.rewrite(n.L, opts, ranking)
		r := e.rewrite(n.R, opts, ranking)
		lt, lok := l.(*query.TermExpr)
		rt, rok := r.(*query.TermExpr)
		switch {
		case lok && rok:
			return &query.Prox{L: lt, R: rt, Dist: n.Dist, Ordered: n.Ordered}
		case lok:
			return lt
		case rok:
			return rt
		default:
			return nil
		}
	case *query.List:
		out := &query.List{}
		for _, it := range n.Items {
			if kept := e.rewrite(it, opts, ranking); kept != nil {
				out.Items = append(out.Items, kept)
			}
		}
		if len(out.Items) == 0 {
			return nil
		}
		return out
	default:
		return nil
	}
}

func (e *Engine) rewriteTerm(te *query.TermExpr, opts index.LookupOptions, ranking bool) query.Expr {
	t := te.Term
	if !e.SupportsField(t.EffectiveField()) {
		return nil
	}
	if t.EffectiveField() == attr.FieldDocumentText {
		// Relevance feedback only has ranking semantics: a passed
		// document cannot be a Boolean condition.
		if !ranking {
			return nil
		}
		return e.expandDocumentText(t, opts)
	}
	// Strip unsupported modifiers and illegal combinations, keeping the
	// term itself.
	var mods []attr.Modifier
	for _, m := range t.Mods {
		if e.SupportsModifier(m) && e.AllowsCombination(t.EffectiveField(), m) {
			mods = append(mods, m)
		}
	}
	t.Mods = mods
	if e.eliminated(t, opts) {
		return nil
	}
	return &query.TermExpr{Term: t}
}

// eliminated reports whether every word of a text term's value is a stop
// word under the effective stop-word policy.
func (e *Engine) eliminated(t query.Term, opts index.LookupOptions) bool {
	if !opts.DropStopWords || e.cfg.Analyzer.Stop == nil {
		return false
	}
	switch t.EffectiveField() {
	case attr.FieldTitle, attr.FieldAuthor, attr.FieldBodyOfText, attr.FieldAny:
	default:
		return false // dates, linkage etc. have no stop words
	}
	toks := e.cfg.Analyzer.Tokenizer.Tokenize(t.Value.Text)
	if len(toks) == 0 {
		return false
	}
	for _, tok := range toks {
		if !e.cfg.Analyzer.Stop.Contains(tok.Text) {
			return false
		}
	}
	return true
}
