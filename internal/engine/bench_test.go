package engine

import (
	"sync"
	"testing"

	"starts/internal/corpus"
	"starts/internal/query"
)

// benchEngines lazily builds, per corpus size, one index shared by a
// fast-path engine and an exhaustive-path engine, so the benchmarks
// compare traversal strategies over identical postings. A single-source
// English corpus keeps the collection untagged — the common case the
// scaling claim is about.
var benchEngines = struct {
	mu    sync.Mutex
	cache map[int][2]*Engine // [fast, exhaustive]
}{cache: map[int][2]*Engine{}}

func benchEnginePair(b *testing.B, numDocs int) (fast, slow *Engine) {
	b.Helper()
	benchEngines.mu.Lock()
	defer benchEngines.mu.Unlock()
	if pair, ok := benchEngines.cache[numDocs]; ok {
		return pair[0], pair[1]
	}
	// A 2000-word topic vocabulary approximates the distinct-term growth
	// of real collections at this scale (Heaps' law): the Zipf tail then
	// contains genuinely rare terms, which a 120-word toy vocabulary
	// cannot produce on a million documents.
	g := corpus.Generate(corpus.Config{
		Seed:          29,
		NumSources:    1,
		DocsPerSource: numDocs,
		BodyWords:     40,
		VocabWords:    2000,
	})
	docs := g.Sources[0].Docs
	cfg := NewVectorConfig()
	fastE, err := NewWithDocs(cfg, docs, 0)
	if err != nil {
		b.Fatal(err)
	}
	exCfg := cfg
	exCfg.Exhaustive = true
	slowE := &Engine{cfg: exCfg, ix: fastE.ix}
	benchEngines.cache[numDocs] = [2]*Engine{fastE, slowE}
	return fastE, slowE
}

// benchQuery is the headline selective ranking: one rare topical term
// (Zipf rank 300, ~1% of documents) — the focused lookup shape block
// pruning rewards most, and the common short real-world query. The
// top-k threshold quickly exceeds what the term's ordinary postings
// can contribute, so traversal visits a few frontier-topping blocks
// and skips the rest at block granularity.
func benchQuery(b *testing.B, maxDocs int) *query.Query {
	return rankingQuery(b, maxDocs, `(body-of-text "datratek0x2")`)
}

// benchMixedQuery mixes term selectivities the way longer real queries
// do: one head-of-Zipf term ("database", in ~97% of documents), one
// mid term ("recovery", ~27%) and the rare term. The head term's
// posting walk dominates at both scales, so growth tracks the head
// list; pruning's win here is the absolute gap to the dense and
// exhaustive paths, not the exponent.
func benchMixedQuery(b *testing.B, maxDocs int) *query.Query {
	return rankingQuery(b, maxDocs,
		`list((body-of-text "database") (body-of-text "recovery") (body-of-text "datratek0x2"))`)
}

// benchDenseQuery is the adversarial worst case: three head terms with
// nearly uniform document frequency, so no term's threshold ever rules
// the others out and pruning degrades toward a block-at-a-time scan.
func benchDenseQuery(b *testing.B, maxDocs int) *query.Query {
	return rankingQuery(b, maxDocs,
		`list((body-of-text "database") (body-of-text "distributed") (body-of-text "optimizer"))`)
}

func rankingQuery(b *testing.B, maxDocs int, ranking string) *query.Query {
	b.Helper()
	q := query.New()
	q.MaxResults = maxDocs
	r, err := query.ParseRanking(ranking)
	if err != nil {
		b.Fatal(err)
	}
	q.Ranking = r
	return q
}

func runSearch(b *testing.B, e *Engine, q *query.Query) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Search(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Documents) == 0 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkEngineScale measures ranked query latency as the corpus grows
// 10x (100k -> 1m documents) under the block-pruned top-k path, across
// the selectivity spectrum — the headline selective lookup, a mixed
// three-term query, and the dense worst case — with the exhaustive
// score-everything path at 1m as the reference the pruning is judged
// against. The tentpole claim: 10x documents must cost well under 4x
// latency at max-docs=20 on the headline shape.
func BenchmarkEngineScale(b *testing.B) {
	q := benchQuery(b, 20)
	mixed := benchMixedQuery(b, 20)
	dense := benchDenseQuery(b, 20)
	for _, scale := range []struct {
		name string
		n    int
	}{{"100k", 100_000}, {"1m", 1_000_000}} {
		fast, _ := benchEnginePair(b, scale.n)
		b.Run("topk-"+scale.name, func(b *testing.B) { runSearch(b, fast, q) })
		b.Run("topk-mixed-"+scale.name, func(b *testing.B) { runSearch(b, fast, mixed) })
		b.Run("topk-dense-"+scale.name, func(b *testing.B) { runSearch(b, fast, dense) })
	}
	b.Run("exhaustive-mixed-1m", func(b *testing.B) {
		_, slow := benchEnginePair(b, 1_000_000)
		runSearch(b, slow, mixed)
	})
}

// BenchmarkEngineSort isolates the answer-assembly sort on a 1m-entry
// scored set: bounded-heap selection of the top 20 versus the full sort
// the engine previously always ran.
func BenchmarkEngineSort(b *testing.B) {
	fast, _ := benchEnginePair(b, 1_000_000)
	n := fast.ix.NumDocs()
	scored := make([]*scoredDoc, n)
	for i := range scored {
		scored[i] = &scoredDoc{id: i, score: float64((i * 2654435761) % 1000)}
	}
	keys := []query.SortKey{{Field: query.ScoreSortField}}
	work := make([]*scoredDoc, n)
	run := func(b *testing.B, max int) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(work, scored)
			fast.sortTop(work, keys, max)
		}
	}
	b.Run("heap-top20-1m", func(b *testing.B) { run(b, 20) })
	b.Run("fullsort-1m", func(b *testing.B) { run(b, 0) })
}
