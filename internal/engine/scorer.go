// Package engine implements STARTS search engines: query execution over an
// inverted index under an engine-specific capability profile and a
// deliberately engine-specific scoring algorithm. The heterogeneity that
// makes metasearching hard — engines that only do Boolean retrieval,
// engines with incompatible score ranges, engines that silently ignore
// query parts they do not support — is modeled explicitly here.
package engine

import (
	"math"
)

// Scorer is a ranking algorithm. Real engines keep theirs secret; STARTS
// only asks that they be named (RankingAlgorithmID) and that their score
// range be published. The three built-in scorers reproduce the
// incompatibilities Section 3.2 describes: scores in [0,1], scores scaled
// so the top document gets 1000, and unbounded raw-frequency scores.
type Scorer interface {
	// ID is the RankingAlgorithmID exported in source metadata.
	ID() string
	// Range returns the score bounds exported as ScoreRange.
	Range() (min, max float64)
	// TermWeight returns the weight of a term in a document given the
	// term frequency, the term's document frequency, the collection size
	// and the document length in tokens.
	TermWeight(tf, df, n, docLen int) float64
	// Finalize maps a combined raw score onto the engine's reported
	// scale; maxScore is the highest combined score in the result set
	// (for top-document-scaled engines).
	Finalize(score, maxScore float64) float64
}

// TFIDF is the "Acme-1" scorer: a tf·idf weighting with length
// normalization whose reported scores are squashed into [0,1).
type TFIDF struct{}

// ID implements Scorer.
func (TFIDF) ID() string { return "Acme-1" }

// Range implements Scorer.
func (TFIDF) Range() (float64, float64) { return 0, 1 }

// TermWeight implements Scorer: (1+ln tf)·ln(1+n/df), normalized by the
// square root of the document length.
func (TFIDF) TermWeight(tf, df, n, docLen int) float64 {
	if tf == 0 || df == 0 || n == 0 {
		return 0
	}
	w := (1 + math.Log(float64(tf))) * math.Log(1+float64(n)/float64(df))
	if docLen > 1 {
		w /= math.Sqrt(float64(docLen))
	}
	return w
}

// Finalize implements Scorer: s/(1+s) squashes into [0,1).
func (TFIDF) Finalize(score, _ float64) float64 {
	if score <= 0 {
		return 0
	}
	return score / (1 + score)
}

// MonotoneWeight declares TermWeight monotone (non-decreasing in tf,
// non-increasing in docLen), enabling block-pruned top-k execution.
func (TFIDF) MonotoneWeight() bool { return true }

// TopK is the "Acme-2" scorer: the same underlying weighting as TFIDF but
// reported on a 0–1000 scale where the best document of every result set
// scores exactly 1000 — the paper's example of why raw scores from
// different sources must not be compared directly.
type TopK struct{}

// ID implements Scorer.
func (TopK) ID() string { return "Acme-2" }

// Range implements Scorer.
func (TopK) Range() (float64, float64) { return 0, 1000 }

// TermWeight implements Scorer.
func (TopK) TermWeight(tf, df, n, docLen int) float64 {
	return TFIDF{}.TermWeight(tf, df, n, docLen)
}

// Finalize implements Scorer.
func (TopK) Finalize(score, maxScore float64) float64 {
	if maxScore <= 0 || score <= 0 {
		return 0
	}
	return 1000 * score / maxScore
}

// MonotoneWeight declares TermWeight monotone, enabling block-pruned
// top-k execution.
func (TopK) MonotoneWeight() bool { return true }

// RawTF is the "Acme-3" scorer: the document score is simply the summed
// term frequency, unbounded above. Its exported ScoreRange is [0,+Inf).
type RawTF struct{}

// ID implements Scorer.
func (RawTF) ID() string { return "Acme-3" }

// Range implements Scorer.
func (RawTF) Range() (float64, float64) { return 0, math.Inf(1) }

// TermWeight implements Scorer.
func (RawTF) TermWeight(tf, _, _, _ int) float64 { return float64(tf) }

// Finalize implements Scorer.
func (RawTF) Finalize(score, _ float64) float64 { return score }

// MonotoneWeight declares TermWeight monotone, enabling block-pruned
// top-k execution.
func (RawTF) MonotoneWeight() bool { return true }
