package engine

import (
	"strings"
	"testing"
	"time"

	"starts/internal/attr"
	"starts/internal/index"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/text"
)

func testDocs() []*index.Document {
	return []*index.Document{
		{
			Linkage: "http://x/dood.ps",
			Title:   "A Comparison Between Deductive and Object-Oriented Database Systems",
			Authors: []string{"Jeffrey D. Ullman"},
			Body:    "Deductive databases and object-oriented databases compared. Databases everywhere.",
			Date:    time.Date(1995, 6, 1, 0, 0, 0, 0, time.UTC),
		},
		{
			Linkage: "http://x/lagunita.ps",
			Title:   "Database Research: Achievements and Opportunities",
			Authors: []string{"Avi Silberschatz", "Jeff Ullman"},
			Body:    "Distributed databases and distributed systems. Distributed distributed distributed.",
			Date:    time.Date(1996, 9, 15, 0, 0, 0, 0, time.UTC),
		},
		{
			Linkage: "http://x/gloss.ps",
			Title:   "The Effectiveness of GlOSS",
			Authors: []string{"Luis Gravano"},
			Body:    "Text database discovery with compact collection summaries.",
			Date:    time.Date(1994, 5, 20, 0, 0, 0, 0, time.UTC),
		},
	}
}

func newEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range testDocs() {
		if err := e.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func mkQuery(t *testing.T, filter, ranking string) *query.Query {
	t.Helper()
	q := query.New()
	var err error
	if filter != "" {
		if q.Filter, err = query.ParseFilter(filter); err != nil {
			t.Fatal(err)
		}
	}
	if ranking != "" {
		if q.Ranking, err = query.ParseRanking(ranking); err != nil {
			t.Fatal(err)
		}
	}
	return q
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Analyzer: text.NewAnalyzer()}); err == nil {
		t.Error("config without scorer accepted")
	}
	if _, err := New(Config{Analyzer: text.NewAnalyzer(), Scorer: TFIDF{}}); err == nil {
		t.Error("config without query parts accepted")
	}
}

func TestVectorSearchRanks(t *testing.T) {
	e := newEngine(t, NewVectorConfig())
	q := mkQuery(t, "", `list((body-of-text "distributed") (body-of-text "databases"))`)
	res, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Documents) == 0 {
		t.Fatal("no results")
	}
	// Doc 1 is saturated with both words; it must rank first.
	if res.Documents[0].Linkage() != "http://x/lagunita.ps" {
		t.Errorf("top doc = %s", res.Documents[0].Linkage())
	}
	// Scores are on the TFIDF [0,1) scale and descending.
	prev := 1.0
	for _, d := range res.Documents {
		if d.RawScore < 0 || d.RawScore >= 1 {
			t.Errorf("score %g outside [0,1)", d.RawScore)
		}
		if d.RawScore > prev {
			t.Error("scores not descending")
		}
		prev = d.RawScore
	}
	// TermStats reported with document frequency.
	top := res.Documents[0]
	if s, ok := top.Stat("distributed"); !ok || s.Freq != 5 || s.DocFreq != 1 {
		t.Errorf("distributed stats = %+v, %v", s, ok)
	}
	if s, ok := top.Stat("databases"); !ok || s.DocFreq != 3 {
		t.Errorf("databases stats = %+v, %v", s, ok)
	}
	if top.Count == 0 || top.Size == 0 {
		t.Errorf("DocCount/DocSize missing: %+v", top)
	}
}

// TestPaperExample7 reproduces Example 7: a source that does not support
// ranking expressions ignores them and echoes the actually processed
// query.
func TestPaperExample7(t *testing.T) {
	e := newEngine(t, NewBooleanConfig())
	q := mkQuery(t,
		`((author "Ullman") and (title stem "databases"))`,
		`list((body-of-text "distributed") (body-of-text "databases"))`)
	res, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActualRanking != nil {
		t.Errorf("ranking should be ignored, actual = %s", res.ActualRanking)
	}
	if res.ActualFilter == nil {
		t.Fatal("filter lost")
	}
	if res.ActualFilter.String() != `((author "Ullman") and (title stem "databases"))` {
		t.Errorf("actual filter = %s", res.ActualFilter)
	}
	// Both Ullman docs match (stemmed title match via the stem modifier on
	// this unstemmed engine).
	if len(res.Documents) != 2 {
		t.Errorf("results = %d", len(res.Documents))
	}
	// Unranked results carry zero scores.
	for _, d := range res.Documents {
		if d.RawScore != 0 {
			t.Errorf("boolean result has score %g", d.RawScore)
		}
	}
}

// TestStopWordDroppedFromActualQuery reproduces the Example 8 narrative:
// a term that is entirely stop words at the source vanishes from the
// actual ranking expression.
func TestStopWordDroppedFromActualQuery(t *testing.T) {
	cfg := NewVectorConfig()
	cfg.Analyzer = &text.Analyzer{
		Tokenizer: cfg.Analyzer.Tokenizer,
		Stop:      text.NewStopList("custom", append([]string{"distributed"}, text.EnglishStopWords().Words()...)),
		Stemming:  true,
	}
	e := newEngine(t, cfg)
	q := mkQuery(t, "", `list((body-of-text "distributed") (body-of-text "databases"))`)
	res, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.ActualRanking.String(); got != `(body-of-text "databases")` &&
		got != `list((body-of-text "databases"))` {
		t.Errorf("actual ranking = %s", got)
	}
	// With DropStopWords off (the engine allows turning off), the term
	// survives.
	q2 := mkQuery(t, "", `list((body-of-text "distributed") (body-of-text "databases"))`)
	q2.DropStopWords = false
	res2, err := e.Search(q2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res2.ActualRanking.String(), "distributed") {
		t.Errorf("actual ranking lost term despite DropStopWords=F: %s", res2.ActualRanking)
	}
}

func TestTurnOffStopWordsUnsupported(t *testing.T) {
	// The Boolean engine cannot turn stop words off; DropStopWords=F is
	// ignored.
	e := newEngine(t, NewBooleanConfig())
	q := mkQuery(t, `(body-of-text "the")`, "")
	q.DropStopWords = false
	res, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActualFilter != nil {
		t.Errorf("stop-word term survived: %s", res.ActualFilter)
	}
}

func TestUnsupportedFieldDropped(t *testing.T) {
	cfg := NewVectorConfig()
	cfg.Fields = []attr.Field{attr.FieldBodyOfText} // no author support
	e := newEngine(t, cfg)
	q := mkQuery(t, `((author "Ullman") and (body-of-text "databases"))`, "")
	res, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActualFilter.String() != `(body-of-text "databases")` {
		t.Errorf("actual filter = %s", res.ActualFilter)
	}
}

func TestUnsupportedModifierStripped(t *testing.T) {
	cfg := NewVectorConfig()
	cfg.Mods = []attr.Modifier{attr.ModEQ} // no phonetic
	e := newEngine(t, cfg)
	q := mkQuery(t, `(author phonetic "Ulman")`, "")
	res, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActualFilter.String() != `(author "Ulman")` {
		t.Errorf("actual filter = %s", res.ActualFilter)
	}
	// The stripped query matches nothing (exact spelling differs).
	if len(res.Documents) != 0 {
		t.Errorf("results = %d", len(res.Documents))
	}
}

func TestIllegalCombinationStripped(t *testing.T) {
	cfg := NewVectorConfig()
	cfg.IllegalCombos = map[attr.Field][]attr.Modifier{attr.FieldAuthor: {attr.ModStem}}
	e := newEngine(t, cfg)
	q := mkQuery(t, `((author stem "Ullman") and (title stem "databases"))`, "")
	res, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	want := `((author "Ullman") and (title stem "databases"))`
	if res.ActualFilter.String() != want {
		t.Errorf("actual filter = %s, want %s", res.ActualFilter, want)
	}
}

func TestAndNotPositiveComponentRequired(t *testing.T) {
	cfg := NewVectorConfig()
	cfg.Fields = []attr.Field{attr.FieldBodyOfText}
	e := newEngine(t, cfg)
	// The positive side uses an unsupported field; the whole and-not
	// collapses rather than leaving a bare negation.
	q := mkQuery(t, `((author "Ullman") and-not (body-of-text "databases"))`, "")
	res, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActualFilter != nil {
		t.Errorf("actual filter = %s, want dropped", res.ActualFilter)
	}
	// With nothing of the query surviving, the result is empty rather
	// than the whole collection.
	if len(res.Documents) != 0 {
		t.Errorf("results = %d, want none", len(res.Documents))
	}
}

func TestFuzzyOperatorSemantics(t *testing.T) {
	// With the RawTF scorer, term weights are term frequencies, making
	// Example 4's arithmetic directly checkable: doc 1 has tf(distributed)=5,
	// tf(databases)=1 in body.
	cfg := NewVectorConfig()
	cfg.Scorer = RawTF{}
	e := newEngine(t, cfg)

	and := mkQuery(t, "", `((body-of-text "distributed") and (body-of-text "databases"))`)
	resAnd, err := e.Search(and)
	if err != nil {
		t.Fatal(err)
	}
	// and = min(5, 1) = 1 for doc 1.
	top := findDoc(t, resAnd, "http://x/lagunita.ps")
	if top.RawScore != 1 {
		t.Errorf("and score = %g, want 1", top.RawScore)
	}

	or := mkQuery(t, "", `((body-of-text "distributed") or (body-of-text "databases"))`)
	resOr, _ := e.Search(or)
	if findDoc(t, resOr, "http://x/lagunita.ps").RawScore != 5 {
		t.Errorf("or score = %g, want 5", findDoc(t, resOr, "http://x/lagunita.ps").RawScore)
	}

	list := mkQuery(t, "", `list((body-of-text "distributed") (body-of-text "databases"))`)
	resList, _ := e.Search(list)
	// list = (5+1)/2 = 3.
	if findDoc(t, resList, "http://x/lagunita.ps").RawScore != 3 {
		t.Errorf("list score = %g, want 3", findDoc(t, resList, "http://x/lagunita.ps").RawScore)
	}

	weighted := mkQuery(t, "", `list(((body-of-text "distributed") 0.7) ((body-of-text "databases") 0.3))`)
	resW, _ := e.Search(weighted)
	// (0.7*5 + 0.3*1) / (0.7+0.3) = 3.8.
	if got := findDoc(t, resW, "http://x/lagunita.ps").RawScore; got != 3.8 {
		t.Errorf("weighted list score = %g, want 3.8", got)
	}

	andnot := mkQuery(t, "", `((body-of-text "distributed") and-not (body-of-text "deductive"))`)
	resAN, _ := e.Search(andnot)
	if findDoc(t, resAN, "http://x/lagunita.ps").RawScore != 5 {
		t.Error("and-not zeroed a clean document")
	}
	for _, d := range resAN.Documents {
		if d.Linkage() == "http://x/dood.ps" && d.RawScore != 0 {
			t.Error("and-not kept a matching-negation document with positive score")
		}
	}
}

func findDoc(t *testing.T, res *result.Results, linkage string) *result.Document {
	t.Helper()
	for _, d := range res.Documents {
		if d.Linkage() == linkage {
			return d
		}
	}
	t.Fatalf("document %s not in results", linkage)
	return nil
}

func TestMinScoreAndMaxResults(t *testing.T) {
	e := newEngine(t, NewVectorConfig())
	q := mkQuery(t, "", `list((any "databases"))`)
	q.MaxResults = 1
	res, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Documents) != 1 {
		t.Errorf("MaxNumberDocuments not enforced: %d", len(res.Documents))
	}
	q2 := mkQuery(t, "", `list((any "databases"))`)
	q2.MinScore = 0.9999
	res2, err := e.Search(q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Documents) != 0 {
		t.Errorf("MinDocumentScore not enforced: %d docs", len(res2.Documents))
	}
}

func TestSortBySpecification(t *testing.T) {
	e := newEngine(t, NewVectorConfig())
	q := mkQuery(t, `(any "databases")`, "")
	q.SortBy = []query.SortKey{{Field: attr.FieldDateLastModified, Ascending: true}}
	res, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Documents) < 2 {
		t.Fatalf("results = %d", len(res.Documents))
	}
	prev := ""
	for _, d := range res.Documents {
		date := d.Fields[attr.FieldDateLastModified]
		_ = date // date may be absent from answer fields; sort happened engine-side
	}
	// Request the date as an answer field to verify the order.
	q.AnswerFields = []attr.Field{attr.FieldDateLastModified}
	res, err = e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	prev = ""
	for _, d := range res.Documents {
		date := d.Fields[attr.FieldDateLastModified]
		if date < prev {
			t.Errorf("dates not ascending: %s after %s", date, prev)
		}
		prev = date
	}
	// Title descending.
	q.SortBy = []query.SortKey{{Field: attr.FieldTitle}}
	res, err = e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	prevT := "zzzz"
	for _, d := range res.Documents {
		title := strings.ToLower(d.Title())
		if title > prevT {
			t.Errorf("titles not descending: %q after %q", title, prevT)
		}
		prevT = title
	}
}

func TestAnswerFields(t *testing.T) {
	e := newEngine(t, NewVectorConfig())
	q := mkQuery(t, `(author "Ullman")`, "")
	q.AnswerFields = []attr.Field{attr.FieldTitle, attr.FieldAuthor, attr.FieldDateLastModified}
	res, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Documents {
		if d.Linkage() == "" {
			t.Error("linkage missing (always returned)")
		}
		if d.Title() == "" || d.Fields[attr.FieldAuthor] == "" || d.Fields[attr.FieldDateLastModified] == "" {
			t.Errorf("requested answer fields missing: %v", d.Fields)
		}
	}
}

func TestTopKScorer(t *testing.T) {
	cfg := NewVectorConfig()
	cfg.Scorer = TopK{}
	e := newEngine(t, cfg)
	q := mkQuery(t, "", `list((any "databases"))`)
	res, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Documents) == 0 {
		t.Fatal("no results")
	}
	// The paper's observation: some engines always score the top document
	// 1000.
	if res.Documents[0].RawScore != 1000 {
		t.Errorf("top score = %g, want 1000", res.Documents[0].RawScore)
	}
}

func TestProxInRanking(t *testing.T) {
	cfg := NewVectorConfig()
	cfg.Scorer = RawTF{}
	e := newEngine(t, cfg)
	q := mkQuery(t, "", `((body-of-text "distributed") prox[1,T] (body-of-text "databases"))`)
	res, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	d := findDoc(t, res, "http://x/lagunita.ps")
	if d.RawScore != 1 { // min(tf=4, tf=1)
		t.Errorf("prox ranking score = %g", d.RawScore)
	}
}

func TestCapabilityPredicates(t *testing.T) {
	e := newEngine(t, NewVectorConfig())
	if !e.SupportsField(attr.FieldTitle) || !e.SupportsField(attr.FieldLinkage) {
		t.Error("required fields must always be supported")
	}
	if e.SupportsField("made-up-field") {
		t.Error("unknown field supported")
	}
	if e.SupportsModifier(attr.ModThesaurus) {
		t.Error("thesaurus supported without a thesaurus")
	}
	if e.SupportsModifier(attr.ModCaseSensitive) {
		t.Error("case-sensitive supported on a folding engine")
	}
	if !e.AllowsCombination(attr.FieldDateLastModified, attr.ModGT) {
		t.Error("date comparison should be legal")
	}
	if e.AllowsCombination(attr.FieldTitle, attr.ModGT) {
		t.Error("> on title should be illegal")
	}
	cfgTh := NewVectorConfig()
	cfgTh.Thesaurus = text.DefaultThesaurus()
	eth := newEngine(t, cfgTh)
	if !eth.SupportsModifier(attr.ModThesaurus) {
		t.Error("thesaurus should be supported with a thesaurus")
	}
	cfgCS := NewVectorConfig()
	cfgCS.Analyzer = &text.Analyzer{Tokenizer: cfgCS.Analyzer.Tokenizer, CaseSensitive: true}
	ecs := newEngine(t, cfgCS)
	if !ecs.SupportsModifier(attr.ModCaseSensitive) {
		t.Error("case-sensitive should be supported on a case-preserving engine")
	}
}

func TestSearchValidatesQuery(t *testing.T) {
	e := newEngine(t, NewVectorConfig())
	if _, err := e.Search(query.New()); err == nil {
		t.Error("query with no expressions accepted")
	}
	q := mkQuery(t, `(date-last-modified > "not a date")`, "")
	if _, err := e.Search(q); err == nil {
		t.Error("unparsable date accepted")
	}
}

func TestFilterPlusRankingComposition(t *testing.T) {
	e := newEngine(t, NewVectorConfig())
	// Example 1 semantics: filter selects, ranking orders.
	q := mkQuery(t,
		`(author "Ullman")`,
		`list((body-of-text "distributed") (body-of-text "databases"))`)
	res, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Documents) != 2 {
		t.Fatalf("results = %d, want the two Ullman docs", len(res.Documents))
	}
	if res.Documents[0].Linkage() != "http://x/lagunita.ps" {
		t.Errorf("ranking did not order the filter set: top = %s", res.Documents[0].Linkage())
	}
}

// TestDefaultAttributeSetResolution: a dc-1 query with "creator" fields
// runs against an engine that only knows Basic-1 author.
func TestDefaultAttributeSetResolution(t *testing.T) {
	e := newEngine(t, NewVectorConfig())
	q := mkQuery(t, `(creator "Ullman")`, "")
	q.DefaultAttrSet = "dc-1"
	res, err := e.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Documents) != 2 {
		t.Errorf("dc-1 creator query matched %d docs, want 2", len(res.Documents))
	}
	// The actual query echoes the resolved Basic-1 field.
	if res.ActualFilter.String() != `(author "Ullman")` {
		t.Errorf("actual filter = %s", res.ActualFilter)
	}
	// The same query under basic-1 treats "creator" as an unknown field
	// and drops it.
	q2 := mkQuery(t, `(creator "Ullman")`, "")
	res2, err := e.Search(q2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.ActualFilter != nil {
		t.Errorf("basic-1 creator survived: %s", res2.ActualFilter)
	}
}
