package peer

import (
	"fmt"

	"starts/internal/result"
	"starts/internal/soif"
)

// Codec translates cached values to and from wire bytes, so the store
// can ship entries between peers. qcache stores decoded values (any);
// the codec is the store's only knowledge of what those values are.
type Codec interface {
	// Encode renders a cached value as bytes.
	Encode(v any) ([]byte, error)
	// Decode parses bytes produced by Encode back into a value.
	Decode(data []byte) (any, error)
}

// ResultsCodec moves *result.Results — the values the per-source conn
// cache (qcache.WrapConn) stores — as the same length-framed SOIF
// stream the query endpoints speak, so a peer cache entry is byte-
// compatible with a source's own query response.
type ResultsCodec struct{}

// Encode implements Codec.
func (ResultsCodec) Encode(v any) ([]byte, error) {
	r, ok := v.(*result.Results)
	if !ok {
		return nil, fmt.Errorf("peer: ResultsCodec cannot encode %T", v)
	}
	return soif.MarshalAll(r.ToSOIF())
}

// Decode implements Codec.
func (ResultsCodec) Decode(data []byte) (any, error) {
	return result.Parse(data)
}

// StringCodec moves plain string values, for tests and for caching
// pre-rendered payloads.
type StringCodec struct{}

// Encode implements Codec.
func (StringCodec) Encode(v any) ([]byte, error) {
	s, ok := v.(string)
	if !ok {
		return nil, fmt.Errorf("peer: StringCodec cannot encode %T", v)
	}
	return []byte(s), nil
}

// Decode implements Codec.
func (StringCodec) Decode(data []byte) (any, error) {
	return string(data), nil
}
