package peer

import (
	"encoding/json"
	"io"
	"net/http"
	"time"

	"starts/internal/qcache"
)

// NewHandler serves a node's ring share over HTTP — the receiving end
// of the peer transport:
//
//	GET    /peer/cache/{key}  -> entry bytes + freshness headers, 404 on miss
//	PUT    /peer/cache/{key}  <- entry bytes + freshness headers
//	DELETE /peer/cache/{key}  -> eviction (404 when absent is still success)
//	GET    /peer/len          -> {"len": N}, this node's local entry count
//
// The handler reads and writes the store's LOCAL backend only, never
// the ring: a request for a key this node does not own is simply a
// local miss, so two peers with disagreeing ring views cannot proxy a
// request around in a loop.
func NewHandler(s *Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /peer/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		e, ok := s.local.Get(key, s.now())
		if !ok {
			http.Error(w, "no entry", http.StatusNotFound)
			return
		}
		data, err := s.codec.Encode(e.Val)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set(HeaderExpires, e.Expires.Format(time.RFC3339Nano))
		w.Header().Set(HeaderStaleUntil, e.StaleUntil.Format(time.RFC3339Nano))
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(data)
	})
	mux.HandleFunc("PUT /peer/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		expires, err1 := time.Parse(time.RFC3339Nano, r.Header.Get(HeaderExpires))
		staleUntil, err2 := time.Parse(time.RFC3339Nano, r.Header.Get(HeaderStaleUntil))
		if err1 != nil || err2 != nil {
			http.Error(w, "missing or malformed freshness headers", http.StatusBadRequest)
			return
		}
		data, err := io.ReadAll(io.LimitReader(r.Body, maxEntryBytes+1))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if len(data) > maxEntryBytes {
			http.Error(w, "entry too large", http.StatusRequestEntityTooLarge)
			return
		}
		val, err := s.codec.Decode(data)
		if err != nil {
			http.Error(w, "undecodable entry: "+err.Error(), http.StatusBadRequest)
			return
		}
		if s.now().After(staleUntil) {
			// Dead on arrival (slow wire, skewed clock): storing it would
			// only make the next Get prune it.
			w.WriteHeader(http.StatusNoContent)
			return
		}
		s.local.Put(key, qcache.Entry{Val: val, Expires: expires, StaleUntil: staleUntil})
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("DELETE /peer/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		s.local.Evict(r.PathValue("key"))
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /peer/len", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(struct {
			Len int `json:"len"`
		}{Len: s.local.Len()})
	})
	return mux
}

// Handler is NewHandler as a method, the shape server.WithPeerCache
// consumes (the server package sees the store through a structural
// interface so it need not import this package).
func (s *Store) Handler() http.Handler { return NewHandler(s) }

// DebugHandler serves the /debug/peers view: the ring members with
// their shares, breaker states and transport counters as JSON.
func (s *Store) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Snapshot())
	})
}
