package peer

import (
	"fmt"
	"math"
	"testing"
)

func TestRingOwnerDeterministic(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1 := NewRing(peers, 64)
	r2 := NewRing(peers, 64)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("two rings over the same peers disagree on %q", key)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3"}
	r := NewRing(peers, 128)
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		owner := r.Owner(fmt.Sprintf("key-%d", i))
		if owner == "" {
			t.Fatal("non-empty ring returned no owner")
		}
		counts[owner]++
	}
	for _, p := range peers {
		// With 128 virtual nodes the split is coarse but every peer must
		// carry a real share — far from both starvation and hotspot.
		if frac := float64(counts[p]) / keys; frac < 0.15 || frac > 0.55 {
			t.Fatalf("peer %s owns %.2f of keys, want a rough third", p, frac)
		}
	}
}

func TestRingShares(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3"}
	r := NewRing(peers, 128)
	shares := r.Shares()
	var sum float64
	for _, p := range peers {
		if shares[p] <= 0 {
			t.Fatalf("peer %s owns no hash space", p)
		}
		sum += shares[p]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", sum)
	}
}

func TestRingStability(t *testing.T) {
	// Consistent hashing's point: adding one peer moves only a minority
	// of the key space.
	before := NewRing([]string{"http://a:1", "http://b:2", "http://c:3"}, 64)
	after := NewRing([]string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}, 64)
	const keys = 2000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		if before.Owner(key) != after.Owner(key) {
			moved++
		}
	}
	// Ideal churn is 1/4; allow generous slack for hash variance, but a
	// modulo-style rehash (~3/4 moved) must fail.
	if frac := float64(moved) / keys; frac > 0.45 {
		t.Fatalf("adding one peer moved %.2f of keys, want ~0.25", frac)
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 64)
	if got := empty.Owner("anything"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	if len(empty.Shares()) != 0 {
		t.Fatal("empty ring has shares")
	}
	single := NewRing([]string{"http://only:1"}, 64)
	if got := single.Owner("anything"); got != "http://only:1" {
		t.Fatalf("single-peer ring owner = %q", got)
	}
	if s := single.Shares()["http://only:1"]; math.Abs(s-1) > 1e-9 {
		t.Fatalf("single peer share = %v, want 1", s)
	}
	dedup := NewRing([]string{"http://a:1", "http://a:1", ""}, 8)
	if len(dedup.Peers()) != 1 {
		t.Fatalf("ring kept duplicate/empty peers: %v", dedup.Peers())
	}
}
