package peer

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"starts/internal/obs"
	"starts/internal/qcache"
	"starts/internal/resilient"
)

// Wire headers carrying an entry's freshness bounds between peers
// (RFC3339Nano, absolute times — the tier assumes loosely synchronized
// clocks, the same assumption HTTP's Expires makes).
const (
	HeaderExpires    = "X-Starts-Expires"
	HeaderStaleUntil = "X-Starts-Stale-Until"
)

// Defaults for the peer transport. The timeout is deliberately tight:
// a peer cache hit is only worth having when it beats re-running the
// fan-out, and a dead peer must cost a bounded slice of the request
// budget before the local fall-through takes over.
const (
	DefaultTimeout          = 150 * time.Millisecond
	DefaultFailureThreshold = 3
	DefaultCooldown         = 5 * time.Second
)

// maxEntryBytes bounds a peer cache response/request body.
const maxEntryBytes = 64 << 20

// Config configures a Store.
type Config struct {
	// Self is this node's own peer URL as the OTHER peers address it
	// (scheme://host:port, no trailing slash). Keys owned by Self stay in
	// the local store. Empty means this node serves no ring share (a
	// pure client of the tier, e.g. a one-shot metasearch run).
	Self string
	// Peers lists the ring members' base URLs. Self is added implicitly
	// when non-empty; an empty ring makes every operation local.
	Peers []string
	// Replicas is the virtual-node count per peer (<= 0 takes
	// DefaultReplicas): more replicas, smoother ownership split.
	Replicas int
	// Timeout bounds every remote Get/Put/Evict, dial included (<= 0
	// takes DefaultTimeout). On expiry the operation falls through to
	// the local store.
	Timeout time.Duration
	// Codec moves values across the wire; nil takes ResultsCodec (the
	// per-source conn cache's value type).
	Codec Codec
	// Local is the fall-through store holding this node's ring share and
	// every entry that could not reach its owner; nil builds the default
	// sharded LRU sized by LocalMaxEntries.
	Local qcache.Store
	// LocalMaxEntries sizes the default local store (see
	// qcache.NewLRUStore); ignored when Local is set.
	LocalMaxEntries int
	// FailureThreshold and Cooldown tune the per-peer circuit breaker
	// (defaults DefaultFailureThreshold / DefaultCooldown): after
	// FailureThreshold consecutive transport failures a peer is skipped
	// outright — straight to the local store — until a half-open probe
	// succeeds after Cooldown.
	FailureThreshold int
	Cooldown         time.Duration
	// Client overrides the HTTP client; nil builds one with a keep-alive
	// transport tuned like the STARTS client's (a handful of peers, many
	// small requests).
	Client *http.Client
	// Metrics receives the starts_peer_* families; nil allocates a
	// private registry.
	Metrics *obs.Registry
	// Now overrides the clock, for tests.
	Now func() time.Time
}

// Store implements qcache.Store over the peer ring: the consistent-hash
// owner of each key serves Get/Put/Evict via its /peer/cache endpoints,
// with bounded timeouts, a per-peer circuit breaker, and fall-through
// to the local store on any peer error — a dead peer degrades the tier
// to local-only for its share of the key space, it never stalls a
// request. Len reports the cluster-wide live entry count (local plus
// every reachable peer).
type Store struct {
	ring    *Ring
	self    string
	local   qcache.Store
	codec   Codec
	breaker *resilient.Breaker
	hc      *http.Client
	timeout time.Duration
	now     func() time.Time

	metrics *obs.Registry
	remotes map[string]*peerStats // keyed by peer URL; fixed at build
}

// peerStats is one remote peer's live counters, mirrored from the
// registry families for the /debug/peers snapshot (the labeled registry
// names are not enumerable by peer).
type peerStats struct {
	hits, misses, puts, errors, fallbacks atomic.Int64
	rtt                                   *obs.Histogram
}

var _ qcache.Store = (*Store)(nil)

// New builds the peer store. With no peers configured it degrades to
// exactly its local store (the tier is opt-in by construction).
func New(cfg Config) *Store {
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.Codec == nil {
		cfg.Codec = ResultsCodec{}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Local == nil {
		cfg.Local = qcache.NewLRUStore(cfg.LocalMaxEntries, 0, cfg.Metrics)
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = DefaultFailureThreshold
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultCooldown
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{
			// No client-wide timeout: every request carries its own
			// context deadline (the store's Timeout).
			Transport: &http.Transport{
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 32,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	members := cfg.Peers
	if cfg.Self != "" {
		members = append(append([]string(nil), cfg.Peers...), cfg.Self)
	}
	s := &Store{
		ring:  NewRing(members, cfg.Replicas),
		self:  cfg.Self,
		local: cfg.Local,
		codec: cfg.Codec,
		breaker: resilient.NewBreaker(resilient.BreakerConfig{
			FailureThreshold: cfg.FailureThreshold,
			Cooldown:         cfg.Cooldown,
			Metrics:          cfg.Metrics,
			Now:              cfg.Now,
		}),
		hc:      cfg.Client,
		timeout: cfg.Timeout,
		now:     cfg.Now,
		metrics: cfg.Metrics,
		remotes: map[string]*peerStats{},
	}
	shares := s.ring.Shares()
	for _, p := range s.ring.Peers() {
		cfg.Metrics.Gauge(obs.L(obs.MPeerRingShare, "peer", p)).
			Set(int64(shares[p]*1000 + 0.5))
		if p != s.self {
			s.remotes[p] = &peerStats{
				rtt: cfg.Metrics.Histogram(obs.L(obs.MPeerRTTSeconds, "peer", p)),
			}
		}
	}
	cfg.Metrics.Gauge(obs.MPeerRingPeers).Set(int64(len(s.ring.Peers())))
	return s
}

// Ring returns the store's consistent-hash ring.
func (s *Store) Ring() *Ring { return s.ring }

// Local returns the fall-through local store (this node's ring share).
func (s *Store) Local() qcache.Store { return s.local }

// owner resolves a key's owning peer; ok is false when the key is this
// node's (or the ring is empty) and the operation should stay local.
func (s *Store) owner(key string) (string, bool) {
	o := s.ring.Owner(key)
	if o == "" || o == s.self {
		return "", false
	}
	return o, true
}

// Get implements qcache.Store. A remote hit whose entry is already past
// its stale window reads as absent, matching the local store's pruning
// contract.
func (s *Store) Get(key string, now time.Time) (qcache.Entry, bool) {
	owner, remote := s.owner(key)
	if !remote {
		return s.local.Get(key, now)
	}
	e, ok, err := s.remoteGet(owner, key, now)
	if err != nil {
		s.fallback(owner)
		return s.local.Get(key, now)
	}
	if !ok {
		s.count(owner, "miss").Inc()
		s.remotes[owner].misses.Add(1)
		return qcache.Entry{}, false
	}
	s.count(owner, "hit").Inc()
	s.remotes[owner].hits.Add(1)
	return e, true
}

// Put implements qcache.Store: the entry lands on its owner, or in the
// local store when the owner is this node or unreachable.
func (s *Store) Put(key string, e qcache.Entry) {
	owner, remote := s.owner(key)
	if !remote {
		s.local.Put(key, e)
		return
	}
	if err := s.remotePut(owner, key, e); err != nil {
		s.fallback(owner)
		s.local.Put(key, e)
		return
	}
	s.metrics.Counter(obs.L(obs.MPeerRemotePuts, "peer", owner)).Inc()
	s.remotes[owner].puts.Add(1)
}

// Evict implements qcache.Store. The local store is always evicted too:
// it may hold a fall-through copy written while the owner was down.
func (s *Store) Evict(key string) {
	if owner, remote := s.owner(key); remote {
		if err := s.remoteEvict(owner, key); err != nil {
			s.fallback(owner)
		}
	}
	s.local.Evict(key)
}

// Len implements qcache.Store, reporting the cluster-wide live entry
// count: the local store plus every reachable peer's (unreachable peers
// contribute nothing — Len is diagnostic, not transactional).
func (s *Store) Len() int {
	n := s.local.Len()
	for _, p := range s.ring.Peers() {
		if p == s.self {
			continue
		}
		if remote, err := s.remoteLen(p); err == nil {
			n += remote
		} else {
			s.fallback(p)
		}
	}
	return n
}

// count returns the hit/miss counter for one peer.
func (s *Store) count(peer, outcome string) *obs.Counter {
	name := obs.MPeerRemoteMisses
	if outcome == "hit" {
		name = obs.MPeerRemoteHits
	}
	return s.metrics.Counter(obs.L(name, "peer", peer))
}

// fallback counts one degrade-to-local event for a peer.
func (s *Store) fallback(peer string) {
	s.metrics.Counter(obs.L(obs.MPeerFallbacks, "peer", peer)).Inc()
	if ps := s.remotes[peer]; ps != nil {
		ps.fallbacks.Add(1)
	}
}

// errKindBreaker marks operations refused locally by an open circuit —
// no wire traffic happened at all.
const errKindBreaker = "breaker-open"

// fail records one typed peer error into the metrics and the breaker.
// kind classifies the failure: "transport" (dial/timeout/read),
// "status" (an HTTP error status), "decode" (a body that would not
// parse) or errKindBreaker. Breaker-refused operations are not Recorded
// — no outcome was observed.
func (s *Store) fail(peer, op, kind string, err error) error {
	s.metrics.Counter(obs.L(obs.MPeerErrors, "peer", peer, "op", op, "kind", kind)).Inc()
	if ps := s.remotes[peer]; ps != nil {
		ps.errors.Add(1)
	}
	if kind != errKindBreaker {
		s.breaker.Record(peer, err)
	}
	return err
}

// roundTrip runs one breaker-gated, timeout-bounded request against a
// peer, observing its RTT. The caller owns resp.Body on a nil error.
func (s *Store) roundTrip(peer, op, method, u string, body []byte, hdr http.Header) (*http.Response, error) {
	if !s.breaker.Allow(peer) {
		return nil, s.fail(peer, op, errKindBreaker, fmt.Errorf("peer: %s circuit open", peer))
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return nil, s.fail(peer, op, "transport", err)
	}
	for k, v := range hdr {
		req.Header[k] = v
	}
	start := s.now()
	resp, err := s.hc.Do(req) //nolint:bodyclose // the caller closes on success
	if ps := s.remotes[peer]; ps != nil {
		ps.rtt.Observe(s.now().Sub(start))
	}
	if err != nil {
		return nil, s.fail(peer, op, "transport", err)
	}
	// Read the whole body under the request's timeout, so a peer that
	// accepted the request but stalled mid-body still costs at most
	// Timeout.
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes))
	_, _ = io.Copy(io.Discard, resp.Body) // drain for keep-alive reuse
	_ = resp.Body.Close()
	if err != nil {
		return nil, s.fail(peer, op, "transport", err)
	}
	resp.Body = io.NopCloser(bytes.NewReader(data))
	return resp, nil
}

// cacheURL is a key's endpoint on a peer.
func cacheURL(peer, key string) string {
	return peer + "/peer/cache/" + url.PathEscape(key)
}

// remoteGet fetches key from its owner. ok=false with a nil error is a
// clean remote miss (the owner answered 404).
func (s *Store) remoteGet(peer, key string, now time.Time) (qcache.Entry, bool, error) {
	resp, err := s.roundTrip(peer, "get", http.MethodGet, cacheURL(peer, key), nil, nil)
	if err != nil {
		return qcache.Entry{}, false, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		s.breaker.Record(peer, nil)
		return qcache.Entry{}, false, nil
	default:
		return qcache.Entry{}, false, s.fail(peer, "get", "status",
			fmt.Errorf("peer: GET %s: %s", cacheURL(peer, key), resp.Status))
	}
	expires, err1 := time.Parse(time.RFC3339Nano, resp.Header.Get(HeaderExpires))
	staleUntil, err2 := time.Parse(time.RFC3339Nano, resp.Header.Get(HeaderStaleUntil))
	if err1 != nil || err2 != nil {
		return qcache.Entry{}, false, s.fail(peer, "get", "decode",
			fmt.Errorf("peer: GET %s: bad freshness headers", cacheURL(peer, key)))
	}
	data, _ := io.ReadAll(resp.Body)
	val, err := s.codec.Decode(data)
	if err != nil {
		return qcache.Entry{}, false, s.fail(peer, "get", "decode",
			fmt.Errorf("peer: GET %s: %w", cacheURL(peer, key), err))
	}
	s.breaker.Record(peer, nil)
	e := qcache.Entry{Val: val, Expires: expires, StaleUntil: staleUntil}
	if now.After(e.StaleUntil) {
		// Dead by the caller's clock: absent, per the Store contract.
		return qcache.Entry{}, false, nil
	}
	return e, true, nil
}

// remotePut stores key on its owner.
func (s *Store) remotePut(peer, key string, e qcache.Entry) error {
	data, err := s.codec.Encode(e.Val)
	if err != nil {
		// An unencodable value is a local problem, not the peer's: keep
		// the breaker out of it.
		s.metrics.Counter(obs.L(obs.MPeerErrors, "peer", peer, "op", "put", "kind", "encode")).Inc()
		if ps := s.remotes[peer]; ps != nil {
			ps.errors.Add(1)
		}
		return err
	}
	hdr := http.Header{}
	hdr.Set(HeaderExpires, e.Expires.Format(time.RFC3339Nano))
	hdr.Set(HeaderStaleUntil, e.StaleUntil.Format(time.RFC3339Nano))
	resp, err := s.roundTrip(peer, "put", http.MethodPut, cacheURL(peer, key), data, hdr)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return s.fail(peer, "put", "status",
			fmt.Errorf("peer: PUT %s: %s", cacheURL(peer, key), resp.Status))
	}
	s.breaker.Record(peer, nil)
	return nil
}

// remoteEvict removes key from its owner; a 404 is success.
func (s *Store) remoteEvict(peer, key string) error {
	resp, err := s.roundTrip(peer, "evict", http.MethodDelete, cacheURL(peer, key), nil, nil)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent &&
		resp.StatusCode != http.StatusNotFound {
		return s.fail(peer, "evict", "status",
			fmt.Errorf("peer: DELETE %s: %s", cacheURL(peer, key), resp.Status))
	}
	s.breaker.Record(peer, nil)
	return nil
}

// remoteLen reads a peer's local live entry count.
func (s *Store) remoteLen(peer string) (int, error) {
	resp, err := s.roundTrip(peer, "len", http.MethodGet, peer+"/peer/len", nil, nil)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, s.fail(peer, "len", "status",
			fmt.Errorf("peer: GET %s/peer/len: %s", peer, resp.Status))
	}
	var body struct {
		Len int `json:"len"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, s.fail(peer, "len", "decode", err)
	}
	s.breaker.Record(peer, nil)
	return body.Len, nil
}

// Status is one ring member's row in the /debug/peers snapshot.
type Status struct {
	URL   string  `json:"url"`
	Self  bool    `json:"self"`
	Share float64 `json:"share"` // exactly-owned fraction of the hash space
	// Remote-transport fields; zero for the self row.
	Breaker      string        `json:"breaker,omitempty"`
	RemoteHits   int64         `json:"remote_hits"`
	RemoteMisses int64         `json:"remote_misses"`
	RemotePuts   int64         `json:"remote_puts"`
	Errors       int64         `json:"errors"`
	Fallbacks    int64         `json:"fallbacks"`
	RTTp50       time.Duration `json:"rtt_p50_ns"`
	RTTp99       time.Duration `json:"rtt_p99_ns"`
}

// Snapshot reports every ring member's share, breaker state and
// transport counters, in ring registration order.
func (s *Store) Snapshot() []Status {
	shares := s.ring.Shares()
	out := make([]Status, 0, len(s.ring.Peers()))
	for _, p := range s.ring.Peers() {
		st := Status{URL: p, Self: p == s.self, Share: shares[p]}
		if ps := s.remotes[p]; ps != nil {
			st.Breaker = s.breaker.State(p).String()
			st.RemoteHits = ps.hits.Load()
			st.RemoteMisses = ps.misses.Load()
			st.RemotePuts = ps.puts.Load()
			st.Errors = ps.errors.Load()
			st.Fallbacks = ps.fallbacks.Load()
			st.RTTp50 = ps.rtt.Quantile(0.5)
			st.RTTp99 = ps.rtt.Quantile(0.99)
		}
		out = append(out, st)
	}
	return out
}
