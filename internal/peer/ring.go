// Package peer is the distributed cache tier: a qcache.Store whose key
// space is partitioned across a fleet of metasearcher peers by a
// consistent-hash ring. Each canonical query fingerprint has one owner;
// Get/Put for keys owned by a remote peer travel over persistent
// keep-alive HTTP to the owner's /peer/cache endpoints, while keys this
// node owns (and every operation that cannot reach its owner) land in
// the local store. Singleflight, stale-while-revalidate and the CoDel
// admission gate all live in qcache.Cache IN FRONT of any Store, so the
// tier inherits them without reimplementation — and because every peer
// failure falls through to the local store behind a bounded timeout and
// a per-peer circuit breaker, a dead peer degrades to a local miss,
// never a stall.
//
// This is the ZBroker move applied to the STARTS metasearcher: the
// broker fleet shares one logical result cache so a query answered in
// one region is a remote hit everywhere, and the same ring metadata
// doubles as the routing table for broker hierarchies.
package peer

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per peer. More replicas,
// smoother ownership split (the classic consistent-hashing trade: ring
// build cost and memory against variance between peers).
const DefaultReplicas = 64

// Ring maps keys to their owning peer with consistent hashing: each
// peer is hashed onto the ring at Replicas virtual points, and a key
// belongs to the first virtual node clockwise from its own hash.
// Adding or removing one peer moves only ~1/N of the key space. A Ring
// is immutable after construction and safe for concurrent use.
type Ring struct {
	replicas int
	peers    []string
	hashes   []uint64          // sorted virtual-node positions
	owners   map[uint64]string // virtual-node position -> peer
}

// NewRing builds a ring over the given peers (deduplicated, order
// preserved) with the given virtual-node count per peer (<= 0 takes
// DefaultReplicas). An empty peer list yields an empty ring whose Owner
// is always "".
func NewRing(peers []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{replicas: replicas, owners: map[uint64]string{}}
	seen := map[string]bool{}
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		r.peers = append(r.peers, p)
		for i := 0; i < replicas; i++ {
			h := hash64(p + "#" + strconv.Itoa(i))
			// On the vanishingly rare vnode collision the first peer
			// keeps the slot; the ring stays consistent either way.
			if _, taken := r.owners[h]; taken {
				continue
			}
			r.owners[h] = p
			r.hashes = append(r.hashes, h)
		}
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
	return r
}

// Owner returns the peer owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.hashes) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap: past the last virtual node, the first one owns it
	}
	return r.owners[r.hashes[i]]
}

// Peers returns the ring members in registration order.
func (r *Ring) Peers() []string {
	return append([]string(nil), r.peers...)
}

// Replicas returns the virtual-node count per peer.
func (r *Ring) Replicas() int { return r.replicas }

// Shares returns each peer's exactly-owned fraction of the hash space,
// computed from the arc lengths between consecutive virtual nodes. The
// fractions sum to 1 on a non-empty ring; with enough replicas each
// peer's share approaches 1/N.
func (r *Ring) Shares() map[string]float64 {
	shares := make(map[string]float64, len(r.peers))
	if len(r.hashes) == 0 {
		return shares
	}
	if len(r.hashes) == 1 {
		// A single virtual node owns the whole space; the arc arithmetic
		// below would wrap to zero.
		shares[r.owners[r.hashes[0]]] = 1
		return shares
	}
	const space = float64(1<<63) * 2 // 2^64 as float64
	for i, h := range r.hashes {
		// The arc ENDING at virtual node i belongs to i's peer (keys hash
		// into the arc and search clockwise to i).
		var arc uint64
		if i == 0 {
			arc = r.hashes[0] + (^r.hashes[len(r.hashes)-1] + 1) // wraps around zero
		} else {
			arc = h - r.hashes[i-1]
		}
		shares[r.owners[h]] += float64(arc) / space
	}
	return shares
}

// hash64 is 64-bit FNV-1a pushed through a murmur-style finalizer. Raw
// FNV-1a output clusters badly on inputs sharing a long prefix with a
// short varying suffix — exactly what peer URLs with "#i" vnode
// suffixes and sequential query fingerprints look like — which skews
// ring shares far from 1/N. The finalizer's avalanche restores uniform
// placement; no cryptographic strength is needed, only spread.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return fmix64(h.Sum64())
}

// fmix64 is MurmurHash3's 64-bit finalizer: full avalanche, every input
// bit flips each output bit with ~1/2 probability.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// String renders the ring for debug output.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d peers, %d replicas)", len(r.peers), r.replicas)
}
