package peer

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"starts/internal/faulty"
	"starts/internal/obs"
	"starts/internal/qcache"
	"starts/internal/qcache/storetest"
)

// swapHandler lets a test replace a node's HTTP behavior mid-run —
// wrap it in faults, turn it into a brick, heal it — without tearing
// down the listener.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) Set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "not up yet", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// node is one cluster member: its store, its HTTP server and the
// swappable handler between them.
type node struct {
	url   string
	store *Store
	srv   *httptest.Server
	sh    *swapHandler
	reg   *obs.Registry
}

// newCluster starts n peer nodes that know each other; tweak (optional)
// adjusts each node's config before its store is built.
func newCluster(t *testing.T, n int, tweak func(i int, cfg *Config)) []*node {
	t.Helper()
	nodes := make([]*node, n)
	urls := make([]string, n)
	for i := range nodes {
		sh := &swapHandler{}
		srv := httptest.NewServer(sh)
		t.Cleanup(srv.Close)
		nodes[i] = &node{url: srv.URL, srv: srv, sh: sh, reg: obs.NewRegistry()}
		urls[i] = srv.URL
	}
	for i, nd := range nodes {
		cfg := Config{
			Self:    nd.url,
			Peers:   urls,
			Codec:   StringCodec{},
			Timeout: 500 * time.Millisecond,
			Metrics: nd.reg,
		}
		if tweak != nil {
			tweak(i, &cfg)
		}
		nd.store = New(cfg)
		nd.sh.Set(NewHandler(nd.store))
	}
	return nodes
}

// keysOwnedBy returns want distinct test keys whose ring owner is the
// given peer.
func keysOwnedBy(t *testing.T, r *Ring, owner string, want int) []string {
	t.Helper()
	var keys []string
	for i := 0; len(keys) < want && i < 100000; i++ {
		k := fmt.Sprintf("owned-key-%d", i)
		if r.Owner(k) == owner {
			keys = append(keys, k)
		}
	}
	if len(keys) < want {
		t.Fatalf("found only %d keys owned by %s", len(keys), owner)
	}
	return keys
}

func live(v string) qcache.Entry {
	now := time.Now()
	return qcache.Entry{Val: v, Expires: now.Add(time.Hour), StaleUntil: now.Add(2 * time.Hour)}
}

// TestClusterConformance runs the shared qcache.Store conformance suite
// against a live two-node cluster, driven from node 0 — the distributed
// backend must be indistinguishable from the local LRU.
func TestClusterConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) qcache.Store {
		return newCluster(t, 2, nil)[0].store
	})
}

// TestClusterCrossPeerVisibility is the tier's point: an entry written
// through any node is readable through every node, because both route
// each key to its one consistent-hash owner.
func TestClusterCrossPeerVisibility(t *testing.T) {
	nodes := newCluster(t, 2, nil)
	a, b := nodes[0], nodes[1]
	const n = 40
	for i := 0; i < n; i++ {
		a.store.Put(fmt.Sprintf("vis-%d", i), live(fmt.Sprintf("v%d", i)))
	}
	for i := 0; i < n; i++ {
		e, ok := b.store.Get(fmt.Sprintf("vis-%d", i), time.Now())
		if !ok {
			t.Fatalf("key vis-%d written via A is invisible via B", i)
		}
		if e.Val != fmt.Sprintf("v%d", i) {
			t.Fatalf("key vis-%d: got %v", i, e.Val)
		}
	}
	// With 40 keys both nodes all but surely own some: B must have read
	// A-owned keys over the wire, and A must have stored B-owned keys
	// remotely.
	if hits := b.reg.Counter(obs.L(obs.MPeerRemoteHits, "peer", a.url)).Value(); hits == 0 {
		t.Fatal("no remote hits recorded on B for A-owned keys")
	}
	if puts := a.reg.Counter(obs.L(obs.MPeerRemotePuts, "peer", b.url)).Value(); puts == 0 {
		t.Fatal("no remote puts recorded on A for B-owned keys")
	}
}

// TestClusterNoRecompute puts a qcache.Cache in front of each node's
// peer store: a query filled through node A's cache is a fresh HIT
// through node B's — the expensive fan-out runs exactly once cluster-wide
// (the acceptance scenario).
func TestClusterNoRecompute(t *testing.T) {
	nodes := newCluster(t, 2, nil)
	cacheA := qcache.New(qcache.Config{Store: nodes[0].store, TTL: time.Minute})
	cacheB := qcache.New(qcache.Config{Store: nodes[1].store, TTL: time.Minute})
	var fills int
	fill := func(context.Context) (any, error) {
		fills++
		return "expensive-answer", nil
	}
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("query-fp-%d", i)
		v, out, err := cacheA.Do(ctx, key, fill)
		if err != nil || out != qcache.Filled || v != "expensive-answer" {
			t.Fatalf("A fill %s: v=%v outcome=%v err=%v", key, v, out, err)
		}
		v, out, err = cacheB.Do(ctx, key, fill)
		if err != nil {
			t.Fatalf("B read %s: %v", key, err)
		}
		if out != qcache.Hit {
			t.Fatalf("B read %s: outcome %v, want hit (no recompute)", key, out)
		}
		if v != "expensive-answer" {
			t.Fatalf("B read %s: %v", key, v)
		}
	}
	if fills != 10 {
		t.Fatalf("fill ran %d times for 10 queries over 2 nodes, want 10", fills)
	}
}

// TestClusterKillMidRun kills one node mid-run: the survivor's
// operations on the dead node's key share degrade to bounded-latency
// local misses with typed transport errors and fallback counts — never
// a stall, never an error surfaced to the cache above.
func TestClusterKillMidRun(t *testing.T) {
	timeout := 150 * time.Millisecond
	nodes := newCluster(t, 2, func(i int, cfg *Config) { cfg.Timeout = timeout })
	a, b := nodes[0], nodes[1]
	keys := keysOwnedBy(t, a.store.Ring(), b.url, 8)

	// Healthy phase: A's writes land on B and read back remotely.
	for i, k := range keys {
		a.store.Put(k, live(fmt.Sprintf("v%d", i)))
	}
	if _, ok := a.store.Get(keys[0], time.Now()); !ok {
		t.Fatal("healthy cluster: B-owned key unreadable from A")
	}

	b.srv.Close() // kill B: connections now fail outright

	for i, k := range keys {
		start := time.Now()
		if _, ok := a.store.Get(k, time.Now()); ok {
			t.Fatalf("key %s still readable after owner died (no local copy exists)", k)
		}
		if d := time.Since(start); d > timeout+200*time.Millisecond {
			t.Fatalf("degraded Get took %v, want bounded by timeout %v", d, timeout)
		}
		// Writes fall through to the local store and stay readable.
		a.store.Put(k, live(fmt.Sprintf("fallback-%d", i)))
		if e, ok := a.store.Get(k, time.Now()); !ok || e.Val != fmt.Sprintf("fallback-%d", i) {
			t.Fatalf("fall-through write for %s not readable locally: %v/%v", k, e.Val, ok)
		}
	}

	if n := a.reg.Counter(obs.L(obs.MPeerErrors, "peer", b.url, "op", "get", "kind", "transport")).Value(); n == 0 {
		t.Fatal("no typed transport errors counted for dead peer gets")
	}
	if n := a.reg.Counter(obs.L(obs.MPeerFallbacks, "peer", b.url)).Value(); n == 0 {
		t.Fatal("no local fallbacks counted for dead peer")
	}
}

// TestClusterBreakerOpenRecover scripts an outage and a recovery: enough
// consecutive failures open the dead peer's circuit (operations skip the
// wire entirely), and after the cooldown a healthy probe closes it and
// remote hits resume.
func TestClusterBreakerOpenRecover(t *testing.T) {
	cooldown := 50 * time.Millisecond
	nodes := newCluster(t, 2, func(i int, cfg *Config) {
		cfg.FailureThreshold = 2
		cfg.Cooldown = cooldown
		cfg.Timeout = 150 * time.Millisecond
	})
	a, b := nodes[0], nodes[1]
	keys := keysOwnedBy(t, a.store.Ring(), b.url, 4)
	a.store.Put(keys[0], live("survivor"))

	// Outage: B answers 500 to everything.
	b.sh.Set(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	for i := 0; i < 3; i++ {
		a.store.Get(keys[i%len(keys)], time.Now())
	}
	breakerFor := func(url string) string {
		t.Helper()
		for _, st := range a.store.Snapshot() {
			if st.URL == url {
				return st.Breaker
			}
		}
		t.Fatalf("no snapshot row for %s", url)
		return ""
	}
	if st := breakerFor(b.url); st != "open" {
		t.Fatalf("breaker after repeated failures = %q, want open", st)
	}
	// Open circuit: the op is refused locally, typed breaker-open.
	before := a.reg.Counter(obs.L(obs.MPeerErrors, "peer", b.url, "op", "get", "kind", errKindBreaker)).Value()
	a.store.Get(keys[0], time.Now())
	after := a.reg.Counter(obs.L(obs.MPeerErrors, "peer", b.url, "op", "get", "kind", errKindBreaker)).Value()
	if after <= before {
		t.Fatal("open-circuit Get did not count a breaker-open refusal")
	}

	// Recovery: heal B, wait out the cooldown, probe succeeds, hits resume.
	b.sh.Set(NewHandler(b.store))
	time.Sleep(2 * cooldown)
	hitsBefore := a.reg.Counter(obs.L(obs.MPeerRemoteHits, "peer", b.url)).Value()
	if e, ok := a.store.Get(keys[0], time.Now()); !ok || e.Val != "survivor" {
		t.Fatalf("post-recovery Get: %v/%v, want survivor/true", e.Val, ok)
	}
	if st := breakerFor(b.url); st != "closed" {
		t.Fatalf("breaker after successful probe = %q, want closed", st)
	}
	if hits := a.reg.Counter(obs.L(obs.MPeerRemoteHits, "peer", b.url)).Value(); hits <= hitsBefore {
		t.Fatal("remote hits did not resume after recovery")
	}
}

// TestClusterFaultInjection wraps one node's transport in the faulty
// middleware at ~30% error rate plus latency and hangs, and proves the
// survivor's worst-case per-operation wall time stays bounded by the
// configured peer timeout — an unhealthy peer degrades to local misses,
// it cannot stall the request path.
func TestClusterFaultInjection(t *testing.T) {
	timeout := 150 * time.Millisecond
	nodes := newCluster(t, 2, func(i int, cfg *Config) {
		cfg.Timeout = timeout
		// Keep the wire in play for the whole run: errors must degrade
		// per-operation, not latch the peer off.
		cfg.FailureThreshold = 1 << 30
	})
	a, b := nodes[0], nodes[1]
	faultyHandler := faulty.Middleware(faulty.Config{
		Seed:      1,
		ErrorRate: 0.25,
		HangRate:  0.05,
		Latency:   5 * time.Millisecond,
	}, NewHandler(b.store))
	// Bound injected hangs server-side: a hang parks on the request
	// context, which the server never cancels for a PUT whose body went
	// unread, so without a deadline the hung handlers outlive the test
	// and deadlock the httptest cleanup. The client still gives up at
	// the store timeout — this only lets the server side unwind after.
	b.sh.Set(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), time.Second)
		defer cancel()
		faultyHandler.ServeHTTP(w, r.WithContext(ctx))
	}))

	keys := keysOwnedBy(t, a.store.Ring(), b.url, 20)
	var durations []time.Duration
	op := func(f func()) {
		start := time.Now()
		f()
		durations = append(durations, time.Since(start))
	}
	for round := 0; round < 5; round++ {
		for i, k := range keys {
			op(func() { a.store.Put(k, live(fmt.Sprintf("r%d-%d", round, i))) })
			op(func() { a.store.Get(k, time.Now()) })
		}
	}

	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	p99 := durations[len(durations)*99/100]
	// Margin covers scheduling and the injected base latency; the bound
	// that matters is "one timeout", not "hung forever".
	if limit := timeout + 150*time.Millisecond; p99 > limit {
		t.Fatalf("p99 under 25%% faults = %v, want <= %v (timeout %v)", p99, limit, timeout)
	}
	if max := durations[len(durations)-1]; max > 2*timeout+200*time.Millisecond {
		t.Fatalf("worst op under faults = %v, not bounded by timeout %v", max, timeout)
	}

	// The failures must be visible as typed errors and fallbacks, and the
	// successes as remote traffic: the tier degraded, it didn't go dark.
	var errs int64
	for _, kind := range []string{"transport", "status"} {
		for _, op := range []string{"get", "put"} {
			errs += a.reg.Counter(obs.L(obs.MPeerErrors, "peer", b.url, "op", op, "kind", kind)).Value()
		}
	}
	if errs == 0 {
		t.Fatal("25% fault injection produced no typed peer errors")
	}
	if n := a.reg.Counter(obs.L(obs.MPeerFallbacks, "peer", b.url)).Value(); n == 0 {
		t.Fatal("fault injection produced no local fallbacks")
	}
	hits := a.reg.Counter(obs.L(obs.MPeerRemoteHits, "peer", b.url)).Value()
	puts := a.reg.Counter(obs.L(obs.MPeerRemotePuts, "peer", b.url)).Value()
	if hits == 0 || puts == 0 {
		t.Fatalf("no successful remote traffic under partial faults (hits=%d puts=%d)", hits, puts)
	}
}

// TestHandlerRejectsMalformed covers the wire contract's edges: bad
// freshness headers are 400s, dead-on-arrival entries are acknowledged
// but not stored, and a miss is a clean 404.
func TestHandlerRejectsMalformed(t *testing.T) {
	nodes := newCluster(t, 1, nil)
	nd := nodes[0]

	do := func(method, path string, hdr map[string]string, body string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, nd.url+path, bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := do(http.MethodGet, "/peer/cache/absent", nil, ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET absent key: %s, want 404", resp.Status)
	}
	if resp := do(http.MethodPut, "/peer/cache/bad", map[string]string{
		HeaderExpires:    "not-a-time",
		HeaderStaleUntil: time.Now().Add(time.Hour).Format(time.RFC3339Nano),
	}, "v"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT with bad Expires: %s, want 400", resp.Status)
	}
	// Dead on arrival: acknowledged, not stored.
	past := time.Now().Add(-time.Hour)
	if resp := do(http.MethodPut, "/peer/cache/doa", map[string]string{
		HeaderExpires:    past.Format(time.RFC3339Nano),
		HeaderStaleUntil: past.Format(time.RFC3339Nano),
	}, "v"); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT dead entry: %s, want 204", resp.Status)
	}
	if _, ok := nd.store.Local().Get("doa", time.Now()); ok {
		t.Fatal("dead-on-arrival entry was stored")
	}
	if resp := do(http.MethodDelete, "/peer/cache/absent", nil, ""); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE absent key: %s, want 204", resp.Status)
	}
}
