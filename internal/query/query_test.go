package query

import (
	"reflect"
	"strings"
	"testing"

	"starts/internal/attr"
	"starts/internal/lang"
	"starts/internal/soif"
)

// paperExample6 is the SQuery SOIF object of the paper's Example 6, with
// byte lengths recomputed for the canonical double-quote l-string syntax
// (the paper typesets strings as “...” and its printed lengths reflect
// its own line wrapping).
func paperExample6Query(t *testing.T) *Query {
	t.Helper()
	q := New()
	var err error
	q.Filter, err = ParseFilter("((author ``Ullman'') and (title stem ``databases''))")
	if err != nil {
		t.Fatal(err)
	}
	q.Ranking, err = ParseRanking("list((body-of-text ``distributed'') (body-of-text ``databases''))")
	if err != nil {
		t.Fatal(err)
	}
	q.DropStopWords = true
	q.DefaultAttrSet = attr.SetBasic1
	q.DefaultLanguage = lang.EnglishUS
	q.AnswerFields = []attr.Field{attr.FieldTitle, attr.FieldAuthor}
	q.MinScore = 0.5
	q.MaxResults = 10
	return q
}

// TestPaperExample6 is experiment E6: the complete SQuery object round
// trips through SOIF with every attribute of the paper's example intact.
func TestPaperExample6(t *testing.T) {
	q := paperExample6Query(t)
	data, err := q.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	text := string(data)
	for _, want := range []string{
		"@SQuery{",
		"Version{10}: STARTS 1.0",
		`FilterExpression{48}: ((author "Ullman") and (title stem "databases"))`,
		`RankingExpression{61}: list((body-of-text "distributed") (body-of-text "databases"))`,
		"DropStopWords{1}: T",
		"DefaultAttributeSet{7}: basic-1",
		"DefaultLanguage{5}: en-US",
		"AnswerFields{12}: title author",
		"MinDocumentScore{3}: 0.5",
		"MaxNumberDocuments{2}: 10",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("encoded query missing %q:\n%s", want, text)
		}
	}

	back, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if back.Filter.String() != q.Filter.String() || back.Ranking.String() != q.Ranking.String() {
		t.Errorf("expressions changed: %s / %s", back.Filter, back.Ranking)
	}
	if !back.DropStopWords || back.MinScore != 0.5 || back.MaxResults != 10 {
		t.Errorf("result spec changed: %+v", back)
	}
	if !reflect.DeepEqual(back.AnswerFields, q.AnswerFields) {
		t.Errorf("AnswerFields = %v", back.AnswerFields)
	}
}

// TestPaperExample6Verbatim decodes the example as printed in the paper,
// reconstructed with correct byte counts, exercising the “...” quoting.
func TestPaperExample6Verbatim(t *testing.T) {
	filter := "((author ``Ullman'') and (title stem ``databases''))"
	ranking := "list((body-of-text ``distributed'') (body-of-text ``databases''))"
	o := soif.New("SQuery")
	o.Add("Version", "STARTS 1.0")
	o.Add("FilterExpression", filter)
	o.Add("RankingExpression", ranking)
	o.Add("DropStopWords", "T")
	o.Add("DefaultAttributeSet", "basic-1")
	o.Add("DefaultLanguage", "en-US")
	o.Add("AnswerFields", "title author")
	o.Add("MinDocumentScore", "0.5")
	o.Add("MaxNumberDocuments", "10")
	data, err := soif.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse paper text: %v", err)
	}
	if q.Filter == nil || q.Ranking == nil {
		t.Fatal("expressions missing")
	}
	terms := q.Filter.Terms(nil)
	if len(terms) != 2 || terms[0].Value.Text != "Ullman" || !terms[1].HasMod(attr.ModStem) {
		t.Errorf("filter terms = %+v", terms)
	}
}

func TestQueryDefaults(t *testing.T) {
	q := New()
	if !q.DropStopWords || q.DefaultAttrSet != attr.SetBasic1 || q.DefaultLanguage != lang.EnglishUS {
		t.Errorf("defaults = %+v", q)
	}
	if got := q.EffectiveAnswerFields(); len(got) != 2 || got[0] != attr.FieldTitle || got[1] != attr.FieldLinkage {
		t.Errorf("EffectiveAnswerFields = %v", got)
	}
	if got := q.EffectiveSort(); len(got) != 1 || got[0].Field != ScoreSortField || got[0].Ascending {
		t.Errorf("EffectiveSort = %v", got)
	}
	q2 := &Query{}
	if q2.EffectiveMaxResults() != DefaultMaxResults {
		t.Errorf("EffectiveMaxResults = %d", q2.EffectiveMaxResults())
	}
	// Linkage is always in the answer even if not requested.
	q.AnswerFields = []attr.Field{attr.FieldAuthor}
	fields := q.EffectiveAnswerFields()
	if fields[len(fields)-1] != attr.FieldLinkage {
		t.Errorf("linkage not forced into answer: %v", fields)
	}
	// But not duplicated.
	q.AnswerFields = []attr.Field{attr.FieldLinkage, attr.FieldTitle}
	if got := q.EffectiveAnswerFields(); len(got) != 2 {
		t.Errorf("linkage duplicated: %v", got)
	}
}

func TestQueryValidate(t *testing.T) {
	q := New()
	if err := q.Validate(); err == nil {
		t.Error("query with neither expression validated")
	}
	q.Filter, _ = ParseFilter(`(title "x")`)
	if err := q.Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	q.MinScore = -1
	if err := q.Validate(); err == nil {
		t.Error("negative MinScore validated")
	}
	q.MinScore = 0
	q.MaxResults = -5
	if err := q.Validate(); err == nil {
		t.Error("negative MaxResults validated")
	}
}

func TestQueryClone(t *testing.T) {
	q := New()
	q.Filter, _ = ParseFilter(`(title "x")`)
	q.Sources = []string{"Source-1"}
	c := q.Clone()
	c.Sources[0] = "Source-2"
	c.AnswerFields[0] = attr.FieldAuthor
	if q.Sources[0] != "Source-1" || q.AnswerFields[0] != attr.FieldTitle {
		t.Error("Clone shares slices with original")
	}
}

func TestQuerySortKeysAndSources(t *testing.T) {
	q := New()
	q.Filter, _ = ParseFilter(`(title "x")`)
	q.Sources = []string{"Source-1", "Source-2"}
	q.SortBy = []SortKey{{Field: attr.FieldDateLastModified, Ascending: true}, {Field: ScoreSortField}}
	data, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Sources{17}: Source-1 Source-2") {
		t.Errorf("Sources encoding wrong:\n%s", data)
	}
	if !strings.Contains(string(data), "SortByFields{28}: date-last-modified a score d") {
		t.Errorf("SortByFields encoding wrong:\n%s", data)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Sources, q.Sources) || !reflect.DeepEqual(back.SortBy, q.SortBy) {
		t.Errorf("round trip: %+v", back)
	}
}

func TestFromSOIFErrors(t *testing.T) {
	mk := func(attrs ...[2]string) *soif.Object {
		o := soif.New("SQuery")
		o.Add("FilterExpression", `(title "x")`)
		for _, kv := range attrs {
			o.Set(kv[0], kv[1])
		}
		return o
	}
	cases := []*soif.Object{
		soif.New("NotAQuery"),
		mk([2]string{"FilterExpression", "((("}),
		mk([2]string{"RankingExpression", "list()"}),
		mk([2]string{"DropStopWords", "maybe"}),
		mk([2]string{"DefaultLanguage", "not a tag"}),
		mk([2]string{"MinDocumentScore", "high"}),
		mk([2]string{"MaxNumberDocuments", "many"}),
		mk([2]string{"SortByFields", "title"}),
		mk([2]string{"SortByFields", "title sideways"}),
	}
	for i, o := range cases {
		if _, err := FromSOIF(o); err == nil {
			t.Errorf("case %d: FromSOIF succeeded, want error", i)
		}
	}
}

func TestFilterOnlyAndRankingOnlyQueries(t *testing.T) {
	// A query need not contain both expressions.
	q := New()
	q.Filter, _ = ParseFilter(`(author "Ullman")`)
	data, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, _ := Parse(data)
	if back.Ranking != nil {
		t.Error("ranking appeared from nowhere")
	}
	q2 := New()
	q2.Ranking, _ = ParseRanking(`list("databases")`)
	data2, err := q2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back2, _ := Parse(data2)
	if back2.Filter != nil {
		t.Error("filter appeared from nowhere")
	}
}

func BenchmarkSQueryRoundTrip(b *testing.B) {
	q := New()
	q.Filter, _ = ParseFilter(`((author "Ullman") and (title stem "databases"))`)
	q.Ranking, _ = ParseRanking(`list((body-of-text "distributed") (body-of-text "databases"))`)
	q.MinScore = 0.5
	q.MaxResults = 10
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := q.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Parse(data); err != nil {
			b.Fatal(err)
		}
	}
}
