package query

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"starts/internal/attr"
	"starts/internal/lang"
)

func mustFilter(t *testing.T, src string) Expr {
	t.Helper()
	e, err := ParseFilter(src)
	if err != nil {
		t.Fatalf("ParseFilter(%q): %v", src, err)
	}
	return e
}

func mustRanking(t *testing.T, src string) Expr {
	t.Helper()
	e, err := ParseRanking(src)
	if err != nil {
		t.Fatalf("ParseRanking(%q): %v", src, err)
	}
	return e
}

// TestPaperExample1 parses the filter and ranking expressions of the
// paper's Example 1 exactly as typeset (with “...” quoting).
func TestPaperExample1(t *testing.T) {
	f := mustFilter(t, "((author ``Ullman'') and (title ``databases''))")
	bin, ok := f.(*Bin)
	if !ok || bin.Op != OpAnd {
		t.Fatalf("filter = %T %v", f, f)
	}
	l := bin.L.(*TermExpr)
	if l.Field != attr.FieldAuthor || l.Value.Text != "Ullman" {
		t.Errorf("left term = %+v", l.Term)
	}
	r := bin.R.(*TermExpr)
	if r.Field != attr.FieldTitle || r.Value.Text != "databases" {
		t.Errorf("right term = %+v", r.Term)
	}

	rk := mustRanking(t, "list((body-of-text ``distributed'') (body-of-text ``databases''))")
	list, ok := rk.(*List)
	if !ok || len(list.Items) != 2 {
		t.Fatalf("ranking = %T %v", rk, rk)
	}
	for i, want := range []string{"distributed", "databases"} {
		te := list.Items[i].(*TermExpr)
		if te.Field != attr.FieldBodyOfText || te.Value.Text != want {
			t.Errorf("item %d = %+v", i, te.Term)
		}
	}
}

// TestPaperExample2 parses the stem-modifier filter expression.
func TestPaperExample2(t *testing.T) {
	f := mustFilter(t, "(title stem ``databases'')")
	te := f.(*TermExpr)
	if te.Field != attr.FieldTitle || !te.HasMod(attr.ModStem) || te.Value.Text != "databases" {
		t.Errorf("term = %+v", te.Term)
	}
}

// TestPaperExample3 parses the proximity expression (t1 prox[3,T] t2).
func TestPaperExample3(t *testing.T) {
	f := mustFilter(t, "(``digital'' prox[3,T] ``libraries'')")
	p, ok := f.(*Prox)
	if !ok {
		t.Fatalf("filter = %T", f)
	}
	if p.Dist != 3 || !p.Ordered {
		t.Errorf("prox = dist %d ordered %v", p.Dist, p.Ordered)
	}
	if p.L.Value.Text != "digital" || p.R.Value.Text != "libraries" {
		t.Errorf("operands = %v, %v", p.L, p.R)
	}
	// Unordered variant and parenthesized-term operands.
	f2 := mustFilter(t, "((title ``digital'') prox[1,F] (title ``libraries''))")
	p2 := f2.(*Prox)
	if p2.Ordered || p2.L.Field != attr.FieldTitle {
		t.Errorf("prox2 = %+v", p2)
	}
}

// TestPaperExample4 parses both ranking styles: Boolean-like and list.
func TestPaperExample4(t *testing.T) {
	r1 := mustRanking(t, "(``distributed'' and ``databases'')")
	if b, ok := r1.(*Bin); !ok || b.Op != OpAnd {
		t.Fatalf("R1 = %T %v", r1, r1)
	}
	r2 := mustRanking(t, "list(``distributed'' ``databases'')")
	if l, ok := r2.(*List); !ok || len(l.Items) != 2 {
		t.Fatalf("R2 = %T %v", r2, r2)
	}
}

// TestPaperExample5 parses weighted ranking terms.
func TestPaperExample5(t *testing.T) {
	r := mustRanking(t, "list((``distributed'' 0.7) (``databases'' 0.3))")
	l := r.(*List)
	t0 := l.Items[0].(*TermExpr)
	t1 := l.Items[1].(*TermExpr)
	if t0.Weight != 0.7 || t1.Weight != 0.3 {
		t.Errorf("weights = %g, %g", t0.Weight, t1.Weight)
	}
	if t0.EffectiveWeight() != 0.7 {
		t.Errorf("EffectiveWeight = %g", t0.EffectiveWeight())
	}
	if (Term{}).EffectiveWeight() != 1 {
		t.Error("unset weight should default to 1")
	}
}

func TestParseComparisons(t *testing.T) {
	f := mustFilter(t, `(date-last-modified > "1996-08-01")`)
	te := f.(*TermExpr)
	if te.Field != attr.FieldDateLastModified || te.Comparison() != attr.ModGT {
		t.Errorf("term = %+v comparison %s", te.Term, te.Comparison())
	}
	// The paper also spells the field "Date/time-last-modified".
	f2 := mustFilter(t, `(Date/time-last-modified >= "1996-08-01")`)
	if f2.(*TermExpr).Field != attr.FieldDateLastModified {
		t.Errorf("long spelling not normalized: %+v", f2)
	}
	for _, cmp := range []string{"<", "<=", "=", ">=", ">", "!="} {
		src := `(date-last-modified ` + cmp + ` "1996-01-01")`
		te := mustFilter(t, src).(*TermExpr)
		if string(te.Comparison()) != cmp {
			t.Errorf("comparison %q parsed as %q", cmp, te.Comparison())
		}
	}
	// Default comparison is "=".
	if mustFilter(t, `(title "x")`).(*TermExpr).Comparison() != attr.ModEQ {
		t.Error("default comparison should be =")
	}
}

func TestParseLanguageQualified(t *testing.T) {
	f := mustFilter(t, `(body-of-text [en-US "behavior"])`)
	te := f.(*TermExpr)
	if te.Value.Tag != lang.EnglishUS || te.Value.Text != "behavior" {
		t.Errorf("l-string = %v", te.Value)
	}
	r := mustRanking(t, `list([es "taco"] "weekend")`)
	l := r.(*List)
	if l.Items[0].(*TermExpr).Value.Tag != lang.Spanish {
		t.Errorf("first item = %v", l.Items[0])
	}
	if !l.Items[1].(*TermExpr).Value.Tag.IsZero() {
		t.Errorf("second item should be unqualified")
	}
}

func TestParseNested(t *testing.T) {
	src := `(((author "Ullman") or (author "Garcia-Molina")) and-not (title "survey"))`
	f := mustFilter(t, src)
	outer := f.(*Bin)
	if outer.Op != OpAndNot {
		t.Fatalf("outer op = %s", outer.Op)
	}
	inner := outer.L.(*Bin)
	if inner.Op != OpOr {
		t.Fatalf("inner op = %s", inner.Op)
	}
	terms := f.Terms(nil)
	if len(terms) != 3 {
		t.Errorf("Terms = %v", terms)
	}
}

func TestParseRankingBooleanOperators(t *testing.T) {
	// Ranking expressions support all filter operators plus list, nested.
	src := `list((("distributed" and "databases") or "federated") (title "systems" 0.5))`
	r := mustRanking(t, src)
	l := r.(*List)
	if len(l.Items) != 2 {
		t.Fatalf("items = %d", len(l.Items))
	}
	if _, ok := l.Items[0].(*Bin); !ok {
		t.Errorf("first item = %T", l.Items[0])
	}
	if w := l.Items[1].(*TermExpr).Weight; w != 0.5 {
		t.Errorf("weight = %g", w)
	}
}

func TestParseEmpty(t *testing.T) {
	for _, src := range []string{"", "   ", "\n\t"} {
		e, err := ParseFilter(src)
		if err != nil || e != nil {
			t.Errorf("ParseFilter(%q) = %v, %v; want nil, nil", src, e, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"(title",                        // unterminated term
		`(title "a") extra`,             // trailing input
		`((title "a") xor (title "b"))`, // unknown operator
		`((title "a") and)`,             // missing right operand
		`("a" prox[x,T] "b")`,           // non-numeric distance
		`("a" prox[3,Q] "b")`,           // bad order flag
		`("a" prox[-1,T] "b")`,          // negative distance
		`("a" prox[3,T] ("b" and "c"))`, // prox operand not a term
		`(("b" and "c") prox[3,T] "a")`, // prox left operand not a term
		"list()",                        // empty list
		"list((title \"a\")",            // unterminated list
		`(stem title "a")`,              // field after modifier
		`(title author "a")`,            // two fields
		`)`,                             // stray paren
		`(title "a" 1.5.2)`,             // malformed weight
		`98`,                            // not an expression
	}
	for _, src := range bad {
		if _, err := ParseFilter(src); err == nil {
			t.Errorf("ParseFilter(%q) succeeded, want error", src)
		}
	}
}

func TestValidateFilterRejectsListAndWeights(t *testing.T) {
	if _, err := ParseFilter(`list("a" "b")`); err == nil {
		t.Error("filter accepted list operator")
	}
	if _, err := ParseFilter(`(("a" 0.7) and "b")`); err == nil {
		t.Error("filter accepted weighted term")
	}
	// Both are fine in ranking expressions.
	if _, err := ParseRanking(`list(("a" 0.7) "b")`); err != nil {
		t.Errorf("ranking rejected weighted list: %v", err)
	}
}

func TestValidateRankingWeightRange(t *testing.T) {
	if _, err := ParseRanking(`list(("a" 1.5))`); err == nil {
		t.Error("ranking accepted weight > 1")
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	srcs := []string{
		`((author "Ullman") and (title stem "databases"))`,
		`list((body-of-text "distributed") (body-of-text "databases"))`,
		`("digital" prox[3,T] "libraries")`,
		`((title "a") or ((title "b") and-not (any "c")))`,
		`list(("distributed" 0.7) ("databases" 0.3))`,
		`(date-last-modified > "1996-08-01")`,
		`(body-of-text [en-US "behavior"])`,
		`(author phonetic "Smith")`,
		`(title right-truncation case-sensitive "Data")`,
	}
	for _, src := range srcs {
		e1, err := ParseRanking(src)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		printed := e1.String()
		e2, err := ParseRanking(printed)
		if err != nil {
			t.Errorf("reparse %q (printed from %q): %v", printed, src, err)
			continue
		}
		if !reflect.DeepEqual(e1, e2) {
			t.Errorf("round trip changed AST:\nsrc    %q\nprint  %q\n ast1 %#v\n ast2 %#v", src, printed, e1, e2)
		}
	}
}

// genExpr builds a random valid ranking expression for property testing.
func genExpr(r *rand.Rand, depth int, ranking bool) Expr {
	fields := []attr.Field{"", attr.FieldTitle, attr.FieldAuthor, attr.FieldBodyOfText, attr.FieldAny}
	words := []string{"databases", "distributed", "systems", "query", "rank", "Z39", "meta search", `quo"te`}
	tags := []lang.Tag{{}, lang.EnglishUS, lang.Spanish}
	mkTerm := func() *TermExpr {
		t := Term{
			Field: fields[r.Intn(len(fields))],
			Value: lang.LString{Tag: tags[r.Intn(len(tags))], Text: words[r.Intn(len(words))]},
		}
		if r.Intn(3) == 0 {
			t.Mods = append(t.Mods, attr.ModStem)
		}
		if ranking && r.Intn(3) == 0 {
			t.Weight = float64(1+r.Intn(9)) / 10
		}
		return &TermExpr{t}
	}
	if depth <= 0 {
		return mkTerm()
	}
	switch r.Intn(5) {
	case 0:
		return mkTerm()
	case 1:
		return &Bin{Op: OpAnd, L: genExpr(r, depth-1, ranking), R: genExpr(r, depth-1, ranking)}
	case 2:
		return &Bin{Op: OpOr, L: genExpr(r, depth-1, ranking), R: genExpr(r, depth-1, ranking)}
	case 3:
		return &Prox{L: mkTerm(), R: mkTerm(), Dist: r.Intn(10), Ordered: r.Intn(2) == 0}
	default:
		if !ranking {
			return &Bin{Op: OpAndNot, L: genExpr(r, depth-1, ranking), R: genExpr(r, depth-1, ranking)}
		}
		n := 1 + r.Intn(3)
		l := &List{}
		for i := 0; i < n; i++ {
			l.Items = append(l.Items, genExpr(r, depth-1, ranking))
		}
		return l
	}
}

// Property: print-then-parse is the identity over random expression trees.
func TestQuickExprRoundTrip(t *testing.T) {
	f := func(seed int64, rankFlag bool) bool {
		r := rand.New(rand.NewSource(seed))
		e := genExpr(r, 3, rankFlag)
		var back Expr
		var err error
		if rankFlag {
			back, err = ParseRanking(e.String())
		} else {
			back, err = ParseFilter(e.String())
		}
		if err != nil {
			t.Logf("parse %q: %v", e.String(), err)
			return false
		}
		// Weighted bare terms print in parens; reparse keeps structure.
		return reflect.DeepEqual(e, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

func BenchmarkQueryParse(b *testing.B) {
	src := `((author "Ullman") and (title stem "databases"))`
	rk := `list((body-of-text "distributed") (body-of-text "databases"))`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseFilter(src); err != nil {
			b.Fatal(err)
		}
		if _, err := ParseRanking(rk); err != nil {
			b.Fatal(err)
		}
	}
}

func TestScanTerm(t *testing.T) {
	tm, rest, err := ScanTerm(`(body-of-text "distributed") 10 0.31 190`)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Field != attr.FieldBodyOfText || tm.Value.Text != "distributed" {
		t.Errorf("term = %+v", tm)
	}
	if strings.TrimSpace(rest) != "10 0.31 190" {
		t.Errorf("rest = %q", rest)
	}
	// Bare l-strings scan as terms too.
	tm2, _, err := ScanTerm(`"databases" trailing`)
	if err != nil || tm2.Value.Text != "databases" {
		t.Errorf("bare term = %+v, %v", tm2, err)
	}
	// Compound expressions are not terms.
	if _, _, err := ScanTerm(`("a" and "b")`); err == nil {
		t.Error("compound accepted as term")
	}
	if _, _, err := ScanTerm(`garbage`); err == nil {
		t.Error("garbage accepted as term")
	}
}

// TestParserNeverPanics feeds the parser random byte soup; it must fail
// gracefully, never panic.
func TestParserNeverPanics(t *testing.T) {
	alphabet := []byte(`()[]{}"` + "`'" + `list and or not prox stem title 0.5,T \ xyz`)
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		n := r.Intn(60)
		b := make([]byte, n)
		for j := range b {
			b[j] = alphabet[r.Intn(len(alphabet))]
		}
		src := string(b)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("parser panicked on %q: %v", src, p)
				}
			}()
			_, _ = ParseFilter(src)
			_, _ = ParseRanking(src)
		}()
	}
	// Mutations of valid queries must not panic either.
	valid := `((author "Ullman") and (title stem "databases"))`
	for i := 0; i < len(valid); i++ {
		for _, c := range []byte{'(', ')', '"', ' ', 'x'} {
			mut := valid[:i] + string(c) + valid[i+1:]
			_, _ = ParseFilter(mut)
		}
	}
}
