package query

import (
	"fmt"
	"strconv"
	"strings"

	"starts/internal/attr"
	"starts/internal/lang"
)

// ParseFilter parses a Basic-1 filter expression such as
//
//	((author "Ullman") and (title stem "databases"))
//
// An empty input yields a nil expression (a query need not contain a
// filter expression).
func ParseFilter(src string) (Expr, error) {
	expr, err := parseExprString(src)
	if err != nil {
		return nil, fmt.Errorf("query: parsing filter expression: %w", err)
	}
	if expr == nil {
		return nil, nil
	}
	if err := ValidateFilter(expr); err != nil {
		return nil, err
	}
	return expr, nil
}

// ParseRanking parses a Basic-1 ranking expression such as
//
//	list((body-of-text "distributed") (body-of-text "databases"))
//
// An empty input yields a nil expression.
func ParseRanking(src string) (Expr, error) {
	expr, err := parseExprString(src)
	if err != nil {
		return nil, fmt.Errorf("query: parsing ranking expression: %w", err)
	}
	if expr == nil {
		return nil, nil
	}
	if err := ValidateRanking(expr); err != nil {
		return nil, err
	}
	return expr, nil
}

// ScanTerm reads one atomic term from the front of src and returns it with
// the unconsumed remainder. Query-result TermStats lines lead with a term
// in exactly this syntax: (body-of-text "distributed") 10 0.31 190.
func ScanTerm(src string) (Term, string, error) {
	p := &parser{src: src}
	e, err := p.parseExpr()
	if err != nil {
		return Term{}, "", err
	}
	te, ok := e.(*TermExpr)
	if !ok {
		return Term{}, "", fmt.Errorf("query: expected a term, found %s", e)
	}
	return te.Term, p.rest(), nil
}

func parseExprString(src string) (Expr, error) {
	p := &parser{src: src}
	p.skipSpace()
	if p.eof() {
		return nil, nil
	}
	expr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if !p.eof() {
		return nil, fmt.Errorf("trailing input %q at offset %d", clip(p.rest()), p.pos)
	}
	return expr, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) rest() string { return p.src[p.pos:] }
func (p *parser) eof() bool    { return p.pos >= len(p.src) }

func (p *parser) skipSpace() {
	for !p.eof() {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) expect(c byte) error {
	p.skipSpace()
	if p.peek() != c {
		return fmt.Errorf("expected %q at offset %d, found %q", c, p.pos, clip(p.rest()))
	}
	p.pos++
	return nil
}

// parseExpr parses one complete expression: a bare term, a parenthesized
// term, a binary combination, a proximity expression, or a list.
func (p *parser) parseExpr() (Expr, error) {
	p.skipSpace()
	switch c := p.peek(); {
	case c == '"' || c == '`' || c == '[':
		// Bare l-string term.
		ls, err := p.scanLString()
		if err != nil {
			return nil, err
		}
		return &TermExpr{Term{Value: ls}}, nil
	case c == '(':
		return p.parseParen()
	case isWordStart(c):
		word := p.peekWord()
		if strings.EqualFold(word, "list") {
			return p.parseList()
		}
		return nil, fmt.Errorf("unexpected word %q at offset %d (expected a term, '(' or list)", word, p.pos)
	default:
		return nil, fmt.Errorf("unexpected character %q at offset %d", c, p.pos)
	}
}

// parseParen handles everything that starts with '(': an atomic term
// (possibly with field, modifiers and weight), a parenthesized expression,
// or a binary/proximity combination.
func (p *parser) parseParen() (Expr, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	p.skipSpace()
	c := p.peek()
	if isTermLead(c) && !strings.EqualFold(p.peekWord(), "list") {
		// (field mod* lstring weight?) — an atomic term.
		return p.parseTermBody()
	}
	// Otherwise the paren wraps one or two sub-expressions.
	left, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	// A bare term in parens may carry a weight: ("distributed" 0.7).
	if t, ok := left.(*TermExpr); ok && isDigit(p.peek()) {
		w, err := p.scanNumber()
		if err != nil {
			return nil, err
		}
		t.Weight = w
		p.skipSpace()
	}
	if p.peek() == ')' {
		p.pos++
		return left, nil
	}
	return p.parseCombination(left)
}

// parseCombination parses `op right )` after a left operand.
func (p *parser) parseCombination(left Expr) (Expr, error) {
	p.skipSpace()
	word := p.scanWord()
	switch {
	case strings.EqualFold(word, "and"):
		// Could be "and-not": the scanner keeps '-' inside words, so
		// "and-not" arrives as one word already.
		return p.finishBin(OpAnd, left)
	case strings.EqualFold(word, "or"):
		return p.finishBin(OpOr, left)
	case strings.EqualFold(word, "and-not"):
		return p.finishBin(OpAndNot, left)
	case strings.EqualFold(word, "prox"):
		return p.finishProx(left)
	case word == "":
		return nil, fmt.Errorf("expected operator at offset %d, found %q", p.pos, clip(p.rest()))
	default:
		return nil, fmt.Errorf("unknown operator %q at offset %d", word, p.pos)
	}
}

func (p *parser) finishBin(op Op, left Expr) (Expr, error) {
	right, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return &Bin{Op: op, L: left, R: right}, nil
}

// finishProx parses `[dist,ordered] right )` after `left prox`.
func (p *parser) finishProx(left Expr) (Expr, error) {
	lt, ok := left.(*TermExpr)
	if !ok {
		return nil, fmt.Errorf("prox left operand must be a term, found %s", left)
	}
	if err := p.expect('['); err != nil {
		return nil, err
	}
	p.skipSpace()
	dist, err := p.scanInt()
	if err != nil {
		return nil, fmt.Errorf("prox distance: %w", err)
	}
	if dist < 0 {
		return nil, fmt.Errorf("prox distance %d is negative", dist)
	}
	if err := p.expect(','); err != nil {
		return nil, err
	}
	p.skipSpace()
	var ordered bool
	switch flag := p.scanWord(); strings.ToUpper(flag) {
	case "T":
		ordered = true
	case "F":
		ordered = false
	default:
		return nil, fmt.Errorf("prox order flag must be T or F, found %q", flag)
	}
	if err := p.expect(']'); err != nil {
		return nil, err
	}
	right, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	rt, ok := right.(*TermExpr)
	if !ok {
		return nil, fmt.Errorf("prox right operand must be a term, found %s", right)
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return &Prox{L: lt, R: rt, Dist: dist, Ordered: ordered}, nil
}

// parseList parses `list(item item ...)`.
func (p *parser) parseList() (Expr, error) {
	p.scanWord() // consume "list"
	if err := p.expect('('); err != nil {
		return nil, err
	}
	l := &List{}
	for {
		p.skipSpace()
		if p.peek() == ')' {
			p.pos++
			if len(l.Items) == 0 {
				return nil, fmt.Errorf("empty list() at offset %d", p.pos)
			}
			return l, nil
		}
		if p.eof() {
			return nil, fmt.Errorf("unterminated list()")
		}
		item, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		l.Items = append(l.Items, item)
	}
}

// parseTermBody parses `field? mod* lstring weight? )` with the opening
// paren already consumed.
func (p *parser) parseTermBody() (Expr, error) {
	var t Term
	fieldSet := false
	modSeen := false
	for {
		p.skipSpace()
		c := p.peek()
		if c == '"' || c == '`' || c == '[' {
			break
		}
		word := p.scanWordOrSymbol()
		if word == "" {
			return nil, fmt.Errorf("expected field, modifier or string at offset %d, found %q", p.pos, clip(p.rest()))
		}
		if _, isMod := attr.LookupModifier(word); isMod {
			t.Mods = append(t.Mods, attr.Modifier(strings.ToLower(word)))
			modSeen = true
			continue
		}
		if fieldSet {
			return nil, fmt.Errorf("term has two fields: %q and %q", t.Field, word)
		}
		if modSeen {
			return nil, fmt.Errorf("field %q must precede modifiers", word)
		}
		t.Field = attr.Normalize(attr.Field(word))
		fieldSet = true
	}
	ls, err := p.scanLString()
	if err != nil {
		return nil, err
	}
	t.Value = ls
	p.skipSpace()
	if isDigit(p.peek()) {
		w, err := p.scanNumber()
		if err != nil {
			return nil, err
		}
		t.Weight = w
	}
	if err := p.expect(')'); err != nil {
		return nil, err
	}
	return &TermExpr{t}, nil
}

func (p *parser) scanLString() (lang.LString, error) {
	ls, rest, err := lang.ScanLString(p.rest())
	if err != nil {
		return lang.LString{}, fmt.Errorf("at offset %d: %w", p.pos, err)
	}
	p.pos = len(p.src) - len(rest)
	return ls, nil
}

// scanWord reads a letter-initiated word; '-' is allowed inside so that
// "and-not", "body-of-text" and "date-last-modified" are single words.
func (p *parser) scanWord() string {
	p.skipSpace()
	start := p.pos
	for !p.eof() {
		c := p.src[p.pos]
		if isWordByte(c) || (p.pos > start && c == '-') {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

// peekWord returns the word at the cursor without consuming it.
func (p *parser) peekWord() string {
	save := p.pos
	w := p.scanWord()
	p.pos = save
	return w
}

// scanWordOrSymbol reads either a word or a comparison symbol (<, <=, =,
// >=, >, !=).
func (p *parser) scanWordOrSymbol() string {
	p.skipSpace()
	c := p.peek()
	if c == '<' || c == '>' || c == '=' || c == '!' {
		start := p.pos
		p.pos++
		if !p.eof() && p.src[p.pos] == '=' {
			p.pos++
		}
		return p.src[start:p.pos]
	}
	return p.scanWord()
}

func (p *parser) scanNumber() (float64, error) {
	p.skipSpace()
	start := p.pos
	for !p.eof() {
		c := p.src[p.pos]
		if isDigit(c) || c == '.' {
			p.pos++
			continue
		}
		break
	}
	if start == p.pos {
		return 0, fmt.Errorf("expected number at offset %d", p.pos)
	}
	f, err := strconv.ParseFloat(p.src[start:p.pos], 64)
	if err != nil {
		return 0, fmt.Errorf("invalid number %q at offset %d", p.src[start:p.pos], start)
	}
	return f, nil
}

func (p *parser) scanInt() (int, error) {
	f, err := p.scanNumber()
	if err != nil {
		return 0, err
	}
	n := int(f)
	if float64(n) != f {
		return 0, fmt.Errorf("expected integer, found %g", f)
	}
	return n, nil
}

// isTermLead reports whether c can begin the field/modifier part of an
// atomic term.
func isTermLead(c byte) bool {
	return isWordStart(c) || c == '<' || c == '>' || c == '=' || c == '!'
}

func isWordStart(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isWordByte(c byte) bool {
	return isWordStart(c) || (c >= '0' && c <= '9') || c == '/' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func clip(s string) string {
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}
