package query

import (
	"fmt"
	"strconv"
	"strings"

	"starts/internal/attr"
	"starts/internal/lang"
	"starts/internal/soif"
)

// Version is the protocol version string carried by every STARTS object.
const Version = "STARTS 1.0"

// SQueryType is the SOIF template type of a query object.
const SQueryType = "SQuery"

// ScoreSortField is the pseudo-field naming the document score in sort
// specifications; the default sort is by score, descending.
const ScoreSortField attr.Field = "score"

// SortKey orders query results by a field, ascending or descending.
type SortKey struct {
	Field     attr.Field
	Ascending bool
}

// String renders the key as "field a" or "field d".
func (k SortKey) String() string {
	dir := "d"
	if k.Ascending {
		dir = "a"
	}
	return string(k.Field) + " " + dir
}

// Query is a complete STARTS query: a filter expression (the Boolean
// component), a ranking expression (the vector-space component), and the
// further result specification of Section 4.1.2. Either expression may be
// nil: with no filter every document qualifies; with no ranking the result
// is the unranked filter match set.
type Query struct {
	// Filter must be satisfied by every document in the result.
	Filter Expr
	// Ranking imposes the order over qualifying documents.
	Ranking Expr

	// DropStopWords asks the source to delete stop words from the query
	// before processing. Whether a source can turn stop words OFF is
	// advertised in its TurnOffStopWords metadata.
	DropStopWords bool

	// DefaultAttrSet is the attribute set unqualified fields belong to.
	DefaultAttrSet attr.SetName
	// DefaultLanguage applies to l-strings with no language of their own.
	DefaultLanguage lang.Tag

	// Sources lists additional sources at the same resource where the
	// query should also be evaluated, enabling resource-side duplicate
	// elimination.
	Sources []string

	// AnswerFields are returned for each result document, in addition to
	// linkage, which is always returned. Default: title, linkage.
	AnswerFields []attr.Field
	// SortBy orders the results. Default: score, descending.
	SortBy []SortKey
	// MinScore is the minimum acceptable document score.
	MinScore float64
	// MaxResults is the maximum acceptable number of documents; zero means
	// the source default (DefaultMaxResults).
	MaxResults int
}

// DefaultMaxResults is applied when a query does not bound its result
// size, so that unconstrained queries cannot pull whole collections.
const DefaultMaxResults = 20

// New returns a query with the specification defaults: drop stop words,
// Basic-1 attributes, en-US, answer fields title+linkage, sorted by score
// descending.
func New() *Query {
	return &Query{
		DropStopWords:   true,
		DefaultAttrSet:  attr.SetBasic1,
		DefaultLanguage: lang.EnglishUS,
		AnswerFields:    []attr.Field{attr.FieldTitle, attr.FieldLinkage},
		SortBy:          []SortKey{{Field: ScoreSortField}},
		MaxResults:      DefaultMaxResults,
	}
}

// EffectiveMaxResults returns MaxResults with the default applied.
func (q *Query) EffectiveMaxResults() int {
	if q.MaxResults <= 0 {
		return DefaultMaxResults
	}
	return q.MaxResults
}

// EffectiveSort returns SortBy, defaulting to score descending.
func (q *Query) EffectiveSort() []SortKey {
	if len(q.SortBy) == 0 {
		return []SortKey{{Field: ScoreSortField}}
	}
	return q.SortBy
}

// EffectiveAnswerFields returns the answer fields with linkage guaranteed
// present, since linkage is always returned.
func (q *Query) EffectiveAnswerFields() []attr.Field {
	fields := q.AnswerFields
	if len(fields) == 0 {
		fields = []attr.Field{attr.FieldTitle}
	}
	out := make([]attr.Field, 0, len(fields)+1)
	hasLinkage := false
	for _, f := range fields {
		f = attr.Normalize(f)
		if f == attr.FieldLinkage {
			hasLinkage = true
		}
		out = append(out, f)
	}
	if !hasLinkage {
		out = append(out, attr.FieldLinkage)
	}
	return out
}

// Validate checks the query's internal consistency.
func (q *Query) Validate() error {
	if q.Filter == nil && q.Ranking == nil {
		return fmt.Errorf("query: at least one of filter and ranking expression is required")
	}
	if q.Filter != nil {
		if err := ValidateFilter(q.Filter); err != nil {
			return err
		}
	}
	if q.Ranking != nil {
		if err := ValidateRanking(q.Ranking); err != nil {
			return err
		}
	}
	if q.MinScore < 0 {
		return fmt.Errorf("query: negative MinDocumentScore %g", q.MinScore)
	}
	if q.MaxResults < 0 {
		return fmt.Errorf("query: negative MaxNumberDocuments %d", q.MaxResults)
	}
	return nil
}

// Clone returns a deep-enough copy: expressions are shared (they are
// immutable once parsed), slices are copied.
func (q *Query) Clone() *Query {
	c := *q
	c.Sources = append([]string(nil), q.Sources...)
	c.AnswerFields = append([]attr.Field(nil), q.AnswerFields...)
	c.SortBy = append([]SortKey(nil), q.SortBy...)
	return &c
}

// ToSOIF encodes the query as an @SQuery SOIF object in the layout of the
// paper's Example 6.
func (q *Query) ToSOIF() (*soif.Object, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	o := soif.New(SQueryType)
	o.Add("Version", Version)
	if q.Filter != nil {
		o.Add("FilterExpression", q.Filter.String())
	}
	if q.Ranking != nil {
		o.Add("RankingExpression", q.Ranking.String())
	}
	o.Add("DropStopWords", boolTF(q.DropStopWords))
	if q.DefaultAttrSet != "" {
		o.Add("DefaultAttributeSet", string(q.DefaultAttrSet))
	}
	if !q.DefaultLanguage.IsZero() {
		o.Add("DefaultLanguage", q.DefaultLanguage.String())
	}
	if len(q.Sources) > 0 {
		o.Add("Sources", strings.Join(q.Sources, " "))
	}
	if len(q.AnswerFields) > 0 {
		names := make([]string, len(q.AnswerFields))
		for i, f := range q.AnswerFields {
			names[i] = string(attr.Normalize(f))
		}
		o.Add("AnswerFields", strings.Join(names, " "))
	}
	if len(q.SortBy) > 0 {
		keys := make([]string, len(q.SortBy))
		for i, k := range q.SortBy {
			keys[i] = k.String()
		}
		o.Add("SortByFields", strings.Join(keys, " "))
	}
	if q.MinScore != 0 {
		o.Add("MinDocumentScore", trimFloat(q.MinScore))
	}
	if q.MaxResults != 0 {
		o.Add("MaxNumberDocuments", strconv.Itoa(q.MaxResults))
	}
	return o, nil
}

// FromSOIF decodes an @SQuery object. Missing attributes take the
// specification defaults.
func FromSOIF(o *soif.Object) (*Query, error) {
	if !strings.EqualFold(o.Type, SQueryType) {
		return nil, fmt.Errorf("query: expected @%s object, found @%s", SQueryType, o.Type)
	}
	q := New()
	var err error
	if v, ok := o.Get("FilterExpression"); ok {
		if q.Filter, err = ParseFilter(v); err != nil {
			return nil, err
		}
	}
	if v, ok := o.Get("RankingExpression"); ok {
		if q.Ranking, err = ParseRanking(v); err != nil {
			return nil, err
		}
	}
	if v, ok := o.Get("DropStopWords"); ok {
		if q.DropStopWords, err = parseTF(v); err != nil {
			return nil, fmt.Errorf("query: DropStopWords: %w", err)
		}
	}
	if v, ok := o.Get("DefaultAttributeSet"); ok {
		q.DefaultAttrSet = attr.SetName(strings.ToLower(v))
	}
	if v, ok := o.Get("DefaultLanguage"); ok {
		if q.DefaultLanguage, err = lang.ParseTag(v); err != nil {
			return nil, fmt.Errorf("query: DefaultLanguage: %w", err)
		}
	}
	if v, ok := o.Get("Sources"); ok {
		q.Sources = strings.Fields(v)
	}
	if v, ok := o.Get("AnswerFields"); ok {
		q.AnswerFields = nil
		for _, name := range strings.Fields(v) {
			q.AnswerFields = append(q.AnswerFields, attr.Normalize(attr.Field(name)))
		}
	}
	if v, ok := o.Get("SortByFields"); ok {
		if q.SortBy, err = parseSortKeys(v); err != nil {
			return nil, err
		}
	}
	if v, ok := o.Get("MinDocumentScore"); ok {
		if q.MinScore, err = strconv.ParseFloat(strings.TrimSpace(v), 64); err != nil {
			return nil, fmt.Errorf("query: MinDocumentScore %q: %w", v, err)
		}
	}
	if v, ok := o.Get("MaxNumberDocuments"); ok {
		if q.MaxResults, err = strconv.Atoi(strings.TrimSpace(v)); err != nil {
			return nil, fmt.Errorf("query: MaxNumberDocuments %q: %w", v, err)
		}
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// Parse decodes a query from SOIF bytes.
func Parse(data []byte) (*Query, error) {
	o, err := soif.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	return FromSOIF(o)
}

// Marshal encodes the query to SOIF bytes.
func (q *Query) Marshal() ([]byte, error) {
	o, err := q.ToSOIF()
	if err != nil {
		return nil, err
	}
	return soif.Marshal(o)
}

func parseSortKeys(v string) ([]SortKey, error) {
	fields := strings.Fields(v)
	if len(fields)%2 != 0 {
		return nil, fmt.Errorf("query: SortByFields %q must be field/direction pairs", v)
	}
	var keys []SortKey
	for i := 0; i < len(fields); i += 2 {
		k := SortKey{Field: attr.Normalize(attr.Field(fields[i]))}
		switch strings.ToLower(fields[i+1]) {
		case "a", "asc", "ascending":
			k.Ascending = true
		case "d", "desc", "descending":
		default:
			return nil, fmt.Errorf("query: sort direction %q must be a or d", fields[i+1])
		}
		keys = append(keys, k)
	}
	return keys, nil
}

func boolTF(b bool) string {
	if b {
		return "T"
	}
	return "F"
}

func parseTF(v string) (bool, error) {
	switch strings.ToUpper(strings.TrimSpace(v)) {
	case "T", "TRUE":
		return true, nil
	case "F", "FALSE":
		return false, nil
	}
	return false, fmt.Errorf("expected T or F, found %q", v)
}
