// Package query implements the STARTS query language of Section 4.1:
// atomic terms (l-strings adorned with a field and modifiers), complex
// filter expressions (the Boolean component, with and/or/and-not/prox
// operators), complex ranking expressions (the vector-space component,
// which adds the list operator and per-term weights), and the SQuery
// object that carries a complete query with its result specification.
package query

import (
	"fmt"
	"strings"

	"starts/internal/attr"
	"starts/internal/lang"
)

// Term is an atomic query term: an l-string modified by at most one field
// and zero or more modifiers, optionally weighted when used inside a
// ranking expression.
//
//	(author "Ullman")
//	(title stem "databases")
//	(date-last-modified > "1996-08-01")
//	("distributed" 0.7)
type Term struct {
	Field  attr.Field // "" means unspecified, interpreted as "any"
	Mods   []attr.Modifier
	Value  lang.LString
	Weight float64 // relative importance in ranking expressions; 0 means unset (treated as 1)
}

// NewTerm builds an unweighted term.
func NewTerm(field attr.Field, value lang.LString, mods ...attr.Modifier) Term {
	return Term{Field: field, Mods: mods, Value: value}
}

// EffectiveField returns the term's field, defaulting to "any".
func (t Term) EffectiveField() attr.Field {
	if t.Field == "" {
		return attr.FieldAny
	}
	return attr.Normalize(t.Field)
}

// EffectiveWeight returns the term's ranking weight, defaulting to 1.
func (t Term) EffectiveWeight() float64 {
	if t.Weight == 0 {
		return 1
	}
	return t.Weight
}

// HasMod reports whether the term carries the given modifier.
func (t Term) HasMod(m attr.Modifier) bool {
	for _, x := range t.Mods {
		if x == m {
			return true
		}
	}
	return false
}

// Comparison returns the term's comparison modifier, defaulting to "=" as
// the paper's modifier table specifies.
func (t Term) Comparison() attr.Modifier {
	for _, m := range t.Mods {
		if m.IsComparison() {
			return m
		}
	}
	return attr.ModEQ
}

// bare reports whether the term can print as a bare l-string.
func (t Term) bare() bool {
	return t.Field == "" && len(t.Mods) == 0 && t.Weight == 0
}

// String renders the term in query syntax.
func (t Term) String() string {
	if t.bare() {
		return t.Value.String()
	}
	var parts []string
	if t.Field != "" {
		parts = append(parts, string(attr.Normalize(t.Field)))
	}
	for _, m := range t.Mods {
		parts = append(parts, m.String())
	}
	parts = append(parts, t.Value.String())
	if t.Weight != 0 {
		parts = append(parts, trimFloat(t.Weight))
	}
	return "(" + strings.Join(parts, " ") + ")"
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

// Op is a Boolean(-like) operator combining query expressions.
type Op string

// The Basic-1 operators. If a source supports filter expressions it must
// support all of and, or, and-not and prox; ranking expressions add list.
// There deliberately is no bare "not": every query has a positive
// component, so sources never evaluate pure negations.
const (
	OpAnd    Op = "and"
	OpOr     Op = "or"
	OpAndNot Op = "and-not"
)

// Expr is a node of a filter or ranking expression tree: a Term, a binary
// Bin, a Prox, or (ranking only) a List.
type Expr interface {
	fmt.Stringer
	// Terms appends every term in the expression to dst, in left-to-right
	// order, and returns the extended slice.
	Terms(dst []Term) []Term
}

// TermExpr is a leaf expression holding one term.
type TermExpr struct {
	Term
}

// Terms implements Expr.
func (t *TermExpr) Terms(dst []Term) []Term { return append(dst, t.Term) }

// Bin is a binary combination of two expressions with and, or, or and-not.
// Search engines interpret these as set operations in filter expressions
// and typically as fuzzy-logic operators (min/max) in ranking expressions.
type Bin struct {
	Op   Op
	L, R Expr
}

// String implements Expr.
func (b *Bin) String() string {
	return "(" + b.L.String() + " " + string(b.Op) + " " + b.R.String() + ")"
}

// Terms implements Expr.
func (b *Bin) Terms(dst []Term) []Term { return b.R.Terms(b.L.Terms(dst)) }

// Prox requires its two terms within Dist words of each other;
// when Ordered, the left term must precede the right one.
//
//	(t1 prox[3,T] t2)
type Prox struct {
	L, R    *TermExpr
	Dist    int
	Ordered bool
}

// String implements Expr.
func (p *Prox) String() string {
	o := "F"
	if p.Ordered {
		o = "T"
	}
	return fmt.Sprintf("(%s prox[%d,%s] %s)", p.L, p.Dist, o, p.R)
}

// Terms implements Expr.
func (p *Prox) Terms(dst []Term) []Term { return p.R.Terms(p.L.Terms(dst)) }

// List groups terms (or sub-expressions) into the flat term list that is
// the most common form of vector-space query. Lists are only legal in
// ranking expressions.
//
//	list(("distributed" 0.7) ("databases" 0.3))
type List struct {
	Items []Expr
}

// String implements Expr.
func (l *List) String() string {
	parts := make([]string, len(l.Items))
	for i, it := range l.Items {
		parts[i] = it.String()
	}
	return "list(" + strings.Join(parts, " ") + ")"
}

// Terms implements Expr.
func (l *List) Terms(dst []Term) []Term {
	for _, it := range l.Items {
		dst = it.Terms(dst)
	}
	return dst
}

// ValidateFilter checks that expr is a legal Basic-1 filter expression: no
// list operator and no term weights.
func ValidateFilter(expr Expr) error {
	return walk(expr, func(e Expr) error {
		switch n := e.(type) {
		case *List:
			return fmt.Errorf("query: list operator is not allowed in filter expressions")
		case *TermExpr:
			if n.Weight != 0 {
				return fmt.Errorf("query: term %s carries a weight, which is only allowed in ranking expressions", n)
			}
		}
		return nil
	})
}

// ValidateRanking checks that expr is a legal Basic-1 ranking expression:
// term weights, when present, must lie in (0, 1].
func ValidateRanking(expr Expr) error {
	return walk(expr, func(e Expr) error {
		if t, ok := e.(*TermExpr); ok {
			if t.Weight < 0 || t.Weight > 1 {
				return fmt.Errorf("query: ranking weight %g of term %s outside [0,1]", t.Weight, t)
			}
		}
		return nil
	})
}

func walk(e Expr, fn func(Expr) error) error {
	if e == nil {
		return nil
	}
	if err := fn(e); err != nil {
		return err
	}
	switch n := e.(type) {
	case *Bin:
		if err := walk(n.L, fn); err != nil {
			return err
		}
		return walk(n.R, fn)
	case *Prox:
		if err := walk(n.L, fn); err != nil {
			return err
		}
		return walk(n.R, fn)
	case *List:
		for _, it := range n.Items {
			if err := walk(it, fn); err != nil {
				return err
			}
		}
	}
	return nil
}

// TransformTerms returns a structurally identical copy of expr with fn
// applied to every term — used, for example, to resolve fields from a
// non-default attribute set into the Basic-1 fields engines evaluate.
// A nil expr stays nil.
func TransformTerms(e Expr, fn func(Term) Term) Expr {
	switch n := e.(type) {
	case nil:
		return nil
	case *TermExpr:
		return &TermExpr{Term: fn(n.Term)}
	case *Bin:
		return &Bin{Op: n.Op, L: TransformTerms(n.L, fn), R: TransformTerms(n.R, fn)}
	case *Prox:
		return &Prox{
			L:    &TermExpr{Term: fn(n.L.Term)},
			R:    &TermExpr{Term: fn(n.R.Term)},
			Dist: n.Dist, Ordered: n.Ordered,
		}
	case *List:
		out := &List{Items: make([]Expr, len(n.Items))}
		for i, it := range n.Items {
			out.Items[i] = TransformTerms(it, fn)
		}
		return out
	default:
		return e
	}
}

// ResolveAttributeSet returns the query's expressions with every term
// field interpreted in the query's default attribute set (DC-1 creator
// becomes author, and so on). Basic-1 and unset default sets are the
// identity.
func (q *Query) ResolveAttributeSet() (filter, ranking Expr) {
	set := q.DefaultAttrSet
	if set == "" || set == attr.SetBasic1 {
		return q.Filter, q.Ranking
	}
	fn := func(t Term) Term {
		if t.Field != "" {
			t.Field = attr.ResolveField(set, t.Field)
		}
		return t
	}
	return TransformTerms(q.Filter, fn), TransformTerms(q.Ranking, fn)
}
