package meta

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"starts/internal/attr"
	"starts/internal/lang"
	"starts/internal/soif"
)

// example11Summary reconstructs the content summary of the paper's
// Example 11: unstemmed, case-insensitive, field-qualified words with
// English and Spanish title groups, 892 documents.
func example11Summary() *ContentSummary {
	return &ContentSummary{
		Stemming:          false,
		StopWordsIncluded: false,
		CaseSensitive:     false,
		FieldsQualified:   true,
		NumDocs:           892,
		Groups: []SummaryGroup{
			{
				Field:    attr.FieldTitle,
				Language: lang.EnglishUS,
				Terms: []TermInfo{
					{Term: "algorithm", Postings: 100, DocFreq: 53},
					{Term: "analysis", Postings: 50, DocFreq: 23},
				},
			},
			{
				Field:    attr.FieldTitle,
				Language: lang.Spanish,
				Terms: []TermInfo{
					{Term: "algoritmo", Postings: 23, DocFreq: 11},
					{Term: "datos", Postings: 59, DocFreq: 12},
				},
			},
		},
	}
}

// TestPaperExample11 is experiment E10: the Example 11 content summary
// encodes with the paper's layout and round trips.
func TestPaperExample11(t *testing.T) {
	c := example11Summary()
	data, err := c.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	text := string(data)
	for _, want := range []string{
		"@SContentSummary{",
		"Stemming{1}: F",
		"StopWords{1}: F",
		"CaseSensitive{1}: F",
		"Fields{1}: T",
		"NumDocs{3}: 892",
		"Field{5}: title",
		"Language{5}: en-US",
		`"algorithm" 100 53`,
		`"analysis" 50 23`,
		"Language{2}: es",
		`"algoritmo" 23 11`,
		`"datos" 59 12`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("encoded summary missing %q\n%s", want, text)
		}
	}

	back, err := ParseSummary(data)
	if err != nil {
		t.Fatalf("ParseSummary: %v", err)
	}
	if back.NumDocs != 892 || !back.FieldsQualified || back.Stemming {
		t.Errorf("flags = %+v", back)
	}
	if len(back.Groups) != 2 {
		t.Fatalf("groups = %d", len(back.Groups))
	}
	// The paper's reading: "algorithm" appears in the title of 53 English
	// documents; "datos" in the title of 12 Spanish documents.
	if ti, ok := back.Lookup(attr.FieldTitle, lang.EnglishUS, "algorithm"); !ok || ti.DocFreq != 53 {
		t.Errorf("Lookup(algorithm) = %+v, %v", ti, ok)
	}
	if ti, ok := back.Lookup(attr.FieldTitle, lang.Spanish, "datos"); !ok || ti.DocFreq != 12 {
		t.Errorf("Lookup(datos) = %+v, %v", ti, ok)
	}
}

func TestSummaryLookupSemantics(t *testing.T) {
	c := example11Summary()
	c.SortTerms()
	// Any-field lookup probes every group.
	if ti, ok := c.Lookup(attr.FieldAny, lang.Tag{}, "algoritmo"); !ok || ti.Postings != 23 {
		t.Errorf("any-field lookup = %+v, %v", ti, ok)
	}
	// Wrong field misses.
	if _, ok := c.Lookup(attr.FieldAuthor, lang.Tag{}, "algorithm"); ok {
		t.Error("author-field lookup should miss")
	}
	// Case-insensitive summaries match upper-cased probes.
	if _, ok := c.Lookup(attr.FieldTitle, lang.EnglishUS, "Algorithm"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	// DocFreq sums across matching groups.
	if df := c.DocFreq(attr.FieldTitle, lang.Tag{}, "algorithm"); df != 53 {
		t.Errorf("DocFreq = %d", df)
	}
	if df := c.DocFreq(attr.FieldTitle, lang.Tag{}, "missing"); df != 0 {
		t.Errorf("DocFreq(missing) = %d", df)
	}
	if n := c.TotalTerms(); n != 4 {
		t.Errorf("TotalTerms = %d", n)
	}
}

func TestSummaryCaseSensitive(t *testing.T) {
	c := &ContentSummary{
		CaseSensitive: true,
		NumDocs:       1,
		Groups: []SummaryGroup{{
			Field: attr.FieldTitle,
			Terms: []TermInfo{{Term: "Ullman", Postings: 5, DocFreq: 3}},
		}},
	}
	c.SortTerms()
	if _, ok := c.Lookup(attr.FieldTitle, lang.Tag{}, "ullman"); ok {
		t.Error("case-sensitive summary matched folded probe")
	}
	if ti, ok := c.Lookup(attr.FieldTitle, lang.Tag{}, "Ullman"); !ok || ti.DocFreq != 3 {
		t.Errorf("exact probe = %+v, %v", ti, ok)
	}
}

func TestSummaryErrors(t *testing.T) {
	mk := func(name, val string) *soif.Object {
		o := soif.New(SummaryType)
		o.Add(name, val)
		return o
	}
	cases := []*soif.Object{
		soif.New("SQuery"),
		mk("Stemming", "yes"),
		mk("NumDocs", "many"),
		mk("Language", "!!"),
		mk("TermDocFreq", `"word"`),
		mk("TermDocFreq", `"word" 10`),
		mk("TermDocFreq", `"word" ten 5`),
		mk("TermDocFreq", `"word" 10 five`),
		mk("TermDocFreq", `unquoted 10 5`),
		mk("Unknown", "value"),
	}
	for i, o := range cases {
		if _, err := SummaryFromSOIF(o); err == nil {
			t.Errorf("case %d accepted, want error", i)
		}
	}
}

// Property: summaries round trip through SOIF.
func TestQuickSummaryRoundTrip(t *testing.T) {
	fields := []attr.Field{attr.FieldTitle, attr.FieldBodyOfText, attr.FieldAuthor}
	tags := []lang.Tag{lang.EnglishUS, lang.Spanish, {}}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := &ContentSummary{
			Stemming:          r.Intn(2) == 0,
			StopWordsIncluded: r.Intn(2) == 0,
			CaseSensitive:     r.Intn(2) == 0,
			FieldsQualified:   true,
			NumDocs:           r.Intn(10000),
		}
		ng := 1 + r.Intn(3)
		for i := 0; i < ng; i++ {
			g := SummaryGroup{Field: fields[r.Intn(len(fields))], Language: tags[r.Intn(len(tags))]}
			nt := 1 + r.Intn(5)
			for j := 0; j < nt; j++ {
				g.Terms = append(g.Terms, TermInfo{
					Term:     "w" + string(rune('a'+j)),
					Postings: r.Intn(1000),
					DocFreq:  r.Intn(500),
				})
			}
			c.Groups = append(c.Groups, g)
		}
		c.SortTerms()
		data, err := c.Marshal()
		if err != nil {
			return false
		}
		back, err := ParseSummary(data)
		if err != nil {
			return false
		}
		if back.NumDocs != c.NumDocs || len(back.Groups) != len(c.Groups) {
			return false
		}
		for i := range c.Groups {
			if len(back.Groups[i].Terms) != len(c.Groups[i].Terms) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPaperExample12 is experiment E11: the Example 12 resource object.
func TestPaperExample12(t *testing.T) {
	r := &Resource{Entries: []ResourceEntry{
		{SourceID: "Source-1", MetadataURL: "ftp://www.stanford.edu/source_1"},
		{SourceID: "Source-2", MetadataURL: "ftp://www.stanford.edu/source_2"},
	}}
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		"@SResource{",
		"Version{10}: STARTS 1.0",
		"Source-1 ftp://www.stanford.edu/source_1",
		"Source-2 ftp://www.stanford.edu/source_2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("encoded resource missing %q\n%s", want, text)
		}
	}
	back, err := ParseResource(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 2 || back.Entries[1].SourceID != "Source-2" {
		t.Errorf("entries = %+v", back.Entries)
	}
}

func TestResourceErrors(t *testing.T) {
	if _, err := ResourceFromSOIF(soif.New("SQuery")); err == nil {
		t.Error("wrong type accepted")
	}
	if _, err := ResourceFromSOIF(soif.New(ResourceType)); err == nil {
		t.Error("missing SourceList accepted")
	}
	o := soif.New(ResourceType)
	o.Add("SourceList", "only-an-id")
	if _, err := ResourceFromSOIF(o); err == nil {
		t.Error("malformed line accepted")
	}
	o2 := soif.New(ResourceType)
	o2.Add("SourceList", "  \n  ")
	if _, err := ResourceFromSOIF(o2); err == nil {
		t.Error("empty source list accepted")
	}
}

func BenchmarkMetaEncode(b *testing.B) {
	m := example10Meta()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMetaDecode(b *testing.B) {
	data, err := example10Meta().Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseMeta(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSummaryDecode(b *testing.B) {
	c := example11Summary()
	// Grow to a realistic vocabulary size.
	for i := 0; i < 1000; i++ {
		c.Groups[0].Terms = append(c.Groups[0].Terms, TermInfo{
			Term:     "term" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26)),
			Postings: i, DocFreq: i / 2,
		})
	}
	c.SortTerms()
	data, err := c.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseSummary(data); err != nil {
			b.Fatal(err)
		}
	}
}

func TestResourceFormatToken(t *testing.T) {
	r := &Resource{Entries: []ResourceEntry{
		{SourceID: "S1", MetadataURL: "http://x/s1/metadata"},
		{SourceID: "S2", MetadataURL: "http://x/s2/metadata", Format: FormatJSON},
	}}
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "S2 http://x/s2/metadata json") {
		t.Errorf("format token missing:\n%s", data)
	}
	if strings.Contains(string(data), "S1 http://x/s1/metadata soif") {
		t.Error("default format should be elided")
	}
	back, err := ParseResource(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Entries[0].EffectiveFormat() != FormatSOIF || back.Entries[1].EffectiveFormat() != FormatJSON {
		t.Errorf("formats = %q %q", back.Entries[0].EffectiveFormat(), back.Entries[1].EffectiveFormat())
	}
	// Four tokens is malformed.
	o := soif.New(ResourceType)
	o.Add("SourceList", "S1 http://x a b")
	if _, err := ResourceFromSOIF(o); err == nil {
		t.Error("four-token line accepted")
	}
}
