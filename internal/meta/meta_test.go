package meta

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"starts/internal/attr"
	"starts/internal/lang"
	"starts/internal/soif"
)

// example10Meta reconstructs the SMetaAttributes object of the paper's
// Example 10 for source Source-1.
func example10Meta() *SourceMeta {
	return &SourceMeta{
		SourceID: "Source-1",
		FieldsSupported: []FieldSupport{
			{Set: attr.SetBasic1, Field: attr.FieldAuthor},
		},
		ModifiersSupported: []ModifierSupport{
			{Set: attr.SetBasic1, Mod: attr.ModPhonetic},
		},
		Combinations: []Combination{
			{
				Field: FieldSupport{Set: attr.SetBasic1, Field: attr.FieldAuthor},
				Mod:   ModifierSupport{Set: attr.SetBasic1, Mod: attr.ModPhonetic},
			},
		},
		QueryParts:            PartsBoth,
		ScoreMin:              0,
		ScoreMax:              1,
		RankingAlgorithmID:    "Acme-1",
		SampleDatabaseResults: "http://www-db.stanford.edu/sample_results",
		StopWords:             []string{"a", "an", "the"},
		TurnOffStopWords:      true,
		SourceLanguages:       []lang.Tag{lang.EnglishUS, lang.Spanish},
		SourceName:            "Stanford DB Group",
		Linkage:               "http://www-db.stanford.edu/cgi-bin/query",
		ContentSummaryLinkage: "ftp://www-db.stanford.edu/cont_sum.txt",
		DateChanged:           time.Date(1996, 3, 31, 0, 0, 0, 0, time.UTC),
	}
}

// TestPaperExample10 is experiment E9: the Example 10 metadata object
// encodes with the paper's attribute spellings and values, and decodes
// back to the same metadata.
func TestPaperExample10(t *testing.T) {
	m := example10Meta()
	data, err := m.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	text := string(data)
	for _, want := range []string{
		"@SMetaAttributes{",
		"Version{10}: STARTS 1.0",
		"SourceID{8}: Source-1",
		"FieldsSupported{16}: [basic-1 author]",
		"ModifiersSupported{18}: {basic-1 phonetic}",
		"FieldModifierCombinations{37}: ([basic-1 author] {basic-1 phonetic})",
		"QueryPartsSupported{2}: RF",
		"ScoreRange{7}: 0.0 1.0",
		"RankingAlgorithmID{6}: Acme-1",
		"DefaultMetaAttributeSet{8}: mbasic-1",
		"source-languages{8}: en-US es",
		"source-name{17}: Stanford DB Group",
		"linkage{40}: http://www-db.stanford.edu/cgi-bin/query",
		"content-summary-linkage{38}: ftp://www-db.stanford.edu/cont_sum.txt",
		"date-changed{10}: 1996-03-31",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("encoded metadata missing %q\n%s", want, text)
		}
	}

	back, err := ParseMeta(data)
	if err != nil {
		t.Fatalf("ParseMeta: %v", err)
	}
	if !reflect.DeepEqual(back, m) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, m)
	}
}

// TestPaperExample10Verbatim decodes metadata using the paper's exact
// spelling "phonetics" for the phonetic modifier.
func TestPaperExample10Verbatim(t *testing.T) {
	o := soif.New(MetaType)
	o.Add("SourceID", "Source-1")
	o.Add("FieldsSupported", "[basic-1 author]")
	o.Add("ModifiersSupported", "{basic-1 phonetics}")
	o.Add("FieldModifierCombinations", "([basic-1 author] {basic-1 phonetics})")
	o.Add("QueryPartsSupported", "RF")
	o.Add("ScoreRange", "0.0 1.0")
	o.Add("RankingAlgorithmID", "Acme-1")
	m, err := MetaFromSOIF(o)
	if err != nil {
		t.Fatal(err)
	}
	if m.ModifiersSupported[0].Mod != attr.ModPhonetic {
		t.Errorf("phonetics not normalized: %v", m.ModifiersSupported[0].Mod)
	}
	if !m.AllowsCombination(attr.FieldAuthor, attr.ModPhonetic) {
		t.Error("combination not recognized")
	}
}

func TestCapabilityQueries(t *testing.T) {
	m := example10Meta()
	// Required fields are always supported even when unlisted.
	for _, f := range attr.RequiredFields() {
		if !m.SupportsField(f) {
			t.Errorf("required field %s not supported", f)
		}
	}
	if !m.SupportsField(attr.FieldAuthor) {
		t.Error("listed optional field not supported")
	}
	if m.SupportsField(attr.FieldBodyOfText) {
		t.Error("unlisted optional field reported supported")
	}
	if !m.SupportsModifier(attr.ModPhonetic) || m.SupportsModifier(attr.ModStem) {
		t.Error("modifier support wrong")
	}
	if m.AllowsCombination(attr.FieldTitle, attr.ModPhonetic) {
		t.Error("unlisted combination allowed")
	}
	if !PartsBoth.SupportsFilter() || !PartsBoth.SupportsRanking() {
		t.Error("RF parts wrong")
	}
	if PartsRanking.SupportsFilter() || !PartsRanking.SupportsRanking() {
		t.Error("R parts wrong")
	}
	if !PartsFilter.SupportsFilter() || PartsFilter.SupportsRanking() {
		t.Error("F parts wrong")
	}
}

func TestScoreRangeInfinity(t *testing.T) {
	m := &SourceMeta{
		SourceID:           "S",
		ScoreMin:           math.Inf(-1),
		ScoreMax:           math.Inf(1),
		RankingAlgorithmID: "X",
	}
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "ScoreRange{19}: -Infinity +Infinity") {
		t.Errorf("infinity encoding wrong:\n%s", data)
	}
	back, err := ParseMeta(data)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(back.ScoreMin, -1) || !math.IsInf(back.ScoreMax, 1) {
		t.Errorf("infinity round trip = %g %g", back.ScoreMin, back.ScoreMax)
	}
}

func TestMetaErrors(t *testing.T) {
	mk := func(name, val string) *soif.Object {
		o := soif.New(MetaType)
		o.Add(name, val)
		return o
	}
	cases := []*soif.Object{
		soif.New("SQuery"),
		mk("QueryPartsSupported", "X"),
		mk("ScoreRange", "1.0"),
		mk("ScoreRange", "abc def"),
		mk("ScoreRange", "1.0 0.0"),
		mk("FieldsSupported", "basic-1 author"),
		mk("FieldsSupported", "[basic-1]"),
		mk("FieldsSupported", "[basic-1 title not/a/tag!]"),
		mk("ModifiersSupported", "{basic-1}"),
		mk("FieldModifierCombinations", "[basic-1 author] {basic-1 stem}"),
		mk("FieldModifierCombinations", "(broken"),
		mk("TokenizerIDList", "(Acme-1)"),
		mk("TokenizerIDList", "(Acme-1 bad tag extra)"),
		mk("TurnOffStopWords", "Y"),
		mk("date-changed", "March 1996"),
		mk("date-expires", "soon"),
		mk("source-languages", "en-US ??"),
	}
	for i, o := range cases {
		if _, err := MetaFromSOIF(o); err == nil {
			t.Errorf("case %d accepted, want error", i)
		}
	}
}

func TestTokenizerListRoundTrip(t *testing.T) {
	m := &SourceMeta{
		SourceID:           "S",
		RankingAlgorithmID: "X",
		Tokenizers: []TokenizerUse{
			{ID: "Acme-1", Tag: lang.EnglishUS},
			{ID: "Acme-2", Tag: lang.Spanish},
		},
	}
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "(Acme-1 en-US) (Acme-2 es)") {
		t.Errorf("tokenizer list encoding wrong:\n%s", data)
	}
	back, err := ParseMeta(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Tokenizers, m.Tokenizers) {
		t.Errorf("round trip = %+v", back.Tokenizers)
	}
}

func TestFieldLanguageLists(t *testing.T) {
	m := &SourceMeta{
		SourceID:           "S",
		RankingAlgorithmID: "X",
		FieldsSupported: []FieldSupport{
			{Set: attr.SetBasic1, Field: attr.FieldTitle, Languages: []lang.Tag{lang.EnglishUS, lang.Spanish}},
			{Set: attr.SetBasic1, Field: attr.FieldAuthor},
		},
		ModifiersSupported: []ModifierSupport{
			{Set: attr.SetBasic1, Mod: attr.ModStem, Languages: []lang.Tag{lang.English}},
		},
	}
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "[basic-1 title en-US es] [basic-1 author]") {
		t.Errorf("field language encoding wrong:\n%s", data)
	}
	back, err := ParseMeta(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.FieldsSupported, m.FieldsSupported) {
		t.Errorf("fields = %+v", back.FieldsSupported)
	}
	if !reflect.DeepEqual(back.ModifiersSupported, m.ModifiersSupported) {
		t.Errorf("modifiers = %+v", back.ModifiersSupported)
	}
}
