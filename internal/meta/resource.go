package meta

import (
	"fmt"
	"strings"

	"starts/internal/query"
	"starts/internal/soif"
)

// ResourceType is the SOIF template type of a resource description.
const ResourceType = "SResource"

// ResourceEntry points a metasearcher at one source of a resource: the
// source's name, the URL where its metadata-attribute object lives, and
// the format that object is delivered in (Section 4.3.3 has resources
// export "the URLs where the metadata attributes for the sources can be
// accessed and the format of this data").
type ResourceEntry struct {
	SourceID    string
	MetadataURL string
	// Format names the metadata encoding; empty means FormatSOIF.
	Format string
}

// The formats this implementation serves.
const (
	FormatSOIF = "soif"
	FormatJSON = "json"
)

// EffectiveFormat returns the entry's format with the default applied.
func (e ResourceEntry) EffectiveFormat() string {
	if e.Format == "" {
		return FormatSOIF
	}
	return e.Format
}

// Resource is the contact information a resource exports: its list of
// sources and where to obtain each source's metadata. From here a
// metasearcher bootstraps everything else — metadata, content summaries,
// and finally queries.
type Resource struct {
	Entries []ResourceEntry
}

// ToSOIF encodes the resource as an @SResource object in the layout of
// the paper's Example 12.
func (r *Resource) ToSOIF() *soif.Object {
	o := soif.New(ResourceType)
	o.Add("Version", query.Version)
	lines := make([]string, len(r.Entries))
	for i, e := range r.Entries {
		lines[i] = e.SourceID + " " + e.MetadataURL
		if e.Format != "" && e.Format != FormatSOIF {
			lines[i] += " " + e.Format
		}
	}
	o.Add("SourceList", strings.Join(lines, "\n"))
	return o
}

// Marshal encodes the resource to SOIF bytes.
func (r *Resource) Marshal() ([]byte, error) {
	return soif.Marshal(r.ToSOIF())
}

// ParseResource decodes an @SResource object from SOIF bytes.
func ParseResource(data []byte) (*Resource, error) {
	o, err := soif.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	return ResourceFromSOIF(o)
}

// ResourceFromSOIF decodes a resource description from a SOIF object.
func ResourceFromSOIF(o *soif.Object) (*Resource, error) {
	if !strings.EqualFold(o.Type, ResourceType) {
		return nil, fmt.Errorf("meta: expected @%s object, found @%s", ResourceType, o.Type)
	}
	r := &Resource{}
	v, ok := o.Get("SourceList")
	if !ok {
		return nil, fmt.Errorf("meta: @%s object has no SourceList", ResourceType)
	}
	for _, line := range strings.Split(v, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		toks := strings.Fields(line)
		if len(toks) != 2 && len(toks) != 3 {
			return nil, fmt.Errorf("meta: SourceList line %q must be `source-id metadata-url [format]`", line)
		}
		e := ResourceEntry{SourceID: toks[0], MetadataURL: toks[1]}
		if len(toks) == 3 {
			e.Format = strings.ToLower(toks[2])
		}
		r.Entries = append(r.Entries, e)
	}
	if len(r.Entries) == 0 {
		return nil, fmt.Errorf("meta: resource exports no sources")
	}
	return r, nil
}
