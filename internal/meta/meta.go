// Package meta implements the STARTS source metadata of Section 4.3: the
// SMetaAttributes object (the MBasic-1 attribute values a source exports so
// metasearchers can rewrite queries for it and interpret its scores), the
// SContentSummary object (the automatically generated, orders-of-magnitude
// smaller description of a source's contents used for source selection),
// and the SResource object (a resource's list of sources and where their
// metadata lives).
package meta

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"starts/internal/attr"
	"starts/internal/lang"
	"starts/internal/query"
	"starts/internal/soif"
)

// MetaType is the SOIF template type of a source-metadata object.
const MetaType = "SMetaAttributes"

// QueryParts says which query-language components a source supports.
type QueryParts string

// QueryPartsSupported values: ranking expressions only, filter expressions
// only, or both.
const (
	PartsRanking QueryParts = "R"
	PartsFilter  QueryParts = "F"
	PartsBoth    QueryParts = "RF"
)

// SupportsFilter reports whether filter expressions are accepted.
func (p QueryParts) SupportsFilter() bool { return p == PartsFilter || p == PartsBoth }

// SupportsRanking reports whether ranking expressions are accepted.
func (p QueryParts) SupportsRanking() bool { return p == PartsRanking || p == PartsBoth }

// FieldSupport declares one searchable field and, optionally, the
// languages used in that field at the source.
type FieldSupport struct {
	Set       attr.SetName // attribute set the field belongs to (basic-1)
	Field     attr.Field
	Languages []lang.Tag
}

// String renders the entry in Example 10 syntax: [basic-1 author], with
// any languages appended inside the brackets.
func (f FieldSupport) String() string {
	parts := []string{string(setOrBasic(f.Set)), string(attr.Normalize(f.Field))}
	for _, t := range f.Languages {
		parts = append(parts, t.String())
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// ModifierSupport declares one supported modifier and, optionally, the
// languages it is supported for (stemming is language-dependent).
type ModifierSupport struct {
	Set       attr.SetName
	Mod       attr.Modifier
	Languages []lang.Tag
}

// String renders the entry in Example 10 syntax: {basic-1 phonetic}.
func (m ModifierSupport) String() string {
	parts := []string{string(setOrBasic(m.Set)), m.Mod.String()}
	for _, t := range m.Languages {
		parts = append(parts, t.String())
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Combination declares one legal field-modifier pairing. A source may
// support the author field and the stem modifier separately and still
// reject stemming author names; only listed combinations are legal.
type Combination struct {
	Field FieldSupport
	Mod   ModifierSupport
}

// String renders the pair in Example 10 syntax:
// ([basic-1 author] {basic-1 phonetic}).
func (c Combination) String() string {
	return "(" + c.Field.String() + " " + c.Mod.String() + ")"
}

// TokenizerUse names the tokenizer a source applies to one language, as in
// (Acme-1 en-US).
type TokenizerUse struct {
	ID  string
	Tag lang.Tag
}

// String renders the entry in TokenizerIDList syntax.
func (t TokenizerUse) String() string {
	return "(" + t.ID + " " + t.Tag.String() + ")"
}

// SourceMeta is a source's complete MBasic-1 metadata.
type SourceMeta struct {
	SourceID string

	// FieldsSupported lists the optional fields searchable at the source,
	// beyond the required ones; required fields may also appear to carry
	// their language lists.
	FieldsSupported []FieldSupport
	// ModifiersSupported lists the supported modifiers.
	ModifiersSupported []ModifierSupport
	// Combinations lists the legal field-modifier pairings.
	Combinations []Combination
	// QueryParts says whether filter and/or ranking expressions are
	// accepted.
	QueryParts QueryParts

	// ScoreMin and ScoreMax bound the document scores the source produces
	// (possibly ±Inf); metasearchers use them to interpret raw scores.
	ScoreMin, ScoreMax float64
	// RankingAlgorithmID identifies the (possibly secret) ranking
	// algorithm; two sources sharing an ID rank identically given
	// identical collections.
	RankingAlgorithmID string
	// Tokenizers names the tokenizer used per language.
	Tokenizers []TokenizerUse
	// SampleDatabaseResults is the URL of the source's query results for
	// the calibration sample collection.
	SampleDatabaseResults string
	// StopWords is the source's stop-word list.
	StopWords []string
	// TurnOffStopWords says whether queries may disable stop-word
	// elimination.
	TurnOffStopWords bool

	// SourceLanguages lists the languages of the source's documents.
	SourceLanguages []lang.Tag
	// SourceName is the human-readable source name.
	SourceName string
	// Linkage is the URL where the source accepts queries.
	Linkage string
	// ContentSummaryLinkage is the URL of the source's content summary.
	ContentSummaryLinkage string
	// DateChanged and DateExpires bound the metadata's validity.
	DateChanged time.Time
	DateExpires time.Time
	// Abstract is a manually written content description.
	Abstract string
	// AccessConstraints describes any usage restrictions or charges.
	AccessConstraints string
	// Contact identifies the source administrator.
	Contact string
}

// dateFormat is the ISO date layout used by the specification examples.
const dateFormat = "2006-01-02"

// SupportsField reports whether the source recognizes the field: required
// Basic-1 fields always, optional fields only when listed.
func (m *SourceMeta) SupportsField(f attr.Field) bool {
	f = attr.Normalize(f)
	if f.IsRequired() {
		return true
	}
	for _, fs := range m.FieldsSupported {
		if attr.Normalize(fs.Field) == f {
			return true
		}
	}
	return false
}

// SupportsModifier reports whether the source supports the modifier.
func (m *SourceMeta) SupportsModifier(mod attr.Modifier) bool {
	for _, ms := range m.ModifiersSupported {
		if ms.Mod == mod {
			return true
		}
	}
	return false
}

// AllowsCombination reports whether applying mod to field is legal at the
// source. Per the specification, sources list legal combinations
// explicitly; a field-modifier pair both individually supported but not
// listed is illegal.
func (m *SourceMeta) AllowsCombination(f attr.Field, mod attr.Modifier) bool {
	f = attr.Normalize(f)
	for _, c := range m.Combinations {
		if attr.Normalize(c.Field.Field) == f && c.Mod.Mod == mod {
			return true
		}
	}
	return false
}

// ToSOIF encodes the metadata as an @SMetaAttributes object in the layout
// of the paper's Example 10.
func (m *SourceMeta) ToSOIF() *soif.Object {
	o := soif.New(MetaType)
	o.Add("Version", query.Version)
	o.Add("SourceID", m.SourceID)
	if len(m.FieldsSupported) > 0 {
		o.Add("FieldsSupported", joinStringers(fieldStrs(m.FieldsSupported)))
	}
	if len(m.ModifiersSupported) > 0 {
		o.Add("ModifiersSupported", joinStringers(modStrs(m.ModifiersSupported)))
	}
	if len(m.Combinations) > 0 {
		parts := make([]string, len(m.Combinations))
		for i, c := range m.Combinations {
			parts[i] = c.String()
		}
		o.Add("FieldModifierCombinations", strings.Join(parts, " "))
	}
	if m.QueryParts != "" {
		o.Add("QueryPartsSupported", string(m.QueryParts))
	}
	o.Add("ScoreRange", formatScore(m.ScoreMin)+" "+formatScore(m.ScoreMax))
	o.Add("RankingAlgorithmID", m.RankingAlgorithmID)
	if len(m.Tokenizers) > 0 {
		parts := make([]string, len(m.Tokenizers))
		for i, t := range m.Tokenizers {
			parts[i] = t.String()
		}
		o.Add("TokenizerIDList", strings.Join(parts, " "))
	}
	if m.SampleDatabaseResults != "" {
		o.Add("SampleDatabaseResults", m.SampleDatabaseResults)
	}
	o.Add("StopWordList", strings.Join(m.StopWords, " "))
	o.Add("TurnOffStopWords", boolTF(m.TurnOffStopWords))
	o.Add("DefaultMetaAttributeSet", string(attr.SetMBasic1))
	if len(m.SourceLanguages) > 0 {
		tags := make([]string, len(m.SourceLanguages))
		for i, t := range m.SourceLanguages {
			tags[i] = t.String()
		}
		o.Add("source-languages", strings.Join(tags, " "))
	}
	if m.SourceName != "" {
		o.Add("source-name", m.SourceName)
	}
	o.Add("linkage", m.Linkage)
	o.Add("content-summary-linkage", m.ContentSummaryLinkage)
	if !m.DateChanged.IsZero() {
		o.Add("date-changed", m.DateChanged.Format(dateFormat))
	}
	if !m.DateExpires.IsZero() {
		o.Add("date-expires", m.DateExpires.Format(dateFormat))
	}
	if m.Abstract != "" {
		o.Add("abstract", m.Abstract)
	}
	if m.AccessConstraints != "" {
		o.Add("access-constraints", m.AccessConstraints)
	}
	if m.Contact != "" {
		o.Add("contact", m.Contact)
	}
	return o
}

// Marshal encodes the metadata to SOIF bytes.
func (m *SourceMeta) Marshal() ([]byte, error) {
	return soif.Marshal(m.ToSOIF())
}

// ParseMeta decodes an @SMetaAttributes object from SOIF bytes.
func ParseMeta(data []byte) (*SourceMeta, error) {
	o, err := soif.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	return MetaFromSOIF(o)
}

// MetaFromSOIF decodes source metadata from a SOIF object.
func MetaFromSOIF(o *soif.Object) (*SourceMeta, error) {
	if !strings.EqualFold(o.Type, MetaType) {
		return nil, fmt.Errorf("meta: expected @%s object, found @%s", MetaType, o.Type)
	}
	m := &SourceMeta{}
	var err error
	m.SourceID = o.GetDefault("SourceID", "")
	for _, v := range o.All("FieldsSupported") {
		fs, err := parseFieldSupports(v)
		if err != nil {
			return nil, err
		}
		m.FieldsSupported = append(m.FieldsSupported, fs...)
	}
	for _, v := range o.All("ModifiersSupported") {
		ms, err := parseModifierSupports(v)
		if err != nil {
			return nil, err
		}
		m.ModifiersSupported = append(m.ModifiersSupported, ms...)
	}
	for _, v := range o.All("FieldModifierCombinations") {
		cs, err := parseCombinations(v)
		if err != nil {
			return nil, err
		}
		m.Combinations = append(m.Combinations, cs...)
	}
	if v, ok := o.Get("QueryPartsSupported"); ok {
		switch qp := QueryParts(strings.ToUpper(strings.TrimSpace(v))); qp {
		case PartsRanking, PartsFilter, PartsBoth:
			m.QueryParts = qp
		default:
			return nil, fmt.Errorf("meta: QueryPartsSupported %q must be R, F or RF", v)
		}
	}
	if v, ok := o.Get("ScoreRange"); ok {
		if m.ScoreMin, m.ScoreMax, err = parseScoreRange(v); err != nil {
			return nil, err
		}
	}
	m.RankingAlgorithmID = o.GetDefault("RankingAlgorithmID", "")
	if v, ok := o.Get("TokenizerIDList"); ok {
		if m.Tokenizers, err = parseTokenizerList(v); err != nil {
			return nil, err
		}
	}
	m.SampleDatabaseResults = o.GetDefault("SampleDatabaseResults", "")
	if v, ok := o.Get("StopWordList"); ok && strings.TrimSpace(v) != "" {
		m.StopWords = strings.Fields(v)
	}
	if v, ok := o.Get("TurnOffStopWords"); ok {
		if m.TurnOffStopWords, err = parseTF(v); err != nil {
			return nil, fmt.Errorf("meta: TurnOffStopWords: %w", err)
		}
	}
	if v, ok := o.Get("source-languages"); ok {
		for _, s := range strings.Fields(v) {
			t, err := lang.ParseTag(s)
			if err != nil {
				return nil, fmt.Errorf("meta: source-languages: %w", err)
			}
			m.SourceLanguages = append(m.SourceLanguages, t)
		}
	}
	m.SourceName = o.GetDefault("source-name", "")
	m.Linkage = o.GetDefault("linkage", "")
	m.ContentSummaryLinkage = o.GetDefault("content-summary-linkage", "")
	if v, ok := o.Get("date-changed"); ok {
		if m.DateChanged, err = time.Parse(dateFormat, strings.TrimSpace(v)); err != nil {
			return nil, fmt.Errorf("meta: date-changed: %w", err)
		}
	}
	if v, ok := o.Get("date-expires"); ok {
		if m.DateExpires, err = time.Parse(dateFormat, strings.TrimSpace(v)); err != nil {
			return nil, fmt.Errorf("meta: date-expires: %w", err)
		}
	}
	m.Abstract = o.GetDefault("abstract", "")
	m.AccessConstraints = o.GetDefault("access-constraints", "")
	m.Contact = o.GetDefault("contact", "")
	return m, nil
}

// parseFieldSupports parses one or more [set field lang...] groups.
func parseFieldSupports(v string) ([]FieldSupport, error) {
	groups, err := bracketGroups(v, '[', ']')
	if err != nil {
		return nil, fmt.Errorf("meta: FieldsSupported: %w", err)
	}
	var out []FieldSupport
	for _, g := range groups {
		toks := strings.Fields(g)
		if len(toks) < 2 {
			return nil, fmt.Errorf("meta: FieldsSupported entry %q needs set and field", g)
		}
		fs := FieldSupport{Set: attr.SetName(strings.ToLower(toks[0])), Field: attr.Normalize(attr.Field(toks[1]))}
		for _, s := range toks[2:] {
			t, err := lang.ParseTag(s)
			if err != nil {
				return nil, fmt.Errorf("meta: FieldsSupported language: %w", err)
			}
			fs.Languages = append(fs.Languages, t)
		}
		out = append(out, fs)
	}
	return out, nil
}

// parseModifierSupports parses one or more {set modifier lang...} groups.
func parseModifierSupports(v string) ([]ModifierSupport, error) {
	groups, err := bracketGroups(v, '{', '}')
	if err != nil {
		return nil, fmt.Errorf("meta: ModifiersSupported: %w", err)
	}
	var out []ModifierSupport
	for _, g := range groups {
		toks := strings.Fields(g)
		if len(toks) < 2 {
			return nil, fmt.Errorf("meta: ModifiersSupported entry %q needs set and modifier", g)
		}
		ms := ModifierSupport{Set: attr.SetName(strings.ToLower(toks[0])), Mod: normalizeModifier(toks[1])}
		for _, s := range toks[2:] {
			t, err := lang.ParseTag(s)
			if err != nil {
				return nil, fmt.Errorf("meta: ModifiersSupported language: %w", err)
			}
			ms.Languages = append(ms.Languages, t)
		}
		out = append(out, ms)
	}
	return out, nil
}

// parseCombinations parses ([set field] {set mod}) pairs.
func parseCombinations(v string) ([]Combination, error) {
	var out []Combination
	rest := strings.TrimSpace(v)
	for rest != "" {
		if rest[0] != '(' {
			return nil, fmt.Errorf("meta: FieldModifierCombinations: expected '(' at %q", rest)
		}
		end := strings.IndexByte(rest, ')')
		if end < 0 {
			return nil, fmt.Errorf("meta: FieldModifierCombinations: unterminated pair in %q", rest)
		}
		pair := rest[1:end]
		rest = strings.TrimSpace(rest[end+1:])
		fss, err := parseFieldSupports(extractDelims(pair, '[', ']'))
		if err != nil || len(fss) != 1 {
			return nil, fmt.Errorf("meta: combination %q: bad field part (%v)", pair, err)
		}
		mss, err := parseModifierSupports(extractDelims(pair, '{', '}'))
		if err != nil || len(mss) != 1 {
			return nil, fmt.Errorf("meta: combination %q: bad modifier part (%v)", pair, err)
		}
		out = append(out, Combination{Field: fss[0], Mod: mss[0]})
	}
	return out, nil
}

// parseTokenizerList parses (ID tag) pairs.
func parseTokenizerList(v string) ([]TokenizerUse, error) {
	groups, err := bracketGroups(v, '(', ')')
	if err != nil {
		return nil, fmt.Errorf("meta: TokenizerIDList: %w", err)
	}
	var out []TokenizerUse
	for _, g := range groups {
		toks := strings.Fields(g)
		if len(toks) != 2 {
			return nil, fmt.Errorf("meta: TokenizerIDList entry %q needs ID and language", g)
		}
		t, err := lang.ParseTag(toks[1])
		if err != nil {
			return nil, fmt.Errorf("meta: TokenizerIDList language: %w", err)
		}
		out = append(out, TokenizerUse{ID: toks[0], Tag: t})
	}
	return out, nil
}

// bracketGroups splits "[a b] [c]" style values into their group bodies.
func bracketGroups(v string, open, close byte) ([]string, error) {
	var groups []string
	rest := strings.TrimSpace(v)
	for rest != "" {
		if rest[0] != open {
			return nil, fmt.Errorf("expected %q at %q", open, rest)
		}
		end := strings.IndexByte(rest, close)
		if end < 0 {
			return nil, fmt.Errorf("unterminated %q group in %q", open, rest)
		}
		groups = append(groups, rest[1:end])
		rest = strings.TrimSpace(rest[end+1:])
	}
	return groups, nil
}

// extractDelims returns the first delimited group of s including its
// delimiters, or "" when absent.
func extractDelims(s string, open, close byte) string {
	i := strings.IndexByte(s, open)
	if i < 0 {
		return ""
	}
	j := strings.IndexByte(s[i:], close)
	if j < 0 {
		return ""
	}
	return s[i : i+j+1]
}

// normalizeModifier maps spelling variants (the paper's Example 10 says
// "phonetics" where the modifier table says "Phonetic") onto canonical
// modifier names.
func normalizeModifier(s string) attr.Modifier {
	s = strings.ToLower(s)
	if s == "phonetics" {
		return attr.ModPhonetic
	}
	return attr.Modifier(s)
}

func parseScoreRange(v string) (min, max float64, err error) {
	toks := strings.Fields(v)
	if len(toks) != 2 {
		return 0, 0, fmt.Errorf("meta: ScoreRange %q must have a minimum and a maximum", v)
	}
	if min, err = parseScore(toks[0]); err != nil {
		return 0, 0, err
	}
	if max, err = parseScore(toks[1]); err != nil {
		return 0, 0, err
	}
	if min > max {
		return 0, 0, fmt.Errorf("meta: ScoreRange %q has minimum above maximum", v)
	}
	return min, max, nil
}

// parseScore accepts plain floats and the ±Infinity spellings the
// specification allows.
func parseScore(s string) (float64, error) {
	switch strings.ToLower(s) {
	case "-infinity", "-inf":
		return math.Inf(-1), nil
	case "+infinity", "infinity", "+inf", "inf":
		return math.Inf(1), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("meta: score %q: %w", s, err)
	}
	return f, nil
}

func formatScore(f float64) string {
	switch {
	case math.IsInf(f, -1):
		return "-Infinity"
	case math.IsInf(f, 1):
		return "+Infinity"
	case f == math.Trunc(f) && math.Abs(f) < 1e6:
		return strconv.FormatFloat(f, 'f', 1, 64)
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

func joinStringers(parts []string) string { return strings.Join(parts, " ") }

func fieldStrs(fs []FieldSupport) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String()
	}
	return out
}

func modStrs(ms []ModifierSupport) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.String()
	}
	return out
}

func setOrBasic(s attr.SetName) attr.SetName {
	if s == "" {
		return attr.SetBasic1
	}
	return s
}

func boolTF(b bool) string {
	if b {
		return "T"
	}
	return "F"
}

func parseTF(v string) (bool, error) {
	switch strings.ToUpper(strings.TrimSpace(v)) {
	case "T", "TRUE":
		return true, nil
	case "F", "FALSE":
		return false, nil
	}
	return false, fmt.Errorf("expected T or F, found %q", v)
}
