package meta

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"starts/internal/attr"
	"starts/internal/lang"
	"starts/internal/query"
	"starts/internal/soif"
)

// SummaryType is the SOIF template type of a content summary.
const SummaryType = "SContentSummary"

// TermInfo is one vocabulary entry of a content summary: a word with its
// total number of postings (occurrences) and its document frequency in the
// source.
type TermInfo struct {
	Term     string
	Postings int
	DocFreq  int
}

// SummaryGroup is the vocabulary of one (field, language) slice of the
// source, as in the paper's Example 11 where English and Spanish title
// words form separate groups.
type SummaryGroup struct {
	Field    attr.Field
	Language lang.Tag
	Terms    []TermInfo
}

// ContentSummary is the automatically generated partial description of a
// source's contents that metasearchers harvest to decide which sources are
// promising for a query. The four flag bits describe how the listed words
// were processed, so that a metasearcher can push query terms through the
// same pipeline before probing the summary.
type ContentSummary struct {
	// Stemming reports whether the listed words are stemmed. Preferably
	// not.
	Stemming bool
	// StopWordsIncluded reports whether stop words appear in the list.
	// Preferably yes.
	StopWordsIncluded bool
	// CaseSensitive reports whether the words are case sensitive.
	CaseSensitive bool
	// FieldsQualified reports whether words carry the field they occurred
	// in. Preferably yes.
	FieldsQualified bool
	// NumDocs is the total number of documents in the source.
	NumDocs int
	// Groups hold the per-(field, language) vocabularies.
	Groups []SummaryGroup
}

// Lookup finds the statistics for term under the given field and language.
// When the summary is not field-qualified, the field argument is ignored
// and the single unqualified group is probed. A zero language matches any
// group language.
func (c *ContentSummary) Lookup(field attr.Field, tag lang.Tag, term string) (TermInfo, bool) {
	field = attr.Normalize(field)
	for i := range c.Groups {
		g := &c.Groups[i]
		if c.FieldsQualified && field != attr.FieldAny && attr.Normalize(g.Field) != field {
			continue
		}
		if !g.Language.Matches(tag) {
			continue
		}
		if ti, ok := g.find(term, c.CaseSensitive); ok {
			return ti, true
		}
	}
	return TermInfo{}, false
}

// DocFreq sums the document frequency of term across all groups matching
// the field and language, the statistic GlOSS-style source selection uses.
// The sum over fields may overcount documents containing the term in
// several fields; it is an upper bound, which is what selection needs.
func (c *ContentSummary) DocFreq(field attr.Field, tag lang.Tag, term string) int {
	field = attr.Normalize(field)
	total := 0
	for i := range c.Groups {
		g := &c.Groups[i]
		if c.FieldsQualified && field != attr.FieldAny && attr.Normalize(g.Field) != field {
			continue
		}
		if !g.Language.Matches(tag) {
			continue
		}
		if ti, ok := g.find(term, c.CaseSensitive); ok {
			total += ti.DocFreq
		}
	}
	return total
}

func (g *SummaryGroup) find(term string, caseSensitive bool) (TermInfo, bool) {
	// Groups keep terms sorted; binary search on the exact spelling first.
	i := sort.Search(len(g.Terms), func(i int) bool { return g.Terms[i].Term >= term })
	if i < len(g.Terms) && g.Terms[i].Term == term {
		return g.Terms[i], true
	}
	if !caseSensitive {
		lower := strings.ToLower(term)
		i := sort.Search(len(g.Terms), func(i int) bool { return g.Terms[i].Term >= lower })
		if i < len(g.Terms) && g.Terms[i].Term == lower {
			return g.Terms[i], true
		}
	}
	return TermInfo{}, false
}

// SortTerms sorts every group's vocabulary, which Lookup requires.
func (c *ContentSummary) SortTerms() {
	for i := range c.Groups {
		g := &c.Groups[i]
		sort.Slice(g.Terms, func(a, b int) bool { return g.Terms[a].Term < g.Terms[b].Term })
	}
}

// TotalTerms returns the number of vocabulary entries across all groups.
func (c *ContentSummary) TotalTerms() int {
	n := 0
	for i := range c.Groups {
		n += len(c.Groups[i].Terms)
	}
	return n
}

// ToSOIF encodes the summary as an @SContentSummary object in the layout
// of the paper's Example 11: the flag bits, NumDocs, then repeated
// Field/Language/TermDocFreq attribute groups.
func (c *ContentSummary) ToSOIF() *soif.Object {
	o := soif.New(SummaryType)
	o.Add("Version", query.Version)
	o.Add("Stemming", boolTF(c.Stemming))
	o.Add("StopWords", boolTF(c.StopWordsIncluded))
	o.Add("CaseSensitive", boolTF(c.CaseSensitive))
	o.Add("Fields", boolTF(c.FieldsQualified))
	o.Add("NumDocs", strconv.Itoa(c.NumDocs))
	for i := range c.Groups {
		g := &c.Groups[i]
		if c.FieldsQualified {
			o.Add("Field", string(attr.Normalize(g.Field)))
		}
		if !g.Language.IsZero() {
			o.Add("Language", g.Language.String())
		}
		lines := make([]string, len(g.Terms))
		for j, ti := range g.Terms {
			lines[j] = fmt.Sprintf("%s %d %d", lang.Quote(ti.Term), ti.Postings, ti.DocFreq)
		}
		o.Add("TermDocFreq", strings.Join(lines, "\n"))
	}
	return o
}

// Marshal encodes the summary to SOIF bytes.
func (c *ContentSummary) Marshal() ([]byte, error) {
	return soif.Marshal(c.ToSOIF())
}

// ParseSummary decodes an @SContentSummary object from SOIF bytes.
func ParseSummary(data []byte) (*ContentSummary, error) {
	o, err := soif.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	return SummaryFromSOIF(o)
}

// SummaryFromSOIF decodes a content summary from a SOIF object. The
// repeated Field/Language/TermDocFreq attributes are grouped by order:
// each TermDocFreq closes the group opened by the preceding Field and/or
// Language attributes.
func SummaryFromSOIF(o *soif.Object) (*ContentSummary, error) {
	if !strings.EqualFold(o.Type, SummaryType) {
		return nil, fmt.Errorf("meta: expected @%s object, found @%s", SummaryType, o.Type)
	}
	c := &ContentSummary{}
	var err error
	var cur SummaryGroup
	for _, a := range o.Attrs {
		switch strings.ToLower(a.Name) {
		case "version":
		case "stemming":
			if c.Stemming, err = parseTF(a.Value); err != nil {
				return nil, fmt.Errorf("meta: Stemming: %w", err)
			}
		case "stopwords":
			if c.StopWordsIncluded, err = parseTF(a.Value); err != nil {
				return nil, fmt.Errorf("meta: StopWords: %w", err)
			}
		case "casesensitive":
			if c.CaseSensitive, err = parseTF(a.Value); err != nil {
				return nil, fmt.Errorf("meta: CaseSensitive: %w", err)
			}
		case "fields":
			if c.FieldsQualified, err = parseTF(a.Value); err != nil {
				return nil, fmt.Errorf("meta: Fields: %w", err)
			}
		case "numdocs":
			if c.NumDocs, err = strconv.Atoi(strings.TrimSpace(a.Value)); err != nil {
				return nil, fmt.Errorf("meta: NumDocs %q: %w", a.Value, err)
			}
		case "field":
			cur.Field = attr.Normalize(attr.Field(strings.TrimSpace(a.Value)))
		case "language":
			if cur.Language, err = lang.ParseTag(strings.TrimSpace(a.Value)); err != nil {
				return nil, fmt.Errorf("meta: group language: %w", err)
			}
		case "termdocfreq":
			g := cur
			if g.Terms, err = parseTermInfos(a.Value); err != nil {
				return nil, err
			}
			c.Groups = append(c.Groups, g)
			cur = SummaryGroup{}
		default:
			return nil, fmt.Errorf("meta: unknown content-summary attribute %q", a.Name)
		}
	}
	c.SortTerms()
	return c, nil
}

// parseTermInfos decodes `"algorithm" 100 53 "analysis" 50 23` sequences.
func parseTermInfos(v string) ([]TermInfo, error) {
	var out []TermInfo
	rest := v
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return out, nil
		}
		ls, after, err := lang.ScanLString(rest)
		if err != nil {
			return nil, fmt.Errorf("meta: TermDocFreq term: %w", err)
		}
		var ti TermInfo
		ti.Term = ls.Text
		var tok string
		if tok, after = nextTok(after); tok == "" {
			return nil, fmt.Errorf("meta: TermDocFreq entry %q is missing its postings count", ti.Term)
		}
		if ti.Postings, err = strconv.Atoi(tok); err != nil {
			return nil, fmt.Errorf("meta: TermDocFreq postings %q: %w", tok, err)
		}
		if tok, after = nextTok(after); tok == "" {
			return nil, fmt.Errorf("meta: TermDocFreq entry %q is missing its document frequency", ti.Term)
		}
		if ti.DocFreq, err = strconv.Atoi(tok); err != nil {
			return nil, fmt.Errorf("meta: TermDocFreq docfreq %q: %w", tok, err)
		}
		out = append(out, ti)
		rest = after
	}
}

func nextTok(s string) (tok, rest string) {
	s = strings.TrimLeft(s, " \t\r\n")
	i := strings.IndexAny(s, " \t\r\n")
	if i < 0 {
		return s, ""
	}
	return s[:i], s[i:]
}
