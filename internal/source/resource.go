package source

import (
	"fmt"
	"sort"
	"strings"

	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/result"
)

// Resource groups sources behind one contact point, as in Figure 1 of the
// paper. Queries are submitted to one source and may name other local
// sources to evaluate at; the resource merges those results and eliminates
// duplicate documents by linkage, something an outside metasearcher
// querying the sources independently could not do as reliably.
type Resource struct {
	order   []string
	sources map[string]*Source
}

// NewResource returns an empty resource.
func NewResource() *Resource {
	return &Resource{sources: map[string]*Source{}}
}

// Add registers a source; source IDs must be unique within the resource.
func (r *Resource) Add(s *Source) error {
	if _, dup := r.sources[s.ID()]; dup {
		return fmt.Errorf("resource: source %q already registered", s.ID())
	}
	r.sources[s.ID()] = s
	r.order = append(r.order, s.ID())
	return nil
}

// Source returns a source by ID.
func (r *Resource) Source(id string) (*Source, bool) {
	s, ok := r.sources[id]
	return s, ok
}

// SourceIDs lists the resource's sources in registration order.
func (r *Resource) SourceIDs() []string {
	return append([]string(nil), r.order...)
}

// Description exports the @SResource contact object.
func (r *Resource) Description() *meta.Resource {
	d := &meta.Resource{}
	for _, id := range r.order {
		d.Entries = append(d.Entries, meta.ResourceEntry{
			SourceID:    id,
			MetadataURL: r.sources[id].MetaURL(),
		})
	}
	return d
}

// Search evaluates a query at the target source plus any additional local
// sources the query names (Query.Sources), merging the per-source results
// and collapsing duplicate documents: a document present at several
// sources appears once, listing every source that held it, with its best
// score. The header echoes the intersection-style actual query of the
// target source.
func (r *Resource) Search(target string, q *query.Query) (*result.Results, error) {
	ids, err := r.resolveSources(target, q.Sources)
	if err != nil {
		return nil, err
	}
	merged := &result.Results{Sources: ids}
	byURL := map[string]*result.Document{}
	var orderURLs []string
	for i, id := range ids {
		src := r.sources[id]
		res, err := src.Search(q)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			// The target source's actual query describes the evaluation.
			merged.ActualFilter = res.ActualFilter
			merged.ActualRanking = res.ActualRanking
		}
		for _, d := range res.Documents {
			url := d.Linkage()
			if prev, dup := byURL[url]; dup {
				prev.Sources = append(prev.Sources, id)
				if d.RawScore > prev.RawScore {
					prev.RawScore = d.RawScore
					prev.TermStats = d.TermStats
				}
				continue
			}
			byURL[url] = d
			orderURLs = append(orderURLs, url)
		}
	}
	for _, url := range orderURLs {
		merged.Documents = append(merged.Documents, byURL[url])
	}
	// Re-sort by score and re-apply the result cap across sources.
	sort.SliceStable(merged.Documents, func(i, j int) bool {
		return merged.Documents[i].RawScore > merged.Documents[j].RawScore
	})
	if max := q.EffectiveMaxResults(); len(merged.Documents) > max {
		merged.Documents = merged.Documents[:max]
	}
	return merged, nil
}

// resolveSources validates the target and additional source names. The
// target is always evaluated first; duplicates collapse.
func (r *Resource) resolveSources(target string, extra []string) ([]string, error) {
	if _, ok := r.sources[target]; !ok {
		return nil, fmt.Errorf("resource: unknown target source %q (have %s)", target, strings.Join(r.order, ", "))
	}
	ids := []string{target}
	seen := map[string]bool{target: true}
	for _, id := range extra {
		if seen[id] {
			continue
		}
		if _, ok := r.sources[id]; !ok {
			return nil, fmt.Errorf("resource: query names unknown source %q", id)
		}
		seen[id] = true
		ids = append(ids, id)
	}
	return ids, nil
}
