package source

import (
	"strings"
	"testing"
	"time"

	"starts/internal/attr"
	"starts/internal/engine"
	"starts/internal/index"
	"starts/internal/lang"
	"starts/internal/meta"
	"starts/internal/query"
)

func docsA() []*index.Document {
	return []*index.Document{
		{
			Linkage: "http://a/1", Title: "Distributed database systems",
			Authors: []string{"Jeffrey Ullman"},
			Body:    "Distributed databases and their query processors.",
			Date:    time.Date(1995, 3, 1, 0, 0, 0, 0, time.UTC),
		},
		{
			Linkage: "http://shared/doc", Title: "Shared survey of metasearch",
			Authors: []string{"Luis Gravano"},
			Body:    "Metasearchers choose sources, evaluate queries and merge ranks.",
			Date:    time.Date(1996, 4, 1, 0, 0, 0, 0, time.UTC),
		},
	}
}

func docsB() []*index.Document {
	return []*index.Document{
		{
			Linkage: "http://b/1", Title: "Gardening for systems researchers",
			Authors: []string{"Green Thumb"},
			Body:    "Tomatoes, pruning, compost and distributed irrigation.",
			Date:    time.Date(1994, 7, 1, 0, 0, 0, 0, time.UTC),
		},
		{
			Linkage: "http://shared/doc", Title: "Shared survey of metasearch",
			Authors: []string{"Luis Gravano"},
			Body:    "Metasearchers choose sources, evaluate queries and merge ranks.",
			Date:    time.Date(1996, 4, 1, 0, 0, 0, 0, time.UTC),
		},
	}
}

func newSource(t *testing.T, id string, cfg engine.Config, docs []*index.Document) *Source {
	t.Helper()
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(id, eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddAll(docs); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	eng, _ := engine.New(engine.NewVectorConfig())
	if _, err := New("", eng); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := New("has space", eng); err == nil {
		t.Error("id with whitespace accepted")
	}
	if _, err := New("ok", nil); err == nil {
		t.Error("nil engine accepted")
	}
}

func TestSearchStampsSource(t *testing.T) {
	s := newSource(t, "Source-1", engine.NewVectorConfig(), docsA())
	q := query.New()
	q.Ranking, _ = query.ParseRanking(`list((any "distributed"))`)
	res, err := s.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sources) != 1 || res.Sources[0] != "Source-1" {
		t.Errorf("result sources = %v", res.Sources)
	}
	for _, d := range res.Documents {
		if len(d.Sources) != 1 || d.Sources[0] != "Source-1" {
			t.Errorf("doc sources = %v", d.Sources)
		}
	}
}

// TestMetadataGeneration checks that a source's generated metadata has
// every required MBasic-1 attribute and matches the engine's profile.
func TestMetadataGeneration(t *testing.T) {
	s := newSource(t, "Source-1", engine.NewVectorConfig(), docsA())
	s.SetName("Stanford DB Group")
	s.Languages = []lang.Tag{lang.EnglishUS}
	s.Changed = time.Date(1996, 3, 31, 0, 0, 0, 0, time.UTC)
	s.SetBaseURL("http://www-db.stanford.edu/source-1")

	m := s.Metadata()
	if m.SourceID != "Source-1" || m.SourceName != "Stanford DB Group" {
		t.Errorf("identity = %q %q", m.SourceID, m.SourceName)
	}
	if m.QueryParts != meta.PartsBoth {
		t.Errorf("QueryParts = %q", m.QueryParts)
	}
	if m.RankingAlgorithmID != "Acme-1" {
		t.Errorf("RankingAlgorithmID = %q", m.RankingAlgorithmID)
	}
	if m.ScoreMin != 0 || m.ScoreMax != 1 {
		t.Errorf("ScoreRange = %g %g", m.ScoreMin, m.ScoreMax)
	}
	if !m.TurnOffStopWords {
		t.Error("TurnOffStopWords should be true for the vector profile")
	}
	if len(m.StopWords) == 0 {
		t.Error("StopWordList empty")
	}
	if m.Linkage != "http://www-db.stanford.edu/source-1/query" {
		t.Errorf("Linkage = %q", m.Linkage)
	}
	if m.ContentSummaryLinkage != "http://www-db.stanford.edu/source-1/summary" {
		t.Errorf("ContentSummaryLinkage = %q", m.ContentSummaryLinkage)
	}
	if m.SampleDatabaseResults != "http://www-db.stanford.edu/source-1/sample" {
		t.Errorf("SampleDatabaseResults = %q", m.SampleDatabaseResults)
	}
	if !m.SupportsField(attr.FieldAuthor) || !m.SupportsField(attr.FieldTitle) {
		t.Error("field support lost in metadata")
	}
	if !m.SupportsModifier(attr.ModStem) {
		t.Error("modifier support lost in metadata")
	}
	if !m.AllowsCombination(attr.FieldAuthor, attr.ModStem) {
		t.Error("combination support lost in metadata")
	}
	if m.AllowsCombination(attr.FieldTitle, attr.ModGT) {
		t.Error("> on title should not be a legal combination")
	}
	if len(m.Tokenizers) != 1 || m.Tokenizers[0].ID == "" {
		t.Errorf("tokenizers = %+v", m.Tokenizers)
	}
	// The metadata object round trips through SOIF.
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := meta.ParseMeta(data); err != nil {
		t.Fatalf("generated metadata does not reparse: %v", err)
	}
}

// TestContentSummaryGeneration is the generation half of experiment X1:
// the summary reflects the engine's analyzer, has a group per field, and
// true document frequencies.
func TestContentSummaryGeneration(t *testing.T) {
	s := newSource(t, "Source-1", engine.NewVectorConfig(), docsA())
	c := s.ContentSummary()
	if c.NumDocs != 2 {
		t.Errorf("NumDocs = %d", c.NumDocs)
	}
	if !c.Stemming {
		t.Error("stemming engine must report a stemmed summary")
	}
	if !c.StopWordsIncluded || !c.FieldsQualified || c.CaseSensitive {
		t.Errorf("flags = %+v", c)
	}
	// "distributed" stems to "distribut"; both docsA bodies contain it...
	// doc 2 body has "distributed"? No: only doc 1. DocFreq must be 1 in
	// body-of-text.
	if df := c.DocFreq(attr.FieldBodyOfText, lang.Tag{}, "distribut"); df != 1 {
		t.Errorf("DocFreq(distribut) = %d", df)
	}
	// Stop words appear in the summary.
	if _, ok := c.Lookup(attr.FieldBodyOfText, lang.Tag{}, "and"); !ok {
		t.Error("stop word missing from summary")
	}
	// Round trip.
	data, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := meta.ParseSummary(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalTerms() != c.TotalTerms() {
		t.Errorf("summary round trip: %d != %d terms", back.TotalTerms(), c.TotalTerms())
	}
}

// TestSampleResults is experiment X8's substrate: every source produces
// results for the same known collection and queries; incompatible scorers
// produce incompatible scores for identical content.
func TestSampleResults(t *testing.T) {
	s1 := newSource(t, "S1", engine.NewVectorConfig(), docsA())
	cfgTopK := engine.NewVectorConfig()
	cfgTopK.Scorer = engine.TopK{}
	s2 := newSource(t, "S2", cfgTopK, docsA())

	e1, err := s1.SampleResults()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := s2.SampleResults()
	if err != nil {
		t.Fatal(err)
	}
	if len(e1) != len(SampleQueries()) || len(e1) != len(e2) {
		t.Fatalf("entries = %d, %d", len(e1), len(e2))
	}
	// Same collection, same query, same top document — different scores.
	if len(e1[0].Results.Documents) == 0 || len(e2[0].Results.Documents) == 0 {
		t.Fatal("sample queries returned nothing")
	}
	top1, top2 := e1[0].Results.Documents[0], e2[0].Results.Documents[0]
	if top1.Linkage() != top2.Linkage() {
		t.Errorf("same ranking algorithm family should agree on top doc: %s vs %s", top1.Linkage(), top2.Linkage())
	}
	if top2.RawScore != 1000 {
		t.Errorf("TopK top score = %g", top2.RawScore)
	}
	if top1.RawScore >= 1 {
		t.Errorf("TFIDF top score = %g", top1.RawScore)
	}

	// The sample stream round trips.
	data, err := MarshalSample(e1)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSample(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(e1) {
		t.Errorf("parsed %d entries, want %d", len(back), len(e1))
	}
	if back[0].Results.Documents[0].Linkage() != top1.Linkage() {
		t.Error("sample round trip changed results")
	}
}

func TestParseSampleErrors(t *testing.T) {
	if _, err := ParseSample(nil); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := ParseSample([]byte("@SQResults{\n}\n")); err == nil {
		t.Error("stream starting with results accepted")
	}
	q := query.New()
	q.Ranking, _ = query.ParseRanking(`list("x")`)
	qb, _ := q.Marshal()
	if _, err := ParseSample(qb); err == nil {
		t.Error("query without results accepted")
	}
}

// TestFigure1Model is experiment E4: a query submitted to Source-1 naming
// Source-2 is evaluated at both, and the shared document appears once,
// listing both sources.
func TestFigure1Model(t *testing.T) {
	r := NewResource()
	s1 := newSource(t, "Source-1", engine.NewVectorConfig(), docsA())
	s2 := newSource(t, "Source-2", engine.NewVectorConfig(), docsB())
	if err := r.Add(s1); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(s2); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(s1); err == nil {
		t.Error("duplicate source accepted")
	}

	q := query.New()
	q.Ranking, _ = query.ParseRanking(`list((any "metasearchers") (any "distributed"))`)
	q.Sources = []string{"Source-2"}
	res, err := r.Search("Source-1", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sources) != 2 {
		t.Errorf("result sources = %v", res.Sources)
	}
	var shared *int
	seen := map[string]int{}
	for i, d := range res.Documents {
		seen[d.Linkage()]++
		if d.Linkage() == "http://shared/doc" {
			i := i
			shared = &i
		}
	}
	for url, n := range seen {
		if n > 1 {
			t.Errorf("duplicate document %s appears %d times", url, n)
		}
	}
	if shared == nil {
		t.Fatal("shared document missing")
	}
	d := res.Documents[*shared]
	if len(d.Sources) != 2 {
		t.Errorf("shared doc sources = %v", d.Sources)
	}

	// Resource description points at per-source metadata.
	desc := r.Description()
	if len(desc.Entries) != 2 || !strings.HasSuffix(desc.Entries[0].MetadataURL, "/metadata") {
		t.Errorf("description = %+v", desc.Entries)
	}

	// Unknown sources are rejected.
	if _, err := r.Search("nope", q); err == nil {
		t.Error("unknown target accepted")
	}
	q2 := query.New()
	q2.Ranking, _ = query.ParseRanking(`list("x")`)
	q2.Sources = []string{"nope"}
	if _, err := r.Search("Source-1", q2); err == nil {
		t.Error("unknown extra source accepted")
	}
	if ids := r.SourceIDs(); len(ids) != 2 || ids[0] != "Source-1" {
		t.Errorf("SourceIDs = %v", ids)
	}
	if _, ok := r.Source("Source-2"); !ok {
		t.Error("Source lookup failed")
	}
}
