package source

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"starts/internal/index"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/soif"
)

// SampleCollection returns the canonical calibration collection: a small,
// fixed set of documents with controlled term-frequency structure that
// every source indexes identically. Because metasearchers know exactly
// what is in it, the scores a source reports for the sample queries reveal
// how its secret ranking algorithm behaves.
func SampleCollection() []*index.Document {
	date := func(y int) time.Time { return time.Date(y, 1, 1, 0, 0, 0, 0, time.UTC) }
	return []*index.Document{
		{
			Linkage: "sample://doc-1",
			Title:   "Distributed query processing",
			Authors: []string{"Sample Author One"},
			Body:    "distributed distributed distributed query processing engines",
			Date:    date(1990),
		},
		{
			Linkage: "sample://doc-2",
			Title:   "Query optimization in database systems",
			Authors: []string{"Sample Author Two"},
			Body:    "query optimization database database systems transactions",
			Date:    date(1991),
		},
		{
			Linkage: "sample://doc-3",
			Title:   "Database systems overview",
			Authors: []string{"Sample Author Three"},
			Body:    "database database database database systems overview concurrency recovery",
			Date:    date(1992),
		},
		{
			Linkage: "sample://doc-4",
			Title:   "Information retrieval evaluation",
			Authors: []string{"Sample Author Four"},
			Body:    "retrieval evaluation precision recall ranking relevance distributed collections",
			Date:    date(1993),
		},
		{
			Linkage: "sample://doc-5",
			Title:   "Unrelated gardening notes",
			Authors: []string{"Sample Author Five"},
			Body:    "tomato cucumber watering pruning soil compost seasons harvest",
			Date:    date(1994),
		},
	}
}

// SampleQueries returns the canonical calibration queries: single- and
// multi-term ranking queries over the sample collection with known term
// distributions.
func SampleQueries() []*query.Query {
	mk := func(ranking string) *query.Query {
		q := query.New()
		r, err := query.ParseRanking(ranking)
		if err != nil {
			panic(fmt.Sprintf("source: bad sample query %q: %v", ranking, err))
		}
		q.Ranking = r
		q.MaxResults = len(SampleCollection())
		return q
	}
	return []*query.Query{
		mk(`list((body-of-text "database"))`),
		mk(`list((body-of-text "distributed"))`),
		mk(`list((body-of-text "query") (body-of-text "database"))`),
		mk(`list((body-of-text "retrieval") (body-of-text "ranking") (body-of-text "evaluation"))`),
	}
}

// ParseSample decodes a sample-results stream produced by MarshalSample:
// alternating @SQuery objects and @SQResults/@SQRDocument runs.
func ParseSample(data []byte) ([]*SampleEntry, error) {
	objs, err := soif.UnmarshalAll(data)
	if err != nil {
		return nil, err
	}
	var out []*SampleEntry
	i := 0
	for i < len(objs) {
		if !strings.EqualFold(objs[i].Type, query.SQueryType) {
			return nil, fmt.Errorf("source: sample stream: expected @SQuery at object %d, found @%s", i, objs[i].Type)
		}
		q, err := query.FromSOIF(objs[i])
		if err != nil {
			return nil, err
		}
		i++
		if i >= len(objs) || !strings.EqualFold(objs[i].Type, result.ResultsType) {
			return nil, errors.New("source: sample stream: query without results")
		}
		j := i + 1
		for j < len(objs) && strings.EqualFold(objs[j].Type, result.DocumentType) {
			j++
		}
		res, err := result.FromSOIF(objs[i:j])
		if err != nil {
			return nil, err
		}
		out = append(out, &SampleEntry{Query: q, Results: res})
		i = j
	}
	if len(out) == 0 {
		return nil, errors.New("source: empty sample stream")
	}
	return out, nil
}
