// Package source implements STARTS sources and resources. A Source wraps
// a search engine with everything the protocol requires it to export:
// MBasic-1 metadata generated from the engine's capability profile, an
// automatically generated content summary, and the sample-database results
// used to calibrate black-box rankers. A Resource groups sources (Figure 1
// of the paper) and evaluates queries across several of its sources at
// once, eliminating duplicate documents — which an outside metasearcher
// could not do reliably on its own.
package source

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"starts/internal/attr"
	"starts/internal/engine"
	"starts/internal/index"
	"starts/internal/lang"
	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/result"
)

// Source is one STARTS document source: a collection of text documents
// with an associated search engine.
type Source struct {
	id      string
	name    string
	eng     *engine.Engine
	baseURL string
	// Abstract is the optional hand-written description.
	Abstract string
	// Languages lists the collection's languages, exported in metadata.
	Languages []lang.Tag
	// Changed is the metadata modification date.
	Changed time.Time
	// Expires bounds the metadata validity for metasearcher caches.
	Expires time.Time
}

// New returns a source with the given identifier over an engine.
func New(id string, eng *engine.Engine) (*Source, error) {
	if id == "" || strings.ContainsAny(id, " \t\n") {
		return nil, fmt.Errorf("source: invalid source id %q (must be non-empty, no whitespace)", id)
	}
	if eng == nil {
		return nil, fmt.Errorf("source: source %q has no engine", id)
	}
	return &Source{id: id, name: id, eng: eng, baseURL: "starts://" + id}, nil
}

// ID returns the source identifier.
func (s *Source) ID() string { return s.id }

// Engine returns the underlying engine.
func (s *Source) Engine() *engine.Engine { return s.eng }

// SetName sets the human-readable source name.
func (s *Source) SetName(name string) { s.name = name }

// SetBaseURL sets the URL prefix under which the source is served; the
// query, summary and sample URLs in the exported metadata derive from it.
func (s *Source) SetBaseURL(u string) { s.baseURL = strings.TrimRight(u, "/") }

// QueryURL is where the source accepts queries.
func (s *Source) QueryURL() string { return s.baseURL + "/query" }

// SummaryURL is where the content summary is served.
func (s *Source) SummaryURL() string { return s.baseURL + "/summary" }

// SampleURL is where the sample-database results are served.
func (s *Source) SampleURL() string { return s.baseURL + "/sample" }

// MetaURL is where the metadata-attributes object is served.
func (s *Source) MetaURL() string { return s.baseURL + "/metadata" }

// Add indexes a document into the source's collection.
func (s *Source) Add(d *index.Document) error { return s.eng.Add(d) }

// AddAll indexes a batch of documents.
func (s *Source) AddAll(docs []*index.Document) error {
	for _, d := range docs {
		if err := s.Add(d); err != nil {
			return err
		}
	}
	return nil
}

// Search evaluates a query at this source and stamps the source ID onto
// the result and each document.
func (s *Source) Search(q *query.Query) (*result.Results, error) {
	res, err := s.eng.Search(q)
	if err != nil {
		return nil, fmt.Errorf("source %s: %w", s.id, err)
	}
	res.Sources = []string{s.id}
	for _, d := range res.Documents {
		d.Sources = []string{s.id}
	}
	return res, nil
}

// Metadata generates the source's MBasic-1 metadata object from the
// engine's capability profile. Every required attribute of the paper's
// table is populated.
func (s *Source) Metadata() *meta.SourceMeta {
	cfg := s.eng.Config()
	m := &meta.SourceMeta{
		SourceID:              s.id,
		QueryParts:            cfg.QueryParts,
		RankingAlgorithmID:    cfg.Scorer.ID(),
		TurnOffStopWords:      cfg.TurnOffStopWords,
		SourceName:            s.name,
		Linkage:               s.QueryURL(),
		ContentSummaryLinkage: s.SummaryURL(),
		SampleDatabaseResults: s.SampleURL(),
		SourceLanguages:       s.Languages,
		Abstract:              s.Abstract,
		DateChanged:           s.Changed,
		DateExpires:           s.Expires,
		StopWords:             cfg.Analyzer.Stop.Words(),
	}
	m.ScoreMin, m.ScoreMax = cfg.Scorer.Range()

	// List every optional Basic-1 field the engine actually supports
	// (including free-form-text, which depends on a native handler rather
	// than the config's field list).
	for _, fi := range attr.Basic1Fields() {
		if fi.Required || !s.eng.SupportsField(fi.Field) {
			continue
		}
		m.FieldsSupported = append(m.FieldsSupported, meta.FieldSupport{
			Set: attr.SetBasic1, Field: fi.Field, Languages: s.Languages,
		})
	}
	for _, mi := range attr.Basic1Modifiers() {
		if s.eng.SupportsModifier(mi.Modifier) {
			m.ModifiersSupported = append(m.ModifiersSupported, meta.ModifierSupport{
				Set: attr.SetBasic1, Mod: mi.Modifier,
			})
		}
	}
	// Legal combinations across all recognized fields and supported
	// modifiers.
	fields := append([]attr.Field(nil), attr.RequiredFields()...)
	for _, fs := range m.FieldsSupported {
		fields = append(fields, fs.Field)
	}
	for _, f := range fields {
		for _, ms := range m.ModifiersSupported {
			if s.eng.AllowsCombination(f, ms.Mod) {
				m.Combinations = append(m.Combinations, meta.Combination{
					Field: meta.FieldSupport{Set: attr.SetBasic1, Field: attr.Normalize(f)},
					Mod:   meta.ModifierSupport{Set: attr.SetBasic1, Mod: ms.Mod},
				})
			}
		}
	}
	tags := s.Languages
	if len(tags) == 0 {
		tags = []lang.Tag{lang.EnglishUS}
	}
	for _, t := range tags {
		m.Tokenizers = append(m.Tokenizers, meta.TokenizerUse{ID: cfg.Analyzer.Tokenizer.ID(), Tag: t})
	}
	return m
}

// ContentSummary generates the source's content summary from its index:
// one group per field, terms with total postings and document frequencies.
// The flag bits reflect the engine's analyzer — a stemming engine can only
// export stemmed words.
func (s *Source) ContentSummary() *meta.ContentSummary {
	cfg := s.eng.Config()
	c := &meta.ContentSummary{
		Stemming:          cfg.Analyzer.Stemming,
		StopWordsIncluded: true, // the index keeps stop words
		CaseSensitive:     cfg.Analyzer.CaseSensitive,
		FieldsQualified:   true,
		NumDocs:           s.eng.Index().NumDocs(),
	}
	byField := map[attr.Field]*meta.SummaryGroup{}
	var order []attr.Field
	s.eng.Index().VocabTerms(func(f attr.Field, term string, postings, docFreq int) {
		g := byField[f]
		if g == nil {
			g = &meta.SummaryGroup{Field: f}
			byField[f] = g
			order = append(order, f)
		}
		g.Terms = append(g.Terms, meta.TermInfo{Term: term, Postings: postings, DocFreq: docFreq})
	})
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, f := range order {
		c.Groups = append(c.Groups, *byField[f])
	}
	c.SortTerms()
	return c
}

// SampleResults evaluates the canonical sample queries over the canonical
// sample collection using this source's engine configuration, producing
// the calibration data the SampleDatabaseResults metadata attribute points
// at. Metasearchers treat the source as a black box and study how its
// (secret) ranker scores the known collection.
func (s *Source) SampleResults() ([]*SampleEntry, error) {
	probe, err := engine.New(s.eng.Config())
	if err != nil {
		return nil, err
	}
	for _, d := range SampleCollection() {
		if err := probe.Add(d); err != nil {
			return nil, fmt.Errorf("source %s: indexing sample collection: %w", s.id, err)
		}
	}
	var out []*SampleEntry
	for _, q := range SampleQueries() {
		res, err := probe.Search(q)
		if err != nil {
			return nil, fmt.Errorf("source %s: sample query: %w", s.id, err)
		}
		res.Sources = []string{s.id}
		out = append(out, &SampleEntry{Query: q, Results: res})
	}
	return out, nil
}

// SampleEntry pairs one sample query with the source's results for it.
type SampleEntry struct {
	Query   *query.Query
	Results *result.Results
}

// MarshalSample encodes sample entries as alternating SQuery and SQResults
// object streams.
func MarshalSample(entries []*SampleEntry) ([]byte, error) {
	var b []byte
	for _, e := range entries {
		qb, err := e.Query.Marshal()
		if err != nil {
			return nil, err
		}
		rb, err := e.Results.Marshal()
		if err != nil {
			return nil, err
		}
		b = append(b, qb...)
		b = append(b, rb...)
	}
	return b, nil
}
