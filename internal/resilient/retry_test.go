package resilient

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"starts/internal/client"
	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/source"
)

// flakyConn fails its first failN calls to each method, then succeeds.
type flakyConn struct {
	id    string
	err   error
	failN int64
	calls atomic.Int64
}

func (f *flakyConn) SourceID() string { return f.id }

func (f *flakyConn) attempt() error {
	if f.calls.Add(1) <= f.failN {
		return f.err
	}
	return nil
}

func (f *flakyConn) Metadata(context.Context) (*meta.SourceMeta, error) {
	if err := f.attempt(); err != nil {
		return nil, err
	}
	return &meta.SourceMeta{SourceID: f.id}, nil
}

func (f *flakyConn) Summary(context.Context) (*meta.ContentSummary, error) {
	if err := f.attempt(); err != nil {
		return nil, err
	}
	return &meta.ContentSummary{NumDocs: 1}, nil
}

func (f *flakyConn) Sample(context.Context) ([]*source.SampleEntry, error) {
	if err := f.attempt(); err != nil {
		return nil, err
	}
	return nil, nil
}

func (f *flakyConn) Query(context.Context, *query.Query) (*result.Results, error) {
	if err := f.attempt(); err != nil {
		return nil, err
	}
	return &result.Results{}, nil
}

// fastWrap returns a retrying conn whose backoff sleeps are recorded, not
// slept.
func fastWrap(inner client.Conn, p RetryPolicy, b *Budget) (*Conn, *[]time.Duration) {
	c := Wrap(inner, p, b)
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}
	return c, &slept
}

func TestBackoffJitterBounds(t *testing.T) {
	p := RetryPolicy{
		BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second,
		Multiplier: 2, Jitter: 0.5,
	}.withDefaults()
	for retry := 0; retry < 8; retry++ {
		full := math.Min(float64(p.BaseDelay)*math.Pow(2, float64(retry)), float64(p.MaxDelay))
		lo, hi := time.Duration(full*0.5), time.Duration(full)
		for _, u := range []float64{0, 0.25, 0.5, 0.99} {
			d := p.backoff(retry, u)
			if d < lo || d > hi {
				t.Errorf("backoff(retry=%d, u=%.2f) = %v, want within [%v, %v]", retry, u, d, lo, hi)
			}
		}
	}
	// The cap must bind: deep retries never exceed MaxDelay.
	if d := p.backoff(20, 1); d > p.MaxDelay {
		t.Errorf("backoff(20) = %v exceeds cap %v", d, p.MaxDelay)
	}
}

func TestBackoffGrowsExponentially(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: time.Minute, Multiplier: 2, Jitter: 0.5}.withDefaults()
	// With u=1 the jitter vanishes and the schedule is exactly geometric.
	for retry := 1; retry < 5; retry++ {
		if prev, cur := p.backoff(retry-1, 1), p.backoff(retry, 1); cur != 2*prev {
			t.Errorf("backoff not doubling: %v -> %v", prev, cur)
		}
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	inner := &flakyConn{id: "S", err: errors.New("transient"), failN: 2}
	c, slept := fastWrap(inner, RetryPolicy{MaxAttempts: 3, Seed: 1}, nil)
	md, err := c.Metadata(context.Background())
	if err != nil || md.SourceID != "S" {
		t.Fatalf("Metadata = %v, %v", md, err)
	}
	if inner.calls.Load() != 3 {
		t.Errorf("calls = %d, want 3", inner.calls.Load())
	}
	if len(*slept) != 2 {
		t.Errorf("backoffs = %d, want 2", len(*slept))
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	inner := &flakyConn{id: "S", err: errors.New("persistent"), failN: 100}
	c, _ := fastWrap(inner, RetryPolicy{MaxAttempts: 3, Seed: 1}, nil)
	_, err := c.Summary(context.Background())
	if err == nil || !errors.Is(err, inner.err) {
		t.Fatalf("err = %v, want wrapped persistent error", err)
	}
	if inner.calls.Load() != 3 {
		t.Errorf("calls = %d, want 3", inner.calls.Load())
	}
}

func TestRetrySkipsPermanentErrors(t *testing.T) {
	notFound := &client.StatusError{StatusCode: 404, Status: "404 Not Found"}
	inner := &flakyConn{id: "S", err: fmt.Errorf("wrapped: %w", notFound), failN: 100}
	c, _ := fastWrap(inner, RetryPolicy{MaxAttempts: 5, Seed: 1}, nil)
	_, err := c.Metadata(context.Background())
	if err == nil {
		t.Fatal("want error")
	}
	if inner.calls.Load() != 1 {
		t.Errorf("calls = %d, want 1 (404 is permanent)", inner.calls.Load())
	}
}

func TestRetryRetries5xx(t *testing.T) {
	unavailable := &client.StatusError{StatusCode: 503, Status: "503 Service Unavailable"}
	inner := &flakyConn{id: "S", err: unavailable, failN: 1}
	c, _ := fastWrap(inner, RetryPolicy{MaxAttempts: 3, Seed: 1}, nil)
	if _, err := c.Metadata(context.Background()); err != nil {
		t.Fatalf("retryable 503 not retried: %v", err)
	}
	if inner.calls.Load() != 2 {
		t.Errorf("calls = %d, want 2", inner.calls.Load())
	}
}

func TestRetryRespectsContext(t *testing.T) {
	inner := &flakyConn{id: "S", err: errors.New("transient"), failN: 100}
	c := Wrap(inner, RetryPolicy{MaxAttempts: 10, BaseDelay: 50 * time.Millisecond, Seed: 1}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Query(ctx, query.New())
	if err == nil {
		t.Fatal("want error")
	}
	if time.Since(start) > time.Second {
		t.Error("retries outlived the context")
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{fmt.Errorf("querying: %w", context.Canceled), false},
		{errors.New("connection refused"), true},
		{&client.StatusError{StatusCode: 500}, true},
		{&client.StatusError{StatusCode: 429}, true},
		{&client.StatusError{StatusCode: 400}, false},
		{fmt.Errorf("wrapped: %w", &client.StatusError{StatusCode: 403}), false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetryBudgetBoundsAmplification(t *testing.T) {
	b := NewBudget(2, 0.0001) // tiny bucket, negligible refill
	inner := &flakyConn{id: "S", err: errors.New("transient"), failN: 1000}
	c, _ := fastWrap(inner, RetryPolicy{MaxAttempts: 4, Seed: 1}, b)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		_, _ = c.Metadata(ctx)
	}
	// 5 calls × 3 allowed retries each = 15 without a budget; the bucket
	// only held 2 tokens.
	if calls := inner.calls.Load(); calls > 8 {
		t.Errorf("budget did not bound retries: %d inner calls", calls)
	}
	_, err := c.Metadata(ctx)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("err = %v, want budget exhaustion", err)
	}
}

func TestRetryBudgetRefills(t *testing.T) {
	// A one-token bucket with a full deposit per call funds one retry on
	// every call: fresh traffic keeps earning retries.
	b := NewBudget(1, 1)
	inner := &flakyConn{id: "S", err: errors.New("transient"), failN: 1000}
	c, _ := fastWrap(inner, RetryPolicy{MaxAttempts: 2, Seed: 1}, b)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := c.Metadata(ctx); errors.Is(err, ErrBudgetExhausted) {
			t.Fatalf("call %d hit budget exhaustion despite refills", i)
		}
	}
	if calls := inner.calls.Load(); calls != 6 {
		t.Errorf("inner calls = %d, want 6 (every call got its retry)", calls)
	}
}

// TestRetryBackoffClampedToDeadline pins the deadline clamp: when the
// next backoff would sleep past the context deadline, the retry loop
// fails fast — no sleep, last real error wrapped — instead of burning
// the caller's remaining budget on a doomed attempt.
func TestRetryBackoffClampedToDeadline(t *testing.T) {
	inner := &flakyConn{id: "S", err: errors.New("transient"), failN: 99}
	c, slept := fastWrap(inner, RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Second, // far beyond the context's budget
		Jitter:      0.001,
		Seed:        1,
	}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Metadata(ctx)
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded marker", err)
	}
	if !errors.Is(err, inner.err) {
		t.Fatalf("err = %v, must wrap the last real error", err)
	}
	if len(*slept) != 0 {
		t.Errorf("slept %v; a doomed backoff must not sleep at all", *slept)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Errorf("took %v; the clamp exists to return well before the deadline", elapsed)
	}
	if got := inner.calls.Load(); got != 1 {
		t.Errorf("inner calls = %d, want 1 (no retry after the clamp)", got)
	}
}

// TestRetryBackoffFitsDeadline pins the other side: a backoff that fits
// the remaining budget still sleeps and retries as before.
func TestRetryBackoffFitsDeadline(t *testing.T) {
	inner := &flakyConn{id: "S", err: errors.New("transient"), failN: 1}
	c, slept := fastWrap(inner, RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		Seed:        1,
	}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Metadata(ctx); err != nil {
		t.Fatalf("retry under a roomy deadline failed: %v", err)
	}
	if len(*slept) != 1 {
		t.Errorf("slept %v, want exactly one backoff", *slept)
	}
}
