package resilient

import (
	"context"
	"fmt"
	"time"

	"starts/internal/client"
	"starts/internal/obs"
	"starts/internal/query"
	"starts/internal/result"
)

// BatchConn wraps a batch-capable client.Conn with retries. A batch's
// failed-but-retryable items are re-sent as a smaller batch on the next
// attempt — the shrunken retry still amortizes one round trip — while
// items that already succeeded (or failed permanently) keep their
// outcome. The budget charges what actually hits the wire: one deposit
// per fresh QueryBatch, one withdrawal per retry wire call, regardless
// of how many items ride it.
type BatchConn struct {
	*Conn
	binner client.BatchConn
}

var _ client.BatchConn = (*BatchConn)(nil)

// WrapBatch returns a retrying wrapper around a batch-capable inner,
// with the same policy/budget semantics as Wrap.
func WrapBatch(inner client.BatchConn, policy RetryPolicy, budget *Budget) *BatchConn {
	return &BatchConn{Conn: Wrap(inner, policy, budget), binner: inner}
}

// QueryBatch implements client.BatchConn.
func (c *BatchConn) QueryBatch(ctx context.Context, qs []*query.Query) ([]*result.Results, []error) {
	results := make([]*result.Results, len(qs))
	errs := make([]error, len(qs))
	if c.budget != nil {
		c.budget.deposit()
	}
	// pending maps the positions still unresolved into the original
	// slices; each attempt re-sends exactly those.
	pending := make([]int, len(qs))
	pendQs := make([]*query.Query, len(qs))
	for i, q := range qs {
		pending[i], pendQs[i] = i, q
	}
	id := c.inner.SourceID()
	failAll := func(idx []int, err error) {
		for _, i := range idx {
			errs[i] = err
		}
	}
	for attempt := 0; attempt < c.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			if c.budget != nil && !c.budget.withdraw() {
				for _, i := range pending {
					errs[i] = fmt.Errorf("resilient: query-batch of %s: %w (last error: %w)",
						id, ErrBudgetExhausted, errs[i])
				}
				return results, errs
			}
			delay := c.policy.backoff(attempt-1, c.jitter())
			if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) <= delay {
				for _, i := range pending {
					errs[i] = fmt.Errorf("resilient: query-batch of %s: backoff %v exceeds remaining deadline: %w (last error: %w)",
						id, delay, context.DeadlineExceeded, errs[i])
				}
				return results, errs
			}
			if serr := c.sleep(ctx, delay); serr != nil {
				for _, i := range pending {
					errs[i] = fmt.Errorf("resilient: query-batch of %s interrupted during backoff: %w (last error: %w)",
						id, serr, errs[i])
				}
				return results, errs
			}
			obs.MetricsFrom(ctx).Counter(obs.L("starts_retries_total", "source", id)).Inc()
			obs.Annotate(ctx, "retry", fmt.Sprintf("query-batch attempt %d, %d items", attempt+1, len(pending)))
		}
		rs, es := c.binner.QueryBatch(ctx, pendQs)
		if len(rs) != len(pendQs) || len(es) != len(pendQs) {
			failAll(pending, fmt.Errorf("resilient: query-batch of %s: inner returned %d results, %d errors for %d queries",
				id, len(rs), len(es), len(pendQs)))
			return results, errs
		}
		var nextIdx []int
		var nextQs []*query.Query
		for j, i := range pending {
			results[i], errs[i] = rs[j], es[j]
			if es[j] != nil && Retryable(es[j]) && ctx.Err() == nil {
				nextIdx = append(nextIdx, i)
				nextQs = append(nextQs, pendQs[j])
			}
		}
		if len(nextIdx) == 0 {
			return results, errs
		}
		pending, pendQs = nextIdx, nextQs
	}
	for _, i := range pending {
		errs[i] = fmt.Errorf("resilient: query-batch of %s failed after %d attempts: %w",
			id, c.policy.MaxAttempts, errs[i])
	}
	return results, errs
}
