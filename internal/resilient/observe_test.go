package resilient

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"starts/internal/obs"
)

// TestRetryInstrumentation checks that each retry is visible on the
// context's span (a "retry" annotation) and registry
// (starts_retries_total), and that a bare context stays a no-op.
func TestRetryInstrumentation(t *testing.T) {
	inner := &flakyConn{id: "S", err: errors.New("transient"), failN: 2}
	c, _ := fastWrap(inner, RetryPolicy{MaxAttempts: 3}, nil)

	reg := obs.NewRegistry()
	tr := obs.NewTrace("q")
	sp := tr.StartSpan("query S")
	ctx := obs.WithMetrics(obs.WithSpan(context.Background(), sp), reg)
	if _, err := c.Query(ctx, nil); err != nil {
		t.Fatal(err)
	}
	sp.End(nil)

	if got := reg.Counter(obs.L("starts_retries_total", "source", "S")).Value(); got != 2 {
		t.Errorf("retries_total = %d, want 2", got)
	}
	retries := 0
	for _, a := range tr.Snapshot().Spans[0].Attrs {
		if a.Key == "retry" {
			retries++
			if !strings.Contains(a.Value, "transient") {
				t.Errorf("retry annotation = %q", a.Value)
			}
		}
	}
	if retries != 2 {
		t.Errorf("retry annotations = %d, want 2", retries)
	}

	// Outside a traced search nothing is recorded and nothing panics
	// (the conn is past its failures, so this succeeds first try).
	if _, err := c.Query(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
}

// TestBreakerTransitionObservers checks the OnTransition callback and
// the transition counters across a full open → half-open → closed cycle.
func TestBreakerTransitionObservers(t *testing.T) {
	reg := obs.NewRegistry()
	clock := &breakerClock{now: time.Date(1997, 5, 1, 0, 0, 0, 0, time.UTC)}
	type hop struct{ from, to State }
	var seen []hop
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 2, Cooldown: time.Minute, Now: clock.Now,
		Metrics: reg,
		OnTransition: func(id string, from, to State) {
			if id != "S" {
				t.Errorf("transition for %q", id)
			}
			seen = append(seen, hop{from, to})
		},
	})

	b.Record("S", errDown)
	b.Record("S", errDown) // trips: closed -> open
	clock.advance(2 * time.Minute)
	if !b.Allow("S") { // cooldown elapsed: open -> half-open, admits probe
		t.Fatal("post-cooldown probe refused")
	}
	b.Record("S", nil) // probe succeeds: half-open -> closed

	want := []hop{
		{StateClosed, StateOpen},
		{StateOpen, StateHalfOpen},
		{StateHalfOpen, StateClosed},
	}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %+v, want %+v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("transition %d = %+v, want %+v", i, seen[i], want[i])
		}
	}
	for to, n := range map[string]int64{"open": 1, "half-open": 1, "closed": 1} {
		if got := reg.Counter(obs.L("starts_breaker_transitions_total", "source", "S", "to", to)).Value(); got != n {
			t.Errorf("transitions to %s = %d, want %d", to, got, n)
		}
	}
}

// TestBreakerObserverMayReenter pins the documented guarantee that
// OnTransition runs outside the breaker's lock.
func TestBreakerObserverMayReenter(t *testing.T) {
	var b *Breaker
	b = NewBreaker(BreakerConfig{
		FailureThreshold: 1,
		OnTransition: func(id string, from, to State) {
			// Would deadlock if the callback fired under b.mu.
			_ = b.State(id)
		},
	})
	b.Record("S", errDown)
	if b.State("S") != StateOpen {
		t.Errorf("state = %v", b.State("S"))
	}
}
