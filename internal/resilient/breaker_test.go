package resilient

import (
	"context"
	"errors"
	"testing"
	"time"
)

// breakerClock is a manual clock for breaker tests.
type breakerClock struct{ now time.Time }

func (c *breakerClock) Now() time.Time          { return c.now }
func (c *breakerClock) advance(d time.Duration) { c.now = c.now.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *breakerClock) {
	clock := &breakerClock{now: time.Date(1997, 5, 1, 0, 0, 0, 0, time.UTC)}
	b := NewBreaker(BreakerConfig{
		FailureThreshold: threshold, Cooldown: cooldown, Now: clock.Now,
	})
	return b, clock
}

var errDown = errors.New("source down")

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		b.Record("S", errDown)
		if !b.Allow("S") {
			t.Fatalf("circuit opened after %d failures, threshold 3", i+1)
		}
	}
	b.Record("S", errDown)
	if b.State("S") != StateOpen {
		t.Fatalf("state = %v after 3 failures, want open", b.State("S"))
	}
	if b.Allow("S") {
		t.Error("open circuit admitted traffic before cooldown")
	}
	if !b.Broken("S") {
		t.Error("Broken should report an open circuit")
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b, _ := newTestBreaker(3, time.Minute)
	b.Record("S", errDown)
	b.Record("S", errDown)
	b.Record("S", nil) // success wipes the streak
	b.Record("S", errDown)
	b.Record("S", errDown)
	if b.State("S") != StateClosed {
		t.Errorf("state = %v, want closed (no 3-failure streak)", b.State("S"))
	}
}

func TestBreakerHalfOpenProbeAndRecovery(t *testing.T) {
	b, clock := newTestBreaker(2, time.Minute)
	b.Record("S", errDown)
	b.Record("S", errDown)
	if b.Allow("S") {
		t.Fatal("open circuit admitted traffic")
	}
	clock.advance(61 * time.Second)
	// Cooldown elapsed: exactly one probe goes through.
	if !b.Allow("S") {
		t.Fatal("cooldown elapsed but probe refused")
	}
	if b.State("S") != StateHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State("S"))
	}
	if b.Allow("S") {
		t.Error("second concurrent probe admitted")
	}
	b.Record("S", nil)
	if b.State("S") != StateClosed {
		t.Errorf("state = %v after successful probe, want closed", b.State("S"))
	}
	if !b.Allow("S") {
		t.Error("recovered circuit refuses traffic")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clock := newTestBreaker(2, time.Minute)
	b.Record("S", errDown)
	b.Record("S", errDown)
	clock.advance(61 * time.Second)
	if !b.Allow("S") {
		t.Fatal("probe refused")
	}
	b.Record("S", errDown)
	if b.State("S") != StateOpen {
		t.Fatalf("state = %v after failed probe, want open", b.State("S"))
	}
	// The cooldown restarted: still shedding.
	clock.advance(30 * time.Second)
	if b.Allow("S") {
		t.Error("re-opened circuit admitted traffic mid-cooldown")
	}
	clock.advance(31 * time.Second)
	if !b.Allow("S") {
		t.Error("second probe refused after full cooldown")
	}
}

func TestBreakerRequiresMultipleProbeSuccesses(t *testing.T) {
	clock := &breakerClock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{
		FailureThreshold: 1, Cooldown: time.Minute, HalfOpenSuccesses: 2, Now: clock.Now,
	})
	b.Record("S", errDown)
	clock.advance(2 * time.Minute)
	if !b.Allow("S") {
		t.Fatal("probe refused")
	}
	b.Record("S", nil)
	if b.State("S") != StateHalfOpen {
		t.Fatalf("one probe success closed a circuit needing two")
	}
	if !b.Allow("S") {
		t.Fatal("second probe refused")
	}
	b.Record("S", nil)
	if b.State("S") != StateClosed {
		t.Errorf("state = %v after two probe successes, want closed", b.State("S"))
	}
}

func TestBreakerReleaseFreesHalfOpenProbe(t *testing.T) {
	b, clock := newTestBreaker(1, time.Minute)
	b.Release("S") // no circuit yet: no-op
	b.Record("S", errDown)
	clock.advance(61 * time.Second)
	if !b.Allow("S") {
		t.Fatal("cooldown elapsed but probe refused")
	}
	if b.Allow("S") {
		t.Fatal("second probe admitted while the first is in flight")
	}
	// The probe never reached the wire (shed at the dispatch layer, or it
	// coalesced onto another batch): without a Release the circuit would
	// refuse all traffic until restart.
	b.Release("S")
	if b.State("S") != StateHalfOpen {
		t.Fatalf("state = %v after release, want half-open", b.State("S"))
	}
	if !b.Allow("S") {
		t.Fatal("Release did not free the probe slot")
	}
	b.Record("S", nil)
	if b.State("S") != StateClosed {
		t.Errorf("state = %v after successful probe, want closed", b.State("S"))
	}
}

func TestBreakerCancelledProbeFreesSlot(t *testing.T) {
	b, clock := newTestBreaker(1, time.Minute)
	b.Record("S", errDown)
	clock.advance(61 * time.Second)
	if !b.Allow("S") {
		t.Fatal("cooldown elapsed but probe refused")
	}
	// The probe's caller gave up: that judges the caller, not the source,
	// but the slot must come back or the circuit is stuck half-open.
	b.Record("S", context.Canceled)
	if b.State("S") != StateHalfOpen {
		t.Fatalf("state = %v, want half-open (cancellation is not an outcome)", b.State("S"))
	}
	if !b.Allow("S") {
		t.Error("cancelled probe left the circuit stuck half-open")
	}
}

func TestBreakerIgnoresCancellation(t *testing.T) {
	b, _ := newTestBreaker(1, time.Minute)
	b.Record("S", context.Canceled)
	if b.State("S") != StateClosed {
		t.Error("caller cancellation tripped the breaker")
	}
	// Deadline expiry IS a source fault (it timed out).
	b.Record("S", context.DeadlineExceeded)
	if b.State("S") != StateOpen {
		t.Error("timeout did not count against the source")
	}
}

func TestBreakerIsolatesSources(t *testing.T) {
	b, _ := newTestBreaker(1, time.Minute)
	b.Record("bad", errDown)
	if !b.Allow("good") || b.Allow("bad") {
		t.Error("breaker state leaked across sources")
	}
	snap := b.Snapshot()
	if len(snap) != 2 || snap[0].ID != "bad" || snap[0].State != StateOpen ||
		snap[1].ID != "good" || snap[1].State != StateClosed {
		t.Errorf("Snapshot = %+v", snap)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateClosed: "closed", StateOpen: "open", StateHalfOpen: "half-open", State(9): "unknown",
	} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestBreakerOpenFastDrainSignal(t *testing.T) {
	b, clock := newTestBreaker(1, time.Minute)
	if b.Open("S") {
		t.Error("closed circuit reported open")
	}
	b.Record("S", errDown)
	if !b.Open("S") {
		t.Error("tripped circuit not reported open")
	}
	clock.advance(2 * time.Minute)
	// Open is read-only: polling it any number of times after cooldown
	// must not consume the single half-open probe slot.
	for i := 0; i < 5; i++ {
		_ = b.Open("S")
	}
	if !b.Allow("S") {
		t.Fatal("Open consumed the half-open probe slot")
	}
	if got := b.State("S"); got != StateHalfOpen {
		t.Fatalf("state after probe admission = %v, want half-open", got)
	}
	// The admitted probe must never be fast-drained by the Refuse hook.
	if b.Open("S") {
		t.Error("half-open circuit reported open; the probe would be refused")
	}
}
