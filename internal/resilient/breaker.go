package resilient

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"starts/internal/obs"
)

// State is a circuit's position.
type State int

const (
	// StateClosed admits all traffic (the healthy state).
	StateClosed State = iota
	// StateOpen refuses all traffic until the cooldown elapses.
	StateOpen
	// StateHalfOpen admits one probe at a time to test recovery.
	StateHalfOpen
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig configures a Breaker.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that trips
	// a closed circuit open. Default 5.
	FailureThreshold int
	// Cooldown is how long an open circuit refuses traffic before
	// admitting a probe. Default 30s.
	Cooldown time.Duration
	// HalfOpenSuccesses is the number of consecutive probe successes
	// that closes a half-open circuit. Default 1.
	HalfOpenSuccesses int
	// OnTransition, when set, observes every circuit state change. It is
	// called outside the breaker's lock, after the transition took
	// effect, so it may call back into the breaker.
	OnTransition func(id string, from, to State)
	// Metrics, when set, counts every state change as
	// starts_breaker_transitions_total{source,to}, so a flapping source
	// is visible on /metrics without any logging.
	Metrics *obs.Registry
	// Now overrides the clock, for tests.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold == 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown == 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.HalfOpenSuccesses == 0 {
		c.HalfOpenSuccesses = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a per-source circuit breaker: consecutive failures open a
// source's circuit, an open circuit sheds all traffic for a cooldown,
// and recovery is confirmed through half-open probe queries before the
// circuit closes again. It satisfies core.BreakerGate.
type Breaker struct {
	cfg BreakerConfig

	mu      sync.Mutex
	sources map[string]*circuit
}

// circuit is one source's breaker state.
type circuit struct {
	state     State
	failures  int // consecutive failures while closed
	successes int // consecutive probe successes while half-open
	openedAt  time.Time
	probing   bool // a half-open probe is in flight
}

// NewBreaker returns a breaker; zero config fields take the defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), sources: map[string]*circuit{}}
}

func (b *Breaker) circuitFor(id string) *circuit {
	c := b.sources[id]
	if c == nil {
		c = &circuit{}
		b.sources[id] = c
	}
	return c
}

// transition records a state change for observers; fired after the
// breaker's lock is released (callbacks may re-enter the breaker).
type transition struct {
	id       string
	from, to State
}

// observe notifies the configured observers of state changes.
func (b *Breaker) observe(trans []transition) {
	for _, t := range trans {
		b.cfg.Metrics.Counter(obs.L("starts_breaker_transitions_total",
			"source", t.id, "to", t.to.String())).Inc()
		if b.cfg.OnTransition != nil {
			b.cfg.OnTransition(t.id, t.from, t.to)
		}
	}
}

// Allow reports whether a call to the source may proceed. An open
// circuit whose cooldown has elapsed transitions to half-open and admits
// the caller as its probe; a half-open circuit admits one probe at a
// time.
func (b *Breaker) Allow(id string) bool {
	var trans []transition
	defer func() { b.observe(trans) }()
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.circuitFor(id)
	switch c.state {
	case StateClosed:
		return true
	case StateOpen:
		if b.cfg.Now().Sub(c.openedAt) < b.cfg.Cooldown {
			return false
		}
		c.state = StateHalfOpen
		c.successes = 0
		c.probing = true
		trans = append(trans, transition{id, StateOpen, StateHalfOpen})
		return true
	default: // StateHalfOpen
		if c.probing {
			return false
		}
		c.probing = true
		return true
	}
}

// Record feeds a call's outcome back. A nil err is a success; context
// cancellation is ignored (the caller gave up — that says nothing about
// the source), though it still releases a half-open probe slot the call
// may hold; any other error counts against the source.
func (b *Breaker) Record(id string, err error) {
	if err != nil && errors.Is(err, context.Canceled) {
		b.Release(id)
		return
	}
	var trans []transition
	defer func() { b.observe(trans) }()
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.circuitFor(id)
	if err == nil {
		switch c.state {
		case StateClosed:
			c.failures = 0
		case StateHalfOpen:
			c.probing = false
			c.successes++
			if c.successes >= b.cfg.HalfOpenSuccesses {
				*c = circuit{state: StateClosed}
				trans = append(trans, transition{id, StateHalfOpen, StateClosed})
			}
		}
		return
	}
	switch c.state {
	case StateClosed:
		c.failures++
		if c.failures >= b.cfg.FailureThreshold {
			*c = circuit{state: StateOpen, openedAt: b.cfg.Now()}
			trans = append(trans, transition{id, StateClosed, StateOpen})
		}
	case StateHalfOpen:
		// The probe failed: back to open, restarting the cooldown.
		*c = circuit{state: StateOpen, openedAt: b.cfg.Now()}
		trans = append(trans, transition{id, StateHalfOpen, StateOpen})
	}
}

// Release frees a half-open probe slot without judging the source, for
// an admitted call that produced no wire outcome to Record: it was shed
// at the dispatch layer, coalesced onto another call's batch, or its
// caller gave up. The circuit stays half-open and the next Allow admits
// a fresh probe, instead of refusing all traffic forever waiting on a
// Record that will never come. Releasing with no probe in flight is a
// no-op.
func (b *Breaker) Release(id string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if c := b.sources[id]; c != nil && c.state == StateHalfOpen {
		c.probing = false
	}
}

// State reports a source's current circuit position without transitioning
// it (unlike Allow, an elapsed cooldown still reads as open here).
func (b *Breaker) State(id string) State {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.sources[id]
	if c == nil {
		return StateClosed
	}
	return c.state
}

// Broken reports whether the source's circuit currently refuses regular
// traffic — the read-only signal the adaptive selector penalizes.
func (b *Breaker) Broken(id string) bool {
	s := b.State(id)
	return s == StateOpen || s == StateHalfOpen
}

// Open reports whether the source's circuit is in the open state right
// now — the read-only fast-drain signal for the dispatch layer's Refuse
// hook. Unlike Broken it admits half-open (the probe in flight must be
// allowed to run), and unlike Allow it never transitions the circuit, so
// checking it cannot consume a probe slot.
func (b *Breaker) Open(id string) bool {
	return b.State(id) == StateOpen
}

// Snapshot lists every tracked source and its state, sorted by ID.
func (b *Breaker) Snapshot() []SourceState {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]SourceState, 0, len(b.sources))
	for id, c := range b.sources {
		out = append(out, SourceState{ID: id, State: c.state, Failures: c.failures})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SourceState is one source's entry in a Snapshot.
type SourceState struct {
	ID       string
	State    State
	Failures int
}
