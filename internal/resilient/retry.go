// Package resilient keeps the metasearcher useful when sources misbehave:
// a retrying client.Conn wrapper (exponential backoff with jitter, a
// shared retry budget, retries only on errors worth retrying) and a
// per-source circuit breaker the metasearch core consults before fan-out.
// ZBroker routes Z39.50 queries around unavailable servers; this package
// is the STARTS equivalent, built on the failure signals the client layer
// already surfaces.
package resilient

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"starts/internal/client"
	"starts/internal/meta"
	"starts/internal/obs"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/source"
)

// RetryPolicy configures the backoff schedule of a retrying Conn.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first;
	// values below 2 disable retrying. Default 3.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further retry
	// multiplies it by Multiplier, capped at MaxDelay. Defaults: 100ms,
	// ×2, 2s.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized: a delay d
	// is drawn uniformly from [d·(1−Jitter), d]. Default 0.5.
	Jitter float64
	// Seed determines the jitter sequence, for reproducible tests.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier == 0 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	return p
}

// backoff returns the delay before the retry-th retry (0-based), given a
// uniform draw u in [0, 1): the exponential delay jittered within
// [d·(1−Jitter), d].
func (p RetryPolicy) backoff(retry int, u float64) time.Duration {
	d := float64(p.BaseDelay) * math.Pow(p.Multiplier, float64(retry))
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	lo := d * (1 - p.Jitter)
	return time.Duration(lo + u*(d-lo))
}

// Budget caps retry volume across many calls (and typically many conns):
// every fresh call deposits Ratio tokens, every retry withdraws one, and
// retries stop when the bucket is empty. This bounds retry amplification
// during a real outage — with Ratio 0.2, retries add at most ~20%
// traffic however hard the sources are failing.
type Budget struct {
	// Max caps the bucket (burst allowance). Default 10.
	Max float64
	// Ratio is the deposit per fresh call. Default 0.2.
	Ratio float64

	mu     sync.Mutex
	tokens float64
	init   sync.Once
}

// NewBudget returns a retry budget with the given burst cap and deposit
// ratio; zero values take the defaults.
func NewBudget(max, ratio float64) *Budget {
	return &Budget{Max: max, Ratio: ratio}
}

func (b *Budget) setup() {
	b.init.Do(func() {
		if b.Max == 0 {
			b.Max = 10
		}
		if b.Ratio == 0 {
			b.Ratio = 0.2
		}
		b.tokens = b.Max
	})
}

// deposit credits one fresh call.
func (b *Budget) deposit() {
	b.setup()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens = math.Min(b.Max, b.tokens+b.Ratio)
}

// withdraw takes one retry token, reporting whether one was available.
func (b *Budget) withdraw() bool {
	b.setup()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// ErrBudgetExhausted marks calls abandoned because the retry budget ran
// dry.
var ErrBudgetExhausted = errors.New("resilient: retry budget exhausted")

// Retryable reports whether an error is worth retrying. Context
// cancellation and expiry are not (the caller gave up); permanent HTTP
// rejections (4xx other than 408 and 429) are not; everything else —
// network failures, 5xx, truncated or malformed bodies — is.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *client.StatusError
	if errors.As(err, &se) {
		return se.Temporary()
	}
	return true
}

// Conn wraps a client.Conn with retries under a RetryPolicy.
type Conn struct {
	inner  client.Conn
	policy RetryPolicy
	budget *Budget

	mu  sync.Mutex
	rnd *rand.Rand

	// sleep is the backoff waiter, replaceable in tests.
	sleep func(ctx context.Context, d time.Duration) error
}

var _ client.Conn = (*Conn)(nil)

// Wrap returns a retrying wrapper around inner. budget may be nil
// (unlimited retries within the policy) or shared across many conns.
func Wrap(inner client.Conn, policy RetryPolicy, budget *Budget) *Conn {
	return &Conn{
		inner:  inner,
		policy: policy.withDefaults(),
		budget: budget,
		rnd:    rand.New(rand.NewSource(policy.Seed)),
		sleep:  sleepCtx,
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (c *Conn) jitter() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rnd.Float64()
}

// retryDo runs f up to MaxAttempts times, backing off between tries.
// Each retry is observable: the context's current span (the per-source
// span core opened, when the call runs inside a traced search) gets a
// "retry" annotation and the context's metrics registry counts
// starts_retries_total{source} — both no-ops on a bare context.
func retryDo[T any](c *Conn, ctx context.Context, what string, f func(context.Context) (T, error)) (T, error) {
	var zero T
	if c.budget != nil {
		c.budget.deposit()
	}
	var last error
	for attempt := 0; attempt < c.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			if c.budget != nil && !c.budget.withdraw() {
				return zero, fmt.Errorf("resilient: %s of %s: %w (last error: %w)",
					what, c.inner.SourceID(), ErrBudgetExhausted, last)
			}
			delay := c.policy.backoff(attempt-1, c.jitter())
			// Never sleep past a deadline that dooms the attempt: if the
			// remaining context budget is spent by the backoff itself, the
			// retry could only time out — fail fast with the last real
			// error instead of burning the caller's budget in a sleep.
			if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) <= delay {
				return zero, fmt.Errorf("resilient: %s of %s: backoff %v exceeds remaining deadline: %w (last error: %w)",
					what, c.inner.SourceID(), delay, context.DeadlineExceeded, last)
			}
			if err := c.sleep(ctx, delay); err != nil {
				return zero, fmt.Errorf("resilient: %s of %s interrupted during backoff: %w (last error: %w)",
					what, c.inner.SourceID(), err, last)
			}
			obs.MetricsFrom(ctx).Counter(obs.L("starts_retries_total", "source", c.inner.SourceID())).Inc()
			obs.Annotate(ctx, "retry", fmt.Sprintf("%s attempt %d after: %v", what, attempt+1, last))
		}
		v, err := f(ctx)
		if err == nil {
			return v, nil
		}
		last = err
		if !Retryable(err) || ctx.Err() != nil {
			return zero, err
		}
	}
	return zero, fmt.Errorf("resilient: %s of %s failed after %d attempts: %w",
		what, c.inner.SourceID(), c.policy.MaxAttempts, last)
}

// SourceID implements client.Conn.
func (c *Conn) SourceID() string { return c.inner.SourceID() }

// Metadata implements client.Conn.
func (c *Conn) Metadata(ctx context.Context) (*meta.SourceMeta, error) {
	return retryDo(c, ctx, "metadata", c.inner.Metadata)
}

// Summary implements client.Conn.
func (c *Conn) Summary(ctx context.Context) (*meta.ContentSummary, error) {
	return retryDo(c, ctx, "summary", c.inner.Summary)
}

// Sample implements client.Conn.
func (c *Conn) Sample(ctx context.Context) ([]*source.SampleEntry, error) {
	return retryDo(c, ctx, "sample", c.inner.Sample)
}

// Query implements client.Conn.
func (c *Conn) Query(ctx context.Context, q *query.Query) (*result.Results, error) {
	return retryDo(c, ctx, "query", func(ctx context.Context) (*result.Results, error) {
		return c.inner.Query(ctx, q)
	})
}
