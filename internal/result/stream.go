package result

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"starts/internal/query"
	"starts/internal/soif"
)

// StreamItemType is the SOIF template type framing one increment of a
// streamed query response. Where @SQBatchItem frames whole answers to
// independent queries, @SQStreamItem frames successive slices of one
// answer as its merged rank stabilizes:
//
//	@SQStreamItem{ Rank{1}: 0  NumDocSOIFs{1}: 2 }
//	@SQRDocument{ ... } ×2              rank positions 0 and 1 are final
//	@SQStreamItem{ Rank{1}: 2  NumDocSOIFs{1}: 1 }
//	@SQRDocument{ ... }                 rank position 2 is final
//	@SQStreamItem{ Final{1}: 1 }
//	@SQResults{ ... }                   the complete answer, then EOF
//
// Rank names the answer position of the frame's first document, so a
// decoder can verify it is seeing a gapless prefix. The terminal frame
// sets Final and is followed by the answer's complete ordinary
// @SQResults object stream — headers, attribution and all — which makes
// a streamed response self-contained: a consumer may render documents as
// frames arrive and still end up holding exactly what the non-streamed
// endpoint would have sent. A server that fails after the preamble has
// been flushed reports it as a frame with an Error attribute, since the
// HTTP status is already committed. NumDocSOIFs makes document frames
// self-delimiting, exactly as in batch responses.
const StreamItemType = "SQStreamItem"

// StreamError is a server-side failure reported in-band inside a
// streamed response, after the point where an HTTP status could have
// carried it.
type StreamError struct {
	// Message is the server's error text.
	Message string
}

// Error implements error.
func (e *StreamError) Error() string {
	return fmt.Sprintf("result: stream failed at server: %s", e.Message)
}

// StreamItem is one decoded frame of a streamed response: a slice of
// newly final rank positions (Docs starting at answer position Rank),
// the terminal complete answer (Final), or an in-band failure (Err).
// Exactly one of Docs, Final and Err is populated, except that a
// document frame may legally carry zero documents.
type StreamItem struct {
	// Rank is the answer position of Docs[0] (0-based).
	Rank int
	// Docs are the newly final documents, best first.
	Docs []*Document
	// Final is the complete answer; set only on the terminal frame.
	Final *Results
	// Err is the server's in-band failure, if the stream died mid-answer.
	Err *StreamError
}

// EncodeStreamDocs writes one document frame: the @SQStreamItem header
// naming the rank of the first document, then the documents themselves.
func EncodeStreamDocs(enc *soif.Encoder, rank int, docs []*Document) error {
	head := soif.New(StreamItemType)
	head.Add("Version", query.Version)
	head.Add("Rank", strconv.Itoa(rank))
	head.Add("NumDocSOIFs", strconv.Itoa(len(docs)))
	if err := enc.Encode(head); err != nil {
		return err
	}
	for _, d := range docs {
		if err := enc.Encode(d.toSOIF()); err != nil {
			return err
		}
	}
	return nil
}

// EncodeStreamFinal writes the terminal frame: an @SQStreamItem header
// with Final set, then r's complete @SQResults object stream.
func EncodeStreamFinal(enc *soif.Encoder, r *Results) error {
	head := soif.New(StreamItemType)
	head.Add("Version", query.Version)
	head.Add("Final", "1")
	if err := enc.Encode(head); err != nil {
		return err
	}
	for _, o := range r.ToSOIF() {
		if err := enc.Encode(o); err != nil {
			return err
		}
	}
	return nil
}

// EncodeStreamError writes an error frame carrying itemErr's text. It is
// the in-band substitute for an HTTP error status once the response
// preamble has been flushed.
func EncodeStreamError(enc *soif.Encoder, itemErr error) error {
	head := soif.New(StreamItemType)
	head.Add("Version", query.Version)
	head.Add("Error", itemErr.Error())
	return enc.Encode(head)
}

// DecodeStreamItem reads the next complete frame from dec. A clean end
// of stream returns io.EOF; any other error means the stream is broken
// mid-frame and no further frames can be trusted. An in-band server
// failure is returned as a frame with Err set, not as a decode error.
//
// For compatibility with non-streaming servers, a stream whose first
// object is a plain @SQResults header decodes as a single terminal
// frame: the whole answer at once is a legal, if unhelpful, stream.
func DecodeStreamItem(dec *soif.Decoder) (*StreamItem, error) {
	head, err := dec.Decode()
	if errors.Is(err, io.EOF) {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("result: reading stream frame header: %w", err)
	}
	if strings.EqualFold(head.Type, ResultsType) {
		r, err := decodeResultsBody(dec, head)
		if err != nil {
			return nil, err
		}
		return &StreamItem{Final: r}, nil
	}
	if !strings.EqualFold(head.Type, StreamItemType) {
		return nil, fmt.Errorf("result: expected @%s frame, found @%s", StreamItemType, head.Type)
	}
	if msg, failed := head.Get("Error"); failed {
		return &StreamItem{Err: &StreamError{Message: msg}}, nil
	}
	if _, final := head.Get("Final"); final {
		rh, err := dec.Decode()
		if err != nil {
			return nil, fmt.Errorf("result: terminal stream frame: reading @%s header: %w", ResultsType, err)
		}
		if !strings.EqualFold(rh.Type, ResultsType) {
			return nil, fmt.Errorf("result: terminal stream frame: expected @%s, found @%s", ResultsType, rh.Type)
		}
		r, err := decodeResultsBody(dec, rh)
		if err != nil {
			return nil, err
		}
		return &StreamItem{Final: r}, nil
	}
	v, ok := head.Get("Rank")
	if !ok {
		return nil, fmt.Errorf("result: @%s frame missing Rank", StreamItemType)
	}
	rank, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || rank < 0 {
		return nil, fmt.Errorf("result: invalid stream frame Rank %q", v)
	}
	nv, ok := head.Get("NumDocSOIFs")
	if !ok {
		return nil, fmt.Errorf("result: @%s frame missing NumDocSOIFs", StreamItemType)
	}
	n, err := strconv.Atoi(strings.TrimSpace(nv))
	if err != nil || n < 0 {
		return nil, fmt.Errorf("result: invalid stream frame NumDocSOIFs %q", nv)
	}
	it := &StreamItem{Rank: rank, Docs: make([]*Document, 0, n)}
	for i := 0; i < n; i++ {
		o, err := dec.Decode()
		if err != nil {
			return nil, fmt.Errorf("result: stream frame at rank %d: document %d of %d: %w", rank, i, n, err)
		}
		d, err := docFromSOIF(o)
		if err != nil {
			return nil, fmt.Errorf("result: stream frame at rank %d: document %d: %w", rank, i, err)
		}
		it.Docs = append(it.Docs, d)
	}
	return it, nil
}

// decodeResultsBody consumes the NumDocSOIFs documents promised by an
// already-decoded @SQResults header and assembles the whole result.
func decodeResultsBody(dec *soif.Decoder, head *soif.Object) (*Results, error) {
	nv, ok := head.Get("NumDocSOIFs")
	if !ok {
		return nil, fmt.Errorf("result: streamed @%s header missing NumDocSOIFs", ResultsType)
	}
	n, err := strconv.Atoi(strings.TrimSpace(nv))
	if err != nil || n < 0 {
		return nil, fmt.Errorf("result: streamed @%s header: invalid NumDocSOIFs %q", ResultsType, nv)
	}
	objs := make([]*soif.Object, 0, n+1)
	objs = append(objs, head)
	for i := 0; i < n; i++ {
		o, err := dec.Decode()
		if err != nil {
			return nil, fmt.Errorf("result: streamed answer: document %d of %d: %w", i, n, err)
		}
		objs = append(objs, o)
	}
	return FromSOIF(objs)
}
