package result

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"starts/internal/query"
	"starts/internal/soif"
)

// BatchItemType is the SOIF template type framing one item of a
// multi-query (batch) response stream. STARTS' same-resource facility
// permits one request to carry several queries for a source; the batch
// response interleaves nothing — it is a sequence of self-delimiting
// frames, each an @SQBatchItem header followed (on success) by that
// item's complete @SQResults object stream:
//
//	@SQBatchItem{ Index{1}: 2 }
//	@SQResults{ ... NumDocSOIFs{1}: 3 }
//	@SQRDocument{ ... } ×3
//
// Index names the request position the frame answers, so the server may
// emit frames in completion order rather than request order. A failed
// item carries an Error attribute instead of a result stream, so one bad
// query never poisons its batch. NumDocSOIFs (always present in the
// header this package writes) tells a streaming decoder exactly how many
// document objects to consume, which is what makes the frames
// self-delimiting without any outer length prefix.
const BatchItemType = "SQBatchItem"

// BatchItemError is a per-item failure reported inside an otherwise
// healthy batch response. It is the client-side rendering of a frame's
// Error attribute.
type BatchItemError struct {
	// Index is the request position of the failed item.
	Index int
	// Message is the server's error text.
	Message string
}

// Error implements error.
func (e *BatchItemError) Error() string {
	return fmt.Sprintf("result: batch item %d failed at source: %s", e.Index, e.Message)
}

// EncodeBatchItem writes one batch frame to enc: the @SQBatchItem header
// for index, then — when itemErr is nil — r's @SQResults object stream.
// With a non-nil itemErr the frame carries the error text and no result
// objects.
func EncodeBatchItem(enc *soif.Encoder, index int, r *Results, itemErr error) error {
	head := soif.New(BatchItemType)
	head.Add("Version", query.Version)
	head.Add("Index", strconv.Itoa(index))
	if itemErr != nil {
		head.Add("Error", itemErr.Error())
		return enc.Encode(head)
	}
	if err := enc.Encode(head); err != nil {
		return err
	}
	for _, o := range r.ToSOIF() {
		if err := enc.Encode(o); err != nil {
			return err
		}
	}
	return nil
}

// DecodeBatchItem reads the next complete frame from dec. It returns the
// frame's index and either its decoded result or its per-item error
// (itemErr, a *BatchItemError). A clean end of stream returns io.EOF in
// err; any other err means the stream itself is broken mid-frame and no
// further frames can be trusted.
func DecodeBatchItem(dec *soif.Decoder) (index int, r *Results, itemErr, err error) {
	head, err := dec.Decode()
	if errors.Is(err, io.EOF) {
		return 0, nil, nil, io.EOF
	}
	if err != nil {
		return 0, nil, nil, fmt.Errorf("result: reading batch frame header: %w", err)
	}
	if !strings.EqualFold(head.Type, BatchItemType) {
		return 0, nil, nil, fmt.Errorf("result: expected @%s frame, found @%s", BatchItemType, head.Type)
	}
	v, ok := head.Get("Index")
	if !ok {
		return 0, nil, nil, fmt.Errorf("result: @%s frame missing Index", BatchItemType)
	}
	index, err = strconv.Atoi(strings.TrimSpace(v))
	if err != nil || index < 0 {
		return 0, nil, nil, fmt.Errorf("result: invalid batch frame Index %q", v)
	}
	if msg, failed := head.Get("Error"); failed {
		return index, nil, &BatchItemError{Index: index, Message: msg}, nil
	}
	// The item's own object stream: the @SQResults header names how many
	// @SQRDocument objects follow, making the frame self-delimiting.
	rh, err := dec.Decode()
	if err != nil {
		return index, nil, nil, fmt.Errorf("result: batch item %d: reading @%s header: %w", index, ResultsType, err)
	}
	if !strings.EqualFold(rh.Type, ResultsType) {
		return index, nil, nil, fmt.Errorf("result: batch item %d: expected @%s, found @%s", index, ResultsType, rh.Type)
	}
	nv, ok := rh.Get("NumDocSOIFs")
	if !ok {
		return index, nil, nil, fmt.Errorf("result: batch item %d: @%s header missing NumDocSOIFs", index, ResultsType)
	}
	n, err := strconv.Atoi(strings.TrimSpace(nv))
	if err != nil || n < 0 {
		return index, nil, nil, fmt.Errorf("result: batch item %d: invalid NumDocSOIFs %q", index, nv)
	}
	objs := make([]*soif.Object, 0, n+1)
	objs = append(objs, rh)
	for i := 0; i < n; i++ {
		o, err := dec.Decode()
		if err != nil {
			return index, nil, nil, fmt.Errorf("result: batch item %d: document %d of %d: %w", index, i, n, err)
		}
		objs = append(objs, o)
	}
	r, err = FromSOIF(objs)
	if err != nil {
		return index, nil, nil, fmt.Errorf("result: batch item %d: %w", index, err)
	}
	return index, r, nil, nil
}
