package result

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"starts/internal/attr"
	"starts/internal/lang"
	"starts/internal/query"
	"starts/internal/soif"
)

// source1Doc reconstructs the SQRDocument of the paper's Example 8.
func source1Doc() *Document {
	return &Document{
		RawScore: 0.82,
		Sources:  []string{"Source-1"},
		Fields: map[attr.Field]string{
			attr.FieldLinkage: "http://www-db.stanford.edu/~ullman/pub/dood.ps",
			attr.FieldTitle:   "A Comparison Between Deductive and Object-Oriented Database Systems",
			attr.FieldAuthor:  "Jeffrey D. Ullman",
		},
		TermStats: []TermStat{
			{Term: query.NewTerm(attr.FieldBodyOfText, lang.L("distributed")), Freq: 10, Weight: 0.31, DocFreq: 190},
			{Term: query.NewTerm(attr.FieldBodyOfText, lang.L("databases")), Freq: 15, Weight: 0.51, DocFreq: 232},
		},
		Size:  248,
		Count: 10213,
	}
}

// source2Doc reconstructs the SQRDocument of the paper's Example 9.
func source2Doc() *Document {
	return &Document{
		RawScore: 0.27,
		Sources:  []string{"Source-2"},
		Fields: map[attr.Field]string{
			attr.FieldLinkage: "http://elib.stanford.edu/lagunita.ps",
			attr.FieldTitle:   "Database Research: Achievements and Opportunities into the 21st. Century",
			attr.FieldAuthor:  "Avi Silberschatz, Mike Stonebraker, Jeff Ullman",
		},
		TermStats: []TermStat{
			{Term: query.NewTerm(attr.FieldBodyOfText, lang.L("distributed")), Freq: 20, Weight: 0.12, DocFreq: 901},
			{Term: query.NewTerm(attr.FieldBodyOfText, lang.L("databases")), Freq: 34, Weight: 0.15, DocFreq: 788},
		},
		Size:  125,
		Count: 9031,
	}
}

// TestPaperExample8 is experiment E8 (first half): the Example 8 result —
// header echoing the actually-processed query (Source-1 dropped the stop
// word "distributed" from the ranking expression) plus the document object
// with its term statistics — encodes and decodes faithfully.
func TestPaperExample8(t *testing.T) {
	actualFilter, err := query.ParseFilter("((author ``Ullman'') and (title stem ``databases''))")
	if err != nil {
		t.Fatal(err)
	}
	actualRanking, err := query.ParseRanking("(body-of-text ``databases'')")
	if err != nil {
		t.Fatal(err)
	}
	r := &Results{
		Sources:       []string{"Source-1"},
		ActualFilter:  actualFilter,
		ActualRanking: actualRanking,
		Documents:     []*Document{source1Doc()},
	}
	data, err := r.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	text := string(data)
	for _, want := range []string{
		"@SQResults{",
		"Sources{8}: Source-1",
		`ActualFilterExpression{48}: ((author "Ullman") and (title stem "databases"))`,
		`ActualRankingExpression{26}: (body-of-text "databases")`,
		"NumDocSOIFs{1}: 1",
		"@SQRDocument{",
		"RawScore{4}: 0.82",
		"linkage{46}: http://www-db.stanford.edu/~ullman/pub/dood.ps",
		"title{67}: A Comparison Between Deductive and Object-Oriented Database Systems",
		"author{17}: Jeffrey D. Ullman",
		`(body-of-text "distributed") 10 0.31 190`,
		`(body-of-text "databases") 15 0.51 232`,
		"DocSize{3}: 248",
		"DocCount{5}: 10213",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("encoded result missing %q\n%s", want, text)
		}
	}

	back, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(back.Documents) != 1 {
		t.Fatalf("documents = %d", len(back.Documents))
	}
	d := back.Documents[0]
	if d.RawScore != 0.82 || d.Size != 248 || d.Count != 10213 {
		t.Errorf("document = %+v", d)
	}
	if d.Title() != source1Doc().Title() || d.Linkage() != source1Doc().Linkage() {
		t.Errorf("fields = %v", d.Fields)
	}
	if !reflect.DeepEqual(d.TermStats, source1Doc().TermStats) {
		t.Errorf("TermStats = %+v", d.TermStats)
	}
	if back.ActualRanking.String() != `(body-of-text "databases")` {
		t.Errorf("ActualRanking = %s", back.ActualRanking)
	}
}

// TestPaperExample9Stats is experiment E8 (second half): the Example 9
// document from Source-2 decodes with the statistics the paper's
// re-ranking narrative depends on — the Source-2 document has the LOWER
// raw score (0.27 vs 0.82) but HIGHER term frequencies (20 and 34 vs 10
// and 15).
func TestPaperExample9Stats(t *testing.T) {
	d1, d2 := source1Doc(), source2Doc()
	if d2.RawScore >= d1.RawScore {
		t.Fatal("example premise broken: d2 must have lower raw score")
	}
	s1d, _ := d1.Stat("distributed")
	s2d, _ := d2.Stat("distributed")
	s1b, _ := d1.Stat("databases")
	s2b, _ := d2.Stat("databases")
	if !(s2d.Freq > s1d.Freq && s2b.Freq > s1b.Freq) {
		t.Fatal("example premise broken: d2 must have higher term frequencies")
	}
	// Round trip both documents.
	r := &Results{Sources: []string{"Source-1", "Source-2"}, Documents: []*Document{d1, d2}}
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Documents) != 2 {
		t.Fatalf("documents = %d", len(back.Documents))
	}
	if !reflect.DeepEqual(back.Documents[1].TermStats, d2.TermStats) {
		t.Errorf("d2 stats = %+v", back.Documents[1].TermStats)
	}
	if !reflect.DeepEqual(back.Documents[1].Sources, []string{"Source-2"}) {
		t.Errorf("d2 sources = %v", back.Documents[1].Sources)
	}
}

func TestStatLookup(t *testing.T) {
	d := source1Doc()
	if s, ok := d.Stat("DISTRIBUTED"); !ok || s.Freq != 10 {
		t.Errorf("Stat lookup = %+v, %v", s, ok)
	}
	if _, ok := d.Stat("missing"); ok {
		t.Error("Stat found a missing term")
	}
}

func TestParseTermStatsMultiline(t *testing.T) {
	v := "(body-of-text \"distributed\") 10 0.31 190\n(body-of-text \"databases\") 15 0.51 232"
	stats, err := ParseTermStats(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 || stats[1].DocFreq != 232 {
		t.Errorf("stats = %+v", stats)
	}
	// Terms whose text contains runs of spaces survive.
	v2 := `(title "meta  search") 3 0.5 7`
	stats2, err := ParseTermStats(v2)
	if err != nil {
		t.Fatal(err)
	}
	if stats2[0].Term.Value.Text != "meta  search" {
		t.Errorf("interior spaces collapsed: %q", stats2[0].Term.Value.Text)
	}
	if _, err := ParseTermStats(""); err != nil {
		t.Errorf("empty TermStats should parse: %v", err)
	}
}

func TestParseTermStatsErrors(t *testing.T) {
	bad := []string{
		`(title "x") 1 0.5`,      // missing docfreq
		`(title "x") 1`,          // missing weight and docfreq
		`(title "x")`,            // missing all numbers
		`(title "x") one 0.5 2`,  // non-numeric freq
		`(title "x") 1 heavy 2`,  // non-numeric weight
		`(title "x") 1 0.5 many`, // non-numeric docfreq
		`not-a-term 1 0.5 2`,     // malformed term
		`("a" and "b") 1 0.5 2`,  // compound, not a term
	}
	for _, v := range bad {
		if _, err := ParseTermStats(v); err == nil {
			t.Errorf("ParseTermStats(%q) succeeded, want error", v)
		}
	}
}

func TestFromSOIFErrors(t *testing.T) {
	if _, err := FromSOIF(nil); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := FromSOIF([]*soif.Object{soif.New("SQuery")}); err == nil {
		t.Error("wrong header type accepted")
	}
	// NumDocSOIFs mismatch.
	head := soif.New(ResultsType)
	head.Add("NumDocSOIFs", "2")
	if _, err := FromSOIF([]*soif.Object{head}); err == nil {
		t.Error("NumDocSOIFs mismatch accepted")
	}
	// Bad document payloads.
	mkDoc := func(name, val string) []*soif.Object {
		h := soif.New(ResultsType)
		d := soif.New(DocumentType)
		d.Add(name, val)
		return []*soif.Object{h, d}
	}
	for _, tc := range [][2]string{
		{"RawScore", "high"},
		{"DocSize", "big"},
		{"DocCount", "lots"},
		{"TermStats", "broken"},
	} {
		if _, err := FromSOIF(mkDoc(tc[0], tc[1])); err == nil {
			t.Errorf("document with %s=%q accepted", tc[0], tc[1])
		}
	}
	// Non-document object in the tail.
	if _, err := FromSOIF([]*soif.Object{soif.New(ResultsType), soif.New("SQuery")}); err == nil {
		t.Error("non-document tail object accepted")
	}
}

func TestEmptyResults(t *testing.T) {
	r := &Results{Sources: []string{"Source-1"}}
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Documents) != 0 || back.Sources[0] != "Source-1" {
		t.Errorf("round trip = %+v", back)
	}
}

// Property: document round trip is the identity over generated documents.
func TestQuickDocumentRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := &Document{
			RawScore: float64(r.Intn(1000)) / 100,
			Sources:  []string{"S1"},
			Fields: map[attr.Field]string{
				attr.FieldLinkage: "http://example.com/doc",
				attr.FieldTitle:   "Title with\nnewline and {braces}",
			},
			Size:  1 + r.Intn(1000),
			Count: 1 + r.Intn(100000),
		}
		n := r.Intn(4)
		for i := 0; i < n; i++ {
			d.TermStats = append(d.TermStats, TermStat{
				Term:    query.NewTerm(attr.FieldBodyOfText, lang.L("t"+string(rune('a'+i)))),
				Freq:    r.Intn(100),
				Weight:  float64(r.Intn(100)) / 100,
				DocFreq: r.Intn(10000),
			})
		}
		res := &Results{Sources: []string{"S1"}, Documents: []*Document{d}}
		data, err := res.Marshal()
		if err != nil {
			return false
		}
		back, err := Parse(data)
		if err != nil || len(back.Documents) != 1 {
			return false
		}
		return reflect.DeepEqual(back.Documents[0], d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkResultsDecode(b *testing.B) {
	var docs []*Document
	for i := 0; i < 10; i++ {
		d := source1Doc()
		docs = append(docs, d)
	}
	r := &Results{Sources: []string{"Source-1"}, Documents: docs}
	data, err := r.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(data); err != nil {
			b.Fatal(err)
		}
	}
}
