package result

import "testing"

// TestCloneIsolatesMergeMutations pins the contract dispatch batching
// relies on: merge mutates RawScore, Sources and TermStats in place, so
// a consumer of a shared batched Results must be able to Clone and
// mutate without the other waiters seeing it.
func TestCloneIsolatesMergeMutations(t *testing.T) {
	orig := &Results{Documents: []*Document{source1Doc()}}
	cp := orig.Clone()

	// Everything merge.fuse touches, touched on the clone.
	cp.Documents[0].RawScore = 0.99
	cp.Documents[0].Sources = append(cp.Documents[0].Sources, "Source-2")
	cp.Documents[0].TermStats = nil
	cp.Documents = append(cp.Documents, source1Doc())

	d := orig.Documents[0]
	if len(orig.Documents) != 1 {
		t.Errorf("original grew to %d documents", len(orig.Documents))
	}
	if d.RawScore != 0.82 {
		t.Errorf("original RawScore = %v, want 0.82", d.RawScore)
	}
	if len(d.Sources) != 1 || d.Sources[0] != "Source-1" {
		t.Errorf("original Sources = %v, want [Source-1]", d.Sources)
	}
	if len(d.TermStats) != 2 {
		t.Errorf("original TermStats = %d entries, want 2", len(d.TermStats))
	}
}
