// Package result implements STARTS query results (Section 4.2): the
// SQResults header object that echoes the query a source actually
// processed, and the SQRDocument objects that carry, for every document,
// the unnormalized score, the originating sources, the answer fields, and
// the per-term statistics (term frequency, term weight, document
// frequency) that make rank merging possible without retrieving the
// documents themselves.
package result

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"starts/internal/attr"
	"starts/internal/query"
	"starts/internal/soif"
)

// SOIF template types of result objects.
const (
	ResultsType  = "SQResults"
	DocumentType = "SQRDocument"
)

// TermStat carries the statistics a source reports for one ranking-
// expression term in one document. These are the "raw material" a
// metasearcher needs to re-rank documents across sources with its own
// formula.
type TermStat struct {
	// Term is the ranking-expression term, as modified by the query
	// fields: e.g. (body-of-text "distributed").
	Term query.Term
	// Freq is the number of times the term appears in the document.
	Freq int
	// Weight is the term's weight in the document as assigned by the
	// source's engine (for example a normalized tf·idf weight).
	Weight float64
	// DocFreq is the number of documents in the source containing the
	// term.
	DocFreq int
}

// String renders the stat in the Example 8 line format.
func (s TermStat) String() string {
	return fmt.Sprintf("%s %d %s %d", s.Term, s.Freq, formatFloat(s.Weight), s.DocFreq)
}

// Document is one query-result document.
type Document struct {
	// RawScore is the unnormalized score the source assigned for the
	// query's ranking expression.
	RawScore float64
	// Sources identifies the source(s) where the document appears; a
	// resource that eliminated duplicates lists every source that held a
	// copy.
	Sources []string
	// Fields holds the answer fields (title, author, ...). Linkage is
	// always present.
	Fields map[attr.Field]string
	// TermStats has one entry per ranking-expression term.
	TermStats []TermStat
	// Size is the document size in KBytes.
	Size int
	// Count is the number of tokens in the document, as determined by the
	// source's tokenizer.
	Count int
}

// Linkage returns the document URL.
func (d *Document) Linkage() string { return d.Fields[attr.FieldLinkage] }

// Title returns the document title, if it was an answer field.
func (d *Document) Title() string { return d.Fields[attr.FieldTitle] }

// Stat returns the term statistics for the given term text (matched
// case-insensitively against the stat's l-string), and whether they exist.
func (d *Document) Stat(text string) (TermStat, bool) {
	for _, s := range d.TermStats {
		if strings.EqualFold(s.Term.Value.Text, text) {
			return s, true
		}
	}
	return TermStat{}, false
}

// Results is a complete query result: the header plus the documents.
type Results struct {
	// Sources lists the sources that evaluated the query.
	Sources []string
	// ActualFilter and ActualRanking echo the query the source really
	// processed after dropping any parts it does not support; STARTS has
	// no error reporting, so this echo is how metasearchers learn that a
	// source ignored part of a query.
	ActualFilter  query.Expr
	ActualRanking query.Expr
	// Documents are the result documents, in source rank order.
	Documents []*Document
}

// ToSOIF encodes the result as an @SQResults header followed by one
// @SQRDocument per document, as in the paper's Example 8.
func (r *Results) ToSOIF() []*soif.Object {
	head := soif.New(ResultsType)
	head.Add("Version", query.Version)
	head.Add("Sources", strings.Join(r.Sources, " "))
	if r.ActualFilter != nil {
		head.Add("ActualFilterExpression", r.ActualFilter.String())
	}
	if r.ActualRanking != nil {
		head.Add("ActualRankingExpression", r.ActualRanking.String())
	}
	head.Add("NumDocSOIFs", strconv.Itoa(len(r.Documents)))
	objs := []*soif.Object{head}
	for _, d := range r.Documents {
		objs = append(objs, d.toSOIF())
	}
	return objs
}

// Marshal encodes the result to SOIF bytes.
func (r *Results) Marshal() ([]byte, error) {
	return soif.MarshalAll(r.ToSOIF())
}

// Clone returns a copy of r that is safe to hand to a consumer that
// mutates merge state: rank merging collapses duplicates by rewriting a
// document's Sources, RawScore and TermStats in place, so a Results
// value shared between concurrent searches (conn-level caching, dispatch
// batching) must be cloned per consumer. The Documents slice, each
// Document and its Sources slice are copied; Fields maps, TermStat
// entries and the header expressions are shared and must stay read-only.
func (r *Results) Clone() *Results {
	cp := *r
	cp.Documents = make([]*Document, len(r.Documents))
	for i, d := range r.Documents {
		dc := *d
		dc.Sources = append([]string(nil), d.Sources...)
		cp.Documents[i] = &dc
	}
	return &cp
}

func (d *Document) toSOIF() *soif.Object {
	o := soif.New(DocumentType)
	o.Add("Version", query.Version)
	o.Add("RawScore", formatFloat(d.RawScore))
	o.Add("Sources", strings.Join(d.Sources, " "))
	for _, f := range fieldOrder(d.Fields) {
		o.Add(string(f), d.Fields[f])
	}
	if len(d.TermStats) > 0 {
		lines := make([]string, len(d.TermStats))
		for i, s := range d.TermStats {
			lines[i] = s.String()
		}
		o.Add("TermStats", strings.Join(lines, "\n"))
	}
	if d.Size > 0 {
		o.Add("DocSize", strconv.Itoa(d.Size))
	}
	if d.Count > 0 {
		o.Add("DocCount", strconv.Itoa(d.Count))
	}
	return o
}

// fieldOrder yields linkage and title first (the always-present and
// default answer fields), then the rest alphabetically, for stable output.
func fieldOrder(fields map[attr.Field]string) []attr.Field {
	var rest []attr.Field
	var ordered []attr.Field
	for f := range fields {
		switch f {
		case attr.FieldLinkage, attr.FieldTitle:
		default:
			rest = append(rest, f)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	if _, ok := fields[attr.FieldLinkage]; ok {
		ordered = append(ordered, attr.FieldLinkage)
	}
	if _, ok := fields[attr.FieldTitle]; ok {
		ordered = append(ordered, attr.FieldTitle)
	}
	return append(ordered, rest...)
}

// Parse decodes a complete query result (header plus documents) from SOIF
// bytes.
func Parse(data []byte) (*Results, error) {
	objs, err := soif.UnmarshalAll(data)
	if err != nil {
		return nil, err
	}
	return FromSOIF(objs)
}

// FromSOIF decodes a result from its SOIF objects. The first object must
// be the @SQResults header; NumDocSOIFs must match the number of document
// objects that follow.
func FromSOIF(objs []*soif.Object) (*Results, error) {
	if len(objs) == 0 {
		return nil, fmt.Errorf("result: empty result stream")
	}
	head := objs[0]
	// A server that committed its HTTP status before failing reports the
	// failure as an @SQStreamItem error object in place of the results;
	// surface it as the typed error it is.
	if strings.EqualFold(head.Type, StreamItemType) {
		if msg, ok := head.Get("Error"); ok {
			return nil, &StreamError{Message: msg}
		}
	}
	if !strings.EqualFold(head.Type, ResultsType) {
		return nil, fmt.Errorf("result: expected @%s header, found @%s", ResultsType, head.Type)
	}
	r := &Results{}
	if v, ok := head.Get("Sources"); ok {
		r.Sources = strings.Fields(v)
	}
	var err error
	if v, ok := head.Get("ActualFilterExpression"); ok {
		if r.ActualFilter, err = query.ParseFilter(v); err != nil {
			return nil, fmt.Errorf("result: actual filter: %w", err)
		}
	}
	if v, ok := head.Get("ActualRankingExpression"); ok {
		if r.ActualRanking, err = query.ParseRanking(v); err != nil {
			return nil, fmt.Errorf("result: actual ranking: %w", err)
		}
	}
	for i, o := range objs[1:] {
		d, err := docFromSOIF(o)
		if err != nil {
			return nil, fmt.Errorf("result: document %d: %w", i, err)
		}
		r.Documents = append(r.Documents, d)
	}
	if v, ok := head.Get("NumDocSOIFs"); ok {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil {
			return nil, fmt.Errorf("result: NumDocSOIFs %q: %w", v, err)
		}
		if n != len(r.Documents) {
			return nil, fmt.Errorf("result: header promises %d documents, stream carries %d", n, len(r.Documents))
		}
	}
	return r, nil
}

func docFromSOIF(o *soif.Object) (*Document, error) {
	if !strings.EqualFold(o.Type, DocumentType) {
		return nil, fmt.Errorf("expected @%s, found @%s", DocumentType, o.Type)
	}
	d := &Document{Fields: map[attr.Field]string{}}
	var err error
	for _, a := range o.Attrs {
		switch strings.ToLower(a.Name) {
		case "version":
		case "rawscore":
			if d.RawScore, err = strconv.ParseFloat(strings.TrimSpace(a.Value), 64); err != nil {
				return nil, fmt.Errorf("RawScore %q: %w", a.Value, err)
			}
		case "sources":
			d.Sources = strings.Fields(a.Value)
		case "termstats":
			if d.TermStats, err = ParseTermStats(a.Value); err != nil {
				return nil, err
			}
		case "docsize":
			if d.Size, err = strconv.Atoi(strings.TrimSpace(a.Value)); err != nil {
				return nil, fmt.Errorf("DocSize %q: %w", a.Value, err)
			}
		case "doccount":
			if d.Count, err = strconv.Atoi(strings.TrimSpace(a.Value)); err != nil {
				return nil, fmt.Errorf("DocCount %q: %w", a.Value, err)
			}
		default:
			d.Fields[attr.Normalize(attr.Field(a.Name))] = a.Value
		}
	}
	return d, nil
}

// ParseTermStats decodes the TermStats attribute value: one or more
// whitespace-separated entries of the form
//
//	(body-of-text "distributed") 10 0.31 190
func ParseTermStats(v string) ([]TermStat, error) {
	var stats []TermStat
	rest := v
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return stats, nil
		}
		term, after, err := query.ScanTerm(rest)
		if err != nil {
			return nil, fmt.Errorf("TermStats term: %w", err)
		}
		var s TermStat
		s.Term = term
		var tok string
		if tok, after = nextToken(after); tok == "" {
			return nil, fmt.Errorf("TermStats entry for %s needs freq, weight and docfreq", term)
		}
		if s.Freq, err = strconv.Atoi(tok); err != nil {
			return nil, fmt.Errorf("TermStats freq %q: %w", tok, err)
		}
		if tok, after = nextToken(after); tok == "" {
			return nil, fmt.Errorf("TermStats entry for %s is missing its weight", term)
		}
		if s.Weight, err = strconv.ParseFloat(tok, 64); err != nil {
			return nil, fmt.Errorf("TermStats weight %q: %w", tok, err)
		}
		if tok, after = nextToken(after); tok == "" {
			return nil, fmt.Errorf("TermStats entry for %s is missing its docfreq", term)
		}
		if s.DocFreq, err = strconv.Atoi(tok); err != nil {
			return nil, fmt.Errorf("TermStats docfreq %q: %w", tok, err)
		}
		stats = append(stats, s)
		rest = after
	}
}

// nextToken splits one whitespace-delimited token off the front of s,
// leaving the remainder (including any interior whitespace) intact.
func nextToken(s string) (tok, rest string) {
	s = strings.TrimLeft(s, " \t\r\n")
	i := strings.IndexAny(s, " \t\r\n")
	if i < 0 {
		return s, ""
	}
	return s[:i], s[i:]
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
