package result

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"starts/internal/soif"
)

// TestStreamRoundTrip: document frames, a terminal frame and EOF decode
// back to exactly what was encoded.
func TestStreamRoundTrip(t *testing.T) {
	d1, d2 := source1Doc(), source2Doc()
	final := &Results{Sources: []string{"Source-1", "Source-2"}, Documents: []*Document{d1, d2}}

	var buf bytes.Buffer
	enc := soif.NewEncoder(&buf)
	if err := EncodeStreamDocs(enc, 0, []*Document{d1}); err != nil {
		t.Fatal(err)
	}
	if err := EncodeStreamDocs(enc, 1, []*Document{d2}); err != nil {
		t.Fatal(err)
	}
	if err := EncodeStreamFinal(enc, final); err != nil {
		t.Fatal(err)
	}

	dec := soif.NewDecoder(&buf)
	it, err := DecodeStreamItem(dec)
	if err != nil {
		t.Fatal(err)
	}
	if it.Rank != 0 || len(it.Docs) != 1 || !reflect.DeepEqual(it.Docs[0], d1) {
		t.Fatalf("frame 1 = %+v", it)
	}
	it, err = DecodeStreamItem(dec)
	if err != nil {
		t.Fatal(err)
	}
	if it.Rank != 1 || len(it.Docs) != 1 || !reflect.DeepEqual(it.Docs[0], d2) {
		t.Fatalf("frame 2 = %+v", it)
	}
	it, err = DecodeStreamItem(dec)
	if err != nil {
		t.Fatal(err)
	}
	if it.Final == nil {
		t.Fatalf("frame 3 not terminal: %+v", it)
	}
	if !reflect.DeepEqual(it.Final.Documents, final.Documents) || !reflect.DeepEqual(it.Final.Sources, final.Sources) {
		t.Fatalf("terminal answer = %+v", it.Final)
	}
	if _, err := DecodeStreamItem(dec); err != io.EOF {
		t.Fatalf("after terminal frame: %v, want io.EOF", err)
	}
}

// TestStreamEmptyDocFrame: a zero-document frame is legal (a source
// completed without stabilizing anything).
func TestStreamEmptyDocFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeStreamDocs(soif.NewEncoder(&buf), 3, nil); err != nil {
		t.Fatal(err)
	}
	it, err := DecodeStreamItem(soif.NewDecoder(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if it.Rank != 3 || len(it.Docs) != 0 || it.Final != nil || it.Err != nil {
		t.Fatalf("empty frame = %+v", it)
	}
}

// TestStreamErrorFrame: a mid-stream server failure arrives as a frame
// with Err set, not a decode error.
func TestStreamErrorFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeStreamError(soif.NewEncoder(&buf), errors.New("merge failed")); err != nil {
		t.Fatal(err)
	}
	it, err := DecodeStreamItem(soif.NewDecoder(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if it.Err == nil || it.Err.Message != "merge failed" {
		t.Fatalf("error frame = %+v", it)
	}
	if it.Err.Error() == "" {
		t.Fatal("StreamError.Error() empty")
	}
}

// TestStreamCompatPlainResults: a non-streaming server's plain
// @SQResults body decodes as one terminal frame.
func TestStreamCompatPlainResults(t *testing.T) {
	final := &Results{Sources: []string{"Source-1"}, Documents: []*Document{source1Doc()}}
	data, err := final.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	dec := soif.NewDecoder(bytes.NewReader(data))
	it, err := DecodeStreamItem(dec)
	if err != nil {
		t.Fatal(err)
	}
	if it.Final == nil || len(it.Final.Documents) != 1 {
		t.Fatalf("plain results decoded as %+v", it)
	}
	if _, err := DecodeStreamItem(dec); err != io.EOF {
		t.Fatalf("after plain results: %v, want io.EOF", err)
	}
}

// TestStreamTruncated: a stream cut off mid-frame reports a hard decode
// error, not a silent short answer.
func TestStreamTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeStreamDocs(soif.NewEncoder(&buf), 0, []*Document{source1Doc(), source2Doc()}); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	if _, err := DecodeStreamItem(soif.NewDecoder(bytes.NewReader(cut))); err == nil || err == io.EOF {
		t.Fatalf("truncated stream decoded: %v", err)
	}
}
