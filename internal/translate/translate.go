// Package translate implements metasearcher-side query translation — the
// second metasearch task. Using nothing but a source's exported MBasic-1
// metadata, it rewrites a query down to what the source supports, predicts
// stop-word eliminations, and reports exactly what was lost so the
// metasearcher can post-filter results client-side ("verification mode",
// as MetaCrawler does for features the sources lack).
package translate

import (
	"strings"

	"starts/internal/attr"
	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/text"
)

// Report records what translation changed, so the metasearcher can judge
// result fidelity and decide what to verify client-side.
type Report struct {
	// DroppedFilter / DroppedRanking are set when the source supports no
	// expression of that kind at all.
	DroppedFilter  bool
	DroppedRanking bool
	// DroppedTerms lists terms removed because their field is unsupported
	// or they consist entirely of source stop words.
	DroppedTerms []query.Term
	// StrippedMods lists modifiers removed from surviving terms.
	StrippedMods []ModStrip
	// KeepStopWordsDenied is set when the query asked to keep stop words
	// but the source cannot turn elimination off.
	KeepStopWordsDenied bool
	// SynthesizedFilter is set when a ranking-only query was downgraded
	// to an OR filter for a filter-only source, so the source still
	// contributes (unranked) candidates.
	SynthesizedFilter bool
	// SynthesizedRanking is set when a filter-only query was recast as a
	// ranking list for a ranking-only source; the metasearcher should
	// post-filter, since ranking semantics are weaker than the filter's.
	SynthesizedRanking bool
}

// ModStrip is one modifier removed from one term.
type ModStrip struct {
	Term query.Term
	Mod  attr.Modifier
}

// Clean reports whether translation was lossless.
func (r *Report) Clean() bool {
	return !r.DroppedFilter && !r.DroppedRanking && len(r.DroppedTerms) == 0 &&
		len(r.StrippedMods) == 0 && !r.KeepStopWordsDenied &&
		!r.SynthesizedFilter && !r.SynthesizedRanking
}

// ForSource rewrites q for the source described by m. The returned query
// is what should be sent; the report describes the losses. The original
// query is not modified.
func ForSource(q *query.Query, m *meta.SourceMeta) (*query.Query, *Report) {
	out := q.Clone()
	// Resolve non-default attribute sets up front so capability checks
	// run against the Basic-1 fields sources advertise.
	out.Filter, out.Ranking = out.ResolveAttributeSet()
	out.DefaultAttrSet = attr.SetBasic1
	rep := &Report{}
	stop := text.NewStopList(m.SourceID+"-stopwords", m.StopWords)
	dropStop := q.DropStopWords
	if !q.DropStopWords && !m.TurnOffStopWords {
		rep.KeepStopWordsDenied = true
		dropStop = true
	}

	tr := &translator{m: m, rep: rep, stop: stop, dropStop: dropStop}
	if !m.QueryParts.SupportsFilter() {
		if out.Filter != nil {
			rep.DroppedFilter = true
			collectTerms(out.Filter, rep)
			out.Filter = nil
		}
	} else {
		out.Filter = tr.rewrite(out.Filter)
	}
	if !m.QueryParts.SupportsRanking() {
		if out.Ranking != nil {
			rep.DroppedRanking = true
			out.Ranking = nil
		}
	} else {
		out.Ranking = tr.rewrite(out.Ranking)
	}
	// Locally implement the missing query part where possible
	// (MetaCrawler-style): a ranking-only query at a filter-only source
	// becomes an OR filter over the ranking terms; a filter-only query at
	// a ranking-only source becomes a ranking list over the filter terms
	// (to be post-filtered by the caller).
	if out.Filter == nil && out.Ranking == nil {
		switch {
		case rep.DroppedRanking && q.Ranking != nil:
			if f := tr.rewrite(orOfTerms(q.Ranking)); f != nil {
				out.Filter = f
				rep.SynthesizedFilter = true
			}
		case rep.DroppedFilter && q.Filter != nil:
			if r := tr.rewrite(listOfTerms(q.Filter)); r != nil {
				out.Ranking = r
				rep.SynthesizedRanking = true
				rep.DroppedTerms = append(rep.DroppedTerms, q.Filter.Terms(nil)...)
			}
		}
	}
	return out, rep
}

// orOfTerms flattens an expression's terms into an OR chain.
func orOfTerms(e query.Expr) query.Expr {
	terms := e.Terms(nil)
	var out query.Expr
	for _, t := range terms {
		t.Weight = 0 // weights are illegal in filters
		te := &query.TermExpr{Term: t}
		if out == nil {
			out = te
		} else {
			out = &query.Bin{Op: query.OpOr, L: out, R: te}
		}
	}
	return out
}

// listOfTerms flattens an expression's terms into a ranking list.
func listOfTerms(e query.Expr) query.Expr {
	terms := e.Terms(nil)
	l := &query.List{}
	for _, t := range terms {
		l.Items = append(l.Items, &query.TermExpr{Term: t})
	}
	if len(l.Items) == 0 {
		return nil
	}
	return l
}

func collectTerms(e query.Expr, rep *Report) {
	if e == nil {
		return
	}
	rep.DroppedTerms = append(rep.DroppedTerms, e.Terms(nil)...)
}

type translator struct {
	m        *meta.SourceMeta
	rep      *Report
	stop     *text.StopList
	dropStop bool
}

func (tr *translator) rewrite(e query.Expr) query.Expr {
	switch n := e.(type) {
	case nil:
		return nil
	case *query.TermExpr:
		return tr.rewriteTerm(n)
	case *query.Bin:
		l, r := tr.rewrite(n.L), tr.rewrite(n.R)
		switch {
		case l == nil && r == nil:
			return nil
		case l == nil:
			if n.Op == query.OpAndNot {
				return nil
			}
			return r
		case r == nil:
			return l
		default:
			return &query.Bin{Op: n.Op, L: l, R: r}
		}
	case *query.Prox:
		l, r := tr.rewrite(n.L), tr.rewrite(n.R)
		lt, lok := l.(*query.TermExpr)
		rt, rok := r.(*query.TermExpr)
		switch {
		case lok && rok:
			return &query.Prox{L: lt, R: rt, Dist: n.Dist, Ordered: n.Ordered}
		case lok:
			return lt
		case rok:
			return rt
		default:
			return nil
		}
	case *query.List:
		out := &query.List{}
		for _, it := range n.Items {
			if kept := tr.rewrite(it); kept != nil {
				out.Items = append(out.Items, kept)
			}
		}
		if len(out.Items) == 0 {
			return nil
		}
		return out
	default:
		return nil
	}
}

func (tr *translator) rewriteTerm(te *query.TermExpr) query.Expr {
	t := te.Term
	if !tr.m.SupportsField(t.EffectiveField()) {
		tr.rep.DroppedTerms = append(tr.rep.DroppedTerms, t)
		return nil
	}
	var kept []attr.Modifier
	for _, mod := range t.Mods {
		if tr.m.SupportsModifier(mod) && tr.m.AllowsCombination(t.EffectiveField(), mod) {
			kept = append(kept, mod)
			continue
		}
		tr.rep.StrippedMods = append(tr.rep.StrippedMods, ModStrip{Term: t, Mod: mod})
	}
	t.Mods = kept
	if tr.dropStop && tr.allStopWords(t) {
		tr.rep.DroppedTerms = append(tr.rep.DroppedTerms, t)
		return nil
	}
	return &query.TermExpr{Term: t}
}

// allStopWords predicts source-side elimination from the exported stop
// list.
func (tr *translator) allStopWords(t query.Term) bool {
	if tr.stop.Len() == 0 {
		return false
	}
	switch t.EffectiveField() {
	case attr.FieldTitle, attr.FieldAuthor, attr.FieldBodyOfText, attr.FieldAny:
	default:
		return false
	}
	words := strings.FieldsFunc(t.Value.Text, func(r rune) bool {
		return r == ' ' || r == '\t' || r == ',' || r == '.' || r == ';'
	})
	if len(words) == 0 {
		return false
	}
	for _, w := range words {
		if !tr.stop.Contains(w) {
			return false
		}
	}
	return true
}

// PostFilter implements verification mode: it re-checks result documents
// against terms the source could not evaluate, using the answer fields
// that came back. Only terms over returned textual fields are verifiable;
// unverifiable terms are reported and left unenforced. It returns the
// surviving documents and the terms it could not verify.
func PostFilter(docs []*result.Document, dropped []query.Term) (kept []*result.Document, unverifiable []query.Term) {
	var checkable []query.Term
	for _, t := range dropped {
		switch t.EffectiveField() {
		case attr.FieldTitle, attr.FieldAuthor, attr.FieldAny:
			checkable = append(checkable, t)
		default:
			unverifiable = append(unverifiable, t)
		}
	}
	if len(checkable) == 0 {
		return docs, unverifiable
	}
	for _, d := range docs {
		ok := true
		for _, t := range checkable {
			if !docMatches(d, t) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, d)
		}
	}
	return kept, unverifiable
}

// docMatches checks a term against a result document's returned fields
// with simple case-insensitive word containment.
func docMatches(d *result.Document, t query.Term) bool {
	var texts []string
	switch t.EffectiveField() {
	case attr.FieldTitle:
		texts = []string{d.Fields[attr.FieldTitle]}
	case attr.FieldAuthor:
		texts = []string{d.Fields[attr.FieldAuthor]}
	case attr.FieldAny:
		for _, v := range d.Fields {
			texts = append(texts, v)
		}
	}
	needle := strings.ToLower(t.Value.Text)
	for _, txt := range texts {
		if txt == "" {
			continue
		}
		hay := strings.ToLower(txt)
		for from := 0; ; {
			idx := strings.Index(hay[from:], needle)
			if idx < 0 {
				break
			}
			idx += from
			// Require word-ish boundaries so "art" does not match
			// "particle".
			before := idx == 0 || !isWordRune(hay[idx-1])
			afterIdx := idx + len(needle)
			after := afterIdx >= len(hay) || !isWordRune(hay[afterIdx])
			if t.HasMod(attr.ModRightTruncation) {
				after = true
			}
			if t.HasMod(attr.ModLeftTruncation) {
				before = true
			}
			if before && after {
				return true
			}
			from = idx + 1
		}
	}
	return false
}

func isWordRune(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= '0' && c <= '9'
}
