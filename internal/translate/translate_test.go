package translate

import (
	"testing"

	"starts/internal/attr"
	"starts/internal/lang"
	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/result"
)

// fullMeta describes a capable source: both query parts, author+body
// fields, stem+phonetic modifiers (all combos legal), stop words can be
// turned off.
func fullMeta() *meta.SourceMeta {
	m := &meta.SourceMeta{
		SourceID:   "S",
		QueryParts: meta.PartsBoth,
		FieldsSupported: []meta.FieldSupport{
			{Set: attr.SetBasic1, Field: attr.FieldAuthor},
			{Set: attr.SetBasic1, Field: attr.FieldBodyOfText},
		},
		ModifiersSupported: []meta.ModifierSupport{
			{Set: attr.SetBasic1, Mod: attr.ModStem},
			{Set: attr.SetBasic1, Mod: attr.ModPhonetic},
		},
		TurnOffStopWords: true,
		StopWords:        []string{"the", "a", "of", "who"},
	}
	for _, f := range []attr.Field{attr.FieldTitle, attr.FieldAuthor, attr.FieldBodyOfText, attr.FieldAny} {
		for _, mod := range []attr.Modifier{attr.ModStem, attr.ModPhonetic} {
			m.Combinations = append(m.Combinations, meta.Combination{
				Field: meta.FieldSupport{Set: attr.SetBasic1, Field: f},
				Mod:   meta.ModifierSupport{Set: attr.SetBasic1, Mod: mod},
			})
		}
	}
	return m
}

func mkQuery(t *testing.T, filter, ranking string) *query.Query {
	t.Helper()
	q := query.New()
	var err error
	if filter != "" {
		if q.Filter, err = query.ParseFilter(filter); err != nil {
			t.Fatal(err)
		}
	}
	if ranking != "" {
		if q.Ranking, err = query.ParseRanking(ranking); err != nil {
			t.Fatal(err)
		}
	}
	return q
}

func TestLosslessTranslation(t *testing.T) {
	q := mkQuery(t, `((author "Ullman") and (body-of-text stem "databases"))`,
		`list((body-of-text "distributed"))`)
	out, rep := ForSource(q, fullMeta())
	if !rep.Clean() {
		t.Errorf("report not clean: %+v", rep)
	}
	if out.Filter.String() != q.Filter.String() || out.Ranking.String() != q.Ranking.String() {
		t.Errorf("lossless translation changed query: %s / %s", out.Filter, out.Ranking)
	}
	// Original untouched.
	if q.Filter == nil {
		t.Error("original mutated")
	}
}

func TestRankingOnlySourceDropsFilter(t *testing.T) {
	m := fullMeta()
	m.QueryParts = meta.PartsRanking
	q := mkQuery(t, `(author "Ullman")`, `list((body-of-text "databases"))`)
	out, rep := ForSource(q, m)
	if out.Filter != nil || !rep.DroppedFilter {
		t.Errorf("filter not dropped: %v %+v", out.Filter, rep)
	}
	if len(rep.DroppedTerms) != 1 || rep.DroppedTerms[0].Value.Text != "Ullman" {
		t.Errorf("dropped terms = %+v", rep.DroppedTerms)
	}
	if out.Ranking == nil {
		t.Error("ranking lost")
	}
}

func TestFilterOnlySourceDropsRanking(t *testing.T) {
	m := fullMeta()
	m.QueryParts = meta.PartsFilter
	q := mkQuery(t, `(author "Ullman")`, `list((body-of-text "databases"))`)
	out, rep := ForSource(q, m)
	if out.Ranking != nil || !rep.DroppedRanking {
		t.Errorf("ranking not dropped: %v %+v", out.Ranking, rep)
	}
}

func TestUnsupportedFieldTermDropped(t *testing.T) {
	m := fullMeta()
	m.FieldsSupported = m.FieldsSupported[1:] // drop author support
	q := mkQuery(t, `((author "Ullman") and (body-of-text "databases"))`, "")
	out, rep := ForSource(q, m)
	if out.Filter.String() != `(body-of-text "databases")` {
		t.Errorf("filter = %s", out.Filter)
	}
	if len(rep.DroppedTerms) != 1 || rep.DroppedTerms[0].Field != attr.FieldAuthor {
		t.Errorf("dropped = %+v", rep.DroppedTerms)
	}
}

func TestModifierStripping(t *testing.T) {
	m := fullMeta()
	m.ModifiersSupported = m.ModifiersSupported[:1] // stem only
	q := mkQuery(t, `(author phonetic "Smith")`, "")
	out, rep := ForSource(q, m)
	if out.Filter.String() != `(author "Smith")` {
		t.Errorf("filter = %s", out.Filter)
	}
	if len(rep.StrippedMods) != 1 || rep.StrippedMods[0].Mod != attr.ModPhonetic {
		t.Errorf("stripped = %+v", rep.StrippedMods)
	}
}

func TestIllegalCombinationStripping(t *testing.T) {
	m := fullMeta()
	// Remove the (author, stem) combination specifically.
	var combos []meta.Combination
	for _, c := range m.Combinations {
		if !(c.Field.Field == attr.FieldAuthor && c.Mod.Mod == attr.ModStem) {
			combos = append(combos, c)
		}
	}
	m.Combinations = combos
	q := mkQuery(t, `((author stem "Ullman") and (body-of-text stem "databases"))`, "")
	out, rep := ForSource(q, m)
	if out.Filter.String() != `((author "Ullman") and (body-of-text stem "databases"))` {
		t.Errorf("filter = %s", out.Filter)
	}
	if len(rep.StrippedMods) != 1 {
		t.Errorf("stripped = %+v", rep.StrippedMods)
	}
}

func TestStopWordPrediction(t *testing.T) {
	// "The Who": both words in the source's stop list; predicted dropped.
	q := mkQuery(t, `((body-of-text "the who") and (body-of-text "concert"))`, "")
	out, rep := ForSource(q, fullMeta())
	if out.Filter.String() != `(body-of-text "concert")` {
		t.Errorf("filter = %s", out.Filter)
	}
	if len(rep.DroppedTerms) != 1 {
		t.Errorf("dropped = %+v", rep.DroppedTerms)
	}
	// With DropStopWords=F at a source that can turn them off, the phrase
	// survives.
	q2 := mkQuery(t, `(body-of-text "the who")`, "")
	q2.DropStopWords = false
	out2, rep2 := ForSource(q2, fullMeta())
	if out2.Filter == nil || !rep2.Clean() {
		t.Errorf("phrase lost despite DropStopWords=F: %v %+v", out2.Filter, rep2)
	}
	// At a source that cannot turn them off, the denial is reported and
	// the phrase is predicted gone.
	m := fullMeta()
	m.TurnOffStopWords = false
	out3, rep3 := ForSource(q2, m)
	if !rep3.KeepStopWordsDenied {
		t.Error("denial not reported")
	}
	if out3.Filter != nil {
		t.Errorf("filter survived: %s", out3.Filter)
	}
}

func TestProxCollapse(t *testing.T) {
	m := fullMeta()
	m.FieldsSupported = m.FieldsSupported[1:] // no author
	q := mkQuery(t, `((author "Ullman") prox[2,T] (body-of-text "databases"))`, "")
	out, _ := ForSource(q, m)
	if out.Filter.String() != `(body-of-text "databases")` {
		t.Errorf("prox collapse = %s", out.Filter)
	}
}

func TestAndNotCollapse(t *testing.T) {
	m := fullMeta()
	m.FieldsSupported = m.FieldsSupported[1:] // no author
	// Positive side unsupported -> whole and-not goes.
	q := mkQuery(t, `((author "Ullman") and-not (body-of-text "surveys"))`, "")
	out, _ := ForSource(q, m)
	if out.Filter != nil {
		t.Errorf("and-not kept bare negation: %s", out.Filter)
	}
}

func TestListCollapse(t *testing.T) {
	m := fullMeta()
	m.FieldsSupported = m.FieldsSupported[1:] // no author
	q := mkQuery(t, "", `list((author "Ullman") (body-of-text "databases"))`)
	out, _ := ForSource(q, m)
	if out.Ranking.String() != `list((body-of-text "databases"))` {
		t.Errorf("ranking = %s", out.Ranking)
	}
	q2 := mkQuery(t, "", `list((author "Ullman"))`)
	out2, _ := ForSource(q2, m)
	if out2.Ranking != nil {
		t.Errorf("empty list survived: %s", out2.Ranking)
	}
}

func mkDoc(title, author string) *result.Document {
	return &result.Document{Fields: map[attr.Field]string{
		attr.FieldLinkage: "http://x/" + title,
		attr.FieldTitle:   title,
		attr.FieldAuthor:  author,
	}}
}

func TestPostFilterVerification(t *testing.T) {
	docs := []*result.Document{
		mkDoc("Database systems by Ullman", "Jeffrey Ullman"),
		mkDoc("Gardening weekly", "Green Thumb"),
		mkDoc("Particle physics", "Art Smith"),
	}
	dropped := []query.Term{query.NewTerm(attr.FieldAuthor, lang.L("Ullman"))}
	kept, unver := PostFilter(docs, dropped)
	if len(kept) != 1 || kept[0].Title() != "Database systems by Ullman" {
		t.Errorf("kept = %d", len(kept))
	}
	if len(unver) != 0 {
		t.Errorf("unverifiable = %+v", unver)
	}

	// Word boundaries: "art" must not match "particle" but matches "Art".
	droppedArt := []query.Term{query.NewTerm(attr.FieldAuthor, lang.L("art"))}
	keptArt, _ := PostFilter(docs, droppedArt)
	if len(keptArt) != 1 || keptArt[0].Fields[attr.FieldAuthor] != "Art Smith" {
		t.Errorf("boundary check failed: %d kept", len(keptArt))
	}

	// Body terms are unverifiable from title/author answers.
	droppedBody := []query.Term{query.NewTerm(attr.FieldBodyOfText, lang.L("quarks"))}
	keptB, unverB := PostFilter(docs, droppedBody)
	if len(keptB) != 3 || len(unverB) != 1 {
		t.Errorf("body post-filter: kept %d unver %d", len(keptB), len(unverB))
	}

	// Any-field terms check all returned fields.
	droppedAny := []query.Term{query.NewTerm(attr.FieldAny, lang.L("gardening"))}
	keptAny, _ := PostFilter(docs, droppedAny)
	if len(keptAny) != 1 || keptAny[0].Title() != "Gardening weekly" {
		t.Errorf("any post-filter kept %d", len(keptAny))
	}

	// Truncation modifiers relax the boundary.
	droppedTrunc := []query.Term{query.NewTerm(attr.FieldTitle, lang.L("Garden"), attr.ModRightTruncation)}
	keptT, _ := PostFilter(docs, droppedTrunc)
	if len(keptT) != 1 {
		t.Errorf("truncated post-filter kept %d", len(keptT))
	}
}

func TestSortSpecPreserved(t *testing.T) {
	q := mkQuery(t, `(body-of-text "databases")`, "")
	q.SortBy = []query.SortKey{{Field: attr.FieldDateLastModified, Ascending: true}}
	q.MaxResults = 7
	q.MinScore = 0.25
	out, _ := ForSource(q, fullMeta())
	if len(out.SortBy) != 1 || out.MaxResults != 7 || out.MinScore != 0.25 {
		t.Errorf("result spec lost: %+v", out)
	}
}

func TestTranslateResolvesAttributeSet(t *testing.T) {
	q := mkQuery(t, `(creator "Ullman")`, "")
	q.DefaultAttrSet = "dc-1"
	out, rep := ForSource(q, fullMeta())
	if !rep.Clean() {
		t.Errorf("report = %+v", rep)
	}
	if out.Filter.String() != `(author "Ullman")` {
		t.Errorf("translated filter = %s", out.Filter)
	}
	if out.DefaultAttrSet != attr.SetBasic1 {
		t.Errorf("set = %s", out.DefaultAttrSet)
	}
}

// TestSynthesizedFilter: a ranking-only query at a filter-only source is
// downgraded to an OR filter so the source still contributes candidates.
func TestSynthesizedFilter(t *testing.T) {
	m := fullMeta()
	m.QueryParts = meta.PartsFilter
	q := mkQuery(t, "", `list((body-of-text "distributed") (body-of-text "databases"))`)
	out, rep := ForSource(q, m)
	if !rep.DroppedRanking || !rep.SynthesizedFilter {
		t.Fatalf("report = %+v", rep)
	}
	want := `((body-of-text "distributed") or (body-of-text "databases"))`
	if out.Filter == nil || out.Filter.String() != want {
		t.Errorf("synthesized filter = %v, want %s", out.Filter, want)
	}
	if out.Ranking != nil {
		t.Errorf("ranking survived: %s", out.Ranking)
	}
	// Weighted ranking terms lose their weights (illegal in filters).
	q2 := mkQuery(t, "", `list(((body-of-text "distributed") 0.7))`)
	out2, _ := ForSource(q2, m)
	if out2.Filter == nil || out2.Filter.String() != `(body-of-text "distributed")` {
		t.Errorf("weighted synthesis = %v", out2.Filter)
	}
}

// TestSynthesizedRanking: a filter-only query at a ranking-only source is
// recast as a ranking list, with the filter terms reported for
// post-filtering.
func TestSynthesizedRanking(t *testing.T) {
	m := fullMeta()
	m.QueryParts = meta.PartsRanking
	q := mkQuery(t, `((author "Ullman") and (body-of-text "databases"))`, "")
	out, rep := ForSource(q, m)
	if !rep.DroppedFilter || !rep.SynthesizedRanking {
		t.Fatalf("report = %+v", rep)
	}
	want := `list((author "Ullman") (body-of-text "databases"))`
	if out.Ranking == nil || out.Ranking.String() != want {
		t.Errorf("synthesized ranking = %v, want %s", out.Ranking, want)
	}
	// The original filter terms are flagged for verification.
	if len(rep.DroppedTerms) < 2 {
		t.Errorf("dropped terms = %+v", rep.DroppedTerms)
	}
	if rep.Clean() {
		t.Error("synthesis must not report clean")
	}
}

// TestSynthesisImpossible: when even the synthesized form dies (all terms
// unsupported), nothing is sent.
func TestSynthesisImpossible(t *testing.T) {
	m := fullMeta()
	m.QueryParts = meta.PartsFilter
	m.FieldsSupported = nil // only required fields
	q := mkQuery(t, "", `list((body-of-text "databases"))`)
	out, _ := ForSource(q, m)
	if out.Filter != nil || out.Ranking != nil {
		t.Errorf("something survived: %v / %v", out.Filter, out.Ranking)
	}
}

// TestStopWordPredictionEdges covers punctuation-only and non-text terms.
func TestStopWordPredictionEdges(t *testing.T) {
	m := fullMeta()
	// A source exporting no stop words predicts nothing dropped.
	m.StopWords = nil
	q := mkQuery(t, `(body-of-text "the")`, "")
	out, rep := ForSource(q, m)
	if out.Filter == nil || len(rep.DroppedTerms) != 0 {
		t.Errorf("no-stop-list source dropped terms: %+v", rep)
	}
	// Punctuation-only values are not stop-word eliminated.
	q2 := mkQuery(t, `(body-of-text "...")`, "")
	out2, _ := ForSource(q2, fullMeta())
	if out2.Filter == nil {
		t.Error("punctuation-only term dropped")
	}
	// Date terms are never stop-word checked.
	q3 := mkQuery(t, `(date-last-modified > "1996-01-01")`, "")
	m3 := fullMeta()
	m3.FieldsSupported = append(m3.FieldsSupported, meta.FieldSupport{Set: attr.SetBasic1, Field: attr.FieldDateLastModified})
	out3, _ := ForSource(q3, m3)
	if out3.Filter == nil {
		t.Error("date term dropped")
	}
}

// TestPostFilterEmptyDropList passes through untouched.
func TestPostFilterEmptyDropList(t *testing.T) {
	docs := []*result.Document{mkDoc("A", "X"), mkDoc("B", "Y")}
	kept, unver := PostFilter(docs, nil)
	if len(kept) != 2 || len(unver) != 0 {
		t.Errorf("kept %d unver %d", len(kept), len(unver))
	}
}

// TestDocMatchesLeftTruncation exercises the left-truncation boundary
// relaxation in verification mode.
func TestDocMatchesLeftTruncation(t *testing.T) {
	docs := []*result.Document{mkDoc("Hyperdatabases explained", "A")}
	dropped := []query.Term{query.NewTerm(attr.FieldTitle, lang.L("databases"), attr.ModLeftTruncation)}
	kept, _ := PostFilter(docs, dropped)
	if len(kept) != 1 {
		t.Errorf("left-truncation match failed")
	}
	// Without the modifier, "hyperdatabases" does not word-match.
	droppedExact := []query.Term{query.NewTerm(attr.FieldTitle, lang.L("databases"))}
	keptE, _ := PostFilter(docs, droppedExact)
	if len(keptE) != 0 {
		t.Errorf("exact match should fail on hyperdatabases")
	}
}
