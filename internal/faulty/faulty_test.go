package faulty

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"starts/internal/client"
	"starts/internal/engine"
	"starts/internal/index"
	"starts/internal/query"
	"starts/internal/server"
	"starts/internal/source"
)

func testConn(t *testing.T) client.Conn {
	t.Helper()
	eng, err := engine.New(engine.NewVectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := source.New("S1", eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&index.Document{
		Linkage: "http://s1/doc", Title: "Distributed databases",
		Body: "a document about distributed databases",
	}); err != nil {
		t.Fatal(err)
	}
	return client.NewLocalConn(s, nil)
}

// faultSequence records which of n calls fail.
func faultSequence(t *testing.T, cfg Config, n int) []bool {
	t.Helper()
	c := WrapConn(testConn(t), cfg)
	ctx := context.Background()
	out := make([]bool, n)
	for i := range out {
		_, err := c.Metadata(ctx)
		out[i] = err != nil
	}
	return out
}

func TestConnDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, ErrorRate: 0.3}
	a := faultSequence(t, cfg, 50)
	b := faultSequence(t, cfg, 50)
	failures := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if a[i] {
			failures++
		}
	}
	if failures == 0 || failures == 50 {
		t.Errorf("30%% error rate produced %d/50 failures", failures)
	}
	c := faultSequence(t, Config{Seed: 8, ErrorRate: 0.3}, 50)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault sequences")
	}
}

func TestConnInjectedErrorsAreMarked(t *testing.T) {
	c := WrapConn(testConn(t), Config{Seed: 1, ErrorRate: 1})
	_, err := c.Summary(context.Background())
	if !errors.Is(err, ErrInjected) {
		t.Errorf("injected error not marked: %v", err)
	}
}

func TestConnFlapCycle(t *testing.T) {
	c := WrapConn(testConn(t), Config{FlapUp: 3, FlapDown: 2})
	ctx := context.Background()
	want := []bool{false, false, false, true, true, false, false, false, true, true}
	for i, w := range want {
		_, err := c.Metadata(ctx)
		if (err != nil) != w {
			t.Errorf("call %d: failed=%v, want %v", i+1, err != nil, w)
		}
	}
	if c.Calls() != len(want) {
		t.Errorf("Calls = %d, want %d", c.Calls(), len(want))
	}
}

func TestConnScriptedOutage(t *testing.T) {
	c := WrapConn(testConn(t), Config{})
	ctx := context.Background()
	if _, err := c.Metadata(ctx); err != nil {
		t.Fatalf("healthy conn failed: %v", err)
	}
	c.SetFailing(true)
	if _, err := c.Metadata(ctx); !errors.Is(err, ErrInjected) {
		t.Errorf("scripted outage did not fail: %v", err)
	}
	c.SetFailing(false)
	if _, err := c.Metadata(ctx); err != nil {
		t.Errorf("recovered conn failed: %v", err)
	}
}

func TestConnHangRespectsContext(t *testing.T) {
	c := WrapConn(testConn(t), Config{HangRate: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Metadata(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("hang returned %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Error("hang outlived its context")
	}
}

func TestConnLatency(t *testing.T) {
	c := WrapConn(testConn(t), Config{Latency: 30 * time.Millisecond})
	start := time.Now()
	if _, err := c.Metadata(context.Background()); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("latency injection too fast: %v", elapsed)
	}
}

// middlewareServer serves one source behind the fault middleware.
func middlewareServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	eng, err := engine.New(engine.NewVectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, err := source.New("S1", eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&index.Document{
		Linkage: "http://s1/doc", Title: "Distributed databases",
		Body: "a document about distributed databases",
	}); err != nil {
		t.Fatal(err)
	}
	res := source.NewResource()
	if err := res.Add(s); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(nil)
	ts.Config.Handler = Middleware(cfg, server.New(res, ts.URL))
	t.Cleanup(ts.Close)
	return ts
}

func TestMiddlewarePassThrough(t *testing.T) {
	ts := middlewareServer(t, Config{})
	c := client.NewClient(ts.Client())
	md, err := c.Metadata(context.Background(), ts.URL+"/sources/S1/metadata")
	if err != nil || md.SourceID != "S1" {
		t.Fatalf("clean middleware broke the request: %v, %v", md, err)
	}
}

func TestMiddlewareInjects503(t *testing.T) {
	ts := middlewareServer(t, Config{ErrorRate: 1})
	c := client.NewClient(ts.Client())
	_, err := c.Metadata(context.Background(), ts.URL+"/sources/S1/metadata")
	var se *client.StatusError
	if !errors.As(err, &se) || se.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("injected failure = %v, want 503 StatusError", err)
	}
}

func TestMiddlewareGarbageBodyFailsParse(t *testing.T) {
	ts := middlewareServer(t, Config{GarbageRate: 1})
	c := client.NewClient(ts.Client())
	_, err := c.Metadata(context.Background(), ts.URL+"/sources/S1/metadata")
	if err == nil {
		t.Error("garbage body parsed successfully")
	}
	var se *client.StatusError
	if errors.As(err, &se) {
		t.Errorf("garbage body should fail at parse, not status: %v", err)
	}
}

func TestMiddlewareTruncatesBody(t *testing.T) {
	ts := middlewareServer(t, Config{TruncateRate: 1})
	resp, err := ts.Client().Get(ts.URL + "/sources/S1/metadata")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	truncated := string(buf[:n])
	// The SOIF framing announces attribute lengths; a half body must fail
	// to parse as metadata.
	c := client.NewClient(ts.Client())
	if _, err := c.Metadata(context.Background(), ts.URL+"/sources/S1/metadata"); err == nil {
		t.Error("truncated body parsed successfully")
	}
	if !strings.Contains(truncated, "@") {
		t.Errorf("truncation should keep a SOIF prefix, got %q", truncated)
	}
}

func TestMiddlewareFlap(t *testing.T) {
	ts := middlewareServer(t, Config{FlapUp: 2, FlapDown: 1})
	c := client.NewClient(ts.Client())
	ctx := context.Background()
	want := []bool{false, false, true, false, false, true}
	for i, w := range want {
		_, err := c.Metadata(ctx, ts.URL+"/sources/S1/metadata")
		if (err != nil) != w {
			t.Errorf("request %d: failed=%v, want %v", i+1, err != nil, w)
		}
	}
}

func TestConnQueryAndSampleGated(t *testing.T) {
	c := WrapConn(testConn(t), Config{Seed: 1, ErrorRate: 1})
	ctx := context.Background()
	q := query.New()
	q.Ranking, _ = query.ParseRanking(`list((body-of-text "databases"))`)
	if _, err := c.Query(ctx, q); !errors.Is(err, ErrInjected) {
		t.Errorf("Query not gated: %v", err)
	}
	if _, err := c.Sample(ctx); !errors.Is(err, ErrInjected) {
		t.Errorf("Sample not gated: %v", err)
	}
	if c.SourceID() != "S1" {
		t.Errorf("SourceID = %q", c.SourceID())
	}
}
