// Package faulty injects deterministic, seedable faults into STARTS
// connections and servers, so every failure mode of an unreliable
// Internet source — outright errors, added latency, hangs, truncated or
// garbage SOIF bodies, flapping availability — is reproducible in tests
// and soak runs. The paper's premise (§3) is that sources are autonomous
// and unreliable; this package makes that unreliability a first-class,
// scriptable test fixture.
//
// Two injection points cover both layers of the system: WrapConn
// decorates a client.Conn (faults seen by the metasearch core) and
// Middleware decorates an http.Handler (faults seen on the wire,
// including malformed bodies the SOIF parser must survive).
package faulty

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"starts/internal/client"
	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/source"
)

// ErrInjected marks every failure this package fabricates, so tests can
// tell injected faults from real bugs with errors.Is.
var ErrInjected = errors.New("injected failure")

// Config selects which faults to inject and how often. The zero value
// injects nothing. All rates are probabilities in [0, 1]; the random
// sequence is fully determined by Seed, so a given (Config, call
// sequence) always produces the same faults.
type Config struct {
	// Seed determines the fault sequence.
	Seed int64
	// ErrorRate is the probability a call fails outright (a Conn error,
	// or a 503 from the middleware).
	ErrorRate float64
	// HangRate is the probability a call blocks until its context ends.
	HangRate float64
	// TruncateRate is the probability a response body is cut short
	// mid-object (middleware; the Conn wrapper surfaces it as an error,
	// as its caller would after a failed parse).
	TruncateRate float64
	// GarbageRate is like TruncateRate but replaces the body with bytes
	// that are not SOIF at all.
	GarbageRate float64
	// Latency is added to every call; Jitter adds a uniform random extra
	// in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// FlapUp/FlapDown, when both positive, cycle availability by call
	// count: FlapUp healthy calls, then FlapDown failing calls, repeat.
	FlapUp   int
	FlapDown int
}

// fault is one call's injected behavior.
type fault int

const (
	faultNone fault = iota
	faultError
	faultHang
	faultTruncate
	faultGarbage
)

// injector draws the deterministic fault sequence. Each call consumes a
// fixed number of random draws regardless of outcome, so fault decisions
// stay aligned across runs even when earlier faults change control flow.
type injector struct {
	cfg Config

	mu     sync.Mutex
	rnd    *rand.Rand
	calls  int
	down   bool // manual override: SetFailing
	forced bool
}

func newInjector(cfg Config) *injector {
	return &injector{cfg: cfg, rnd: rand.New(rand.NewSource(cfg.Seed))}
}

// next decides one call's fate.
func (in *injector) next() (fault, time.Duration, int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.calls++
	call := in.calls
	uErr, uHang := in.rnd.Float64(), in.rnd.Float64()
	uTrunc, uGarb := in.rnd.Float64(), in.rnd.Float64()
	uLat := in.rnd.Float64()

	lat := in.cfg.Latency
	if in.cfg.Jitter > 0 {
		lat += time.Duration(uLat * float64(in.cfg.Jitter))
	}
	if in.forced {
		if in.down {
			return faultError, lat, call
		}
		return faultNone, lat, call
	}
	if in.cfg.FlapUp > 0 && in.cfg.FlapDown > 0 {
		if phase := (call - 1) % (in.cfg.FlapUp + in.cfg.FlapDown); phase >= in.cfg.FlapUp {
			return faultError, lat, call
		}
	}
	switch {
	case uHang < in.cfg.HangRate:
		return faultHang, lat, call
	case uErr < in.cfg.ErrorRate:
		return faultError, lat, call
	case uTrunc < in.cfg.TruncateRate:
		return faultTruncate, lat, call
	case uGarb < in.cfg.GarbageRate:
		return faultGarbage, lat, call
	}
	return faultNone, lat, call
}

// setFailing forces the injector down (or back up), overriding the
// probabilistic and flap-cycle behavior — a scripted outage.
func (in *injector) setFailing(down bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.forced = true
	in.down = down
}

// setLatency rewrites the base added latency for all subsequent calls —
// a scripted slowdown (or recovery) mid-run.
func (in *injector) setLatency(d time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.cfg.Latency = d
}

// calls reports how many calls the injector has decided.
func (in *injector) count() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls
}

// sleep waits d or until ctx ends, whichever is first.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Conn wraps a client.Conn with fault injection.
type Conn struct {
	inner client.Conn
	in    *injector
}

var _ client.Conn = (*Conn)(nil)

// WrapConn returns a fault-injecting wrapper around inner.
func WrapConn(inner client.Conn, cfg Config) *Conn {
	return &Conn{inner: inner, in: newInjector(cfg)}
}

// SetFailing scripts an outage: true fails every call until SetFailing
// (false) restores service. It overrides ErrorRate and the flap cycle.
func (c *Conn) SetFailing(down bool) { c.in.setFailing(down) }

// SetLatency changes the base latency added to every subsequent call,
// overriding the construction-time Config.Latency — a scripted slowdown
// for overload drills; pass the old value back to script recovery.
func (c *Conn) SetLatency(d time.Duration) { c.in.setLatency(d) }

// Calls reports how many calls reached the wrapper.
func (c *Conn) Calls() int { return c.in.count() }

// gate applies one call's injected latency and fault; a nil return means
// the call may proceed to the real Conn.
func (c *Conn) gate(ctx context.Context, what string) error {
	f, lat, call := c.in.next()
	if err := sleep(ctx, lat); err != nil {
		return err
	}
	switch f {
	case faultHang:
		<-ctx.Done()
		return ctx.Err()
	case faultError:
		return fmt.Errorf("faulty: %s of %s, call %d: %w", what, c.inner.SourceID(), call, ErrInjected)
	case faultTruncate:
		return fmt.Errorf("faulty: %s of %s, call %d: truncated SOIF body: %w", what, c.inner.SourceID(), call, ErrInjected)
	case faultGarbage:
		return fmt.Errorf("faulty: %s of %s, call %d: garbage SOIF body: %w", what, c.inner.SourceID(), call, ErrInjected)
	}
	return nil
}

// SourceID implements client.Conn.
func (c *Conn) SourceID() string { return c.inner.SourceID() }

// Metadata implements client.Conn.
func (c *Conn) Metadata(ctx context.Context) (*meta.SourceMeta, error) {
	if err := c.gate(ctx, "metadata"); err != nil {
		return nil, err
	}
	return c.inner.Metadata(ctx)
}

// Summary implements client.Conn.
func (c *Conn) Summary(ctx context.Context) (*meta.ContentSummary, error) {
	if err := c.gate(ctx, "summary"); err != nil {
		return nil, err
	}
	return c.inner.Summary(ctx)
}

// Sample implements client.Conn.
func (c *Conn) Sample(ctx context.Context) ([]*source.SampleEntry, error) {
	if err := c.gate(ctx, "sample"); err != nil {
		return nil, err
	}
	return c.inner.Sample(ctx)
}

// Query implements client.Conn.
func (c *Conn) Query(ctx context.Context, q *query.Query) (*result.Results, error) {
	if err := c.gate(ctx, "query"); err != nil {
		return nil, err
	}
	return c.inner.Query(ctx, q)
}

// garbage is what a source that has lost its mind serves: bytes that are
// not SOIF framing at all.
var garbage = []byte("@GARBAGE{ <<<this is not SOIF>>> \x00\xff\xfe lengths lie here }")

// Middleware wraps an HTTP handler (typically a server.Server) with
// fault injection: injected errors become 503s, truncation cuts the
// response mid-body, garbage replaces it wholesale, and hangs hold the
// request until the client gives up.
func Middleware(cfg Config, next http.Handler) http.Handler {
	in := newInjector(cfg)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, lat, call := in.next()
		if err := sleep(r.Context(), lat); err != nil {
			return
		}
		switch f {
		case faultHang:
			<-r.Context().Done()
		case faultError:
			http.Error(w, fmt.Sprintf("faulty: injected failure (call %d)", call), http.StatusServiceUnavailable)
		case faultGarbage:
			w.Header().Set("Content-Type", "application/x-soif")
			_, _ = w.Write(garbage)
		case faultTruncate:
			rec := &recorder{header: http.Header{}, status: http.StatusOK}
			next.ServeHTTP(rec, r)
			for k, v := range rec.header {
				w.Header()[k] = v
			}
			w.Header().Del("Content-Length")
			w.WriteHeader(rec.status)
			_, _ = w.Write(rec.body[:len(rec.body)/2])
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// recorder captures a response so the middleware can mangle it.
type recorder struct {
	header http.Header
	status int
	body   []byte
}

func (r *recorder) Header() http.Header { return r.header }

func (r *recorder) WriteHeader(status int) { r.status = status }

func (r *recorder) Write(p []byte) (int, error) {
	r.body = append(r.body, p...)
	return len(p), nil
}
