package faulty

import (
	"context"

	"starts/internal/client"
	"starts/internal/query"
	"starts/internal/result"
)

// BatchConn wraps a batch-capable client.Conn with fault injection. The
// injector gates once per wire call, not per item — an injected fault
// fails the whole batch, which is exactly what a broken wire does to a
// multiplexed request — so fault sequences stay aligned with the number
// of round trips actually attempted.
type BatchConn struct {
	*Conn
	binner client.BatchConn
}

var _ client.BatchConn = (*BatchConn)(nil)

// WrapBatch returns a fault-injecting wrapper around a batch-capable
// inner.
func WrapBatch(inner client.BatchConn, cfg Config) *BatchConn {
	return &BatchConn{Conn: WrapConn(inner, cfg), binner: inner}
}

// QueryBatch implements client.BatchConn.
func (c *BatchConn) QueryBatch(ctx context.Context, qs []*query.Query) ([]*result.Results, []error) {
	if err := c.gate(ctx, "query-batch"); err != nil {
		errs := make([]error, len(qs))
		for i := range errs {
			errs[i] = err
		}
		return make([]*result.Results, len(qs)), errs
	}
	return c.binner.QueryBatch(ctx, qs)
}
