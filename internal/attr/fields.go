// Package attr defines the STARTS attribute sets: the "Basic-1" document
// fields and term modifiers of Section 4.1.1 of the proposal, and the
// "MBasic-1" source-metadata attributes of Section 4.3.1. The tables in
// this package mirror the paper's tables entry for entry, including the
// Required and New flags, and are what the conformance tests check against.
package attr

import "strings"

// Field names the portion of a document a query term applies to. Fields
// correspond to the Z39.50/GILS "use attributes". Field names are
// case-insensitive; the canonical spelling is the one in the paper.
type Field string

// The Basic-1 field set (Section 4.1.1).
const (
	// FieldTitle is the document title. Required.
	FieldTitle Field = "title"
	// FieldAuthor is the document author list.
	FieldAuthor Field = "author"
	// FieldBodyOfText is the main text of the document.
	FieldBodyOfText Field = "body-of-text"
	// FieldDocumentText passes whole documents in queries, for relevance
	// feedback. New in STARTS.
	FieldDocumentText Field = "document-text"
	// FieldDateLastModified is the document modification timestamp.
	// Required.
	FieldDateLastModified Field = "date-last-modified"
	// FieldAny matches any portion of the document; it is the default when
	// a term carries no field. Required.
	FieldAny Field = "any"
	// FieldLinkage is the document URL, always returned with results so
	// documents can be retrieved outside the protocol. Required.
	FieldLinkage Field = "linkage"
	// FieldLinkageType is the document MIME type.
	FieldLinkageType Field = "linkage-type"
	// FieldCrossReferenceLinkage lists the URLs mentioned in the document.
	FieldCrossReferenceLinkage Field = "cross-reference-linkage"
	// FieldLanguages lists the languages the document is written in.
	FieldLanguages Field = "languages"
	// FieldFreeFormText passes queries in a source's native query language,
	// bypassing the STARTS query language. New in STARTS.
	FieldFreeFormText Field = "free-form-text"
)

// FieldInfo describes one row of the paper's Basic-1 field table.
type FieldInfo struct {
	Field    Field
	Required bool // sources must recognize the field
	New      bool // added by STARTS, not in the GILS attribute set
}

// Basic1Fields returns the Basic-1 field table in the paper's order.
func Basic1Fields() []FieldInfo {
	return []FieldInfo{
		{FieldTitle, true, false},
		{FieldAuthor, false, false},
		{FieldBodyOfText, false, false},
		{FieldDocumentText, false, true},
		{FieldDateLastModified, true, false},
		{FieldAny, true, false},
		{FieldLinkage, true, false},
		{FieldLinkageType, false, false},
		{FieldCrossReferenceLinkage, false, false},
		{FieldLanguages, false, false},
		{FieldFreeFormText, false, true},
	}
}

// Normalize lower-cases a field name and maps the paper's long spelling
// "date/time-last-modified" onto the canonical constant.
func Normalize(f Field) Field {
	s := strings.ToLower(string(f))
	if s == "date/time-last-modified" {
		return FieldDateLastModified
	}
	return Field(s)
}

// LookupField resolves a field name to its Basic-1 table entry.
func LookupField(name string) (FieldInfo, bool) {
	n := Normalize(Field(name))
	for _, fi := range Basic1Fields() {
		if fi.Field == n {
			return fi, true
		}
	}
	return FieldInfo{}, false
}

// IsRequired reports whether every STARTS source must recognize f.
func (f Field) IsRequired() bool {
	fi, ok := LookupField(string(f))
	return ok && fi.Required
}

// String returns the canonical field spelling.
func (f Field) String() string { return string(Normalize(f)) }

// RequiredFields returns the fields every source must recognize.
func RequiredFields() []Field {
	var req []Field
	for _, fi := range Basic1Fields() {
		if fi.Required {
			req = append(req, fi.Field)
		}
	}
	return req
}
