package attr

import "strings"

// Modifier specifies what values a query term represents: a comparison
// relation, stemming, phonetic (soundex) matching, thesaurus expansion,
// truncation or case sensitivity. Modifiers correspond to the Z39.50
// "relation attributes". All Basic-1 modifiers are optional for sources.
type Modifier string

// The Basic-1 modifier set (Section 4.1.1).
const (
	ModLT Modifier = "<"
	ModLE Modifier = "<="
	ModEQ Modifier = "="
	ModGE Modifier = ">="
	ModGT Modifier = ">"
	ModNE Modifier = "!="
	// ModPhonetic matches terms by soundex rather than spelling.
	ModPhonetic Modifier = "phonetic"
	// ModStem matches any word sharing the term's stem.
	ModStem Modifier = "stem"
	// ModThesaurus expands the term with its synonyms. New in STARTS.
	ModThesaurus Modifier = "thesaurus"
	// ModRightTruncation matches words with the term as a prefix.
	ModRightTruncation Modifier = "right-truncation"
	// ModLeftTruncation matches words with the term as a suffix.
	ModLeftTruncation Modifier = "left-truncation"
	// ModCaseSensitive disables the default case-insensitive matching.
	// New in STARTS.
	ModCaseSensitive Modifier = "case-sensitive"
)

// ModifierInfo describes one row of the paper's Basic-1 modifier table.
type ModifierInfo struct {
	Modifier Modifier
	Default  string // behaviour when the modifier is absent
	New      bool   // added by STARTS, not in the Z39.50 relation set
}

// Basic1Modifiers returns the Basic-1 modifier table in the paper's order.
// The six comparison relations share a row in the paper; here each appears
// individually with the shared default.
func Basic1Modifiers() []ModifierInfo {
	mods := []ModifierInfo{}
	for _, m := range []Modifier{ModLT, ModLE, ModEQ, ModGE, ModGT, ModNE} {
		mods = append(mods, ModifierInfo{m, "=", false})
	}
	return append(mods,
		ModifierInfo{ModPhonetic, "no soundex", false},
		ModifierInfo{ModStem, "no stemming", false},
		ModifierInfo{ModThesaurus, "no thesaurus expansion", true},
		ModifierInfo{ModRightTruncation, "no right truncation", false},
		ModifierInfo{ModLeftTruncation, "no left truncation", false},
		ModifierInfo{ModCaseSensitive, "case insensitive", true},
	)
}

// LookupModifier resolves a modifier name to its Basic-1 table entry.
func LookupModifier(name string) (ModifierInfo, bool) {
	n := Modifier(strings.ToLower(name))
	for _, mi := range Basic1Modifiers() {
		if mi.Modifier == n {
			return mi, true
		}
	}
	return ModifierInfo{}, false
}

// IsComparison reports whether m is one of the six relational modifiers,
// which only make sense on ordered fields such as date-last-modified.
func (m Modifier) IsComparison() bool {
	switch m {
	case ModLT, ModLE, ModEQ, ModGE, ModGT, ModNE:
		return true
	}
	return false
}

// String returns the canonical modifier spelling.
func (m Modifier) String() string { return strings.ToLower(string(m)) }
