package attr

import "testing"

// TestBasic1FieldsTable is experiment E1: the Basic-1 field table of
// Section 4.1.1, row for row (name, required flag, new flag).
func TestBasic1FieldsTable(t *testing.T) {
	want := []struct {
		field    Field
		required bool
		isNew    bool
	}{
		{"title", true, false},
		{"author", false, false},
		{"body-of-text", false, false},
		{"document-text", false, true},
		{"date-last-modified", true, false},
		{"any", true, false},
		{"linkage", true, false},
		{"linkage-type", false, false},
		{"cross-reference-linkage", false, false},
		{"languages", false, false},
		{"free-form-text", false, true},
	}
	got := Basic1Fields()
	if len(got) != len(want) {
		t.Fatalf("Basic1Fields has %d rows, paper table has %d", len(got), len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Field != w.field || g.Required != w.required || g.New != w.isNew {
			t.Errorf("row %d = {%s req=%v new=%v}, want {%s req=%v new=%v}",
				i, g.Field, g.Required, g.New, w.field, w.required, w.isNew)
		}
	}
}

// TestBasic1ModifiersTable is experiment E2: the Basic-1 modifier table of
// Section 4.1.1. Every modifier is optional; the New column must match.
func TestBasic1ModifiersTable(t *testing.T) {
	newOnes := map[Modifier]bool{ModThesaurus: true, ModCaseSensitive: true}
	seen := map[Modifier]bool{}
	for _, mi := range Basic1Modifiers() {
		seen[mi.Modifier] = true
		if mi.New != newOnes[mi.Modifier] {
			t.Errorf("%s: New = %v, paper says %v", mi.Modifier, mi.New, newOnes[mi.Modifier])
		}
	}
	all := []Modifier{ModLT, ModLE, ModEQ, ModGE, ModGT, ModNE,
		ModPhonetic, ModStem, ModThesaurus, ModRightTruncation, ModLeftTruncation, ModCaseSensitive}
	for _, m := range all {
		if !seen[m] {
			t.Errorf("modifier %s missing from table", m)
		}
	}
	if len(seen) != len(all) {
		t.Errorf("table has %d distinct modifiers, want %d", len(seen), len(all))
	}
}

// TestMBasic1Table is experiment E3: the MBasic-1 metadata attribute table
// of Section 4.3.1.
func TestMBasic1Table(t *testing.T) {
	required := map[MetaAttr]bool{
		MetaFieldsSupported: true, MetaModifiersSupported: true,
		MetaFieldModifierCombinations: true, MetaScoreRange: true,
		MetaRankingAlgorithmID: true, MetaSampleDatabaseResults: true,
		MetaStopWordList: true, MetaTurnOffStopWords: true,
		MetaLinkage: true, MetaContentSummaryLinkage: true,
	}
	isNew := map[MetaAttr]bool{
		MetaFieldsSupported: true, MetaModifiersSupported: true,
		MetaFieldModifierCombinations: true, MetaQueryPartsSupported: true,
		MetaScoreRange: true, MetaRankingAlgorithmID: true,
		MetaTokenizerIDList: true, MetaSampleDatabaseResults: true,
		MetaStopWordList: true, MetaTurnOffStopWords: true,
		MetaContentSummaryLinkage: true,
	}
	rows := MBasic1Attrs()
	if len(rows) != 19 {
		t.Fatalf("MBasic-1 table has %d rows, paper has 19", len(rows))
	}
	for _, mi := range rows {
		if mi.Required != required[mi.Attr] {
			t.Errorf("%s: Required = %v, paper says %v", mi.Attr, mi.Required, required[mi.Attr])
		}
		if mi.New != isNew[mi.Attr] {
			t.Errorf("%s: New = %v, paper says %v", mi.Attr, mi.New, isNew[mi.Attr])
		}
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Title", "title"},
		{"Date/time-last-modified", "date-last-modified"},
		{"BODY-OF-TEXT", "body-of-text"},
		{"Any", "any"},
	}
	for _, tc := range cases {
		if got := Normalize(Field(tc.in)); string(got) != tc.want {
			t.Errorf("Normalize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestLookupField(t *testing.T) {
	fi, ok := LookupField("Date/time-last-modified")
	if !ok || fi.Field != FieldDateLastModified || !fi.Required {
		t.Errorf("LookupField(Date/time-last-modified) = %+v, %v", fi, ok)
	}
	if _, ok := LookupField("no-such-field"); ok {
		t.Error("LookupField accepted unknown field")
	}
	if !FieldTitle.IsRequired() {
		t.Error("title should be required")
	}
	if FieldAuthor.IsRequired() {
		t.Error("author should be optional")
	}
}

func TestRequiredFields(t *testing.T) {
	want := []Field{FieldTitle, FieldDateLastModified, FieldAny, FieldLinkage}
	got := RequiredFields()
	if len(got) != len(want) {
		t.Fatalf("RequiredFields = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("RequiredFields[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLookupModifier(t *testing.T) {
	mi, ok := LookupModifier("STEM")
	if !ok || mi.Modifier != ModStem || mi.Default != "no stemming" {
		t.Errorf("LookupModifier(STEM) = %+v, %v", mi, ok)
	}
	if _, ok := LookupModifier(">="); !ok {
		t.Error("LookupModifier(>=) failed")
	}
	if _, ok := LookupModifier("fuzzy"); ok {
		t.Error("LookupModifier accepted unknown modifier")
	}
}

func TestIsComparison(t *testing.T) {
	for _, m := range []Modifier{ModLT, ModLE, ModEQ, ModGE, ModGT, ModNE} {
		if !m.IsComparison() {
			t.Errorf("%s should be a comparison", m)
		}
	}
	for _, m := range []Modifier{ModStem, ModPhonetic, ModCaseSensitive} {
		if m.IsComparison() {
			t.Errorf("%s should not be a comparison", m)
		}
	}
}

func TestLookupMetaAttr(t *testing.T) {
	// The paper's Example 10 uses SOIF spellings like "source-name" for the
	// table's SourceName.
	cases := []struct {
		in   string
		want MetaAttr
	}{
		{"source-name", MetaSourceName},
		{"SourceName", MetaSourceName},
		{"content-summary-linkage", MetaContentSummaryLinkage},
		{"ScoreRange", MetaScoreRange},
		{"date-changed", MetaDateChanged},
	}
	for _, tc := range cases {
		mi, ok := LookupMetaAttr(tc.in)
		if !ok || mi.Attr != tc.want {
			t.Errorf("LookupMetaAttr(%q) = %v, %v; want %v", tc.in, mi.Attr, ok, tc.want)
		}
	}
	if _, ok := LookupMetaAttr("unknown-attr"); ok {
		t.Error("LookupMetaAttr accepted unknown attribute")
	}
}

func BenchmarkFieldLookup(b *testing.B) {
	names := []string{"title", "Author", "body-of-text", "Date/time-last-modified", "any"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := LookupField(names[i%len(names)]); !ok {
			b.Fatal("lookup failed")
		}
	}
}

func BenchmarkModifierApply(b *testing.B) {
	names := []string{"stem", "phonetic", ">=", "case-sensitive"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := LookupModifier(names[i%len(names)]); !ok {
			b.Fatal("lookup failed")
		}
	}
}

func TestResolveFieldDC1(t *testing.T) {
	cases := []struct {
		set  SetName
		in   string
		want Field
	}{
		{SetDC1, "creator", FieldAuthor},
		{SetDC1, "Creator", FieldAuthor},
		{SetDC1, "title", FieldTitle},
		{SetDC1, "description", FieldBodyOfText},
		{SetDC1, "date", FieldDateLastModified},
		{SetDC1, "identifier", FieldLinkage},
		{SetDC1, "unknown-dc-field", "unknown-dc-field"},
		{SetBasic1, "author", FieldAuthor},
		{"no-such-set", "author", FieldAuthor},
	}
	for _, tc := range cases {
		if got := ResolveField(tc.set, Field(tc.in)); got != tc.want {
			t.Errorf("ResolveField(%s, %s) = %s, want %s", tc.set, tc.in, got, tc.want)
		}
	}
	if len(DC1Fields()) != 8 {
		t.Errorf("DC1Fields = %v", DC1Fields())
	}
}
