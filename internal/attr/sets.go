package attr

import "strings"

// STARTS queries may use attribute sets other than Basic-1: the SQuery
// DefaultAttributeSet names the set unqualified fields belong to, and the
// specification describes "how to use other attribute sets for sources
// covering different domains". This implementation registers one
// additional document set, "dc-1", a Dublin-Core-flavored vocabulary (the
// paper's §5 notes the Dublin Core shares Basic-1's intent), whose fields
// map onto the Basic-1 fields engines actually index.

// SetDC1 is the Dublin-Core-flavored document attribute set.
const SetDC1 SetName = "dc-1"

// dc1Fields maps dc-1 field names to their Basic-1 equivalents.
var dc1Fields = map[string]Field{
	"title":       FieldTitle,
	"creator":     FieldAuthor,
	"description": FieldBodyOfText,
	"date":        FieldDateLastModified,
	"identifier":  FieldLinkage,
	"format":      FieldLinkageType,
	"language":    FieldLanguages,
	"relation":    FieldCrossReferenceLinkage,
}

// ResolveField interprets a field name within an attribute set, returning
// the Basic-1 field engines evaluate. Unknown sets and unknown names pass
// through Normalize unchanged (the engine will then treat unrecognized
// fields as unsupported), so resolution never fails hard.
func ResolveField(set SetName, f Field) Field {
	switch SetName(strings.ToLower(string(set))) {
	case SetDC1:
		if mapped, ok := dc1Fields[strings.ToLower(string(f))]; ok {
			return mapped
		}
	}
	return Normalize(f)
}

// DC1Fields lists the dc-1 field names, for documentation and tests.
func DC1Fields() []string {
	names := make([]string, 0, len(dc1Fields))
	for n := range dc1Fields {
		names = append(names, n)
	}
	return names
}
