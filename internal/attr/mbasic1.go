package attr

import "strings"

// MetaAttr names one of the MBasic-1 source-metadata attributes
// (Section 4.3.1), which every source exports so that metasearchers can
// rewrite queries for it and interpret its results.
type MetaAttr string

// The MBasic-1 metadata attribute set, borrowing from the Z39.50-1995
// Exp-1 and GILS attribute sets.
const (
	MetaFieldsSupported           MetaAttr = "FieldsSupported"
	MetaModifiersSupported        MetaAttr = "ModifiersSupported"
	MetaFieldModifierCombinations MetaAttr = "FieldModifierCombinations"
	MetaQueryPartsSupported       MetaAttr = "QueryPartsSupported"
	MetaScoreRange                MetaAttr = "ScoreRange"
	MetaRankingAlgorithmID        MetaAttr = "RankingAlgorithmID"
	MetaTokenizerIDList           MetaAttr = "TokenizerIDList"
	MetaSampleDatabaseResults     MetaAttr = "SampleDatabaseResults"
	MetaStopWordList              MetaAttr = "StopWordList"
	MetaTurnOffStopWords          MetaAttr = "TurnOffStopWords"
	MetaSourceLanguages           MetaAttr = "SourceLanguages"
	MetaSourceName                MetaAttr = "SourceName"
	MetaLinkage                   MetaAttr = "Linkage"
	MetaContentSummaryLinkage     MetaAttr = "ContentSummaryLinkage"
	MetaDateChanged               MetaAttr = "DateChanged"
	MetaDateExpires               MetaAttr = "DateExpires"
	MetaAbstract                  MetaAttr = "Abstract"
	MetaAccessConstraints         MetaAttr = "AccessConstraints"
	MetaContact                   MetaAttr = "Contact"
)

// MetaAttrInfo describes one row of the paper's MBasic-1 table.
type MetaAttrInfo struct {
	Attr     MetaAttr
	Required bool // sources must export a value
	New      bool // added by STARTS, not in Exp-1/GILS
}

// MBasic1Attrs returns the MBasic-1 table in the paper's order.
func MBasic1Attrs() []MetaAttrInfo {
	return []MetaAttrInfo{
		{MetaFieldsSupported, true, true},
		{MetaModifiersSupported, true, true},
		{MetaFieldModifierCombinations, true, true},
		{MetaQueryPartsSupported, false, true},
		{MetaScoreRange, true, true},
		{MetaRankingAlgorithmID, true, true},
		{MetaTokenizerIDList, false, true},
		{MetaSampleDatabaseResults, true, true},
		{MetaStopWordList, true, true},
		{MetaTurnOffStopWords, true, true},
		{MetaSourceLanguages, false, false},
		{MetaSourceName, false, false},
		{MetaLinkage, true, false},
		{MetaContentSummaryLinkage, true, true},
		{MetaDateChanged, false, false},
		{MetaDateExpires, false, false},
		{MetaAbstract, false, false},
		{MetaAccessConstraints, false, false},
		{MetaContact, false, false},
	}
}

// LookupMetaAttr resolves a metadata attribute name case-insensitively,
// accepting both the table spelling (SourceName) and the SOIF example
// spelling (source-name).
func LookupMetaAttr(name string) (MetaAttrInfo, bool) {
	fold := foldMetaName(name)
	for _, mi := range MBasic1Attrs() {
		if foldMetaName(string(mi.Attr)) == fold {
			return mi, true
		}
	}
	return MetaAttrInfo{}, false
}

// foldMetaName lower-cases and strips the separators that differ between
// the paper's table spelling and its SOIF examples.
func foldMetaName(s string) string {
	s = strings.ToLower(s)
	s = strings.ReplaceAll(s, "-", "")
	s = strings.ReplaceAll(s, "_", "")
	return s
}

// SetName identifies an attribute set in queries and metadata.
type SetName string

// The attribute sets defined or referenced by STARTS.
const (
	SetBasic1  SetName = "basic-1"  // document fields and modifiers
	SetMBasic1 SetName = "mbasic-1" // source metadata
)
