// Package topk provides bounded top-k selection: a fixed-capacity heap
// that keeps the k best items of a stream in O(n log k) instead of
// sorting everything in O(n log n). The engine's result sorting, the
// index's ranked traversal and the metasearcher's rank fusion all cap
// their output at the query's max-docs, so none of them needs a total
// order over more than k items.
package topk

import "sort"

// Heap keeps the k best items seen so far under a strict ordering:
// before(a, b) reports that a outranks b. The worst kept item sits at
// the root, so a full heap rejects a non-qualifying offer after one
// comparison. before must be a strict weak ordering; for deterministic
// output it should be total (break ties on a unique key).
type Heap[T any] struct {
	k      int
	before func(a, b T) bool
	items  []T
}

// New returns a heap selecting the k best items by before.
func New[T any](k int, before func(a, b T) bool) *Heap[T] {
	if k < 0 {
		k = 0
	}
	c := k
	if c > 1024 {
		c = 1024 // cap pre-allocation for huge k
	}
	return &Heap[T]{k: k, before: before, items: make([]T, 0, c)}
}

// Len returns the number of items currently kept.
func (h *Heap[T]) Len() int { return len(h.items) }

// Full reports whether k items are kept, i.e. whether Worst is valid
// and further offers must outrank it.
func (h *Heap[T]) Full() bool { return len(h.items) >= h.k }

// Worst returns the k-th best item kept; only valid when Full.
func (h *Heap[T]) Worst() T { return h.items[0] }

// Push offers an item; it is kept only while it is among the k best.
func (h *Heap[T]) Push(x T) {
	if h.k == 0 {
		return
	}
	if len(h.items) < h.k {
		h.items = append(h.items, x)
		i := len(h.items) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !h.before(h.items[p], h.items[i]) {
				break
			}
			h.items[i], h.items[p] = h.items[p], h.items[i]
			i = p
		}
		return
	}
	if !h.before(x, h.items[0]) {
		return
	}
	h.items[0] = x
	h.siftDown()
}

// siftDown restores the worst-at-root invariant after a root
// replacement: the root sinks below any child it outranks.
func (h *Heap[T]) siftDown() {
	n := len(h.items)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < n && h.before(h.items[w], h.items[l]) {
			w = l
		}
		if r < n && h.before(h.items[w], h.items[r]) {
			w = r
		}
		if w == i {
			return
		}
		h.items[i], h.items[w] = h.items[w], h.items[i]
		i = w
	}
}

// Sorted drains the heap and returns the kept items best-first. The
// heap is empty afterwards.
func (h *Heap[T]) Sorted() []T {
	out := h.items
	h.items = nil
	sort.Slice(out, func(i, j int) bool { return h.before(out[i], out[j]) })
	return out
}
