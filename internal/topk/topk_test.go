package topk

import (
	"math/rand"
	"sort"
	"testing"
)

type item struct {
	score float64
	id    int
}

func itemBefore(a, b item) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.id < b.id
}

// TestSelectionMatchesFullSort pushes randomized streams (fixed seed)
// and checks the heap selects exactly the prefix a full sort produces,
// across k values below, at and above the stream length.
func TestSelectionMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		items := make([]item, n)
		for i := range items {
			// Coarse scores force plenty of ties, exercising the id tiebreak.
			items[i] = item{score: float64(rng.Intn(10)), id: i}
		}
		for _, k := range []int{0, 1, 5, n / 2, n, n + 10} {
			h := New(k, itemBefore)
			for _, it := range items {
				h.Push(it)
			}
			got := h.Sorted()

			want := append([]item(nil), items...)
			sort.Slice(want, func(i, j int) bool { return itemBefore(want[i], want[j]) })
			if k < len(want) {
				want = want[:k]
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: got %d items, want %d", trial, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d k=%d: item %d = %+v, want %+v", trial, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestWorstTracksKthBest(t *testing.T) {
	h := New(3, itemBefore)
	for _, s := range []float64{5, 1, 9, 7, 3} {
		h.Push(item{score: s})
	}
	if !h.Full() {
		t.Fatal("heap should be full after 5 pushes with k=3")
	}
	if w := h.Worst(); w.score != 5 {
		t.Errorf("worst kept score = %v, want 5 (kept should be {9,7,5})", w.score)
	}
}

func TestZeroK(t *testing.T) {
	h := New[int](0, func(a, b int) bool { return a < b })
	h.Push(1)
	if h.Len() != 0 || len(h.Sorted()) != 0 {
		t.Error("k=0 heap kept items")
	}
}
