package soif

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeBasic(t *testing.T) {
	o := New("SQuery")
	o.Add("Version", "STARTS 1.0")
	o.Add("MaxNumberDocuments", "10")
	got := o.String()
	want := "@SQuery{\nVersion{10}: STARTS 1.0\nMaxNumberDocuments{2}: 10\n}\n\n"
	if got != want {
		t.Errorf("Encode:\n got %q\nwant %q", got, want)
	}
}

func TestRoundTripSimple(t *testing.T) {
	o := New("SMetaAttributes")
	o.Add("SourceID", "Source-1")
	o.Add("ScoreRange", "0.0 1.0")
	o.Add("Abstract", "multi\nline\nvalue with } and { and @")
	o.Add("Abstract", "repeated attribute")
	data, err := Marshal(o)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(o, back) {
		t.Errorf("round trip mismatch:\n got %#v\nwant %#v", back, o)
	}
}

func TestGetSetAll(t *testing.T) {
	o := New("T")
	o.Add("Field", "title")
	o.Add("Field", "author")
	o.Add("NumDocs", "892")

	if v, ok := o.Get("field"); !ok || v != "title" {
		t.Errorf("Get(field) = %q, %v; want title, true", v, ok)
	}
	if got := o.All("FIELD"); !reflect.DeepEqual(got, []string{"title", "author"}) {
		t.Errorf("All(FIELD) = %v", got)
	}
	if o.GetDefault("missing", "dflt") != "dflt" {
		t.Error("GetDefault for missing attribute")
	}
	o.Set("NumDocs", "900")
	if v, _ := o.Get("NumDocs"); v != "900" {
		t.Errorf("after Set, NumDocs = %q", v)
	}
	o.Set("Brand", "new")
	if v, _ := o.Get("Brand"); v != "new" {
		t.Errorf("Set on missing attribute: %q", v)
	}
	if o.Len() != 4 {
		t.Errorf("Len = %d, want 4", o.Len())
	}
	if o.Has("missing") {
		t.Error("Has(missing) = true")
	}
}

func TestDecodePaperStyle(t *testing.T) {
	// Layout as printed in the SIGMOD paper: values may themselves contain
	// newlines, accounted for by the byte length.
	in := "@SQResults{\n" +
		"Version{10}: STARTS 1.0\n" +
		"Sources{8}: Source-1\n" +
		"NumDocSOIFs{1}: 1\n" +
		"}\n\n" +
		"@SQRDocument{\n" +
		"RawScore{4}: 0.82\n" +
		"TermStats{89}: " + strings.Repeat("x", 89) + "\n" +
		"}\n"
	objs, err := UnmarshalAll([]byte(in))
	if err != nil {
		t.Fatalf("UnmarshalAll: %v", err)
	}
	if len(objs) != 2 {
		t.Fatalf("got %d objects, want 2", len(objs))
	}
	if objs[0].Type != "SQResults" || objs[1].Type != "SQRDocument" {
		t.Errorf("types = %s, %s", objs[0].Type, objs[1].Type)
	}
	if v, _ := objs[1].Get("TermStats"); len(v) != 89 {
		t.Errorf("TermStats length = %d, want 89", len(v))
	}
}

func TestDecodeHarvestURLHeader(t *testing.T) {
	in := "@FILE{ http://example.com/doc.ps\nTitle{3}: abc\n}\n"
	o, err := Unmarshal([]byte(in))
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if v, _ := o.Get("URL"); v != "http://example.com/doc.ps" {
		t.Errorf("URL pseudo attribute = %q", v)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"no at", "SQuery{\n}\n"},
		{"unterminated", "@SQuery{\nVersion{10}: STARTS 1.0\n"},
		{"bad length", "@SQuery{\nVersion{x}: STARTS 1.0\n}\n"},
		{"negative length", "@SQuery{\nVersion{-1}: \n}\n"},
		{"short value", "@SQuery{\nVersion{99}: STARTS 1.0\n}\n"},
		{"missing colon", "@SQuery{\nVersion{10}? STARTS 1.0\n}\n"},
		{"empty type", "@{\nVersion{10}: STARTS 1.0\n}\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Unmarshal([]byte(tc.in)); err == nil {
				t.Errorf("Unmarshal(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestUnmarshalRejectsTrailingObject(t *testing.T) {
	in := "@A{\n}\n@B{\n}\n"
	if _, err := Unmarshal([]byte(in)); err == nil {
		t.Error("Unmarshal accepted two objects")
	}
	objs, err := UnmarshalAll([]byte(in))
	if err != nil || len(objs) != 2 {
		t.Errorf("UnmarshalAll = %d objects, err %v", len(objs), err)
	}
}

func TestEncodeInvalidNames(t *testing.T) {
	for _, bad := range []string{"", "has{brace", "has}brace", "has:colon", "has\nnewline"} {
		o := New("T")
		o.Add(bad, "v")
		if _, err := Marshal(o); err == nil {
			t.Errorf("Marshal accepted attribute name %q", bad)
		}
	}
	for _, bad := range []string{"", "ty{pe", "ty}pe", "ty\npe"} {
		o := New(bad)
		if _, err := Marshal(o); err == nil {
			t.Errorf("Marshal accepted template type %q", bad)
		}
	}
}

func TestDecoderStream(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	const n = 50
	for i := 0; i < n; i++ {
		o := New("SQRDocument")
		o.Addf("RawScore", "%d.%02d", i, i)
		o.Add("Payload", strings.Repeat("p", i))
		if err := enc.Encode(o); err != nil {
			t.Fatalf("Encode #%d: %v", i, err)
		}
	}
	dec := NewDecoder(&buf)
	for i := 0; ; i++ {
		o, err := dec.Decode()
		if errors.Is(err, io.EOF) {
			if i != n {
				t.Fatalf("decoded %d objects, want %d", i, n)
			}
			break
		}
		if err != nil {
			t.Fatalf("Decode #%d: %v", i, err)
		}
		if v, _ := o.Get("Payload"); len(v) != i {
			t.Fatalf("object %d payload length %d", i, len(v))
		}
	}
}

// TestQuickRoundTrip property-tests that Marshal/Unmarshal is the identity
// over arbitrary attribute values, including values with embedded newlines,
// braces and non-ASCII bytes.
func TestQuickRoundTrip(t *testing.T) {
	f := func(vals []string) bool {
		o := New("SQuick")
		for i, v := range vals {
			o.Addf("A"+string(rune('a'+i%26)), "%s", v)
		}
		data, err := Marshal(o)
		if err != nil {
			return false
		}
		back, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(o, back)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	o := New("SQRDocument")
	o.Add("Version", "STARTS 1.0")
	o.Add("RawScore", "0.82")
	o.Add("Sources", "Source-1")
	o.Add("linkage", "http://www-db.stanford.edu/~ullman/pub/dood.ps")
	o.Add("title", "A Comparison Between Deductive and Object-Oriented Database Systems")
	o.Add("TermStats", "(body-of-text \"distributed\") 10 0.31 190\n(body-of-text \"databases\") 15 0.51 232")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	o := New("SQRDocument")
	o.Add("Version", "STARTS 1.0")
	o.Add("RawScore", "0.82")
	o.Add("title", "A Comparison Between Deductive and Object-Oriented Database Systems")
	data, err := Marshal(o)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDecoderNeverPanics feeds the SOIF decoder random byte soup.
func TestDecoderNeverPanics(t *testing.T) {
	alphabet := []byte("@{}:SQuery Version 10 \n\r\tabc-")
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 5000; i++ {
		n := r.Intn(80)
		b := make([]byte, n)
		for j := range b {
			b[j] = alphabet[r.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("decoder panicked on %q: %v", b, p)
				}
			}()
			_, _ = UnmarshalAll(b)
			o := &Object{}
			_ = o.UnmarshalJSON(b)
		}()
	}
}
