package soif

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// The paper deliberately leaves the wire format open: "we expect the
// STARTS information to be delivered in multiple ways in practice ...
// STARTS includes mechanisms to specify other formats for its contents."
// This file provides the second encoding: a JSON form of the same typed
// attribute-value objects, negotiated over HTTP with the Accept header.

// jsonObject is the JSON wire form of an Object.
type jsonObject struct {
	Type  string          `json:"type"`
	Attrs []jsonAttribute `json:"attributes"`
}

type jsonAttribute struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// MarshalJSON encodes the object as {"type": ..., "attributes": [...]},
// preserving attribute order and repetitions.
func (o *Object) MarshalJSON() ([]byte, error) {
	if err := validType(o.Type); err != nil {
		return nil, err
	}
	jo := jsonObject{Type: o.Type, Attrs: make([]jsonAttribute, len(o.Attrs))}
	for i, a := range o.Attrs {
		if err := validName(a.Name); err != nil {
			return nil, err
		}
		jo.Attrs[i] = jsonAttribute{Name: a.Name, Value: a.Value}
	}
	return json.Marshal(jo)
}

// UnmarshalJSON decodes the JSON wire form.
func (o *Object) UnmarshalJSON(data []byte) error {
	var jo jsonObject
	if err := json.Unmarshal(data, &jo); err != nil {
		return fmt.Errorf("soif: decoding JSON object: %w", err)
	}
	if err := validType(jo.Type); err != nil {
		return err
	}
	o.Type = jo.Type
	o.Attrs = o.Attrs[:0]
	for _, a := range jo.Attrs {
		if err := validName(a.Name); err != nil {
			return err
		}
		o.Attrs = append(o.Attrs, Attribute{Name: a.Name, Value: a.Value})
	}
	return nil
}

// MarshalAllJSON encodes a sequence of objects as a JSON array.
func MarshalAllJSON(objs []*Object) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('[')
	for i, o := range objs {
		if i > 0 {
			buf.WriteByte(',')
		}
		data, err := o.MarshalJSON()
		if err != nil {
			return nil, err
		}
		buf.Write(data)
	}
	buf.WriteByte(']')
	return buf.Bytes(), nil
}

// UnmarshalAllJSON decodes a JSON array of objects.
func UnmarshalAllJSON(data []byte) ([]*Object, error) {
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("soif: decoding JSON object array: %w", err)
	}
	objs := make([]*Object, 0, len(raw))
	for i, r := range raw {
		o := &Object{}
		if err := o.UnmarshalJSON(r); err != nil {
			return nil, fmt.Errorf("soif: array element %d: %w", i, err)
		}
		objs = append(objs, o)
	}
	return objs, nil
}
