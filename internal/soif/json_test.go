package soif

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestJSONRoundTrip(t *testing.T) {
	o := New("SQuery")
	o.Add("Version", "STARTS 1.0")
	o.Add("FilterExpression", `((author "Ullman") and (title "databases"))`)
	o.Add("Field", "title")
	o.Add("Field", "author") // repeated attributes survive
	data, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"type":"SQuery"`) {
		t.Errorf("JSON form: %s", data)
	}
	back := &Object{}
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o, back) {
		t.Errorf("round trip:\n got %#v\nwant %#v", back, o)
	}
}

func TestJSONArray(t *testing.T) {
	objs := []*Object{New("SQResults"), New("SQRDocument"), New("SQRDocument")}
	objs[0].Add("NumDocSOIFs", "2")
	objs[1].Add("RawScore", "0.82")
	objs[2].Add("RawScore", "0.27")
	data, err := MarshalAllJSON(objs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalAllJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || !reflect.DeepEqual(back[1], objs[1]) {
		t.Errorf("array round trip: %+v", back)
	}
	empty, err := MarshalAllJSON(nil)
	if err != nil || string(empty) != "[]" {
		t.Errorf("empty array = %q, %v", empty, err)
	}
	if got, err := UnmarshalAllJSON([]byte("[]")); err != nil || len(got) != 0 {
		t.Errorf("empty decode = %v, %v", got, err)
	}
}

func TestJSONErrors(t *testing.T) {
	bad := [][]byte{
		[]byte(`{`),
		[]byte(`{"type":"","attributes":[]}`),
		[]byte(`{"type":"ty{pe","attributes":[]}`),
		[]byte(`{"type":"T","attributes":[{"name":"has{brace","value":"v"}]}`),
	}
	for _, data := range bad {
		o := &Object{}
		if err := o.UnmarshalJSON(data); err == nil {
			t.Errorf("UnmarshalJSON(%s) succeeded", data)
		}
	}
	if _, err := UnmarshalAllJSON([]byte(`{"not":"an array"}`)); err == nil {
		t.Error("non-array accepted")
	}
	if _, err := UnmarshalAllJSON([]byte(`[{"type":""}]`)); err == nil {
		t.Error("invalid element accepted")
	}
	invalid := New("bad{type")
	if _, err := json.Marshal(invalid); err == nil {
		t.Error("invalid type marshalled")
	}
}

// Property: JSON and SOIF encodings agree — decoding either yields the
// same object.
func TestQuickJSONSOIFAgreement(t *testing.T) {
	f := func(vals []string) bool {
		o := New("SQuick")
		for i, v := range vals {
			o.Addf("A"+string(rune('a'+i%26)), "%s", v)
		}
		jdata, err := json.Marshal(o)
		if err != nil {
			return false
		}
		sdata, err := Marshal(o)
		if err != nil {
			return false
		}
		fromJSON := &Object{}
		if err := json.Unmarshal(jdata, fromJSON); err != nil {
			return false
		}
		fromSOIF, err := Unmarshal(sdata)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(fromJSON, fromSOIF)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
