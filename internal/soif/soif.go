// Package soif implements the Harvest Summary Object Interchange Format
// (SOIF) encoding used by STARTS to deliver queries, query results, source
// metadata, content summaries and resource descriptions.
//
// A SOIF object is a typed, ordered list of attribute-value pairs:
//
//	@SQuery{
//	Version{10}: STARTS 1.0
//	MaxNumberDocuments{2}: 10
//	}
//
// The number in braces after each attribute name is the byte length of the
// value, which makes parsing exact even for values that contain newlines or
// braces. Attribute names are case-insensitive on lookup but their original
// spelling and order are preserved, and an attribute may repeat (the STARTS
// content summary repeats Field/Language/TermDocFreq groups, for example).
package soif

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Attribute is a single name-value pair inside a SOIF object.
type Attribute struct {
	Name  string
	Value string
}

// Object is a typed SOIF object: a template type plus an ordered list of
// attributes. The zero value is an empty, untyped object ready for use.
type Object struct {
	Type  string
	Attrs []Attribute
}

// New returns an empty object of the given template type.
func New(templateType string) *Object {
	return &Object{Type: templateType}
}

// Add appends an attribute, preserving insertion order. Repeated names are
// allowed.
func (o *Object) Add(name, value string) *Object {
	o.Attrs = append(o.Attrs, Attribute{Name: name, Value: value})
	return o
}

// Addf appends an attribute with a formatted value.
func (o *Object) Addf(name, format string, args ...any) *Object {
	return o.Add(name, fmt.Sprintf(format, args...))
}

// Get returns the value of the first attribute with the given name
// (case-insensitive) and whether it was present.
func (o *Object) Get(name string) (string, bool) {
	for _, a := range o.Attrs {
		if strings.EqualFold(a.Name, name) {
			return a.Value, true
		}
	}
	return "", false
}

// GetDefault returns the value of the first attribute with the given name,
// or def if the attribute is absent.
func (o *Object) GetDefault(name, def string) string {
	if v, ok := o.Get(name); ok {
		return v
	}
	return def
}

// All returns the values of every attribute with the given name
// (case-insensitive), in order.
func (o *Object) All(name string) []string {
	var vs []string
	for _, a := range o.Attrs {
		if strings.EqualFold(a.Name, name) {
			vs = append(vs, a.Value)
		}
	}
	return vs
}

// Has reports whether an attribute with the given name is present.
func (o *Object) Has(name string) bool {
	_, ok := o.Get(name)
	return ok
}

// Set replaces the first attribute with the given name, or appends one if
// absent.
func (o *Object) Set(name, value string) {
	for i, a := range o.Attrs {
		if strings.EqualFold(a.Name, name) {
			o.Attrs[i].Value = value
			return
		}
	}
	o.Add(name, value)
}

// Len returns the number of attributes.
func (o *Object) Len() int { return len(o.Attrs) }

// String renders the object in SOIF syntax.
func (o *Object) String() string {
	var b strings.Builder
	if err := NewEncoder(&b).Encode(o); err != nil {
		// strings.Builder never fails; encode errors are validation only.
		return "@" + o.Type + "{<invalid: " + err.Error() + ">}"
	}
	return b.String()
}

// Marshal renders the object in SOIF syntax as bytes.
func Marshal(o *Object) ([]byte, error) {
	var b bytes.Buffer
	if err := NewEncoder(&b).Encode(o); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// MarshalAll renders a sequence of objects separated by blank lines, the
// form STARTS uses for query results (one SQResults object followed by a
// series of SQRDocument objects).
func MarshalAll(objs []*Object) ([]byte, error) {
	var b bytes.Buffer
	enc := NewEncoder(&b)
	for _, o := range objs {
		if err := enc.Encode(o); err != nil {
			return nil, err
		}
	}
	return b.Bytes(), nil
}

// Unmarshal parses a single SOIF object from data. Trailing content after
// the object must be blank.
func Unmarshal(data []byte) (*Object, error) {
	dec := NewDecoder(bytes.NewReader(data))
	o, err := dec.Decode()
	if err != nil {
		return nil, err
	}
	if extra, err := dec.Decode(); err == nil {
		return nil, fmt.Errorf("soif: unexpected second object @%s after @%s", extra.Type, o.Type)
	} else if !errors.Is(err, io.EOF) {
		return nil, err
	}
	return o, nil
}

// UnmarshalAll parses every SOIF object in data.
func UnmarshalAll(data []byte) ([]*Object, error) {
	dec := NewDecoder(bytes.NewReader(data))
	var objs []*Object
	for {
		o, err := dec.Decode()
		if errors.Is(err, io.EOF) {
			return objs, nil
		}
		if err != nil {
			return nil, err
		}
		objs = append(objs, o)
	}
}

// An Encoder writes SOIF objects to an output stream.
type Encoder struct {
	w   io.Writer
	err error
}

// NewEncoder returns an encoder writing to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

func validName(name string) error {
	if name == "" {
		return errors.New("soif: empty attribute name")
	}
	for _, r := range name {
		switch {
		case r == '{' || r == '}' || r == ':':
			return fmt.Errorf("soif: attribute name %q contains reserved character %q", name, r)
		case r == '\n' || r == '\r':
			return fmt.Errorf("soif: attribute name %q contains newline", name)
		}
	}
	return nil
}

func validType(t string) error {
	if t == "" {
		return errors.New("soif: empty template type")
	}
	for _, r := range t {
		if r == '{' || r == '}' || r == '\n' || r == '\r' {
			return fmt.Errorf("soif: template type %q contains reserved character %q", t, r)
		}
	}
	return nil
}

// Encode writes one object. Each object ends with a closing brace and a
// blank line so consecutive objects are visually separated, matching the
// layout of the STARTS specification examples.
func (e *Encoder) Encode(o *Object) error {
	if e.err != nil {
		return e.err
	}
	if err := validType(o.Type); err != nil {
		return err
	}
	var b bytes.Buffer
	b.WriteByte('@')
	b.WriteString(o.Type)
	b.WriteString("{\n")
	for _, a := range o.Attrs {
		if err := validName(a.Name); err != nil {
			return err
		}
		fmt.Fprintf(&b, "%s{%d}: %s\n", a.Name, len(a.Value), a.Value)
	}
	b.WriteString("}\n\n")
	_, e.err = e.w.Write(b.Bytes())
	return e.err
}

// A Decoder reads SOIF objects from an input stream.
type Decoder struct {
	r *bufio.Reader
}

// NewDecoder returns a decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: bufio.NewReaderSize(r, 64<<10)}
}

// Decode reads the next object from the stream. It returns io.EOF when no
// further objects remain.
func (d *Decoder) Decode() (*Object, error) {
	// Skip blank space between objects.
	for {
		c, err := d.r.ReadByte()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("soif: reading object start: %w", err)
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			continue
		}
		if c != '@' {
			return nil, fmt.Errorf("soif: expected '@' at object start, found %q", c)
		}
		break
	}
	typeLine, err := d.r.ReadString('{')
	if err != nil {
		return nil, fmt.Errorf("soif: reading template type: %w", err)
	}
	o := &Object{Type: strings.TrimSpace(strings.TrimSuffix(typeLine, "{"))}
	if err := validType(o.Type); err != nil {
		return nil, err
	}
	// Optional rest-of-line after '{' (Harvest puts a URL here; STARTS does
	// not). Consume up to newline; a non-empty remainder becomes a pseudo
	// attribute "URL" for Harvest compatibility.
	rest, err := d.r.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("soif: reading template header: %w", err)
	}
	if rest = strings.TrimSpace(rest); rest != "" {
		o.Add("URL", rest)
	}
	for {
		// Each iteration parses either the closing '}' or one attribute.
		c, err := peekNonSpace(d.r)
		if err != nil {
			return nil, fmt.Errorf("soif: inside @%s: %w", o.Type, err)
		}
		if c == '}' {
			if _, err := d.r.ReadByte(); err != nil {
				return nil, err
			}
			return o, nil
		}
		name, err := d.r.ReadString('{')
		if err != nil {
			return nil, fmt.Errorf("soif: reading attribute name in @%s: %w", o.Type, err)
		}
		name = strings.TrimSpace(strings.TrimSuffix(name, "{"))
		if err := validName(name); err != nil {
			return nil, err
		}
		lenStr, err := d.r.ReadString('}')
		if err != nil {
			return nil, fmt.Errorf("soif: reading length of %s in @%s: %w", name, o.Type, err)
		}
		var n int
		if _, err := fmt.Sscanf(strings.TrimSuffix(lenStr, "}"), "%d", &n); err != nil || n < 0 {
			return nil, fmt.Errorf("soif: invalid length %q for attribute %s in @%s", strings.TrimSuffix(lenStr, "}"), name, o.Type)
		}
		// Expect ": " (tolerate ":" with no space, and tabs).
		if c, err := d.r.ReadByte(); err != nil || c != ':' {
			return nil, fmt.Errorf("soif: expected ':' after %s{%d} in @%s", name, n, o.Type)
		}
		if c, err := d.r.ReadByte(); err == nil && c != ' ' && c != '\t' {
			if err := d.r.UnreadByte(); err != nil {
				return nil, err
			}
		}
		val := make([]byte, n)
		if _, err := io.ReadFull(d.r, val); err != nil {
			return nil, fmt.Errorf("soif: value of %s in @%s truncated (want %d bytes): %w", name, o.Type, n, err)
		}
		o.Add(name, string(val))
	}
}

// peekNonSpace skips whitespace and returns the next byte without consuming
// it.
func peekNonSpace(r *bufio.Reader) (byte, error) {
	for {
		c, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			continue
		}
		if err := r.UnreadByte(); err != nil {
			return 0, err
		}
		return c, nil
	}
}
