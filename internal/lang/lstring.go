package lang

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// LString is the basic building block of STARTS queries: a UTF-8 string,
// optionally qualified with the language (and country) it is written in.
//
//	"databases"            -> LString{Text: "databases"}
//	[en-US "behavior"]     -> LString{Tag: en-US, Text: "behavior"}
//
// Per the specification, an unqualified l-string defaults to the query's
// default language (itself defaulting to en-US), and plain ASCII text is
// its own UTF-8 encoding.
type LString struct {
	Tag  Tag
	Text string
}

// L is shorthand for an unqualified l-string.
func L(text string) LString { return LString{Text: text} }

// LIn is shorthand for a language-qualified l-string.
func LIn(tag Tag, text string) LString { return LString{Tag: tag, Text: text} }

// String renders the l-string in canonical query syntax: a double-quoted,
// backslash-escaped string, wrapped in [tag ...] when language-qualified.
func (l LString) String() string {
	q := Quote(l.Text)
	if l.Tag.IsZero() {
		return q
	}
	return "[" + l.Tag.String() + " " + q + "]"
}

// Resolve returns the l-string's tag, or def when unqualified.
func (l LString) Resolve(def Tag) Tag {
	if l.Tag.IsZero() {
		return def
	}
	return l.Tag
}

// Quote renders s as a double-quoted string with backslash escapes for the
// quote and backslash characters. All other bytes, including non-ASCII
// UTF-8, pass through verbatim.
func Quote(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for _, r := range s {
		if r == '"' || r == '\\' {
			b.WriteByte('\\')
		}
		b.WriteRune(r)
	}
	b.WriteByte('"')
	return b.String()
}

// ParseLString parses a complete l-string and rejects trailing input.
func ParseLString(s string) (LString, error) {
	l, rest, err := ScanLString(s)
	if err != nil {
		return LString{}, err
	}
	if strings.TrimSpace(rest) != "" {
		return LString{}, fmt.Errorf("lang: trailing input %q after l-string", rest)
	}
	return l, nil
}

// ScanLString reads one l-string from the front of s (after leading
// whitespace) and returns it together with the unconsumed remainder.
//
// Two quote styles are accepted: the canonical double-quoted form
// ("databases", with backslash escapes) and the TeX-style “databases”
// form in which the paper's examples are typeset.
func ScanLString(s string) (LString, string, error) {
	s = strings.TrimLeft(s, " \t\r\n")
	if s == "" {
		return LString{}, "", fmt.Errorf("lang: expected l-string, found end of input")
	}
	if s[0] == '[' {
		// [tag "text"]
		body := s[1:]
		sp := strings.IndexAny(body, " \t")
		if sp < 0 {
			return LString{}, "", fmt.Errorf("lang: malformed l-string %q: missing space after tag", s)
		}
		tag, err := ParseTag(body[:sp])
		if err != nil {
			return LString{}, "", err
		}
		text, rest, err := scanQuoted(body[sp:])
		if err != nil {
			return LString{}, "", err
		}
		rest = strings.TrimLeft(rest, " \t\r\n")
		if rest == "" || rest[0] != ']' {
			return LString{}, "", fmt.Errorf("lang: l-string for tag %s missing closing ']'", tag)
		}
		return LString{Tag: tag, Text: text}, rest[1:], nil
	}
	text, rest, err := scanQuoted(s)
	if err != nil {
		return LString{}, "", err
	}
	return LString{Text: text}, rest, nil
}

// scanQuoted reads a quoted string in either accepted style.
func scanQuoted(s string) (text, rest string, err error) {
	s = strings.TrimLeft(s, " \t\r\n")
	switch {
	case strings.HasPrefix(s, "``"):
		end := strings.Index(s[2:], "''")
		if end < 0 {
			return "", "", fmt.Errorf("lang: unterminated ``...'' string in %q", clip(s))
		}
		return s[2 : 2+end], s[2+end+2:], nil
	case strings.HasPrefix(s, `"`):
		var b strings.Builder
		i := 1
		for i < len(s) {
			r, size := utf8.DecodeRuneInString(s[i:])
			switch r {
			case '\\':
				if i+size >= len(s) {
					return "", "", fmt.Errorf("lang: dangling backslash in %q", clip(s))
				}
				r2, size2 := utf8.DecodeRuneInString(s[i+size:])
				b.WriteRune(r2)
				i += size + size2
			case '"':
				return b.String(), s[i+size:], nil
			default:
				b.WriteRune(r)
				i += size
			}
		}
		return "", "", fmt.Errorf("lang: unterminated string in %q", clip(s))
	default:
		return "", "", fmt.Errorf("lang: expected quoted string at %q", clip(s))
	}
}

func clip(s string) string {
	if len(s) > 40 {
		return s[:40] + "..."
	}
	return s
}
