package lang

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseTag(t *testing.T) {
	cases := []struct {
		in   string
		want Tag
		ok   bool
	}{
		{"en-US", Tag{"en", "US"}, true},
		{"en-us", Tag{"en", "US"}, true},
		{"EN", Tag{"en", ""}, true},
		{"es", Tag{"es", ""}, true},
		{"i-klingon", Tag{"i", "KLINGON"}, true},
		{"", Tag{}, false},
		{"en US", Tag{}, false},
		{"toolongtag9x", Tag{}, false},
		{"en-", Tag{}, false},
	}
	for _, tc := range cases {
		got, err := ParseTag(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseTag(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseTag(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestTagString(t *testing.T) {
	if got := (Tag{"en", "US"}).String(); got != "en-US" {
		t.Errorf("String = %q", got)
	}
	if got := (Tag{"es", ""}).String(); got != "es" {
		t.Errorf("String = %q", got)
	}
	if got := (Tag{}).String(); got != "" {
		t.Errorf("zero String = %q", got)
	}
}

func TestTagMatches(t *testing.T) {
	cases := []struct {
		have, want string
		match      bool
	}{
		{"en-US", "en", true},
		{"en-GB", "en", true},
		{"en-US", "en-US", true},
		{"en-GB", "en-US", false},
		{"es", "en", false},
		{"en", "en-US", false}, // bare English does not promise American English
		{"", "en-US", true},    // unspecified matches anything
		{"en-US", "", true},
	}
	for _, tc := range cases {
		have, want := Tag{}, Tag{}
		if tc.have != "" {
			have = MustParseTag(tc.have)
		}
		if tc.want != "" {
			want = MustParseTag(tc.want)
		}
		if got := have.Matches(want); got != tc.match {
			t.Errorf("%q matches %q = %v, want %v", tc.have, tc.want, got, tc.match)
		}
	}
}

func TestMustParseTagPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseTag did not panic on invalid tag")
		}
	}()
	MustParseTag("not a tag")
}

func TestScanLString(t *testing.T) {
	cases := []struct {
		in   string
		want LString
		rest string
	}{
		{`"databases"`, L("databases"), ""},
		{"``databases''", L("databases"), ""},
		{`[en-US "behavior"] tail`, LIn(EnglishUS, "behavior"), " tail"},
		{"[es ``taco'']", LIn(Spanish, "taco"), ""},
		{`"with \"escape\" and \\ backslash"`, L(`with "escape" and \ backslash`), ""},
		{`  "leading space"`, L("leading space"), ""},
		{`[en-US  "two spaces"]`, LIn(EnglishUS, "two spaces"), ""},
		{`"日本語テキスト"`, L("日本語テキスト"), ""},
	}
	for _, tc := range cases {
		got, rest, err := ScanLString(tc.in)
		if err != nil {
			t.Errorf("ScanLString(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want || rest != tc.rest {
			t.Errorf("ScanLString(%q) = %v rest %q; want %v rest %q", tc.in, got, rest, tc.want, tc.rest)
		}
	}
}

func TestScanLStringErrors(t *testing.T) {
	for _, in := range []string{
		"", `"unterminated`, "``unterminated", `[en-US "no bracket"`,
		`[bad tag "x"]`, `plain`, `"dangling\`, `[en-US]`,
	} {
		if _, _, err := ScanLString(in); err == nil {
			t.Errorf("ScanLString(%q) succeeded, want error", in)
		}
	}
}

func TestParseLStringTrailing(t *testing.T) {
	if _, err := ParseLString(`"a" "b"`); err == nil {
		t.Error("ParseLString accepted trailing input")
	}
	l, err := ParseLString(`[es "datos"]`)
	if err != nil || l != LIn(Spanish, "datos") {
		t.Errorf("ParseLString = %v, %v", l, err)
	}
}

func TestLStringResolve(t *testing.T) {
	if got := L("x").Resolve(EnglishUS); got != EnglishUS {
		t.Errorf("Resolve default = %v", got)
	}
	if got := LIn(Spanish, "x").Resolve(EnglishUS); got != Spanish {
		t.Errorf("Resolve explicit = %v", got)
	}
}

// Property: String() of any l-string built from printable text parses back
// to the same value.
func TestQuickLStringRoundTrip(t *testing.T) {
	tags := []Tag{{}, EnglishUS, English, Spanish, {"fr", "CA"}}
	f := func(text string, tagIdx uint8) bool {
		l := LString{Tag: tags[int(tagIdx)%len(tags)], Text: text}
		back, err := ParseLString(l.String())
		if err != nil {
			return false
		}
		return back == l
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
