// Package lang implements the language facilities of STARTS: RFC 1766
// language-country tags (such as "en-US") and l-strings, the query-language
// building blocks that qualify a UTF-8 string with the language it is
// written in (such as `[en-US "behavior"]`).
package lang

import (
	"fmt"
	"strings"
)

// Tag is an RFC 1766 language tag with an optional country subtag, as used
// throughout STARTS to qualify strings, fields and tokenizers. The zero Tag
// means "unspecified".
type Tag struct {
	Language string // primary subtag, lower case, e.g. "en"
	Country  string // optional country subtag, upper case, e.g. "US"
}

// Common tags used by the defaults in the STARTS specification.
var (
	// EnglishUS is the specification's default query language.
	EnglishUS = Tag{Language: "en", Country: "US"}
	// English is bare English with no country qualification.
	English = Tag{Language: "en"}
	// Spanish appears in the paper's multi-language examples.
	Spanish = Tag{Language: "es"}
)

// ParseTag parses an RFC 1766 tag of the form "language" or
// "language-COUNTRY". Subtags must be 1-8 ASCII letters.
func ParseTag(s string) (Tag, error) {
	if s == "" {
		return Tag{}, fmt.Errorf("lang: empty language tag")
	}
	parts := strings.SplitN(s, "-", 2)
	t := Tag{Language: strings.ToLower(parts[0])}
	if len(parts) == 2 {
		t.Country = strings.ToUpper(parts[1])
	}
	if err := validSubtag(t.Language); err != nil {
		return Tag{}, fmt.Errorf("lang: invalid language subtag %q: %w", parts[0], err)
	}
	if len(parts) == 2 {
		if err := validSubtag(t.Country); err != nil {
			return Tag{}, fmt.Errorf("lang: invalid country subtag %q: %w", parts[1], err)
		}
	}
	return t, nil
}

// MustParseTag is ParseTag for statically known tags; it panics on error.
func MustParseTag(s string) Tag {
	t, err := ParseTag(s)
	if err != nil {
		panic(err)
	}
	return t
}

func validSubtag(s string) error {
	if len(s) == 0 || len(s) > 8 {
		return fmt.Errorf("subtag length %d outside 1..8", len(s))
	}
	for _, r := range s {
		if (r < 'a' || r > 'z') && (r < 'A' || r > 'Z') && (r < '0' || r > '9') {
			return fmt.Errorf("character %q not allowed", r)
		}
	}
	return nil
}

// IsZero reports whether the tag is the unspecified tag.
func (t Tag) IsZero() bool { return t.Language == "" }

// String renders the tag in RFC 1766 form ("en-US", "es"). The zero tag
// renders as the empty string.
func (t Tag) String() string {
	if t.Language == "" {
		return ""
	}
	if t.Country == "" {
		return t.Language
	}
	return t.Language + "-" + t.Country
}

// Matches reports whether t satisfies a request for want. A request for a
// bare language ("en") is satisfied by any dialect of it ("en-US", "en-GB");
// a request with a country is satisfied only by an exact match. The zero
// tag matches everything, in both positions.
func (t Tag) Matches(want Tag) bool {
	if want.IsZero() || t.IsZero() {
		return true
	}
	if t.Language != want.Language {
		return false
	}
	return want.Country == "" || t.Country == want.Country
}
