package dispatch

import (
	"context"
	"fmt"

	"starts/internal/query"
	"starts/internal/result"
)

// BatchSourceConn is a SourceConn that can evaluate several queries in
// one wire call (structurally client.BatchConn; declared here so the
// dependency keeps pointing outward).
type BatchSourceConn interface {
	SourceConn
	QueryBatch(ctx context.Context, qs []*query.Query) ([]*result.Results, []error)
}

// BatchConn is the dispatching middleware over a batch-capable source:
// Query submits through SubmitMux, so distinct queries queued for the
// source multiplex into single wire calls when a worker drains the
// queue — the dispatcher's MaxBatchWire bound and the inner QueryBatch
// seam together turn one RTT per sub-query into one RTT per drain.
type BatchConn struct {
	*Conn
	binner BatchSourceConn
}

var _ BatchSourceConn = (*BatchConn)(nil)

// WrapBatchConn wraps a batch-capable inner so its traffic flows
// through d like WrapConn's, with distinct queued queries additionally
// multiplexed onto shared wire calls. Prefer WrapConn, which picks this
// variant automatically.
func WrapBatchConn(inner BatchSourceConn, d *Dispatcher, lim Limits) *BatchConn {
	return &BatchConn{Conn: newConn(inner, d, lim), binner: inner}
}

// exec is the group executor handed to SubmitMux: one inner QueryBatch
// call for a whole queue drain.
func (c *BatchConn) exec(ctx context.Context, items []any) ([]any, []error) {
	qs := make([]*query.Query, len(items))
	for i, it := range items {
		qs[i] = it.(*query.Query)
	}
	rs, errs := c.binner.QueryBatch(ctx, qs)
	if len(rs) != len(items) || len(errs) != len(items) {
		errs = make([]error, len(items))
		for i := range errs {
			errs[i] = fmt.Errorf("dispatch: %s: QueryBatch returned %d results, %d errors for %d queries",
				c.binner.SourceID(), len(rs), len(errs), len(items))
		}
		return make([]any, len(items)), errs
	}
	vals := make([]any, len(items))
	for i, r := range rs {
		vals[i] = r
	}
	return vals, errs
}

// Query evaluates q at the source through the dispatcher's mux path:
// identical in-flight queries still coalesce by fingerprint, and
// distinct ones share wire calls per queue drain.
func (c *BatchConn) Query(ctx context.Context, q *query.Query) (*result.Results, error) {
	t, err := c.d.SubmitMux(ctx, c.inner.SourceID(), c.keyer.Key(q), c.lim, q, c.exec)
	if err != nil {
		return nil, err
	}
	v, err := t.Wait(ctx)
	if err != nil {
		return nil, err
	}
	res := v.(*result.Results)
	if t.Fanout() > 1 {
		res = res.Clone()
	}
	return res, nil
}

// QueryBatch implements BatchSourceConn: each query submits through the
// mux path individually and the dispatcher regroups them (with any
// other queued work for the source) into wire calls, so an outer batch
// still honors the per-source queue bounds, coalescing and breaker
// refusal that per-item submission gets.
func (c *BatchConn) QueryBatch(ctx context.Context, qs []*query.Query) ([]*result.Results, []error) {
	results := make([]*result.Results, len(qs))
	errs := make([]error, len(qs))
	tickets := make([]*Ticket, len(qs))
	for i, q := range qs {
		tickets[i], errs[i] = c.d.SubmitMux(ctx, c.inner.SourceID(), c.keyer.Key(q), c.lim, q, c.exec)
	}
	for i, t := range tickets {
		if t == nil {
			continue
		}
		v, err := t.Wait(ctx)
		if err != nil {
			errs[i] = err
			continue
		}
		res := v.(*result.Results)
		if t.Fanout() > 1 {
			res = res.Clone()
		}
		results[i] = res
	}
	return results, errs
}
