package dispatch

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"starts/internal/obs"
)

// occupy parks d's single worker for source until release is closed,
// returning once the worker has picked the blocker up.
func occupy(t *testing.T, d *Dispatcher, source string, lim Limits) (release chan struct{}, done *Ticket) {
	t.Helper()
	release = make(chan struct{})
	started := make(chan struct{})
	tk, err := d.Submit(context.Background(), source, "", lim, func(context.Context) (any, error) {
		close(started)
		<-release
		return "blocker", nil
	})
	if err != nil {
		t.Fatalf("blocker submit: %v", err)
	}
	select {
	case <-started:
	case <-time.After(2 * time.Second):
		t.Fatal("worker never picked up the blocker")
	}
	return release, tk
}

// TestQueueFullShedsWithoutBlocking pins the shedding contract: with the
// worker busy and the queue at its depth bound, Submit returns a typed
// ErrQueueFull immediately instead of blocking the caller.
func TestQueueFullShedsWithoutBlocking(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	lim := Limits{Concurrency: 1, QueueDepth: 1}
	release, _ := occupy(t, d, "s", lim)
	defer close(release)

	if _, err := d.Submit(context.Background(), "s", "", lim, noop); err != nil {
		t.Fatalf("queued submit: %v", err)
	}
	start := time.Now()
	_, err := d.Submit(context.Background(), "s", "", lim, noop)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull submit err = %v, want ErrQueueFull", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("shed submit blocked for %v", waited)
	}
	st := stat(t, d, "s")
	if st.QueueFull != 1 {
		t.Errorf("QueueFull = %d, want 1", st.QueueFull)
	}
	// Blocker running, one batch queued, shed submit net zero.
	if st.Depth != 1 {
		t.Errorf("Depth = %d, want 1", st.Depth)
	}
}

// TestAbandonedBatchLeavesPendingMap pins the repending contract: when
// the last waiter abandons a queued batch, the batch must leave the
// pending map with it, so a later identical submit starts a fresh batch
// instead of joining the dead one and inheriting its cancellation.
func TestAbandonedBatchLeavesPendingMap(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	lim := Limits{Concurrency: 1, QueueDepth: 4}
	release, _ := occupy(t, d, "s", lim)

	ctx, cancel := context.WithCancel(context.Background())
	tk, err := d.Submit(ctx, "s", "hot-key", lim, noop)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, werr := tk.Wait(ctx); !errors.Is(werr, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", werr)
	}
	// The same key resubmitted by a live caller must lead a fresh batch,
	// not join the abandoned one and fail despite its own context being
	// fine.
	tk2, err := d.Submit(context.Background(), "s", "hot-key", lim, func(context.Context) (any, error) {
		return "fresh", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tk2.Led() {
		t.Error("second submit joined the abandoned batch instead of leading a fresh one")
	}
	close(release)
	v, werr := tk2.Wait(context.Background())
	if werr != nil || v != "fresh" {
		t.Fatalf("fresh batch = %v, %v; want \"fresh\", nil", v, werr)
	}
	if st := stat(t, d, "s"); st.Cancelled != 1 {
		t.Errorf("Cancelled = %d, want 1", st.Cancelled)
	}
}

// TestBatchCoalescing pins the batching contract: N waiters submitting
// the same key while a batch is pending share ONE wire call, every
// waiter sees its result, exactly one waiter led, and the joins are
// counter-verified both on the Snapshot and the metrics registry.
func TestBatchCoalescing(t *testing.T) {
	reg := obs.NewRegistry()
	d := New(Config{Metrics: reg})
	defer d.Close()
	lim := Limits{Concurrency: 1, QueueDepth: 4}
	release, _ := occupy(t, d, "s", lim)

	var wireCalls atomic.Int64
	const waiters = 8
	tickets := make([]*Ticket, waiters)
	for i := range tickets {
		tk, err := d.Submit(context.Background(), "s", "same-key", lim, func(context.Context) (any, error) {
			wireCalls.Add(1)
			return 42, nil
		})
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
		tickets[i] = tk
	}
	close(release) // let the worker reach the shared batch

	led := 0
	var wg sync.WaitGroup
	for i, tk := range tickets {
		wg.Add(1)
		go func(i int, tk *Ticket) {
			defer wg.Done()
			v, err := tk.Wait(context.Background())
			if err != nil || v != 42 {
				t.Errorf("waiter %d: v=%v err=%v", i, v, err)
			}
		}(i, tk)
		if tk.Led() {
			led++
		}
	}
	wg.Wait()
	if wireCalls.Load() != 1 {
		t.Errorf("wire calls = %d, want 1", wireCalls.Load())
	}
	if led != 1 {
		t.Errorf("leaders = %d, want exactly 1", led)
	}
	if n := tickets[0].Fanout(); n != waiters {
		t.Errorf("Fanout = %d, want %d", n, waiters)
	}
	st := stat(t, d, "s")
	if st.Batched != waiters-1 {
		t.Errorf("Batched = %d, want %d", st.Batched, waiters-1)
	}
	if got := reg.Counter(obs.L(obs.MDispatchBatched, "source", "s")).Value(); got != waiters-1 {
		t.Errorf("batched counter = %d, want %d", got, waiters-1)
	}
	// blocker + batch leader accepted, plus the joiners.
	if st.Submitted != waiters+1 {
		t.Errorf("Submitted = %d, want %d", st.Submitted, waiters+1)
	}
}

// TestRefusedFastDrain pins breaker integration: with the Refuse hook
// reporting the source unavailable, queued batches resolve immediately
// with ErrRefused and their tasks never run — the queue drains fast
// instead of timing out one waiter at a time.
func TestRefusedFastDrain(t *testing.T) {
	var refuse atomic.Bool
	d := New(Config{Refuse: func(source string) bool { return refuse.Load() }})
	defer d.Close()
	lim := Limits{Concurrency: 1, QueueDepth: 8}
	release, _ := occupy(t, d, "s", lim)

	var ran atomic.Int64
	tickets := make([]*Ticket, 5)
	for i := range tickets {
		tk, err := d.Submit(context.Background(), "s", "", lim, func(context.Context) (any, error) {
			ran.Add(1)
			return nil, nil
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets[i] = tk
	}
	refuse.Store(true) // circuit opens while the batches sit queued
	close(release)
	for i, tk := range tickets {
		if _, err := tk.Wait(context.Background()); !errors.Is(err, ErrRefused) {
			t.Errorf("waiter %d err = %v, want ErrRefused", i, err)
		}
	}
	if ran.Load() != 0 {
		t.Errorf("refused tasks ran %d times", ran.Load())
	}
	if st := stat(t, d, "s"); st.Refused != 5 {
		t.Errorf("Refused = %d, want 5", st.Refused)
	}
}

// TestQueuedCancellation pins abandonment of a queued-but-not-started
// batch: the waiter's context ends while the batch waits for a worker,
// Wait returns promptly with the context error, and the worker later
// skips the task entirely.
func TestQueuedCancellation(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	lim := Limits{Concurrency: 1, QueueDepth: 4}
	release, _ := occupy(t, d, "s", lim)

	var ran atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	tk, err := d.Submit(ctx, "s", "", lim, func(context.Context) (any, error) {
		ran.Add(1)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, werr := tk.Wait(ctx); !errors.Is(werr, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", werr)
	}
	close(release)
	// A sentinel task behind the abandoned one proves the worker got past
	// it without running it.
	sentinel, err := d.Submit(context.Background(), "s", "", lim, noop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sentinel.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 0 {
		t.Errorf("abandoned task ran %d times", ran.Load())
	}
	if st := stat(t, d, "s"); st.Cancelled != 1 {
		t.Errorf("Cancelled = %d, want 1", st.Cancelled)
	}
}

// TestAbandonMidRunCancelsTask pins the other cancellation direction: a
// task already running when its last waiter walks away sees its batch
// context end, exactly as an un-dispatched wire call saw its search's
// context end.
func TestAbandonMidRunCancelsTask(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	started := make(chan struct{})
	stopped := make(chan struct{})
	tk, err := d.Submit(context.Background(), "s", "", Limits{Concurrency: 1}, func(tctx context.Context) (any, error) {
		close(started)
		<-tctx.Done()
		close(stopped)
		return nil, tctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, werr := tk.Wait(ctx); !errors.Is(werr, context.Canceled) {
		t.Fatalf("Wait = %v", werr)
	}
	select {
	case <-stopped:
	case <-time.After(2 * time.Second):
		t.Fatal("task did not observe cancellation after its last waiter left")
	}
}

// TestInflightStaysBounded drives many distinct keys through a small
// worker pool and asserts — via the starts_dispatch_inflight gauge the
// tasks themselves sample — that concurrent wire calls never exceed the
// configured per-source bound.
func TestInflightStaysBounded(t *testing.T) {
	reg := obs.NewRegistry()
	d := New(Config{Metrics: reg})
	defer d.Close()
	const bound = 2
	lim := Limits{Concurrency: bound, QueueDepth: 64}
	gauge := reg.Gauge(obs.L(obs.MDispatchInflight, "source", "s"))

	var peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := d.Submit(context.Background(), "s", "", lim, func(context.Context) (any, error) {
				for {
					v := gauge.Value()
					p := peak.Load()
					if v <= p || peak.CompareAndSwap(p, v) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				return i, nil
			})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			if _, err := tk.Wait(context.Background()); err != nil {
				t.Errorf("wait %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p < 1 || p > bound {
		t.Errorf("peak inflight = %d, want within [1, %d]", p, bound)
	}
	if v := gauge.Value(); v != 0 {
		t.Errorf("inflight after drain = %d, want 0", v)
	}
}

// TestTaskPanicContained pins panic containment: a panicking task
// resolves its batch with an error instead of killing the worker, and
// the worker keeps serving.
func TestTaskPanicContained(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	lim := Limits{Concurrency: 1}
	tk, err := d.Submit(context.Background(), "s", "", lim, func(context.Context) (any, error) {
		panic("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, werr := tk.Wait(context.Background()); werr == nil {
		t.Fatal("Wait after panic = nil, want error")
	} else if got := werr.Error(); !strings.Contains(got, "panicked") || !strings.Contains(got, "boom") {
		t.Fatalf("panic error = %q", got)
	}
	// The worker survived: the next task runs normally.
	tk2, err := d.Submit(context.Background(), "s", "", lim, noop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk2.Wait(context.Background()); err != nil {
		t.Fatalf("worker dead after panic: %v", err)
	}
}

// TestCloseRejectsNewWork pins shutdown: Close drains queued work and
// later submissions fail with ErrClosed.
func TestCloseRejectsNewWork(t *testing.T) {
	d := New(Config{})
	tk, err := d.Submit(context.Background(), "s", "", Limits{}, noop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	d.Close()
	d.Close() // idempotent
	if _, err := d.Submit(context.Background(), "s", "", Limits{}, noop); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
}

// TestSnapshotShape pins Snapshot ordering and the effective limits it
// reports, including first-touch-wins queue sizing.
func TestSnapshotShape(t *testing.T) {
	d := New(Config{Limits: Limits{Concurrency: 3, QueueDepth: 7}})
	defer d.Close()
	for _, s := range []string{"b", "a"} {
		tk, err := d.Submit(context.Background(), s, "", Limits{}, noop)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// A later submit with different limits must not resize "a"'s queue.
	tk, err := d.Submit(context.Background(), "a", "", Limits{Concurrency: 9, QueueDepth: 9}, noop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats := d.Snapshot()
	if len(stats) != 2 || stats[0].Source != "a" || stats[1].Source != "b" {
		t.Fatalf("snapshot = %+v, want sources [a b]", stats)
	}
	for _, st := range stats {
		if st.Workers != 3 || st.QueueCap != 7 {
			t.Errorf("%s limits = %d/%d, want 3/7", st.Source, st.Workers, st.QueueCap)
		}
		if st.Depth != 0 || st.Inflight != 0 {
			t.Errorf("%s not drained: %+v", st.Source, st)
		}
	}
}

func noop(context.Context) (any, error) { return nil, nil }

func stat(t *testing.T, d *Dispatcher, source string) QueueStat {
	t.Helper()
	for _, st := range d.Snapshot() {
		if st.Source == source {
			return st
		}
	}
	t.Fatalf("no queue for %q", source)
	return QueueStat{}
}

// TestResizeShrinkBelowInflight pins the shrink contract: lowering
// Concurrency below the current in-flight count interrupts nothing, and
// no new task starts until enough running ones finish to fall under the
// new bound.
func TestResizeShrinkBelowInflight(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	lim := Limits{Concurrency: 3, QueueDepth: 8}
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	blocker := func(context.Context) (any, error) {
		started <- struct{}{}
		<-release
		return nil, nil
	}
	var tickets []*Ticket
	for i := 0; i < 3; i++ {
		tk, err := d.Submit(context.Background(), "s", "", lim, blocker)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for i := 0; i < 3; i++ {
		select {
		case <-started:
		case <-time.After(2 * time.Second):
			t.Fatal("task never started")
		}
	}
	if !d.Resize("s", Limits{Concurrency: 1, QueueDepth: 8}) {
		t.Fatal("Resize found no queue")
	}
	if st := stat(t, d, "s"); st.Workers != 1 || st.Inflight != 3 {
		t.Fatalf("after shrink: workers=%d inflight=%d, want 1/3 (running tasks uninterrupted)", st.Workers, st.Inflight)
	}
	// A fourth task must not start while 3 > limit 1 are still running.
	tk, err := d.Submit(context.Background(), "s", "", lim, blocker)
	if err != nil {
		t.Fatal(err)
	}
	tickets = append(tickets, tk)
	select {
	case <-started:
		t.Fatal("task started above the shrunken concurrency bound")
	case <-time.After(50 * time.Millisecond):
	}
	close(release) // the three finish; held falls to 0 < 1; the fourth runs
	for i, tk := range tickets {
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}
	if st := stat(t, d, "s"); st.Inflight != 0 || st.Depth != 0 {
		t.Errorf("not drained after shrink: %+v", st)
	}
}

// TestResizeGrowWhileQueueFull pins the grow contract: a queue shedding
// at its depth bound admits again the moment Resize raises the bound,
// and a concurrency grow puts the extra workers to use immediately.
func TestResizeGrowWhileQueueFull(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	lim := Limits{Concurrency: 1, QueueDepth: 1}
	release, _ := occupy(t, d, "s", lim)
	defer close(release)

	if _, err := d.Submit(context.Background(), "s", "", lim, noop); err != nil {
		t.Fatalf("queued submit: %v", err)
	}
	if _, err := d.Submit(context.Background(), "s", "", lim, noop); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull submit err = %v, want ErrQueueFull", err)
	}
	if !d.Resize("s", Limits{Concurrency: 2, QueueDepth: 4}) {
		t.Fatal("Resize found no queue")
	}
	// The same submission that was just shed is admitted under the new
	// bound, and with a second worker slot it runs to completion even
	// though the original blocker still holds the first.
	tk, err := d.Submit(context.Background(), "s", "", lim, noop)
	if err != nil {
		t.Fatalf("submit after grow: %v", err)
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := tk.Wait(waitCtx); err != nil {
		t.Fatalf("wait after grow: %v", err)
	}
	st := stat(t, d, "s")
	if st.Workers != 2 || st.QueueCap != 4 {
		t.Errorf("live limits = %d/%d, want 2/4", st.Workers, st.QueueCap)
	}
	if st.QueueFull != 1 {
		t.Errorf("QueueFull = %d, want 1", st.QueueFull)
	}
}

// TestResizeUnknownSource pins that Resize is a no-op (false) for a
// source never submitted to and after Close.
func TestResizeUnknownSource(t *testing.T) {
	d := New(Config{})
	if d.Resize("ghost", Limits{Concurrency: 2}) {
		t.Error("Resize of unknown source reported true")
	}
	tk, err := d.Submit(context.Background(), "s", "", Limits{}, noop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	d.Close()
	if d.Resize("s", Limits{Concurrency: 2}) {
		t.Error("Resize after Close reported true")
	}
}

// TestResizeQueueDepthClampedToChannel pins the hard-cap contract: a
// grow beyond the creation-time channel capacity clamps to it instead of
// promising admissions the channel cannot hold.
func TestResizeQueueDepthClampedToChannel(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	tk, err := d.Submit(context.Background(), "s", "", Limits{}, noop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	d.Resize("s", Limits{Concurrency: 1, QueueDepth: 1 << 20})
	if st := stat(t, d, "s"); st.QueueCap != queueHardCap {
		t.Errorf("QueueCap after oversized grow = %d, want clamp to %d", st.QueueCap, queueHardCap)
	}
}

// TestConcurrentResizeAndSubmit races continuous Resize against a
// submit/wait workload under -race: no data race, no lost work, and the
// final state honors the last applied bounds.
func TestConcurrentResizeAndSubmit(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	lim := Limits{Concurrency: 2, QueueDepth: 32}
	stop := make(chan struct{})
	var resizes sync.WaitGroup
	resizes.Add(1)
	go func() {
		defer resizes.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			d.Resize("s", Limits{Concurrency: 1 + i%4, QueueDepth: 8 + i%16})
		}
	}()
	var wg sync.WaitGroup
	var completed, shed atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tk, err := d.Submit(context.Background(), "s", "", lim, func(context.Context) (any, error) {
					time.Sleep(100 * time.Microsecond)
					return nil, nil
				})
				if err != nil {
					if !errors.Is(err, ErrQueueFull) {
						t.Errorf("submit: %v", err)
					}
					shed.Add(1)
					continue
				}
				if _, err := tk.Wait(context.Background()); err != nil {
					t.Errorf("wait: %v", err)
					continue
				}
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	close(stop)
	resizes.Wait()
	d.Resize("s", Limits{Concurrency: 3, QueueDepth: 9})
	st := stat(t, d, "s")
	if st.Workers != 3 || st.QueueCap != 9 {
		t.Errorf("final limits = %d/%d, want 3/9", st.Workers, st.QueueCap)
	}
	if got := completed.Load() + shed.Load(); got != 200 {
		t.Errorf("accounted submissions = %d, want 200", got)
	}
	if completed.Load() == 0 {
		t.Error("no submission completed under concurrent resizing")
	}
}

// slowRuns primes a source's recent-run ring with minRunSamples runs of
// roughly d each.
func slowRuns(t *testing.T, d *Dispatcher, source string, lim Limits, dur time.Duration) {
	t.Helper()
	for i := 0; i < minRunSamples; i++ {
		tk, err := d.Submit(context.Background(), source, "", lim, func(context.Context) (any, error) {
			time.Sleep(dur)
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDeadlineDoomedSubmit pins deadline-aware admission: once a
// source's observed median service time exceeds a submission's remaining
// budget — and the source is busy — Submit fails fast with ErrDeadline
// instead of queueing work doomed to time out.
func TestDeadlineDoomedSubmit(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	lim := Limits{Concurrency: 1, QueueDepth: 8}
	slowRuns(t, d, "s", lim, 20*time.Millisecond)

	// Busy source: the doom check only fires with work in flight.
	release, blocker := occupy(t, d, "s", lim)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	_, err := d.Submit(ctx, "s", "", lim, noop)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("tight-budget submit err = %v, want ErrDeadline", err)
	}
	// A budget comfortably above the median is admitted.
	okCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	tk, err := d.Submit(okCtx, "s", "", lim, noop)
	if err != nil {
		t.Fatalf("roomy-budget submit err = %v, want admission", err)
	}
	close(release)
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(okCtx); err != nil {
		t.Fatal(err)
	}
	st := stat(t, d, "s")
	if st.Doomed != 1 {
		t.Errorf("Doomed = %d, want 1", st.Doomed)
	}
	if st.TypicalRun < 10*time.Millisecond {
		t.Errorf("TypicalRun = %v, want >= 10ms from the primed runs", st.TypicalRun)
	}
	if got := d.Metrics().Counter(obs.L(obs.MDispatchDoomed, "source", "s")).Value(); got != 1 {
		t.Errorf("doomed counter = %d, want 1", got)
	}
}

// TestDeadlineIdleProbeBypass pins the recovery path: a source with a
// slow history but nothing in flight admits even a tight-budget
// submission, so probes keep refreshing the estimate after the source
// recovers instead of the history locking it out forever.
func TestDeadlineIdleProbeBypass(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	lim := Limits{Concurrency: 1, QueueDepth: 8}
	slowRuns(t, d, "s", lim, 20*time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	tk, err := d.Submit(ctx, "s", "", lim, noop) // idle: inflight == 0
	if err != nil {
		t.Fatalf("idle-source submit err = %v, want admission (probe bypass)", err)
	}
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := stat(t, d, "s"); st.Doomed != 0 {
		t.Errorf("Doomed = %d, want 0", st.Doomed)
	}
}

// TestDeadlineNoEstimateAdmits pins that the doom check stays out of the
// way before minRunSamples observations exist.
func TestDeadlineNoEstimateAdmits(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	lim := Limits{Concurrency: 1, QueueDepth: 8}
	release, blocker := occupy(t, d, "s", lim)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	// Busy source, tight budget, but only one run ever: admit.
	tk, err := d.Submit(ctx, "s", "", lim, noop)
	if err != nil {
		t.Fatalf("no-estimate submit err = %v, want admission", err)
	}
	close(release)
	if _, err := blocker.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatalf("admitted task: %v", err)
	}
	if st := stat(t, d, "s"); st.Doomed != 0 {
		t.Errorf("Doomed = %d, want 0", st.Doomed)
	}
}
