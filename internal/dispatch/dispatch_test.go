package dispatch

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"starts/internal/obs"
)

// occupy parks d's single worker for source until release is closed,
// returning once the worker has picked the blocker up.
func occupy(t *testing.T, d *Dispatcher, source string, lim Limits) (release chan struct{}, done *Ticket) {
	t.Helper()
	release = make(chan struct{})
	started := make(chan struct{})
	tk, err := d.Submit(context.Background(), source, "", lim, func(context.Context) (any, error) {
		close(started)
		<-release
		return "blocker", nil
	})
	if err != nil {
		t.Fatalf("blocker submit: %v", err)
	}
	select {
	case <-started:
	case <-time.After(2 * time.Second):
		t.Fatal("worker never picked up the blocker")
	}
	return release, tk
}

// TestQueueFullShedsWithoutBlocking pins the shedding contract: with the
// worker busy and the queue at its depth bound, Submit returns a typed
// ErrQueueFull immediately instead of blocking the caller.
func TestQueueFullShedsWithoutBlocking(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	lim := Limits{Concurrency: 1, QueueDepth: 1}
	release, _ := occupy(t, d, "s", lim)
	defer close(release)

	if _, err := d.Submit(context.Background(), "s", "", lim, noop); err != nil {
		t.Fatalf("queued submit: %v", err)
	}
	start := time.Now()
	_, err := d.Submit(context.Background(), "s", "", lim, noop)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull submit err = %v, want ErrQueueFull", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("shed submit blocked for %v", waited)
	}
	st := stat(t, d, "s")
	if st.QueueFull != 1 {
		t.Errorf("QueueFull = %d, want 1", st.QueueFull)
	}
	// Blocker running, one batch queued, shed submit net zero.
	if st.Depth != 1 {
		t.Errorf("Depth = %d, want 1", st.Depth)
	}
}

// TestAbandonedBatchLeavesPendingMap pins the repending contract: when
// the last waiter abandons a queued batch, the batch must leave the
// pending map with it, so a later identical submit starts a fresh batch
// instead of joining the dead one and inheriting its cancellation.
func TestAbandonedBatchLeavesPendingMap(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	lim := Limits{Concurrency: 1, QueueDepth: 4}
	release, _ := occupy(t, d, "s", lim)

	ctx, cancel := context.WithCancel(context.Background())
	tk, err := d.Submit(ctx, "s", "hot-key", lim, noop)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, werr := tk.Wait(ctx); !errors.Is(werr, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", werr)
	}
	// The same key resubmitted by a live caller must lead a fresh batch,
	// not join the abandoned one and fail despite its own context being
	// fine.
	tk2, err := d.Submit(context.Background(), "s", "hot-key", lim, func(context.Context) (any, error) {
		return "fresh", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tk2.Led() {
		t.Error("second submit joined the abandoned batch instead of leading a fresh one")
	}
	close(release)
	v, werr := tk2.Wait(context.Background())
	if werr != nil || v != "fresh" {
		t.Fatalf("fresh batch = %v, %v; want \"fresh\", nil", v, werr)
	}
	if st := stat(t, d, "s"); st.Cancelled != 1 {
		t.Errorf("Cancelled = %d, want 1", st.Cancelled)
	}
}

// TestBatchCoalescing pins the batching contract: N waiters submitting
// the same key while a batch is pending share ONE wire call, every
// waiter sees its result, exactly one waiter led, and the joins are
// counter-verified both on the Snapshot and the metrics registry.
func TestBatchCoalescing(t *testing.T) {
	reg := obs.NewRegistry()
	d := New(Config{Metrics: reg})
	defer d.Close()
	lim := Limits{Concurrency: 1, QueueDepth: 4}
	release, _ := occupy(t, d, "s", lim)

	var wireCalls atomic.Int64
	const waiters = 8
	tickets := make([]*Ticket, waiters)
	for i := range tickets {
		tk, err := d.Submit(context.Background(), "s", "same-key", lim, func(context.Context) (any, error) {
			wireCalls.Add(1)
			return 42, nil
		})
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
		tickets[i] = tk
	}
	close(release) // let the worker reach the shared batch

	led := 0
	var wg sync.WaitGroup
	for i, tk := range tickets {
		wg.Add(1)
		go func(i int, tk *Ticket) {
			defer wg.Done()
			v, err := tk.Wait(context.Background())
			if err != nil || v != 42 {
				t.Errorf("waiter %d: v=%v err=%v", i, v, err)
			}
		}(i, tk)
		if tk.Led() {
			led++
		}
	}
	wg.Wait()
	if wireCalls.Load() != 1 {
		t.Errorf("wire calls = %d, want 1", wireCalls.Load())
	}
	if led != 1 {
		t.Errorf("leaders = %d, want exactly 1", led)
	}
	if n := tickets[0].Fanout(); n != waiters {
		t.Errorf("Fanout = %d, want %d", n, waiters)
	}
	st := stat(t, d, "s")
	if st.Batched != waiters-1 {
		t.Errorf("Batched = %d, want %d", st.Batched, waiters-1)
	}
	if got := reg.Counter(obs.L(obs.MDispatchBatched, "source", "s")).Value(); got != waiters-1 {
		t.Errorf("batched counter = %d, want %d", got, waiters-1)
	}
	// blocker + batch leader accepted, plus the joiners.
	if st.Submitted != waiters+1 {
		t.Errorf("Submitted = %d, want %d", st.Submitted, waiters+1)
	}
}

// TestRefusedFastDrain pins breaker integration: with the Refuse hook
// reporting the source unavailable, queued batches resolve immediately
// with ErrRefused and their tasks never run — the queue drains fast
// instead of timing out one waiter at a time.
func TestRefusedFastDrain(t *testing.T) {
	var refuse atomic.Bool
	d := New(Config{Refuse: func(source string) bool { return refuse.Load() }})
	defer d.Close()
	lim := Limits{Concurrency: 1, QueueDepth: 8}
	release, _ := occupy(t, d, "s", lim)

	var ran atomic.Int64
	tickets := make([]*Ticket, 5)
	for i := range tickets {
		tk, err := d.Submit(context.Background(), "s", "", lim, func(context.Context) (any, error) {
			ran.Add(1)
			return nil, nil
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets[i] = tk
	}
	refuse.Store(true) // circuit opens while the batches sit queued
	close(release)
	for i, tk := range tickets {
		if _, err := tk.Wait(context.Background()); !errors.Is(err, ErrRefused) {
			t.Errorf("waiter %d err = %v, want ErrRefused", i, err)
		}
	}
	if ran.Load() != 0 {
		t.Errorf("refused tasks ran %d times", ran.Load())
	}
	if st := stat(t, d, "s"); st.Refused != 5 {
		t.Errorf("Refused = %d, want 5", st.Refused)
	}
}

// TestQueuedCancellation pins abandonment of a queued-but-not-started
// batch: the waiter's context ends while the batch waits for a worker,
// Wait returns promptly with the context error, and the worker later
// skips the task entirely.
func TestQueuedCancellation(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	lim := Limits{Concurrency: 1, QueueDepth: 4}
	release, _ := occupy(t, d, "s", lim)

	var ran atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	tk, err := d.Submit(ctx, "s", "", lim, func(context.Context) (any, error) {
		ran.Add(1)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, werr := tk.Wait(ctx); !errors.Is(werr, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", werr)
	}
	close(release)
	// A sentinel task behind the abandoned one proves the worker got past
	// it without running it.
	sentinel, err := d.Submit(context.Background(), "s", "", lim, noop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sentinel.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 0 {
		t.Errorf("abandoned task ran %d times", ran.Load())
	}
	if st := stat(t, d, "s"); st.Cancelled != 1 {
		t.Errorf("Cancelled = %d, want 1", st.Cancelled)
	}
}

// TestAbandonMidRunCancelsTask pins the other cancellation direction: a
// task already running when its last waiter walks away sees its batch
// context end, exactly as an un-dispatched wire call saw its search's
// context end.
func TestAbandonMidRunCancelsTask(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	started := make(chan struct{})
	stopped := make(chan struct{})
	tk, err := d.Submit(context.Background(), "s", "", Limits{Concurrency: 1}, func(tctx context.Context) (any, error) {
		close(started)
		<-tctx.Done()
		close(stopped)
		return nil, tctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, werr := tk.Wait(ctx); !errors.Is(werr, context.Canceled) {
		t.Fatalf("Wait = %v", werr)
	}
	select {
	case <-stopped:
	case <-time.After(2 * time.Second):
		t.Fatal("task did not observe cancellation after its last waiter left")
	}
}

// TestInflightStaysBounded drives many distinct keys through a small
// worker pool and asserts — via the starts_dispatch_inflight gauge the
// tasks themselves sample — that concurrent wire calls never exceed the
// configured per-source bound.
func TestInflightStaysBounded(t *testing.T) {
	reg := obs.NewRegistry()
	d := New(Config{Metrics: reg})
	defer d.Close()
	const bound = 2
	lim := Limits{Concurrency: bound, QueueDepth: 64}
	gauge := reg.Gauge(obs.L(obs.MDispatchInflight, "source", "s"))

	var peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := d.Submit(context.Background(), "s", "", lim, func(context.Context) (any, error) {
				for {
					v := gauge.Value()
					p := peak.Load()
					if v <= p || peak.CompareAndSwap(p, v) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				return i, nil
			})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			if _, err := tk.Wait(context.Background()); err != nil {
				t.Errorf("wait %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p < 1 || p > bound {
		t.Errorf("peak inflight = %d, want within [1, %d]", p, bound)
	}
	if v := gauge.Value(); v != 0 {
		t.Errorf("inflight after drain = %d, want 0", v)
	}
}

// TestTaskPanicContained pins panic containment: a panicking task
// resolves its batch with an error instead of killing the worker, and
// the worker keeps serving.
func TestTaskPanicContained(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	lim := Limits{Concurrency: 1}
	tk, err := d.Submit(context.Background(), "s", "", lim, func(context.Context) (any, error) {
		panic("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, werr := tk.Wait(context.Background()); werr == nil {
		t.Fatal("Wait after panic = nil, want error")
	} else if got := werr.Error(); !strings.Contains(got, "panicked") || !strings.Contains(got, "boom") {
		t.Fatalf("panic error = %q", got)
	}
	// The worker survived: the next task runs normally.
	tk2, err := d.Submit(context.Background(), "s", "", lim, noop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk2.Wait(context.Background()); err != nil {
		t.Fatalf("worker dead after panic: %v", err)
	}
}

// TestCloseRejectsNewWork pins shutdown: Close drains queued work and
// later submissions fail with ErrClosed.
func TestCloseRejectsNewWork(t *testing.T) {
	d := New(Config{})
	tk, err := d.Submit(context.Background(), "s", "", Limits{}, noop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	d.Close()
	d.Close() // idempotent
	if _, err := d.Submit(context.Background(), "s", "", Limits{}, noop); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
}

// TestSnapshotShape pins Snapshot ordering and the effective limits it
// reports, including first-touch-wins queue sizing.
func TestSnapshotShape(t *testing.T) {
	d := New(Config{Limits: Limits{Concurrency: 3, QueueDepth: 7}})
	defer d.Close()
	for _, s := range []string{"b", "a"} {
		tk, err := d.Submit(context.Background(), s, "", Limits{}, noop)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// A later submit with different limits must not resize "a"'s queue.
	tk, err := d.Submit(context.Background(), "a", "", Limits{Concurrency: 9, QueueDepth: 9}, noop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats := d.Snapshot()
	if len(stats) != 2 || stats[0].Source != "a" || stats[1].Source != "b" {
		t.Fatalf("snapshot = %+v, want sources [a b]", stats)
	}
	for _, st := range stats {
		if st.Workers != 3 || st.QueueCap != 7 {
			t.Errorf("%s limits = %d/%d, want 3/7", st.Source, st.Workers, st.QueueCap)
		}
		if st.Depth != 0 || st.Inflight != 0 {
			t.Errorf("%s not drained: %+v", st.Source, st)
		}
	}
}

func noop(context.Context) (any, error) { return nil, nil }

func stat(t *testing.T, d *Dispatcher, source string) QueueStat {
	t.Helper()
	for _, st := range d.Snapshot() {
		if st.Source == source {
			return st
		}
	}
	t.Fatalf("no queue for %q", source)
	return QueueStat{}
}
