package dispatch

import (
	"context"
	"fmt"
)

// MuxExec evaluates a drained group of queued items in one wire call.
// It must return exactly one value or error per item, index-aligned
// (exactly one of vals[i], errs[i] meaningful per item — a nil errs[i]
// means vals[i] is the item's result). The items are whatever the
// submitters passed to SubmitMux, so the dispatcher stays agnostic of
// the wire payload; the conn middleware passes queries and gets results.
//
// One group runs one exec — the leader batch's — under a merged context
// that stays live while any member still has a waiter, so per-item
// abandonment never kills the shared call early.
type MuxExec func(ctx context.Context, items []any) (vals []any, errs []error)

// SubmitMux enqueues one multiplexable item for the source. It behaves
// exactly like Submit — same admission, coalescing by key, shedding and
// Ticket semantics — but marks the work as wire-batchable: when a worker
// picks it up it drains further SubmitMux work for the same source (up
// to the live MaxBatchWire bound) and issues one exec call for the whole
// drain, fanning the per-item results back to each ticket's waiters.
//
// Per-item failure semantics survive the multiplexing: each ticket
// resolves with its own item's error, and Ticket.FaultPrimary
// distinguishes the one member whose failure should feed per-call
// accounting (a circuit breaker) from members that merely shared the
// wire call.
func (d *Dispatcher) SubmitMux(ctx context.Context, source, key string, lim Limits, item any, exec MuxExec) (*Ticket, error) {
	if exec == nil {
		return nil, fmt.Errorf("dispatch: SubmitMux requires an exec")
	}
	q, err := d.queueFor(source, lim)
	if err != nil {
		return nil, err
	}
	return q.submit(ctx, key, nil, item, exec)
}

// runGroup resolves a drained group of mux batches with a single exec
// call. Members already abandoned or refused resolve inline first; the
// survivors run under a merged context derived from the leader's (its
// trace and metrics values) that is cancelled only once every member's
// own batch context has ended — so as long as one member has a live
// waiter, the shared wire call keeps running.
func (q *queue) runGroup(group []*batch) {
	now := q.d.cfg.Now
	active := make([]*batch, 0, len(group))
	for _, b := range group {
		b.waited = now().Sub(b.enqueued)
		q.hWait.Observe(b.waited)
		switch {
		case b.ctx.Err() != nil:
			b.err = fmt.Errorf("dispatch: %s: batch abandoned before start: %w", q.source, context.Cause(b.ctx))
			q.cancelled.Add(1)
			q.cCancelled.Inc()
			q.resolve(b)
		case q.d.cfg.Refuse != nil && q.d.cfg.Refuse(q.source):
			b.err = fmt.Errorf("%w: %s", ErrRefused, q.source)
			q.refused.Add(1)
			q.cRefused.Inc()
			q.resolve(b)
		default:
			active = append(active, b)
		}
	}
	if len(active) == 0 {
		return
	}
	leader := active[0]
	gctx, gcancel := context.WithCancel(context.WithoutCancel(leader.ctx))
	go func() {
		// Each member's context ends either when its last waiter abandons
		// it or when resolve cancels it after the run, so this watcher
		// always terminates — and cancels the shared call early exactly
		// when nobody is waiting for any member anymore.
		for _, b := range active {
			<-b.ctx.Done()
		}
		gcancel()
	}()
	items := make([]any, len(active))
	for i, b := range active {
		items[i] = b.item
	}
	q.gInflight.Add(1)
	start := now()
	var (
		vals     []any
		errs     []error
		panicErr error
	)
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicErr = fmt.Errorf("dispatch: %s: mux exec panicked: %v", q.source, r)
			}
		}()
		vals, errs = leader.exec(gctx, items)
	}()
	ran := now().Sub(start)
	q.hRun.Observe(ran)
	q.recordRun(ran)
	q.gInflight.Add(-1)
	q.countWire(len(active))
	if panicErr == nil && (len(vals) != len(active) || len(errs) != len(active)) {
		panicErr = fmt.Errorf("dispatch: %s: mux exec returned %d values, %d errors for %d items",
			q.source, len(vals), len(errs), len(active))
	}
	faultTaken := false
	for i, b := range active {
		b.ran = ran
		if panicErr != nil {
			b.err = panicErr
		} else {
			b.val, b.err = vals[i], errs[i]
		}
		// Exactly one failed member is the wire call's primary fault; the
		// rest merely shared the call and must not double-count against
		// per-call accounting such as a breaker's failure threshold.
		b.faultPrimary = b.err != nil && !faultTaken
		if b.err != nil {
			faultTaken = true
		}
		q.resolve(b)
	}
}

// FaultPrimary reports whether this ticket's failure should feed
// per-wire-call accounting (a circuit breaker's Record). It is true for
// a single-task batch (the batch is its own wire call), for the first
// failed member of a multiplexed group, and for an unresolved batch (a
// waiter that timed out waiting still charges the source, as it did
// before wire multiplexing). Successful members report false, but a
// nil-error outcome should feed success accounting regardless — gate
// only the failure path on FaultPrimary.
func (t *Ticket) FaultPrimary() bool {
	if !t.resolved() {
		return true
	}
	return t.b.faultPrimary
}
