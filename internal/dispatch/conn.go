package dispatch

import (
	"context"

	"starts/internal/meta"
	"starts/internal/qcache"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/source"
)

// SourceConn is the source-connection interface the dispatching
// middleware wraps. It is structurally identical to client.Conn (and
// qcache.SourceConn); dispatch declares its own copy so the dependency
// keeps pointing outward.
type SourceConn interface {
	SourceID() string
	Metadata(ctx context.Context) (*meta.SourceMeta, error)
	Summary(ctx context.Context) (*meta.ContentSummary, error)
	Sample(ctx context.Context) ([]*source.SampleEntry, error)
	Query(ctx context.Context, q *query.Query) (*result.Results, error)
}

// Conn routes every call on a source connection through a Dispatcher:
// calls queue per source, run on the source's bounded workers, and
// identical in-flight calls coalesce into one. Compose it as the
// outermost structural layer — outside the per-source cache, so
// concurrent identical misses (and harvests) are deduplicated before
// they can stampede anything below.
type Conn struct {
	inner SourceConn
	d     *Dispatcher
	lim   Limits
	keyer qcache.Keyer
}

// WrapConn wraps inner so its traffic flows through d under the source's
// limits (zero Limits fields take the dispatcher's defaults). A
// batch-capable inner (BatchSourceConn) gets the batch-capable wrapper,
// whose Query multiplexes distinct queued queries onto shared wire
// calls; any other inner gets the plain per-call wrapper.
func WrapConn(inner SourceConn, d *Dispatcher, lim Limits) SourceConn {
	if bi, ok := inner.(BatchSourceConn); ok {
		return WrapBatchConn(bi, d, lim)
	}
	return newConn(inner, d, lim)
}

func newConn(inner SourceConn, d *Dispatcher, lim Limits) *Conn {
	return &Conn{
		inner: inner,
		d:     d,
		lim:   lim,
		keyer: qcache.Keyer{Scope: "dispatch/" + inner.SourceID()},
	}
}

// SourceID identifies the wrapped source.
func (c *Conn) SourceID() string { return c.inner.SourceID() }

// do submits one call and waits for its (possibly shared) result.
func (c *Conn) do(ctx context.Context, key string, fn Task) (any, error) {
	t, err := c.d.Submit(ctx, c.inner.SourceID(), key, c.lim, fn)
	if err != nil {
		return nil, err
	}
	return t.Wait(ctx)
}

// Metadata fetches the source's metadata; concurrent fetches coalesce.
func (c *Conn) Metadata(ctx context.Context) (*meta.SourceMeta, error) {
	v, err := c.do(ctx, "metadata", func(tctx context.Context) (any, error) {
		return c.inner.Metadata(tctx)
	})
	if err != nil {
		return nil, err
	}
	return v.(*meta.SourceMeta), nil
}

// Summary fetches the source's content summary; concurrent fetches
// coalesce.
func (c *Conn) Summary(ctx context.Context) (*meta.ContentSummary, error) {
	v, err := c.do(ctx, "summary", func(tctx context.Context) (any, error) {
		return c.inner.Summary(tctx)
	})
	if err != nil {
		return nil, err
	}
	return v.(*meta.ContentSummary), nil
}

// Sample fetches the source's sample-database results; concurrent
// fetches coalesce.
func (c *Conn) Sample(ctx context.Context) ([]*source.SampleEntry, error) {
	v, err := c.do(ctx, "sample", func(tctx context.Context) (any, error) {
		return c.inner.Sample(tctx)
	})
	if err != nil {
		return nil, err
	}
	return v.([]*source.SampleEntry), nil
}

// Query evaluates q at the source. Identical in-flight queries (by
// canonical fingerprint) share one wire call; a shared result is cloned
// per waiter because rank merging mutates documents.
func (c *Conn) Query(ctx context.Context, q *query.Query) (*result.Results, error) {
	t, err := c.d.Submit(ctx, c.inner.SourceID(), c.keyer.Key(q), c.lim,
		func(tctx context.Context) (any, error) {
			return c.inner.Query(tctx, q)
		})
	if err != nil {
		return nil, err
	}
	v, err := t.Wait(ctx)
	if err != nil {
		return nil, err
	}
	res := v.(*result.Results)
	if t.Fanout() > 1 {
		res = res.Clone()
	}
	return res, nil
}
