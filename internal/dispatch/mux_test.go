package dispatch

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// muxExec returns a MuxExec echoing each item, counting calls and the
// sizes of the groups it saw.
func muxExec(calls *atomic.Int64, sizes chan<- int) MuxExec {
	return func(ctx context.Context, items []any) ([]any, []error) {
		calls.Add(1)
		if sizes != nil {
			sizes <- len(items)
		}
		vals := make([]any, len(items))
		copy(vals, items)
		return vals, make([]error, len(items))
	}
}

// TestSubmitMuxDrainsQueueIntoOneWireCall pins the tentpole behavior:
// with the single worker parked, N distinct mux submissions queue up and
// the freed worker drains them all into ONE exec call, each ticket
// getting its own item's value back.
func TestSubmitMuxDrainsQueueIntoOneWireCall(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	lim := Limits{Concurrency: 1, QueueDepth: 16}
	release, _ := occupy(t, d, "s", lim)

	const n = 5
	var calls atomic.Int64
	sizes := make(chan int, n)
	exec := muxExec(&calls, sizes)
	tickets := make([]*Ticket, n)
	for i := 0; i < n; i++ {
		tk, err := d.SubmitMux(context.Background(), "s", fmt.Sprintf("k%d", i), lim, i, exec)
		if err != nil {
			t.Fatalf("SubmitMux %d: %v", i, err)
		}
		tickets[i] = tk
	}
	close(release)
	for i, tk := range tickets {
		v, err := tk.Wait(context.Background())
		if err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
		if v.(int) != i {
			t.Errorf("ticket %d resolved with item %v", i, v)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("exec calls = %d, want 1 for a %d-item drain", got, n)
	}
	if got := <-sizes; got != n {
		t.Errorf("drained group size = %d, want %d", got, n)
	}
	// Wire stats count every wire call: the blocker (1 call, 1 item)
	// plus ONE call for the whole n-item drain.
	st := stat(t, d, "s")
	if st.WireCalls != 2 || st.WireItems != n+1 {
		t.Errorf("wire stats = %d calls / %d items, want 2/%d", st.WireCalls, st.WireItems, n+1)
	}
}

// TestSubmitMuxRespectsMaxBatchWire pins the drain bound: a queue deeper
// than MaxBatchWire splits into wire calls no larger than the bound.
func TestSubmitMuxRespectsMaxBatchWire(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	lim := Limits{Concurrency: 1, QueueDepth: 16, MaxBatchWire: 2}
	release, _ := occupy(t, d, "s", lim)

	const n = 6
	var calls atomic.Int64
	sizes := make(chan int, n)
	exec := muxExec(&calls, sizes)
	tickets := make([]*Ticket, n)
	for i := 0; i < n; i++ {
		tk, err := d.SubmitMux(context.Background(), "s", fmt.Sprintf("k%d", i), lim, i, exec)
		if err != nil {
			t.Fatalf("SubmitMux %d: %v", i, err)
		}
		tickets[i] = tk
	}
	close(release)
	for i, tk := range tickets {
		if _, err := tk.Wait(context.Background()); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}
	close(sizes)
	for size := range sizes {
		if size > 2 {
			t.Errorf("drained group of %d items exceeds MaxBatchWire 2", size)
		}
	}
	st := stat(t, d, "s")
	if st.WireItems != n+1 { // n drained items + the blocker
		t.Errorf("wire items = %d, want %d", st.WireItems, n+1)
	}
	if st.WireCalls < n/2+1 {
		t.Errorf("wire calls = %d, want at least %d with MaxBatchWire 2", st.WireCalls, n/2+1)
	}
}

// TestSubmitMuxCoalescesIdenticalKeys pins that fingerprint coalescing
// survives the mux path: identical in-flight keys still share one
// ticket-resolved value rather than occupying two group slots.
func TestSubmitMuxCoalescesIdenticalKeys(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	lim := Limits{Concurrency: 1, QueueDepth: 16}
	release, _ := occupy(t, d, "s", lim)

	var calls atomic.Int64
	sizes := make(chan int, 2)
	exec := muxExec(&calls, sizes)
	a, err := d.SubmitMux(context.Background(), "s", "same", lim, "x", exec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.SubmitMux(context.Background(), "s", "same", lim, "x", exec)
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	va, err := a.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	vb, err := b.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if va.(string) != "x" || vb.(string) != "x" {
		t.Errorf("coalesced values = %v, %v", va, vb)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("exec calls = %d, want 1", got)
	}
	if got := <-sizes; got != 1 {
		t.Errorf("group size = %d, want 1 (identical keys coalesce, not multiplex)", got)
	}
	if fo := a.Fanout(); fo != 2 {
		t.Errorf("fanout = %d, want 2", fo)
	}
}

// TestFaultPrimaryChargesOneMemberPerWireCall pins the breaker-feed
// contract: when a multiplexed wire call fails several members, exactly
// one of the failed tickets is the primary fault; successful members
// report false, and a single-task batch reports true.
func TestFaultPrimaryChargesOneMemberPerWireCall(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	lim := Limits{Concurrency: 1, QueueDepth: 16}
	release, _ := occupy(t, d, "s", lim)

	// Items 0 and 2 fail, item 1 succeeds.
	exec := func(ctx context.Context, items []any) ([]any, []error) {
		vals := make([]any, len(items))
		errs := make([]error, len(items))
		for i, it := range items {
			if it.(int)%2 == 0 {
				errs[i] = errors.New("wire fault")
			} else {
				vals[i] = it
			}
		}
		return vals, errs
	}
	const n = 3
	tickets := make([]*Ticket, n)
	for i := 0; i < n; i++ {
		tk, err := d.SubmitMux(context.Background(), "s", fmt.Sprintf("k%d", i), lim, i, exec)
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	close(release)
	primaries := 0
	for i, tk := range tickets {
		_, err := tk.Wait(context.Background())
		switch i {
		case 1:
			if err != nil {
				t.Errorf("item 1: %v, want success", err)
			}
			if tk.FaultPrimary() {
				t.Error("successful member reports FaultPrimary")
			}
		default:
			if err == nil || !strings.Contains(err.Error(), "wire fault") {
				t.Errorf("item %d err = %v, want wire fault", i, err)
			}
			if tk.FaultPrimary() {
				primaries++
			}
		}
	}
	if primaries != 1 {
		t.Errorf("primary faults = %d, want exactly 1 per wire call", primaries)
	}

	// A single-task mux batch is its own wire call: its failure is always
	// primary.
	tk, err := d.SubmitMux(context.Background(), "s", "solo", lim, 0, exec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(context.Background()); err == nil {
		t.Fatal("solo item should fail")
	}
	if !tk.FaultPrimary() {
		t.Error("single-task batch failure must be primary")
	}
}

// TestMuxExecPanicFailsGroupNotWorker pins panic containment: a
// panicking exec resolves every member with an error instead of killing
// the worker goroutine, and the queue keeps serving afterwards.
func TestMuxExecPanicFailsGroupNotWorker(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	lim := Limits{Concurrency: 1, QueueDepth: 16}
	release, _ := occupy(t, d, "s", lim)

	boom := func(ctx context.Context, items []any) ([]any, []error) {
		panic("exec exploded")
	}
	a, err := d.SubmitMux(context.Background(), "s", "a", lim, 1, boom)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.SubmitMux(context.Background(), "s", "b", lim, 2, boom)
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	for i, tk := range []*Ticket{a, b} {
		if _, err := tk.Wait(context.Background()); err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Errorf("member %d err = %v, want contained panic", i, err)
		}
	}
	// The worker survived: plain work still runs.
	tk, err := d.Submit(context.Background(), "s", "", lim, func(context.Context) (any, error) { return "ok", nil })
	if err != nil {
		t.Fatal(err)
	}
	v, err := tk.Wait(context.Background())
	if err != nil || v.(string) != "ok" {
		t.Fatalf("post-panic submit = (%v, %v)", v, err)
	}
}

// TestRunGroupSkipsAbandonedMembers pins that a member whose waiters all
// left before the drain ran resolves as cancelled and is NOT handed to
// the exec — the group shrinks instead.
func TestRunGroupSkipsAbandonedMembers(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	lim := Limits{Concurrency: 1, QueueDepth: 16}
	release, _ := occupy(t, d, "s", lim)

	var calls atomic.Int64
	sizes := make(chan int, 2)
	exec := muxExec(&calls, sizes)
	ctx, cancel := context.WithCancel(context.Background())
	doomed, err := d.SubmitMux(ctx, "s", "doomed", lim, "doomed", exec)
	if err != nil {
		t.Fatal(err)
	}
	live, err := d.SubmitMux(context.Background(), "s", "live", lim, "live", exec)
	if err != nil {
		t.Fatal(err)
	}
	cancel() // abandon the first member before the worker frees up
	if _, err := doomed.Wait(ctx); err == nil {
		t.Fatal("abandoned member should resolve with an error")
	}
	close(release)
	v, err := live.Wait(context.Background())
	if err != nil {
		t.Fatalf("live member: %v", err)
	}
	if v.(string) != "live" {
		t.Errorf("live member value = %v", v)
	}
	if got := <-sizes; got != 1 {
		t.Errorf("group size = %d, want 1 (abandoned member excluded)", got)
	}
}

// TestGroupContextOutlivesMemberAbandon pins the merged-context rule:
// one member abandoning mid-run must NOT cancel the shared wire call
// while another member still waits.
func TestGroupContextOutlivesMemberAbandon(t *testing.T) {
	d := New(Config{})
	defer d.Close()
	lim := Limits{Concurrency: 1, QueueDepth: 16}
	release, _ := occupy(t, d, "s", lim)

	started := make(chan struct{})
	finish := make(chan struct{})
	var sawCancel atomic.Bool
	exec := func(ctx context.Context, items []any) ([]any, []error) {
		close(started)
		select {
		case <-finish:
		case <-ctx.Done():
			sawCancel.Store(true)
		}
		vals := make([]any, len(items))
		copy(vals, items)
		return vals, make([]error, len(items))
	}
	ctx, cancel := context.WithCancel(context.Background())
	quitter, err := d.SubmitMux(ctx, "s", "quitter", lim, "q", exec)
	if err != nil {
		t.Fatal(err)
	}
	stayer, err := d.SubmitMux(context.Background(), "s", "stayer", lim, "st", exec)
	if err != nil {
		t.Fatal(err)
	}
	close(release)
	select {
	case <-started:
	case <-time.After(2 * time.Second):
		t.Fatal("exec never started")
	}
	// The quitter walks away mid-run; the stayer still waits.
	cancel()
	if _, err := quitter.Wait(ctx); err == nil {
		t.Error("quitter should resolve with its abandonment error")
	}
	time.Sleep(20 * time.Millisecond) // give a wrong implementation time to cancel
	close(finish)
	v, err := stayer.Wait(context.Background())
	if err != nil {
		t.Fatalf("stayer: %v", err)
	}
	if v.(string) != "st" {
		t.Errorf("stayer value = %v", v)
	}
	if sawCancel.Load() {
		t.Error("group context was cancelled while a member still waited")
	}
}
