// Package dispatch owns all per-source traffic of a metasearcher: one
// bounded work queue plus worker pool per source, with cross-search
// batching that coalesces identical in-flight sub-queries destined for
// the same source into a single wire call whose result is fanned back to
// every waiter.
//
// The paper's metasearcher model (Figure 1) puts one logical channel
// between the metasearcher and each source; before this package the core
// spawned a fresh goroutine per (query, source) pair, so a slow source
// accumulated unbounded in-flight work and identical sub-queries were
// sent redundantly. The dispatcher inverts that ownership: each source
// owns a bounded worker pool, searches merely submit work and wait on a
// Ticket. Submission is non-blocking — a full queue sheds with a typed
// ErrQueueFull, and a submission whose remaining context budget cannot
// cover the source's observed typical service time sheds with a typed
// ErrDeadline instead of queueing doomed work — and a Refuse hook lets a
// circuit breaker fast-drain the queue of an open source instead of
// timing out each waiter. Both per-source bounds (worker count and
// queue depth) are live: Resize retunes them while traffic flows, the
// seam the adaptive admission controller (internal/adaptive) closes its
// AIMD loop through.
//
// Batching reuses the qcache singleflight shape (pending map, done
// channel, delete-before-close) one level below the answer cache: keys
// are per-source fingerprints of the translated sub-query, so two
// different user queries that translate identically for a source still
// share one wire call.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"starts/internal/obs"
)

// Default per-source bounds, used when Limits leave a field zero.
const (
	// DefaultConcurrency is the default worker count per source.
	DefaultConcurrency = 4
	// DefaultQueueDepth is the default bound on batches waiting per
	// source before Submit sheds with ErrQueueFull.
	DefaultQueueDepth = 64
	// DefaultMaxBatchWire is the default bound on queued mux submissions
	// a worker drains into one wire call (see SubmitMux).
	DefaultMaxBatchWire = 16
)

// Typed dispatch failures, detectable with errors.Is.
var (
	// ErrQueueFull is returned by Submit when a source's queue is at its
	// depth bound; the caller was shed without blocking.
	ErrQueueFull = errors.New("dispatch: source queue full")
	// ErrRefused resolves a batch whose source's Refuse hook reported it
	// unavailable (typically a circuit breaker in the open state): the
	// queue drains fast instead of timing out each waiter.
	ErrRefused = errors.New("dispatch: source refused")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("dispatch: dispatcher closed")
	// ErrDeadline is returned by Submit when the caller's remaining
	// context budget cannot cover the source's observed typical (median)
	// service time: the call was doomed to time out, so it fails fast
	// instead of occupying queue and worker capacity on its way to a
	// deadline error. Submissions to an idle source are always admitted,
	// so a recovered source is re-probed instead of locked out by its own
	// history.
	ErrDeadline = errors.New("dispatch: deadline too tight for source")
)

// minRunSamples is how many recent run durations the deadline check
// needs before it trusts its service-time estimate; below it every
// submission is admitted.
const minRunSamples = 8

// runRingSize bounds the recent-run ring: large enough to smooth jitter,
// small enough that a recovered source's faster runs dominate the
// estimate within a few calls.
const runRingSize = 32

// Task is one unit of per-source work: typically a single wire call. It
// runs on a source-owned worker goroutine under a batch context that
// carries the submitting leader's trace and metrics but detaches its
// cancellation; the context ends early only when every waiter has
// abandoned the batch.
type Task func(ctx context.Context) (any, error)

// Limits bound one source's queue: how many workers serve it and how
// many batches may wait. Zero fields take the dispatcher's configured
// defaults (and ultimately DefaultConcurrency/DefaultQueueDepth). A
// source's queue is created on first submit with the limits in effect
// then; later submits with different limits do not resize it — only
// Resize does, which is how an adaptive controller tightens a degraded
// source's bounds and re-opens them on recovery.
type Limits struct {
	// Concurrency is the worker count: the hard bound on the source's
	// in-flight wire calls.
	Concurrency int
	// QueueDepth bounds batches waiting for a worker.
	QueueDepth int
	// MaxBatchWire bounds how many queued mux submissions (SubmitMux) a
	// worker drains into a single wire call. 1 disables wire batching;
	// zero takes the default (DefaultMaxBatchWire).
	MaxBatchWire int
}

// withDefaults fills zero fields from fallback, then from the package
// defaults.
func (l Limits) withDefaults(fallback Limits) Limits {
	if l.Concurrency <= 0 {
		l.Concurrency = fallback.Concurrency
	}
	if l.Concurrency <= 0 {
		l.Concurrency = DefaultConcurrency
	}
	if l.QueueDepth <= 0 {
		l.QueueDepth = fallback.QueueDepth
	}
	if l.QueueDepth <= 0 {
		l.QueueDepth = DefaultQueueDepth
	}
	if l.MaxBatchWire <= 0 {
		l.MaxBatchWire = fallback.MaxBatchWire
	}
	if l.MaxBatchWire <= 0 {
		l.MaxBatchWire = DefaultMaxBatchWire
	}
	return l
}

// Config configures a Dispatcher. The zero value is usable.
type Config struct {
	// Limits are the per-source defaults for queues whose Submit passes
	// zero Limits fields.
	Limits Limits
	// Refuse, when set, is consulted by a worker before running a batch:
	// true resolves the batch immediately with ErrRefused. Wire a circuit
	// breaker's open-state check here so a broken source's queue drains
	// fast. It must be safe for concurrent use.
	Refuse func(source string) bool
	// Metrics receives the starts_dispatch_* counters, gauges and
	// histograms; nil allocates a private registry.
	Metrics *obs.Registry
	// Now overrides the clock for wait/run timing, so tests with frozen
	// clocks stay deterministic.
	Now func() time.Time
}

// Dispatcher routes per-source work through bounded, batching queues.
// All methods are safe for concurrent use.
type Dispatcher struct {
	cfg Config

	mu     sync.Mutex
	queues map[string]*queue
	closed bool
}

// New returns a dispatcher for the config.
func New(cfg Config) *Dispatcher {
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Dispatcher{cfg: cfg, queues: map[string]*queue{}}
}

// Metrics returns the registry the dispatcher records into.
func (d *Dispatcher) Metrics() *obs.Registry { return d.cfg.Metrics }

// Submit enqueues fn for the source, or joins an in-flight batch with
// the same non-empty key (one wire call fans back to all waiters; keys
// must identify the work, e.g. a fingerprint of the translated query —
// an empty key never coalesces). It never blocks: a queue at its depth
// bound sheds with ErrQueueFull. On success the caller must consume the
// returned Ticket with Wait.
func (d *Dispatcher) Submit(ctx context.Context, source, key string, lim Limits, fn Task) (*Ticket, error) {
	q, err := d.queueFor(source, lim)
	if err != nil {
		return nil, err
	}
	return q.submit(ctx, key, fn, nil, nil)
}

// queueFor returns the source's queue, creating it (and starting its
// pump) on first touch.
func (d *Dispatcher) queueFor(source string, lim Limits) (*queue, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	q := d.queues[source]
	if q == nil {
		q = newQueue(d, source, lim.withDefaults(d.cfg.Limits))
		d.queues[source] = q
		go q.pump()
	}
	return q, nil
}

// Resize changes a source's live limits: Concurrency adjusts the
// in-flight bound (a shrink below the current in-flight count starts no
// new tasks until enough running ones finish; none are interrupted) and
// QueueDepth adjusts the admission bound (a shrink sheds new submissions
// until the queue drains below it; queued batches are kept). Zero fields
// take the dispatcher's configured defaults. QueueDepth is clamped to
// the queue's fixed channel capacity (at least queueHardCap), chosen at
// creation. It reports whether the source had a queue to resize — only
// sources already submitted to can be resized.
func (d *Dispatcher) Resize(source string, lim Limits) bool {
	d.mu.Lock()
	q := d.queues[source]
	closed := d.closed
	d.mu.Unlock()
	if q == nil || closed {
		return false
	}
	q.resize(lim.withDefaults(d.cfg.Limits))
	return true
}

// semaphore is a resizable counting semaphore: acquire blocks while held
// >= limit, and setLimit retunes the bound live — lowering it below the
// held count blocks new acquires until enough releases land, without
// interrupting current holders.
type semaphore struct {
	mu    sync.Mutex
	cond  *sync.Cond
	limit int
	held  int
}

func newSemaphore(limit int) *semaphore {
	s := &semaphore{limit: limit}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *semaphore) acquire() {
	s.mu.Lock()
	for s.held >= s.limit {
		s.cond.Wait()
	}
	s.held++
	s.mu.Unlock()
}

func (s *semaphore) release() {
	s.mu.Lock()
	s.held--
	s.mu.Unlock()
	s.cond.Signal()
}

// free reports how many slots an acquire would win without waiting
// (zero while a shrink leaves more holders than the new limit).
func (s *semaphore) free() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := s.limit - s.held; n > 0 {
		return n
	}
	return 0
}

func (s *semaphore) setLimit(n int) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	grew := n > s.limit
	s.limit = n
	s.mu.Unlock()
	if grew {
		s.cond.Broadcast()
	}
}

// QueueStat is one source queue's live state and lifetime counters, for
// debug endpoints and tests.
type QueueStat struct {
	// Source is the source ID the queue serves.
	Source string `json:"source"`
	// Workers and QueueCap echo the queue's live Limits (the bounds an
	// adaptive Resize last applied, or the creation-time ones).
	Workers  int `json:"workers"`
	QueueCap int `json:"queue_cap"`
	// Depth is the number of batches currently waiting for a worker.
	Depth int64 `json:"depth"`
	// Inflight is the number of tasks currently running on workers.
	Inflight int64 `json:"inflight"`
	// Submitted counts accepted submissions (leaders plus joiners);
	// Batched counts the joiners among them, so Submitted-Batched is the
	// number of wire calls attempted.
	Submitted int64 `json:"submitted"`
	Batched   int64 `json:"batched"`
	// QueueFull counts submissions shed with ErrQueueFull.
	QueueFull int64 `json:"queue_full"`
	// Refused counts batches fast-drained with ErrRefused.
	Refused int64 `json:"refused"`
	// Cancelled counts batches whose every waiter abandoned them before
	// a worker picked them up.
	Cancelled int64 `json:"cancelled"`
	// Doomed counts submissions refused with ErrDeadline because their
	// remaining context budget could not cover the source's observed
	// typical service time.
	Doomed int64 `json:"doomed"`
	// WireCalls counts wire calls actually issued; WireItems counts the
	// queue items they carried (a multiplexed drain contributes one call
	// and several items, so 1 - WireCalls/WireItems is the batched-wire
	// ratio).
	WireCalls int64 `json:"wire_calls"`
	WireItems int64 `json:"wire_items"`
	// TypicalRun is the source's current median observed service time (0
	// until enough runs are recorded) — the estimate the deadline check
	// admits against.
	TypicalRun time.Duration `json:"typical_run_ns"`
}

// Snapshot reports every source queue's stats, sorted by source ID.
func (d *Dispatcher) Snapshot() []QueueStat {
	d.mu.Lock()
	qs := make([]*queue, 0, len(d.queues))
	for _, q := range d.queues {
		qs = append(qs, q)
	}
	d.mu.Unlock()
	stats := make([]QueueStat, len(qs))
	for i, q := range qs {
		stats[i] = q.stat()
	}
	for i := 1; i < len(stats); i++ {
		for j := i; j > 0 && stats[j].Source < stats[j-1].Source; j-- {
			stats[j], stats[j-1] = stats[j-1], stats[j]
		}
	}
	return stats
}

// Close stops accepting submissions and lets workers drain the batches
// already queued. It is safe to call more than once.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	qs := make([]*queue, 0, len(d.queues))
	for _, q := range d.queues {
		qs = append(qs, q)
	}
	d.mu.Unlock()
	for _, q := range qs {
		q.mu.Lock()
		q.closed = true
		q.mu.Unlock()
		close(q.ch)
	}
}

// queueHardCap is the minimum channel capacity a queue is created with.
// The channel is allocated once (channels cannot be resized), so the
// admission bound lives in a counter checked at submit time and the
// channel only needs room for any bound a later Resize might set.
const queueHardCap = 1024

// queue is one source's bounded channel of batches plus the pump that
// hands them to a resizable worker pool.
type queue struct {
	d      *Dispatcher
	source string
	ch     chan *batch
	sem    *semaphore

	mu      sync.Mutex
	lim     Limits            // live bounds; mutated only by resize
	pending map[string]*batch // key -> in-flight batch accepting joiners
	closed  bool

	// depth counts batches between submit and pump pickup. Incremented
	// under mu (so the admission check never over-admits), decremented by
	// the pump without mu — a stale-high read only sheds early, never
	// over-fills.
	depth atomic.Int64

	// runMu guards the recent-run ring feeding the deadline check.
	runMu sync.Mutex
	runs  [runRingSize]time.Duration
	runN  int

	submitted, batched, queueFull, refused, cancelled, doomed atomic.Int64
	wireCalls, wireItems                                      atomic.Int64

	cSubmitted, cBatched, cQueueFull, cRefused, cCancelled, cDoomed *obs.Counter
	cWireCalls, cWireItems                                          *obs.Counter
	gDepth, gInflight, gConcLimit, gQueueLimit                      *obs.Gauge
	hWait, hRun, hWireSize                                          *obs.Histogram
}

// wireSizeBounds are the bucket bounds of the items-per-wire-call
// histogram: counts, not durations (a size n is observed as
// time.Duration(n)).
var wireSizeBounds = []time.Duration{1, 2, 4, 8, 16, 32, 64}

func newQueue(d *Dispatcher, source string, lim Limits) *queue {
	reg := d.cfg.Metrics
	l := func(name string) string { return obs.L(name, "source", source) }
	hard := lim.QueueDepth
	if hard < queueHardCap {
		hard = queueHardCap
	}
	q := &queue{
		d:           d,
		source:      source,
		lim:         lim,
		ch:          make(chan *batch, hard),
		sem:         newSemaphore(lim.Concurrency),
		pending:     map[string]*batch{},
		cSubmitted:  reg.Counter(l(obs.MDispatchSubmitted)),
		cBatched:    reg.Counter(l(obs.MDispatchBatched)),
		cQueueFull:  reg.Counter(l(obs.MDispatchQueueFull)),
		cRefused:    reg.Counter(l(obs.MDispatchRefused)),
		cCancelled:  reg.Counter(l(obs.MDispatchCancelled)),
		cDoomed:     reg.Counter(l(obs.MDispatchDoomed)),
		cWireCalls:  reg.Counter(l(obs.MDispatchWireCalls)),
		cWireItems:  reg.Counter(l(obs.MDispatchWireItems)),
		gDepth:      reg.Gauge(l(obs.MDispatchQueueDepth)),
		gInflight:   reg.Gauge(l(obs.MDispatchInflight)),
		gConcLimit:  reg.Gauge(l(obs.MDispatchConcurrencyLimit)),
		gQueueLimit: reg.Gauge(l(obs.MDispatchQueueLimit)),
		hWait:       reg.Histogram(l(obs.MDispatchWaitSeconds)),
		hRun:        reg.Histogram(l(obs.MDispatchRunSeconds)),
		hWireSize:   reg.HistogramBuckets(l(obs.MDispatchWireSize), wireSizeBounds),
	}
	q.gConcLimit.Set(int64(lim.Concurrency))
	q.gQueueLimit.Set(int64(lim.QueueDepth))
	return q
}

// resize applies new live bounds (see Dispatcher.Resize for semantics).
func (q *queue) resize(lim Limits) {
	if hard := cap(q.ch); lim.QueueDepth > hard {
		lim.QueueDepth = hard
	}
	q.mu.Lock()
	q.lim = lim
	q.mu.Unlock()
	q.sem.setLimit(lim.Concurrency)
	q.gConcLimit.Set(int64(lim.Concurrency))
	q.gQueueLimit.Set(int64(lim.QueueDepth))
}

// limits reads the live bounds.
func (q *queue) limits() Limits {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.lim
}

// recordRun feeds one observed service time into the deadline check's
// ring.
func (q *queue) recordRun(d time.Duration) {
	q.runMu.Lock()
	q.runs[q.runN%runRingSize] = d
	q.runN++
	q.runMu.Unlock()
}

// typicalRun estimates the source's median service time from the
// recent-run ring; ok is false below minRunSamples observations.
func (q *queue) typicalRun() (med time.Duration, ok bool) {
	q.runMu.Lock()
	n := q.runN
	if n > runRingSize {
		n = runRingSize
	}
	if n < minRunSamples {
		q.runMu.Unlock()
		return 0, false
	}
	buf := make([]time.Duration, n)
	copy(buf, q.runs[:n])
	q.runMu.Unlock()
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[n/2], true
}

func (q *queue) stat() QueueStat {
	lim := q.limits()
	med, _ := q.typicalRun()
	return QueueStat{
		Source:     q.source,
		Workers:    lim.Concurrency,
		QueueCap:   lim.QueueDepth,
		Depth:      q.gDepth.Value(),
		Inflight:   q.gInflight.Value(),
		Submitted:  q.submitted.Load(),
		Batched:    q.batched.Load(),
		QueueFull:  q.queueFull.Load(),
		Refused:    q.refused.Load(),
		Cancelled:  q.cancelled.Load(),
		Doomed:     q.doomed.Load(),
		WireCalls:  q.wireCalls.Load(),
		WireItems:  q.wireItems.Load(),
		TypicalRun: med,
	}
}

// submit joins an in-flight batch for key or enqueues a new one,
// shedding with ErrQueueFull when the queue is at its depth bound and
// with ErrDeadline when the caller's remaining budget cannot cover the
// source's typical service time.
func (q *queue) submit(ctx context.Context, key string, fn Task, item any, exec MuxExec) (*Ticket, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil, ErrClosed
	}
	if key != "" {
		if b := q.pending[key]; b != nil {
			b.waiters++
			q.mu.Unlock()
			q.submitted.Add(1)
			q.cSubmitted.Inc()
			q.batched.Add(1)
			q.cBatched.Inc()
			return &Ticket{q: q, b: b}, nil
		}
	}
	// Deadline-aware admission, leaders only (a joiner rides a call that
	// is running regardless): refuse work whose remaining budget cannot
	// cover the source's observed median service time — it would only
	// occupy queue and worker capacity on its way to a deadline error.
	// The wall clock (not the injectable test clock) measures remaining
	// budget, because context deadlines come from the wall clock; frozen
	// -clock tests record zero-duration runs and are never doomed. An
	// idle source (nothing in flight) always admits, so one probe at a
	// time refreshes the estimate and a recovered source is not locked
	// out by its slow history.
	if deadline, hasDeadline := ctx.Deadline(); hasDeadline && q.gInflight.Value() > 0 {
		if med, ok := q.typicalRun(); ok {
			if remaining := time.Until(deadline); remaining < med {
				q.mu.Unlock()
				q.doomed.Add(1)
				q.cDoomed.Inc()
				return nil, fmt.Errorf("%w: %s (typical run %v, budget %v)",
					ErrDeadline, q.source, med, remaining)
			}
		}
	}
	// The depth counter includes batches the pump is about to hand to a
	// free worker (it decrements only once a batch wins a worker slot, so
	// a batch parked behind a busy pool still counts as queued). Batches
	// covered by free slots are therefore subtracted: they are "running
	// imminently", not waiting, and must not consume the queue bound.
	if q.depth.Load()-int64(q.sem.free()) >= int64(q.lim.QueueDepth) {
		depth := q.lim.QueueDepth
		q.mu.Unlock()
		q.queueFull.Add(1)
		q.cQueueFull.Inc()
		return nil, fmt.Errorf("%w: %s (depth %d)", ErrQueueFull, q.source, depth)
	}
	// The batch context keeps the leader's values (trace, metrics) but
	// detaches its cancellation: a batch serves every waiter, so it ends
	// early only when all of them have abandoned it.
	bctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	b := &batch{
		key:      key,
		fn:       fn,
		item:     item,
		exec:     exec,
		ctx:      bctx,
		cancel:   cancel,
		enqueued: q.d.cfg.Now(),
		waiters:  1,
		done:     make(chan struct{}),
		// Until a multiplexed group run says otherwise, every batch is
		// the primary fault of its own wire call.
		faultPrimary: true,
	}
	// The depth counter and gauge rise before the batch becomes visible
	// on the channel: the pump decrements on receive, so incrementing
	// after the send could transiently read -1. The channel's fixed
	// capacity is at least the clamped depth bound, so with depth checked
	// under mu the send cannot block; the default arm is pure insurance.
	q.depth.Add(1)
	q.gDepth.Add(1)
	select {
	case q.ch <- b:
	default:
		q.depth.Add(-1)
		q.gDepth.Add(-1)
		depth := q.lim.QueueDepth
		q.mu.Unlock()
		cancel()
		q.queueFull.Add(1)
		q.cQueueFull.Inc()
		return nil, fmt.Errorf("%w: %s (depth %d)", ErrQueueFull, q.source, depth)
	}
	if key != "" {
		q.pending[key] = b
	}
	q.mu.Unlock()
	q.submitted.Add(1)
	q.cSubmitted.Inc()
	return &Ticket{q: q, b: b, led: true}, nil
}

// pump serves batches until the queue's channel closes: it acquires a
// slot from the resizable semaphore (the live concurrency bound) and
// runs each batch on its own goroutine. Batches already abandoned or
// refused resolve inline without a slot, so a drained or broken source's
// queue empties fast even while its slots are busy.
//
// When the batch at the head is a mux submission, the pump drains up to
// MaxBatchWire-1 further mux batches off the queue into the same worker
// slot — one wire call for the whole drain (runGroup). A non-mux batch
// encountered mid-drain is stashed, not skipped: the pump is a single
// goroutine, so the stash is checked before the channel on the next
// iteration and FIFO order is preserved.
func (q *queue) pump() {
	var stash *batch
	for {
		var b *batch
		if stash != nil {
			b, stash = stash, nil
		} else {
			var ok bool
			if b, ok = <-q.ch; !ok {
				return
			}
		}
		// The batch stays in the depth accounting until it either
		// resolves inline or wins a slot: while the pump is parked at the
		// semaphore the batch is still "waiting for a worker", and
		// forgetting it early would quietly widen the admission bound by
		// one.
		if b.ctx.Err() != nil || (q.d.cfg.Refuse != nil && q.d.cfg.Refuse(q.source)) {
			q.depth.Add(-1)
			q.gDepth.Add(-1)
			q.runBatch(b)
			continue
		}
		q.sem.acquire()
		q.depth.Add(-1)
		q.gDepth.Add(-1)
		if b.exec == nil {
			go func(b *batch) {
				defer q.sem.release()
				q.runBatch(b)
			}(b)
			continue
		}
		group := []*batch{b}
		max := q.limits().MaxBatchWire
	drain:
		for len(group) < max {
			select {
			case nb, ok := <-q.ch:
				if !ok {
					break drain
				}
				switch {
				case nb.ctx.Err() != nil || (q.d.cfg.Refuse != nil && q.d.cfg.Refuse(q.source)):
					// Resolves without running; costs no slot.
					q.depth.Add(-1)
					q.gDepth.Add(-1)
					q.runBatch(nb)
				case nb.exec == nil:
					// A plain task cannot join a wire group; it keeps its
					// depth accounting and runs on the next pump iteration.
					stash = nb
					break drain
				default:
					q.depth.Add(-1)
					q.gDepth.Add(-1)
					group = append(group, nb)
				}
			default:
				break drain
			}
		}
		go func(group []*batch) {
			defer q.sem.release()
			q.runGroup(group)
		}(group)
	}
}

// runBatch resolves one batch: skipped if every waiter already abandoned
// it, fast-drained if the source is refused, otherwise the task runs
// (with panic containment) under the batch context. The batch leaves the
// pending map before done closes, mirroring qcache's flightGroup, so a
// later identical submit starts a fresh batch instead of joining a
// finished one.
func (q *queue) runBatch(b *batch) {
	b.waited = q.d.cfg.Now().Sub(b.enqueued)
	q.hWait.Observe(b.waited)
	switch {
	case b.ctx.Err() != nil:
		b.err = fmt.Errorf("dispatch: %s: batch abandoned before start: %w", q.source, context.Cause(b.ctx))
		q.cancelled.Add(1)
		q.cCancelled.Inc()
	case q.d.cfg.Refuse != nil && q.d.cfg.Refuse(q.source):
		b.err = fmt.Errorf("%w: %s", ErrRefused, q.source)
		q.refused.Add(1)
		q.cRefused.Inc()
	default:
		q.gInflight.Add(1)
		start := q.d.cfg.Now()
		func() {
			defer func() {
				if r := recover(); r != nil {
					b.err = fmt.Errorf("dispatch: %s: task panicked: %v", q.source, r)
				}
			}()
			if b.exec != nil {
				// A mux batch that reached the single-task path (e.g. a
				// pre-check race routed it here) still runs: a group of one.
				vals, errs := b.exec(b.ctx, []any{b.item})
				if len(vals) == 1 && len(errs) == 1 {
					b.val, b.err = vals[0], errs[0]
				} else {
					b.err = fmt.Errorf("dispatch: %s: mux exec returned %d values, %d errors for 1 item",
						q.source, len(vals), len(errs))
				}
			} else {
				b.val, b.err = b.fn(b.ctx)
			}
		}()
		b.ran = q.d.cfg.Now().Sub(start)
		q.hRun.Observe(b.ran)
		q.recordRun(b.ran)
		q.gInflight.Add(-1)
		q.countWire(1)
	}
	q.resolve(b)
}

// countWire accounts one wire call that carried n queue items.
func (q *queue) countWire(n int) {
	q.wireCalls.Add(1)
	q.cWireCalls.Inc()
	q.wireItems.Add(int64(n))
	q.cWireItems.Add(int64(n))
	q.hWireSize.Observe(time.Duration(n))
}

// resolve publishes a finished batch: it leaves the pending map before
// done closes, mirroring qcache's flightGroup, so a later identical
// submit starts a fresh batch instead of joining a finished one. The
// batch context is cancelled last — after resolution it has no further
// use, and cancelling it signals any group-context watcher.
func (q *queue) resolve(b *batch) {
	q.mu.Lock()
	if b.key != "" && q.pending[b.key] == b {
		delete(q.pending, b.key)
	}
	b.fanout = b.waiters
	q.mu.Unlock()
	close(b.done)
	b.cancel()
}

// batch is one (possibly shared) unit of queued work. val, err, waited,
// ran and fanout are written by the serving worker before done closes
// and only read after done, so they need no lock; waiters is guarded by
// the queue mutex.
type batch struct {
	key      string
	fn       Task    // single-task submissions (Submit)
	item     any     // mux submissions (SubmitMux): the per-item input
	exec     MuxExec // mux submissions: the group executor
	ctx      context.Context
	cancel   context.CancelFunc
	enqueued time.Time
	done     chan struct{}

	waiters int // guarded by queue.mu

	val    any
	err    error
	waited time.Duration
	ran    time.Duration
	fanout int
	// faultPrimary marks the batch whose failure is its wire call's
	// primary fault: always true for single-task runs, true for exactly
	// one failed member of a multiplexed group (see Ticket.FaultPrimary).
	faultPrimary bool
}

// Ticket is one waiter's handle on a submitted batch.
type Ticket struct {
	q       *queue
	b       *batch
	led     bool
	abandon sync.Once
}

// Led reports whether this waiter created the batch (false: it joined an
// in-flight one). Exactly one waiter per wire call leads; feed breaker
// or accounting state from the leader only, or shared calls are
// double-counted.
func (t *Ticket) Led() bool { return t.led }

// Wait blocks until the batch resolves or ctx ends. Abandoning a batch
// (ctx ending first) unregisters this waiter; when the last waiter
// abandons, the batch leaves the pending map (it accepts no new joiners)
// and its context is cancelled, so a wire call nobody is waiting for
// stops — the same behavior an un-dispatched call had under its search's
// context.
func (t *Ticket) Wait(ctx context.Context) (any, error) {
	select {
	case <-t.b.done:
		return t.b.val, t.b.err
	case <-ctx.Done():
		t.abandon.Do(func() {
			t.q.mu.Lock()
			t.b.waiters--
			last := t.b.waiters == 0
			if last && t.b.key != "" && t.q.pending[t.b.key] == t.b {
				// The batch dies with its last waiter: remove it from the
				// pending map inside the same critical section, so a later
				// identical submit starts a fresh batch instead of joining
				// this one and inheriting its cancellation.
				delete(t.q.pending, t.b.key)
			}
			t.q.mu.Unlock()
			if last {
				t.b.cancel()
			}
		})
		return nil, ctx.Err()
	}
}

// resolved reports whether the batch has finished.
func (t *Ticket) resolved() bool {
	select {
	case <-t.b.done:
		return true
	default:
		return false
	}
}

// Waited returns how long the batch sat queued before a worker picked it
// up (0 until the batch resolves).
func (t *Ticket) Waited() time.Duration {
	if !t.resolved() {
		return 0
	}
	return t.b.waited
}

// RunFor returns the wire call's own duration — shared by every waiter
// of a batch — or 0 if the batch has not resolved or never ran.
func (t *Ticket) RunFor() time.Duration {
	if !t.resolved() {
		return 0
	}
	return t.b.ran
}

// Fanout returns how many waiters the resolved batch served (at least 1;
// 0 until the batch resolves). A fanout above 1 means the result value
// is shared: consumers that mutate it must copy first.
func (t *Ticket) Fanout() int {
	if !t.resolved() {
		return 0
	}
	return t.b.fanout
}
