package merge

import (
	"math"
	"testing"

	"starts/internal/engine"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/source"
)

// sampleSource builds a source over the canonical sample collection with
// the given scorer, so its sample results are directly comparable.
func sampleSource(t *testing.T, id string, scorer engine.Scorer) *source.Source {
	t.Helper()
	cfg := engine.NewVectorConfig()
	cfg.Scorer = scorer
	eng, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := source.New(id, eng)
	if err != nil {
		t.Fatal(err)
	}
	// The source's own collection content does not matter for
	// SampleResults (it probes a fresh engine), but Add something so the
	// source is realistic.
	if err := s.AddAll(source.SampleCollection()); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFitRecoversLinearMap(t *testing.T) {
	ref := sampleSource(t, "ref", engine.TFIDF{})
	scaled := sampleSource(t, "scaled", engine.TopK{})
	refS, err := ref.SampleResults()
	if err != nil {
		t.Fatal(err)
	}
	scaledS, err := scaled.SampleResults()
	if err != nil {
		t.Fatal(err)
	}
	cal, err := Fit(scaledS, refS)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Samples < 4 {
		t.Errorf("fit used only %d samples", cal.Samples)
	}
	if cal.Slope <= 0 {
		t.Errorf("slope = %g, want positive (monotone rankers)", cal.Slope)
	}
	// Calibrated TopK scores should land near the reference scale: the
	// calibrated top score must be far below 1000 and nonnegative.
	top := cal.Apply(1000)
	if top < 0 || top > 2 {
		t.Errorf("calibrated top score = %g, want roughly the [0,1) reference scale", top)
	}
	// Apply clamps below zero.
	if got := (Calibration{Slope: 1, Intercept: -10}).Apply(1); got != 0 {
		t.Errorf("Apply clamp = %g", got)
	}
}

func TestFitErrors(t *testing.T) {
	ref := sampleSource(t, "ref", engine.TFIDF{})
	refS, err := ref.SampleResults()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fit(refS[:1], refS); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Fit(nil, nil); err == nil {
		t.Error("empty streams accepted")
	}
	// Disjoint documents yield no joined pairs.
	disjoint := []*source.SampleEntry{{
		Query:   refS[0].Query,
		Results: &result.Results{Documents: []*result.Document{docFor("http://elsewhere", 1)}},
	}}
	refOne := []*source.SampleEntry{{
		Query:   refS[0].Query,
		Results: refS[0].Results,
	}}
	if _, err := Fit(disjoint, refOne); err == nil {
		t.Error("no joined pairs accepted")
	}
}

func TestFitConstantScores(t *testing.T) {
	// A source whose sample scores are all identical carries no slope
	// information: the fit maps everything to the mean reference score.
	q := query.New()
	r, err := query.ParseRanking(`list("x")`)
	if err != nil {
		t.Fatal(err)
	}
	q.Ranking = r
	mk := func(scores ...float64) []*source.SampleEntry {
		var docs []*result.Document
		for i, s := range scores {
			docs = append(docs, docFor("http://d/"+string(rune('a'+i)), s))
		}
		return []*source.SampleEntry{{Query: q, Results: &result.Results{Documents: docs}}}
	}
	cal, err := Fit(mk(5, 5, 5), mk(0.2, 0.4, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	if cal.Slope != 0 || math.Abs(cal.Intercept-0.4) > 1e-9 {
		t.Errorf("constant fit = %+v, want slope 0 intercept 0.4", cal)
	}
}

func docFor(url string, score float64) *result.Document {
	d := doc(url, score)
	return d
}

func TestCalibratedFallsBackWithoutFit(t *testing.T) {
	q := rankQuery(t, `list((any "x"))`)
	inputs := []SourceResult{
		{SourceID: "known", Results: &result.Results{Documents: []*result.Document{doc("http://k/1", 100)}}},
		{SourceID: "unknown", Results: &result.Results{Documents: []*result.Document{doc("http://u/1", 0.5)}}},
	}
	c := Calibrated{BySource: map[string]Calibration{
		"known": {Slope: 0.001, Intercept: 0}, // 100 -> 0.1
	}}
	got := c.Merge(q, inputs)
	// known calibrates to 0.1; unknown stays raw at 0.5 and wins.
	if got[0].Linkage() != "http://u/1" {
		t.Errorf("order = %v", urls(got))
	}
}
