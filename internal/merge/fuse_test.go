package merge

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"starts/internal/attr"
	"starts/internal/result"
)

func randItems(rng *rand.Rand, n, urlSpace, sourceSpace int) []*merged {
	items := make([]*merged, n)
	for i := range items {
		d := &result.Document{
			RawScore: float64(rng.Intn(8)) / 4, // coarse: plenty of score ties
			Sources:  []string{fmt.Sprintf("S%d", rng.Intn(sourceSpace))},
			Fields: map[attr.Field]string{
				attr.FieldLinkage: fmt.Sprintf("http://x/%d", rng.Intn(urlSpace)),
			},
		}
		items[i] = &merged{doc: d, score: d.RawScore, order: i}
	}
	return items
}

// referenceFuse is the pre-heap semantics: collapse duplicates, full
// stable sort by (score desc, arrival asc), then truncate.
func referenceFuse(items []*merged, limit int) []*result.Document {
	full := fuse(items, 0)
	if limit > 0 && len(full) > limit {
		full = full[:limit]
	}
	return full
}

// cloneItems deep-copies the fuse working set: fuse mutates the
// documents it collapses, so the reference run needs its own documents.
func cloneItems(items []*merged) []*merged {
	out := make([]*merged, len(items))
	for i, it := range items {
		d := *it.doc
		d.Sources = append([]string(nil), it.doc.Sources...)
		out[i] = &merged{doc: &d, score: it.score, order: it.order}
	}
	return out
}

// TestFuseTopKMatchesFullSort is the satellite equivalence check: the
// bounded-heap rank must be exactly the truncated full-sort rank, on
// randomized inputs dense with duplicate linkages and tied scores.
func TestFuseTopKMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(120)
		items := randItems(rng, n, 1+n/3, 4)
		limit := 1 + rng.Intn(20)
		want := referenceFuse(cloneItems(items), limit)
		got := fuse(items, limit)
		if len(got) != len(want) {
			t.Fatalf("trial %d n=%d limit=%d: got %d docs, want %d", trial, n, limit, len(got), len(want))
		}
		for i := range want {
			if got[i].Linkage() != want[i].Linkage() || got[i].RawScore != want[i].RawScore {
				t.Fatalf("trial %d limit=%d doc %d: got %s/%v, want %s/%v",
					trial, limit, i, got[i].Linkage(), got[i].RawScore, want[i].Linkage(), want[i].RawScore)
			}
			a := append([]string(nil), got[i].Sources...)
			b := append([]string(nil), want[i].Sources...)
			sort.Strings(a)
			sort.Strings(b)
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("trial %d doc %d: sources %v, want %v", trial, i, a, b)
			}
		}
	}
}

// TestFuseLateDuplicateSurvivesLimit pins the collapse-before-select
// order: a duplicate arriving beyond the limit can still promote its
// document into the top ranks.
func TestFuseLateDuplicateSurvivesLimit(t *testing.T) {
	mk := func(url string, score float64, order int) *merged {
		return &merged{
			doc: &result.Document{
				RawScore: score,
				Sources:  []string{fmt.Sprintf("S%d", order)},
				Fields:   map[attr.Field]string{attr.FieldLinkage: url},
			},
			score: score,
			order: order,
		}
	}
	items := []*merged{
		mk("http://x/a", 0.5, 0),
		mk("http://x/b", 0.4, 1),
		mk("http://x/c", 0.3, 2),
		// Late duplicate of c with the winning score: must collapse into c
		// and lift it to rank 1 even with limit 2.
		mk("http://x/c", 0.9, 3),
	}
	out := fuse(items, 2)
	if len(out) != 2 {
		t.Fatalf("fused %d docs, want 2", len(out))
	}
	if out[0].Linkage() != "http://x/c" || out[0].RawScore != 0.9 {
		t.Fatalf("rank 1 = %s/%v, want http://x/c/0.9", out[0].Linkage(), out[0].RawScore)
	}
	if len(out[0].Sources) != 2 {
		t.Fatalf("collapsed sources = %v, want both attributions", out[0].Sources)
	}
	if out[1].Linkage() != "http://x/a" {
		t.Fatalf("rank 2 = %s, want http://x/a", out[1].Linkage())
	}
}

// TestAppendMissingSetPath exercises the seen-set branch above the
// threshold against the quadratic semantics: order-preserving union.
func TestAppendMissingSetPath(t *testing.T) {
	var dst, add []string
	for i := 0; i < appendMissingSetThreshold; i++ {
		dst = append(dst, fmt.Sprintf("S%d", i))
	}
	// Overlap half, extend half — the combined length forces the set path.
	for i := appendMissingSetThreshold / 2; i < appendMissingSetThreshold+5; i++ {
		add = append(add, fmt.Sprintf("S%d", i))
	}
	got := appendMissing(dst, add)
	if len(got) != appendMissingSetThreshold+5 {
		t.Fatalf("union size %d, want %d", len(got), appendMissingSetThreshold+5)
	}
	for i, s := range got {
		if want := fmt.Sprintf("S%d", i); s != want {
			t.Fatalf("union[%d] = %s, want %s (order must be preserved)", i, s, want)
		}
	}
	// Duplicates inside add collapse too.
	got = appendMissing(nil, append(add, add...))
	seen := map[string]bool{}
	for _, s := range got {
		if seen[s] {
			t.Fatalf("duplicate %s survived", s)
		}
		seen[s] = true
	}
}
