package merge

import (
	"math"
	"testing"

	"starts/internal/attr"
	"starts/internal/lang"
	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/result"
)

func doc(url string, score float64, stats ...result.TermStat) *result.Document {
	return &result.Document{
		RawScore:  score,
		Fields:    map[attr.Field]string{attr.FieldLinkage: url},
		TermStats: stats,
		Count:     10000,
	}
}

func stat(field attr.Field, term string, tf int, w float64, df int) result.TermStat {
	return result.TermStat{Term: query.NewTerm(field, lang.L(term)), Freq: tf, Weight: w, DocFreq: df}
}

func metaWithRange(lo, hi float64) *meta.SourceMeta {
	return &meta.SourceMeta{ScoreMin: lo, ScoreMax: hi}
}

func rankQuery(t *testing.T, ranking string) *query.Query {
	t.Helper()
	q := query.New()
	r, err := query.ParseRanking(ranking)
	if err != nil {
		t.Fatal(err)
	}
	q.Ranking = r
	return q
}

func urls(docs []*result.Document) []string {
	out := make([]string, len(docs))
	for i, d := range docs {
		out[i] = d.Linkage()
	}
	return out
}

// paperExample9Inputs reconstructs the paper's Examples 8 and 9: Source-1
// returns dood.ps with raw score 0.82, Source-2 returns lagunita.ps with
// raw score 0.27 but much richer term statistics.
func paperExample9Inputs() []SourceResult {
	d1 := doc("http://www-db.stanford.edu/~ullman/pub/dood.ps", 0.82,
		stat(attr.FieldBodyOfText, "distributed", 10, 0.31, 190),
		stat(attr.FieldBodyOfText, "databases", 15, 0.51, 232))
	d1.Count = 10213
	d1.Sources = []string{"Source-1"}
	d2 := doc("http://elib.stanford.edu/lagunita.ps", 0.27,
		stat(attr.FieldBodyOfText, "distributed", 20, 0.12, 901),
		stat(attr.FieldBodyOfText, "databases", 34, 0.15, 788))
	d2.Count = 9031
	d2.Sources = []string{"Source-2"}
	return []SourceResult{
		{
			SourceID: "Source-1",
			Meta:     metaWithRange(0, 1),
			Summary:  &meta.ContentSummary{NumDocs: 892},
			Results:  &result.Results{Sources: []string{"Source-1"}, Documents: []*result.Document{d1}},
		},
		{
			SourceID: "Source-2",
			Meta:     metaWithRange(0, 1),
			Summary:  &meta.ContentSummary{NumDocs: 1500},
			Results:  &result.Results{Sources: []string{"Source-2"}, Documents: []*result.Document{d2}},
		},
	}
}

// TestPaperExample9Rerank is experiment E8's merging half: a raw-score
// merge ranks the Source-1 document first (0.82 > 0.27), while the
// TermStats re-ranking of Example 9 — recomputing scores from term
// frequencies — puts the Source-2 document first.
func TestPaperExample9Rerank(t *testing.T) {
	q := rankQuery(t, `list((body-of-text "distributed") (body-of-text "databases"))`)
	inputs := paperExample9Inputs()

	raw := (RawScore{}).Merge(q, inputs)
	if raw[0].Linkage() != "http://www-db.stanford.edu/~ullman/pub/dood.ps" {
		t.Errorf("raw-score order = %v", urls(raw))
	}

	ts := (TermStats{}).Merge(q, inputs)
	if ts[0].Linkage() != "http://elib.stanford.edu/lagunita.ps" {
		t.Errorf("term-stats order = %v (the paper's re-rank puts lagunita first)", urls(ts))
	}
}

func TestScaledNormalizesRanges(t *testing.T) {
	// Source A scores in [0,1], source B in [0,1000] (top doc = 1000).
	q := rankQuery(t, `list((any "x"))`)
	inputs := []SourceResult{
		{SourceID: "A", Meta: metaWithRange(0, 1), Results: &result.Results{
			Documents: []*result.Document{doc("http://a/best", 0.9), doc("http://a/ok", 0.5)},
		}},
		{SourceID: "B", Meta: metaWithRange(0, 1000), Results: &result.Results{
			Documents: []*result.Document{doc("http://b/best", 1000), doc("http://b/meh", 200)},
		}},
	}
	raw := (RawScore{}).Merge(q, inputs)
	// Raw: B's 1000 and 200 crush A's 0.9.
	if raw[0].Linkage() != "http://b/best" || raw[1].Linkage() != "http://b/meh" {
		t.Errorf("raw order = %v", urls(raw))
	}
	scaled := (Scaled{}).Merge(q, inputs)
	// Scaled: 1.0 (b/best), 0.9 (a/best), 0.5 (a/ok), 0.2 (b/meh).
	want := []string{"http://b/best", "http://a/best", "http://a/ok", "http://b/meh"}
	got := urls(scaled)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scaled order = %v, want %v", got, want)
		}
	}
}

func TestScaledFallsBackOnUnboundedRange(t *testing.T) {
	q := rankQuery(t, `list((any "x"))`)
	inputs := []SourceResult{
		{SourceID: "inf", Meta: metaWithRange(0, math.Inf(1)), Results: &result.Results{
			Documents: []*result.Document{doc("http://i/1", 50), doc("http://i/2", 25)},
		}},
		{SourceID: "unit", Meta: metaWithRange(0, 1), Results: &result.Results{
			Documents: []*result.Document{doc("http://u/1", 0.6)},
		}},
	}
	got := urls((Scaled{}).Merge(q, inputs))
	// inf source normalizes by its observed max (50): 1.0, 0.5.
	want := []string{"http://i/1", "http://u/1", "http://i/2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	// Missing metadata also falls back to observed max.
	inputs[0].Meta = nil
	got2 := urls((Scaled{}).Merge(q, inputs))
	if got2[0] != "http://i/1" {
		t.Errorf("no-meta order = %v", got2)
	}
}

func TestRoundRobinInterleaves(t *testing.T) {
	q := rankQuery(t, `list((any "x"))`)
	inputs := []SourceResult{
		{SourceID: "A", Results: &result.Results{Documents: []*result.Document{
			doc("http://a/1", 3), doc("http://a/2", 2), doc("http://a/3", 1),
		}}},
		{SourceID: "B", Results: &result.Results{Documents: []*result.Document{
			doc("http://b/1", 999),
		}}},
	}
	got := urls((RoundRobin{}).Merge(q, inputs))
	want := []string{"http://a/1", "http://b/1", "http://a/2", "http://a/3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round-robin order = %v, want %v", got, want)
		}
	}
}

func TestFuseCollapsesDuplicates(t *testing.T) {
	q := rankQuery(t, `list((any "x"))`)
	a := doc("http://shared", 0.4)
	a.Sources = []string{"A"}
	b := doc("http://shared", 0.7)
	b.Sources = []string{"B"}
	inputs := []SourceResult{
		{SourceID: "A", Results: &result.Results{Documents: []*result.Document{a}}},
		{SourceID: "B", Results: &result.Results{Documents: []*result.Document{b}}},
	}
	got := (RawScore{}).Merge(q, inputs)
	if len(got) != 1 {
		t.Fatalf("duplicates not collapsed: %v", urls(got))
	}
	if got[0].RawScore != 0.7 {
		t.Errorf("kept score = %g, want the better 0.7", got[0].RawScore)
	}
	if len(got[0].Sources) != 2 {
		t.Errorf("sources = %v", got[0].Sources)
	}
}

func TestTermStatsLocalIDFVariant(t *testing.T) {
	q := rankQuery(t, `list((body-of-text "distributed") (body-of-text "databases"))`)
	inputs := paperExample9Inputs()
	local := TermStats{LocalIDF: true}
	if local.Name() == (TermStats{}).Name() {
		t.Error("variant names collide")
	}
	got := local.Merge(q, inputs)
	if len(got) != 2 {
		t.Fatalf("local-idf merge lost documents: %v", urls(got))
	}
	// With per-source document frequencies, the paper's Section 3.2
	// pathology reappears: the query words are common at Source-2 (df
	// 901/1500 and 788/1500), so its document's idf collapses and the
	// tf-poor Source-1 document wins again. This is exactly why the
	// global variant aggregates df across sources.
	if got[0].Linkage() != "http://www-db.stanford.edu/~ullman/pub/dood.ps" {
		t.Errorf("local-idf order = %v", urls(got))
	}
}

func TestTermStatsWeightedTerms(t *testing.T) {
	// Down-weighting "databases" to nearly zero should let a distributed-
	// heavy document win.
	q := rankQuery(t, `list(((body-of-text "distributed") 0.05) ((body-of-text "databases") 0.95))`)
	d1 := doc("http://x/dist", 0.5, stat(attr.FieldBodyOfText, "distributed", 50, 0.9, 10))
	d2 := doc("http://x/db", 0.5, stat(attr.FieldBodyOfText, "databases", 50, 0.9, 10))
	inputs := []SourceResult{{SourceID: "S", Summary: &meta.ContentSummary{NumDocs: 100},
		Results: &result.Results{Documents: []*result.Document{d1, d2}}}}
	got := (TermStats{}).Merge(q, inputs)
	if got[0].Linkage() != "http://x/db" {
		t.Errorf("weighted term-stats order = %v", urls(got))
	}
}

func TestStrategyNames(t *testing.T) {
	for _, s := range []Strategy{RawScore{}, Scaled{}, RoundRobin{}, TermStats{}, Calibrated{}} {
		if s.Name() == "" {
			t.Errorf("%T has empty name", s)
		}
	}
}
