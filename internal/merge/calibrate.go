package merge

import (
	"fmt"

	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/source"
)

// Calibration maps one source's raw scores onto a common reference scale.
// It is fitted from the source's sample-database results (Section 4.2):
// because every source publishes its results for the same known collection
// and queries, a metasearcher can regress each black-box ranker's scores
// against a reference ranker's scores for the same (query, document)
// pairs.
type Calibration struct {
	Slope, Intercept float64
	// Samples is the number of (query, document) pairs the fit used.
	Samples int
}

// Apply maps a raw score onto the reference scale, clamped at zero.
func (c Calibration) Apply(raw float64) float64 {
	s := c.Slope*raw + c.Intercept
	if s < 0 {
		return 0
	}
	return s
}

// Fit computes a least-squares linear fit from a source's sample results
// to a reference source's sample results. Pairs are joined on (query
// index, document linkage). At least two pairs are required.
func Fit(src, ref []*source.SampleEntry) (Calibration, error) {
	if len(src) != len(ref) {
		return Calibration{}, fmt.Errorf("merge: sample streams differ in length: %d vs %d", len(src), len(ref))
	}
	var xs, ys []float64
	for i := range src {
		refScores := map[string]float64{}
		for _, d := range ref[i].Results.Documents {
			refScores[d.Linkage()] = d.RawScore
		}
		for _, d := range src[i].Results.Documents {
			if y, ok := refScores[d.Linkage()]; ok {
				xs = append(xs, d.RawScore)
				ys = append(ys, y)
			}
		}
	}
	n := len(xs)
	if n < 2 {
		return Calibration{}, fmt.Errorf("merge: need at least two joined sample pairs to calibrate, have %d", n)
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	nf := float64(n)
	den := nf*sxx - sx*sx
	if den == 0 {
		// Constant sample scores carry no slope information; map
		// everything to the mean reference score.
		return Calibration{Slope: 0, Intercept: sy / nf, Samples: n}, nil
	}
	slope := (nf*sxy - sx*sy) / den
	return Calibration{Slope: slope, Intercept: (sy - slope*sx) / nf, Samples: n}, nil
}

// Calibrated merges on sample-calibrated scores: each source's raw scores
// pass through its fitted Calibration before comparison.
type Calibrated struct {
	// Maps source IDs to their fitted calibrations. Sources without one
	// fall back to their raw scores.
	BySource map[string]Calibration
}

// Name implements Strategy.
func (Calibrated) Name() string { return "sample-calibrated" }

// Merge implements Strategy.
func (c Calibrated) Merge(q *query.Query, inputs []SourceResult) []*result.Document {
	var items []*merged
	for _, in := range inputs {
		cal, ok := c.BySource[in.SourceID]
		for _, d := range in.Results.Documents {
			s := d.RawScore
			if ok {
				s = cal.Apply(s)
			}
			items = append(items, &merged{doc: d, score: s, order: len(items)})
		}
	}
	return fuse(items, fuseLimit(q))
}
