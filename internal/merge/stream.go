package merge

import (
	"math"
	"sort"

	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/result"
)

// This file implements incremental rank-merging: ingest per-source
// result sets as they arrive and emit documents whose merged rank can no
// longer change, without waiting for the slowest source.
//
// The correctness argument hangs on two facts about fuse:
//
//  1. fuse ranks by (score descending, arrival order ascending), where a
//     document's score is the max over its duplicate occurrences
//     (promotion is strictly greater-than) and its arrival order is its
//     first — smallest — occurrence position.
//  2. Arrival positions are assigned per strategy in a fixed pattern
//     over (roster slot, per-source document position), so each
//     occurrence can be given a sparse OrderKey that is order-isomorphic
//     to the dense position fuse would assign, even before we know which
//     sources will fail and drop out of the input list.
//
// A settled candidate E — the best (score desc, key asc) document merged
// so far — may be emitted iff for every still-pending source p:
//
//	MaxScore(p) <= Score(E)  and  MinKey(p) > Key(E)
//
// The score clause may admit equality because fuse promotes only on
// strictly greater scores: a pending duplicate scoring exactly Score(E)
// cannot displace E's score. The key clause does double duty: a pending
// document tying E's score must lose the order tiebreak, and a pending
// duplicate of E itself must not shrink E's first-occurrence position.
//
// One more hazard survives those two clauses: when some pending p has
// MaxScore(p) exactly equal to Score(E), a duplicate from p can promote
// an already-merged document F — one with a lower score but a smaller
// first-occurrence key than E — into an exact tie, and F would then win
// the order tiebreak. So with an equal-score pending bound, E is stable
// only if no unemitted document carries a smaller key. (New documents
// from p are harmless either way: their keys sit above MinKey(p) and so
// above Key(E).) Under these bounds nothing a pending source can deliver
// outranks or mutates E's rank entry, so E's final position is fixed.
//
// The incremental merger never mutates documents (no Sources
// accumulation, no score promotion writes): the stream end runs the
// ordinary batch Merge over the full inputs, which performs every
// mutation exactly as a non-streamed search would — the streamed prefix
// aliases the same *result.Document pointers the final answer returns,
// so final answers are bit-identical to batch and emitted documents pick
// up their completed attributions in place.

// OrderKey is a sparse stand-in for fuse's dense arrival position:
// lexicographic (Major, Minor). Keys from distinct occurrences are
// distinct, and comparing keys agrees with comparing the dense positions
// fuse assigns — for every subset of surviving sources, which is what
// makes the scheme robust to source failures mid-stream.
type OrderKey struct {
	Major, Minor int
}

// Less reports lexicographic order.
func (k OrderKey) Less(o OrderKey) bool {
	if k.Major != o.Major {
		return k.Major < o.Major
	}
	return k.Minor < o.Minor
}

// Item is one scored occurrence of a document in the stream.
type Item struct {
	Doc   *result.Document
	Score float64
	Key   OrderKey
}

// Bound caps what a still-pending source can contribute: no occurrence
// it delivers will score above MaxScore or carry a key below MinKey.
type Bound struct {
	MaxScore float64
	MinKey   OrderKey
}

// StreamSource is one roster slot of an incremental merge: the source's
// identity plus the harvested context the strategy will see again at
// stream end. Meta and Summary must be the same values the final batch
// Merge inputs will carry, or streamed and final scores may disagree.
type StreamSource struct {
	SourceID string
	Meta     *meta.SourceMeta
	Summary  *meta.ContentSummary
}

// Feeder scores one merge's arrivals incrementally. Implementations must
// be arrival-final: an occurrence's Score and Key depend only on its own
// source's results and roster slot, never on other sources' data (a
// strategy whose scores drift as more sources report — global IDF, say —
// cannot feed a stream and simply has no Feeder).
type Feeder interface {
	// Score converts one arrived source's results into scored items,
	// in ascending key order, replicating exactly the scores the
	// strategy's batch Merge would assign.
	Score(slot int, r *result.Results) []Item
	// Pending bounds what the slot could still deliver.
	Pending(slot int) Bound
}

// Streamable is the optional Strategy extension enabling early emission.
// Strategies without it still work with Incremental — every document
// just waits for stream end.
type Streamable interface {
	Strategy
	Feeder(q *query.Query, roster []StreamSource) Feeder
}

// streamDoc is the working record for one collapsed document: max score
// and min key over the occurrences integrated so far.
type streamDoc struct {
	doc   *result.Document
	score float64
	key   OrderKey
}

// Incremental merges per-source results as they arrive, emitting stable
// rank prefixes. It is not safe for concurrent use; callers serialize
// Offer/Fail/Finish externally.
type Incremental struct {
	strategy Strategy
	q        *query.Query
	roster   []StreamSource
	feeder   Feeder // nil when strategy is not Streamable
	limit    int    // emission cap; 0 is unbounded

	pending map[int]bool
	arrived []*result.Results
	byURL   map[string]*streamDoc
	live    []*streamDoc // collapsed, not yet emitted
	emitted int
}

// NewIncremental starts an incremental merge over the given roster. The
// roster order must match the order the final batch inputs will be
// assembled in (failed sources simply skipped).
func NewIncremental(s Strategy, q *query.Query, roster []StreamSource) *Incremental {
	inc := &Incremental{
		strategy: s,
		q:        q,
		roster:   roster,
		limit:    fuseLimit(q),
		pending:  make(map[int]bool, len(roster)),
		arrived:  make([]*result.Results, len(roster)),
		byURL:    map[string]*streamDoc{},
	}
	for i := range roster {
		inc.pending[i] = true
	}
	if st, ok := s.(Streamable); ok {
		inc.feeder = st.Feeder(q, roster)
	}
	return inc
}

// Offer ingests one source's results and returns the documents whose
// final rank just became certain, in rank order. The returned documents
// alias the input results; their Sources and score fields are completed
// in place by the batch Merge at stream end.
func (inc *Incremental) Offer(slot int, r *result.Results) []*result.Document {
	if slot < 0 || slot >= len(inc.roster) || !inc.pending[slot] {
		return nil
	}
	delete(inc.pending, slot)
	inc.arrived[slot] = r
	if inc.feeder == nil || r == nil {
		return inc.drain()
	}
	for _, it := range inc.feeder.Score(slot, r) {
		url := it.Doc.Linkage()
		if prev, ok := inc.byURL[url]; ok {
			// Collapse a duplicate: max score, min key. For an
			// already-emitted document the emission rule guarantees
			// both updates are no-ops (assuming honest score ranges).
			if it.Score > prev.score {
				prev.score = it.Score
			}
			if it.Key.Less(prev.key) {
				prev.key = it.Key
				prev.doc = it.Doc
			}
			continue
		}
		sd := &streamDoc{doc: it.Doc, score: it.Score, key: it.Key}
		inc.byURL[url] = sd
		inc.live = append(inc.live, sd)
	}
	return inc.drain()
}

// Fail resolves a slot that will deliver nothing — its bound no longer
// holds anything back. Like Offer it returns newly stable documents.
func (inc *Incremental) Fail(slot int) []*result.Document {
	if slot < 0 || slot >= len(inc.roster) || !inc.pending[slot] {
		return nil
	}
	delete(inc.pending, slot)
	return inc.drain()
}

// drain emits every live document whose rank is now certain.
func (inc *Incremental) drain() []*result.Document {
	if inc.feeder == nil || len(inc.live) == 0 {
		return nil
	}
	sort.Slice(inc.live, func(i, j int) bool {
		a, b := inc.live[i], inc.live[j]
		if a.score != b.score {
			return a.score > b.score
		}
		return a.key.Less(b.key)
	})
	var out []*result.Document
	n := 0
	for n < len(inc.live) {
		if inc.limit > 0 && inc.emitted >= inc.limit {
			break
		}
		e := inc.live[n]
		if !inc.stable(e, n) {
			break
		}
		out = append(out, e.doc)
		inc.emitted++
		n++
	}
	inc.live = inc.live[n:]
	return out
}

// stable reports whether no pending source can change e's rank. from is
// e's position in live: everything before it was emitted this drain.
func (inc *Incremental) stable(e *streamDoc, from int) bool {
	for slot := range inc.pending {
		b := inc.feeder.Pending(slot)
		if !(b.MaxScore <= e.score && e.key.Less(b.MinKey)) {
			return false
		}
		if b.MaxScore == e.score {
			// A duplicate from this slot could promote an earlier-keyed
			// unemitted document into an exact tie that outranks e.
			for _, f := range inc.live[from:] {
				if f != e && f.key.Less(e.key) {
					return false
				}
			}
		}
	}
	return true
}

// Emitted returns how many documents have been emitted so far.
func (inc *Incremental) Emitted() int { return inc.emitted }

// Finish runs the ordinary batch Merge over everything that arrived, in
// roster order, and returns the complete final rank — bit-identical to a
// never-streamed merge of the same inputs. The emitted prefix equals
// Finish()[:Emitted()] pointer for pointer.
func (inc *Incremental) Finish() []*result.Document {
	var inputs []SourceResult
	for slot, src := range inc.roster {
		if r := inc.arrived[slot]; r != nil {
			inputs = append(inputs, SourceResult{
				SourceID: src.SourceID,
				Meta:     src.Meta,
				Summary:  src.Summary,
				Results:  r,
			})
		}
	}
	if len(inputs) == 0 {
		return nil
	}
	return inc.strategy.Merge(inc.q, inputs)
}

// Feeder implements Streamable: raw scores are arrival-final by
// definition; a pending source is bounded by its exported ScoreRange
// when it declares a finite, sane one, and unbounded (never early)
// otherwise.
func (RawScore) Feeder(q *query.Query, roster []StreamSource) Feeder {
	return rawFeeder{roster: roster}
}

type rawFeeder struct{ roster []StreamSource }

func (f rawFeeder) Score(slot int, r *result.Results) []Item {
	items := make([]Item, len(r.Documents))
	for i, d := range r.Documents {
		items[i] = Item{Doc: d, Score: d.RawScore, Key: OrderKey{slot, i}}
	}
	return items
}

func (f rawFeeder) Pending(slot int) Bound {
	hi := math.Inf(1)
	if m := f.roster[slot].Meta; m != nil && !math.IsInf(m.ScoreMax, 1) && m.ScoreMax > m.ScoreMin {
		hi = m.ScoreMax
	}
	return Bound{MaxScore: hi, MinKey: OrderKey{slot, 0}}
}

// Feeder implements Streamable: each source is normalized from its own
// metadata (or its own observed maximum), so scaled scores are
// arrival-final and a pending source can deliver at most 1. This trusts
// sources to honor their declared ScoreRange — a source scoring above
// its exported maximum could invalidate an already-emitted prefix
// (the final answer is unaffected either way).
func (Scaled) Feeder(q *query.Query, roster []StreamSource) Feeder {
	return scaledFeeder{roster: roster}
}

type scaledFeeder struct{ roster []StreamSource }

func (f scaledFeeder) Score(slot int, r *result.Results) []Item {
	lo, hi := 0.0, 0.0
	m := f.roster[slot].Meta
	if m != nil {
		lo, hi = m.ScoreMin, m.ScoreMax
	}
	if m == nil || math.IsInf(hi, 1) || hi <= lo {
		lo, hi = 0, 0
		for _, d := range r.Documents {
			if d.RawScore > hi {
				hi = d.RawScore
			}
		}
	}
	span := hi - lo
	items := make([]Item, len(r.Documents))
	for i, d := range r.Documents {
		s := 0.0
		if span > 0 {
			s = (d.RawScore - lo) / span
		}
		items[i] = Item{Doc: d, Score: s, Key: OrderKey{slot, i}}
	}
	return items
}

func (f scaledFeeder) Pending(slot int) Bound {
	return Bound{MaxScore: 1, MinKey: OrderKey{slot, 0}}
}

// Feeder implements Streamable: interleave position is arrival-final and
// score-free, so round-robin streams eagerly — a fast source's top
// documents emit as soon as every earlier roster slot has resolved,
// regardless of how slow the rest are. Keys are (position, slot): the
// pos-major order fuse's batch interleave flattens to.
func (RoundRobin) Feeder(q *query.Query, roster []StreamSource) Feeder {
	return rrFeeder{}
}

type rrFeeder struct{}

func (rrFeeder) Score(slot int, r *result.Results) []Item {
	items := make([]Item, len(r.Documents))
	for pos, d := range r.Documents {
		items[pos] = Item{Doc: d, Score: -float64(pos), Key: OrderKey{pos, slot}}
	}
	return items
}

func (rrFeeder) Pending(slot int) Bound {
	return Bound{MaxScore: 0, MinKey: OrderKey{0, slot}}
}
