package merge

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"starts/internal/attr"
	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/result"
)

// scenario is one randomized fleet: a roster plus each slot's results
// (nil marks a source that will fail).
type scenario struct {
	roster  []StreamSource
	results []*result.Results
}

// genScenario builds a deterministic scenario from seed. Generating
// twice with the same seed yields two independent deep copies, which the
// equivalence tests need because Merge mutates documents in place.
func genScenario(seed int64) scenario {
	rng := rand.New(rand.NewSource(seed))
	nSrc := 2 + rng.Intn(4)
	pool := 6 + rng.Intn(18) // shared linkage pool => cross-source duplicates
	var sc scenario
	for s := 0; s < nSrc; s++ {
		id := fmt.Sprintf("S%d", s)
		var m *meta.SourceMeta
		if rng.Intn(2) == 0 {
			// An honest declared range: no score exceeds it.
			m = &meta.SourceMeta{ScoreMin: 0, ScoreMax: 10}
		}
		sc.roster = append(sc.roster, StreamSource{
			SourceID: id,
			Meta:     m,
			Summary:  &meta.ContentSummary{NumDocs: 50 + rng.Intn(500)},
		})
		if rng.Intn(6) == 0 {
			sc.results = append(sc.results, nil)
			continue
		}
		nd := rng.Intn(8)
		if nd > pool {
			nd = pool
		}
		picked := map[int]bool{}
		var docs []*result.Document
		for len(docs) < nd {
			li := rng.Intn(pool)
			score := float64(rng.Intn(100)) / 10 // coarse: ties are common
			if picked[li] {
				continue
			}
			picked[li] = true
			d := doc(fmt.Sprintf("http://pool/doc-%03d", li), score,
				stat(attr.FieldBodyOfText, "alpha", 1+rng.Intn(20), 0, 1+rng.Intn(40)),
				stat(attr.FieldBodyOfText, "beta", rng.Intn(20), 0, 1+rng.Intn(40)))
			d.Sources = []string{id}
			d.Count = 100 + rng.Intn(1000)
			docs = append(docs, d)
		}
		// Sources return ranked answers; round-robin trusts that order.
		sort.SliceStable(docs, func(i, j int) bool { return docs[i].RawScore > docs[j].RawScore })
		sc.results = append(sc.results, &result.Results{Sources: []string{id}, Documents: docs})
	}
	return sc
}

func scenarioQuery(t *testing.T, rng *rand.Rand) *query.Query {
	q := rankQuery(t, `list((body-of-text "alpha") (body-of-text "beta"))`)
	if rng.Intn(2) == 0 {
		q.MaxResults = 1 + rng.Intn(5)
	}
	return q
}

// TestIncrementalEquivalence is the randomized suite for the stability
// bound: for every strategy, across random fleets (duplicates, failed
// sources, declared and undeclared score ranges, result caps) and random
// source-completion permutations, the streamed prefix must equal the
// final rank position for position, and the final rank must be
// bit-identical to a batch Merge of the same inputs.
func TestIncrementalEquivalence(t *testing.T) {
	strategies := []Strategy{RawScore{}, Scaled{}, RoundRobin{}, TermStats{}}
	for _, strat := range strategies {
		strat := strat
		t.Run(strat.Name(), func(t *testing.T) {
			for trial := 0; trial < 150; trial++ {
				seed := int64(trial)*97 + 11
				rng := rand.New(rand.NewSource(seed ^ 0x5eed))
				q := scenarioQuery(t, rng)

				// Copy one feeds the incremental merge.
				sc := genScenario(seed)
				inc := NewIncremental(strat, q, sc.roster)
				order := rng.Perm(len(sc.roster))
				var streamed []*result.Document
				for _, slot := range order {
					if sc.results[slot] == nil {
						streamed = append(streamed, inc.Fail(slot)...)
					} else {
						streamed = append(streamed, inc.Offer(slot, sc.results[slot])...)
					}
				}
				final := inc.Finish()
				if inc.Emitted() != len(streamed) {
					t.Fatalf("trial %d: Emitted()=%d but %d docs streamed", trial, inc.Emitted(), len(streamed))
				}
				if len(streamed) > len(final) {
					t.Fatalf("trial %d: streamed %d docs, final rank has %d", trial, len(streamed), len(final))
				}
				for i, d := range streamed {
					if final[i] != d {
						t.Fatalf("trial %d (%s, order %v): streamed[%d]=%s but final[%d]=%s",
							trial, strat.Name(), order, i, d.Linkage(), i, final[i].Linkage())
					}
				}

				// Copy two is the never-streamed batch reference.
				ref := genScenario(seed)
				var inputs []SourceResult
				for slot, src := range ref.roster {
					if ref.results[slot] == nil {
						continue
					}
					inputs = append(inputs, SourceResult{
						SourceID: src.SourceID, Meta: src.Meta,
						Summary: src.Summary, Results: ref.results[slot],
					})
				}
				var want []*result.Document
				if len(inputs) > 0 {
					want = strat.Merge(q, inputs)
				}
				if len(final) != len(want) {
					t.Fatalf("trial %d: final rank %v, batch rank %v", trial, urls(final), urls(want))
				}
				for i := range want {
					g, w := final[i], want[i]
					if g.Linkage() != w.Linkage() || g.RawScore != w.RawScore {
						t.Fatalf("trial %d rank %d: streamed-final %s (%g) != batch %s (%g)",
							trial, i, g.Linkage(), g.RawScore, w.Linkage(), w.RawScore)
					}
					if fmt.Sprint(g.Sources) != fmt.Sprint(w.Sources) {
						t.Fatalf("trial %d rank %d: sources %v != %v", trial, i, g.Sources, w.Sources)
					}
				}
			}
		})
	}
}

// TestIncrementalEmitsBeforeSlowSource pins the point of the stream: a
// round-robin merge emits the fast source's top document as soon as
// every earlier roster slot has resolved, while another source is still
// pending.
func TestIncrementalEmitsBeforeSlowSource(t *testing.T) {
	q := rankQuery(t, `list((any "x"))`)
	roster := []StreamSource{{SourceID: "fast"}, {SourceID: "slow"}}
	inc := NewIncremental(RoundRobin{}, q, roster)

	a1, a2 := doc("http://a/1", 3), doc("http://a/2", 2)
	got := inc.Offer(0, &result.Results{Documents: []*result.Document{a1, a2}})
	if len(got) != 1 || got[0] != a1 {
		t.Fatalf("with slot 1 pending, emitted %v, want just a/1", urls(got))
	}

	b1 := doc("http://b/1", 9)
	rest := inc.Offer(1, &result.Results{Documents: []*result.Document{b1}})
	want := []*result.Document{b1, a2}
	if len(rest) != len(want) {
		t.Fatalf("after slot 1 arrived, emitted %v", urls(rest))
	}
	for i := range want {
		if rest[i] != want[i] {
			t.Fatalf("after slot 1 arrived, emitted %v", urls(rest))
		}
	}
}

// TestIncrementalUsesDeclaredScoreRange: with raw-score merging, a
// pending source's declared ScoreRange bounds what it can deliver, so an
// arrived document scoring above every pending maximum emits early; one
// below must wait.
func TestIncrementalUsesDeclaredScoreRange(t *testing.T) {
	q := rankQuery(t, `list((any "x"))`)
	roster := []StreamSource{
		{SourceID: "A", Meta: metaWithRange(0, 10)},
		{SourceID: "B", Meta: metaWithRange(0, 5)},
	}
	inc := NewIncremental(RawScore{}, q, roster)
	hi, lo := doc("http://a/hi", 7), doc("http://a/lo", 4)
	got := inc.Offer(0, &result.Results{Documents: []*result.Document{hi, lo}})
	if len(got) != 1 || got[0] != hi {
		t.Fatalf("emitted %v, want just a/hi (7 beats B's max of 5; 4 does not)", urls(got))
	}

	// An undeclared range is unbounded: nothing can emit early.
	inc2 := NewIncremental(RawScore{}, q, []StreamSource{
		{SourceID: "A", Meta: metaWithRange(0, 10)},
		{SourceID: "B"},
	})
	if got := inc2.Offer(0, &result.Results{Documents: []*result.Document{doc("http://a/hi", 7)}}); len(got) != 0 {
		t.Fatalf("emitted %v against an unbounded pending source", urls(got))
	}
}

// TestIncrementalFailureUnblocks: a failed source stops holding the
// stream back.
func TestIncrementalFailureUnblocks(t *testing.T) {
	q := rankQuery(t, `list((any "x"))`)
	roster := []StreamSource{{SourceID: "A", Meta: metaWithRange(0, 10)}, {SourceID: "B"}}
	inc := NewIncremental(RawScore{}, q, roster)
	d := doc("http://a/1", 7)
	if got := inc.Offer(0, &result.Results{Documents: []*result.Document{d}}); len(got) != 0 {
		t.Fatalf("emitted %v with unbounded B pending", urls(got))
	}
	got := inc.Fail(1)
	if len(got) != 1 || got[0] != d {
		t.Fatalf("after B failed, emitted %v", urls(got))
	}
}

// TestIncrementalNonStreamableStrategy: TermStats scores drift as more
// sources report (global document frequencies), so nothing emits early
// and the whole answer comes from Finish — still identical to batch.
func TestIncrementalNonStreamableStrategy(t *testing.T) {
	q := rankQuery(t, `list((body-of-text "distributed") (body-of-text "databases"))`)
	inputs := paperExample9Inputs()
	roster := make([]StreamSource, len(inputs))
	for i, in := range inputs {
		roster[i] = StreamSource{SourceID: in.SourceID, Meta: in.Meta, Summary: in.Summary}
	}
	inc := NewIncremental(TermStats{}, q, roster)
	for i, in := range inputs {
		if got := inc.Offer(i, in.Results); len(got) != 0 {
			t.Fatalf("term-stats emitted early: %v", urls(got))
		}
	}
	final := inc.Finish()
	if len(final) != 2 || final[0].Linkage() != "http://elib.stanford.edu/lagunita.ps" {
		t.Fatalf("final = %v", urls(final))
	}
}

// TestIncrementalStreamedDocsGainAttribution: streamed documents alias
// the final answer's pointers, so the batch Merge at stream end
// completes their duplicate attributions in place.
func TestIncrementalStreamedDocsGainAttribution(t *testing.T) {
	q := rankQuery(t, `list((any "x"))`)
	roster := []StreamSource{
		{SourceID: "A", Meta: metaWithRange(0, 10)},
		{SourceID: "B", Meta: metaWithRange(0, 5)},
	}
	inc := NewIncremental(RawScore{}, q, roster)
	shared := doc("http://shared", 8)
	shared.Sources = []string{"A"}
	got := inc.Offer(0, &result.Results{Documents: []*result.Document{shared}})
	if len(got) != 1 {
		t.Fatalf("emitted %v", urls(got))
	}
	dup := doc("http://shared", 3)
	dup.Sources = []string{"B"}
	inc.Offer(1, &result.Results{Documents: []*result.Document{dup}})
	inc.Finish()
	if fmt.Sprint(got[0].Sources) != "[A B]" {
		t.Fatalf("streamed doc sources = %v, want attribution completed in place", got[0].Sources)
	}
}
