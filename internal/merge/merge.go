// Package merge implements rank merging — the third metasearch task.
// Sources rank with secret, mutually incompatible algorithms (Section
// 3.2), so a metasearcher cannot compare raw scores. The strategies here
// span the design space the paper discusses: naive raw-score merging (the
// known-broken baseline), score normalization via the exported ScoreRange,
// round-robin interleaving, recomputing scores from the TermStats that
// STARTS requires sources to return (Example 9's approach), and
// calibrating black-box rankers from their sample-database results.
package merge

import (
	"math"
	"sort"
	"strings"

	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/topk"
)

// SourceResult is one source's response plus the harvested context a
// merger may use.
type SourceResult struct {
	SourceID string
	Meta     *meta.SourceMeta
	Summary  *meta.ContentSummary
	Results  *result.Results
}

// Strategy merges per-source results into one document rank.
type Strategy interface {
	Name() string
	// Merge returns the fused rank, best first, with duplicates (by
	// linkage) collapsed.
	Merge(q *query.Query, inputs []SourceResult) []*result.Document
}

// merged is the working record for one fused document.
type merged struct {
	doc   *result.Document
	score float64
	order int // arrival order for stable ties
}

// fuse collapses duplicates by linkage, keeping the best score and
// accumulating source attributions, then ranks by score (descending)
// with arrival order as the tiebreak. A positive limit caps the rank:
// duplicates are still collapsed over the full input (a late arrival may
// raise an early document's score), but only the best limit documents
// are ordered and returned — bounded-heap selection instead of a full
// sort. limit <= 0 returns the complete rank.
func fuse(items []*merged, limit int) []*result.Document {
	byURL := map[string]*merged{}
	var keep []*merged
	for _, it := range items {
		url := it.doc.Linkage()
		if prev, ok := byURL[url]; ok {
			prev.doc.Sources = appendMissing(prev.doc.Sources, it.doc.Sources)
			if it.score > prev.score {
				prev.score = it.score
				prev.doc.RawScore = it.doc.RawScore
				prev.doc.TermStats = it.doc.TermStats
			}
			continue
		}
		cp := *it
		byURL[url] = &cp
		keep = append(keep, &cp)
	}
	// Arrival order is unique, so the tiebreak makes the order total:
	// heap selection and (stable) sorting agree exactly.
	before := func(a, b *merged) bool {
		if a.score != b.score {
			return a.score > b.score
		}
		return a.order < b.order
	}
	if limit > 0 && len(keep) > limit {
		h := topk.New(limit, before)
		for _, it := range keep {
			h.Push(it)
		}
		keep = h.Sorted()
	} else {
		sort.Slice(keep, func(i, j int) bool { return before(keep[i], keep[j]) })
	}
	out := make([]*result.Document, len(keep))
	for i, it := range keep {
		out[i] = it.doc
	}
	return out
}

// fuseLimit is the rank depth a merge needs to produce: the query's
// max-docs answer cap (callers truncate there anyway), unbounded when
// no query context is available.
func fuseLimit(q *query.Query) int {
	if q == nil {
		return 0
	}
	return q.EffectiveMaxResults()
}

// appendMissingSetThreshold is the attribution count above which
// appendMissing switches from the quadratic scan — cheapest for the
// tiny source lists of normal merges — to a seen-set.
const appendMissingSetThreshold = 16

func appendMissing(dst []string, add []string) []string {
	if len(dst)+len(add) <= appendMissingSetThreshold {
		for _, s := range add {
			found := false
			for _, have := range dst {
				if have == s {
					found = true
					break
				}
			}
			if !found {
				dst = append(dst, s)
			}
		}
		return dst
	}
	seen := make(map[string]bool, len(dst)+len(add))
	for _, have := range dst {
		seen[have] = true
	}
	for _, s := range add {
		if !seen[s] {
			seen[s] = true
			dst = append(dst, s)
		}
	}
	return dst
}

// RawScore is the naive baseline: compare raw scores across sources as if
// they were commensurable. The paper's Section 3.2 explains why this is
// wrong; experiment X3 measures how wrong.
type RawScore struct{}

// Name implements Strategy.
func (RawScore) Name() string { return "raw-score" }

// Merge implements Strategy.
func (RawScore) Merge(q *query.Query, inputs []SourceResult) []*result.Document {
	var items []*merged
	for _, in := range inputs {
		for _, d := range in.Results.Documents {
			items = append(items, &merged{doc: d, score: d.RawScore, order: len(items)})
		}
	}
	return fuse(items, fuseLimit(q))
}

// Scaled normalizes each source's scores onto [0,1] using the ScoreRange
// the source exports in its metadata, falling back to the observed maximum
// for unbounded ranges.
type Scaled struct{}

// Name implements Strategy.
func (Scaled) Name() string { return "scaled-score" }

// Merge implements Strategy.
func (Scaled) Merge(q *query.Query, inputs []SourceResult) []*result.Document {
	var items []*merged
	for _, in := range inputs {
		lo, hi := 0.0, 0.0
		if in.Meta != nil {
			lo, hi = in.Meta.ScoreMin, in.Meta.ScoreMax
		}
		if in.Meta == nil || math.IsInf(hi, 1) || hi <= lo {
			lo = 0
			hi = 0
			for _, d := range in.Results.Documents {
				if d.RawScore > hi {
					hi = d.RawScore
				}
			}
		}
		span := hi - lo
		for _, d := range in.Results.Documents {
			s := 0.0
			if span > 0 {
				s = (d.RawScore - lo) / span
			}
			items = append(items, &merged{doc: d, score: s, order: len(items)})
		}
	}
	return fuse(items, fuseLimit(q))
}

// RoundRobin interleaves the per-source ranks position by position,
// trusting each source's ordering but nothing about its scores.
type RoundRobin struct{}

// Name implements Strategy.
func (RoundRobin) Name() string { return "round-robin" }

// Merge implements Strategy.
func (RoundRobin) Merge(q *query.Query, inputs []SourceResult) []*result.Document {
	var items []*merged
	maxLen := 0
	for _, in := range inputs {
		if len(in.Results.Documents) > maxLen {
			maxLen = len(in.Results.Documents)
		}
	}
	for pos := 0; pos < maxLen; pos++ {
		for _, in := range inputs {
			if pos < len(in.Results.Documents) {
				d := in.Results.Documents[pos]
				// Score encodes the interleave position so fuse sorts it.
				items = append(items, &merged{doc: d, score: -float64(pos), order: len(items)})
			}
		}
	}
	return fuse(items, fuseLimit(q))
}

// TermStats recomputes a global score for every document from the term
// statistics STARTS requires in query results — term frequency and
// per-source document frequency — ranking all documents as if they lived
// in one combined collection (the approach of the paper's Example 9).
type TermStats struct {
	// LocalIDF, when set, uses each source's own document frequencies
	// instead of globally aggregated ones — the ablation knob of
	// experiment X3.
	LocalIDF bool
}

// Name implements Strategy.
func (t TermStats) Name() string {
	if t.LocalIDF {
		return "term-stats-local-idf"
	}
	return "term-stats"
}

// Merge implements Strategy.
func (t TermStats) Merge(q *query.Query, inputs []SourceResult) []*result.Document {
	// Aggregate collection statistics: total documents and global df per
	// term (keyed by the term's printed form, which includes the field).
	totalDocs := 0
	globalDF := map[string]int{}
	for _, in := range inputs {
		n := 0
		if in.Summary != nil {
			n = in.Summary.NumDocs
		} else {
			n = len(in.Results.Documents)
		}
		totalDocs += n
		perSource := map[string]int{}
		for _, d := range in.Results.Documents {
			for _, s := range d.TermStats {
				key := termKey(s.Term)
				if s.DocFreq > perSource[key] {
					perSource[key] = s.DocFreq
				}
			}
		}
		for key, df := range perSource {
			globalDF[key] += df
		}
	}
	weights := termWeights(q)

	var items []*merged
	for _, in := range inputs {
		localN := 0
		if in.Summary != nil {
			localN = in.Summary.NumDocs
		}
		for _, d := range in.Results.Documents {
			score := 0.0
			for _, s := range d.TermStats {
				if s.Freq == 0 {
					continue
				}
				n, df := totalDocs, globalDF[termKey(s.Term)]
				if t.LocalIDF {
					n, df = localN, s.DocFreq
					if n == 0 {
						n = len(in.Results.Documents)
					}
				}
				if df == 0 {
					continue
				}
				w := (1 + math.Log(float64(s.Freq))) * math.Log(1+float64(n)/float64(df))
				wt, ok := weights[termKey(s.Term)]
				if !ok {
					wt = 1 // a reported term missing from the query keeps unit weight
				}
				score += wt * w
			}
			if d.Count > 1 {
				score /= math.Sqrt(float64(d.Count))
			}
			items = append(items, &merged{doc: d, score: score, order: len(items)})
		}
	}
	return fuse(items, fuseLimit(q))
}

// termKey normalizes a term for cross-source aggregation: field plus
// lower-cased text.
func termKey(t query.Term) string {
	return string(t.EffectiveField()) + "\x00" + strings.ToLower(t.Value.Text)
}

// termWeights extracts the query's per-term ranking weights.
func termWeights(q *query.Query) map[string]float64 {
	w := map[string]float64{}
	expr := q.Ranking
	if expr == nil {
		expr = q.Filter
	}
	if expr == nil {
		return w
	}
	for _, t := range expr.Terms(nil) {
		w[termKey(t)] = t.EffectiveWeight()
	}
	return w
}
