package text

import "strings"

// Soundex computes the classic four-character soundex code of an English
// word, the phonetic matching behind the STARTS "phonetic" modifier: a
// query for (author phonetic "Smith") also matches "Smyth".
//
// Non-alphabetic runes are ignored; an input with no letters yields "".
func Soundex(word string) string {
	const codes = "01230120022455012623010202" // a-z
	var out []byte
	var prev byte
	for _, r := range strings.ToUpper(word) {
		if r < 'A' || r > 'Z' {
			// Vowels and separators break doubled-letter runs in standard
			// American soundex only for h/w; simple variant: reset on
			// non-letters.
			continue
		}
		code := codes[r-'A']
		if len(out) == 0 {
			out = append(out, byte(r))
			prev = code
			continue
		}
		if code != '0' && code != prev {
			out = append(out, code)
			if len(out) == 4 {
				return string(out)
			}
		}
		if r != 'H' && r != 'W' {
			prev = code
		}
	}
	if len(out) == 0 {
		return ""
	}
	for len(out) < 4 {
		out = append(out, '0')
	}
	return string(out)
}

// SoundexEqual reports whether two words share a soundex code.
func SoundexEqual(a, b string) bool {
	sa, sb := Soundex(a), Soundex(b)
	return sa != "" && sa == sb
}
