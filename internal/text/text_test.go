package text

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestStemKnownVectors(t *testing.T) {
	// Classic vectors from Porter's paper plus the STARTS examples.
	cases := []struct{ in, want string }{
		{"databases", "databas"},
		{"database", "databas"}, // the paper's stem example: both match
		{"caresses", "caress"},
		{"ponies", "poni"},
		{"ties", "ti"},
		{"caress", "caress"},
		{"cats", "cat"},
		{"feed", "feed"},
		{"agreed", "agre"},
		{"plastered", "plaster"},
		{"bled", "bled"},
		{"motoring", "motor"},
		{"sing", "sing"},
		{"conflated", "conflat"},
		{"troubled", "troubl"},
		{"sized", "size"},
		{"hopping", "hop"},
		{"tanned", "tan"},
		{"falling", "fall"},
		{"hissing", "hiss"},
		{"fizzed", "fizz"},
		{"failing", "fail"},
		{"filing", "file"},
		{"happy", "happi"},
		{"sky", "sky"},
		{"relational", "relat"},
		{"conditional", "condit"},
		{"rational", "ration"},
		{"valenci", "valenc"},
		{"digitizer", "digit"},
		{"conformabli", "conform"},
		{"radicalli", "radic"},
		{"differentli", "differ"},
		{"vileli", "vile"},
		{"analogousli", "analog"},
		{"vietnamization", "vietnam"},
		{"predication", "predic"},
		{"operator", "oper"},
		{"feudalism", "feudal"},
		{"decisiveness", "decis"},
		{"hopefulness", "hope"},
		{"callousness", "callous"},
		{"formaliti", "formal"},
		{"sensitiviti", "sensit"},
		{"sensibiliti", "sensibl"},
		{"triplicate", "triplic"},
		{"formative", "form"},
		{"formalize", "formal"},
		{"electriciti", "electr"},
		{"electrical", "electr"},
		{"hopeful", "hope"},
		{"goodness", "good"},
		{"revival", "reviv"},
		{"allowance", "allow"},
		{"inference", "infer"},
		{"airliner", "airlin"},
		{"gyroscopic", "gyroscop"},
		{"adjustable", "adjust"},
		{"defensible", "defens"},
		{"irritant", "irrit"},
		{"replacement", "replac"},
		{"adjustment", "adjust"},
		{"dependent", "depend"},
		{"adoption", "adopt"},
		{"homologou", "homolog"},
		{"communism", "commun"},
		{"activate", "activ"},
		{"angulariti", "angular"},
		{"homologous", "homolog"},
		{"effective", "effect"},
		{"bowdlerize", "bowdler"},
		{"probate", "probat"},
		{"rate", "rate"},
		{"cease", "ceas"},
		{"controll", "control"},
		{"roll", "roll"},
		{"retrieval", "retriev"},
		{"systems", "system"},
		{"system", "system"},
		// Edge cases.
		{"", ""},
		{"a", "a"},
		{"is", "is"},
		{"Z39.50", "z39.50"}, // non-alphabetic passes through lower-cased
		{"DATABASES", "databas"},
	}
	for _, tc := range cases {
		if got := Stem(tc.in); got != tc.want {
			t.Errorf("Stem(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// Properties of Stem over arbitrary alphabetic input. (Porter stemming is
// deliberately NOT idempotent — "databases" -> "databas" -> "databa" — so
// the invariant that matters for search is that documents and queries go
// through the pipeline exactly once; these properties check what the
// algorithm does guarantee.)
func TestStemProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(14)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		w := string(b)
		s := Stem(w)
		if s == "" {
			return false // alphabetic input never stems to nothing
		}
		// Output stays lowercase alphabetic.
		for i := 0; i < len(s); i++ {
			if s[i] < 'a' || s[i] > 'z' {
				return false
			}
		}
		// A stem is never more than one byte longer than its input (the
		// only growth rule appends 'e' after removing >=2 bytes).
		if len(s) > len(w) {
			return false
		}
		// Regular plural and singular share a stem (for words long enough
		// to stem and not ending in letters that trigger other rules).
		return len(w) < 3 || Stem(w+"s") == Stem(w) || hasSuffixStr(w, "s") ||
			hasSuffixStr(w, "e") || hasSuffixStr(w, "i") || hasSuffixStr(w, "y") ||
			hasSuffixStr(w, "u")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func hasSuffixStr(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

func TestTokenizers(t *testing.T) {
	acme1, ok := LookupTokenizer("acme-1")
	if !ok {
		t.Fatal("Acme-1 not registered")
	}
	acme2, _ := LookupTokenizer("Acme-2")

	// The paper's tokenization question: is "Z39.50" one token or two?
	if got := acme1.Tokenize("the Z39.50 standard"); len(got) != 3 || got[1].Text != "Z39.50" {
		t.Errorf("Acme-1 tokens = %v", got)
	}
	if got := acme2.Tokenize("the Z39.50 standard"); len(got) != 4 || got[1].Text != "Z39" || got[2].Text != "50" {
		t.Errorf("Acme-2 tokens = %v", got)
	}

	// Keep runes are trimmed at token edges.
	if got := acme1.Tokenize("The end."); got[len(got)-1].Text != "end" {
		t.Errorf("trailing period kept: %v", got)
	}

	// Positions are sequential.
	toks := acme2.Tokenize("one, two; three")
	for i, tok := range toks {
		if tok.Pos != i {
			t.Errorf("token %d has pos %d", i, tok.Pos)
		}
	}

	// Unicode text tokenizes by letter class.
	if got := acme2.Tokenize("búsqueda de datos"); len(got) != 3 || got[0].Text != "búsqueda" {
		t.Errorf("Spanish tokens = %v", got)
	}
	if got := acme2.Tokenize(""); len(got) != 0 {
		t.Errorf("empty input gave %v", got)
	}
	if got := acme2.Tokenize("..."); len(got) != 0 {
		t.Errorf("punctuation-only input gave %v", got)
	}
}

func TestRegisterTokenizerDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	RegisterTokenizer(&SeparatorTokenizer{Name: "ACME-1"})
}

func TestTokenizerIDs(t *testing.T) {
	ids := TokenizerIDs()
	want := map[string]bool{"Acme-1": true, "Acme-2": true, "Acme-3": true}
	found := 0
	for _, id := range ids {
		if want[id] {
			found++
		}
	}
	if found != 3 {
		t.Errorf("TokenizerIDs = %v, missing built-ins", ids)
	}
}

func TestStopLists(t *testing.T) {
	en := EnglishStopWords()
	if !en.Contains("the") || !en.Contains("The") || !en.Contains("WHO") == false && en.Contains("databases") {
		t.Error("English stop list misbehaves")
	}
	if !en.Contains("who") {
		t.Error("'who' should be an English stop word (The Who example)")
	}
	if en.Contains("databases") {
		t.Error("'databases' must not be a stop word")
	}
	es := SpanishStopWords()
	if !es.Contains("de") || es.Contains("datos") {
		t.Error("Spanish stop list misbehaves")
	}
	var nilList *StopList
	if nilList.Contains("the") || nilList.Len() != 0 || nilList.Words() != nil {
		t.Error("nil stop list should behave as empty")
	}
	if got := NewStopList("x", []string{"b", "a"}).Words(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Words = %v", got)
	}
}

func TestSoundex(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Robert", "R163"},
		{"Rupert", "R163"},
		{"Ashcraft", "A261"},
		{"Ashcroft", "A261"},
		{"Tymczak", "T522"},
		{"Pfister", "P236"},
		{"Honeyman", "H555"},
		{"Smith", "S530"},
		{"Smyth", "S530"},
		{"Gravano", "G615"},
		{"", ""},
		{"123", ""},
		{"a", "A000"},
	}
	for _, tc := range cases {
		if got := Soundex(tc.in); got != tc.want {
			t.Errorf("Soundex(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	if !SoundexEqual("Smith", "Smyth") {
		t.Error("Smith/Smyth should be soundex-equal")
	}
	if SoundexEqual("Smith", "Jones") {
		t.Error("Smith/Jones should differ")
	}
	if SoundexEqual("", "") {
		t.Error("empty words are not soundex-equal")
	}
}

func TestThesaurus(t *testing.T) {
	th := DefaultThesaurus()
	exp := th.Expand("database")
	if exp[0] != "database" || len(exp) != 3 {
		t.Errorf("Expand(database) = %v", exp)
	}
	// Symmetric: databank expands back to database.
	found := false
	for _, w := range th.Expand("databank") {
		if w == "database" {
			found = true
		}
	}
	if !found {
		t.Error("thesaurus expansion not symmetric")
	}
	if got := th.Expand("unrelatedword"); len(got) != 1 || got[0] != "unrelatedword" {
		t.Errorf("Expand(unknown) = %v", got)
	}
	var nilTh *Thesaurus
	if got := nilTh.Expand("x"); len(got) != 1 {
		t.Errorf("nil thesaurus Expand = %v", got)
	}
	// Overlapping groups merge.
	th2 := NewThesaurus([]string{"a", "b"}, []string{"b", "c"})
	if got := th2.Expand("b"); len(got) != 3 {
		t.Errorf("merged Expand(b) = %v", got)
	}
}

func TestAnalyzer(t *testing.T) {
	a := NewAnalyzer()
	toks := a.Analyze("The Distributed Databases of the future")
	// "The", "of", "the" eliminated; rest stemmed and folded.
	wantTexts := []string{"distribut", "databas", "futur"}
	if len(toks) != len(wantTexts) {
		t.Fatalf("Analyze = %v", toks)
	}
	for i, w := range wantTexts {
		if toks[i].Text != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, w)
		}
	}
	// Positions preserved across stop-word elimination: "Distributed" was
	// token 1 of the raw stream.
	if toks[0].Pos != 1 || toks[1].Pos != 2 || toks[2].Pos != 5 {
		t.Errorf("positions = %d,%d,%d", toks[0].Pos, toks[1].Pos, toks[2].Pos)
	}

	all := a.AnalyzeAll("The Who")
	if len(all) != 2 || all[0].Text != "the" || all[1].Text != "who" {
		t.Errorf("AnalyzeAll = %v", all)
	}
	if got := a.Analyze("The Who"); len(got) != 0 {
		t.Errorf("stop-word query should analyze to nothing, got %v", got)
	}

	if n := a.CountTokens("one two three"); n != 3 {
		t.Errorf("CountTokens = %d", n)
	}

	cs := &Analyzer{Tokenizer: a.Tokenizer, CaseSensitive: true}
	if got := cs.NormalizeTerm("Ullman"); got != "Ullman" {
		t.Errorf("case-sensitive NormalizeTerm = %q", got)
	}
	if got := a.NormalizeTerm("Databases"); got != "databas" {
		t.Errorf("NormalizeTerm = %q", got)
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"databases", "relational", "generalization", "distributed", "engineering"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}

func BenchmarkAnalyze(b *testing.B) {
	a := NewAnalyzer()
	const doc = "The effectiveness of GlOSS for the text-database discovery problem " +
		"was evaluated over distributed heterogeneous document collections."
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Analyze(doc)
	}
}
