package text

import (
	"sort"
	"strings"
)

// Thesaurus maps words to synonym groups for the STARTS "thesaurus"
// modifier, which expands a query term with its synonyms before matching.
// Expansion is symmetric: every member of a group expands to the whole
// group.
type Thesaurus struct {
	groups map[string][]string // lower-cased word -> sorted group incl. itself
}

// NewThesaurus builds a thesaurus from synonym groups. Words may appear in
// multiple groups; their expansions are merged.
func NewThesaurus(groups ...[]string) *Thesaurus {
	t := &Thesaurus{groups: map[string][]string{}}
	for _, g := range groups {
		set := map[string]bool{}
		for _, w := range g {
			set[strings.ToLower(w)] = true
		}
		for w := range set {
			merged := map[string]bool{}
			for _, prev := range t.groups[w] {
				merged[prev] = true
			}
			for other := range set {
				merged[other] = true
			}
			list := make([]string, 0, len(merged))
			for m := range merged {
				list = append(list, m)
			}
			sort.Strings(list)
			t.groups[w] = list
		}
	}
	return t
}

// Expand returns word together with its synonyms (lower-cased, sorted,
// word first). A word with no group expands to itself alone.
func (t *Thesaurus) Expand(word string) []string {
	w := strings.ToLower(word)
	if t == nil || t.groups[w] == nil {
		return []string{w}
	}
	out := []string{w}
	for _, s := range t.groups[w] {
		if s != w {
			out = append(out, s)
		}
	}
	return out
}

// DefaultThesaurus returns the small built-in thesaurus used by the
// example sources; real engines would plug in their own.
func DefaultThesaurus() *Thesaurus {
	return NewThesaurus(
		[]string{"database", "databank", "datastore"},
		[]string{"distributed", "decentralized", "federated"},
		[]string{"search", "retrieval", "lookup"},
		[]string{"fast", "quick", "rapid"},
		[]string{"car", "automobile"},
		[]string{"illness", "disease", "sickness"},
	)
}
