package text

import "strings"

// Stem reduces an English word to its stem using the Porter stemming
// algorithm (Porter, 1980), the classic algorithm behind the "stem"
// modifier of the STARTS query language: a query on "databases" with the
// stem modifier also matches "database".
//
// The input is lower-cased first; words shorter than three letters are
// returned unchanged, as in Porter's original definition.
func Stem(word string) string {
	w := []byte(strings.ToLower(word))
	if len(w) <= 2 {
		return string(w)
	}
	for _, c := range w {
		if c < 'a' || c > 'z' {
			return string(w) // non-alphabetic input passes through
		}
	}
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// isCons reports whether w[i] acts as a consonant at position i. 'y' is a
// consonant when it begins the word or follows a vowel.
func isCons(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(w, i-1)
	}
	return true
}

// measure computes m, the number of vowel-consonant sequences in w
// ([C](VC)^m[V] in Porter's notation).
func measure(w []byte) int {
	n, i := 0, 0
	for i < len(w) && isCons(w, i) {
		i++
	}
	for i < len(w) {
		for i < len(w) && !isCons(w, i) {
			i++
		}
		if i == len(w) {
			break
		}
		n++
		for i < len(w) && isCons(w, i) {
			i++
		}
	}
	return n
}

func hasVowel(w []byte) bool {
	for i := range w {
		if !isCons(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleCons reports whether w ends with a doubled consonant.
func endsDoubleCons(w []byte) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && isCons(w, n-1)
}

// endsCVC reports whether w ends consonant-vowel-consonant where the final
// consonant is not w, x or y (the *o condition).
func endsCVC(w []byte) bool {
	n := len(w)
	if n < 3 {
		return false
	}
	if !isCons(w, n-3) || isCons(w, n-2) || !isCons(w, n-1) {
		return false
	}
	c := w[n-1]
	return c != 'w' && c != 'x' && c != 'y'
}

func hasSuffix(w []byte, s string) bool {
	return len(w) >= len(s) && string(w[len(w)-len(s):]) == s
}

// replaceSuffix replaces suffix s with r if the stem before s has measure
// at least m. It reports whether the suffix matched (not whether it was
// replaced), which callers use to stop at the first matching rule.
func replaceSuffix(w *[]byte, s, r string, m int) bool {
	if !hasSuffix(*w, s) {
		return false
	}
	stem := (*w)[:len(*w)-len(s)]
	if measure(stem) >= m {
		*w = append(stem[:len(stem):len(stem)], r...)
	}
	return true
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return w[:len(w)-2]
	case hasSuffix(w, "ies"):
		return w[:len(w)-2]
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		if measure(w[:len(w)-3]) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	var stem []byte
	switch {
	case hasSuffix(w, "ed") && hasVowel(w[:len(w)-2]):
		stem = w[:len(w)-2]
	case hasSuffix(w, "ing") && hasVowel(w[:len(w)-3]):
		stem = w[:len(w)-3]
	default:
		return w
	}
	switch {
	case hasSuffix(stem, "at"), hasSuffix(stem, "bl"), hasSuffix(stem, "iz"):
		return append(stem, 'e')
	case endsDoubleCons(stem) && !hasSuffix(stem, "l") && !hasSuffix(stem, "s") && !hasSuffix(stem, "z"):
		return stem[:len(stem)-1]
	case measure(stem) == 1 && endsCVC(stem):
		return append(stem, 'e')
	}
	return stem
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && hasVowel(w[:len(w)-1]) {
		return append(w[:len(w)-1], 'i')
	}
	return w
}

func step2(w []byte) []byte {
	rules := []struct{ s, r string }{
		{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
		{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"},
		{"alli", "al"}, {"entli", "ent"}, {"eli", "e"}, {"ousli", "ous"},
		{"ization", "ize"}, {"ation", "ate"}, {"ator", "ate"},
		{"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
		{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"},
		{"biliti", "ble"},
	}
	for _, rule := range rules {
		if replaceSuffix(&w, rule.s, rule.r, 1) {
			return w
		}
	}
	return w
}

func step3(w []byte) []byte {
	rules := []struct{ s, r string }{
		{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
		{"ical", "ic"}, {"ful", ""}, {"ness", ""},
	}
	for _, rule := range rules {
		if replaceSuffix(&w, rule.s, rule.r, 1) {
			return w
		}
	}
	return w
}

func step4(w []byte) []byte {
	suffixes := []string{
		"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
		"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
	}
	for _, s := range suffixes {
		if !hasSuffix(w, s) {
			continue
		}
		stem := w[:len(w)-len(s)]
		if s == "ion" && len(stem) > 0 {
			last := stem[len(stem)-1]
			if last != 's' && last != 't' {
				return w
			}
		}
		if measure(stem) > 1 {
			return stem
		}
		return w
	}
	return w
}

func step5a(w []byte) []byte {
	if !hasSuffix(w, "e") {
		return w
	}
	stem := w[:len(w)-1]
	m := measure(stem)
	if m > 1 || (m == 1 && !endsCVC(stem)) {
		return stem
	}
	return w
}

func step5b(w []byte) []byte {
	if hasSuffix(w, "ll") && measure(w) > 1 {
		return w[:len(w)-1]
	}
	return w
}
