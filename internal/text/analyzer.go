package text

import "strings"

// Analyzer is the per-language indexing pipeline of a search engine:
// tokenize, optionally fold case, optionally drop stop words, optionally
// stem. Engines expose their analyzer configuration through source
// metadata (TokenizerIDList, StopWordList, and the content-summary flag
// bits), which is exactly the information a metasearcher needs to
// translate queries faithfully.
type Analyzer struct {
	Tokenizer     Tokenizer
	Stop          *StopList // nil disables stop-word elimination
	Stemming      bool
	CaseSensitive bool
}

// NewAnalyzer returns an analyzer with the common defaults: the Acme-2
// tokenizer, the default English stop list, stemming on, case folding on.
func NewAnalyzer() *Analyzer {
	tok, _ := LookupTokenizer("Acme-2")
	return &Analyzer{Tokenizer: tok, Stop: EnglishStopWords(), Stemming: true}
}

// Fold applies the analyzer's case policy to a single word.
func (a *Analyzer) Fold(word string) string {
	if a.CaseSensitive {
		return word
	}
	return strings.ToLower(word)
}

// NormalizeTerm applies case folding and stemming to a single word,
// exactly as Analyze would, without stop-word elimination. Query
// evaluation uses it to map query terms into index vocabulary.
func (a *Analyzer) NormalizeTerm(word string) string {
	w := a.Fold(word)
	if a.Stemming {
		w = Stem(w)
	}
	return w
}

// Analyze runs the full pipeline over text. Token positions count every
// token the tokenizer produced, including eliminated stop words, so
// proximity distances are preserved across stop-word removal.
func (a *Analyzer) Analyze(text string) []Token {
	raw := a.Tokenizer.Tokenize(text)
	out := make([]Token, 0, len(raw))
	for _, t := range raw {
		if a.Stop.Contains(t.Text) {
			continue
		}
		out = append(out, Token{Text: a.NormalizeTerm(t.Text), Pos: t.Pos})
	}
	return out
}

// AnalyzeAll is Analyze without stop-word elimination, used when a query
// sets DropStopWords to false at a source that allows it.
func (a *Analyzer) AnalyzeAll(text string) []Token {
	raw := a.Tokenizer.Tokenize(text)
	out := make([]Token, 0, len(raw))
	for _, t := range raw {
		out = append(out, Token{Text: a.NormalizeTerm(t.Text), Pos: t.Pos})
	}
	return out
}

// CountTokens returns the raw token count of text under this analyzer's
// tokenizer, the Document-count statistic of query results.
func (a *Analyzer) CountTokens(text string) int {
	return len(a.Tokenizer.Tokenize(text))
}
