// Package text implements the linguistic substrate STARTS sources need:
// named tokenizers, the Porter stemmer, stop-word lists, soundex phonetic
// codes, thesaurus expansion and case folding. Search engines compose these
// into analyzers; sources advertise which ones they use through the
// TokenizerIDList and StopWordList metadata attributes.
package text

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"unicode"
)

// Token is a single indexable unit extracted from text, with its word
// position (0-based) for proximity evaluation.
type Token struct {
	Text string
	Pos  int
}

// Tokenizer extracts indexable tokens from a string. STARTS deliberately
// treats tokenizers as named black boxes: a source names its tokenizer
// (for example "Acme-1") in its metadata, and a metasearcher learns how a
// tokenizer behaves by examining the actual queries a source reports back.
type Tokenizer interface {
	// ID is the tokenizer's registered name, e.g. "Acme-1".
	ID() string
	// Tokenize splits text into tokens with word positions.
	Tokenize(text string) []Token
}

// SeparatorTokenizer splits on any rune that is neither a letter, a digit,
// nor one of Keep. Keeping "." and "-" inside tokens preserves terms such
// as "Z39.50", the paper's running tokenization example; splitting on "."
// yields "Z39" and "50" instead.
type SeparatorTokenizer struct {
	Name string
	Keep string // runes allowed inside a token besides letters and digits
}

// ID implements Tokenizer.
func (t *SeparatorTokenizer) ID() string { return t.Name }

// Tokenize implements Tokenizer. Keep runes are only retained inside
// tokens, never at the edges, so "end." tokenizes to "end" even when "." is
// kept for "Z39.50".
func (t *SeparatorTokenizer) Tokenize(text string) []Token {
	var toks []Token
	var cur strings.Builder
	pos := 0
	flush := func() {
		if cur.Len() == 0 {
			return
		}
		word := strings.Trim(cur.String(), t.Keep)
		cur.Reset()
		if word == "" {
			return
		}
		toks = append(toks, Token{Text: word, Pos: pos})
		pos++
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || strings.ContainsRune(t.Keep, r) {
			cur.WriteRune(r)
			continue
		}
		flush()
	}
	flush()
	return toks
}

var (
	tokMu  sync.RWMutex
	tokReg = map[string]Tokenizer{}
)

// RegisterTokenizer adds a tokenizer to the global registry under its ID.
// Registering a duplicate ID is a programming error and panics.
func RegisterTokenizer(t Tokenizer) {
	tokMu.Lock()
	defer tokMu.Unlock()
	id := strings.ToLower(t.ID())
	if _, dup := tokReg[id]; dup {
		panic(fmt.Sprintf("text: tokenizer %q registered twice", t.ID()))
	}
	tokReg[id] = t
}

// LookupTokenizer finds a registered tokenizer by ID, case-insensitively.
func LookupTokenizer(id string) (Tokenizer, bool) {
	tokMu.RLock()
	defer tokMu.RUnlock()
	t, ok := tokReg[strings.ToLower(id)]
	return t, ok
}

// TokenizerIDs lists the registered tokenizer IDs, sorted.
func TokenizerIDs() []string {
	tokMu.RLock()
	defer tokMu.RUnlock()
	ids := make([]string, 0, len(tokReg))
	for _, t := range tokReg {
		ids = append(ids, t.ID())
	}
	sort.Strings(ids)
	return ids
}

// The built-in tokenizers. Acme-1 mimics an engine that keeps "." and "-"
// inside tokens; Acme-2 splits on everything non-alphanumeric; Acme-3
// additionally keeps "/" (path-like tokens).
func init() {
	RegisterTokenizer(&SeparatorTokenizer{Name: "Acme-1", Keep: ".-"})
	RegisterTokenizer(&SeparatorTokenizer{Name: "Acme-2"})
	RegisterTokenizer(&SeparatorTokenizer{Name: "Acme-3", Keep: "./-"})
}
