package text

import (
	"sort"
	"strings"
)

// StopList is a named set of stop words for one language. Sources export
// their stop-word list through the StopWordList metadata attribute and
// report, via TurnOffStopWords, whether queries may disable stop-word
// elimination — which is what lets a metasearcher run a query for the rock
// group "The Who" against sources that would otherwise drop both words.
type StopList struct {
	Name  string
	words map[string]bool
}

// NewStopList builds a stop list from words; matching is case-insensitive.
func NewStopList(name string, words []string) *StopList {
	sl := &StopList{Name: name, words: make(map[string]bool, len(words))}
	for _, w := range words {
		sl.words[strings.ToLower(w)] = true
	}
	return sl
}

// Contains reports whether word is a stop word.
func (sl *StopList) Contains(word string) bool {
	if sl == nil {
		return false
	}
	return sl.words[strings.ToLower(word)]
}

// Words returns the stop words, sorted, for export in source metadata.
func (sl *StopList) Words() []string {
	if sl == nil {
		return nil
	}
	ws := make([]string, 0, len(sl.words))
	for w := range sl.words {
		ws = append(ws, w)
	}
	sort.Strings(ws)
	return ws
}

// Len returns the number of stop words.
func (sl *StopList) Len() int {
	if sl == nil {
		return 0
	}
	return len(sl.words)
}

// EnglishStopWords returns the default English stop list, a compact variant
// of the classic van Rijsbergen list.
func EnglishStopWords() *StopList {
	return NewStopList("english-default", []string{
		"a", "about", "above", "after", "again", "all", "also", "am", "an",
		"and", "any", "are", "as", "at", "be", "because", "been", "before",
		"being", "below", "between", "both", "but", "by", "can", "could",
		"did", "do", "does", "doing", "down", "during", "each", "few", "for",
		"from", "further", "had", "has", "have", "having", "he", "her",
		"here", "hers", "him", "his", "how", "i", "if", "in", "into", "is",
		"it", "its", "just", "me", "more", "most", "my", "no", "nor", "not",
		"now", "of", "off", "on", "once", "only", "or", "other", "our",
		"ours", "out", "over", "own", "same", "she", "should", "so", "some",
		"such", "than", "that", "the", "their", "theirs", "them", "then",
		"there", "these", "they", "this", "those", "through", "to", "too",
		"under", "until", "up", "very", "was", "we", "were", "what", "when",
		"where", "which", "while", "who", "whom", "why", "will", "with",
		"you", "your", "yours",
	})
}

// SpanishStopWords returns the default Spanish stop list used by the
// multi-language examples.
func SpanishStopWords() *StopList {
	return NewStopList("spanish-default", []string{
		"a", "al", "algo", "ante", "antes", "como", "con", "contra", "cual",
		"cuando", "de", "del", "desde", "donde", "durante", "e", "el", "ella",
		"ellas", "ellos", "en", "entre", "era", "es", "esa", "ese", "eso",
		"esta", "este", "esto", "fue", "ha", "hace", "hasta", "hay", "la",
		"las", "le", "les", "lo", "los", "mas", "me", "mi", "muy", "nada",
		"ni", "no", "nos", "o", "os", "otra", "otro", "para", "pero", "poco",
		"por", "porque", "que", "quien", "se", "ser", "si", "sin", "sobre",
		"son", "su", "sus", "te", "tiene", "todo", "tras", "tu", "un", "una",
		"uno", "unos", "y", "ya", "yo",
	})
}

// MinimalStopWords returns a tiny stop list, used to model engines that
// barely eliminate anything.
func MinimalStopWords() *StopList {
	return NewStopList("minimal", []string{"a", "an", "and", "of", "or", "the"})
}
