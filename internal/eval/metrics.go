// Package eval provides the retrieval-evaluation metrics the experiment
// harnesses use: precision/recall at a cutoff, rank correlation (Kendall's
// tau and Spearman's rho), and the GlOSS Rn measure of source-selection
// quality.
package eval

import (
	"fmt"
	"sort"
)

// PrecisionAtK returns the fraction of the top k ranked items that are
// relevant. A rank shorter than k is evaluated over what is there.
func PrecisionAtK(ranked []string, relevant map[string]bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	if len(ranked) < k {
		k = len(ranked)
	}
	if k == 0 {
		return 0
	}
	hits := 0
	for _, id := range ranked[:k] {
		if relevant[id] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// RecallAtK returns the fraction of relevant items found in the top k.
func RecallAtK(ranked []string, relevant map[string]bool, k int) float64 {
	if len(relevant) == 0 {
		return 0
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	hits := 0
	for _, id := range ranked[:k] {
		if relevant[id] {
			hits++
		}
	}
	return float64(hits) / float64(len(relevant))
}

// Overlap returns |a ∩ b| / |a ∪ b| (Jaccard) for two item sets.
func Overlap(a, b []string) float64 {
	sa := map[string]bool{}
	for _, x := range a {
		sa[x] = true
	}
	inter, union := 0, len(sa)
	seen := map[string]bool{}
	for _, x := range b {
		if seen[x] {
			continue
		}
		seen[x] = true
		if sa[x] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 1 // two empty sets are identical
	}
	return float64(inter) / float64(union)
}

// KendallTau computes Kendall's rank correlation between two orderings of
// the same item set, in [-1, 1]. Items present in only one ranking are
// ignored. Fewer than two common items yield an error.
func KendallTau(a, b []string) (float64, error) {
	posB := map[string]int{}
	for i, id := range b {
		posB[id] = i
	}
	var common []string
	for _, id := range a {
		if _, ok := posB[id]; ok {
			common = append(common, id)
		}
	}
	n := len(common)
	if n < 2 {
		return 0, fmt.Errorf("eval: need at least two common items for Kendall tau, have %d", n)
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			// In a, common[i] precedes common[j] by construction.
			if posB[common[i]] < posB[common[j]] {
				concordant++
			} else {
				discordant++
			}
		}
	}
	pairs := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(pairs), nil
}

// SpearmanRho computes Spearman's rank correlation between two orderings
// of the same item set, in [-1, 1], over their common items.
func SpearmanRho(a, b []string) (float64, error) {
	posB := map[string]int{}
	for i, id := range b {
		posB[id] = i
	}
	var common []string
	for _, id := range a {
		if _, ok := posB[id]; ok {
			common = append(common, id)
		}
	}
	n := len(common)
	if n < 2 {
		return 0, fmt.Errorf("eval: need at least two common items for Spearman rho, have %d", n)
	}
	// Ranks within the common subsequence.
	rankA := map[string]int{}
	for i, id := range common {
		rankA[id] = i
	}
	bCommon := make([]string, 0, n)
	for _, id := range b {
		if _, ok := rankA[id]; ok {
			bCommon = append(bCommon, id)
		}
	}
	var d2 float64
	for i, id := range bCommon {
		d := float64(rankA[id] - i)
		d2 += d * d
	}
	nf := float64(n)
	return 1 - 6*d2/(nf*(nf*nf-1)), nil
}

// Rn is the GlOSS source-selection quality measure: the merit accumulated
// by visiting the first n sources of a proposed order, divided by the
// merit of the best possible n sources. merit maps source IDs to their
// true usefulness for the query (e.g. the number of relevant documents
// they hold). An ideal order achieves Rn = 1 for every n.
func Rn(order []string, merit map[string]float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	best := make([]float64, 0, len(merit))
	total := 0.0
	for _, m := range merit {
		best = append(best, m)
		total += m
	}
	if total == 0 {
		return 1 // no merit anywhere: any order is ideal
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(best)))
	ideal := 0.0
	for i := 0; i < n && i < len(best); i++ {
		ideal += best[i]
	}
	if ideal == 0 {
		return 1
	}
	got := 0.0
	for i := 0; i < n && i < len(order); i++ {
		got += merit[order[i]]
	}
	return got / ideal
}
