package eval

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPrecisionRecall(t *testing.T) {
	ranked := []string{"a", "b", "c", "d"}
	rel := map[string]bool{"a": true, "c": true, "z": true}
	if got := PrecisionAtK(ranked, rel, 2); !almost(got, 0.5) {
		t.Errorf("P@2 = %g", got)
	}
	if got := PrecisionAtK(ranked, rel, 4); !almost(got, 0.5) {
		t.Errorf("P@4 = %g", got)
	}
	if got := PrecisionAtK(ranked, rel, 10); !almost(got, 0.5) {
		t.Errorf("P@10 over short rank = %g", got)
	}
	if got := PrecisionAtK(ranked, rel, 0); got != 0 {
		t.Errorf("P@0 = %g", got)
	}
	if got := PrecisionAtK(nil, rel, 3); got != 0 {
		t.Errorf("P over empty rank = %g", got)
	}
	if got := RecallAtK(ranked, rel, 4); !almost(got, 2.0/3.0) {
		t.Errorf("R@4 = %g", got)
	}
	if got := RecallAtK(ranked, nil, 4); got != 0 {
		t.Errorf("R with no relevant = %g", got)
	}
}

func TestOverlap(t *testing.T) {
	if got := Overlap([]string{"a", "b"}, []string{"b", "c"}); !almost(got, 1.0/3.0) {
		t.Errorf("Overlap = %g", got)
	}
	if got := Overlap(nil, nil); got != 1 {
		t.Errorf("Overlap of empties = %g", got)
	}
	if got := Overlap([]string{"a"}, []string{"a"}); got != 1 {
		t.Errorf("Overlap identical = %g", got)
	}
	if got := Overlap([]string{"a"}, []string{"b"}); got != 0 {
		t.Errorf("Overlap disjoint = %g", got)
	}
	// Duplicates in b are counted once.
	if got := Overlap([]string{"a"}, []string{"a", "a"}); got != 1 {
		t.Errorf("Overlap with dup = %g", got)
	}
}

func TestKendallTau(t *testing.T) {
	if tau, err := KendallTau([]string{"a", "b", "c"}, []string{"a", "b", "c"}); err != nil || !almost(tau, 1) {
		t.Errorf("identical tau = %g, %v", tau, err)
	}
	if tau, err := KendallTau([]string{"a", "b", "c"}, []string{"c", "b", "a"}); err != nil || !almost(tau, -1) {
		t.Errorf("reversed tau = %g, %v", tau, err)
	}
	// One swap among three: 2 concordant, 1 discordant -> 1/3.
	if tau, err := KendallTau([]string{"a", "b", "c"}, []string{"b", "a", "c"}); err != nil || !almost(tau, 1.0/3.0) {
		t.Errorf("one-swap tau = %g, %v", tau, err)
	}
	// Non-common items are ignored.
	if tau, err := KendallTau([]string{"a", "x", "b"}, []string{"a", "b", "y"}); err != nil || !almost(tau, 1) {
		t.Errorf("partial tau = %g, %v", tau, err)
	}
	if _, err := KendallTau([]string{"a"}, []string{"a"}); err == nil {
		t.Error("tau over one item should fail")
	}
	if _, err := KendallTau([]string{"a", "b"}, []string{"x", "y"}); err == nil {
		t.Error("tau over disjoint ranks should fail")
	}
}

func TestSpearmanRho(t *testing.T) {
	if rho, err := SpearmanRho([]string{"a", "b", "c", "d"}, []string{"a", "b", "c", "d"}); err != nil || !almost(rho, 1) {
		t.Errorf("identical rho = %g, %v", rho, err)
	}
	if rho, err := SpearmanRho([]string{"a", "b", "c", "d"}, []string{"d", "c", "b", "a"}); err != nil || !almost(rho, -1) {
		t.Errorf("reversed rho = %g, %v", rho, err)
	}
	if _, err := SpearmanRho([]string{"a"}, []string{"a"}); err == nil {
		t.Error("rho over one item should fail")
	}
}

func TestRn(t *testing.T) {
	merit := map[string]float64{"s1": 10, "s2": 5, "s3": 0, "s4": 1}
	ideal := []string{"s1", "s2", "s4", "s3"}
	if got := Rn(ideal, merit, 1); !almost(got, 1) {
		t.Errorf("ideal R1 = %g", got)
	}
	if got := Rn(ideal, merit, 2); !almost(got, 1) {
		t.Errorf("ideal R2 = %g", got)
	}
	bad := []string{"s3", "s4", "s2", "s1"}
	if got := Rn(bad, merit, 1); !almost(got, 0) {
		t.Errorf("bad R1 = %g", got)
	}
	if got := Rn(bad, merit, 2); !almost(got, 1.0/15.0) {
		t.Errorf("bad R2 = %g", got)
	}
	// All-zero merit: any order is ideal.
	if got := Rn(bad, map[string]float64{"a": 0}, 1); got != 1 {
		t.Errorf("zero-merit Rn = %g", got)
	}
	if got := Rn(ideal, merit, 0); got != 0 {
		t.Errorf("R0 = %g", got)
	}
	// n beyond the number of sources saturates at 1.
	if got := Rn(bad, merit, 10); !almost(got, 1) {
		t.Errorf("R10 = %g", got)
	}
}
