package qcache_test

import (
	"testing"

	"starts/internal/qcache"
	"starts/internal/qcache/storetest"
)

// TestLRUStoreConformance runs the shared Store conformance suite
// against the default sharded LRU backend; the peer store runs the same
// suite over a live two-node cluster in internal/peer.
func TestLRUStoreConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) qcache.Store {
		return qcache.NewLRUStore(0, 0, nil)
	})
}
