package qcache

import (
	"context"

	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/source"
)

// SourceConn mirrors client.Conn method-for-method, declared here (like
// obs.SourceConn) so qcache never imports the client package and the
// dependency keeps pointing outward. Go interfaces are structural: any
// client.Conn satisfies SourceConn and vice versa.
type SourceConn interface {
	SourceID() string
	Metadata(ctx context.Context) (*meta.SourceMeta, error)
	Summary(ctx context.Context) (*meta.ContentSummary, error)
	Sample(ctx context.Context) ([]*source.SampleEntry, error)
	Query(ctx context.Context, q *query.Query) (*result.Results, error)
}

// Conn caches a source connection's Query results independently of any
// merged-answer cache: repeated per-source queries — from different
// merged queries that translate identically, or from a broker hierarchy
// — are served from cache with the full Do policy (coalescing,
// stale-while-revalidate, shedding). Metadata, Summary and Sample pass
// through: the metasearch core already caches harvests by DateExpires.
//
// Compose it with client.Chain so the cache sits OUTSIDE the retrier
// (retries re-run the source, never the cache — a cached failure would
// defeat them) and INSIDE the observer (cache hits still open conn spans
// and count into conn metrics):
//
//	client.Chain(conn, retryMW, cacheMW, observeMW)
//	// = observe(cache(retry(conn)))
//
// Cached results are shared between callers and must be treated as
// read-only.
type Conn struct {
	inner SourceConn
	cache *Cache
	keyer Keyer
}

var _ SourceConn = (*Conn)(nil)

// WrapConn returns a caching wrapper for inner backed by cache. Keys are
// scoped by the source ID, so sources sharing one cache never collide. A
// nil cache passes everything through.
func WrapConn(inner SourceConn, cache *Cache) *Conn {
	return &Conn{inner: inner, cache: cache, keyer: Keyer{Scope: "conn/" + inner.SourceID()}}
}

// SourceID implements client.Conn.
func (c *Conn) SourceID() string { return c.inner.SourceID() }

// Metadata implements client.Conn, passing through.
func (c *Conn) Metadata(ctx context.Context) (*meta.SourceMeta, error) {
	return c.inner.Metadata(ctx)
}

// Summary implements client.Conn, passing through.
func (c *Conn) Summary(ctx context.Context) (*meta.ContentSummary, error) {
	return c.inner.Summary(ctx)
}

// Sample implements client.Conn, passing through.
func (c *Conn) Sample(ctx context.Context) ([]*source.SampleEntry, error) {
	return c.inner.Sample(ctx)
}

// Query implements client.Conn, serving repeated queries from the cache.
func (c *Conn) Query(ctx context.Context, q *query.Query) (*result.Results, error) {
	if c.cache == nil {
		return c.inner.Query(ctx, q)
	}
	v, _, err := c.cache.Do(ctx, c.keyer.Key(q), func(fctx context.Context) (any, error) {
		return c.inner.Query(fctx, q)
	})
	if err != nil {
		return nil, err
	}
	return v.(*result.Results), nil
}
