package qcache

import (
	"context"
	"sync"
	"time"

	"starts/internal/meta"
	"starts/internal/query"
	"starts/internal/result"
	"starts/internal/source"
)

// SourceConn mirrors client.Conn method-for-method, declared here (like
// obs.SourceConn) so qcache never imports the client package and the
// dependency keeps pointing outward. Go interfaces are structural: any
// client.Conn satisfies SourceConn and vice versa.
type SourceConn interface {
	SourceID() string
	Metadata(ctx context.Context) (*meta.SourceMeta, error)
	Summary(ctx context.Context) (*meta.ContentSummary, error)
	Sample(ctx context.Context) ([]*source.SampleEntry, error)
	Query(ctx context.Context, q *query.Query) (*result.Results, error)
}

// Conn caches a source connection's Query results independently of any
// merged-answer cache: repeated per-source queries — from different
// merged queries that translate identically, or from a broker hierarchy
// — are served from cache with the full Do policy (coalescing,
// stale-while-revalidate, shedding). Metadata, Summary and Sample pass
// through: the metasearch core already caches harvests by DateExpires.
//
// Compose it with client.Chain so the cache sits OUTSIDE the retrier
// (retries re-run the source, never the cache — a cached failure would
// defeat them) and INSIDE the observer (cache hits still open conn spans
// and count into conn metrics):
//
//	client.Chain(conn, retryMW, cacheMW, observeMW)
//	// = observe(cache(retry(conn)))
//
// Cached results are shared between callers and must be treated as
// read-only.
//
// Each cached result's lifetime comes from the source's own freshness
// metadata: the Metadata pass-through remembers the latest DateChanged /
// DateExpires, and Query derives a per-entry TTL from them with FreshFor
// (clamped by the cache's TTLFloor/TTLCeiling). Before the first harvest
// — or when the source declares neither date — entries fall back to the
// cache's Config.TTL.
type Conn struct {
	inner SourceConn
	cache *Cache
	keyer Keyer

	mu      sync.Mutex
	seen    bool
	changed time.Time
	expires time.Time
}

var _ SourceConn = (*Conn)(nil)

// WrapConn returns a caching wrapper for inner backed by cache. Keys are
// scoped by the source ID, so sources sharing one cache never collide. A
// nil cache passes everything through. A batch-capable inner
// (BatchSourceConn) gets the batch-capable wrapper, so the capability
// passes through the chain instead of silently downgrading.
func WrapConn(inner SourceConn, cache *Cache) SourceConn {
	if bi, ok := inner.(BatchSourceConn); ok {
		return WrapBatchConn(bi, cache)
	}
	return newConn(inner, cache)
}

func newConn(inner SourceConn, cache *Cache) *Conn {
	return &Conn{inner: inner, cache: cache, keyer: Keyer{Scope: "conn/" + inner.SourceID()}}
}

// SourceID implements client.Conn.
func (c *Conn) SourceID() string { return c.inner.SourceID() }

// Metadata implements client.Conn, passing through while remembering the
// source's freshness dates for Query's per-entry TTLs.
func (c *Conn) Metadata(ctx context.Context) (*meta.SourceMeta, error) {
	md, err := c.inner.Metadata(ctx)
	if err == nil && md != nil {
		c.mu.Lock()
		c.seen = true
		c.changed = md.DateChanged
		c.expires = md.DateExpires
		c.mu.Unlock()
	}
	return md, err
}

// Summary implements client.Conn, passing through.
func (c *Conn) Summary(ctx context.Context) (*meta.ContentSummary, error) {
	return c.inner.Summary(ctx)
}

// Sample implements client.Conn, passing through.
func (c *Conn) Sample(ctx context.Context) ([]*source.SampleEntry, error) {
	return c.inner.Sample(ctx)
}

// Query implements client.Conn, serving repeated queries from the cache.
// Each fill's entry lives as long as the source's freshness metadata says
// it should (see the type comment).
func (c *Conn) Query(ctx context.Context, q *query.Query) (*result.Results, error) {
	if c.cache == nil {
		return c.inner.Query(ctx, q)
	}
	v, _, err := c.cache.DoTTL(ctx, c.keyer.Key(q), func(fctx context.Context) (any, time.Duration, error) {
		r, qerr := c.inner.Query(fctx, q)
		return r, c.freshTTL(), qerr
	})
	if err != nil {
		return nil, err
	}
	return v.(*result.Results), nil
}

// freshTTL derives the entry lifetime from the last harvested freshness
// dates; 0 (the Config.TTL fallback) before any harvest or when the
// source declares neither date.
func (c *Conn) freshTTL() time.Duration {
	c.mu.Lock()
	seen, changed, expires := c.seen, c.changed, c.expires
	c.mu.Unlock()
	if !seen {
		return 0
	}
	ttl, ok := FreshFor(changed, expires, c.cache.now())
	if !ok {
		return 0
	}
	return ttl
}
