package qcache

import "time"

// FreshFor derives how long content described by MBasic-1 freshness
// metadata (Examples 10-12 of the paper) may serve fresh, mirroring HTTP
// freshness the way the server's Cache-Control derivation does:
//
//   - DateExpires set: the time remaining until it (negative once past —
//     callers clamp or revalidate);
//   - only DateChanged set: a heuristic tenth of the age since the last
//     change (RFC 9111 §4.2.2-style — content that has not changed in ten
//     days is unlikely to change in the next one);
//   - neither usable: ok is false and the caller falls back to its
//     configured default.
func FreshFor(changed, expires, now time.Time) (ttl time.Duration, ok bool) {
	if !expires.IsZero() {
		return expires.Sub(now), true
	}
	if !changed.IsZero() && now.After(changed) {
		return now.Sub(changed) / 10, true
	}
	return 0, false
}
