package qcache

import (
	"context"
	"testing"
	"time"
)

// TestExpiresWithin pins the proactive-refresh predicate: only entries
// that are still fresh but due to expire inside the lead window report
// true.
func TestExpiresWithin(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{TTL: time.Minute, Now: clk.now})
	ctx := context.Background()

	if c.ExpiresWithin("k", time.Hour) {
		t.Error("missing entry reported as expiring")
	}
	if _, _, err := c.Do(ctx, "k", fillConst("v")); err != nil {
		t.Fatal(err)
	}
	if c.ExpiresWithin("k", 10*time.Second) {
		t.Error("fresh entry 60s from expiry reported within a 10s lead")
	}
	if !c.ExpiresWithin("k", 2*time.Minute) {
		t.Error("entry expiring inside a 2m lead not reported")
	}
	clk.advance(55 * time.Second)
	if !c.ExpiresWithin("k", 10*time.Second) {
		t.Error("entry 5s from expiry not reported within a 10s lead")
	}
	clk.advance(10 * time.Second)
	// Past expiry the entry is stale, not expiring — refreshing it ahead
	// of time is no longer possible, SWR owns it now.
	if c.ExpiresWithin("k", 10*time.Second) {
		t.Error("already-expired entry reported as expiring ahead")
	}
}

// TestRefresh pins the background re-fill: Refresh replaces the entry
// asynchronously and later reads serve the new value without a fill.
func TestRefresh(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{TTL: time.Minute, Now: clk.now})
	ctx := context.Background()
	if _, _, err := c.Do(ctx, "k", fillConst("one")); err != nil {
		t.Fatal(err)
	}

	c.Refresh("k", func(context.Context) (any, time.Duration, error) {
		return "two", 0, nil
	})
	deadline := time.Now().Add(2 * time.Second)
	for {
		v, _, err := c.Do(ctx, "k", fillConst("three"))
		if err != nil {
			t.Fatal(err)
		}
		if v == "two" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("refresh never landed; still serving %v", v)
		}
		time.Sleep(time.Millisecond)
	}
}
