package qcache

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"starts/internal/obs"
)

// A panicking leader must (1) rethrow on the leader itself, (2) hand
// joiners the panic as the call's error, and (3) leave the key usable —
// the old code left the dead call registered with done never closed, so
// every later caller for the key blocked forever.
func TestFlightLeaderPanicRethrownAndKeyNotWedged(t *testing.T) {
	g := newFlightGroup()
	ctx := context.Background()

	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("leader's panic was swallowed; want rethrow")
			}
			if r != "boom" {
				t.Fatalf("leader recovered %v; want the original panic value", r)
			}
		}()
		g.Do(ctx, "k", func() (any, error) { panic("boom") }, nil)
	}()

	// The key must not be wedged: a fresh call for it runs immediately.
	// The timeout context turns a wedged key into a test failure instead
	// of a hang.
	tctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	v, shared, err := g.Do(tctx, "k", func() (any, error) { return "ok", nil }, nil)
	if err != nil || shared || v != "ok" {
		t.Fatalf("Do after panic = %v, %v, %v; want ok, leader, nil", v, shared, err)
	}
}

func TestFlightJoinerSeesLeaderPanicAsError(t *testing.T) {
	g := newFlightGroup()
	ctx := context.Background()

	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { recover() }() // the leader takes the rethrow
		g.Do(ctx, "k", func() (any, error) {
			close(leaderIn)
			<-release
			panic("boom")
		}, nil)
	}()

	<-leaderIn
	joined := make(chan struct{})
	var jerr error
	var jshared bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, jshared, jerr = g.Do(ctx, "k", func() (any, error) { return "never", nil }, func() { close(joined) })
	}()
	<-joined
	close(release)
	wg.Wait()

	if !jshared {
		t.Fatal("second caller did not join the leader's flight")
	}
	if jerr == nil || !strings.Contains(jerr.Error(), "panicked") {
		t.Fatalf("joiner error = %v; want the leader's panic as an error", jerr)
	}
}

// A panicking Solo (background SWR refresh) must neither crash the
// process nor wedge the key.
func TestFlightSoloPanicSwallowedAndKeyNotWedged(t *testing.T) {
	g := newFlightGroup()
	done := make(chan struct{})
	g.Solo("k", func() (any, error) {
		defer close(done)
		panic("boom")
	})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Solo's fn never ran")
	}

	tctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	v, _, err := g.Do(tctx, "k", func() (any, error) { return "ok", nil }, nil)
	if err != nil || v != "ok" {
		t.Fatalf("Do after Solo panic = %v, %v; want ok, nil", v, err)
	}
}

// DoTTL with a panicking fill: the caller-facing cache behavior. The
// leader's panic propagates to its caller; the cache stays usable for
// the key and the miss is still counted.
func TestCachePanickingFillDoesNotWedgeKey(t *testing.T) {
	c := New(Config{})
	ctx := context.Background()

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("fill's panic was swallowed; want rethrow to the caller")
			}
		}()
		c.Do(ctx, "k", func(context.Context) (any, error) { panic("boom") })
	}()

	tctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	v, out, err := c.Do(tctx, "k", fillConst("ok"))
	if err != nil || out != Filled || v != "ok" {
		t.Fatalf("Do after panicking fill = %v, %v, %v; want ok, miss, nil", v, out, err)
	}
}

// A panicking SWR refresh counts as a refresh error and keeps serving
// stale; it must never crash the process.
func TestCachePanickingRefreshCountsError(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{TTL: time.Minute, StaleFor: time.Hour, Now: clk.now})
	ctx := context.Background()

	if _, _, err := c.Do(ctx, "k", fillConst("v1")); err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Minute) // expired, within the stale window

	v, out, err := c.Do(ctx, "k", func(context.Context) (any, error) { panic("boom") })
	if err != nil || out != Stale || v != "v1" {
		t.Fatalf("stale Do = %v, %v, %v; want v1, stale, nil", v, out, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.metrics.Counter(obs.MQCacheRefreshErrors).Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("panicking refresh never counted as a refresh error")
		}
		time.Sleep(time.Millisecond)
	}
}
