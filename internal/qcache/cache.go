package qcache

import (
	"container/list"
	"context"
	"sync"
	"time"

	"starts/internal/obs"
)

// Config configures a Cache. The zero value is usable: 4096 entries over
// 16 shards, one-minute TTL, a stale window of four TTLs, no admission
// bound, and a private metrics registry.
type Config struct {
	// MaxEntries bounds the cache size across all shards (default 4096).
	MaxEntries int
	// Shards is the shard count, rounded up to a power of two
	// (default 16). More shards, less mutex contention.
	Shards int
	// TTL is how long an entry serves fresh (default one minute).
	TTL time.Duration
	// StaleFor is how long past its TTL an entry may still be served
	// stale while a background refresh runs (stale-while-revalidate).
	// Zero defaults to four TTLs; negative disables stale serving.
	StaleFor time.Duration
	// MaxInflight bounds concurrent fills (cache misses running the
	// expensive fan-out). Zero leaves fills unbounded.
	MaxInflight int
	// QueueTimeout is how long an admission waits for a fill slot before
	// being shed with ErrShed (default DefaultQueueTimeout).
	QueueTimeout time.Duration
	// Metrics receives the cache's counters, gauge and hit-path
	// histogram; nil allocates a private registry. Share one registry
	// across components for a single /metrics view.
	Metrics *obs.Registry
	// Now overrides the clock, for expiry tests.
	Now func() time.Time
}

// Outcome classifies how one Do call was served.
type Outcome int

const (
	// Filled: this call missed and ran the fill as flight leader.
	Filled Outcome = iota
	// Hit: served a fresh entry.
	Hit
	// Stale: served an expired entry while a background refresh ran.
	Stale
	// Coalesced: joined another caller's in-flight fill for the key.
	Coalesced
)

// String implements fmt.Stringer for trace annotations.
func (o Outcome) String() string {
	switch o {
	case Filled:
		return "miss"
	case Hit:
		return "hit"
	case Stale:
		return "stale"
	case Coalesced:
		return "coalesced"
	}
	return "unknown"
}

// Cache is a sharded LRU+TTL query-result cache with singleflight
// coalescing, stale-while-revalidate and load shedding. All methods are
// safe for concurrent use. Cached values are shared across callers and
// must be treated as read-only.
type Cache struct {
	shards   []*shard
	mask     uint32
	perShard int
	ttl      time.Duration
	staleFor time.Duration
	gate     *Gate
	flight   *flightGroup
	now      func() time.Time

	metrics    *obs.Registry
	hits       *obs.Counter
	misses     *obs.Counter
	stales     *obs.Counter
	coalesced  *obs.Counter
	evictions  *obs.Counter
	refreshErr *obs.Counter
	entries    *obs.Gauge
	hitSeconds *obs.Histogram
}

// shard is one lock domain: a map into an LRU list (front = most
// recently used).
type shard struct {
	mu    sync.Mutex
	items map[string]*list.Element
	ll    *list.List
}

// entry is one cached value with its freshness bounds.
type entry struct {
	key        string
	val        any
	expires    time.Time // fresh until here
	staleUntil time.Time // servable-stale until here
}

// New returns a cache for the config (zero Config takes the defaults).
func New(cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 4096
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	nshards := 1
	for nshards < cfg.Shards {
		nshards <<= 1
	}
	if cfg.TTL <= 0 {
		cfg.TTL = time.Minute
	}
	switch {
	case cfg.StaleFor == 0:
		cfg.StaleFor = 4 * cfg.TTL
	case cfg.StaleFor < 0:
		cfg.StaleFor = 0
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	perShard := (cfg.MaxEntries + nshards - 1) / nshards
	c := &Cache{
		shards:     make([]*shard, nshards),
		mask:       uint32(nshards - 1),
		perShard:   perShard,
		ttl:        cfg.TTL,
		staleFor:   cfg.StaleFor,
		gate:       NewGate(cfg.MaxInflight, cfg.QueueTimeout, cfg.Metrics),
		flight:     newFlightGroup(),
		now:        cfg.Now,
		metrics:    cfg.Metrics,
		hits:       cfg.Metrics.Counter(obs.MQCacheHits),
		misses:     cfg.Metrics.Counter(obs.MQCacheMisses),
		stales:     cfg.Metrics.Counter(obs.MQCacheStale),
		coalesced:  cfg.Metrics.Counter(obs.MQCacheCoalesced),
		evictions:  cfg.Metrics.Counter(obs.MQCacheEvictions),
		refreshErr: cfg.Metrics.Counter(obs.MQCacheRefreshErrors),
		entries:    cfg.Metrics.Gauge(obs.MQCacheEntries),
		hitSeconds: cfg.Metrics.Histogram(obs.MQCacheHitSeconds),
	}
	for i := range c.shards {
		c.shards[i] = &shard{items: map[string]*list.Element{}, ll: list.New()}
	}
	return c
}

// Metrics returns the registry the cache records into.
func (c *Cache) Metrics() *obs.Registry { return c.metrics }

// Do serves key from the cache, filling it with fill on a miss:
//
//   - fresh entry: returned immediately (Outcome Hit);
//   - expired entry within the stale window: returned immediately while
//     one background refresh runs fill with a detached context
//     (Outcome Stale) — callers should surface the staleness, e.g. via
//     core's Answer.Degraded;
//   - miss with a fill already in flight for key: waits for that fill
//     and shares its result (Outcome Coalesced);
//   - plain miss: acquires an admission slot (ErrShed within the queue
//     timeout if the gate is full), runs fill, stores a successful
//     result (Outcome Filled). Errors are returned, never cached.
//
// The fill receives the leader's context; a coalesced caller whose own
// context ends stops waiting and returns ctx.Err() while the leader's
// fill keeps running. The returned value is shared — treat it as
// read-only.
func (c *Cache) Do(ctx context.Context, key string, fill func(context.Context) (any, error)) (any, Outcome, error) {
	start := time.Now()
	if v, state := c.lookup(key); state == lookupFresh {
		c.hits.Inc()
		c.hitSeconds.Observe(time.Since(start))
		return v, Hit, nil
	} else if state == lookupStale {
		c.stales.Inc()
		c.refreshAsync(key, fill)
		c.hitSeconds.Observe(time.Since(start))
		return v, Stale, nil
	}
	v, shared, err := c.flight.Do(ctx, key, func() (any, error) {
		release, gerr := c.gate.Acquire(ctx)
		if gerr != nil {
			return nil, gerr
		}
		defer release()
		v, ferr := fill(ctx)
		if ferr == nil {
			c.store(key, v)
		}
		return v, ferr
	}, c.coalesced.Inc)
	if shared {
		return v, Coalesced, err
	}
	if err != nil {
		return nil, Filled, err
	}
	c.misses.Inc()
	return v, Filled, err
}

// refreshAsync starts at most one background refresh for key. The
// refresh runs under a background context (the triggering request is
// long gone by the time it finishes) but still passes the admission
// gate, so SWR refreshes cannot stampede an overloaded backend: a shed
// refresh simply leaves the stale entry in service.
func (c *Cache) refreshAsync(key string, fill func(context.Context) (any, error)) {
	c.flight.Solo(key, func() (any, error) {
		ctx := context.Background()
		release, err := c.gate.Acquire(ctx)
		if err != nil {
			c.refreshErr.Inc()
			return nil, err
		}
		defer release()
		v, err := fill(ctx)
		if err != nil {
			c.refreshErr.Inc()
			return nil, err
		}
		c.store(key, v)
		return v, nil
	})
}

// Get returns the cached value for key if it is fresh. It never serves
// stale and never fills; use Do for the full serving policy.
func (c *Cache) Get(key string) (any, bool) {
	v, state := c.lookup(key)
	if state != lookupFresh {
		return nil, false
	}
	return v, true
}

// Put stores val under key with the cache's TTL, unconditionally.
func (c *Cache) Put(key string, val any) { c.store(key, val) }

// Len reports the live entry count across all shards.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

type lookupState int

const (
	lookupMiss lookupState = iota
	lookupFresh
	lookupStale
)

func (c *Cache) shard(key string) *shard {
	return c.shards[fnv32a(key)&c.mask]
}

// lookup finds key, classifies its freshness, and touches (or expires)
// it under the shard lock.
func (c *Cache) lookup(key string) (any, lookupState) {
	now := c.now()
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, lookupMiss
	}
	e := el.Value.(*entry)
	switch {
	case !now.After(e.expires):
		s.ll.MoveToFront(el)
		return e.val, lookupFresh
	case !now.After(e.staleUntil):
		s.ll.MoveToFront(el)
		return e.val, lookupStale
	default:
		s.ll.Remove(el)
		delete(s.items, key)
		c.entries.Add(-1)
		return nil, lookupMiss
	}
}

// store inserts (or refreshes) key, evicting from the shard's LRU tail
// past its capacity.
func (c *Cache) store(key string, val any) {
	now := c.now()
	e := &entry{key: key, val: val, expires: now.Add(c.ttl), staleUntil: now.Add(c.ttl + c.staleFor)}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value = e
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(e)
	c.entries.Add(1)
	for s.ll.Len() > c.perShard {
		tail := s.ll.Back()
		s.ll.Remove(tail)
		delete(s.items, tail.Value.(*entry).key)
		c.entries.Add(-1)
		c.evictions.Inc()
	}
}

// fnv32a is the 32-bit FNV-1a hash, used only to pick a shard.
func fnv32a(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}
