package qcache

import (
	"context"
	"fmt"
	"time"

	"starts/internal/obs"
)

// Config configures a Cache. The zero value is usable: 4096 entries over
// 16 shards, one-minute TTL, a stale window of four TTLs, no admission
// bound, and a private metrics registry.
type Config struct {
	// MaxEntries bounds the default store's size across all shards
	// (default 4096). Ignored when Store is set.
	MaxEntries int
	// Shards is the default store's shard count, rounded up to a power
	// of two (default 16). More shards, less mutex contention. Ignored
	// when Store is set.
	Shards int
	// TTL is how long an entry serves fresh when the fill does not name
	// its own lifetime (default one minute).
	TTL time.Duration
	// TTLFloor bounds per-entry lifetimes from below (default one
	// second): a source that is already past its DateExpires still
	// caches briefly instead of thrashing the fan-out.
	TTLFloor time.Duration
	// TTLCeiling bounds per-entry lifetimes from above (default one
	// day, matching the server's Cache-Control clamp).
	TTLCeiling time.Duration
	// StaleFor is how long past its TTL an entry may still be served
	// stale while a background refresh runs (stale-while-revalidate).
	// Zero defaults to four TTLs; negative disables stale serving.
	StaleFor time.Duration
	// MaxInflight bounds concurrent fills (cache misses running the
	// expensive fan-out). Zero leaves fills unbounded.
	MaxInflight int
	// QueueTimeout is how long an admission waits for a fill slot before
	// being shed with ErrShed (default DefaultQueueTimeout).
	QueueTimeout time.Duration
	// AdmissionTarget enables CoDel-style adaptive shedding on the gate:
	// when fills wait longer than this for a slot over a sustained
	// interval, the gate sheds at entry with accelerating frequency until
	// waits fall back under target (see Gate). 0 keeps the plain timeout
	// gate. Only meaningful with MaxInflight > 0.
	AdmissionTarget time.Duration
	// AdmissionInterval is the CoDel interval (default
	// DefaultAdmissionInterval). Only meaningful with AdmissionTarget.
	AdmissionInterval time.Duration
	// Store overrides the storage backend; nil builds the default
	// sharded LRU from MaxEntries/Shards. Singleflight coalescing and
	// the admission gate stay in front of any store, so a distributed
	// backend plugs in here without re-implementing either.
	Store Store
	// Metrics receives the cache's counters, gauge and hit-path
	// histogram; nil allocates a private registry. Share one registry
	// across components for a single /metrics view.
	Metrics *obs.Registry
	// Now overrides the clock, for expiry tests.
	Now func() time.Time
}

// Outcome classifies how one Do call was served.
type Outcome int

const (
	// Filled: this call missed and ran the fill as flight leader.
	Filled Outcome = iota
	// Hit: served a fresh entry.
	Hit
	// Stale: served an expired entry while a background refresh ran.
	Stale
	// Coalesced: joined another caller's in-flight fill for the key.
	Coalesced
)

// String implements fmt.Stringer for trace annotations.
func (o Outcome) String() string {
	switch o {
	case Filled:
		return "miss"
	case Hit:
		return "hit"
	case Stale:
		return "stale"
	case Coalesced:
		return "coalesced"
	}
	return "unknown"
}

// TTLFill computes a value together with its freshness lifetime. A ttl
// of 0 takes the cache's Config.TTL; any other value is clamped to
// [TTLFloor, TTLCeiling], so a negative remaining lifetime (a source
// already past its DateExpires) caches for the floor instead of nothing.
type TTLFill func(context.Context) (val any, ttl time.Duration, err error)

// Cache is a sharded LRU+TTL query-result cache with singleflight
// coalescing, stale-while-revalidate and load shedding. All methods are
// safe for concurrent use. Cached values are shared across callers and
// must be treated as read-only.
type Cache struct {
	storage  Store
	ttl      time.Duration
	floor    time.Duration
	ceiling  time.Duration
	staleFor time.Duration
	gate     *Gate
	flight   *flightGroup
	now      func() time.Time

	metrics    *obs.Registry
	hits       *obs.Counter
	misses     *obs.Counter
	stales     *obs.Counter
	coalesced  *obs.Counter
	refreshErr *obs.Counter
	hitSeconds *obs.Histogram
	ttlSeconds *obs.Histogram
}

// New returns a cache for the config (zero Config takes the defaults).
func New(cfg Config) *Cache {
	if cfg.TTL <= 0 {
		cfg.TTL = time.Minute
	}
	if cfg.TTLFloor <= 0 {
		cfg.TTLFloor = time.Second
	}
	if cfg.TTLCeiling <= 0 {
		cfg.TTLCeiling = 24 * time.Hour
	}
	switch {
	case cfg.StaleFor == 0:
		cfg.StaleFor = 4 * cfg.TTL
	case cfg.StaleFor < 0:
		cfg.StaleFor = 0
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Store == nil {
		cfg.Store = NewLRUStore(cfg.MaxEntries, cfg.Shards, cfg.Metrics)
	}
	return &Cache{
		storage:  cfg.Store,
		ttl:      cfg.TTL,
		floor:    cfg.TTLFloor,
		ceiling:  cfg.TTLCeiling,
		staleFor: cfg.StaleFor,
		gate: NewGateConfig(GateConfig{
			MaxInflight:  cfg.MaxInflight,
			QueueTimeout: cfg.QueueTimeout,
			Target:       cfg.AdmissionTarget,
			Interval:     cfg.AdmissionInterval,
			Metrics:      cfg.Metrics,
			Now:          cfg.Now,
		}),
		flight:     newFlightGroup(),
		now:        cfg.Now,
		metrics:    cfg.Metrics,
		hits:       cfg.Metrics.Counter(obs.MQCacheHits),
		misses:     cfg.Metrics.Counter(obs.MQCacheMisses),
		stales:     cfg.Metrics.Counter(obs.MQCacheStale),
		coalesced:  cfg.Metrics.Counter(obs.MQCacheCoalesced),
		refreshErr: cfg.Metrics.Counter(obs.MQCacheRefreshErrors),
		hitSeconds: cfg.Metrics.Histogram(obs.MQCacheHitSeconds),
		ttlSeconds: cfg.Metrics.Histogram(obs.MQCacheEntryTTLSeconds),
	}
}

// Metrics returns the registry the cache records into.
func (c *Cache) Metrics() *obs.Registry { return c.metrics }

// Do serves key from the cache, filling it with fill on a miss. It is
// DoTTL with every entry taking the cache's Config.TTL.
func (c *Cache) Do(ctx context.Context, key string, fill func(context.Context) (any, error)) (any, Outcome, error) {
	return c.DoTTL(ctx, key, func(fctx context.Context) (any, time.Duration, error) {
		v, err := fill(fctx)
		return v, 0, err
	})
}

// DoTTL serves key from the cache, filling it with fill on a miss:
//
//   - fresh entry: returned immediately (Outcome Hit);
//   - expired entry within the stale window: returned immediately while
//     one background refresh runs fill with a detached context
//     (Outcome Stale) — callers should surface the staleness, e.g. via
//     core's Answer.Degraded;
//   - miss with a fill already in flight for key: waits for that fill
//     and shares its result (Outcome Coalesced);
//   - plain miss: acquires an admission slot (ErrShed within the queue
//     timeout if the gate is full), runs fill, stores a successful
//     result under the fill's lifetime (Outcome Filled). Errors are
//     returned, never cached.
//
// The fill names each entry's own freshness lifetime (see TTLFill), so a
// fast-moving source expires quickly while an archival one caches for
// hours. The fill receives the leader's context; a coalesced caller
// whose own context ends stops waiting and returns ctx.Err() while the
// leader's fill keeps running. The returned value is shared — treat it
// as read-only.
func (c *Cache) DoTTL(ctx context.Context, key string, fill TTLFill) (any, Outcome, error) {
	start := c.now()
	if v, state := c.lookup(key); state == lookupFresh {
		c.hits.Inc()
		c.hitSeconds.Observe(c.now().Sub(start))
		return v, Hit, nil
	} else if state == lookupStale {
		c.stales.Inc()
		c.refreshAsync(key, fill)
		c.hitSeconds.Observe(c.now().Sub(start))
		return v, Stale, nil
	}
	v, shared, err := c.flight.Do(ctx, key, func() (any, error) {
		release, gerr := c.gate.Acquire(ctx)
		if gerr != nil {
			return nil, gerr
		}
		defer release()
		v, ttl, ferr := fill(ctx)
		if ferr == nil {
			c.put(key, v, ttl)
		}
		return v, ferr
	}, c.coalesced.Inc)
	if shared {
		return v, Coalesced, err
	}
	// The miss counts when this caller ran the fill as leader — filled
	// or failed — so hits+misses+stales+coalesced always equals the
	// number of calls and hit-ratio math stays honest under errors.
	c.misses.Inc()
	if err != nil {
		return nil, Filled, err
	}
	return v, Filled, nil
}

// refreshAsync starts at most one background refresh for key. The
// refresh runs under a background context (the triggering request is
// long gone by the time it finishes) but still passes the admission
// gate, so SWR refreshes cannot stampede an overloaded backend: a shed
// refresh simply leaves the stale entry in service.
func (c *Cache) refreshAsync(key string, fill TTLFill) {
	c.flight.Solo(key, func() (v any, err error) {
		// Every failed refresh — shed, error or panicking fill — counts
		// in one place; the stale entry stays in service either way.
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("qcache: refresh for key %q panicked: %v", key, r)
			}
			if err != nil {
				c.refreshErr.Inc()
			}
		}()
		ctx := context.Background()
		release, gerr := c.gate.Acquire(ctx)
		if gerr != nil {
			return nil, gerr
		}
		defer release()
		v, ttl, ferr := fill(ctx)
		if ferr != nil {
			return nil, ferr
		}
		c.put(key, v, ttl)
		return v, nil
	})
}

// Refresh re-runs fill for key in the background, reusing the
// stale-while-revalidate machinery: at most one refresh per key runs at
// a time, it passes the admission gate (a shed refresh is dropped, not
// queued), and a failure leaves the current entry in service, counted in
// MQCacheRefreshErrors. Pair it with ExpiresWithin to proactively
// re-fill hot entries shortly before they expire, so they never leave
// the fast path at all.
func (c *Cache) Refresh(key string, fill TTLFill) { c.refreshAsync(key, fill) }

// ExpiresWithin reports whether key currently holds a fresh entry that
// will expire within lead from now — the candidates a proactive
// refresher should hand to Refresh.
func (c *Cache) ExpiresWithin(key string, lead time.Duration) bool {
	now := c.now()
	e, ok := c.storage.Get(key, now)
	if !ok {
		return false
	}
	return !now.After(e.Expires) && now.Add(lead).After(e.Expires)
}

// Get returns the cached value for key if it is fresh. It never serves
// stale and never fills; use Do for the full serving policy.
func (c *Cache) Get(key string) (any, bool) {
	v, state := c.lookup(key)
	if state != lookupFresh {
		return nil, false
	}
	return v, true
}

// Put stores val under key with the cache's Config.TTL, unconditionally.
func (c *Cache) Put(key string, val any) { c.put(key, val, 0) }

// PutTTL stores val under key with its own freshness lifetime: ttl 0
// takes Config.TTL, anything else is clamped to [TTLFloor, TTLCeiling].
func (c *Cache) PutTTL(key string, val any, ttl time.Duration) { c.put(key, val, ttl) }

// Len reports the live entry count in the backing store.
func (c *Cache) Len() int { return c.storage.Len() }

type lookupState int

const (
	lookupMiss lookupState = iota
	lookupFresh
	lookupStale
)

// lookup finds key in the store and classifies its freshness.
func (c *Cache) lookup(key string) (any, lookupState) {
	now := c.now()
	e, ok := c.storage.Get(key, now)
	if !ok {
		return nil, lookupMiss
	}
	switch {
	case !now.After(e.Expires):
		return e.Val, lookupFresh
	case !now.After(e.StaleUntil):
		return e.Val, lookupStale
	default:
		// A store that does not prune dead entries itself still misses.
		c.storage.Evict(key)
		return nil, lookupMiss
	}
}

// put stores key for the clamped lifetime (see TTLFill for the ttl
// contract), recording explicit lifetimes into the TTL histogram.
func (c *Cache) put(key string, val any, ttl time.Duration) {
	eff := c.effectiveTTL(ttl)
	if ttl != 0 {
		c.ttlSeconds.Observe(eff)
	}
	now := c.now()
	c.storage.Put(key, Entry{Val: val, Expires: now.Add(eff), StaleUntil: now.Add(eff + c.staleFor)})
}

// effectiveTTL resolves one entry's lifetime: the fallback Config.TTL
// for 0, the clamp to [floor, ceiling] for everything else.
func (c *Cache) effectiveTTL(ttl time.Duration) time.Duration {
	switch {
	case ttl == 0:
		return c.ttl
	case ttl < c.floor:
		return c.floor
	case ttl > c.ceiling:
		return c.ceiling
	}
	return ttl
}
